(* Mpeg4 motion estimation on the simulated GPU.

     dune exec examples/mpeg4_me.exe

   Compiles the Figure 2 kernel through the driver pipeline with the
   multi-level tiling of Section 4 and the paper's tile sizes, buffers
   the sliding windows in scratchpad, verifies the transformed code
   against the reference executor at a small frame, and projects
   execution times for a large frame with and without scratchpad
   staging. *)

open Emsc_arith
open Emsc_core
open Emsc_machine
open Emsc_driver
open Emsc_kernels

let gpu = Config.gtx8800

let build ~ni ~nj ~ws ~tiles ~smem =
  match Pipeline.compile (Me.job ~ni ~nj ~ws ~tiles ~stage_data:smem ()) with
  | Ok c -> c
  | Error e ->
    Format.eprintf "%a@." Frontend.pp_error e;
    exit 1

let () =
  (* 1. correctness at a small frame *)
  let ni = 32 and nj = 32 and ws = 8 in
  let c = build ~ni ~nj ~ws ~tiles:(8, 8, 8, 8) ~smem:true in
  let init =
    [ ("cur", fun idx -> float_of_int (((idx.(0) * 13) + idx.(1)) mod 31));
      ("refb", fun idx -> float_of_int (((idx.(0) * 5) + (idx.(1) * 3)) mod 23));
      ("sad", fun _ -> 0.0) ]
  in
  let m_ref, (_ : Exec.counters) =
    Runner.reference ~memory:(Runner.Filled init) c.Pipeline.prog
  in
  let m, r = Runner.simulate ~mode:Exec.Full ~memory:(Runner.Filled init) c in
  Printf.printf "correctness (%dx%d, ws=%d): %s\n" ni nj ws
    (if Memory.arrays_equal m_ref m "sad" then "OK" else "MISMATCH");
  Printf.printf "global words: %.0f, scratchpad words: %.0f\n\n"
    (Exec.total_global r.Exec.totals)
    (Exec.total_smem r.Exec.totals);

  (* 2. projected times at a 2048x2048 frame *)
  let ni = 2048 and nj = 2048 and ws = 16 in
  let project ~smem =
    let c = build ~ni ~nj ~ws ~tiles:(32, 16, 16, 16) ~smem in
    let plan = Option.get c.Pipeline.plan in
    let _, r = Runner.simulate c in
    let fp =
      if smem then
        Zint.to_int_exn (Plan.total_footprint plan Runner.zero_env)
        * gpu.Config.word_bytes
      else 0
    in
    Timing.gpu_total_ms gpu
      { Timing.threads = 256; smem_bytes_per_block = fp;
        coalesce_eff = (if smem then 16.0 else 4.0); global_sync = false;
        double_buffer = false }
      r
  in
  let t_smem = project ~smem:true in
  let t_dram = project ~smem:false in
  Printf.printf "projected time at %dx%d (ws %d), tiles (32,16,16,16):\n" ni nj
    ws;
  Printf.printf "  with scratchpad staging : %8.1f ms\n" t_smem;
  Printf.printf "  global memory only      : %8.1f ms  (%.1fx slower)\n" t_dram
    (t_dram /. t_smem)

(* Matrix multiplication through the whole pipeline.

     dune exec examples/matmul_tiled.exe

   One driver compilation carries the entire flow: dependence analysis
   -> hyperplane band (i and j parallel, k sequential) -> multi-level
   tiling -> scratchpad buffers with hoisted movement for the
   accumulator -> verified execution. *)

open Emsc_codegen
open Emsc_core
open Emsc_machine
open Emsc_driver
open Emsc_kernels

let () =
  let n = 32 in
  let c =
    match Pipeline.compile (Matmul.job ~n ()) with
    | Ok c -> c
    | Error e ->
      Format.eprintf "%a@." Frontend.pp_error e;
      exit 1
  in

  (* 1. what parallelism is there? *)
  (match c.Pipeline.band with
   | Some band ->
     Format.printf "hyperplane band (space loops first):@.";
     List.iteri (fun k h ->
       Format.printf "  %a %s@." Emsc_linalg.Vec.pp h
         (if List.nth band.Emsc_transform.Hyperplanes.parallel k then
            "(parallel)"
          else "(sequential)"))
       band.Emsc_transform.Hyperplanes.hyperplanes
   | None -> Format.printf "no common permutable band?!@.");

  (* 2. the tiled plan: i, j across blocks; k sub-tiled to bound the
     buffers *)
  let plan = Option.get c.Pipeline.plan in
  List.iter (fun (b : Plan.buffered) ->
    Format.printf "buffer %s: sizes %a@." b.Plan.buffer.Alloc.local_name
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " x ")
         Ast.pp_aexpr)
      (Array.to_list (Alloc.size_exprs b.Plan.buffer)))
    plan.Plan.buffered;

  let tiled = Option.get c.Pipeline.tiled in
  Format.printf "@.generated kernel (movement for C hoisted above kM):@.%a@.@."
    Ast.pp_block tiled.Pipeline.ast;

  (* 3. verify against the reference *)
  let init =
    [ ("A", fun idx -> float_of_int (((idx.(0) * 7) + idx.(1)) mod 13));
      ("B", fun idx -> float_of_int (((idx.(0) * 3) + (idx.(1) * 5)) mod 11));
      ("C", fun _ -> 0.0) ]
  in
  let m_ref, (_ : Exec.counters) =
    Runner.reference ~memory:(Runner.Filled init) c.Pipeline.prog
  in
  let m, r = Runner.simulate ~mode:Exec.Full ~memory:(Runner.Filled init) c in
  Printf.printf "result: %s\n"
    (if Memory.arrays_equal m_ref m "C" then "matches reference"
     else "MISMATCH");
  Printf.printf "global words: %.0f (untiled would move %d)\n"
    (Exec.total_global r.Exec.totals)
    (4 * n * n * n)

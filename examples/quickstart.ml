(* Quickstart: from source text to scratchpad buffers and movement code.

     dune exec examples/quickstart.exe

   This walks the paper's Figure 1 example end to end through the
   driver pipeline: parse the loop nest, partition the data spaces of
   each array, run the reuse test (Algorithm 1), allocate local buffers
   (Algorithm 2), and print the generated move-in / move-out loop
   nests. *)

open Emsc_ir
open Emsc_codegen
open Emsc_core
open Emsc_driver

let source =
  {|
  // Figure 1 of Baskaran et al., PPoPP 2008
  array A[200][200];
  array B[200][200];
  for (i = 10; i <= 14; i++) {
    for (j = 10; j <= 14; j++) {
      A[i][j+1] = A[i+j][j+1] * 3;
      for (k = 11; k <= 20; k++) {
        B[i][j+k] = A[i][k] + B[i+j][k];
      }
    }
  }
  |}

let () =
  (* the paper's example allocates one buffer per array *)
  let options =
    { Options.default with arch = `Cell; merge_per_array = true }
  in
  let c =
    match
      Pipeline.compile_source ~options (Source.Text { name = "fig1"; text = source })
    with
    | Ok c -> c
    | Error e ->
      Format.eprintf "%a@." Frontend.pp_error e;
      exit 1
  in
  let prog = c.Pipeline.prog in
  Format.printf "parsed %d statements over arrays %s@.@."
    (List.length prog.Prog.stmts)
    (String.concat ", "
       (List.map (fun (d : Prog.array_decl) -> d.Prog.array_name)
          prog.Prog.arrays));

  let plan = Option.get c.Pipeline.plan in
  List.iter (fun (b : Plan.buffered) ->
    let buf = b.Plan.buffer in
    Format.printf "=== local array %s for %s ===@." buf.Alloc.local_name
      buf.Alloc.array;
    Format.printf "%a@." Alloc.pp buf;
    Format.printf "reuse: %a@." Reuse.pp_report b.Plan.report;
    Format.printf "@[<v>-- move in --@,%a@,-- move out --@,%a@]@.@."
      Ast.pp_block b.Plan.move_in Ast.pp_block b.Plan.move_out)
    plan.Plan.buffered;

  (* how a compute access is rewritten *)
  let s2 = Prog.find_stmt prog 2 in
  let a_read =
    List.find (fun (a : Prog.access) -> a.Prog.array = "A") s2.Prog.reads
  in
  match Plan.local_ref plan s2 a_read with
  | Some r ->
    Format.printf "the read A[i][k] in S2 becomes %s[%a]@." r.Ast.array
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "][")
         Ast.pp_aexpr)
      (Array.to_list r.Ast.indices)
  | None -> Format.printf "A[i][k] stays in global memory@."

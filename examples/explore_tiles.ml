(* The Section 4.3 tile-size search, visualized.

     dune exec examples/explore_tiles.exe

   Runs the constrained data-movement-cost minimization for the
   motion-estimation kernel over its memory-level tile sizes — as the
   driver pipeline's tilesearch stage — and prints the model's
   landscape next to the search result. *)

open Emsc_transform
open Emsc_driver
open Emsc_kernels

let ni = 1024
let nj = 1024
let ws = 16
let threads = 256.0
let smem_words = 4096 (* 16 KB / 4-byte words *)

let search =
  { Options.search_block = [| Some (ni / 8); Some (nj / 4); None; None |];
    search_ranges = [| (8, 64); (8, 64); (ws, ws); (ws, ws) |];
    search_mem_limit_words = smem_words;
    search_threads = threads;
    search_sync_cost = 40.0;
    search_transfer_cost = 4.0;
    search_max_evals = 60;
    search_snap_pow2 = true }

let () =
  let prog = Me.program ~ni ~nj ~ws in
  (* the cost landscape the search stage walks *)
  let problem = Pipeline.search_problem prog search in
  Format.printf "movement-cost model over (t_i, t_j), X = over 16 KB:@.@.";
  Format.printf "%8s" "";
  List.iter (fun tj -> Format.printf " %10d" tj) [ 8; 16; 32; 64 ];
  Format.printf "@.";
  List.iter (fun ti ->
    Format.printf "%8d" ti;
    List.iter (fun tj ->
      match problem.Tilesearch.evaluate [| ti; tj; ws; ws |] with
      | Some (cost, fp) when fp <= smem_words -> Format.printf " %10.0f" cost
      | Some _ -> Format.printf " %10s" "X"
      | None -> Format.printf " %10s" "?")
      [ 8; 16; 32; 64 ];
    Format.printf "@.")
    [ 8; 16; 32; 64 ];
  (* and what the pipeline picks when asked to search *)
  let c =
    match
      Pipeline.compile
        (Pipeline.job
           ~options:
             { Options.default with
               arch = `Gpu; find_band = false;
               tiling = Options.Search search }
           (Source.Program { name = "me-explore"; prog }))
    with
    | Ok c -> c
    | Error e ->
      Format.eprintf "%a@." Frontend.pp_error e;
      exit 1
  in
  match c.Pipeline.searched with
  | Some cand ->
    Format.printf
      "@.search picks (t_i, t_j) = (%d, %d): cost %.0f, %d words of \
       scratchpad@."
      cand.Tilesearch.t.(0)
      cand.Tilesearch.t.(1)
      cand.Tilesearch.cost cand.Tilesearch.footprint
  | None -> Format.printf "@.nothing feasible?!@."

(* Time-tiled 1-D Jacobi with concurrent start.

     dune exec examples/jacobi.exe

   Shows the pipeline's band stage discovering the skewed permutable
   band of the time-expanded stencil, then runs the overlapped (halo)
   tiled kernel — the paper's [27] treatment — and verifies it against
   the reference executor before projecting large-size execution
   times. *)

open Emsc_transform
open Emsc_machine
open Emsc_driver
open Emsc_kernels

let gpu = Config.gtx8800

let () =
  (* 1. the transform story: Jacobi needs skewing to tile *)
  let c =
    match Pipeline.compile (Jacobi1d.job ()) with
    | Ok c -> c
    | Error e ->
      Format.eprintf "%a@." Frontend.pp_error e;
      exit 1
  in
  (match c.Pipeline.band with
   | Some band ->
     Format.printf "permutable band of the time-expanded stencil:@.";
     List.iter (fun h -> Format.printf "  %a@." Emsc_linalg.Vec.pp h)
       band.Hyperplanes.hyperplanes
   | None -> Format.printf "no permutable band?!@.");

  (* 2. overlapped tiling: correctness *)
  let n = 4096 and steps = 64 and ts = 128 and tt = 16 in
  let p = Jacobi1d.program ~n ~steps in
  let k = Stencil.overlapped_1d ~n ~steps ~ts ~tt p in
  let init idx = sin (float_of_int idx.(0) /. 10.0) in
  let m_ref, (_ : Exec.counters) =
    Runner.reference ~memory:(Runner.Filled [ ("cur", init) ]) p
  in
  let m, r =
    Runner.execute ~prog:p ~local_ref:k.Stencil.local_ref
      ~locals:k.Stencil.locals ~mode:Exec.Full
      ~memory:(Runner.Filled [ ("cur", init) ]) k.Stencil.ast
  in
  let a = Memory.global_data m_ref "cur" in
  let b = Memory.global_data m k.Stencil.result_array in
  let ok = ref true in
  Array.iteri (fun i x ->
    if Float.abs (x -. b.(i)) > 1e-6 then ok := false)
    a;
  Printf.printf "\noverlapped tiling (n=%d, %d steps, ts=%d, tt=%d): %s\n" n
    steps ts tt
    (if !ok then "matches reference" else "MISMATCH");
  Printf.printf "scratchpad per block: %d words; launches: %d\n"
    k.Stencil.smem_words k.Stencil.time_tiles;
  Printf.printf "global words moved: %.0f (vs %.0f for the untiled version)\n"
    (Exec.total_global r.Exec.totals)
    (float_of_int (n * steps * 6));

  (* 3. projected times at 512k cells, 4096 steps *)
  let n = 524288 and steps = 4096 in
  let p = Jacobi1d.program ~n ~steps in
  let time_of kernel coalesce =
    let _, r =
      Runner.execute ~prog:p ~local_ref:kernel.Stencil.local_ref
        ~locals:kernel.Stencil.locals ~memory:Runner.Phantom
        kernel.Stencil.ast
    in
    Timing.gpu_total_ms gpu
      { Timing.threads = 64;
        smem_bytes_per_block =
          kernel.Stencil.smem_words * gpu.Config.word_bytes;
        coalesce_eff = coalesce; global_sync = true; double_buffer = false }
      r
  in
  let smem = time_of (Stencil.overlapped_1d ~n ~steps ~ts:256 ~tt:32 p) 16.0 in
  let dram = time_of (Stencil.dram_1d ~n ~steps ~ts:256 p) 3.5 in
  Printf.printf "\nprojected at n=512k, %d steps (ts=256, tt=32):\n" steps;
  Printf.printf "  scratchpad version  : %8.1f ms\n" smem;
  Printf.printf "  global-memory only  : %8.1f ms  (%.1fx slower)\n" dram
    (dram /. smem)

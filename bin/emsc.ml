(* emsc — command-line driver.

     emsc analyze FILE     data-management plan: partitions, Algorithm 1
                           verdicts, buffer extents, movement code
                           (--json for the machine-readable report)
     emsc profile FILE     run on the simulated machine and report
                           per-launch counters and timing breakdowns
     emsc deps FILE        dependence analysis
     emsc band FILE        tiling-hyperplane search
     emsc run FILE         execute the program on the reference
                           interpreter and print array checksums

   FILE is a program in the affine input language (see
   lib/lang/parser.mli); use '-' for stdin.  Commands that compile or
   execute accept --trace FILE to dump a Chrome trace_event JSON of
   the compilation/simulation (view in chrome://tracing or Perfetto). *)

open Emsc_arith
open Emsc_ir
open Emsc_codegen
open Emsc_core
open Emsc_obs
open Cmdliner

let read_input path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else begin
    let ic = open_in path in
    let s = In_channel.input_all ic in
    close_in ic;
    s
  end

let load path =
  Trace.span "parse" ~args:[ ("file", Json.Str path) ] @@ fun () ->
  match Emsc_lang.Parser.parse (read_input path) with
  | p -> p
  | exception Emsc_lang.Parser.Error e ->
    Printf.eprintf "parse error: %s\n" e;
    exit 1
  | exception Emsc_lang.Lexer.Error e ->
    Printf.eprintf "lex error: %s\n" e;
    exit 1

(* run [f] with tracing directed at [path] (when given); the trace file
   is written even when [f] fails, so aborted compilations can still be
   inspected *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Trace.reset ();
    Trace.enable ();
    Fun.protect
      ~finally:(fun () ->
        (* tracing must not destroy the command's result *)
        (try Trace.write_chrome path
         with Sys_error e -> Printf.eprintf "emsc: cannot write trace: %s\n" e);
        Trace.disable ())
      f

let emit_json out j =
  let s = Json.to_string ~pretty:true j in
  match out with
  | None -> print_string s; print_newline ()
  | Some path ->
    let oc = open_out path in
    output_string oc s;
    output_char oc '\n';
    close_out oc

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let arch_arg =
  let parse = function
    | "gpu" -> Ok `Gpu
    | "cell" -> Ok `Cell
    | s -> Error (`Msg ("unknown architecture " ^ s))
  in
  let print fmt a =
    Format.pp_print_string fmt (match a with `Gpu -> "gpu" | `Cell -> "cell")
  in
  Arg.(value & opt (conv (parse, print)) `Gpu
       & info [ "arch" ] ~doc:"Target style: gpu (copy only beneficial \
                               partitions) or cell (copy everything).")

let merge_arg =
  Arg.(value & flag
       & info [ "merge-per-array" ]
           ~doc:"One buffer per array (the paper's Figure 1 style) instead \
                 of one per non-overlapping partition.")

let delta_arg =
  Arg.(value & opt float 0.3
       & info [ "delta" ] ~doc:"Overlap-volume threshold of Algorithm 1.")

let optmove_arg =
  Arg.(value & flag
       & info [ "optimize-movement" ]
           ~doc:"Apply the Section 3.1.4 dependence-based copy-set \
                 minimization.")

let json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit a machine-readable JSON report instead of prose.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the run to $(docv) \
                 (open in chrome://tracing or Perfetto).")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the JSON report to $(docv) instead of stdout.")

let gpu_config = Emsc_machine.Config.gtx8800

let analyze_cmd =
  let run file arch merge delta optimize_movement json trace out =
    with_trace trace @@ fun () ->
    let p = load file in
    let plan =
      Plan.plan_block ~arch ~merge_per_array:merge ~delta
        ~optimize_movement p
    in
    if json then
      let capacity_words =
        gpu_config.Emsc_machine.Config.smem_bytes
        / gpu_config.Emsc_machine.Config.word_bytes
      in
      emit_json out (Plan.explain_json ~capacity_words plan)
    else begin
      Format.printf "%a@." Plan.pp plan;
      List.iter (fun (b : Plan.buffered) ->
        let buf = b.Plan.buffer in
        Format.printf "@.// buffer %s, sizes %a@." buf.Alloc.local_name
          (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " x ")
             Ast.pp_aexpr)
          (Array.to_list (Alloc.size_exprs buf));
        Format.printf "/* data move-in code */@.%a@." Ast.pp_block
          b.Plan.move_in;
        Format.printf "/* data move-out code */@.%a@." Ast.pp_block
          b.Plan.move_out)
        plan.Plan.buffered
    end
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Data-management plan for a program block")
    Term.(const run $ file_arg $ arch_arg $ merge_arg $ delta_arg
          $ optmove_arg $ json_arg $ trace_arg $ out_arg)

let deps_cmd =
  let run file =
    let p = load file in
    let deps = Deps.analyze p in
    if deps = [] then print_endline "no dependences"
    else List.iter (fun d -> Format.printf "%a@." Deps.pp d) deps
  in
  Cmd.v (Cmd.info "deps" ~doc:"Polyhedral dependence analysis")
    Term.(const run $ file_arg)

let band_cmd =
  let run file =
    let p = load file in
    let deps = Deps.analyze p in
    match Emsc_transform.Hyperplanes.find_band p deps with
    | band ->
      List.iteri (fun k h ->
        Format.printf "h%d = %a%s@." k Emsc_linalg.Vec.pp h
          (if List.nth band.Emsc_transform.Hyperplanes.parallel k then
             "  (parallel / space loop)"
           else "  (sequential)"))
        band.Emsc_transform.Hyperplanes.hyperplanes
    | exception Invalid_argument e -> Printf.eprintf "band search: %s\n" e
  in
  Cmd.v
    (Cmd.info "band" ~doc:"Find the permutable tiling-hyperplane band")
    Term.(const run $ file_arg)

let param_args =
  Arg.(value & opt_all (pair ~sep:'=' string int) []
       & info [ "p"; "param" ] ~docv:"NAME=VALUE"
           ~doc:"Give a program parameter a value (repeatable).")

let run_cmd =
  let run file params =
    let p = load file in
    let env name =
      match List.assoc_opt name params with
      | Some v -> Zint.of_int v
      | None ->
        Printf.eprintf "parameter %s needs a value (use -p %s=N)\n" name name;
        exit 1
    in
    let m = Emsc_machine.Memory.create p ~param_env:env in
    (* deterministic pseudo-random inputs *)
    List.iter (fun (d : Prog.array_decl) ->
      Emsc_machine.Memory.fill m d.Prog.array_name (fun idx ->
        let h = Array.fold_left (fun acc i -> (acc * 31) + i) 17 idx in
        float_of_int (h mod 101) /. 101.0))
      p.Prog.arrays;
    let c = Emsc_machine.Reference.run p ~param_env:env m () in
    Printf.printf "executed: %.0f statement flops, %.0f loads, %.0f stores\n"
      c.Emsc_machine.Exec.flops c.Emsc_machine.Exec.g_ld
      c.Emsc_machine.Exec.g_st;
    List.iter (fun (d : Prog.array_decl) ->
      let data = Emsc_machine.Memory.global_data m d.Prog.array_name in
      let sum = Array.fold_left ( +. ) 0.0 data in
      Printf.printf "checksum %-10s = %.6f\n" d.Prog.array_name sum)
      p.Prog.arrays
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute on the reference interpreter")
    Term.(const run $ file_arg $ param_args)

(* --- emsc profile ------------------------------------------------------- *)

let parse_tile_list = function
  | None -> [||]
  | Some s ->
    (try
       Array.of_list
         (List.map int_of_string
            (List.filter (fun x -> x <> "") (String.split_on_char ',' s)))
     with _ ->
       Printf.eprintf "bad tile list %S (expected N,N,...)\n" s;
       exit 1)

let spec_of_lists ~depth ~block ~mem ~thread =
  let get a j =
    if j < Array.length a && a.(j) > 0 then Some a.(j) else None
  in
  Array.init depth (fun j ->
    { Emsc_transform.Tile.block = get block j; mem = get mem j;
      thread = get thread j })

let gpu_profile p ~arch ~merge ~delta ~optimize_movement ~spec ~threads
    ~global_sync =
  let open Emsc_machine in
  let open Emsc_transform in
  let no_params name = failwith ("profile: unbound parameter " ^ name) in
  let zero_env _ = Zint.zero in
  let tp = Tile.tile_program p spec in
  let ctx = Tile.origin_context p spec in
  let plan =
    Plan.plan_block ~arch ~merge_per_array:merge ~delta ~optimize_movement
      ~param_context:ctx tp
  in
  let movement =
    List.map (fun (b : Plan.buffered) -> (b.Plan.move_in, b.Plan.move_out))
      plan.Plan.buffered
  in
  let ast = Tile.generate p spec ~movement in
  let memory = Memory.create_phantom p ~param_env:no_params in
  List.iter (fun (b : Plan.buffered) ->
    Memory.declare_local memory b.Plan.buffer.Alloc.local_name)
    plan.Plan.buffered;
  let local_ref =
    if plan.Plan.buffered = [] then None else Some (Plan.local_ref plan)
  in
  let result =
    Trace.span "exec.simulate" @@ fun () ->
    Exec.run ~prog:tp ?local_ref ~param_env:no_params ~memory
      ~mode:(Exec.Sampled 6) ast
  in
  let fp_words = Zint.to_int_exn (Plan.total_footprint plan zero_env) in
  let gp =
    { Timing.threads;
      smem_bytes_per_block = fp_words * gpu_config.Config.word_bytes;
      coalesce_eff = (if plan.Plan.buffered <> [] then 16.0 else 4.0);
      global_sync; double_buffer = false }
  in
  let capacity_words =
    gpu_config.Config.smem_bytes / gpu_config.Config.word_bytes
  in
  [ ("mode", Json.Str "gpu-sim");
    ("plan", Plan.explain_json ~capacity_words plan);
    ("profile", Timing.profile_json gpu_config gp result) ]

let cpu_profile p ~params =
  let open Emsc_machine in
  let env name =
    match List.assoc_opt name params with
    | Some v -> Zint.of_int v
    | None ->
      Printf.eprintf "parameter %s needs a value (use -p %s=N)\n" name name;
      exit 1
  in
  let m = Memory.create p ~param_env:env in
  List.iter (fun (d : Prog.array_decl) ->
    Memory.fill m d.Prog.array_name (fun idx ->
      let h = Array.fold_left (fun acc i -> (acc * 31) + i) 17 idx in
      float_of_int (h mod 101) /. 101.0))
    p.Prog.arrays;
  let cpu = Config.core2duo in
  let h = Cache.Hierarchy.create cpu in
  let on_global _ addr _ = ignore (Cache.Hierarchy.access h addr) in
  let c =
    Trace.span "exec.reference" @@ fun () ->
    Reference.run p ~param_env:env m ~on_global ()
  in
  let cpu_ms =
    Timing.cpu_total_ms cpu ~flops:c.Exec.flops
      ~l1_hits:(Cache.Hierarchy.l1_hits h)
      ~l2_hits:(Cache.Hierarchy.l2_hits h)
      ~mem_accesses:(Cache.Hierarchy.mem_accesses h)
  in
  [ ("mode", Json.Str "cpu-reference");
    ("totals", Exec.counters_json c);
    ( "cache",
      Json.Obj
        [ ("l1_hits", Json.Float (Cache.Hierarchy.l1_hits h));
          ("l2_hits", Json.Float (Cache.Hierarchy.l2_hits h));
          ("mem_accesses", Json.Float (Cache.Hierarchy.mem_accesses h)) ] );
    ("cpu_ms", Json.Float cpu_ms) ]

let profile_cmd =
  let tile_list name doc =
    Arg.(value & opt (some string) None
         & info [ name ] ~docv:"N,N,..." ~doc)
  in
  let block_arg =
    tile_list "block"
      "Block-level tile size per loop dimension (0 = untiled at that \
       dimension); enables the simulated-GPU path."
  in
  let mem_arg = tile_list "mem" "Memory-capacity tile size per dimension." in
  let thread_arg = tile_list "thread" "Thread tile size per dimension." in
  let threads_arg =
    Arg.(value & opt int 256
         & info [ "threads" ] ~doc:"Simulated threads per block.")
  in
  let globalsync_arg =
    Arg.(value & flag
         & info [ "global-sync" ]
             ~doc:"Charge a cross-block synchronization per launch.")
  in
  let run file arch merge delta optimize_movement block mem thread threads
      global_sync params trace out =
    with_trace trace @@ fun () ->
    let p = load file in
    let block = parse_tile_list block
    and mem = parse_tile_list mem
    and thread = parse_tile_list thread in
    let tiled =
      Array.length block > 0 || Array.length mem > 0
      || Array.length thread > 0
    in
    let fields =
      if tiled then begin
        match p.Prog.stmts with
        | [ s ] ->
          let spec =
            spec_of_lists ~depth:s.Prog.depth ~block ~mem ~thread
          in
          gpu_profile p ~arch ~merge ~delta ~optimize_movement ~spec
            ~threads ~global_sync
        | _ ->
          Printf.eprintf
            "profile: tiling flags need a single-statement program\n";
          exit 1
      end
      else cpu_profile p ~params
    in
    let fields =
      if Trace.enabled () then
        fields @ [ ("pass_timings", Trace.aggregate_json ()) ]
      else fields
    in
    emit_json out (Json.Obj fields)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Execute on the simulated machine and report machine-readable \
             metrics: per-launch counters, occupancy, and the \
             compute/bandwidth/latency timing breakdown")
    Term.(const run $ file_arg $ arch_arg $ merge_arg $ delta_arg
          $ optmove_arg $ block_arg $ mem_arg $ thread_arg $ threads_arg
          $ globalsync_arg $ param_args $ trace_arg $ out_arg)

let () =
  let info =
    Cmd.info "emsc"
      ~doc:"Explicitly-managed-scratchpad compiler (PPoPP'08 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; profile_cmd; deps_cmd; band_cmd; run_cmd ]))

(* emsc — command-line driver.

     emsc analyze FILE      data-management plan: partitions, Algorithm 1
                            verdicts, buffer extents, movement code
                            (--json for the machine-readable report)
     emsc compile FILE...   batch-compile many programs in parallel and
                            report per-stage timings and cache traffic
     emsc profile FILE      run on the simulated machine and report
                            per-launch counters and timing breakdowns
     emsc deps FILE         dependence analysis
     emsc band FILE         tiling-hyperplane search
     emsc run FILE          execute the program on the reference
                            interpreter and print array checksums
     emsc check             differential testing: random affine programs
                            and the kernel suite through the pipeline,
                            transformed execution vs. the reference
                            interpreter, plus static plan invariants

   FILE is a program in the affine input language (see
   lib/lang/parser.mli); use '-' for stdin.  Every command goes through
   the Emsc_driver pipeline, so repeated compilations of unchanged
   sources hit the on-disk pass cache (disable with --no-cache; relocate
   with --cache-dir or $EMSC_CACHE_DIR).  Commands that compile or
   execute accept --trace FILE to dump a Chrome trace_event JSON of the
   compilation/simulation (view in chrome://tracing or Perfetto). *)

open Emsc_arith
open Emsc_ir
open Emsc_codegen
open Emsc_core
open Emsc_obs
open Emsc_driver
open Cmdliner

let die e =
  Printf.eprintf "emsc: %s\n" (Frontend.error_message e);
  exit 1

let ok_or_die = function Ok v -> v | Error e -> die e

(* run [f] with tracing directed at [path] (when given); the trace file
   is written even when [f] fails, so aborted compilations can still be
   inspected *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Trace.reset ();
    Trace.enable ();
    Fun.protect
      ~finally:(fun () ->
        (* tracing must not destroy the command's result; the merged
           export appends runtime tracks (per-domain timelines, DMA
           lanes) when the command recorded events, and is exactly the
           compile trace otherwise *)
        (try Events.write_merged_chrome path
         with Sys_error e -> Printf.eprintf "emsc: cannot write trace: %s\n" e);
        Trace.disable ())
      f

let emit_json out j =
  let s = Json.to_string ~pretty:true j in
  match out with
  | None -> print_string s; print_newline ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc s;
        output_char oc '\n')

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let arch_arg =
  let parse = function
    | "gpu" -> Ok `Gpu
    | "cell" -> Ok `Cell
    | s -> Error (`Msg ("unknown architecture " ^ s))
  in
  let print fmt a =
    Format.pp_print_string fmt (match a with `Gpu -> "gpu" | `Cell -> "cell")
  in
  Arg.(value & opt (conv (parse, print)) `Gpu
       & info [ "arch" ] ~doc:"Target style: gpu (copy only beneficial \
                               partitions) or cell (copy everything).")

let merge_arg =
  Arg.(value & flag
       & info [ "merge-per-array" ]
           ~doc:"One buffer per array (the paper's Figure 1 style) instead \
                 of one per non-overlapping partition.")

let delta_arg =
  Arg.(value & opt float 0.3
       & info [ "delta" ] ~doc:"Overlap-volume threshold of Algorithm 1.")

let optmove_arg =
  Arg.(value & flag
       & info [ "optimize-movement" ]
           ~doc:"Apply the Section 3.1.4 dependence-based copy-set \
                 minimization.")

let intertile_arg =
  Arg.(value & flag
       & info [ "inter-tile-reuse" ]
           ~doc:"Irredundant inter-tile movement: consecutive blocks of \
                 the innermost block loop move only the footprint delta \
                 and keep the overlapping slab resident in the \
                 scratchpad.")

let json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit a machine-readable JSON report instead of prose.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the run to $(docv) \
                 (open in chrome://tracing or Perfetto).")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the JSON report to $(docv) instead of stdout.")

let nocache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Do not read or write the on-disk pass cache.")

let cachedir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Pass-cache location (default: \\$EMSC_CACHE_DIR, else \
                 \\$XDG_CACHE_HOME/emsc, else ~/.cache/emsc).")

let cache_of no_cache dir =
  if no_cache then Emsc_driver.Cache.off else Emsc_driver.Cache.create ?dir ()

let param_args =
  Arg.(value & opt_all (pair ~sep:'=' string int) []
       & info [ "p"; "param" ] ~docv:"NAME=VALUE"
           ~doc:"Give a program parameter a value (repeatable).")

let cli_env params name =
  match List.assoc_opt name params with
  | Some v -> Zint.of_int v
  | None ->
    Printf.eprintf "parameter %s needs a value (use -p %s=N)\n" name name;
    exit 1

(* --- execution-backend selection (run / profile / check) ---------------- *)

let backend_arg =
  let parse = function
    | "seq" | "sequential" -> Ok `Seq
    | "parallel" | "par" -> Ok `Parallel
    | s -> Error (`Msg ("unknown backend " ^ s))
  in
  let print fmt b =
    Format.pp_print_string fmt
      (match b with `Seq -> "seq" | `Parallel -> "parallel")
  in
  Arg.(value & opt (conv (parse, print)) `Seq
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Execution backend: seq (sequential simulator) or parallel \
                 (block-parallel worker domains, see -j).  Both produce \
                 bit-identical arrays and counter totals.")

let exec_jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains of the parallel backend (with --backend \
                 parallel).")

let policy_arg =
  let parse = function
    | "static" -> Ok Emsc_runtime.Runtime.Static
    | "steal" | "work-stealing" -> Ok Emsc_runtime.Runtime.Work_stealing
    | s -> Error (`Msg ("unknown policy " ^ s))
  in
  let print fmt p =
    Format.pp_print_string fmt
      (match p with
       | Emsc_runtime.Runtime.Static -> "static"
       | Emsc_runtime.Runtime.Work_stealing -> "steal")
  in
  Arg.(value & opt (conv (parse, print)) Emsc_runtime.Runtime.Static
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Parallel block-scheduling policy: static (round-robin) or \
                 steal (work-stealing deques).")

let double_buffer_arg =
  Arg.(value & flag
       & info [ "double-buffer" ]
           ~doc:"Pipeline move-in / compute / move-out on asynchronous DMA \
                 channels (parallel backend) and account the doubled \
                 scratchpad window in the timing model.")

let backend_of b jobs : Runner.backend =
  match b with `Seq -> `Seq | `Parallel -> `Par (max 1 jobs)

let runtime_flag =
  Arg.(value & flag
       & info [ "runtime" ]
           ~doc:"Record runtime execution events (implies --backend \
                 parallel) and report the analysis: per-domain \
                 busy/idle/steal breakdown, achieved DMA-compute overlap, \
                 scratchpad occupancy, critical path, plus the overlap \
                 audit against the double-buffer timing model.  With \
                 --trace, the Chrome export gains one track per worker \
                 domain and per DMA lane, merged with the compile spans.")

(* matmul-style default tiling when --runtime is given without tile
   flags: 16-blocks with 4-thread tiles on the outer dimensions, the
   innermost sub-tiled by 8 to bound the buffer window *)
let default_runtime_spec ~depth =
  Array.init depth (fun j ->
    if depth > 1 && j = depth - 1 then
      { Emsc_transform.Tile.block = None; mem = Some 8; thread = None }
    else { Emsc_transform.Tile.block = Some 16; mem = None; thread = Some 4 })

(* the runtime_report JSON object: the report's fields with the overlap
   audit nested under "overlap_audit" *)
let runtime_report_json ?model ~double_buffer (r : Runtime_report.t) =
  let audit = Emsc_audit.Overlap.audit ~double_buffer ?model r in
  match Runtime_report.to_json r with
  | Json.Obj fields ->
    Json.Obj (fields @ [ ("overlap_audit", Emsc_audit.Overlap.json audit) ])
  | j -> j

(* --- machine-model selection -------------------------------------------- *)

let machine_arg =
  Arg.(value & opt string "gtx8800"
       & info [ "machine" ] ~docv:"NAME|FILE"
           ~doc:"Machine model: a built-in hierarchy name (gtx8800, \
                 gtx8800_3level, core2duo_cache_as_scratchpad) or the \
                 path of an emsc-machine/1 JSON description.")

let resolve_machine spec =
  match Emsc_machine.Hierarchy.load spec with
  | Ok h -> h
  | Error msg ->
    Printf.eprintf "emsc: --machine: %s\n" msg;
    exit 1

let capacity_words_of hier =
  Emsc_machine.Hierarchy.staging_capacity_words hier

(* every command that resolves --machine folds the hierarchy digest into
   the option record, so a warm pass cache never serves a plan computed
   for a different machine *)
let machine_digest hier = Emsc_machine.Hierarchy.digest hier

let plan_of c =
  match c.Pipeline.plan with
  | Some plan -> plan
  | None -> die { Frontend.origin = c.Pipeline.source_name;
                  stage = "plan"; message = "pipeline produced no plan" }

let analyze_cmd =
  let run file machine arch merge delta optimize_movement inter_tile_reuse
      json trace no_cache cache_dir out =
    with_trace trace @@ fun () ->
    let hier = resolve_machine machine in
    let capacity_words = capacity_words_of hier in
    let cache = cache_of no_cache cache_dir in
    let options =
      { Options.default with
        arch; merge_per_array = merge; delta;
        optimize_movement; inter_tile_reuse;
        machine = machine_digest hier }
    in
    (* the registry picks up pass-cache and per-stage counters during
       compilation; the JSON report carries the resulting snapshot,
       and the Prof layer attributes the compile's wall time per pass *)
    let metrics_were_on = Metrics.enabled () in
    if json then Metrics.enable ();
    let prof_was_on = Prof.enabled () in
    if json && not prof_was_on then begin
      Prof.reset ();
      Prof.enable ()
    end;
    let snap0 = Metrics.snapshot () in
    let t0 = Unix.gettimeofday () in
    let c =
      ok_or_die (Pipeline.compile_source ~cache ~options (Source.file file))
    in
    let compile_wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let metrics = Metrics.diff snap0 (Metrics.snapshot ()) in
    let compile_prof = if json then Some (Prof.snapshot ()) else None in
    if json && not prof_was_on then begin
      Prof.disable ();
      Prof.reset ()
    end;
    if json && not metrics_were_on then Metrics.disable ();
    let plan = plan_of c in
    if json then
      let fields =
        match Plan.explain_json ~capacity_words plan with
        | Json.Obj fields -> fields
        | j -> [ ("plan", j) ]
      in
      emit_json out
        (Json.Obj
           (fields
            @ [ ("machine",
                 Json.Str (Emsc_machine.Hierarchy.name hier));
                ("pipeline", Pipeline.report_json c);
                ("metrics", Metrics.snapshot_json metrics) ]
            @
            match compile_prof with
            | Some prof ->
              [ ( "compile_profile",
                  Prof.json ~wall_ms:compile_wall_ms prof ) ]
            | None -> []))
    else begin
      Format.printf "%a@." Plan.pp plan;
      List.iter (fun (b : Plan.buffered) ->
        let buf = b.Plan.buffer in
        Format.printf "@.// buffer %s, sizes %a@." buf.Alloc.local_name
          (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " x ")
             Ast.pp_aexpr)
          (Array.to_list (Alloc.size_exprs buf));
        Format.printf "/* data move-in code */@.%a@." Ast.pp_block
          b.Plan.move_in;
        Format.printf "/* data move-out code */@.%a@." Ast.pp_block
          b.Plan.move_out)
        plan.Plan.buffered;
      if Emsc_driver.Cache.enabled cache then
        Printf.printf "\n// pass cache: %d hit(s), %d miss(es)\n"
          c.Pipeline.cache_hits c.Pipeline.cache_misses
    end
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Data-management plan for a program block")
    Term.(const run $ file_arg $ machine_arg $ arch_arg $ merge_arg
          $ delta_arg $ optmove_arg $ intertile_arg $ json_arg $ trace_arg
          $ nocache_arg $ cachedir_arg $ out_arg)

let deps_cmd =
  let run file no_cache cache_dir =
    let cache = cache_of no_cache cache_dir in
    let options = { Options.default with stop = Options.Dependences } in
    let c =
      ok_or_die (Pipeline.compile_source ~cache ~options (Source.file file))
    in
    match c.Pipeline.deps with
    | None | Some [] -> print_endline "no dependences"
    | Some deps -> List.iter (fun d -> Format.printf "%a@." Deps.pp d) deps
  in
  Cmd.v (Cmd.info "deps" ~doc:"Polyhedral dependence analysis")
    Term.(const run $ file_arg $ nocache_arg $ cachedir_arg)

let band_cmd =
  let run file no_cache cache_dir =
    let cache = cache_of no_cache cache_dir in
    let options = { Options.default with stop = Options.Band } in
    let c =
      ok_or_die (Pipeline.compile_source ~cache ~options (Source.file file))
    in
    match c.Pipeline.band with
    | Some band ->
      List.iteri (fun k h ->
        Format.printf "h%d = %a%s@." k Emsc_linalg.Vec.pp h
          (if List.nth band.Emsc_transform.Hyperplanes.parallel k then
             "  (parallel / space loop)"
           else "  (sequential)"))
        band.Emsc_transform.Hyperplanes.hyperplanes
    | None -> Printf.eprintf "band search: no common permutable band\n"
  in
  Cmd.v
    (Cmd.info "band" ~doc:"Find the permutable tiling-hyperplane band")
    Term.(const run $ file_arg $ nocache_arg $ cachedir_arg)

let parse_tile_list = function
  | None -> [||]
  | Some s ->
    (try
       Array.of_list
         (List.map int_of_string
            (List.filter (fun x -> x <> "") (String.split_on_char ',' s)))
     with _ ->
       Printf.eprintf "bad tile list %S (expected N,N,...)\n" s;
       exit 1)

let spec_of_lists ~depth ~block ~mem ~thread =
  let get a j =
    if j < Array.length a && a.(j) > 0 then Some a.(j) else None
  in
  Array.init depth (fun j ->
    { Emsc_transform.Tile.block = get block j; mem = get mem j;
      thread = get thread j })

let tile_list name doc =
  Arg.(value & opt (some string) None & info [ name ] ~docv:"N,N,..." ~doc)

let block_arg =
  tile_list "block"
    "Block-level tile size per loop dimension (0 = untiled at that \
     dimension); enables the simulated-GPU path."

let mem_arg = tile_list "mem" "Memory-capacity tile size per dimension."
let thread_arg = tile_list "thread" "Thread tile size per dimension."

(* --- emsc run ----------------------------------------------------------- *)

let run_cmd =
  let print_run_result (p : Prog.t) m ~flops ~loads ~stores =
    Printf.printf "executed: %.0f statement flops, %.0f loads, %.0f stores\n"
      flops loads stores;
    List.iter (fun (d : Prog.array_decl) ->
      let data = Emsc_machine.Memory.global_data m d.Prog.array_name in
      let sum = Array.fold_left ( +. ) 0.0 data in
      Printf.printf "checksum %-10s = %.6f\n" d.Prog.array_name sum)
      p.Prog.arrays
  in
  let run file machine params backend jobs policy double_buffer runtime
      inter_tile_reuse block mem thread =
    let hier = resolve_machine machine in
    let backend = if runtime then `Parallel else backend in
    match backend with
    | `Seq ->
      let options = { Options.default with stop = Options.Front_end } in
      let c =
        ok_or_die (Pipeline.compile_source ~options (Source.file file))
      in
      let p = c.Pipeline.prog in
      let m, counters =
        Runner.reference ~memory:Runner.Pseudorandom
          ~param_env:(cli_env params) p
      in
      print_run_result p m ~flops:counters.Emsc_machine.Exec.flops
        ~loads:counters.Emsc_machine.Exec.g_ld
        ~stores:counters.Emsc_machine.Exec.g_st
    | `Parallel ->
      (* the parallel backend executes a generated kernel, so the
         program must be tiled: compile under the given tile spec *)
      let p, _digest = ok_or_die (Frontend.load (Source.file file)) in
      let block = parse_tile_list block
      and mem = parse_tile_list mem
      and thread = parse_tile_list thread in
      if Array.length block = 0 && Array.length mem = 0
         && Array.length thread = 0
      then begin
        Printf.eprintf
          "run: --backend parallel executes a tiled kernel; give \
           --block/--mem/--thread tile sizes\n";
        exit 1
      end;
      (match p.Prog.stmts with
       | [ s ] ->
         let spec = spec_of_lists ~depth:s.Prog.depth ~block ~mem ~thread in
         let options =
           { Options.default with
             Options.find_band = false; tiling = Options.Spec spec;
             inter_tile_reuse; machine = machine_digest hier }
         in
         let c =
           ok_or_die
             (Pipeline.compile
                (Pipeline.job ~options
                   (Source.Program { name = file; prog = p })))
         in
         let simulate () =
           Runner.simulate ~memory:Runner.Pseudorandom
             ~param_env:(cli_env params)
             ~backend:(backend_of `Parallel jobs) ~policy ~double_buffer
             ~track_ownership:true ~hierarchy:hier c
         in
         let (m, result), report =
           if runtime then Runner.with_runtime_report simulate
           else (simulate (), None)
         in
         let t = result.Emsc_machine.Exec.totals in
         print_run_result c.Pipeline.prog m ~flops:t.Emsc_machine.Exec.flops
           ~loads:t.Emsc_machine.Exec.g_ld
           ~stores:t.Emsc_machine.Exec.g_st;
         (match report with
          | Some r ->
            Format.printf "%a" Runtime_report.pp r;
            Format.printf "%a" Emsc_audit.Overlap.pp
              (Emsc_audit.Overlap.audit ~double_buffer r)
          | None -> ())
       | _ ->
         Printf.eprintf "run: tiling flags need a single-statement program\n";
         exit 1)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute on the reference interpreter, or — with --backend \
             parallel and tile sizes — block-parallel on the simulated \
             machine (bit-identical checksums)")
    Term.(const run $ file_arg $ machine_arg $ param_args $ backend_arg
          $ exec_jobs_arg $ policy_arg $ double_buffer_arg $ runtime_flag
          $ intertile_arg $ block_arg $ mem_arg $ thread_arg)

(* --- emsc profile ------------------------------------------------------- *)

let gpu_profile ~cache ~name ~prog ~hier ~arch ~merge ~delta
    ~optimize_movement ~inter_tile_reuse ~spec ~threads ~global_sync ~backend
    ~jobs ~policy ~double_buffer ~runtime =
  let gpu_config = Emsc_machine.Hierarchy.to_gpu_exn hier in
  let capacity_words = capacity_words_of hier in
  let options =
    { Options.default with
      arch; merge_per_array = merge; delta; optimize_movement;
      inter_tile_reuse; machine = machine_digest hier;
      find_band = false; tiling = Options.Spec spec }
  in
  (* the metrics registry is on for the whole compile + run: the
     compile contributes per-stage and cache-latency histograms
     (p50/p95/p99 in the JSON), the run contributes the per-buffer DMA
     words the per-edge movement report below aggregates *)
  let metrics_were_on = Metrics.enabled () in
  Metrics.enable ();
  let snap0 = Metrics.snapshot () in
  let c =
    ok_or_die
      (Pipeline.compile ~cache
         (Pipeline.job ~options (Source.Program { name; prog })))
  in
  let plan = plan_of c in
  let simulate () =
    Prof.probe "runner.simulate" @@ fun () ->
    match backend with
    | `Seq -> Runner.simulate c
    | `Parallel ->
      Runner.simulate ~memory:Runner.Pseudorandom
        ~backend:(backend_of `Parallel jobs) ~policy ~double_buffer
        ~hierarchy:hier c
  in
  let (_, result), report =
    if runtime then Runner.with_runtime_report simulate
    else (simulate (), None)
  in
  let measured = Metrics.diff snap0 (Metrics.snapshot ()) in
  if not metrics_were_on then Metrics.disable ();
  let hierarchy_json =
    let module H = Emsc_machine.Hierarchy in
    let module P = Emsc_machine.Placement in
    if plan.Plan.buffered = [] then
      Json.Obj [ ("machine", Json.Str (H.name hier)) ]
    else begin
      let placement = P.of_plan ~double_buffer hier plan Runner.zero_env in
      let moved (p : P.placed) =
        let labels = [ ("buffer", p.P.p_buffer) ] in
        int_of_float
          (Metrics.counter_value ~labels measured "exec.move_in_words"
           +. Metrics.counter_value ~labels measured "exec.move_out_words")
      in
      let edges = P.edge_totals hier placement ~words_of:moved in
      Json.Obj
        [ ("machine", Json.Str (H.name hier));
          ("placement", P.to_json placement);
          ( "level_movement",
            Json.Obj
              (List.map (fun (e, w) -> (e, Json.Int w)) edges) ) ]
    end
  in
  let word_bytes = gpu_config.Emsc_machine.Config.word_bytes in
  let smem_bytes =
    match
      Emsc_machine.Timing.plan_smem_bytes ~double_buffer ~word_bytes plan
        Runner.zero_env
    with
    | Some b -> b
    | None -> Emsc_machine.Timing.(default_params.smem_bytes_per_block)
  in
  let gp =
    { Emsc_machine.Timing.threads;
      smem_bytes_per_block = smem_bytes;
      coalesce_eff = (if plan.Plan.buffered <> [] then 16.0 else 4.0);
      global_sync; double_buffer }
  in
  [ ("mode", Json.Str "gpu-sim");
    ( "backend",
      Json.Str
        (match backend with
         | `Seq -> "seq"
         | `Parallel -> Printf.sprintf "parallel-j%d" (max 1 jobs)) );
    ("plan", Plan.explain_json ~capacity_words plan);
    ("profile", Emsc_machine.Timing.profile_json gpu_config gp result);
    ("hierarchy", hierarchy_json);
    ("pipeline", Pipeline.report_json c);
    (* histograms in here carry p50/p95/p99 summaries — the per-stage
       stage_ms and cache hit/miss/store latency distributions *)
    ("metrics", Metrics.snapshot_json measured) ]
  @
  match report with
  | Some r ->
    (* the model side of the overlap audit: the first launch's timing
       breakdown under the same parameters the profile reports *)
    let model =
      match result.Emsc_machine.Exec.launches with
      | l :: _ -> Some (Emsc_machine.Timing.gpu_launch_breakdown gpu_config gp l)
      | [] -> None
    in
    [ ("runtime_report", runtime_report_json ?model ~double_buffer r) ]
  | None -> []

let cpu_profile ?(hier = Emsc_machine.Hierarchy.core2duo_cache_as_scratchpad)
    p ~params =
  let env = cli_env params in
  let module Sim = Emsc_machine.Cache.Sim in
  let sim = Sim.create hier in
  let on_global _ addr _ = ignore (Sim.access sim addr) in
  let _, c =
    Prof.probe "runner.reference" @@ fun () ->
    Runner.reference ~memory:Runner.Pseudorandom ~param_env:env ~on_global p
  in
  let hits = Sim.hits sim in
  let names = Sim.level_names sim in
  let home_accesses = Sim.home_accesses sim in
  let cpu_ms =
    Emsc_machine.Timing.cache_total_ms hier
      ~flops:c.Emsc_machine.Exec.flops ~hits ~home_accesses
  in
  (* per-level keys: "<level>_hits" for each simulated cache level,
     "<home>_accesses" for the home — "l1_hits"/"l2_hits"/
     "mem_accesses" on the default core2duo hierarchy, as before *)
  let cache_fields =
    Array.to_list
      (Array.mapi (fun i n -> (n ^ "_hits", Json.Float hits.(i))) names)
    @ [ (Sim.home_name sim ^ "_accesses", Json.Float home_accesses) ]
  in
  [ ("mode", Json.Str "cpu-reference");
    ("machine", Json.Str (Emsc_machine.Hierarchy.name hier));
    ("totals", Emsc_machine.Exec.counters_json c);
    ("cache", Json.Obj cache_fields);
    ("cpu_ms", Json.Float cpu_ms) ]

let profile_cmd =
  let threads_arg =
    Arg.(value & opt int 256
         & info [ "threads" ] ~doc:"Simulated threads per block.")
  in
  let globalsync_arg =
    Arg.(value & flag
         & info [ "global-sync" ]
             ~doc:"Charge a cross-block synchronization per launch.")
  in
  let hotspots_arg =
    Arg.(value & flag
         & info [ "hotspots" ]
             ~doc:"Self-profile the compiler itself: print a top-K \
                   self-time table of the hot passes (FM projection, \
                   simplex, ILP, scanning, driver stages) to stderr, \
                   write flamegraph-compatible collapsed stacks (see \
                   --collapsed), and embed the compile_profile section \
                   in the JSON report.")
  in
  let collapsed_arg =
    Arg.(value & opt string "emsc-profile.collapsed"
         & info [ "collapsed" ] ~docv:"FILE"
             ~doc:"Where --hotspots writes collapsed stacks (one \
                   'pass;pass;pass <self µs>' line per call stack; feed \
                   to flamegraph.pl or speedscope).")
  in
  let run file machine arch merge delta optimize_movement inter_tile_reuse
      block mem thread threads global_sync backend jobs policy double_buffer
      runtime hotspots collapsed params trace no_cache cache_dir out =
    with_trace trace @@ fun () ->
    let prof_was_on = Prof.enabled () in
    if hotspots && not prof_was_on then begin
      Prof.reset ();
      Prof.enable ()
    end;
    let t_start = Unix.gettimeofday () in
    let hier = resolve_machine machine in
    let cache = cache_of no_cache cache_dir in
    let p, _digest = ok_or_die (Frontend.load (Source.file file)) in
    let block = parse_tile_list block
    and mem = parse_tile_list mem
    and thread = parse_tile_list thread in
    let tiled =
      Array.length block > 0 || Array.length mem > 0
      || Array.length thread > 0
    in
    (* --runtime profiles the parallel backend; without explicit tile
       sizes it falls back to the canonical matmul-style spec *)
    let backend = if runtime then `Parallel else backend in
    if backend = `Parallel && not (tiled || runtime) then begin
      Printf.eprintf
        "profile: --backend parallel executes a tiled kernel; give \
         --block/--mem/--thread tile sizes\n";
      exit 1
    end;
    let fields =
      if tiled || runtime then begin
        match p.Prog.stmts with
        | [ s ] ->
          let spec =
            if tiled then spec_of_lists ~depth:s.Prog.depth ~block ~mem ~thread
            else default_runtime_spec ~depth:s.Prog.depth
          in
          gpu_profile ~cache ~name:file ~prog:p ~hier ~arch ~merge ~delta
            ~optimize_movement ~inter_tile_reuse ~spec ~threads ~global_sync
            ~backend ~jobs ~policy ~double_buffer ~runtime
        | _ ->
          Printf.eprintf
            "profile: tiling flags need a single-statement program\n";
          exit 1
      end
      else if machine = "gtx8800" then
        (* untiled profile replays on the cache-simulated CPU; the GPU
           default machine has no cache levels, so keep the legacy
           core2duo model unless the user picked one explicitly *)
        cpu_profile p ~params
      else cpu_profile ~hier p ~params
    in
    let fields =
      if Trace.enabled () then
        fields @ [ ("pass_timings", Trace.aggregate_json ()) ]
      else fields
    in
    let fields =
      if Prof.enabled () then begin
        let wall_ms = (Unix.gettimeofday () -. t_start) *. 1000.0 in
        let prof = Prof.snapshot () in
        if hotspots then begin
          Prof.pp_top Format.err_formatter prof;
          Prof.write_collapsed collapsed prof;
          Printf.eprintf "collapsed stacks written to %s\n%!" collapsed
        end;
        fields @ [ ("compile_profile", Prof.json ~wall_ms prof) ]
      end
      else fields
    in
    if hotspots && not prof_was_on then begin
      Prof.disable ();
      Prof.reset ()
    end;
    emit_json out (Json.Obj fields)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Execute on the simulated machine and report machine-readable \
             metrics: per-launch counters, occupancy, and the \
             compute/bandwidth/latency timing breakdown")
    Term.(const run $ file_arg $ machine_arg $ arch_arg $ merge_arg
          $ delta_arg $ optmove_arg $ intertile_arg $ block_arg $ mem_arg
          $ thread_arg $ threads_arg $ globalsync_arg $ backend_arg
          $ exec_jobs_arg $ policy_arg $ double_buffer_arg $ runtime_flag
          $ hotspots_arg $ collapsed_arg
          $ param_args $ trace_arg $ nocache_arg $ cachedir_arg $ out_arg)

(* --- emsc check --------------------------------------------------------- *)

let check_cmd =
  let fuzz_arg =
    Arg.(value & opt int 50
         & info [ "fuzz" ] ~docv:"N"
             ~doc:"Number of random affine programs to generate and check.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"S"
             ~doc:"Seed of the program generator (same seed, same programs).")
  in
  let run fuzz seed machine backend jobs inter_tile_reuse json trace out =
    with_trace trace @@ fun () ->
    let hier = resolve_machine machine in
    let progress =
      if json then fun _ -> () else fun m -> Printf.eprintf "emsc check: %s\n%!" m
    in
    let report =
      Emsc_check.Fuzz.run ~backend:(backend_of backend jobs) ~fuzz ~seed
        ~inter_tile:inter_tile_reuse
        ~capacity_words:(capacity_words_of hier) ~hierarchy:hier ~progress ()
    in
    if json then emit_json out (Emsc_check.Fuzz.report_json report)
    else Format.printf "%a@." Emsc_check.Fuzz.pp_report report;
    if report.Emsc_check.Fuzz.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Differential testing and invariant checking: run randomly \
             generated affine programs and the kernel suite through the \
             pipeline at several planner settings, compare transformed \
             execution against the reference interpreter bit-for-bit, and \
             verify the static plan invariants (single transfer, bounds, \
             capacity, write-back safety).  Failing random programs are \
             shrunk to a minimal reproducer.  With --backend parallel \
             every tiled check also runs block-parallel with the \
             ownership tracker armed and requires counter totals \
             bit-identical to sequential execution.  Exits 1 on any \
             failure.")
    Term.(const run $ fuzz_arg $ seed_arg $ machine_arg $ backend_arg
          $ exec_jobs_arg $ intertile_arg $ json_arg $ trace_arg $ out_arg)

(* --- emsc compile ------------------------------------------------------- *)

let compile_cmd =
  let files_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE")
  in
  let jobs_arg =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker processes for the batch (0 = one per core).")
  in
  let run files arch merge delta optimize_movement json jobs trace no_cache
      cache_dir out =
    with_trace trace @@ fun () ->
    let cache = cache_of no_cache cache_dir in
    let options =
      { Options.default with
        arch; merge_per_array = merge; delta; optimize_movement }
    in
    let jobs = if jobs <= 0 then Pipeline.default_jobs () else jobs in
    let batch = List.map (fun f -> Pipeline.job ~options (Source.file f)) files in
    let t0 = Unix.gettimeofday () in
    let results = Pipeline.compile_many ~cache ~jobs batch in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let errors =
      List.filter_map (function Error e -> Some e | Ok _ -> None) results
    in
    let hits, misses =
      List.fold_left
        (fun (h, m) -> function
          | Ok c -> (h + c.Pipeline.cache_hits, m + c.Pipeline.cache_misses)
          | Error _ -> (h, m))
        (0, 0) results
    in
    if json then
      emit_json out
        (Json.Obj
           [ ("schema", Json.Str "emsc-compile/1");
             ( "files",
               Json.List
                 (List.map2
                    (fun f -> function
                      | Ok c -> Pipeline.report_json c
                      | Error e ->
                        Json.Obj
                          [ ("source", Json.Str f);
                            ("error", Json.Str (Frontend.error_message e)) ])
                    files results) );
             ( "summary",
               Json.Obj
                 [ ("files", Json.Int (List.length files));
                   ("errors", Json.Int (List.length errors));
                   ("wall_ms", Json.Float wall_ms);
                   ( "cache",
                     Json.Obj
                       [ ("hits", Json.Int hits);
                         ("misses", Json.Int misses) ] );
                   ("jobs", Json.Int jobs) ] ) ])
    else begin
      List.iter2
        (fun f -> function
          | Ok c ->
            Printf.printf "%-32s ok    %2d stage(s), %d cache hit(s)\n" f
              (List.length c.Pipeline.timings) c.Pipeline.cache_hits
          | Error e ->
            Printf.printf "%-32s ERROR %s\n" f (Frontend.error_message e))
        files results;
      Printf.printf "%d file(s), %d error(s), %.1f ms, %d worker(s)\n"
        (List.length files) (List.length errors) wall_ms jobs
    end;
    if errors <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Batch-compile programs through the full pipeline in parallel \
             worker processes, reporting per-stage timings and pass-cache \
             traffic")
    Term.(const run $ files_arg $ arch_arg $ merge_arg $ delta_arg
          $ optmove_arg $ json_arg $ jobs_arg $ trace_arg $ nocache_arg
          $ cachedir_arg $ out_arg)

(* --- emsc audit --------------------------------------------------------- *)

let audit_cmd =
  let files_arg = Arg.(value & pos_all string [] & info [] ~docv:"FILE") in
  let tolerance_arg =
    Arg.(value & opt float Emsc_audit.Audit.default_tolerance
         & info [ "tolerance" ] ~docv:"R"
             ~doc:"Maximum tolerated absolute relative error between a \
                   predicted and a measured quantity.")
  in
  let suite_arg =
    Arg.(value & flag
         & info [ "suite" ] ~doc:"Also audit the built-in kernel suite.")
  in
  let run files suite tolerance machine arch merge delta optimize_movement
      inter_tile_reuse params json trace no_cache cache_dir out =
    with_trace trace @@ fun () ->
    let hier = resolve_machine machine in
    if files = [] && not suite then begin
      Printf.eprintf "audit: give FILE arguments or --suite\n";
      exit 1
    end;
    let cache = cache_of no_cache cache_dir in
    let options =
      { Options.default with
        arch; merge_per_array = merge; delta; optimize_movement;
        inter_tile_reuse; machine = machine_digest hier }
    in
    let param_env =
      if params = [] then Runner.zero_env else cli_env params
    in
    let file_jobs =
      List.map (fun f -> (f, Pipeline.job ~options (Source.file f))) files
    in
    let suite_jobs =
      if suite then
        List.map (fun (j : Pipeline.job) -> (Source.name j.Pipeline.source, j))
          (Emsc_kernels.Suite.jobs ())
      else []
    in
    let results =
      List.map (fun (name, job) ->
        (name,
         Emsc_audit.Audit.audit_job ~cache ~tolerance ~hierarchy:hier
           ~param_env job))
        (file_jobs @ suite_jobs)
    in
    let all_ok =
      List.for_all (fun (_, o) -> Emsc_audit.Audit.ok o) results
    in
    if json then
      emit_json out
        (Json.Obj
           [ ("schema", Json.Str "emsc-audit-batch/1");
             ("tolerance", Json.Float tolerance);
             ("ok", Json.Bool all_ok);
             ( "results",
               Json.List
                 (List.map (fun (name, o) ->
                    Emsc_audit.Audit.outcome_json ~name o)
                    results) ) ])
    else
      List.iter (fun (name, o) ->
        Format.printf "%a@." (Emsc_audit.Audit.pp_outcome ~name) o)
        results;
    if not all_ok then exit 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Cost-model audit: compile, replay on the simulated machine in \
             full fidelity, and report the relative error of every \
             predicted quantity (per-buffer movement volume, footprint, \
             counter totals, timing-model terms) against the measured \
             telemetry.  Exits 1 when a compilation fails or drift \
             exceeds the tolerance.")
    Term.(const run $ files_arg $ suite_arg $ tolerance_arg $ machine_arg
          $ arch_arg $ merge_arg $ delta_arg $ optmove_arg $ intertile_arg
          $ param_args $ json_arg $ trace_arg $ nocache_arg $ cachedir_arg
          $ out_arg)

(* --- emsc serve / emsc client ------------------------------------------- *)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Serve (or dial) a Unix-domain socket at $(docv).")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"N"
           ~doc:"Serve (or dial) TCP port $(docv) instead of a Unix socket.")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"HOST" ~doc:"Host for --port.")

let addr_of cmd socket port host : Emsc_serve.Server.addr =
  match socket, port with
  | Some path, None -> `Unix path
  | None, Some p -> `Tcp (host, p)
  | None, None ->
    Printf.eprintf "%s: give --socket PATH or --port N\n" cmd;
    exit 1
  | Some _, Some _ ->
    Printf.eprintf "%s: --socket and --port are mutually exclusive\n" cmd;
    exit 1

let serve_cmd =
  let workers_arg =
    Arg.(value & opt int 0
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains executing requests (0 = pick from the \
                   core count).")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admitted-request queue bound; requests past it are \
                   rejected with code queue_full (backpressure).")
  in
  let timeout_arg =
    Arg.(value & opt float 0.0
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Default per-request deadline: a request still queued \
                   after $(docv) ms is answered with code timeout instead \
                   of compiled (0 = none; requests may override).")
  in
  let hot_cap_arg =
    Arg.(value & opt int 256
         & info [ "hot-cap" ] ~docv:"N"
             ~doc:"LRU entry cap of the shared in-memory hot cache \
                   (0 = unbounded).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No lifecycle logging.")
  in
  let run socket port host workers queue timeout_ms hot_cap machine quiet
      no_cache cache_dir =
    let addr = addr_of "serve" socket port host in
    let max_entries = if hot_cap > 0 then Some hot_cap else None in
    let cache =
      if no_cache then Emsc_driver.Cache.in_memory ?max_entries ()
      else Emsc_driver.Cache.create ?dir:cache_dir ?max_entries ()
    in
    let hier = resolve_machine machine in
    ignore hier;
    (* the daemon keeps latency quantiles and queue gauges live so a
       status/metrics consumer sees them without restarting it *)
    Metrics.enable ();
    let log m = if not quiet then Printf.eprintf "emsc serve: %s\n%!" m in
    let cfg =
      Emsc_serve.Server.config
        ?workers:(if workers > 0 then Some workers else None)
        ~queue_capacity:queue ~default_timeout_ms:timeout_ms ~cache
        ~default_machine:machine ~install_signal_handlers:true ~log addr
    in
    let stats = Emsc_serve.Server.run cfg in
    log
      (Printf.sprintf "served %d, rejected %d over %d connection(s)"
         stats.Emsc_serve.Server.served stats.Emsc_serve.Server.rejected
         stats.Emsc_serve.Server.connections)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the compile daemon: newline-delimited JSON requests \
             (emsc-serve/1) over a Unix or TCP socket, dispatched to a \
             domain worker pool over a shared hot pass cache.  Stop it \
             with an in-band shutdown request or SIGTERM; both drain \
             gracefully.")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ workers_arg
          $ queue_arg $ timeout_arg $ hot_cap_arg $ machine_arg $ quiet_arg
          $ nocache_arg $ cachedir_arg)

let client_cmd =
  let op_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OP"
             ~doc:"One of compile, analyze, check, status, shutdown.")
  in
  let files_arg =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"FILE")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline forwarded to the daemon.")
  in
  let fuzz_arg =
    Arg.(value & opt int 10
         & info [ "fuzz" ] ~docv:"N" ~doc:"Programs for the check op.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Check seed.")
  in
  let run socket port host op files timeout_ms fuzz seed machine arch merge
      delta optimize_movement inter_tile_reuse block mem thread =
    let addr = addr_of "client" socket port host in
    let options =
      { Emsc_serve.Protocol.o_arch = arch;
        o_merge_per_array = merge; o_delta = delta;
        o_optimize_movement = optimize_movement;
        o_inter_tile_reuse = inter_tile_reuse;
        o_machine = (if machine = "gtx8800" then "" else machine);
        o_block = Array.to_list (parse_tile_list block);
        o_mem = Array.to_list (parse_tile_list mem);
        o_thread = Array.to_list (parse_tile_list thread) }
    in
    let requests =
      let req i o =
        { Emsc_serve.Protocol.req_id = string_of_int i; op = o; timeout_ms }
      in
      match op with
      | "status" -> [ req 0 Emsc_serve.Protocol.Status ]
      | "shutdown" -> [ req 0 Emsc_serve.Protocol.Shutdown ]
      | "check" -> [ req 0 (Emsc_serve.Protocol.Check { fuzz; seed }) ]
      | "compile" | "analyze" ->
        if files = [] then begin
          Printf.eprintf "client: %s needs FILE arguments\n" op;
          exit 1
        end;
        List.mapi
          (fun i f ->
            let text =
              let ic = open_in f in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            let payload =
              if op = "compile" then
                Emsc_serve.Protocol.Compile { name = f; text; options }
              else Emsc_serve.Protocol.Analyze { name = f; text; options }
            in
            req i payload)
          files
      | o ->
        Printf.eprintf "client: unknown op %S\n" o;
        exit 1
    in
    match Emsc_serve.Client.connect addr with
    | Error m ->
      Printf.eprintf "client: cannot connect: %s\n" m;
      exit 1
    | Ok conn ->
      let failed = ref false in
      List.iter
        (fun r ->
          match Emsc_serve.Client.roundtrip conn r with
          | Error m ->
            Printf.eprintf "client: %s\n" m;
            failed := true
          | Ok resp ->
            print_endline resp.Emsc_serve.Client.raw;
            if not resp.Emsc_serve.Client.ok then failed := true)
        requests;
      Emsc_serve.Client.close conn;
      if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to an emsc serve daemon: send compile/analyze/check/\
             status/shutdown requests and print the raw JSON response \
             lines (exit 1 if any request was rejected).")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ op_arg $ files_arg
          $ timeout_arg $ fuzz_arg $ seed_arg $ machine_arg $ arch_arg
          $ merge_arg $ delta_arg $ optmove_arg $ intertile_arg $ block_arg
          $ mem_arg $ thread_arg)

(* --- emsc bench-compare ------------------------------------------------- *)

let bench_compare_cmd =
  let old_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD")
  in
  let new_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW")
  in
  let wall_arg =
    Arg.(value & opt float Emsc_audit.Bench_compare.default_wall_tolerance
         & info [ "wall-tolerance" ] ~docv:"R"
             ~doc:"Tolerated relative wall-time growth per figure (wall \
                   time is machine-dependent; loosen this across hosts).")
  in
  let move_arg =
    Arg.(value & opt float Emsc_audit.Bench_compare.default_move_tolerance
         & info [ "move-tolerance" ] ~docv:"R"
             ~doc:"Tolerated relative growth of simulated global-memory \
                   words per kernel (deterministic; keep tight).")
  in
  let runtime_arg =
    Arg.(value
         & opt float Emsc_audit.Bench_compare.default_runtime_tolerance
         & info [ "runtime-tolerance" ] ~docv:"R"
             ~doc:"Tolerated relative wall-time growth per parallel-runtime \
                   point (domain scheduling is noisy; keep loose).")
  in
  let read_json path =
    let ic = open_in path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string s with
    | Ok j -> j
    | Error e ->
      Printf.eprintf "bench-compare: %s: %s\n" path e;
      exit 1
  in
  let run old_path new_path wall_tolerance move_tolerance runtime_tolerance
      json out =
    let old_j = read_json old_path and new_j = read_json new_path in
    match
      Emsc_audit.Bench_compare.compare ~wall_tolerance ~move_tolerance
        ~runtime_tolerance old_j new_j
    with
    | Error e ->
      Printf.eprintf "bench-compare: %s\n" e;
      exit 1
    | Ok report ->
      if json then emit_json out (Emsc_audit.Bench_compare.json report)
      else Format.printf "%a@." Emsc_audit.Bench_compare.pp report;
      if not (Emsc_audit.Bench_compare.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:"Compare two BENCH_*.json artifacts and exit 1 on wall-time or \
             simulated-movement regressions (or lost measurements).")
    Term.(const run $ old_arg $ new_arg $ wall_arg $ move_arg $ runtime_arg
          $ json_arg $ out_arg)

let () =
  let info =
    Cmd.info "emsc"
      ~doc:"Explicitly-managed-scratchpad compiler (PPoPP'08 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; compile_cmd; profile_cmd; deps_cmd; band_cmd;
            run_cmd; check_cmd; audit_cmd; serve_cmd; client_cmd;
            bench_compare_cmd ]))

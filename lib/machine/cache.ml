type stats = {
  mutable hits : float;
  mutable misses : float;
}

type t = {
  nsets : int;
  assoc : int;
  line_words : int;
  tags : int array array;   (* nsets x assoc, -1 = invalid *)
  ages : int array array;   (* LRU: smaller = older *)
  mutable clock : int;
  st : stats;
}

let create ~size_bytes ~line_bytes ~assoc ~word_bytes =
  let line_words = max 1 (line_bytes / word_bytes) in
  let nlines = max 1 (size_bytes / line_bytes) in
  let assoc = max 1 assoc in
  let nsets = max 1 (nlines / assoc) in
  { nsets; assoc; line_words;
    tags = Array.init nsets (fun _ -> Array.make assoc (-1));
    ages = Array.init nsets (fun _ -> Array.make assoc 0);
    clock = 0;
    st = { hits = 0.; misses = 0. } }

let of_level (l : Hierarchy.level) =
  match l.Hierarchy.l_capacity_bytes, l.Hierarchy.l_line_bytes,
        l.Hierarchy.l_assoc
  with
  | Some size_bytes, Some line_bytes, Some assoc ->
    Some
      (create ~size_bytes ~line_bytes ~assoc
         ~word_bytes:l.Hierarchy.l_word_bytes)
  | _ -> None

let access c word_addr =
  let line = word_addr / c.line_words in
  let set = line mod c.nsets in
  let tags = c.tags.(set) and ages = c.ages.(set) in
  c.clock <- c.clock + 1;
  let rec find i = if i >= c.assoc then None
    else if tags.(i) = line then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    ages.(i) <- c.clock;
    c.st.hits <- c.st.hits +. 1.0;
    true
  | None ->
    c.st.misses <- c.st.misses +. 1.0;
    (* evict LRU way *)
    let victim = ref 0 in
    for i = 1 to c.assoc - 1 do
      if ages.(i) < ages.(!victim) then victim := i
    done;
    tags.(!victim) <- line;
    ages.(!victim) <- c.clock;
    false

let stats c = c.st

let reset c =
  Array.iter (fun t -> Array.fill t 0 (Array.length t) (-1)) c.tags;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) c.ages;
  c.clock <- 0;
  c.st.hits <- 0.;
  c.st.misses <- 0.

(* Multi-level inclusive lookup over the cache-shaped levels of a
   hierarchy (those with line/assoc geometry), innermost first; an
   access that misses every simulated level counts against the home. *)
module Sim = struct
  type h = {
    names : string array;   (* simulated cache levels, innermost first *)
    caches : t array;
    level_hits : float array;
    mutable home : float;
    home_name : string;
  }

  let create (hier : Hierarchy.t) =
    let sims =
      List.filter_map
        (fun (l : Hierarchy.level) ->
          match of_level l with
          | Some c -> Some (l.Hierarchy.l_name, c)
          | None -> None)
        (Hierarchy.explicit_levels hier)
    in
    { names = Array.of_list (List.map fst sims);
      caches = Array.of_list (List.map snd sims);
      level_hits = Array.make (List.length sims) 0.0;
      home = 0.0;
      home_name = (Hierarchy.home hier).Hierarchy.l_name }

  let num_levels h = Array.length h.caches

  let access h addr =
    let n = num_levels h in
    let rec go i =
      if i >= n then begin
        h.home <- h.home +. 1.0;
        n
      end
      else if access h.caches.(i) addr then begin
        h.level_hits.(i) <- h.level_hits.(i) +. 1.0;
        i
      end
      else go (i + 1)
    in
    go 0

  let hits h = Array.copy h.level_hits
  let home_accesses h = h.home
  let level_names h = Array.copy h.names
  let home_name h = h.home_name
end

(* Declarative N-level explicit memory hierarchies.

   A machine is an ordered stack of memory levels, innermost (closest
   to the compute units) first and the unbounded home level (DRAM)
   last.  Every level but the home has a transfer edge to its parent —
   the next level outward — with an aggregate bandwidth, a per-transfer
   latency, and a coalescing width.  The paper's 8800 GTX is the
   2-level special case (scratchpad ⊂ DRAM); arches with more levels
   (registers ⊂ smem ⊂ DRAM, or CPU cache-as-scratchpad stacks) are
   data, not code, and can be loaded from JSON files
   (examples/machines/*.json). *)

module J = Emsc_obs.Json

type edge = {
  e_bw_words_per_cycle : float;  (* aggregate over all units of the level *)
  e_latency : float;             (* cycles per uncovered transfer *)
  e_coalesce_width : int;        (* consecutive words per transaction *)
}

type level = {
  l_name : string;
  l_capacity_bytes : int option;  (* None = unbounded (the home level) *)
  l_word_bytes : int;
  l_access_cycles : float;        (* per word per thread, conflict-free *)
  l_fanout : int;                 (* instances of this level on the chip *)
  l_line_bytes : int option;      (* cache-line geometry, when the level *)
  l_assoc : int option;           (* is simulated as a hardware cache    *)
  l_to_parent : edge option;      (* None only on the home level *)
}

type compute = {
  c_clock_mhz : float;
  c_flop_cycles : float;
  c_simd_per_unit : int;
  c_warp_size : int;
  c_max_blocks_per_unit : int;
  c_sync_cycles : float;
  c_global_sync_base : float;
  c_global_sync_per_block : float;
  c_launch_overhead_cycles : float;
}

type t = {
  h_name : string;
  h_compute : compute;
  h_levels : level list;  (* innermost first, home (DRAM) last *)
}

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let name h = h.h_name
let levels h = h.h_levels
let compute h = h.h_compute
let num_levels h = List.length h.h_levels

let home h = List.nth h.h_levels (num_levels h - 1)

(* explicitly managed levels: everything but the home *)
let explicit_levels h =
  List.filteri (fun i _ -> i < num_levels h - 1) h.h_levels

(* the staging level: the explicit level adjacent to the home — where
   the paper's plan stages its buffers (smem on the GPU) *)
let staging h = List.nth h.h_levels (num_levels h - 2)

let level_capacity_words (l : level) =
  match l.l_capacity_bytes with
  | Some b -> Some (b / max 1 l.l_word_bytes)
  | None -> None

let staging_capacity_words h =
  match level_capacity_words (staging h) with
  | Some w -> w
  | None -> max_int

(* Double buffering keeps two windows of every staged buffer resident
   (the one being computed on and the one in flight), so the effective
   need at any explicitly managed level is twice the placed footprint.
   Every capacity comparison — Plan, Invariants, Runtime arena, bench —
   must go through this one helper rather than re-deriving the rule. *)
let effective_words ~double_buffer words =
  if double_buffer then 2 * words else words

(* edge i connects level i (inner) to level i+1; edge names read
   "inner<-outer", the direction data is staged *)
let edges h =
  let rec go = function
    | inner :: (outer :: _ as rest) ->
      (match inner.l_to_parent with
       | Some e -> (inner, outer, e) :: go rest
       | None ->
         invalid_arg
           (Printf.sprintf "Hierarchy: level %s has no edge to its parent"
              inner.l_name))
    | _ -> []
  in
  go h.h_levels

let edge_name (inner, outer, _e) = inner.l_name ^ "<-" ^ outer.l_name

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate h =
  let n = List.length h.h_levels in
  if n < 2 then Error "hierarchy needs at least two levels"
  else begin
    let err = ref None in
    let fail msg = if !err = None then err := Some msg in
    List.iteri (fun i (l : level) ->
      let is_home = i = n - 1 in
      if l.l_name = "" then fail "level has an empty name";
      if l.l_word_bytes <= 0 then
        fail (l.l_name ^ ": word_bytes must be positive");
      if l.l_fanout <= 0 then fail (l.l_name ^ ": fanout must be positive");
      (match l.l_capacity_bytes with
       | Some b when b <= 0 ->
         fail (l.l_name ^ ": capacity_bytes must be positive")
       | _ -> ());
      if is_home then begin
        if l.l_to_parent <> None then
          fail (l.l_name ^ ": the home level cannot have a parent edge");
        if l.l_capacity_bytes <> None then
          fail
            (l.l_name
           ^ ": the home level is unbounded (capacity_bytes must be null)")
      end
      else begin
        (match l.l_to_parent with
         | None -> fail (l.l_name ^ ": inner level needs a parent edge")
         | Some e ->
           if e.e_bw_words_per_cycle <= 0.0 then
             fail (l.l_name ^ ": edge bandwidth must be positive");
           if e.e_coalesce_width <= 0 then
             fail (l.l_name ^ ": edge coalesce_width must be positive"));
        if l.l_capacity_bytes = None then
          fail (l.l_name ^ ": inner level needs a capacity")
      end)
      h.h_levels;
    let names = List.map (fun l -> l.l_name) h.h_levels in
    if List.length (List.sort_uniq compare names) <> n then
      fail "level names must be distinct";
    match !err with Some msg -> Error msg | None -> Ok h
  end

(* ------------------------------------------------------------------ *)
(* Bridge to the 2-level GPU timing model                              *)
(* ------------------------------------------------------------------ *)

(* The legacy [Config.gpu] record is exactly the staging-edge view of a
   hierarchy: the level adjacent to the home provides the scratchpad
   parameters and its parent edge the DRAM bandwidth/latency.  The
   [gtx8800] built-in below maps onto [Config.gtx8800] field for field,
   which is what keeps the hierarchy path bit-identical to the legacy
   model (test/test_hierarchy.ml pins this). *)
let to_gpu h : (Config.gpu, string) result =
  let s = staging h in
  match s.l_capacity_bytes, s.l_to_parent with
  | None, _ -> Error (s.l_name ^ ": staging level has no capacity")
  | _, None -> Error (s.l_name ^ ": staging level has no parent edge")
  | Some cap, Some e ->
    let c = h.h_compute in
    Ok
      { Config.num_mimd = s.l_fanout;
        simd_per_mimd = c.c_simd_per_unit;
        warp_size = c.c_warp_size;
        smem_bytes = cap;
        word_bytes = s.l_word_bytes;
        clock_mhz = c.c_clock_mhz;
        max_blocks_per_mimd = c.c_max_blocks_per_unit;
        flop_cycles = c.c_flop_cycles;
        smem_access_cycles = s.l_access_cycles;
        global_latency = e.e_latency;
        global_bw_words_per_cycle = e.e_bw_words_per_cycle;
        coalesce_width = e.e_coalesce_width;
        sync_cycles = c.c_sync_cycles;
        global_sync_base = c.c_global_sync_base;
        global_sync_per_block = c.c_global_sync_per_block;
        launch_overhead_cycles = c.c_launch_overhead_cycles }

let to_gpu_exn h =
  match to_gpu h with
  | Ok g -> g
  | Error msg -> invalid_arg ("Hierarchy.to_gpu: " ^ h.h_name ^ ": " ^ msg)

let ms_of_cycles h cycles = cycles /. (h.h_compute.c_clock_mhz *. 1000.0)

(* ------------------------------------------------------------------ *)
(* Built-ins                                                           *)
(* ------------------------------------------------------------------ *)

(* GeForce 8800 GTX, the paper's target: 16 multiprocessors with 16 KB
   of scratchpad each over 86.4 GB/s DRAM.  The numbers mirror
   [Config.gtx8800] exactly — this *is* that record, as data. *)
let gtx8800 =
  { h_name = "gtx8800";
    h_compute =
      { c_clock_mhz = 1350.0;
        c_flop_cycles = 1.0;
        c_simd_per_unit = 8;
        c_warp_size = 32;
        c_max_blocks_per_unit = 8;
        c_sync_cycles = 8.0;
        c_global_sync_base = 4000.0;
        c_global_sync_per_block = 120.0;
        c_launch_overhead_cycles = 7000.0 };
    h_levels =
      [ { l_name = "smem";
          l_capacity_bytes = Some 16384;
          l_word_bytes = 4;
          l_access_cycles = 3.0;
          l_fanout = 16;
          l_line_bytes = None;
          l_assoc = None;
          l_to_parent =
            Some
              { e_bw_words_per_cycle = 16.0;
                e_latency = 450.0;
                e_coalesce_width = 16 } };
        { l_name = "dram";
          l_capacity_bytes = None;
          l_word_bytes = 4;
          l_access_cycles = 450.0;
          l_fanout = 1;
          l_line_bytes = None;
          l_assoc = None;
          l_to_parent = None } ] }

(* The same chip with the per-multiprocessor register file modelled as
   an explicit innermost level: a per-block window of the 8192-register
   file (first-order: half of it, 16 KB, is placeable), fed from smem
   over a wide low-latency on-chip edge.  The staging level (smem) and
   its DRAM edge are identical to [gtx8800], so top-edge timing does
   not move; what changes is where small buffers may live and which
   edge their traffic crosses. *)
let gtx8800_3level =
  { h_name = "gtx8800_3level";
    h_compute = gtx8800.h_compute;
    h_levels =
      [ { l_name = "regs";
          l_capacity_bytes = Some 8192;
          l_word_bytes = 4;
          l_access_cycles = 1.0;
          l_fanout = 16;
          l_line_bytes = None;
          l_assoc = None;
          l_to_parent =
            Some
              { e_bw_words_per_cycle = 256.0;
                e_latency = 24.0;
                e_coalesce_width = 16 } };
        { l_name = "smem";
          l_capacity_bytes = Some 16384;
          l_word_bytes = 4;
          l_access_cycles = 3.0;
          l_fanout = 16;
          l_line_bytes = None;
          l_assoc = None;
          l_to_parent =
            Some
              { e_bw_words_per_cycle = 16.0;
                e_latency = 450.0;
                e_coalesce_width = 16 } };
        { l_name = "dram";
          l_capacity_bytes = None;
          l_word_bytes = 4;
          l_access_cycles = 450.0;
          l_fanout = 1;
          l_line_bytes = None;
          l_assoc = None;
          l_to_parent = None } ] }

(* Intel Core2 Duo host of the paper's testbed, with its caches treated
   as explicitly managed scratchpads for planning and as set-
   associative LRU caches for the baseline simulation (the line/assoc
   geometry drives [Cache.Sim]).  Access cycles per level reproduce the
   legacy [cpu_total_ms] constants: L1 2.5, L2 18, memory 165 cycles at
   2.13 GHz. *)
let core2duo_cache_as_scratchpad =
  { h_name = "core2duo_cache_as_scratchpad";
    h_compute =
      { c_clock_mhz = 2130.0;
        c_flop_cycles = 2.5;
        c_simd_per_unit = 1;
        c_warp_size = 1;
        c_max_blocks_per_unit = 1;
        c_sync_cycles = 0.0;
        c_global_sync_base = 0.0;
        c_global_sync_per_block = 0.0;
        c_launch_overhead_cycles = 0.0 };
    h_levels =
      [ { l_name = "l1";
          l_capacity_bytes = Some 32768;
          l_word_bytes = 4;
          l_access_cycles = 2.5;
          l_fanout = 1;
          l_line_bytes = Some 64;
          l_assoc = Some 8;
          l_to_parent =
            Some
              { e_bw_words_per_cycle = 8.0;
                e_latency = 18.0;
                e_coalesce_width = 16 } };
        { l_name = "l2";
          l_capacity_bytes = Some 2097152;
          l_word_bytes = 4;
          l_access_cycles = 18.0;
          l_fanout = 1;
          l_line_bytes = Some 64;
          l_assoc = Some 8;
          l_to_parent =
            Some
              { e_bw_words_per_cycle = 2.0;
                e_latency = 165.0;
                e_coalesce_width = 16 } };
        { l_name = "mem";
          l_capacity_bytes = None;
          l_word_bytes = 4;
          l_access_cycles = 165.0;
          l_fanout = 1;
          l_line_bytes = None;
          l_assoc = None;
          l_to_parent = None } ] }

let builtins =
  [ ("gtx8800", gtx8800);
    ("gtx8800_3level", gtx8800_3level);
    ("core2duo_cache_as_scratchpad", core2duo_cache_as_scratchpad) ]

let find_builtin name = List.assoc_opt name builtins

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let edge_json e =
  J.Obj
    [ ("bw_words_per_cycle", J.Float e.e_bw_words_per_cycle);
      ("latency", J.Float e.e_latency);
      ("coalesce_width", J.Int e.e_coalesce_width) ]

let opt_int = function Some i -> J.Int i | None -> J.Null

let level_json l =
  J.Obj
    ([ ("name", J.Str l.l_name);
       ("capacity_bytes", opt_int l.l_capacity_bytes);
       ("word_bytes", J.Int l.l_word_bytes);
       ("access_cycles", J.Float l.l_access_cycles);
       ("fanout", J.Int l.l_fanout) ]
     @ (match l.l_line_bytes, l.l_assoc with
        | None, None -> []
        | lb, a -> [ ("line_bytes", opt_int lb); ("assoc", opt_int a) ])
     @
     match l.l_to_parent with
     | Some e -> [ ("to_parent", edge_json e) ]
     | None -> [])

let compute_json c =
  J.Obj
    [ ("clock_mhz", J.Float c.c_clock_mhz);
      ("flop_cycles", J.Float c.c_flop_cycles);
      ("simd_per_unit", J.Int c.c_simd_per_unit);
      ("warp_size", J.Int c.c_warp_size);
      ("max_blocks_per_unit", J.Int c.c_max_blocks_per_unit);
      ("sync_cycles", J.Float c.c_sync_cycles);
      ("global_sync_base", J.Float c.c_global_sync_base);
      ("global_sync_per_block", J.Float c.c_global_sync_per_block);
      ("launch_overhead_cycles", J.Float c.c_launch_overhead_cycles) ]

let to_json h =
  J.Obj
    [ ("schema", J.Str "emsc-machine/1");
      ("name", J.Str h.h_name);
      ("compute", compute_json h.h_compute);
      ("levels", J.List (List.map level_json h.h_levels)) ]

(* stable content digest over the serialized machine: two hierarchies
   with the same name but different capacities digest differently, so
   cache keys built from this cannot serve a plan computed for a
   different machine *)
let digest h = Digest.to_hex (Digest.string (J.to_string (to_json h)))

(* -- parsing ------------------------------------------------------- *)

let ( let* ) = Result.bind

let field name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_field name j = J.member name j

let as_float what = function
  | J.Float f -> Ok f
  | J.Int i -> Ok (float_of_int i)
  | _ -> Error (what ^ ": expected a number")

let as_int what = function
  | J.Int i -> Ok i
  | _ -> Error (what ^ ": expected an integer")

let as_str what = function
  | J.Str s -> Ok s
  | _ -> Error (what ^ ": expected a string")

let opt_int_field what name j =
  match opt_field name j with
  | None | Some J.Null -> Ok None
  | Some v ->
    let* i = as_int (what ^ "." ^ name) v in
    Ok (Some i)

let float_field what name j =
  let* v = field name j in
  as_float (what ^ "." ^ name) v

let int_field what name j =
  let* v = field name j in
  as_int (what ^ "." ^ name) v

let edge_of_json what j =
  let* bw = float_field what "bw_words_per_cycle" j in
  let* lat = float_field what "latency" j in
  let* cw = int_field what "coalesce_width" j in
  Ok { e_bw_words_per_cycle = bw; e_latency = lat; e_coalesce_width = cw }

let level_of_json j =
  let* name_v = field "name" j in
  let* name = as_str "level.name" name_v in
  let* capacity = opt_int_field name "capacity_bytes" j in
  let* word_bytes = int_field name "word_bytes" j in
  let* access = float_field name "access_cycles" j in
  let* fanout =
    match opt_field "fanout" j with
    | None -> Ok 1
    | Some v -> as_int (name ^ ".fanout") v
  in
  let* line_bytes = opt_int_field name "line_bytes" j in
  let* assoc = opt_int_field name "assoc" j in
  let* edge =
    match opt_field "to_parent" j with
    | None | Some J.Null -> Ok None
    | Some e ->
      let* e = edge_of_json (name ^ ".to_parent") e in
      Ok (Some e)
  in
  Ok
    { l_name = name; l_capacity_bytes = capacity; l_word_bytes = word_bytes;
      l_access_cycles = access; l_fanout = fanout; l_line_bytes = line_bytes;
      l_assoc = assoc; l_to_parent = edge }

let compute_of_json j =
  let w = "compute" in
  let* clock = float_field w "clock_mhz" j in
  let* flop = float_field w "flop_cycles" j in
  let* simd = int_field w "simd_per_unit" j in
  let* warp = int_field w "warp_size" j in
  let* maxb = int_field w "max_blocks_per_unit" j in
  let* sync = float_field w "sync_cycles" j in
  let* gsb = float_field w "global_sync_base" j in
  let* gspb = float_field w "global_sync_per_block" j in
  let* launch = float_field w "launch_overhead_cycles" j in
  Ok
    { c_clock_mhz = clock; c_flop_cycles = flop; c_simd_per_unit = simd;
      c_warp_size = warp; c_max_blocks_per_unit = maxb;
      c_sync_cycles = sync; c_global_sync_base = gsb;
      c_global_sync_per_block = gspb; c_launch_overhead_cycles = launch }

let of_json j =
  let* name_v = field "name" j in
  let* name = as_str "name" name_v in
  let* compute_v = field "compute" j in
  let* compute = compute_of_json compute_v in
  let* levels_v = field "levels" j in
  let* levels =
    match levels_v with
    | J.List ls ->
      List.fold_left
        (fun acc l ->
          let* acc = acc in
          let* l = level_of_json l in
          Ok (l :: acc))
        (Ok []) ls
      |> Result.map List.rev
    | _ -> Error "levels: expected a list"
  in
  validate { h_name = name; h_compute = compute; h_levels = levels }

let of_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text ->
    (match J.of_string text with
     | Error msg -> Error (path ^ ": " ^ msg)
     | Ok j ->
       (match of_json j with
        | Error msg -> Error (path ^ ": " ^ msg)
        | Ok h -> Ok h))

(* [load spec] resolves a machine: a built-in name, else a JSON file *)
let load spec =
  match find_builtin spec with
  | Some h -> Ok h
  | None ->
    if Sys.file_exists spec then of_file spec
    else
      Error
        (Printf.sprintf
           "unknown machine %S (built-ins: %s; or give an arch JSON file)"
           spec
           (String.concat ", " (List.map fst builtins)))

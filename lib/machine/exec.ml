open Emsc_arith
open Emsc_ir
open Emsc_codegen

type counters = {
  mutable flops : float;
  mutable g_ld : float;
  mutable g_st : float;
  mutable s_ld : float;
  mutable s_st : float;
  mutable syncs : float;
  mutable fences : float;
}

let fresh () =
  { flops = 0.; g_ld = 0.; g_st = 0.; s_ld = 0.; s_st = 0.; syncs = 0.;
    fences = 0. }

let copy_counters c =
  { flops = c.flops; g_ld = c.g_ld; g_st = c.g_st; s_ld = c.s_ld;
    s_st = c.s_st; syncs = c.syncs; fences = c.fences }

let sub_counters a b =
  { flops = a.flops -. b.flops; g_ld = a.g_ld -. b.g_ld;
    g_st = a.g_st -. b.g_st; s_ld = a.s_ld -. b.s_ld;
    s_st = a.s_st -. b.s_st; syncs = a.syncs -. b.syncs;
    fences = a.fences -. b.fences }

let add_scaled dst d k =
  dst.flops <- dst.flops +. (d.flops *. k);
  dst.g_ld <- dst.g_ld +. (d.g_ld *. k);
  dst.g_st <- dst.g_st +. (d.g_st *. k);
  dst.s_ld <- dst.s_ld +. (d.s_ld *. k);
  dst.s_st <- dst.s_st +. (d.s_st *. k);
  dst.syncs <- dst.syncs +. (d.syncs *. k);
  dst.fences <- dst.fences +. (d.fences *. k)

let scale_counters c k =
  { flops = c.flops *. k; g_ld = c.g_ld *. k; g_st = c.g_st *. k;
    s_ld = c.s_ld *. k; s_st = c.s_st *. k; syncs = c.syncs *. k;
    fences = c.fences *. k }

let add_into src dst = add_scaled dst src 1.0

let total_global c = c.g_ld +. c.g_st
let total_smem c = c.s_ld +. c.s_st

let counters_json c =
  Emsc_obs.Json.Obj
    [ ("flops", Emsc_obs.Json.Float c.flops);
      ("global_loads", Emsc_obs.Json.Float c.g_ld);
      ("global_stores", Emsc_obs.Json.Float c.g_st);
      ("smem_loads", Emsc_obs.Json.Float c.s_ld);
      ("smem_stores", Emsc_obs.Json.Float c.s_st);
      ("syncs", Emsc_obs.Json.Float c.syncs);
      ("fences", Emsc_obs.Json.Float c.fences) ]

type launch = {
  grid : float;
  per_block : counters;
  repeat : float;  (* dynamic occurrences of this launch (sampling) *)
}

type result = {
  totals : counters;
  launches : launch list;
}

type mode = Full | Sampled of int

let rec expr_flops = function
  | Prog.Eref _ | Prog.Eiter _ | Prog.Eparam _ | Prog.Econst _ -> 0
  | Prog.Eneg e | Prog.Eabs e -> 1 + expr_flops e
  | Prog.Eadd (a, b) | Prog.Esub (a, b) | Prog.Emul (a, b)
  | Prog.Ediv (a, b) | Prog.Emin (a, b) | Prog.Emax (a, b) ->
    1 + expr_flops a + expr_flops b

(* staged-movement accounting local to one execution context: worker
   domains must never touch the (single-threaded) Metrics registry, so
   copies are tallied here and flushed — or reduced across blocks —
   from the main domain *)
type dma_tally = {
  mutable dma_copies : float;
  dma_in : (string, float ref) Hashtbl.t;
  dma_out : (string, float ref) Hashtbl.t;
}

let fresh_dma () =
  { dma_copies = 0.; dma_in = Hashtbl.create 4; dma_out = Hashtbl.create 4 }

let dma_sorted tbl =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl []
  |> List.sort compare

type block_dma = {
  copies : float;
  moved_in : (string * float) list;
  moved_out : (string * float) list;
}

let block_dma_of_tally d =
  { copies = d.dma_copies;
    moved_in = dma_sorted d.dma_in;
    moved_out = dma_sorted d.dma_out }

type ctx = {
  prog : Prog.t;
  stmts : (int, Prog.stmt) Hashtbl.t;
  flops_of : (int, int) Hashtbl.t;
  rewrite : Prog.stmt -> Prog.access -> Ast.ref_expr option;
  param_env : string -> Zint.t;
  memory : Memory.t;
  env : (string, Zint.t) Hashtbl.t;
  c : counters;
  mode : mode;
  on_global : (string -> int -> [ `Ld | `St ] -> unit) option;
  collect_dma : bool;
  dma : dma_tally;
  mutable in_launch : bool;
  mutable launches : launch list;
}

let lookup ctx n =
  match Hashtbl.find_opt ctx.env n with
  | Some v -> v
  | None -> ctx.param_env n

let eval_aexpr ctx e = Ast.eval (lookup ctx) e

(* integer value of an access-map row under the statement's bindings *)
let eval_access_row ctx (s : Prog.stmt) (row : Emsc_linalg.Vec.t) iters =
  let np = Prog.nparams ctx.prog in
  let depth = s.Prog.depth in
  let acc = ref row.(depth + np) in
  for i = 0 to depth - 1 do
    acc := Zint.add !acc (Zint.mul row.(i) iters.(i))
  done;
  for k = 0 to np - 1 do
    (* tile-origin parameters are bound as loop variables, real program
       parameters come from the valuation: go through [lookup] *)
    if not (Zint.is_zero row.(depth + k)) then
      acc :=
        Zint.add !acc
          (Zint.mul row.(depth + k) (lookup ctx ctx.prog.Prog.params.(k)))
  done;
  Zint.to_int_exn !acc

let read_ref ctx (r : Ast.ref_expr) =
  let idx = Array.map (fun e -> Zint.to_int_exn (eval_aexpr ctx e)) r.Ast.indices in
  if Memory.is_local ctx.memory r.Ast.array then begin
    ctx.c.s_ld <- ctx.c.s_ld +. 1.0;
    Memory.read_local ctx.memory r.Ast.array idx
  end
  else begin
    ctx.c.g_ld <- ctx.c.g_ld +. 1.0;
    (match ctx.on_global with
     | Some f when ctx.mode = Full ->
       f r.Ast.array
         (Memory.base_address ctx.memory r.Ast.array
          + Memory.flat_index ctx.memory r.Ast.array idx)
         `Ld
     | Some _ | None -> ());
    Memory.read_global ctx.memory r.Ast.array idx
  end

let write_ref ctx (r : Ast.ref_expr) v =
  let idx = Array.map (fun e -> Zint.to_int_exn (eval_aexpr ctx e)) r.Ast.indices in
  if Memory.is_local ctx.memory r.Ast.array then begin
    ctx.c.s_st <- ctx.c.s_st +. 1.0;
    Memory.write_local ctx.memory r.Ast.array idx v
  end
  else begin
    ctx.c.g_st <- ctx.c.g_st +. 1.0;
    (match ctx.on_global with
     | Some f when ctx.mode = Full ->
       f r.Ast.array
         (Memory.base_address ctx.memory r.Ast.array
          + Memory.flat_index ctx.memory r.Ast.array idx)
         `St
     | Some _ | None -> ());
    Memory.write_global ctx.memory r.Ast.array idx v
  end

let read_access ctx (s : Prog.stmt) (a : Prog.access) iters =
  match ctx.rewrite s a with
  | Some r -> read_ref ctx r
  | None ->
    let idx =
      Array.map (fun row -> eval_access_row ctx s row iters) a.Prog.map
    in
    ctx.c.g_ld <- ctx.c.g_ld +. 1.0;
    (match ctx.on_global with
     | Some f when ctx.mode = Full ->
       f a.Prog.array
         (Memory.base_address ctx.memory a.Prog.array
          + Memory.flat_index ctx.memory a.Prog.array idx)
         `Ld
     | Some _ | None -> ());
    Memory.read_global ctx.memory a.Prog.array idx

let write_access ctx (s : Prog.stmt) (a : Prog.access) iters v =
  match ctx.rewrite s a with
  | Some r -> write_ref ctx r v
  | None ->
    let idx =
      Array.map (fun row -> eval_access_row ctx s row iters) a.Prog.map
    in
    ctx.c.g_st <- ctx.c.g_st +. 1.0;
    (match ctx.on_global with
     | Some f when ctx.mode = Full ->
       f a.Prog.array
         (Memory.base_address ctx.memory a.Prog.array
          + Memory.flat_index ctx.memory a.Prog.array idx)
         `St
     | Some _ | None -> ());
    Memory.write_global ctx.memory a.Prog.array idx v

let rec eval_expr ctx s iters (e : Prog.expr) =
  match e with
  | Prog.Eref a -> read_access ctx s a iters
  | Prog.Eiter i -> Zint.to_float iters.(i)
  | Prog.Eparam k -> Zint.to_float (lookup ctx ctx.prog.Prog.params.(k))
  | Prog.Econst f -> f
  | Prog.Eneg e -> -.eval_expr ctx s iters e
  | Prog.Eabs e -> Float.abs (eval_expr ctx s iters e)
  | Prog.Eadd (a, b) -> eval_expr ctx s iters a +. eval_expr ctx s iters b
  | Prog.Esub (a, b) -> eval_expr ctx s iters a -. eval_expr ctx s iters b
  | Prog.Emul (a, b) -> eval_expr ctx s iters a *. eval_expr ctx s iters b
  | Prog.Ediv (a, b) -> eval_expr ctx s iters a /. eval_expr ctx s iters b
  | Prog.Emin (a, b) ->
    Float.min (eval_expr ctx s iters a) (eval_expr ctx s iters b)
  | Prog.Emax (a, b) ->
    Float.max (eval_expr ctx s iters a) (eval_expr ctx s iters b)

let exec_body ctx (s : Prog.stmt) iters =
  (match s.Prog.body with
   | None -> ()
   | Some (lhs, rhs) ->
     let v = eval_expr ctx s iters rhs in
     write_access ctx s lhs iters v);
  ctx.c.flops <-
    ctx.c.flops +. float_of_int (Hashtbl.find ctx.flops_of s.Prog.id)

let exec_stmt_call ctx stmt_id iter_args =
  let s =
    match Hashtbl.find_opt ctx.stmts stmt_id with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Exec: unknown statement %d" stmt_id)
  in
  let iters = Array.map (eval_aexpr ctx) iter_args in
  exec_body ctx s iters

(* Count the thread blocks of a launch: product of the trip counts of
   the outermost chain of Block loops (each evaluated at its outer
   loop's first iteration). *)
let rec grid_size ctx (l : Ast.loop) =
  let lb = eval_aexpr ctx l.Ast.lb and ub = eval_aexpr ctx l.Ast.ub in
  let trip =
    let d = Zint.sub ub lb in
    if Zint.is_negative d then 0.0
    else Zint.to_float (Zint.add (Zint.fdiv d l.Ast.step) Zint.one)
  in
  let inner =
    match l.Ast.body with
    | [ Ast.Loop ({ par = Ast.Block; _ } as l') ] ->
      Hashtbl.replace ctx.env l.Ast.var lb;
      let g = grid_size ctx l' in
      Hashtbl.remove ctx.env l.Ast.var;
      g
    | _ -> 1.0
  in
  trip *. inner

(* per-group movement attribution: a Copy between global memory and a
   local buffer is one staged word moving in (global -> local) or out
   (local -> global).  Exact under [Full] mode; [Sampled] runs only
   record the iterations they actually execute.  Tallied into the
   context (never straight into Metrics — see [dma_tally]). *)
let record_copy ctx (dst : Ast.ref_expr) (src : Ast.ref_expr) =
  let bump tbl name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r := !r +. 1.0
    | None -> Hashtbl.replace tbl name (ref 1.0)
  in
  ctx.dma.dma_copies <- ctx.dma.dma_copies +. 1.0;
  let dst_local = Memory.is_local ctx.memory dst.Ast.array in
  let src_local = Memory.is_local ctx.memory src.Ast.array in
  if dst_local && not src_local then bump ctx.dma.dma_in dst.Ast.array
  else if src_local && not dst_local then bump ctx.dma.dma_out src.Ast.array

(* flush a movement tally into Metrics; main domain only *)
let flush_dma_metrics (d : block_dma) =
  if Emsc_obs.Metrics.enabled () && d.copies > 0.0 then begin
    Emsc_obs.Metrics.counter "exec.copies" d.copies;
    List.iter (fun (name, words) ->
      if words > 0.0 then
        Emsc_obs.Metrics.counter ~labels:[ ("buffer", name) ]
          "exec.move_in_words" words)
      d.moved_in;
    List.iter (fun (name, words) ->
      if words > 0.0 then
        Emsc_obs.Metrics.counter ~labels:[ ("buffer", name) ]
          "exec.move_out_words" words)
      d.moved_out
  end

(* whole-run totals and scratchpad occupancy, recorded once per run:
   O(1) regardless of program size, and one boolean when disabled *)
let record_run_metrics ctx =
  if Emsc_obs.Metrics.enabled () then begin
    let open Emsc_obs in
    flush_dma_metrics (block_dma_of_tally ctx.dma);
    Metrics.counter "exec.runs" 1.0;
    Metrics.counter "exec.flops" ctx.c.flops;
    Metrics.counter "exec.global_loads" ctx.c.g_ld;
    Metrics.counter "exec.global_stores" ctx.c.g_st;
    Metrics.counter "exec.smem_loads" ctx.c.s_ld;
    Metrics.counter "exec.smem_stores" ctx.c.s_st;
    Metrics.counter "exec.syncs" ctx.c.syncs;
    Metrics.counter "exec.fences" ctx.c.fences;
    let occ = Memory.local_occupancy ctx.memory in
    List.iter (fun (name, cells) ->
      Metrics.gauge_max ~labels:[ ("buffer", name) ]
        "exec.scratchpad_occupancy_words" (float_of_int cells))
      occ;
    if occ <> [] then
      Metrics.gauge_max "exec.scratchpad_occupancy_total_words"
        (float_of_int (List.fold_left (fun a (_, c) -> a + c) 0 occ))
  end

let rec exec_stm ctx (s : Ast.stm) =
  match s with
  | Ast.Loop l -> exec_loop ctx l
  | Ast.Guard (conds, body) ->
    if
      List.for_all (fun c -> not (Zint.is_negative (eval_aexpr ctx c))) conds
    then List.iter (exec_stm ctx) body
  | Ast.Stmt_call { stmt_id; iter_args } -> exec_stmt_call ctx stmt_id iter_args
  | Ast.Copy { dst; src } ->
    let v = read_ref ctx src in
    write_ref ctx dst v;
    if ctx.collect_dma then record_copy ctx dst src
  | Ast.Sync -> ctx.c.syncs <- ctx.c.syncs +. 1.0
  | Ast.Fence ->
    ctx.c.syncs <- ctx.c.syncs +. 1.0;
    ctx.c.fences <- ctx.c.fences +. 1.0
  | Ast.Comment _ -> ()

and exec_loop ctx (l : Ast.loop) =
  let starts_launch = l.Ast.par = Ast.Block && not ctx.in_launch in
  if starts_launch then begin
    let grid = grid_size ctx l in
    Emsc_obs.Trace.span "exec.launch"
      ~args:[ ("grid", Emsc_obs.Json.Float grid) ]
    @@ fun () ->
    let before = copy_counters ctx.c in
    ctx.in_launch <- true;
    exec_loop_body ctx l;
    ctx.in_launch <- false;
    let delta = sub_counters ctx.c before in
    Emsc_obs.Trace.count "launch.flops" delta.flops;
    Emsc_obs.Trace.count "launch.global" (total_global delta);
    Emsc_obs.Trace.count "launch.smem" (total_smem delta);
    Emsc_obs.Trace.count "launch.syncs" delta.syncs;
    if grid > 0.0 then
      ctx.launches <-
        { grid; per_block = scale_counters delta (1.0 /. grid); repeat = 1.0 }
        :: ctx.launches
  end
  else exec_loop_body ctx l

and exec_loop_body ctx (l : Ast.loop) =
  let lb = eval_aexpr ctx l.Ast.lb and ub = eval_aexpr ctx l.Ast.ub in
  if Zint.compare lb ub <= 0 then begin
    let trip =
      Zint.to_int_exn (Zint.add (Zint.fdiv (Zint.sub ub lb) l.Ast.step) Zint.one)
    in
    let saved = Hashtbl.find_opt ctx.env l.Ast.var in
    let run_at v =
      Hashtbl.replace ctx.env l.Ast.var v;
      List.iter (exec_stm ctx) l.Ast.body
    in
    (match ctx.mode with
     | Sampled threshold when trip >= threshold && trip > 2 ->
       (* first + last, trapezoid rule for the middle *)
       let before = copy_counters ctx.c in
       let launches_before = List.length ctx.launches in
       run_at lb;
       let launches_first =
         (* launches triggered by the first iteration (freshly
            prepended) must also be replicated for the middle *)
         let fresh = List.length ctx.launches - launches_before in
         List.filteri (fun i _ -> i < fresh) ctx.launches
       in
       let last = Zint.add lb (Zint.mul l.Ast.step (Zint.of_int (trip - 1))) in
       run_at last;
       let after_last = copy_counters ctx.c in
       let mid = scale_counters (sub_counters after_last before) 0.5 in
       add_scaled ctx.c mid (float_of_int (trip - 2));
       ctx.launches <-
         List.map
           (fun ln -> { ln with repeat = ln.repeat *. float_of_int (trip - 2) })
           launches_first
         @ ctx.launches
     | Sampled _ | Full ->
       let v = ref lb in
       for _ = 1 to trip do
         run_at !v;
         v := Zint.add !v l.Ast.step
       done);
    (match saved with
     | Some v -> Hashtbl.replace ctx.env l.Ast.var v
     | None -> Hashtbl.remove ctx.env l.Ast.var)
  end

let prepare_tables prog =
  let stmts = Hashtbl.create 8 in
  let flops_of = Hashtbl.create 8 in
  List.iter (fun (s : Prog.stmt) ->
    Hashtbl.replace stmts s.Prog.id s;
    let f =
      match s.Prog.body with
      | None -> 0
      | Some (_, rhs) -> 1 + expr_flops rhs
    in
    Hashtbl.replace flops_of s.Prog.id f)
    prog.Prog.stmts;
  (stmts, flops_of)

type session = {
  s_prog : Prog.t;
  s_stmts : (int, Prog.stmt) Hashtbl.t;
  s_flops_of : (int, int) Hashtbl.t;
  s_rewrite : Prog.stmt -> Prog.access -> Ast.ref_expr option;
  s_param_env : string -> Zint.t;
}

let rec expr_accesses acc = function
  | Prog.Eref a -> a :: acc
  | Prog.Eiter _ | Prog.Eparam _ | Prog.Econst _ -> acc
  | Prog.Eneg e | Prog.Eabs e -> expr_accesses acc e
  | Prog.Eadd (a, b) | Prog.Esub (a, b) | Prog.Emul (a, b)
  | Prog.Ediv (a, b) | Prog.Emin (a, b) | Prog.Emax (a, b) ->
    expr_accesses (expr_accesses acc a) b

(* The rewrite memo must be safe to consult from many domains at once,
   so it is filled eagerly here — every access the interpreter can
   reach lives in some statement body, all enumerable up front — and
   never mutated afterwards (concurrent reads of an unchanging Hashtbl
   are safe).  A miss (structurally fresh access) falls through to [f]
   without caching. *)
let session ~prog ?local_ref ~param_env () =
  let stmts, flops_of = prepare_tables prog in
  let rewrite =
    match local_ref with
    | None -> fun _ _ -> None
    | Some f ->
      let cache = Hashtbl.create 64 in
      List.iter (fun (s : Prog.stmt) ->
        match s.Prog.body with
        | None -> ()
        | Some (lhs, rhs) ->
          List.iter (fun (a : Prog.access) ->
            let key = (s.Prog.id, Obj.repr a) in
            if not (Hashtbl.mem cache key) then
              Hashtbl.replace cache key (f s a))
            (expr_accesses [ lhs ] rhs))
        prog.Prog.stmts;
      fun (s : Prog.stmt) (a : Prog.access) ->
        match Hashtbl.find_opt cache (s.Prog.id, Obj.repr a) with
        | Some r -> r
        | None -> f s a
  in
  { s_prog = prog; s_stmts = stmts; s_flops_of = flops_of;
    s_rewrite = rewrite; s_param_env = param_env }

let make_ctx session ~memory ~mode ~on_global ~collect_dma ~in_launch =
  { prog = session.s_prog; stmts = session.s_stmts;
    flops_of = session.s_flops_of; rewrite = session.s_rewrite;
    param_env = session.s_param_env; memory; env = Hashtbl.create 32;
    c = fresh (); mode; on_global; collect_dma; dma = fresh_dma ();
    in_launch; launches = [] }

type block_outcome = {
  b_counters : counters;
  b_dma : block_dma;
}

let run_block session ~memory ?(mode = Full) ?on_global
    ?(collect_dma = false) ~bindings stms =
  let ctx =
    (* [in_launch] pre-set: the block body's own Block loops are plain
       loops here (the caller owns launch bookkeeping), and neither
       Trace nor Metrics is touched — safe on a worker domain *)
    make_ctx session ~memory ~mode ~on_global ~collect_dma ~in_launch:true
  in
  List.iter (fun (n, v) -> Hashtbl.replace ctx.env n v) bindings;
  List.iter (exec_stm ctx) stms;
  { b_counters = ctx.c; b_dma = block_dma_of_tally ctx.dma }

let run ~prog ?local_ref ~param_env ~memory ?(mode = Full) ?on_global stms =
  let session = session ~prog ?local_ref ~param_env () in
  let ctx =
    make_ctx session ~memory ~mode ~on_global
      ~collect_dma:(Emsc_obs.Metrics.enabled ()) ~in_launch:false
  in
  List.iter (exec_stm ctx) stms;
  record_run_metrics ctx;
  { totals = ctx.c; launches = List.rev ctx.launches }

let run_instances ~prog ~param_env ~memory ?on_global insts =
  let session = session ~prog ~param_env () in
  let ctx =
    make_ctx session ~memory ~mode:Full ~on_global
      ~collect_dma:(Emsc_obs.Metrics.enabled ()) ~in_launch:false
  in
  List.iter (fun (s, iters) -> exec_body ctx s iters) insts;
  record_run_metrics ctx;
  ctx.c

(** AST interpreter with event accounting.

    Two fidelities:
    - [Full]: every iteration executes; array contents are exact (used
      by correctness tests comparing against the reference executor).
    - [Sampled n]: loops with at least [n] iterations execute only
      their first and last iteration and the middle is accounted as
      [(trip-2) * (first+last)/2] — exact for iteration costs that are
      constant or vary linearly in the loop variable (rectangles,
      triangles, trapezoids), which covers the loop nests the tiler
      emits.  Array contents are then meaningless; only counters and
      launch shapes are valid.

    A "launch" is a maximal outermost band of [Block]-parallel loops:
    its grid size and average per-block counters feed the GPU timing
    model. *)

open Emsc_arith
open Emsc_ir

type counters = {
  mutable flops : float;
  mutable g_ld : float;   (** global words loaded *)
  mutable g_st : float;
  mutable s_ld : float;   (** scratchpad words loaded *)
  mutable s_st : float;
  mutable syncs : float;  (** intra-block barriers *)
  mutable fences : float;
      (** barriers bracketing global-memory movement phases *)
}

val fresh : unit -> counters
val total_global : counters -> float
val total_smem : counters -> float

val add_into : counters -> counters -> unit
(** [add_into src dst] accumulates [src] into [dst].  Every counter is
    an integer-valued event count stored in a float, so the sum is
    exact and independent of accumulation order — the property the
    parallel backend relies on for bit-identical totals. *)

val scale_counters : counters -> float -> counters

val counters_json : counters -> Emsc_obs.Json.t

type launch = {
  grid : float;           (** number of thread blocks *)
  per_block : counters;   (** average per-block work *)
  repeat : float;
      (** dynamic occurrence count: in [Sampled] mode a launch inside a
          sampled loop stands for the loop's middle iterations too *)
}

type result = {
  totals : counters;
  launches : launch list;  (** in execution order *)
}

type mode = Full | Sampled of int

val run :
  prog:Prog.t ->
  ?local_ref:(Prog.stmt -> Prog.access -> Emsc_codegen.Ast.ref_expr option) ->
  param_env:(string -> Zint.t) ->
  memory:Memory.t ->
  ?mode:mode ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  Emsc_codegen.Ast.stm list ->
  result
(** [local_ref] redirects accesses into scratchpad buffers (from
    {!Emsc_core.Plan.local_ref}); buffers it names must be declared in
    [memory] by the caller via {!Memory.declare_local}.  [on_global] is
    called with the flat word address for each global access (cache
    simulation hook); it is only invoked in [Full] mode. *)

val run_instances :
  prog:Prog.t ->
  param_env:(string -> Zint.t) ->
  memory:Memory.t ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  (Prog.stmt * Zint.t array) list ->
  counters
(** Execute explicit statement instances (reference path): exact
    semantics, no rewriting, [Full] fidelity. *)

val expr_flops : Prog.expr -> int

(** {2 Block-granular execution}

    The parallel runtime ([Emsc_runtime]) executes one thread block at
    a time, each on its own domain with its own memory view.  A
    [session] packages everything shareable across blocks: the
    statement tables and an eagerly-filled access-rewrite memo that is
    never mutated after construction, hence safe to consult from many
    domains concurrently. *)

type session

val session :
  prog:Prog.t ->
  ?local_ref:(Prog.stmt -> Prog.access -> Emsc_codegen.Ast.ref_expr option) ->
  param_env:(string -> Zint.t) ->
  unit ->
  session

type block_dma = {
  copies : float;          (** staged copies executed *)
  moved_in : (string * float) list;
      (** words moved global->local, per buffer, sorted by name *)
  moved_out : (string * float) list;
}

type block_outcome = {
  b_counters : counters;
  b_dma : block_dma;
}

val run_block :
  session ->
  memory:Memory.t ->
  ?mode:mode ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  ?collect_dma:bool ->
  bindings:(string * Zint.t) list ->
  Emsc_codegen.Ast.stm list ->
  block_outcome
(** Execute statements under the given loop-variable [bindings] with a
    fresh counter set.  Never touches [Metrics] or [Trace] (safe on a
    worker domain); movement is tallied into the outcome when
    [collect_dma] is set.  Block loops inside [stms] are treated as
    plain loops — launch bookkeeping belongs to the caller. *)

val flush_dma_metrics : block_dma -> unit
(** Flush a movement tally into the [Metrics] registry under the same
    names the sequential interpreter uses ([exec.copies],
    [exec.move_in_words]/[exec.move_out_words] per buffer).  Call from
    the main domain only. *)

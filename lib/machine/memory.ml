open Emsc_arith
open Emsc_ir

type entry = {
  data : float array;
  entry_dims : int array;
  base : int;
  phantom : bool;
}

type t = {
  globals : (string, entry) Hashtbl.t;
  locals : (string, (int list, float) Hashtbl.t) Hashtbl.t;
}

let eval_extent env (row : Emsc_linalg.Vec.t) params =
  let np = Array.length params in
  let acc = ref row.(np) in
  for k = 0 to np - 1 do
    if not (Zint.is_zero row.(k)) then
      acc := Zint.add !acc (Zint.mul row.(k) (env params.(k)))
  done;
  Zint.to_int_exn !acc

let create_gen ~phantom (p : Prog.t) ~param_env =
  let globals = Hashtbl.create 8 in
  let next_base = ref 0 in
  List.iter (fun (d : Prog.array_decl) ->
    let dims =
      Array.map (fun row -> eval_extent param_env row p.Prog.params) d.Prog.extents
    in
    let total = Array.fold_left ( * ) 1 dims in
    if total < 0 then
      invalid_arg ("Memory.create: negative extent for " ^ d.Prog.array_name);
    Hashtbl.replace globals d.Prog.array_name
      { data = Array.make (if phantom then 1 else max total 1) 0.0;
        entry_dims = dims; base = !next_base; phantom };
    (* pad bases to distinct 4 KB-aligned regions *)
    next_base := !next_base + ((total + 1023) / 1024 * 1024))
    p.Prog.arrays;
  { globals; locals = Hashtbl.create 8 }

let create p ~param_env = create_gen ~phantom:false p ~param_env
let create_phantom p ~param_env = create_gen ~phantom:true p ~param_env

let declare_local m name =
  if not (Hashtbl.mem m.locals name) then
    Hashtbl.replace m.locals name (Hashtbl.create 1024)

let is_local m name = Hashtbl.mem m.locals name

let entry m name =
  match Hashtbl.find_opt m.globals name with
  | Some e -> e
  | None -> invalid_arg ("Memory: unknown global array " ^ name)

let flat_index m name idx =
  let e = entry m name in
  let n = Array.length e.entry_dims in
  if Array.length idx <> n then
    invalid_arg ("Memory: rank mismatch on " ^ name);
  let flat = ref 0 in
  for k = 0 to n - 1 do
    if idx.(k) < 0 || idx.(k) >= e.entry_dims.(k) then
      invalid_arg
        (Printf.sprintf "Memory: %s index %d out of bounds [0,%d) at dim %d"
           name idx.(k) e.entry_dims.(k) k);
    flat := (!flat * e.entry_dims.(k)) + idx.(k)
  done;
  !flat

let base_address m name = (entry m name).base

let read_global m name idx =
  let e = entry m name in
  if e.phantom then e.data.(0) else e.data.(flat_index m name idx)

let write_global m name idx v =
  let e = entry m name in
  if e.phantom then e.data.(0) <- v
  else e.data.(flat_index m name idx) <- v

let local m name =
  match Hashtbl.find_opt m.locals name with
  | Some t -> t
  | None -> invalid_arg ("Memory: unknown local buffer " ^ name)

let read_local m name idx =
  match Hashtbl.find_opt (local m name) (Array.to_list idx) with
  | Some v -> v
  | None -> 0.0

let write_local m name idx v =
  Hashtbl.replace (local m name) (Array.to_list idx) v

let global_data m name = (entry m name).data
let dims m name = (entry m name).entry_dims

let fork_view m =
  (* Globals are shared physically: the table itself is never mutated
     after creation, only the [data] arrays inside the entries, so
     concurrent views may read and write disjoint cells safely.  Locals
     are private to the view: same declared names, fresh storage. *)
  let locals = Hashtbl.create (max 8 (Hashtbl.length m.locals)) in
  Hashtbl.iter (fun name _ -> Hashtbl.replace locals name (Hashtbl.create 1024))
    m.locals;
  { globals = m.globals; locals }

let local_names m =
  Hashtbl.fold (fun name _ acc -> name :: acc) m.locals []
  |> List.sort compare

let clear_locals m =
  Hashtbl.iter (fun _ cells -> Hashtbl.reset cells) m.locals

let local_words m =
  Hashtbl.fold (fun _ cells acc -> acc + Hashtbl.length cells) m.locals 0

let local_occupancy m =
  Hashtbl.fold (fun name cells acc -> (name, Hashtbl.length cells) :: acc)
    m.locals []
  |> List.sort compare

let fill m name f =
  let e = entry m name in
  let n = Array.length e.entry_dims in
  let idx = Array.make n 0 in
  let rec go k flat =
    if k = n then e.data.(flat) <- f idx
    else
      for v = 0 to e.entry_dims.(k) - 1 do
        idx.(k) <- v;
        go (k + 1) ((flat * e.entry_dims.(k)) + v)
      done
  in
  if Array.fold_left ( * ) 1 e.entry_dims > 0 then go 0 0

let arrays_equal ?(eps = 1e-6) a b name =
  let da = global_data a name and db = global_data b name in
  Array.length da = Array.length db
  && begin
    let ok = ref true in
    Array.iteri (fun i v ->
      if Float.abs (v -. db.(i)) > eps *. (1.0 +. Float.abs v) then ok := false)
      da;
    !ok
  end

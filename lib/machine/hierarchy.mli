(** Declarative N-level explicit memory hierarchies.

    The paper's machine model, generalized: an ordered stack of memory
    levels — innermost (closest to the compute units) first, the
    unbounded home level (DRAM) last — each with a capacity, word size,
    access cost, parallel fan-out, and a transfer edge to its parent.
    The 8800 GTX of the paper is the 2-level special case
    (scratchpad ⊂ DRAM); [to_gpu] projects any hierarchy onto the
    legacy [Config.gpu] timing record through its staging level, and
    for the [gtx8800] built-in that projection is exactly
    [Config.gtx8800], which keeps the hierarchy path bit-identical to
    the legacy model.  Arches are data: built-ins by name, or JSON
    files under [examples/machines/]. *)

type edge = {
  e_bw_words_per_cycle : float;
      (** aggregate transfer bandwidth over all units of the level *)
  e_latency : float;  (** cycles per uncovered transfer *)
  e_coalesce_width : int;  (** consecutive words per transaction *)
}

type level = {
  l_name : string;
  l_capacity_bytes : int option;  (** [None] = unbounded (the home) *)
  l_word_bytes : int;
  l_access_cycles : float;  (** per word per thread, conflict-free *)
  l_fanout : int;  (** instances of this level on the chip *)
  l_line_bytes : int option;
      (** cache-line geometry when the level is also simulated as a
          hardware cache ([Cache.Sim]) *)
  l_assoc : int option;
  l_to_parent : edge option;  (** [None] only on the home level *)
}

type compute = {
  c_clock_mhz : float;
  c_flop_cycles : float;
  c_simd_per_unit : int;
  c_warp_size : int;
  c_max_blocks_per_unit : int;
  c_sync_cycles : float;
  c_global_sync_base : float;
  c_global_sync_per_block : float;
  c_launch_overhead_cycles : float;
}

type t = {
  h_name : string;
  h_compute : compute;
  h_levels : level list;  (** innermost first, home (DRAM) last *)
}

(** {2 Accessors} *)

val name : t -> string
val levels : t -> level list
val compute : t -> compute
val num_levels : t -> int

val home : t -> level
(** The outermost, unbounded level. *)

val explicit_levels : t -> level list
(** All levels but the home — the explicitly managed scratchpads. *)

val staging : t -> level
(** The explicit level adjacent to the home: where plans stage their
    buffers (smem on the GPU). *)

val level_capacity_words : level -> int option
val staging_capacity_words : t -> int

val effective_words : double_buffer:bool -> int -> int
(** The one generalized per-level capacity rule: double buffering keeps
    two windows of every staged buffer resident, so the effective need
    is twice the placed footprint.  Every capacity comparison (Plan,
    Invariants, Runtime arena, bench) routes through this. *)

val edges : t -> (level * level * edge) list
(** [(inner, outer, edge)] per adjacent pair, innermost edge first. *)

val edge_name : level * level * edge -> string
(** ["inner<-outer"], the direction data is staged. *)

(** {2 Validation and the legacy bridge} *)

val validate : t -> (t, string) result
(** ≥2 distinct-named levels, positive geometry, inner levels bounded
    with a parent edge, home unbounded without one. *)

val to_gpu : t -> (Config.gpu, string) result
(** Project the staging level, its parent edge, and the compute block
    onto the legacy 2-level GPU timing record. *)

val to_gpu_exn : t -> Config.gpu

val ms_of_cycles : t -> float -> float

(** {2 Built-ins} *)

val gtx8800 : t
(** The paper's GeForce 8800 GTX — [to_gpu gtx8800 = Ok Config.gtx8800]
    field for field. *)

val gtx8800_3level : t
(** The same chip with the per-multiprocessor register file as an
    explicit innermost level (registers ⊂ smem ⊂ DRAM); the staging
    level and its DRAM edge are identical to [gtx8800]. *)

val core2duo_cache_as_scratchpad : t
(** The Core2 Duo host with its caches treated as explicitly managed
    scratchpads; line/assoc geometry drives [Cache.Sim]. *)

val builtins : (string * t) list
val find_builtin : string -> t option

(** {2 JSON} *)

val to_json : t -> Emsc_obs.Json.t

val digest : t -> string
(** Stable content digest of {!to_json}.  Fold this into any cache key
    whose value depends on the machine (plan-stage fingerprints): two
    machines that differ only in capacities digest differently. *)

val of_json : Emsc_obs.Json.t -> (t, string) result
val of_file : string -> (t, string) result

val load : string -> (t, string) result
(** Resolve a [--machine] spec: a built-in name, else a JSON file path;
    the error lists the built-ins. *)

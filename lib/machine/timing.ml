type gpu_params = {
  threads : int;
  smem_bytes_per_block : int;
  coalesce_eff : float;
  global_sync : bool;
  double_buffer : bool;
}

let default_params = {
  threads = 256;
  smem_bytes_per_block = 0;
  coalesce_eff = 16.0;
  global_sync = false;
  double_buffer = false;
}

(* The generalized per-level capacity rule lives in
   [Hierarchy.effective_words]; these are its scratchpad-flavoured
   aliases.  Every capacity comparison must go through them rather
   than re-deriving the double-buffer factor — forgetting it was an
   easy way to accept plans that cannot actually fit. *)
let effective_smem_words = Hierarchy.effective_words

let effective_smem_bytes ~double_buffer ~word_bytes words =
  effective_smem_words ~double_buffer words * word_bytes

let plan_smem_bytes ~double_buffer ~word_bytes plan env =
  match Emsc_arith.Zint.to_int_exn (Emsc_core.Plan.total_footprint plan env) with
  | words -> Some (effective_smem_bytes ~double_buffer ~word_bytes words)
  | exception _ -> None

let occupancy (g : Config.gpu) ~smem_bytes_per_block =
  if smem_bytes_per_block <= 0 then g.Config.max_blocks_per_mimd
  else
    max 1
      (min g.Config.max_blocks_per_mimd
         (g.Config.smem_bytes / smem_bytes_per_block))

type breakdown = {
  occ : int;
  blocks_per_mp : float;
  warps_in_flight : float;
  pipeline_eff : float;
  t_comp : float;
  t_bw : float;
  t_lat : float;
  t_sync : float;
  t_fence : float;
  t_block : float;
  global_sync_cycles : float;
  launch_cycles : float;
}

let gpu_launch_breakdown (g : Config.gpu) (p : gpu_params) (l : Exec.launch) =
  let cb = occupancy g ~smem_bytes_per_block:p.smem_bytes_per_block in
  (* blocks each multiprocessor executes over the launch; concurrent
     blocks (cb) time-share the MP's lanes, so they affect latency
     hiding and pipeline utilization, not aggregate throughput *)
  let blocks_per_mp =
    Float.of_int
      (int_of_float (Float.ceil (l.Exec.grid /. float_of_int g.Config.num_mimd)))
  in
  let c = l.Exec.per_block in
  let lanes = float_of_int g.Config.simd_per_mimd in
  let warps_in_flight =
    Float.min 24.0
      (float_of_int (p.threads * cb) /. float_of_int g.Config.warp_size)
    |> Float.max 1.0
  in
  (* the G80 pipeline needs ~6 warps resident to cover register and
     smem latencies; below that, issue slots drain *)
  let pipeline_eff = Float.min 1.0 (warps_in_flight /. 6.0) in
  let t_comp =
    ((c.Exec.flops *. g.Config.flop_cycles)
     +. (Exec.total_smem c *. g.Config.smem_access_cycles))
    /. (lanes *. pipeline_eff)
  in
  let gw = Exec.total_global c in
  let bw_per_mp =
    g.Config.global_bw_words_per_cycle /. float_of_int g.Config.num_mimd
    *. (p.coalesce_eff /. float_of_int g.Config.coalesce_width)
  in
  let t_bw = gw /. bw_per_mp in
  let t_lat =
    gw /. float_of_int p.threads *. g.Config.global_latency /. warps_in_flight
  in
  let t_sync = c.Exec.syncs *. g.Config.sync_cycles in
  (* each movement phase drains the DRAM pipeline at its barrier —
     unless the kernel double-buffers, overlapping copies with the
     previous sub-tile's compute (the classic scratchpad extension;
     costs twice the buffer space, which the caller reflects in
     smem_bytes_per_block) *)
  let t_fence =
    if p.double_buffer then 0.0
    else c.Exec.fences *. g.Config.global_latency
  in
  let t_block = Float.max t_comp (Float.max t_bw t_lat) +. t_sync +. t_fence in
  let global_sync_cycles =
    if p.global_sync then
      g.Config.global_sync_base
      +. (g.Config.global_sync_per_block *. l.Exec.grid)
    else 0.0
  in
  let launch_cycles =
    (g.Config.launch_overhead_cycles +. global_sync_cycles
     +. (blocks_per_mp *. t_block))
    *. l.Exec.repeat
  in
  { occ = cb; blocks_per_mp; warps_in_flight; pipeline_eff; t_comp; t_bw;
    t_lat; t_sync; t_fence; t_block; global_sync_cycles; launch_cycles }

let gpu_launch_cycles g p l = (gpu_launch_breakdown g p l).launch_cycles

let gpu_total_ms g p (r : Exec.result) =
  let cycles =
    List.fold_left (fun acc l -> acc +. gpu_launch_cycles g p l) 0.0
      r.Exec.launches
  in
  (* work outside any launch (host-side loops) is not timed: the
     generated kernels put all computation inside block loops *)
  Config.gpu_ms g cycles

(* --- hierarchy front-end ------------------------------------------------ *)

(* The hierarchy path projects onto the legacy 2-level record through
   its staging level, so for [Hierarchy.gtx8800] every number below is
   bit-identical to calling the [Config.gtx8800] entry points
   directly (test/test_hierarchy.ml pins this). *)

let launch_breakdown h p l = gpu_launch_breakdown (Hierarchy.to_gpu_exn h) p l

let launch_cycles h p l = gpu_launch_cycles (Hierarchy.to_gpu_exn h) p l

let hierarchy_total_ms h p r = gpu_total_ms (Hierarchy.to_gpu_exn h) p r

(* Cache-baseline timing over a cache-shaped hierarchy: one term per
   simulated level's hits plus the home accesses, same shape (and for
   [core2duo_cache_as_scratchpad], the same constants and float-op
   order) as the old Config.cpu formula. *)
let cache_total_ms (h : Hierarchy.t) ~flops ~hits ~home_accesses =
  let c = Hierarchy.compute h in
  let cached =
    List.filter
      (fun (l : Hierarchy.level) -> l.Hierarchy.l_assoc <> None)
      (Hierarchy.explicit_levels h)
  in
  let cycles = ref (flops *. c.Hierarchy.c_flop_cycles) in
  List.iteri
    (fun i (l : Hierarchy.level) ->
      if i < Array.length hits then
        cycles := !cycles +. (hits.(i) *. l.Hierarchy.l_access_cycles))
    cached;
  let home = Hierarchy.home h in
  cycles := !cycles +. (home_accesses *. home.Hierarchy.l_access_cycles);
  Hierarchy.ms_of_cycles h !cycles

(* --- machine-readable profiles ----------------------------------------- *)

module J = Emsc_obs.Json

let breakdown_json b =
  J.Obj
    [ ("occupancy", J.Int b.occ);
      ("blocks_per_mp", J.Float b.blocks_per_mp);
      ("warps_in_flight", J.Float b.warps_in_flight);
      ("pipeline_eff", J.Float b.pipeline_eff);
      ("t_comp", J.Float b.t_comp);
      ("t_bw", J.Float b.t_bw);
      ("t_lat", J.Float b.t_lat);
      ("t_sync", J.Float b.t_sync);
      ("t_fence", J.Float b.t_fence);
      ("t_block", J.Float b.t_block);
      ("global_sync_cycles", J.Float b.global_sync_cycles);
      ("launch_cycles", J.Float b.launch_cycles) ]

let launch_json g p (l : Exec.launch) =
  J.Obj
    [ ("grid", J.Float l.Exec.grid);
      ("repeat", J.Float l.Exec.repeat);
      ("per_block", Exec.counters_json l.Exec.per_block);
      ("breakdown", breakdown_json (gpu_launch_breakdown g p l)) ]

let params_json p =
  J.Obj
    [ ("threads", J.Int p.threads);
      ("smem_bytes_per_block", J.Int p.smem_bytes_per_block);
      ("coalesce_eff", J.Float p.coalesce_eff);
      ("global_sync", J.Bool p.global_sync);
      ("double_buffer", J.Bool p.double_buffer) ]

let profile_json g p (r : Exec.result) =
  let cycles =
    List.fold_left (fun acc l -> acc +. gpu_launch_cycles g p l) 0.0
      r.Exec.launches
  in
  J.Obj
    [ ("params", params_json p);
      ("launches", J.List (List.map (launch_json g p) r.Exec.launches));
      ("totals", Exec.counters_json r.Exec.totals);
      ("total_cycles", J.Float cycles);
      ("total_ms", J.Float (Config.gpu_ms g cycles)) ]

(* Per-level buffer placement over a hierarchy.

   The plan gives one local buffer per staged partition; placement
   decides which explicit level each lives at.  Greedy innermost-fit:
   buffers sorted by footprint ascending (name-tiebroken, so placement
   is deterministic) each go to the innermost explicit level with
   enough remaining effective capacity; a buffer no level can hold
   falls back to the staging level and the overflow is reported as a
   violation.  On a 2-level machine there is only the staging level,
   so this degenerates to the legacy rule: everything in scratchpad,
   violation iff the total effective footprint exceeds its capacity —
   which is what keeps gtx8800 behaviour identical to the old model.

   A buffer placed at level i is staged from home through every
   intermediate level, so its movement crosses every edge between
   level i and the home; [edge_totals] aggregates per-buffer word
   counts (predicted volumes or measured counters) into per-edge
   totals under that rule. *)

module J = Emsc_obs.Json

type placed = {
  p_buffer : string;  (* local buffer name *)
  p_array : string;   (* original array *)
  p_level : string;   (* level name *)
  p_level_index : int;  (* innermost = 0 *)
  p_words : int;
  p_effective_words : int;  (* after the double-buffer rule *)
}

type level_usage = {
  u_level : string;
  u_index : int;
  u_capacity_words : int option;
  u_used_words : int;  (* effective *)
  u_over : bool;
}

type t = {
  pl_machine : string;
  pl_double_buffer : bool;
  pl_placed : placed list;
  pl_usage : level_usage list;
  pl_violations : string list;
}

let place ?(double_buffer = false) (h : Hierarchy.t)
    ~(footprints : (string * string * int) list) =
  let expl = Hierarchy.explicit_levels h in
  let n_expl = List.length expl in
  let caps =
    Array.of_list (List.map Hierarchy.level_capacity_words expl)
  in
  let used = Array.make n_expl 0 in
  let fits i eff =
    match caps.(i) with
    | None -> true
    | Some cap -> used.(i) + eff <= cap
  in
  let sorted =
    List.sort
      (fun (n1, _, w1) (n2, _, w2) ->
        match compare w1 w2 with 0 -> compare n1 n2 | c -> c)
      footprints
  in
  let placed =
    List.map
      (fun (name, array, words) ->
        let eff = Hierarchy.effective_words ~double_buffer words in
        let rec try_level i =
          if i >= n_expl then None
          else if fits i eff then Some i
          else try_level (i + 1)
        in
        (* overflow falls back to the staging level *)
        let idx = match try_level 0 with Some i -> i | None -> n_expl - 1 in
        used.(idx) <- used.(idx) + eff;
        let level = List.nth expl idx in
        { p_buffer = name; p_array = array; p_level = level.Hierarchy.l_name;
          p_level_index = idx; p_words = words; p_effective_words = eff })
      sorted
  in
  let usage =
    List.mapi
      (fun i (l : Hierarchy.level) ->
        let cap = caps.(i) in
        let over = match cap with Some c -> used.(i) > c | None -> false in
        { u_level = l.Hierarchy.l_name; u_index = i;
          u_capacity_words = cap; u_used_words = used.(i); u_over = over })
      expl
  in
  let violations =
    List.filter_map
      (fun u ->
        if u.u_over then
          Some
            (Printf.sprintf
               "level %s over capacity: %d effective words > %d"
               u.u_level u.u_used_words
               (match u.u_capacity_words with Some c -> c | None -> 0))
        else None)
      usage
  in
  { pl_machine = Hierarchy.name h; pl_double_buffer = double_buffer;
    pl_placed = placed; pl_usage = usage; pl_violations = violations }

let of_plan ?double_buffer (h : Hierarchy.t) (plan : Emsc_core.Plan.t) env =
  let footprints =
    List.filter_map
      (fun (b : Emsc_core.Plan.buffered) ->
        let buf = b.Emsc_core.Plan.buffer in
        match
          Emsc_arith.Zint.to_int_opt (Emsc_core.Alloc.footprint buf env)
        with
        | Some w ->
          Some
            (buf.Emsc_core.Alloc.local_name, buf.Emsc_core.Alloc.array, w)
        | None -> None)
      plan.Emsc_core.Plan.buffered
  in
  place ?double_buffer h ~footprints

let find t buffer =
  List.find_opt (fun p -> p.p_buffer = buffer) t.pl_placed

let ok t = t.pl_violations = []

(* A buffer placed at level i crosses every edge from i outward to the
   home: the same words move across each stage of the path. *)
let edge_totals (h : Hierarchy.t) t ~words_of =
  let edges = Hierarchy.edges h in
  List.mapi
    (fun j e ->
      let total =
        List.fold_left
          (fun acc p ->
            if p.p_level_index <= j then acc + words_of p else acc)
          0 t.pl_placed
      in
      (Hierarchy.edge_name e, total))
    edges

let placed_json p =
  J.Obj
    [ ("buffer", J.Str p.p_buffer);
      ("array", J.Str p.p_array);
      ("level", J.Str p.p_level);
      ("words", J.Int p.p_words);
      ("effective_words", J.Int p.p_effective_words) ]

let usage_json u =
  J.Obj
    [ ("level", J.Str u.u_level);
      ("capacity_words",
       (match u.u_capacity_words with Some c -> J.Int c | None -> J.Null));
      ("used_words", J.Int u.u_used_words);
      ("over", J.Bool u.u_over) ]

let to_json t =
  J.Obj
    [ ("machine", J.Str t.pl_machine);
      ("double_buffer", J.Bool t.pl_double_buffer);
      ("placed", J.List (List.map placed_json t.pl_placed));
      ("levels", J.List (List.map usage_json t.pl_usage));
      ("violations", J.List (List.map (fun v -> J.Str v) t.pl_violations)) ]

(** Legacy 2-level GPU timing record.

    Mirrors the NVIDIA GeForce 8800 GTX used in the paper: 16
    multiprocessors (MIMD units), 8 SIMD units each, warp size 32,
    16 KB scratchpad per multiprocessor.  Timing constants are
    first-order calibrations, not cycle-accurate silicon — see
    DESIGN.md for what the model is expected (and not expected) to
    reproduce.

    The declarative machine description is {!Hierarchy}; this record
    is its staging-level projection ({!Hierarchy.to_gpu}) and what the
    {!Timing} launch model consumes.  CPU cache parameters live in the
    [core2duo_cache_as_scratchpad] hierarchy, not here. *)

type gpu = {
  num_mimd : int;            (** multiprocessors *)
  simd_per_mimd : int;
  warp_size : int;
  smem_bytes : int;          (** scratchpad per multiprocessor *)
  word_bytes : int;
  clock_mhz : float;         (** shader clock *)
  max_blocks_per_mimd : int;
  flop_cycles : float;       (** cycles per op per SIMD lane *)
  smem_access_cycles : float;  (** per word per thread, conflict-free *)
  global_latency : float;    (** cycles per uncovered global access *)
  global_bw_words_per_cycle : float;  (** device-wide *)
  coalesce_width : int;
      (** consecutive words fetched per global transaction *)
  sync_cycles : float;       (** intra-block barrier *)
  global_sync_base : float;  (** cycles to sync across all blocks *)
  global_sync_per_block : float;
  launch_overhead_cycles : float;
}

val gtx8800 : gpu

val gpu_ms : gpu -> float -> float
(** Convert cycles to milliseconds. *)

type gpu = {
  num_mimd : int;
  simd_per_mimd : int;
  warp_size : int;
  smem_bytes : int;
  word_bytes : int;
  clock_mhz : float;
  max_blocks_per_mimd : int;
  flop_cycles : float;
  smem_access_cycles : float;
  global_latency : float;
  global_bw_words_per_cycle : float;
  coalesce_width : int;
  sync_cycles : float;
  global_sync_base : float;
  global_sync_per_block : float;
  launch_overhead_cycles : float;
}

(* GeForce 8800 GTX: 16 MPs x 8 SIMD @ 1350 MHz shader clock, 16 KB
   scratchpad per MP, 86.4 GB/s DRAM, ~400-600 cycle global latency.
   This record is the legacy 2-level view; the declarative source of
   truth is [Hierarchy.gtx8800], whose staging-level projection
   ([Hierarchy.to_gpu]) reproduces it field for field. *)
let gtx8800 = {
  num_mimd = 16;
  simd_per_mimd = 8;
  warp_size = 32;
  smem_bytes = 16384;
  word_bytes = 4;
  clock_mhz = 1350.0;
  max_blocks_per_mimd = 8;
  flop_cycles = 1.0;
  (* effective cycles per scratchpad access, including the address
     arithmetic real kernels spend per access *)
  smem_access_cycles = 3.0;
  global_latency = 450.0;
  (* 86.4e9 / 4 bytes / 1.35e9 cycles *)
  global_bw_words_per_cycle = 16.0;
  coalesce_width = 16;
  sync_cycles = 8.0;
  global_sync_base = 4000.0;
  global_sync_per_block = 120.0;
  launch_overhead_cycles = 7000.0;
}

let gpu_ms g cycles = cycles /. (g.clock_mhz *. 1000.0)

(** Simulated memory: flat float arrays for the program's global
    arrays, hash-backed sparse storage for scratchpad buffers (their
    live window shifts with the tile origin). *)

open Emsc_arith
open Emsc_ir

type t

val create : Prog.t -> param_env:(string -> Zint.t) -> t
(** Allocates every declared array, zero-initialized. *)

val create_phantom : Prog.t -> param_env:(string -> Zint.t) -> t
(** Shape-only memory: every array is backed by a single cell, reads
    and writes ignore indices.  For sampled timing runs over problem
    sizes whose arrays would not fit in host memory; never use for
    correctness runs. *)

val declare_local : t -> string -> unit
val is_local : t -> string -> bool

val read_global : t -> string -> int array -> float
val write_global : t -> string -> int array -> float -> unit
val read_local : t -> string -> int array -> float
val write_local : t -> string -> int array -> float -> unit

val flat_index : t -> string -> int array -> int
(** Row-major flattened index (for cache simulation addresses). *)

val base_address : t -> string -> int
(** Word address of the array in a virtual address space. *)

val global_data : t -> string -> float array
val dims : t -> string -> int array

val fork_view : t -> t
(** A new memory sharing this one's global arrays physically (writes
    through any view are visible to all) but with private local
    buffers, one per name declared in the source view, all empty.  The
    unit of isolation for per-block scratchpad arenas: concurrent
    views may touch disjoint global cells and their own locals without
    interference. *)

val local_names : t -> string list
(** Declared local buffer names, sorted. *)

val clear_locals : t -> unit
(** Drop every cell of every local buffer (declarations survive).
    Lets an arena view be recycled between blocks. *)

val local_words : t -> int
(** Total distinct cells currently held across all local buffers — the
    view's live scratchpad footprint in words. *)

val local_occupancy : t -> (string * int) list
(** Per local buffer, the number of distinct cells ever written, sorted
    by name.  Buffers are sparse and never freed, so this is the
    cumulative footprint of every window the buffer held — an upper
    bound on (and for a single-block run, exactly) its peak scratchpad
    occupancy in words. *)

val fill : t -> string -> (int array -> float) -> unit
(** Initialize an array pointwise. *)

val arrays_equal : ?eps:float -> t -> t -> string -> bool
(** Compare one array's contents across two memories. *)

(** First-order timing models.

    GPU launch time combines a throughput term (SIMD lanes shared by
    the block's threads), a bandwidth term (device DRAM bandwidth
    partitioned across multiprocessors, derated by coalescing
    efficiency), a latency term (hidden by warps in flight), and
    synchronization costs.  Occupancy follows the paper's Section 5
    rule: concurrent blocks per multiprocessor = scratchpad capacity
    divided by per-block scratchpad need, capped by hardware. *)

type gpu_params = {
  threads : int;              (** threads per block *)
  smem_bytes_per_block : int; (** drives occupancy *)
  coalesce_eff : float;
      (** effective words per global transaction, in
          [1, coalesce_width]; 16 = fully coalesced on the 8800 *)
  global_sync : bool;
      (** charge a cross-block synchronization per launch (kernels
          that need all blocks to finish, e.g. time-tiled stencils) *)
  double_buffer : bool;
      (** overlap movement with compute (double-buffered staging):
          removes the per-phase DRAM drain; the caller must double
          [smem_bytes_per_block] *)
}

val default_params : gpu_params

val effective_smem_words : double_buffer:bool -> int -> int
(** Scratchpad words a plan actually needs per block under the given
    buffering mode: double buffering keeps two windows of every staged
    buffer resident, doubling the footprint.  All capacity checks must
    use this rather than the raw plan footprint. *)

val effective_smem_bytes : double_buffer:bool -> word_bytes:int -> int -> int
(** Same, in bytes: [effective_smem_words * word_bytes]. *)

val plan_smem_bytes :
  double_buffer:bool -> word_bytes:int ->
  Emsc_core.Plan.t -> (string -> Emsc_arith.Zint.t) -> int option
(** Effective per-block scratchpad bytes of a plan under [env] (the
    tile-size valuation), or [None] when a buffer footprint does not
    evaluate to a machine integer. *)

val occupancy : Config.gpu -> smem_bytes_per_block:int -> int
(** Concurrent blocks per multiprocessor. *)

type breakdown = {
  occ : int;                 (** concurrent blocks per multiprocessor *)
  blocks_per_mp : float;     (** block waves each MP executes *)
  warps_in_flight : float;
  pipeline_eff : float;
  t_comp : float;            (** compute/smem throughput cycles per block *)
  t_bw : float;              (** DRAM bandwidth cycles per block *)
  t_lat : float;             (** exposed global-latency cycles per block *)
  t_sync : float;            (** intra-block barrier cycles *)
  t_fence : float;           (** movement-phase DRAM drain cycles *)
  t_block : float;           (** max(comp,bw,lat) + sync + fence *)
  global_sync_cycles : float;
  launch_cycles : float;     (** total, incl. overheads and repeats *)
}
(** Where a launch's time goes — the decomposition that determines
    which resource (compute, bandwidth, latency, synchronization)
    bounds the kernel. *)

val gpu_launch_breakdown : Config.gpu -> gpu_params -> Exec.launch -> breakdown
val gpu_launch_cycles : Config.gpu -> gpu_params -> Exec.launch -> float
(** [= (gpu_launch_breakdown g p l).launch_cycles] *)

val gpu_total_ms : Config.gpu -> gpu_params -> Exec.result -> float

(** {2 Hierarchy front-end}

    The declarative machine path: projects the hierarchy onto the
    2-level launch model through its staging level
    ({!Hierarchy.to_gpu}), so for [Hierarchy.gtx8800] these are
    bit-identical to the [Config.gtx8800] entry points. *)

val launch_breakdown : Hierarchy.t -> gpu_params -> Exec.launch -> breakdown
val launch_cycles : Hierarchy.t -> gpu_params -> Exec.launch -> float
val hierarchy_total_ms : Hierarchy.t -> gpu_params -> Exec.result -> float

val cache_total_ms :
  Hierarchy.t -> flops:float -> hits:float array -> home_accesses:float ->
  float
(** Cache-baseline timing over a cache-shaped hierarchy: [hits.(i)]
    aligns with {!Cache.Sim.hits} (the cache-geometry levels in
    order); each level is charged its [l_access_cycles] per hit, the
    home its own per access. *)

(** {2 Machine-readable profiles} *)

val breakdown_json : breakdown -> Emsc_obs.Json.t
val launch_json : Config.gpu -> gpu_params -> Exec.launch -> Emsc_obs.Json.t
val params_json : gpu_params -> Emsc_obs.Json.t

val profile_json : Config.gpu -> gpu_params -> Exec.result -> Emsc_obs.Json.t
(** Per-launch counters and timing breakdowns plus run totals; the
    payload of [emsc profile]. *)

(** Set-associative LRU cache simulator (baseline timing for
    cache-shaped hierarchy levels). *)

type t

type stats = {
  mutable hits : float;
  mutable misses : float;
}

val create :
  size_bytes:int -> line_bytes:int -> assoc:int -> word_bytes:int -> t

val of_level : Hierarchy.level -> t option
(** A simulator for a level with cache geometry ([l_line_bytes] and
    [l_assoc] present); [None] for scratchpad-only levels. *)

val access : t -> int -> bool
(** [access c word_addr] returns whether the access hit, updating LRU
    state. *)

val stats : t -> stats
val reset : t -> unit

(** Multi-level inclusive lookup over the cache-shaped levels of a
    {!Hierarchy}, innermost first; an access missing every simulated
    level counts against the home. *)
module Sim : sig
  type h

  val create : Hierarchy.t -> h
  val num_levels : h -> int
  (** Simulated cache levels (the home is not one of them). *)

  val access : h -> int -> int
  (** Index of the level that served the access, [num_levels] for the
      home. *)

  val hits : h -> float array
  (** Per simulated level, innermost first. *)

  val home_accesses : h -> float
  val level_names : h -> string array
  val home_name : h -> string
end

(** Per-level buffer placement over a {!Hierarchy}.

    Greedy innermost-fit: buffers sorted by footprint ascending
    (name-tiebroken, deterministic) each go to the innermost explicit
    level with enough remaining effective capacity; overflow falls back
    to the staging level and is reported as a violation.  On a 2-level
    machine this degenerates to the legacy rule — everything in the
    scratchpad, violation iff the total effective footprint exceeds its
    capacity — so gtx8800 placement matches the old model exactly. *)

type placed = {
  p_buffer : string;  (** local buffer name *)
  p_array : string;  (** original array *)
  p_level : string;
  p_level_index : int;  (** innermost = 0 *)
  p_words : int;
  p_effective_words : int;  (** after the double-buffer rule *)
}

type level_usage = {
  u_level : string;
  u_index : int;
  u_capacity_words : int option;
  u_used_words : int;  (** effective *)
  u_over : bool;
}

type t = {
  pl_machine : string;
  pl_double_buffer : bool;
  pl_placed : placed list;
  pl_usage : level_usage list;
  pl_violations : string list;
}

val place :
  ?double_buffer:bool ->
  Hierarchy.t ->
  footprints:(string * string * int) list ->
  t
(** [footprints] are [(local_name, array, words)] triples. *)

val of_plan :
  ?double_buffer:bool ->
  Hierarchy.t ->
  Emsc_core.Plan.t ->
  (string -> Emsc_arith.Zint.t) ->
  t
(** Footprints of the plan's staged buffers under a parameter
    valuation; buffers whose footprint stays symbolic are skipped. *)

val find : t -> string -> placed option
val ok : t -> bool

val edge_totals :
  Hierarchy.t -> t -> words_of:(placed -> int) -> (string * int) list
(** Aggregate per-buffer word counts into per-edge totals, innermost
    edge first: a buffer placed at level [i] crosses every edge from
    [i] outward to the home.  [words_of] supplies the per-buffer count
    (a predicted volume or a measured counter). *)

val to_json : t -> Emsc_obs.Json.t

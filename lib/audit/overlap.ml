open Emsc_machine
module R = Emsc_obs.Runtime_report
module J = Emsc_obs.Json

type t = {
  o_tolerance : float;
  o_double_buffer : bool;
  o_bound : float;
  o_achieved : float;
  o_dma_busy_s : float;
  o_compute_busy_s : float;
  o_quantities : Audit.quantity list;
  o_notes : string list;
  o_verdict : Audit.verdict;
}

(* interval endpoints come from one clock read per event boundary;
   5% absorbs rounding without masking a broken union sweep *)
let default_tolerance = 0.05

let quantity name predicted measured =
  { Audit.q_name = name; q_predicted = predicted; q_measured = measured;
    q_rel_err =
      (predicted -. measured) /. Float.max 1.0 (Float.abs measured) }

let audit ?(tolerance = default_tolerance) ~double_buffer ?model
    (r : R.t) =
  let dma = r.R.dma_busy_s and compute = r.R.compute_busy_s in
  let bound =
    if dma > 0.0 then Float.min 1.0 (compute /. dma) else 1.0
  in
  let achieved = r.R.overlap_fraction in
  let quantities = ref [ quantity "overlap_fraction" bound achieved ] in
  let notes = ref [] in
  (match model with
   | Some (b : Timing.breakdown) when b.Timing.t_comp > 0.0 ->
     let predicted_ratio = b.Timing.t_bw /. b.Timing.t_comp in
     let measured_ratio =
       if compute > 0.0 then dma /. compute else 0.0
     in
     quantities :=
       quantity "dma_to_compute_ratio" predicted_ratio measured_ratio
       :: !quantities;
     notes :=
       "dma_to_compute_ratio compares model cycles against interpreter \
        wall time; informational only"
       :: !notes
   | _ -> ());
  let verdict =
    if dma <= 0.0 then begin
      notes := "no DMA transfers recorded; overlap bound is vacuous"
               :: !notes;
      Audit.Pass
    end
    else if achieved > bound +. tolerance then Audit.Fail
    else if double_buffer && achieved < 0.25 *. bound then begin
      notes :=
        "double buffering achieved well under the model bound; expected \
         when domains timeshare few cores (see EXPERIMENTS.md)"
        :: !notes;
      Audit.Warn
    end
    else Audit.Pass
  in
  { o_tolerance = tolerance;
    o_double_buffer = double_buffer;
    o_bound = bound;
    o_achieved = achieved;
    o_dma_busy_s = dma;
    o_compute_busy_s = compute;
    o_quantities = List.rev !quantities;
    o_notes = List.rev !notes;
    o_verdict = verdict }

let ok t = t.o_verdict <> Audit.Fail

let quantity_json (q : Audit.quantity) =
  J.Obj
    [ ("name", J.Str q.Audit.q_name);
      ("predicted", J.Float q.Audit.q_predicted);
      ("measured", J.Float q.Audit.q_measured);
      ("rel_err", J.Float q.Audit.q_rel_err) ]

let json t =
  J.Obj
    [ ("schema", J.Str "emsc-overlap-audit/1");
      ("verdict", J.Str (Audit.verdict_string t.o_verdict));
      ("tolerance", J.Float t.o_tolerance);
      ("double_buffer", J.Bool t.o_double_buffer);
      ("bound", J.Float t.o_bound);
      ("achieved", J.Float t.o_achieved);
      ("dma_busy_ms", J.Float (t.o_dma_busy_s *. 1e3));
      ("compute_busy_ms", J.Float (t.o_compute_busy_s *. 1e3));
      ("quantities", J.List (List.map quantity_json t.o_quantities));
      ("notes", J.List (List.map (fun s -> J.Str s) t.o_notes)) ]

let pp fmt t =
  Format.fprintf fmt
    "overlap audit: %s (achieved %.3f, bound %.3f, tolerance %.2f)@."
    (String.uppercase_ascii (Audit.verdict_string t.o_verdict))
    t.o_achieved t.o_bound t.o_tolerance;
  Format.fprintf fmt "  dma busy %.3f ms, compute busy %.3f ms%s@."
    (t.o_dma_busy_s *. 1e3) (t.o_compute_busy_s *. 1e3)
    (if t.o_double_buffer then " (double-buffered)" else "");
  List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) t.o_notes

(** Overlap audit: achieved DMA–compute overlap versus the
    double-buffer timing model.

    The {!Emsc_machine.Timing} breakdown promises that double
    buffering hides movement under compute ([t_fence] drops to zero).
    The runtime report measures what actually overlapped.  The
    measured overlap fraction has a hard model upper bound — DMA time
    can only be hidden under concurrent compute, so

      achieved ≤ min(1, compute_busy / dma_busy)

    — and the verdict is asymmetric in the same style as the movement
    audit ({!Audit}): measured overlap {e above} the bound means the
    accounting itself is unsound and fails; achieving much less than
    the bound (e.g. on a 1-core CI machine where domains timeshare)
    only warns, and only when double buffering was requested. *)

type t = {
  o_tolerance : float;
  o_double_buffer : bool;
  o_bound : float;     (** model upper bound on the overlap fraction *)
  o_achieved : float;  (** measured [Runtime_report.overlap_fraction] *)
  o_dma_busy_s : float;
  o_compute_busy_s : float;
  o_quantities : Audit.quantity list;
      (** [overlap_fraction] (predicted = bound, measured = achieved);
          with a model breakdown also [dma_to_compute_ratio]
          comparing measured phase times against the model's
          [t_bw]/[t_comp] split — informational, never failing *)
  o_notes : string list;
  o_verdict : Audit.verdict;
}

val default_tolerance : float
(** Slack on the bound comparison (timestamping skew). *)

val audit :
  ?tolerance:float ->
  double_buffer:bool ->
  ?model:Emsc_machine.Timing.breakdown ->
  Emsc_obs.Runtime_report.t ->
  t
(** [Fail] iff [achieved > bound + tolerance].  [Warn] when double
    buffering ran real DMA yet achieved under a quarter of the bound —
    overlap the model expected but the host could not deliver.
    A report with no DMA time is a vacuous [Pass]. *)

val ok : t -> bool
(** [o_verdict <> Fail] — the gating condition. *)

val json : t -> Emsc_obs.Json.t
val pp : Format.formatter -> t -> unit

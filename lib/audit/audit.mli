(** Cost-model audit: predicted versus measured telemetry.

    The planning layers make quantitative promises — movement volumes
    from {!Emsc_core.Movement.volume_upper_bound} scaled by the Section
    4.3 occurrence factors, buffer footprints from
    {!Emsc_core.Alloc.footprint}, and the first-order counter model the
    {!Emsc_machine.Timing} breakdown consumes.  This module replays a
    compiled kernel on the simulated machine in [Full] fidelity,
    snapshots the {!Emsc_obs.Metrics} registry around the run, and
    reports the relative error of every predicted quantity against what
    the interpreter actually counted.

    Predictions are upper bounds (box volumes, full-tile occurrence
    counts), so drift is expected to be non-negative and bounded by the
    slack of the boxes and the partial boundary tiles; a measured value
    *above* its prediction is a soundness bug in the model.  The
    verdict is therefore asymmetric: under-prediction beyond the
    tolerance fails, over-prediction beyond it (loose boxes, e.g.
    diagonal access patterns) only warns. *)

open Emsc_arith
open Emsc_driver

type quantity = {
  q_name : string;
  q_predicted : float;
  q_measured : float;
  q_rel_err : float;
      (** [(predicted - measured) / max 1 |measured|]: positive =
          over-prediction (expected for upper bounds) *)
}

type group = {
  g_buffer : string;  (** local buffer name *)
  g_array : string;   (** original array the partition belongs to *)
  g_quantities : quantity list;
      (** [move_in_words], [move_out_words], and — for untiled runs,
          where cumulative occupancy equals the single window —
          [footprint_words] *)
  g_unknown : string list;
      (** quantities the model could not bound (unbounded volume,
          occurrence factor unavailable) *)
}

type edge_group = {
  e_edge : string;
      (** hierarchy transfer edge, ["inner<-outer"], innermost first *)
  e_quantities : quantity list;
      (** [move_in_words], [move_out_words] summed over the buffers
          whose placement crosses the edge *)
  e_unknown : string list;
}

type verdict = Pass | Warn | Fail

(** Redundant-vs-irredundant movement for one buffer planned with
    inter-tile reuse: [r_redundant] is the counterfactual
    full-per-block total (every block pays its whole footprint, in and
    out), [r_irredundant] the words the delta-mode run actually moved.
    [r_irredundant > r_redundant] fails the audit — delta movement may
    never exceed what full movement would have cost. *)
type reuse_group = {
  r_buffer : string;
  r_redundant : float;
  r_irredundant : float;
}

type t = {
  a_source : string;
  a_tiled : bool;
  a_tolerance : float;
  a_machine : string;          (** hierarchy the audit ran against *)
  a_groups : group list;       (** one per staged buffer *)
  a_reuse : reuse_group list;
      (** one per buffer planned with inter-tile reuse (empty
          otherwise); part of the verdict *)
  a_placement : Emsc_machine.Placement.t option;
      (** per-level placement of the staged buffers (staging runs) *)
  a_edges : edge_group list;
      (** per-edge movement accounting; reported (and benched) but not
          part of the verdict — the per-buffer groups already gate
          soundness, and an edge total is their weighted combination *)
  a_program : quantity list;   (** [flops], [global_words], [smem_words] *)
  a_timing : quantity list;    (** [t_comp], [t_bw], [t_lat] cycles *)
  a_unknown : string list;     (** program-level quantities not predicted *)
  a_notes : string list;
  a_worst : quantity option;   (** largest absolute relative error *)
  a_verdict : verdict;
      (** [Fail] when any quantity is under-predicted beyond the
          tolerance (the upper-bound model is unsound there) or any
          reuse buffer moved more than the redundant counterfactual;
          [Warn] when over-prediction slack exceeds the tolerance or
          some quantity could not be predicted; [Pass] otherwise *)
  a_metrics : Emsc_obs.Metrics.snapshot;
      (** registry diff over the measured run (movement per buffer,
          occupancy, run totals) *)
}

type outcome =
  | Audited of t
  | Skipped of string  (** compilation stops before planning *)
  | Failed of string   (** compile error, or the measured run died *)

val default_tolerance : float

val auditable : Pipeline.compiled -> bool
(** Does the compilation carry a plan (and, when tiled, a kernel)? *)

val audit_compiled :
  ?tolerance:float ->
  ?double_buffer:bool ->
  ?hierarchy:Emsc_machine.Hierarchy.t ->
  ?param_env:(string -> Zint.t) ->
  Pipeline.compiled ->
  outcome
(** Audit one compilation.  Tiled kernels run through
    {!Emsc_driver.Runner.simulate}; untiled staged plans run the
    move-in / instance-replay / move-out harness (the differential
    oracle's execution model).  [param_env] defaults to
    {!Emsc_driver.Runner.zero_env}.  [double_buffer] makes the
    timing-side scratchpad footprint use the effective (doubled)
    window, via {!Emsc_machine.Timing.plan_smem_bytes}, matching what
    the runtime actually keeps resident.  [hierarchy] (default
    {!Emsc_machine.Hierarchy.gtx8800}, which keeps the numbers
    bit-identical to the legacy 2-level model) selects the machine:
    its staging projection drives the timing quantities and its edge
    list the per-edge movement accounting.  The metrics registry is
    enabled for the duration of the measured run and restored
    afterwards. *)

val audit_job :
  ?cache:Cache.t ->
  ?tolerance:float ->
  ?double_buffer:bool ->
  ?hierarchy:Emsc_machine.Hierarchy.t ->
  ?param_env:(string -> Zint.t) ->
  Pipeline.job ->
  outcome
(** Compile through the pipeline, then {!audit_compiled}. *)

val ok : outcome -> bool
(** [true] unless [Failed] or [Audited] with verdict [Fail]: the exit
    status of [emsc audit]. *)

val verdict_string : verdict -> string

val json : t -> Emsc_obs.Json.t
val outcome_json : name:string -> outcome -> Emsc_obs.Json.t
(** One row of the [emsc audit --json] / bench [audit] artifact:
    [{"source"; "status"; ...report fields when audited}]. *)

val pp : Format.formatter -> t -> unit
val pp_outcome : name:string -> Format.formatter -> outcome -> unit

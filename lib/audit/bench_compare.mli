(** Regression gating between two bench artifacts.

    Compares the [figure_wall_ms] (wall-clock per figure),
    [kernel_counters] (simulated global-memory words per kernel) and
    [runtime_wall_ms] (parallel-backend wall per kernel/series)
    sections of two [BENCH_<timestamp>.json] files, plus the
    [runtime_report] section's overlap-audit verdicts (a report whose
    overlap audit fails where the baseline's passed — or where the
    baseline had none that failed — is a regression on its own).  Wall
    time is machine-dependent, so it gets its own — typically
    generous — tolerance; movement volume is deterministic and is
    gated tightly; the runtime section is gated loosest of all (domain
    scheduling on shared CI hosts is noisy).  The [transfer_volume]
    section (full- vs delta-mode movement words from the inter-tile
    reuse figure) is deterministic and gated with the movement
    tolerance, so delta movement creeping back toward the redundant
    full-mode volume is a regression.  The [serve] section (the
    compile-daemon load test) gates only its lower-is-better keys —
    latency quantiles ([*_ms]) and the hot-cache miss rate
    ([*_miss_rate]) — with the runtime tolerance; throughput and hit
    rates are reported but never compared (growth there is good).
    Absence of the [runtime_wall_ms], [runtime_report],
    [level_movement], [transfer_volume] or [serve] sections from an
    older artifact is fine — the new points show up as added, not
    missing.
    A key present in the old artifact but missing from the new one is a
    lost measurement and fails the comparison.

    The [compile_profile] section (per-pass self times from the
    {!Emsc_obs.Prof} layer) is never gated on its own — micro timings
    are too noisy to fail a run — but when a wall-clock metric
    regresses past its tolerance, the old and new per-pass profiles
    are diffed and the top offending passes are named in the failure
    message ({!report}[.r_attribution]).  Passes absent from the old
    profile surface as added coverage; passes the new profile dropped
    are ignored. *)

type change = {
  c_key : string;     (** figure, kernel, or (attribution) pass name *)
  c_metric : string;
      (** ["wall_ms"], ["global_words"], ["runtime_wall_ms"],
          ["overlap_fail"] or ["pass_self_ms"] (attribution only) *)
  c_old : float;
  c_new : float;
  c_ratio : float;    (** new / old; [infinity] when old is 0 *)
}

type report = {
  r_regressions : change list;
  r_improvements : change list;
  r_unchanged : int;
  r_missing : string list;  (** measurements the new artifact dropped *)
  r_added : string list;
  r_attribution : change list;
      (** non-empty only when a wall metric regressed: the passes whose
          self time grew beyond the wall tolerance (and by at least
          0.1 ms), largest absolute growth first, capped at 3 *)
}

val default_wall_tolerance : float
(** 0.5: half again slower fails. *)

val default_move_tolerance : float
(** 0.01: simulated movement is deterministic; any real growth fails. *)

val default_runtime_tolerance : float
(** 1.0: a parallel-backend point may double before it fails — the
    gate catches order-of slowdowns, not wall jitter. *)

val compare :
  ?wall_tolerance:float ->
  ?move_tolerance:float ->
  ?runtime_tolerance:float ->
  Emsc_obs.Json.t ->
  Emsc_obs.Json.t ->
  (report, string) result
(** [compare old_artifact new_artifact].  [Error] on artifacts that do
    not carry the [emsc-bench/1] schema sections. *)

val ok : report -> bool
(** No regressions and no lost measurements. *)

val json : report -> Emsc_obs.Json.t
val pp : Format.formatter -> report -> unit

module J = Emsc_obs.Json

type change = {
  c_key : string;
  c_metric : string;
  c_old : float;
  c_new : float;
  c_ratio : float;
}

type report = {
  r_regressions : change list;
  r_improvements : change list;
  r_unchanged : int;
  r_missing : string list;
  r_added : string list;
  r_attribution : change list;
}

let default_wall_tolerance = 0.5
let default_move_tolerance = 0.01

(* parallel-backend wall times add domain scheduling noise on top of
   ordinary wall jitter (and CI hosts time-slice the domains onto very
   few cores), so this gate is deliberately loose: it catches order-of
   slowdowns, not percent drift *)
let default_runtime_tolerance = 1.0

let num = function
  | J.Float f -> Some f
  | J.Int i -> Some (float_of_int i)
  | _ -> None

(* figure -> wall ms *)
let wall_section j =
  match J.member "figure_wall_ms" j with
  | Some (J.Obj fields) -> Ok (List.filter_map (fun (k, v) ->
      match num v with Some f -> Some (k, f) | None -> None)
      fields)
  | _ -> Error "artifact has no figure_wall_ms object"

(* "<kernel>.<series>" -> wall ms of the runtime figure; absent in
   artifacts that predate the parallel backend, so absence is an empty
   section (new points then surface as "added", not "missing") *)
let runtime_section j =
  match J.member "runtime_wall_ms" j with
  | Some (J.Obj fields) ->
    List.filter_map (fun (k, v) ->
      match num v with Some f -> Some (k, f) | None -> None)
      fields
  | _ -> []

(* kernel -> overlap-audit failure indicator (1.0 when the runtime
   report's overlap audit failed, 0.0 otherwise); absent in artifacts
   that predate the events layer, so absence is an empty section and
   new reports surface as "added", never as a regression *)
let report_section j =
  match J.member "runtime_report" j with
  | Some (J.Obj fields) ->
    List.filter_map (fun (k, r) ->
      match J.member "overlap_audit" r with
      | Some a ->
        (match J.member "verdict" a with
         | Some (J.Str v) -> Some (k, if v = "fail" then 1.0 else 0.0)
         | _ -> None)
      | None -> None)
      fields
  | _ -> []

(* "<kernel>.<machine>.<edge>" -> words moved across that hierarchy
   edge; absent in artifacts that predate the N-level machine model,
   so absence is an empty section (new keys surface as "added", not
   "missing") *)
let level_movement_section j =
  match J.member "level_movement" j with
  | Some (J.Obj fields) ->
    List.filter_map (fun (k, v) ->
      match num v with Some f -> Some (k, f) | None -> None)
      fields
  | _ -> []

(* "<kernel>.<full|delta>[.<buffer>]" -> words moved by the inter-tile
   reuse figure; absent in artifacts that predate delta movement, so
   absence is an empty section (new keys surface as "added", not
   "missing").  Deterministic like level_movement: gated with the move
   tolerance, so a delta-mode volume that creeps back up toward the
   redundant full-mode volume fails the comparison *)
let transfer_volume_section j =
  match J.member "transfer_volume" j with
  | Some (J.Obj fields) ->
    List.filter_map (fun (k, v) ->
      match num v with Some f -> Some (k, f) | None -> None)
      fields
  | _ -> []

(* latency-SLO keys of the serve-daemon load test: only lower-is-better
   keys are gated — per-request latency quantiles ("*_ms") and the hot
   cache miss rate ("*_miss_rate").  Throughput and hit rates live in
   the same artifact object but growth there is good, so they are
   reported, never compared.  Absent in artifacts that predate the
   daemon, so absence is an empty section (new keys surface as
   "added", not "missing").  Gated with the loose runtime tolerance:
   quantiles off a 1-core CI box carry scheduling noise, and the gate
   exists to catch order-of regressions in the serving path, not
   percent drift. *)
let serve_section j =
  match J.member "serve" j with
  | Some (J.Obj fields) ->
    List.filter_map (fun (k, v) ->
      if String.ends_with ~suffix:"_ms" k
         || String.ends_with ~suffix:"_miss_rate" k
      then match num v with Some f -> Some (k, f) | None -> None
      else None)
      fields
  | _ -> []

(* pass name -> self ms from the compile_profile section written by the
   Prof layer; absent in artifacts that predate the profiler, so absence
   is an empty section.  Never gated: per-pass self times are micro
   timings and exist to *attribute* a wall regression to the offending
   pass, not to fail a run on their own *)
let profile_section j =
  match J.member "compile_profile" j with
  | Some p ->
    (match J.member "passes" p with
     | Some (J.Obj fields) ->
       List.filter_map (fun (name, entry) ->
         match J.member "self_ms" entry with
         | Some v -> (match num v with Some f -> Some (name, f) | None -> None)
         | None -> None)
         fields
     | _ -> [])
  | None -> []

(* ignore sub-tenth-of-a-millisecond growth: micro-pass jitter, not a
   credible cause of a wall regression *)
let attribution_floor_ms = 0.1

(* When a wall-clock metric regressed, diff the per-pass self times and
   name the top offenders: passes whose self time grew beyond the wall
   tolerance, largest absolute growth first.  Passes absent from the old
   profile are tolerated as added coverage (they surface in [r_added]),
   and passes the new profile dropped are ignored — attribution explains
   failures, it does not create them. *)
let attribute ~tolerance ~top olds news =
  List.filter_map (fun (name, new_v) ->
    match List.assoc_opt name olds with
    | None -> None
    | Some old_v ->
      if new_v > old_v *. (1.0 +. tolerance)
         && new_v -. old_v >= attribution_floor_ms
      then
        Some
          { c_key = name; c_metric = "pass_self_ms"; c_old = old_v;
            c_new = new_v;
            c_ratio = (if old_v > 0.0 then new_v /. old_v else infinity) }
      else None)
    news
  |> List.sort (fun a b ->
       Stdlib.compare (b.c_new -. b.c_old) (a.c_new -. a.c_old))
  |> List.filteri (fun i _ -> i < top)

(* kernel -> global words moved (loads + stores): the deterministic
   movement-volume figure of merit *)
let movement_section j =
  match J.member "kernel_counters" j with
  | Some (J.Obj fields) ->
    Ok
      (List.filter_map (fun (k, counters) ->
         match
           J.member "global_loads" counters, J.member "global_stores" counters
         with
         | Some ld, Some st ->
           (match num ld, num st with
            | Some l, Some s -> Some (k, l +. s)
            | _ -> None)
         | _ -> None)
         fields)
  | _ -> Error "artifact has no kernel_counters object"

let diff_section ~metric ~tolerance olds news
    (regressions, improvements, unchanged, missing, added) =
  let acc = ref (regressions, improvements, unchanged, missing, added) in
  List.iter (fun (key, old_v) ->
    let r, i, u, m, a = !acc in
    match List.assoc_opt key news with
    | None -> acc := (r, i, u, (key ^ "/" ^ metric) :: m, a)
    | Some new_v ->
      let ratio = if old_v > 0.0 then new_v /. old_v else
        if new_v > 0.0 then infinity else 1.0 in
      let change =
        { c_key = key; c_metric = metric; c_old = old_v; c_new = new_v;
          c_ratio = ratio }
      in
      if new_v > old_v *. (1.0 +. tolerance) then
        acc := (change :: r, i, u, m, a)
      else if new_v < old_v *. (1.0 -. tolerance) then
        acc := (r, change :: i, u, m, a)
      else acc := (r, i, u + 1, m, a))
    olds;
  let r, i, u, m, a = !acc in
  let fresh =
    List.filter_map (fun (key, _) ->
      if List.mem_assoc key olds then None else Some (key ^ "/" ^ metric))
      news
  in
  (r, i, u, m, a @ fresh)

let compare ?(wall_tolerance = default_wall_tolerance)
    ?(move_tolerance = default_move_tolerance)
    ?(runtime_tolerance = default_runtime_tolerance) old_j new_j =
  match wall_section old_j, wall_section new_j,
        movement_section old_j, movement_section new_j with
  | Error e, _, _, _ | _, _, Error e, _ -> Error ("old " ^ e)
  | _, Error e, _, _ | _, _, _, Error e -> Error ("new " ^ e)
  | Ok wall_old, Ok wall_new, Ok move_old, Ok move_new ->
    let r, i, u, m, a =
      ([], [], 0, [], [])
      |> diff_section ~metric:"wall_ms" ~tolerance:wall_tolerance wall_old
           wall_new
      |> diff_section ~metric:"global_words" ~tolerance:move_tolerance
           move_old move_new
      |> diff_section ~metric:"level_words" ~tolerance:move_tolerance
           (level_movement_section old_j) (level_movement_section new_j)
      |> diff_section ~metric:"transfer_words" ~tolerance:move_tolerance
           (transfer_volume_section old_j) (transfer_volume_section new_j)
      |> diff_section ~metric:"runtime_wall_ms" ~tolerance:runtime_tolerance
           (runtime_section old_j) (runtime_section new_j)
      |> diff_section ~metric:"serve_slo" ~tolerance:runtime_tolerance
           (serve_section old_j) (serve_section new_j)
      (* a freshly failing overlap audit (0 -> 1) is a regression in
         its own right, regardless of wall time *)
      |> diff_section ~metric:"overlap_fail" ~tolerance:0.0
           (report_section old_j) (report_section new_j)
    in
    let prof_old = profile_section old_j in
    let prof_new = profile_section new_j in
    (* profile coverage the old artifact lacked is added, never missing *)
    let a =
      a
      @ List.filter_map (fun (name, _) ->
          if List.mem_assoc name prof_old then None
          else Some (name ^ "/pass_self_ms"))
          prof_new
    in
    let wall_regressed =
      List.exists (fun c ->
        c.c_metric = "wall_ms" || c.c_metric = "runtime_wall_ms")
        r
    in
    let attribution =
      if wall_regressed then
        attribute ~tolerance:wall_tolerance ~top:3 prof_old prof_new
      else []
    in
    Ok
      { r_regressions = List.rev r;
        r_improvements = List.rev i;
        r_unchanged = u;
        r_missing = List.rev m;
        r_added = a;
        r_attribution = attribution }

let ok r = r.r_regressions = [] && r.r_missing = []

let change_json c =
  J.Obj
    [ ("key", J.Str c.c_key); ("metric", J.Str c.c_metric);
      ("old", J.Float c.c_old); ("new", J.Float c.c_new);
      ("ratio", J.Float c.c_ratio) ]

let strs l = J.List (List.map (fun s -> J.Str s) l)

let json r =
  J.Obj
    [ ("schema", J.Str "emsc-bench-compare/1");
      ("ok", J.Bool (ok r));
      ("regressions", J.List (List.map change_json r.r_regressions));
      ("improvements", J.List (List.map change_json r.r_improvements));
      ("unchanged", J.Int r.r_unchanged);
      ("missing", strs r.r_missing);
      ("added", strs r.r_added);
      ("attribution", J.List (List.map change_json r.r_attribution)) ]

let pp_change fmt c =
  Format.fprintf fmt "%s %s: %.6g -> %.6g (%.2fx)" c.c_key c.c_metric c.c_old
    c.c_new c.c_ratio

let pp fmt r =
  Format.fprintf fmt "@[<v>%s: %d regression(s), %d improvement(s), %d \
                      unchanged, %d missing, %d added@,"
    (if ok r then "OK" else "REGRESSED")
    (List.length r.r_regressions)
    (List.length r.r_improvements)
    r.r_unchanged
    (List.length r.r_missing)
    (List.length r.r_added);
  List.iter (fun c -> Format.fprintf fmt "REGRESSION %a@," pp_change c)
    r.r_regressions;
  if r.r_attribution <> [] then begin
    Format.fprintf fmt "wall regression attributed to (per-pass self time):@,";
    List.iter (fun c -> Format.fprintf fmt "  ATTRIBUTION %a@," pp_change c)
      r.r_attribution
  end;
  List.iter (fun k -> Format.fprintf fmt "MISSING %s@," k) r.r_missing;
  List.iter (fun c -> Format.fprintf fmt "improved %a@," pp_change c)
    r.r_improvements;
  Format.fprintf fmt "@]"

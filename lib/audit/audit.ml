open Emsc_arith
open Emsc_poly
open Emsc_ir
open Emsc_core
open Emsc_transform
open Emsc_machine
open Emsc_driver
module Metrics = Emsc_obs.Metrics
module J = Emsc_obs.Json

type quantity = {
  q_name : string;
  q_predicted : float;
  q_measured : float;
  q_rel_err : float;
}

type group = {
  g_buffer : string;
  g_array : string;
  g_quantities : quantity list;
  g_unknown : string list;
}

type edge_group = {
  e_edge : string;
  e_quantities : quantity list;
  e_unknown : string list;
}

type verdict = Pass | Warn | Fail

type reuse_group = {
  r_buffer : string;
  r_redundant : float;
  r_irredundant : float;
}

type t = {
  a_source : string;
  a_tiled : bool;
  a_tolerance : float;
  a_machine : string;
  a_groups : group list;
  a_reuse : reuse_group list;
  a_placement : Placement.t option;
  a_edges : edge_group list;
  a_program : quantity list;
  a_timing : quantity list;
  a_unknown : string list;
  a_notes : string list;
  a_worst : quantity option;
  a_verdict : verdict;
  a_metrics : Metrics.snapshot;
}

type outcome =
  | Audited of t
  | Skipped of string
  | Failed of string

(* Box-volume slack plus partial boundary tiles put the shipped
   examples and the kernel suite within ~15% of measured; 0.25 leaves
   headroom without masking a broken model (see EXPERIMENTS.md). *)
let default_tolerance = 0.25

let rel_err ~predicted ~measured =
  (predicted -. measured) /. Float.max 1.0 (Float.abs measured)

let quantity name predicted measured =
  { q_name = name; q_predicted = predicted; q_measured = measured;
    q_rel_err = rel_err ~predicted ~measured }

(* valuation for the plan's program: original parameters from
   [param_env], tile origins at the lower bound of the origin context —
   the same convention the invariant checker and the fuzzer use *)
let plan_env (c : Pipeline.compiled) param_env =
  match c.Pipeline.tiled with
  | None -> param_env
  | Some t ->
    let tp = t.Pipeline.tiled_prog in
    let ctx = t.Pipeline.context in
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun k name ->
      match Poly.var_bounds_int ctx k with
      | Some lb, _ -> Hashtbl.replace tbl name lb
      | None, _ -> ())
      tp.Prog.params;
    fun name ->
      match Hashtbl.find_opt tbl name with
      | Some v -> v
      | None -> param_env name

(* ------------------------------------------------------------------ *)
(* Predicted side                                                      *)
(* ------------------------------------------------------------------ *)

(* exact dynamic instance count of a statement under a parameter
   valuation (iterator dimensions first, then parameters) *)
let instance_count (prog : Prog.t) (s : Prog.stmt) env =
  try
    let p = ref s.Prog.domain in
    Array.iter (fun name -> p := Poly.fix_dim !p s.Prog.depth (env name))
      prog.Prog.params;
    match Count.count_poly ~limit:20_000_000 !p with
    | Count.Exact n -> Some (Zint.to_float n)
    | Count.More_than _ | Count.Unbounded -> None
  with Failure _ | Not_found -> None

(* the interpreter counts one load per [Eref] *evaluation*, so walk
   the executable body rather than the [reads] list *)
let rec rhs_accesses = function
  | Prog.Eref a -> [ a ]
  | Prog.Eiter _ | Prog.Eparam _ | Prog.Econst _ -> []
  | Prog.Eneg e | Prog.Eabs e -> rhs_accesses e
  | Prog.Eadd (a, b) | Prog.Esub (a, b) | Prog.Emul (a, b)
  | Prog.Ediv (a, b) | Prog.Emin (a, b) | Prog.Emax (a, b) ->
    rhs_accesses a @ rhs_accesses b

type access_pred = {
  p_flops : float;
  p_g_ld : float;   (* unstaged compute loads *)
  p_g_st : float;
  p_s_ld : float;   (* staged compute loads *)
  p_s_st : float;
}

(* Predicted compute-access counters.  The executed program is
   [plan.prog] (the tiled "tile block" program when tiling), but every
   original instance executes exactly once across tiles, so instance
   counts come from the original statement with the same id; the
   staged-or-not decision per access comes from the plan. *)
let predict_accesses ~staging (c : Pipeline.compiled) (plan : Plan.t) env =
  let flops = ref 0.0 and g_ld = ref 0.0 and g_st = ref 0.0
  and s_ld = ref 0.0 and s_st = ref 0.0 and known = ref true in
  List.iter (fun (ps : Prog.stmt) ->
    match ps.Prog.body with
    | None -> ()
    | Some (lhs, rhs) ->
      let orig =
        try Some (Prog.find_stmt c.Pipeline.prog ps.Prog.id)
        with _ -> None
      in
      (match orig with
       | None -> known := false
       | Some orig ->
         (match instance_count c.Pipeline.prog orig env with
          | None -> known := false
          | Some inst ->
            let staged a = staging && Plan.local_ref plan ps a <> None in
            flops := !flops +. (inst *. float_of_int (1 + Exec.expr_flops rhs));
            List.iter (fun a ->
              if staged a then s_ld := !s_ld +. inst
              else g_ld := !g_ld +. inst)
              (rhs_accesses rhs);
            if staged lhs then s_st := !s_st +. inst
            else g_st := !g_st +. inst)))
    plan.Plan.prog.Prog.stmts;
  if !known then
    Some { p_flops = !flops; p_g_ld = !g_ld; p_g_st = !g_st;
           p_s_ld = !s_ld; p_s_st = !s_st }
  else None

(* how many times a buffer's movement pair executes over the whole run:
   the Section 4.3 occurrence factor (mem-level trips, honouring
   hoisting) times the number of block tiles *)
let occurrences (c : Pipeline.compiled) (b : Plan.buffered) =
  match c.Pipeline.tiled with
  | None -> Some 1.0
  | Some t ->
    (try
       Some
         (Tile.movement_profile c.Pipeline.prog t.Pipeline.spec
            (b.Plan.move_in, b.Plan.move_out)
          *. Tile.block_tile_count c.Pipeline.prog t.Pipeline.spec)
     with Invalid_argument _ -> None)

let volume (plan : Plan.t) (b : Plan.buffered) kind env =
  try
    match
      Movement.volume_upper_bound plan.Plan.prog
        b.Plan.buffer.Alloc.partition ~kind ~env
    with
    | Some z -> Some (Zint.to_float z)
    | None -> None
  with Failure _ | Not_found -> None

(* per-occurrence volume scaled to a whole-run total; a movement list
   the plan left empty is a *known* zero, not an unknown.  This is the
   REDUNDANT model: every block pays its full footprint. *)
let predict_full_movement c plan env (b : Plan.buffered) kind =
  let code =
    match kind with `Read -> b.Plan.move_in | `Write -> b.Plan.move_out
  in
  if code = [] then Some 0.0
  else
    match occurrences c b, volume plan b kind env with
    | Some occ, Some v -> Some (occ *. v)
    | _ -> None

(* data spaces live in (params ++ array dims); fix the leading
   parameter dimensions under a valuation — same convention as the
   invariant checker *)
let instantiate_union prog ~env us =
  let np = Prog.nparams prog in
  let values = Array.map env prog.Prog.params in
  let fix_piece p =
    let p = ref p in
    for k = 0 to np - 1 do
      p := Poly.fix_dim !p 0 values.(k)
    done;
    !p
  in
  Uset.of_pieces ~dim:(Uset.dim us - np) (List.map fix_piece (Uset.pieces us))

(* exact point count of a plan data set with the reuse origin pinned at
   a chosen block and every other origin at the valuation *)
let count_at prog ~env ~origin ~origin_at us =
  let env' name = if name = origin then origin_at else env name in
  match Count.count_uset (instantiate_union prog ~env:env' us) with
  | Count.Exact n -> Some (Zint.to_float n)
  | Count.More_than _ | Count.Unbounded -> None
  | exception _ -> None

(* (total blocks, chains) of a reuse buffer over the whole run: the
   origin steps [trips] times per chain, so the block-tile count
   factors into chains of [trips] consecutive blocks *)
let reuse_chain_counts c (b : Plan.buffered) (r : Plan.reuse) =
  match occurrences c b with
  | None -> None
  | Some blocks ->
    let trips =
      float_of_int (((r.Plan.r_last - r.Plan.r_lb) / r.Plan.r_step) + 1)
    in
    Some (blocks, blocks /. trips)

(* IRREDUNDANT model for a reuse buffer: each chain opens (move-in) or
   closes (move-out) with one full transfer; its other blocks move
   only the delta.  Delta sizes are taken at a chain-interior block
   (origin = lb + step); blocks clipped by the domain boundary move
   less, so the prediction stays an upper bound. *)
let predict_reuse_movement c plan env (b : Plan.buffered) (r : Plan.reuse)
    kind =
  match reuse_chain_counts c b r with
  | None -> None
  | Some (blocks, chains) ->
    let prog = plan.Plan.prog in
    let origin = r.Plan.r_origin in
    let full, delta =
      match kind with
      | `Read -> (r.Plan.r_full_in, r.Plan.r_delta_in)
      | `Write -> (r.Plan.r_full_out, r.Plan.r_delta_out)
    in
    (match
       count_at prog ~env ~origin ~origin_at:(Zint.of_int r.Plan.r_lb) full
     with
     | None -> None
     | Some fv ->
       if r.Plan.r_lb = r.Plan.r_last then Some (chains *. fv)
       else (
         match
           count_at prog ~env ~origin
             ~origin_at:(Zint.of_int (r.Plan.r_lb + r.Plan.r_step))
             delta
         with
         | Some dv -> Some ((chains *. fv) +. ((blocks -. chains) *. dv))
         | None -> None))

let predict_movement c plan env (b : Plan.buffered) kind =
  match b.Plan.reuse with
  | Some r -> (
    match predict_reuse_movement c plan env b r kind with
    | Some _ as v -> v
    | None -> predict_full_movement c plan env b kind)
  | None -> predict_full_movement c plan env b kind

(* local-to-local relocation of resident slabs: invisible to the DMA
   counters but one scratchpad load + store per shifted cell, so the
   program-level smem prediction must carry it *)
let predict_buffer_shift c plan env (b : Plan.buffered) =
  match b.Plan.reuse with
  | Some r
    when Array.exists (fun s -> s <> 0) r.Plan.r_shift
         && r.Plan.r_lb <> r.Plan.r_last -> (
    match
      ( reuse_chain_counts c b r,
        count_at plan.Plan.prog ~env ~origin:r.Plan.r_origin
          ~origin_at:(Zint.of_int (r.Plan.r_lb + r.Plan.r_step))
          r.Plan.r_resident )
    with
    | Some (blocks, chains), Some rv -> Some ((blocks -. chains) *. rv)
    | _ -> None)
  | _ -> Some 0.0

(* ------------------------------------------------------------------ *)
(* Measured side                                                       *)
(* ------------------------------------------------------------------ *)

(* replay one statement instance with its iterators bound as (trivial)
   loop variables — the differential oracle's untiled execution model *)
let instance_call ((s : Prog.stmt), iters) =
  let call =
    Emsc_codegen.Ast.Stmt_call
      { stmt_id = s.Prog.id;
        iter_args =
          Array.map (fun nm -> Emsc_codegen.Ast.Var nm) s.Prog.iter_names }
  in
  let rec wrap d body =
    if d < 0 then body
    else
      wrap (d - 1)
        [ Emsc_codegen.Ast.Loop
            { Emsc_codegen.Ast.var = s.Prog.iter_names.(d);
              lb = Emsc_codegen.Ast.Const iters.(d);
              ub = Emsc_codegen.Ast.Const iters.(d);
              step = Zint.one;
              par = Emsc_codegen.Ast.Seq;
              body } ]
  in
  wrap (s.Prog.depth - 1) [ call ]

let run_measured ~param_env (c : Pipeline.compiled) (plan : Plan.t) =
  match c.Pipeline.tiled with
  | Some _ ->
    Runner.simulate ~mode:Exec.Full ~memory:Runner.Zeroed ~param_env c
  | None ->
    let prog = c.Pipeline.prog in
    let calls =
      List.concat_map instance_call (Reference.instances prog ~param_env)
    in
    let staging = c.Pipeline.options.Options.stage_data in
    let harness, locals, local_ref =
      if staging then
        ( Plan.all_move_in plan @ calls @ Plan.all_move_out plan,
          List.map (fun (b : Plan.buffered) -> b.Plan.buffer.Alloc.local_name)
            plan.Plan.buffered,
          if plan.Plan.buffered <> [] then Some (Plan.local_ref plan)
          else None )
      else (calls, [], None)
    in
    Runner.execute ~prog ?local_ref ~locals ~mode:Exec.Full
      ~memory:Runner.Zeroed ~param_env harness

(* ------------------------------------------------------------------ *)
(* The audit                                                           *)
(* ------------------------------------------------------------------ *)

let audit_group c plan env m mem (b : Plan.buffered) =
  let name = b.Plan.buffer.Alloc.local_name in
  let labels = [ ("buffer", name) ] in
  let quantities = ref [] and unknown = ref [] in
  let movement q_name kind counter =
    let measured = Metrics.counter_value ~labels m counter in
    match predict_movement c plan env b kind with
    | Some p -> quantities := quantity q_name p measured :: !quantities
    | None -> unknown := q_name :: !unknown
  in
  movement "move_in_words" `Read "exec.move_in_words";
  movement "move_out_words" `Write "exec.move_out_words";
  (* cumulative distinct cells equal the buffer's single window only
     when there is one tile, i.e. untiled *)
  if c.Pipeline.tiled = None then begin
    match
      (try Some (Zint.to_float (Alloc.footprint b.Plan.buffer env))
       with _ -> None)
    with
    | Some fp ->
      let measured =
        match List.assoc_opt name (Memory.local_occupancy mem) with
        | Some n -> float_of_int n
        | None -> 0.0
      in
      quantities := quantity "footprint_words" fp measured :: !quantities
    | None -> unknown := "footprint_words" :: !unknown
  end;
  { g_buffer = name; g_array = b.Plan.buffer.Alloc.array;
    g_quantities = List.rev !quantities; g_unknown = List.rev !unknown }

(* redundant vs irredundant movement for a reuse buffer: the
   counterfactual every-block-pays-its-footprint total against the
   words the delta-mode run actually moved.  A delta run may never move
   MORE than full mode would — that's the bug class this section
   gates. *)
let reuse_group c plan env m (b : Plan.buffered) =
  match b.Plan.reuse with
  | None -> None
  | Some r ->
    let name = b.Plan.buffer.Alloc.local_name in
    let labels = [ ("buffer", name) ] in
    let measured =
      Metrics.counter_value ~labels m "exec.move_in_words"
      +. Metrics.counter_value ~labels m "exec.move_out_words"
    in
    let prog = plan.Plan.prog in
    let origin = r.Plan.r_origin in
    let at_lb = Zint.of_int r.Plan.r_lb in
    (match
       ( reuse_chain_counts c b r,
         count_at prog ~env ~origin ~origin_at:at_lb r.Plan.r_full_in,
         count_at prog ~env ~origin ~origin_at:at_lb r.Plan.r_full_out )
     with
     | Some (blocks, _), Some fin, Some fout ->
       Some
         { r_buffer = name;
           r_redundant = blocks *. (fin +. fout);
           r_irredundant = measured }
     | _ -> None)

let sum_known = function
  | [] -> Some 0.0
  | l ->
    List.fold_left (fun acc v ->
      match acc, v with Some a, Some b -> Some (a +. b) | _ -> None)
      (Some 0.0) l

let zeroed_sync (src : Exec.counters) =
  let c = Exec.fresh () in
  c.Exec.flops <- src.Exec.flops;
  c.Exec.g_ld <- src.Exec.g_ld;
  c.Exec.g_st <- src.Exec.g_st;
  c.Exec.s_ld <- src.Exec.s_ld;
  c.Exec.s_st <- src.Exec.s_st;
  c

(* Per-edge movement accounting: a buffer placed at level i is staged
   across every edge between i and the home, so each edge's totals are
   the sums over the buffers at or inside its inner level.  These
   aggregates are reported (and benched) but deliberately kept out of
   the verdict: the per-buffer quantities already gate soundness, and
   an aggregate is just their weighted combination. *)
let audit_edges c plan env m hierarchy ~double_buffer =
  let placement = Placement.of_plan ~double_buffer hierarchy plan env in
  let buf_level (b : Plan.buffered) =
    match Placement.find placement b.Plan.buffer.Alloc.local_name with
    | Some p -> Some p.Placement.p_level_index
    | None -> None  (* symbolic footprint: not placed *)
  in
  let edge_groups =
    List.mapi
      (fun j e ->
        let crossing =
          List.filter
            (fun b -> match buf_level b with Some i -> i <= j | None -> false)
            plan.Plan.buffered
        in
        let unplaced =
          List.filter_map
            (fun (b : Plan.buffered) ->
              if buf_level b = None then
                Some b.Plan.buffer.Alloc.local_name
              else None)
            plan.Plan.buffered
        in
        let quantities = ref [] and unknown = ref unplaced in
        let direction q_name kind counter =
          let measured =
            List.fold_left
              (fun acc (b : Plan.buffered) ->
                acc
                +. Metrics.counter_value
                     ~labels:
                       [ ("buffer", b.Plan.buffer.Alloc.local_name) ]
                     m counter)
              0.0 crossing
          in
          match
            sum_known
              (List.map (fun b -> predict_movement c plan env b kind)
                 crossing)
          with
          | Some p -> quantities := quantity q_name p measured :: !quantities
          | None -> unknown := q_name :: !unknown
        in
        direction "move_in_words" `Read "exec.move_in_words";
        direction "move_out_words" `Write "exec.move_out_words";
        { e_edge = Hierarchy.edge_name e;
          e_quantities = List.rev !quantities;
          e_unknown = List.rev !unknown })
      (Hierarchy.edges hierarchy)
  in
  (placement, edge_groups)

let audit_compiled ?(tolerance = default_tolerance) ?(double_buffer = false)
    ?(hierarchy = Hierarchy.gtx8800) ?(param_env = Runner.zero_env)
    (c : Pipeline.compiled) =
  match c.Pipeline.plan with
  | None -> Skipped "pipeline stops before planning"
  | Some plan ->
    Emsc_obs.Trace.span "audit.run" @@ fun () ->
    let staging = c.Pipeline.options.Options.stage_data in
    let was_on = Metrics.enabled () in
    let measured =
      try
        Metrics.enable ();
        let snap0 = Metrics.snapshot () in
        Fun.protect
          ~finally:(fun () -> if not was_on then Metrics.disable ())
          (fun () ->
            let mem, res = run_measured ~param_env c plan in
            Ok (mem, res, Metrics.diff snap0 (Metrics.snapshot ())))
      with
      | Failure msg -> Error ("execution failed: " ^ msg)
      | Invalid_argument msg -> Error ("execution failed: " ^ msg)
      | Not_found -> Error "execution failed: unbound variable"
    in
    (match measured with
     | Error e -> Failed e
     | Ok (mem, res, m) ->
       let env = plan_env c param_env in
       let groups =
         if staging then
           List.map (audit_group c plan env m mem) plan.Plan.buffered
         else []
       in
       let reuse_groups =
         if staging then
           List.filter_map (reuse_group c plan env m) plan.Plan.buffered
         else []
       in
       let placement, edges =
         if staging && plan.Plan.buffered <> [] then
           let p, e = audit_edges c plan env m hierarchy ~double_buffer in
           (Some p, e)
         else (None, [])
       in
       let pred_in =
         if staging then
           sum_known
             (List.map (fun b -> predict_movement c plan env b `Read)
                plan.Plan.buffered)
         else Some 0.0
       in
       let pred_out =
         if staging then
           sum_known
             (List.map (fun b -> predict_movement c plan env b `Write)
                plan.Plan.buffered)
         else Some 0.0
       in
       let pred_shift =
         if staging then
           sum_known
             (List.map (predict_buffer_shift c plan env) plan.Plan.buffered)
         else Some 0.0
       in
       let access = predict_accesses ~staging c plan env in
       let totals = res.Exec.totals in
       let program, timing, unknowns =
         match access, pred_in, pred_out, pred_shift with
         | Some a, Some tin, Some tout, Some tsh ->
           (* each moved word is one global op and one scratchpad op;
              each shifted (relocated) word is two scratchpad ops *)
           let g_pred = a.p_g_ld +. a.p_g_st +. tin +. tout in
           let s_pred =
             a.p_s_ld +. a.p_s_st +. tin +. tout +. (2.0 *. tsh)
           in
           let program =
             [ quantity "flops" a.p_flops totals.Exec.flops;
               quantity "global_words" g_pred (Exec.total_global totals);
               quantity "smem_words" s_pred (Exec.total_smem totals) ]
           in
           let gpu = Hierarchy.to_gpu_exn hierarchy in
           let word_bytes = gpu.Config.word_bytes in
           let smem_bytes =
             match
               Timing.plan_smem_bytes ~double_buffer ~word_bytes plan env
             with
             | Some b when staging -> b
             | _ ->
               Timing.effective_smem_bytes ~double_buffer ~word_bytes
                 (Timing.default_params.Timing.smem_bytes_per_block
                  / word_bytes)
           in
           let params =
             { Timing.default_params with
               Timing.smem_bytes_per_block = smem_bytes;
               Timing.double_buffer }
           in
           let breakdown cs =
             Timing.gpu_launch_breakdown gpu params
               { Exec.grid = 1.0; per_block = cs; repeat = 1.0 }
           in
           let pc = Exec.fresh () in
           pc.Exec.flops <- a.p_flops;
           pc.Exec.g_ld <- a.p_g_ld +. tin;
           pc.Exec.g_st <- a.p_g_st +. tout;
           pc.Exec.s_ld <- a.p_s_ld +. tout +. tsh;
           pc.Exec.s_st <- a.p_s_st +. tin +. tsh;
           (* synchronization is placement-driven, not modelled here:
              audit the three resource terms on sync-free counters *)
           let pb = breakdown pc and mb = breakdown (zeroed_sync totals) in
           let timing =
             [ quantity "t_comp" pb.Timing.t_comp mb.Timing.t_comp;
               quantity "t_bw" pb.Timing.t_bw mb.Timing.t_bw;
               quantity "t_lat" pb.Timing.t_lat mb.Timing.t_lat ]
           in
           (program, timing, [])
         | _ ->
           ( [], [],
             [ "flops"; "global_words"; "smem_words"; "t_comp"; "t_bw";
               "t_lat" ] )
       in
       let notes =
         (if c.Pipeline.tiled <> None then
            [ "tiled: movement predictions assume full tiles; measured \
               scratchpad occupancy is cumulative across tiles, so \
               footprint_words is not audited" ]
          else [])
         @ (if c.Pipeline.options.Options.optimize_movement then
              [ "movement optimization on: predictions use the \
                 unoptimized copy sets (upper bounds)" ]
            else [])
         @ (if reuse_groups <> [] then
              [ "inter-tile reuse on: movement predictions use the \
                 chain-aware delta model; the reuse section compares \
                 measured movement against the full-per-block \
                 counterfactual" ]
            else [])
         @
         if staging then []
         else
           [ "stage_data off: no scratchpad at run time; per-buffer \
              movement not audited" ]
       in
       let all_q =
         program @ timing @ List.concat_map (fun g -> g.g_quantities) groups
       in
       let worst =
         List.fold_left (fun acc q ->
           match acc with
           | Some w when Float.abs w.q_rel_err >= Float.abs q.q_rel_err ->
             acc
           | _ -> Some q)
           None all_q
       in
       let any_unknown =
         unknowns <> [] || List.exists (fun g -> g.g_unknown <> []) groups
       in
       (* predictions are upper bounds: measured above predicted is a
          soundness violation of the model and fails; slack beyond the
          tolerance (loose boxes, e.g. diagonal access) only warns.
          Irredundant (delta) movement exceeding the redundant
          counterfactual is likewise unsound — delta mode must never
          move more than full mode would. *)
       let reuse_unsound =
         List.exists
           (fun rg ->
             rg.r_irredundant
             > rg.r_redundant +. (1e-6 *. Float.max 1.0 rg.r_redundant))
           reuse_groups
       in
       let verdict =
         if
           reuse_unsound
           || List.exists (fun q -> q.q_rel_err < -.tolerance) all_q
         then Fail
         else if
           any_unknown || List.exists (fun q -> q.q_rel_err > tolerance) all_q
         then Warn
         else Pass
       in
       Audited
         { a_source = c.Pipeline.source_name;
           a_tiled = c.Pipeline.tiled <> None;
           a_tolerance = tolerance;
           a_machine = Hierarchy.name hierarchy;
           a_groups = groups;
           a_reuse = reuse_groups;
           a_placement = placement;
           a_edges = edges;
           a_program = program;
           a_timing = timing;
           a_unknown = unknowns;
           a_notes = notes;
           a_worst = worst;
           a_verdict = verdict;
           a_metrics = m })

let auditable (c : Pipeline.compiled) = c.Pipeline.plan <> None

let audit_job ?cache ?tolerance ?double_buffer ?hierarchy ?param_env
    (job : Pipeline.job) =
  match Pipeline.compile ?cache job with
  | Error e -> Failed ("compile: " ^ Frontend.error_message e)
  | Ok c -> audit_compiled ?tolerance ?double_buffer ?hierarchy ?param_env c

let ok = function
  | Audited t -> t.a_verdict <> Fail
  | Skipped _ -> true
  | Failed _ -> false

let verdict_string = function
  | Pass -> "pass"
  | Warn -> "warn"
  | Fail -> "fail"

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let quantity_json q =
  J.Obj
    [ ("name", J.Str q.q_name);
      ("predicted", J.Float q.q_predicted);
      ("measured", J.Float q.q_measured);
      ("rel_err", J.Float q.q_rel_err) ]

let strs l = J.List (List.map (fun s -> J.Str s) l)

let group_json g =
  J.Obj
    [ ("buffer", J.Str g.g_buffer);
      ("array", J.Str g.g_array);
      ("quantities", J.List (List.map quantity_json g.g_quantities));
      ("unknown", strs g.g_unknown) ]

let reuse_group_json rg =
  J.Obj
    [ ("buffer", J.Str rg.r_buffer);
      ("redundant_words", J.Float rg.r_redundant);
      ("irredundant_words", J.Float rg.r_irredundant);
      ( "saved_fraction",
        J.Float
          ((rg.r_redundant -. rg.r_irredundant)
          /. Float.max 1.0 rg.r_redundant) ) ]

let edge_group_json e =
  J.Obj
    [ ("edge", J.Str e.e_edge);
      ("quantities", J.List (List.map quantity_json e.e_quantities));
      ("unknown", strs e.e_unknown) ]

let json t =
  J.Obj
    [ ("schema", J.Str "emsc-audit/1");
      ("source", J.Str t.a_source);
      ("tiled", J.Bool t.a_tiled);
      ("tolerance", J.Float t.a_tolerance);
      ("machine", J.Str t.a_machine);
      ("verdict", J.Str (verdict_string t.a_verdict));
      ( "worst",
        match t.a_worst with Some q -> quantity_json q | None -> J.Null );
      ("groups", J.List (List.map group_json t.a_groups));
      ("reuse", J.List (List.map reuse_group_json t.a_reuse));
      ( "placement",
        match t.a_placement with
        | Some p -> Placement.to_json p
        | None -> J.Null );
      ("edges", J.List (List.map edge_group_json t.a_edges));
      ("program", J.List (List.map quantity_json t.a_program));
      ("timing", J.List (List.map quantity_json t.a_timing));
      ("unknown", strs t.a_unknown);
      ("notes", strs t.a_notes);
      ("metrics", Metrics.snapshot_json t.a_metrics) ]

let outcome_json ~name = function
  | Audited t ->
    (match json t with
     | J.Obj fields -> J.Obj (("status", J.Str "audited") :: fields)
     | j -> j)
  | Skipped reason ->
    J.Obj
      [ ("status", J.Str "skipped"); ("source", J.Str name);
        ("reason", J.Str reason) ]
  | Failed reason ->
    J.Obj
      [ ("status", J.Str "failed"); ("source", J.Str name);
        ("reason", J.Str reason) ]

let pp_quantity fmt q =
  Format.fprintf fmt "%-18s predicted %14.6g  measured %14.6g  rel_err %+.3f"
    q.q_name q.q_predicted q.q_measured q.q_rel_err

let pp fmt t =
  Format.fprintf fmt "@[<v>%s (%s): %s (tolerance %.2f)@," t.a_source
    (if t.a_tiled then "tiled" else "untiled")
    (String.uppercase_ascii (verdict_string t.a_verdict))
    t.a_tolerance;
  List.iter (fun g ->
    Format.fprintf fmt "buffer %s <- %s@," g.g_buffer g.g_array;
    List.iter (fun q -> Format.fprintf fmt "  %a@," pp_quantity q)
      g.g_quantities;
    List.iter (fun u -> Format.fprintf fmt "  %-18s (not predicted)@," u)
      g.g_unknown)
    t.a_groups;
  List.iter (fun rg ->
    Format.fprintf fmt
      "reuse %-12s irredundant %14.6g  redundant %14.6g  saved %.1f%%@,"
      rg.r_buffer rg.r_irredundant rg.r_redundant
      (100.0
      *. (rg.r_redundant -. rg.r_irredundant)
      /. Float.max 1.0 rg.r_redundant))
    t.a_reuse;
  List.iter (fun e ->
    Format.fprintf fmt "edge %s (%s)@," e.e_edge t.a_machine;
    List.iter (fun q -> Format.fprintf fmt "  %a@," pp_quantity q)
      e.e_quantities;
    List.iter (fun u -> Format.fprintf fmt "  %-18s (not predicted)@," u)
      e.e_unknown)
    t.a_edges;
  if t.a_program <> [] then begin
    Format.fprintf fmt "program@,";
    List.iter (fun q -> Format.fprintf fmt "  %a@," pp_quantity q)
      t.a_program
  end;
  if t.a_timing <> [] then begin
    Format.fprintf fmt "timing (cycles/launch)@,";
    List.iter (fun q -> Format.fprintf fmt "  %a@," pp_quantity q) t.a_timing
  end;
  List.iter (fun u -> Format.fprintf fmt "not predicted: %s@," u) t.a_unknown;
  List.iter (fun n -> Format.fprintf fmt "note: %s@," n) t.a_notes;
  (match t.a_worst with
   | Some w ->
     Format.fprintf fmt "worst offender: %s (rel_err %+.3f)@," w.q_name
       w.q_rel_err
   | None -> ());
  Format.fprintf fmt "@]"

let pp_outcome ~name fmt = function
  | Audited t -> pp fmt t
  | Skipped reason -> Format.fprintf fmt "%s: skipped (%s)" name reason
  | Failed reason -> Format.fprintf fmt "%s: FAILED (%s)" name reason

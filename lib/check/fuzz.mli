(** The check harness behind [emsc check]: differential fuzzing of the
    whole pipeline plus static plan invariants.

    Every generated program (see {!Gen}) is compiled under several
    planner settings (per-array merging, movement optimization, both
    architectures, two delta values, and — when the program is
    dependence-free and single-statement — rectangular tiling), then
    validated by the {!Oracle} and by {!Invariants}.  A failing program
    is minimized with {!Shrink} before being reported.  The kernel
    suite ({!Emsc_kernels.Suite}) runs through the same two validators
    under its own per-kernel options. *)

type failure = {
  origin : string;  (** ["gen#i"] or the suite kernel name *)
  setting : string;
  reason : string;
  program : string;  (** minimized program, pretty-printed *)
}

type report = {
  generated : int;
  suite : int;
  checks : int;  (** (program, setting) pairs validated *)
  failures : failure list;
}

val run :
  ?backend:Emsc_driver.Runner.backend ->
  ?fuzz:int -> ?seed:int -> ?capacity_words:int ->
  ?hierarchy:Emsc_machine.Hierarchy.t -> ?inter_tile:bool ->
  ?progress:(string -> unit) ->
  unit -> report
(** Defaults: [backend = `Seq], [fuzz = 50], [seed = 1],
    [capacity_words = 4096] (the GTX 8800 scratchpad).  Program [i] is
    drawn from [Random.State.make [| seed; i |]], so any failure
    reproduces from its index alone.  [backend] is forwarded to the
    {!Oracle}: under [`Par jobs] every tiled check also requires
    race-freedom and counter totals bit-identical to sequential
    execution.  [hierarchy] additionally runs the per-level placement
    capacity invariant of every plan against the given machine.
    [inter_tile] adds a block-tiled setting with [inter_tile_reuse]
    on, so every dependence-free single-statement program also
    exercises delta movement, residency chains and the reuse-partition
    invariant. *)

val report_json : report -> Emsc_obs.Json.t
val pp_report : Format.formatter -> report -> unit

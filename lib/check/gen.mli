(** Seeded random affine programs for the differential oracle.

    A generated program is described by a small shrinkable [spec]; the
    spec materializes deterministically into a {!Emsc_ir.Prog.t}, so a
    failing spec can be minimized (see {!Shrink}) and re-materialized
    without re-running the random draw.

    The generated space covers what the Section 3 framework accepts:
    1-3 statements of depth 1-2 with constant (or, for a quarter of the
    programs, parametric [n-1]) rectangular bounds, each statement with
    one affine write and up to three affine reads over a shared pool of
    1-2 dimensional arrays.  Subscripts mix shifts, coefficient-2
    scalings and reversals, so data spaces overlap, nest and interleave
    between statements. *)

open Emsc_arith
open Emsc_ir

type access_spec = {
  arr : string;
  kind : Prog.access_kind;
  rows : int array array;
      (** one row per array dimension: iterator coefficients (width =
          statement depth) then the constant.  Parameters never appear
          in subscripts; a dimension bounded by [n-1] keeps its
          subscript coefficients in [{0,1}] so extents stay affine. *)
}

type stmt_spec = {
  depth : int;
  lo : int array;
  hi : int array;  (** inclusive; ignored where [param_ub] holds *)
  param_ub : bool array;  (** upper bound is [n-1] instead of [hi] *)
  write : access_spec;
  reads : access_spec list;
}

type t = {
  uses_param : bool;  (** program parameter ["n"] exists *)
  n_value : int;  (** runtime value of ["n"] for the oracle *)
  ranks : (string * int) list;  (** array name -> rank, fixed up front *)
  stmts : stmt_spec list;
}

val generate : Random.State.t -> t
(** Draw a spec.  All randomness comes from the given state, so a seed
    reproduces the program exactly. *)

val materialize : t -> Prog.t
(** Deterministic spec-to-IR elaboration: subscripts are shifted so
    every access lands at non-negative indices and array extents are
    derived from the maximal subscript values. *)

val param_env : t -> string -> Zint.t
(** Binds ["n"] to [n_value]; fails on other names. *)

val to_string : t -> string
(** The materialized program, pretty-printed (for failure reports). *)

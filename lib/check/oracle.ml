open Emsc_arith
open Emsc_ir
open Emsc_core
open Emsc_codegen
open Emsc_machine
open Emsc_driver

(* first differing element of one array across two memories *)
let first_diff m_got m_ref name =
  let got = Memory.global_data m_got name
  and want = Memory.global_data m_ref name in
  if Array.length got <> Array.length want then
    Some (Printf.sprintf "%s: size %d vs %d" name (Array.length got)
            (Array.length want))
  else begin
    let n = Array.length got in
    let rec go i =
      if i >= n then None
      else if got.(i) <> want.(i) then
        Some
          (Printf.sprintf "%s[flat %d] = %.17g, reference %.17g" name i
             got.(i) want.(i))
      else go (i + 1)
    in
    go 0
  end

let compare_memories (p : Prog.t) m_got m_ref =
  let rec go = function
    | [] -> Ok ()
    | (d : Prog.array_decl) :: rest ->
      if Memory.arrays_equal ~eps:0.0 m_got m_ref d.Prog.array_name then
        go rest
      else
        Error
          (match first_diff m_got m_ref d.Prog.array_name with
           | Some msg -> msg
           | None -> d.Prog.array_name ^ ": contents differ")
  in
  go p.Prog.arrays

(* replay one statement instance with its iterators bound as (trivial)
   loop variables, so rewritten accesses — whose buffer indices are
   expressions over the iterator names — evaluate correctly *)
let instance_call ((s : Prog.stmt), iters) =
  let call =
    Ast.Stmt_call
      { stmt_id = s.Prog.id;
        iter_args = Array.map (fun nm -> Ast.Var nm) s.Prog.iter_names }
  in
  let rec wrap d body =
    if d < 0 then body
    else
      wrap (d - 1)
        [ Ast.Loop
            { Ast.var = s.Prog.iter_names.(d);
              lb = Ast.Const iters.(d);
              ub = Ast.Const iters.(d);
              step = Zint.one;
              par = Ast.Seq;
              body } ]
  in
  wrap (s.Prog.depth - 1) [ call ]

let staged_untiled ~param_env (plan : Plan.t) (prog : Prog.t) =
  let calls =
    List.concat_map instance_call (Reference.instances prog ~param_env)
  in
  let harness = Plan.all_move_in plan @ calls @ Plan.all_move_out plan in
  let locals =
    List.map (fun (b : Plan.buffered) -> b.Plan.buffer.Alloc.local_name)
      plan.Plan.buffered
  in
  let local_ref =
    if plan.Plan.buffered <> [] then Some (Plan.local_ref plan) else None
  in
  let m_got, _ =
    Runner.execute ~prog ?local_ref ~locals ~mode:Exec.Full
      ~memory:Runner.Pseudorandom ~param_env harness
  in
  m_got

let totals_str (r : Exec.result) =
  Emsc_obs.Json.to_string (Exec.counters_json r.Exec.totals)

(* tiled compilation under the requested backend; [`Par] additionally
   requires the reduced counter totals to be bit-identical to a
   sequential [Full] replay (the write-ownership tracker is armed, so a
   cross-block race fails the run rather than silently matching) *)
let run_tiled ~backend ~param_env (c : Pipeline.compiled) =
  match backend with
  | `Seq ->
    let m, _ =
      Runner.simulate ~mode:Exec.Full ~memory:Runner.Pseudorandom
        ~param_env c
    in
    Ok m
  | `Par _ as b ->
    let m_par, r_par =
      Runner.simulate ~memory:Runner.Pseudorandom ~param_env ~backend:b
        ~track_ownership:true c
    in
    let _m_seq, r_seq =
      Runner.simulate ~mode:Exec.Full ~memory:Runner.Pseudorandom
        ~param_env c
    in
    let jp = totals_str r_par and js = totals_str r_seq in
    if jp <> js then
      Error
        (Printf.sprintf "parallel totals diverge from sequential: %s vs %s"
           jp js)
    else Ok m_par

let check_compiled ?(backend = `Seq) ~param_env (c : Pipeline.compiled) =
  match c.Pipeline.plan with
  | None -> Error "pipeline produced no plan"
  | Some plan ->
    (try
       let m_got =
         match c.Pipeline.tiled with
         | Some _ -> run_tiled ~backend ~param_env c
         | None -> Ok (staged_untiled ~param_env plan c.Pipeline.prog)
       in
       match m_got with
       | Error _ as e -> e
       | Ok m_got ->
         let m_ref, _ =
           Runner.reference ~memory:Runner.Pseudorandom ~param_env
             c.Pipeline.prog
         in
         compare_memories c.Pipeline.prog m_got m_ref
     with
     | Failure m -> Error ("execution failed: " ^ m)
     | Invalid_argument m -> Error ("execution failed: " ^ m)
     | Not_found -> Error "execution failed: unbound variable"
     | Emsc_runtime.Runtime.Ownership_violation m ->
       Error ("ownership: " ^ m)
     | Emsc_runtime.Runtime.Runtime_error m -> Error ("runtime: " ^ m))

(* candidate order matters: structural deletions first (they shrink the
   search space the most), then bound and coefficient reductions *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let map_nth l n f = List.mapi (fun i x -> if i = n then f x else x) l

let drop_statements (t : Gen.t) =
  if List.length t.Gen.stmts <= 1 then []
  else
    List.init (List.length t.Gen.stmts) (fun i ->
      { t with Gen.stmts = drop_nth t.Gen.stmts i })

let drop_reads (t : Gen.t) =
  List.concat
    (List.mapi
       (fun si (s : Gen.stmt_spec) ->
         List.init (List.length s.Gen.reads) (fun ri ->
           { t with
             Gen.stmts =
               map_nth t.Gen.stmts si (fun s ->
                 { s with Gen.reads = drop_nth s.Gen.reads ri }) }))
       t.Gen.stmts)

let shrink_bounds (t : Gen.t) =
  List.concat
    (List.mapi
       (fun si (s : Gen.stmt_spec) ->
         List.concat
           (List.init s.Gen.depth (fun d ->
              let lo = s.Gen.lo.(d) and hi = s.Gen.hi.(d) in
              if hi - lo < 2 then []
              else begin
                (* halve the extent, keeping it non-empty *)
                let hi' = lo + ((hi - lo) / 2) in
                [ { t with
                    Gen.stmts =
                      map_nth t.Gen.stmts si (fun s ->
                        let hi2 = Array.copy s.Gen.hi in
                        hi2.(d) <- hi';
                        { s with Gen.hi = hi2 }) } ]
              end)))
       t.Gen.stmts)

let clear_param_ubs (t : Gen.t) =
  List.concat
    (List.mapi
       (fun si (s : Gen.stmt_spec) ->
         List.concat
           (List.init s.Gen.depth (fun d ->
              if not s.Gen.param_ub.(d) then []
              else
                [ { t with
                    Gen.stmts =
                      map_nth t.Gen.stmts si (fun s ->
                        let pu = Array.copy s.Gen.param_ub in
                        pu.(d) <- false;
                        { s with Gen.param_ub = pu }) } ])))
       t.Gen.stmts)

let drop_param (t : Gen.t) =
  let uses_ub =
    List.exists (fun (s : Gen.stmt_spec) -> Array.exists Fun.id s.Gen.param_ub)
      t.Gen.stmts
  in
  if t.Gen.uses_param && not uses_ub then [ { t with Gen.uses_param = false } ]
  else []

let shrink_n (t : Gen.t) =
  if t.Gen.uses_param && t.Gen.n_value > 4 then
    [ { t with Gen.n_value = t.Gen.n_value - 1 } ]
  else []

let shrink_access (a : Gen.access_spec) =
  let rows = a.Gen.rows in
  List.concat
    (List.init (Array.length rows) (fun r ->
       List.concat
         (List.init (Array.length rows.(r)) (fun c ->
            if rows.(r).(c) = 0 then []
            else
              [ { a with
                  Gen.rows =
                    Array.mapi (fun i row ->
                      if i <> r then row
                      else
                        Array.mapi (fun j v -> if j = c then 0 else v) row)
                      rows } ]))))

let shrink_coefficients (t : Gen.t) =
  List.concat
    (List.mapi
       (fun si (s : Gen.stmt_spec) ->
         let with_write =
           List.map (fun w ->
             { t with
               Gen.stmts =
                 map_nth t.Gen.stmts si (fun s -> { s with Gen.write = w }) })
             (shrink_access s.Gen.write)
         in
         let with_read =
           List.concat
             (List.mapi
                (fun ri r ->
                  List.map (fun r' ->
                    { t with
                      Gen.stmts =
                        map_nth t.Gen.stmts si (fun s ->
                          { s with Gen.reads = map_nth s.Gen.reads ri (fun _ -> r') }) })
                    (shrink_access r))
                s.Gen.reads)
         in
         with_write @ with_read)
       t.Gen.stmts)

let candidates t =
  drop_statements t @ drop_reads t @ clear_param_ubs t @ drop_param t
  @ shrink_n t @ shrink_bounds t @ shrink_coefficients t

let minimize ?(max_steps = 200) ~still_fails spec =
  let rec go steps spec =
    if steps <= 0 then spec
    else
      match List.find_opt still_fails (candidates spec) with
      | Some smaller -> go (steps - 1) smaller
      | None -> spec
  in
  go max_steps spec

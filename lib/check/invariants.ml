open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir
open Emsc_codegen
open Emsc_core
open Emsc_machine

type violation = {
  buffer : string;
  invariant : string;
  detail : string;
}

let pp_violation fmt v =
  Format.fprintf fmt "%s: %s: %s" v.buffer v.invariant v.detail

exception Movement_stmt_call

(* concrete interpretation of a movement block: the list of executed
   copies as ((dst array, dst indices), (src array, src indices)) *)
let collect_copies ~env stms =
  let overlay : (string, Zint.t) Hashtbl.t = Hashtbl.create 16 in
  let lookup n =
    match Hashtbl.find_opt overlay n with Some v -> v | None -> env n
  in
  let eval_ref (r : Ast.ref_expr) =
    ( r.Ast.array,
      Array.map (fun e -> Zint.to_int_exn (Ast.eval lookup e)) r.Ast.indices )
  in
  let copies = ref [] in
  let rec go = function
    | Ast.Loop l ->
      let lb = Ast.eval lookup l.Ast.lb and ub = Ast.eval lookup l.Ast.ub in
      let saved = Hashtbl.find_opt overlay l.Ast.var in
      let v = ref lb in
      while Zint.compare !v ub <= 0 do
        Hashtbl.replace overlay l.Ast.var !v;
        List.iter go l.Ast.body;
        v := Zint.add !v l.Ast.step
      done;
      (match saved with
       | Some v -> Hashtbl.replace overlay l.Ast.var v
       | None -> Hashtbl.remove overlay l.Ast.var)
    | Ast.Guard (conds, body) ->
      if
        List.for_all (fun c -> not (Zint.is_negative (Ast.eval lookup c)))
          conds
      then List.iter go body
    | Ast.Copy { dst; src } -> copies := (eval_ref dst, eval_ref src) :: !copies
    | Ast.Sync | Ast.Fence | Ast.Comment _ -> ()
    | Ast.Stmt_call _ -> raise Movement_stmt_call
  in
  List.iter go stms;
  List.rev !copies

(* data spaces live in (params ++ array dims); fix the leading
   parameter dimensions under the valuation *)
let instantiate_union prog ~env us =
  let np = Prog.nparams prog in
  let values = Array.map env prog.Prog.params in
  let fix_piece p =
    let p = ref p in
    for k = 0 to np - 1 do
      (* parameters are the leading dims; each fix shifts the rest down,
         so the next parameter is again dimension 0 *)
      p := Poly.fix_dim !p 0 values.(k)
    done;
    !p
  in
  Uset.of_pieces ~dim:(Uset.dim us - np) (List.map fix_piece (Uset.pieces us))

let point_of idx = Vec.of_ints (Array.to_list idx)

let idx_str idx =
  "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int idx)) ^ "]"

(* concrete global index of an access at one statement instance *)
let global_index ~np ~env prog (s : Prog.stmt) (a : Prog.access) iters =
  Array.map (fun row ->
    let acc = ref row.(s.Prog.depth + np) in
    Array.iteri (fun i v -> acc := Zint.add !acc (Zint.mul row.(i) v)) iters;
    for k = 0 to np - 1 do
      acc := Zint.add !acc (Zint.mul row.(s.Prog.depth + k)
                              (env prog.Prog.params.(k)))
    done;
    Zint.to_int_exn !acc)
    a.Prog.map

let check ?capacity_words ?hierarchy ?(double_buffer = false)
    ?(live_out = fun _ -> true) ?(optimized_movement = false) ~env
    (plan : Plan.t) =
  let prog = plan.Plan.prog in
  let np = Prog.nparams prog in
  let violations = ref [] in
  let report ~buffer ~invariant detail =
    violations := { buffer; invariant; detail } :: !violations
  in
  let sizes_of buffer =
    match
      Array.map (fun e -> Zint.to_int_exn (Ast.eval env e))
        (Alloc.size_exprs buffer)
    with
    | s -> Some s
    | exception _ -> None
  in
  let buffer_sizes =
    List.filter_map (fun (b : Plan.buffered) ->
      match sizes_of b.Plan.buffer with
      | Some s -> Some (b.Plan.buffer.Alloc.local_name, s)
      | None ->
        report ~buffer:b.Plan.buffer.Alloc.local_name ~invariant:"sizes"
          "buffer sizes did not evaluate to integers";
        None)
      plan.Plan.buffered
  in
  let in_bounds idx sizes =
    Array.length idx = Array.length sizes
    && Array.for_all2 (fun i n -> i >= 0 && i < n) idx sizes
  in
  (* one walk over the dynamic instances: check every rewritten access
     stays inside its buffer, and record which global elements each
     buffer actually receives via rewritten writes (for the move-out
     safety check below) *)
  let written : (string, (int list, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let written_tbl local =
    match Hashtbl.find_opt written local with
    | Some t -> t
    | None ->
      let t = Hashtbl.create 64 in
      Hashtbl.replace written local t;
      t
  in
  (match Reference.instances prog ~param_env:env with
   | exception _ ->
     report ~buffer:"<plan>" ~invariant:"instances"
       "could not enumerate statement instances"
   | insts ->
     List.iter (fun ((s : Prog.stmt), iters) ->
       let lookup n =
         let rec find i =
           if i >= s.Prog.depth then env n
           else if s.Prog.iter_names.(i) = n then iters.(i)
           else find (i + 1)
         in
         find 0
       in
       List.iter (fun (a : Prog.access) ->
         match Plan.local_ref plan s a with
         | None -> ()
         | Some r ->
           (match
              Array.map (fun e -> Zint.to_int_exn (Ast.eval lookup e))
                r.Ast.indices
            with
            | exception _ ->
              report ~buffer:r.Ast.array ~invariant:"rewrite-bounds"
                (Printf.sprintf "%s: rewritten index failed to evaluate"
                   s.Prog.name)
            | idx ->
              (match List.assoc_opt r.Ast.array buffer_sizes with
               | None ->
                 report ~buffer:r.Ast.array ~invariant:"rewrite-bounds"
                   "rewritten access targets an unknown buffer"
               | Some sizes ->
                 if not (in_bounds idx sizes) then
                   report ~buffer:r.Ast.array ~invariant:"rewrite-bounds"
                     (Printf.sprintf
                        "%s at %s maps %s%s outside buffer size %s"
                        s.Prog.name
                        (idx_str (Array.map Zint.to_int_exn iters))
                        a.Prog.array
                        (idx_str (global_index ~np ~env prog s a iters))
                        (idx_str sizes));
                 if a.Prog.kind = Prog.Write then
                   Hashtbl.replace (written_tbl r.Ast.array)
                     (Array.to_list
                        (global_index ~np ~env prog s a iters))
                     ())))
         (Prog.accesses s))
       insts);
  let check_buffer (b : Plan.buffered) =
    let buf = b.Plan.buffer in
    let name = buf.Alloc.local_name in
    let report ~invariant detail = report ~buffer:name ~invariant detail in
    match
      (collect_copies ~env b.Plan.move_in, collect_copies ~env b.Plan.move_out)
    with
    | exception Movement_stmt_call ->
      report ~invariant:"movement-shape" "movement code contains a Stmt_call"
    | exception e ->
      report ~invariant:"movement-eval"
        ("movement code failed to evaluate: " ^ Printexc.to_string e)
    | move_in, move_out ->
      let sizes = List.assoc_opt name buffer_sizes in
      (* a movement copy pairs the buffer with its global array; returns
         the global-side index *)
      let split ~dir ((dst_a, dst_i), (src_a, src_i)) =
        let global, local, ok =
          match dir with
          | `In -> (src_i, dst_i, dst_a = name && src_a = buf.Alloc.array)
          | `Out -> (dst_i, src_i, src_a = name && dst_a = buf.Alloc.array)
        in
        if not ok then
          report ~invariant:"movement-shape"
            (Printf.sprintf "copy between %s and %s (expected %s and %s)"
               dst_a src_a name buf.Alloc.array);
        (match sizes with
         | Some sizes when not (in_bounds local sizes) ->
           report ~invariant:"local-bounds"
             (Printf.sprintf "local index %s outside size %s" (idx_str local)
                (idx_str sizes))
         | _ -> ());
        global
      in
      let distinct ~what globals =
        let seen = Hashtbl.create 64 in
        List.iter (fun g ->
          let key = Array.to_list g in
          if Hashtbl.mem seen key then
            report ~invariant:"single-transfer"
              (Printf.sprintf "%s touches global %s%s twice" what
                 buf.Alloc.array (idx_str g))
          else Hashtbl.add seen key ())
          globals;
        seen
      in
      let reads = instantiate_union prog ~env
          (Dataspaces.reads_union prog buf.Alloc.partition)
      and writes = instantiate_union prog ~env
          (Dataspaces.writes_union prog buf.Alloc.partition)
      in
      (* inter-tile reuse: the delta/resident split must partition the
         per-block footprint exactly — every integer point, symbolic in
         the tile origins — and the delta move-out must stay inside the
         write footprint.  At the valuation (origins at their lower
         bound: a chain's FIRST block) move-in takes the full path but
         move-out takes the delta path whenever the chain has more than
         one block, so the move-out cover check below compares against
         the delta set instead of the whole write space. *)
      let reuse_out =
        match b.Plan.reuse with
        | None -> None
        | Some r ->
          if
            not
              (Uset.equal_set
                 (Uset.union r.Plan.r_delta_in r.Plan.r_resident)
                 r.Plan.r_full_in)
          then
            report ~invariant:"reuse-partition"
              "delta move-in U resident differs from the full per-block \
               footprint";
          if
            not
              (Uset.equal_set
                 (Uset.union r.Plan.r_delta_out r.Plan.r_full_out)
                 r.Plan.r_full_out)
          then
            report ~invariant:"reuse-partition"
              "delta move-out leaves the write footprint";
          if r.Plan.r_lb <> r.Plan.r_last then
            Some (instantiate_union prog ~env r.Plan.r_delta_out)
          else None
      in
      let in_globals = List.map (split ~dir:`In) move_in in
      let in_set = distinct ~what:"move-in" in_globals in
      (* move-in never exceeds the partition's data spaces *)
      let footprint = Uset.union reads writes in
      List.iter (fun g ->
        if not (Uset.contains_point footprint (point_of g)) then
          report ~invariant:"movement-subset"
            (Printf.sprintf "move-in copies %s%s outside the partition's \
                             data spaces"
               buf.Alloc.array (idx_str g)))
        in_globals;
      (* every read element is staged (optimized movement may satisfy
         some reads from local writes instead) *)
      if not optimized_movement then begin
        let staged_reads =
          List.length
            (List.filter (fun g -> Uset.contains_point reads (point_of g))
               in_globals)
        in
        match Count.count_uset reads with
        | Count.Exact n ->
          let expected = Zint.to_int_exn n in
          if staged_reads <> expected then
            report ~invariant:"movement-cover"
              (Printf.sprintf
                 "move-in stages %d of the %d read elements" staged_reads
                 expected)
        | Count.More_than _ | Count.Unbounded -> ()
      end;
      let out_globals = List.map (split ~dir:`Out) move_out in
      ignore (distinct ~what:"move-out" out_globals);
      List.iter (fun g ->
        if not (Uset.contains_point writes (point_of g)) then
          report ~invariant:"movement-subset"
            (Printf.sprintf "move-out writes %s%s outside the write data \
                             spaces"
               buf.Alloc.array (idx_str g)))
        out_globals;
      if live_out buf.Alloc.array then begin
        if not optimized_movement then begin
          let expected_set, what =
            match reuse_out with
            | Some delta -> (delta, "delta move-out set")
            | None -> (writes, "write data space")
          in
          match Count.count_uset expected_set with
          | Count.Exact n ->
            let expected = Zint.to_int_exn n in
            if List.length out_globals <> expected then
              report ~invariant:"movement-cover"
                (Printf.sprintf "move-out writes %d elements, %s has %d"
                   (List.length out_globals) what expected)
          | Count.More_than _ | Count.Unbounded -> ()
        end
      end
      else if move_out <> [] then
        report ~invariant:"live-out"
          (Printf.sprintf "array %s is not live-out but move-out copies %d \
                           element(s)"
             buf.Alloc.array (List.length move_out));
      (* write-back safety: an element copied out must hold a defined
         value — staged on the way in, or produced by a rewritten
         write.  This is the invariant stride-y writes used to break. *)
      let written_here = Hashtbl.find_opt written name in
      List.iter (fun g ->
        let key = Array.to_list g in
        let defined =
          Hashtbl.mem in_set key
          || (match written_here with
              | Some t -> Hashtbl.mem t key
              | None -> false)
        in
        if not defined then
          report ~invariant:"writeback-defined"
            (Printf.sprintf "move-out writes %s%s, which was neither staged \
                             in nor written by any instance"
               buf.Alloc.array (idx_str g)))
        out_globals
  in
  List.iter check_buffer plan.Plan.buffered;
  (match capacity_words with
   | None -> ()
   | Some cap ->
     (match Zint.to_int_exn (Plan.total_footprint plan env) with
      | fp ->
        (* the effective footprint doubles under double buffering —
           two windows of every staged buffer stay resident *)
        let eff =
          Emsc_machine.Timing.effective_smem_words ~double_buffer fp
        in
        if eff > cap then
          report ~buffer:"<plan>" ~invariant:"capacity"
            (Printf.sprintf
               "effective footprint %d words (%d%s) exceeds scratchpad %d"
               eff fp
               (if double_buffer then " double-buffered" else "")
               cap)
      | exception _ ->
        report ~buffer:"<plan>" ~invariant:"capacity"
          "footprint did not evaluate to an integer"));
  (match hierarchy with
   | None -> ()
   | Some h ->
     (* per-level capacity: place the plan's buffers over the explicit
        levels and compare each level's effective usage against its
        capacity; on a 2-level machine this is the single-scratchpad
        rule again, level by level elsewhere *)
     let staged = List.length plan.Plan.buffered in
     let pl = Placement.of_plan ~double_buffer h plan env in
     if List.length pl.Placement.pl_placed < staged then
       report ~buffer:"<plan>" ~invariant:"capacity"
         "some buffer footprint did not evaluate to an integer"
     else
       List.iter
         (fun v -> report ~buffer:"<plan>" ~invariant:"capacity" v)
         pl.Placement.pl_violations);
  List.rev !violations

(** Greedy minimizer for failing generated programs.

    A shrink candidate is a strictly simpler {!Gen.t} (fewer
    statements, fewer reads, smaller bounds, smaller coefficients, no
    parameter).  [minimize] repeatedly replaces the spec by its first
    candidate that still fails, so the failure reported to the user is
    near-minimal while remaining deterministic. *)

val candidates : Gen.t -> Gen.t list
(** Strictly simpler variants, most aggressive first. *)

val minimize : ?max_steps:int -> still_fails:(Gen.t -> bool) -> Gen.t -> Gen.t
(** [minimize ~still_fails spec] assumes [still_fails spec = true] and
    returns a spec on which it still holds. *)

(** Differential oracle: transformed execution versus the reference
    interpreter, bit-for-bit.

    Equality (not approximate closeness) is the right notion here: a
    correct plan only re-routes loads and stores through scratchpad
    buffers and never re-associates arithmetic, so every float produced
    must be identical to the reference run.  Both executions start from
    the same pseudorandom memory image ({!Emsc_driver.Runner}'s
    deterministic initializer).

    Two harnesses:
    - compilations with a generated kernel ([tiled <> None]) run the
      tiled AST through the machine simulator in [Full] mode;
    - untiled compilations replay the reference instance stream (exact
      schedule order) with accesses rewritten into the plan's buffers,
      bracketed by the plan's move-in and move-out code — this
      validates allocation, access rewriting and movement in
      isolation from the (separately tested) tiling transformation. *)

open Emsc_arith
open Emsc_driver

val check_compiled :
  ?backend:Runner.backend ->
  param_env:(string -> Zint.t) ->
  Pipeline.compiled ->
  (unit, string) result
(** [Error reason] on the first mismatching array element, on a missing
    plan, or on an execution failure (the reason says which).

    [backend] (default [`Seq]) selects how the tiled harness executes.
    Under [`Par jobs] the kernel runs block-parallel with the
    write-ownership tracker armed, and two extra conditions are
    enforced on top of array equality with the reference: no
    cross-block ownership violation, and reduced counter totals
    bit-identical to a sequential [Full] replay.  Untiled compilations
    ignore [backend] (their harness has no block structure). *)

(** Differential oracle: transformed execution versus the reference
    interpreter, bit-for-bit.

    Equality (not approximate closeness) is the right notion here: a
    correct plan only re-routes loads and stores through scratchpad
    buffers and never re-associates arithmetic, so every float produced
    must be identical to the reference run.  Both executions start from
    the same pseudorandom memory image ({!Emsc_driver.Runner}'s
    deterministic initializer).

    Two harnesses:
    - compilations with a generated kernel ([tiled <> None]) run the
      tiled AST through the machine simulator in [Full] mode;
    - untiled compilations replay the reference instance stream (exact
      schedule order) with accesses rewritten into the plan's buffers,
      bracketed by the plan's move-in and move-out code — this
      validates allocation, access rewriting and movement in
      isolation from the (separately tested) tiling transformation. *)

open Emsc_arith
open Emsc_driver

val check_compiled :
  param_env:(string -> Zint.t) -> Pipeline.compiled -> (unit, string) result
(** [Error reason] on the first mismatching array element, on a missing
    plan, or on an execution failure (the reason says which). *)

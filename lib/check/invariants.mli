(** Static invariants of a finished {!Emsc_core.Plan.t}, checked by
    abstract interpretation of the movement code under a concrete
    parameter valuation:

    - single transfer: the move-in (resp. move-out) scans of a buffer
      touch each global element at most once, even when the member data
      spaces overlap — the paper's disjoint-scan guarantee;
    - movement matches the data spaces: move-in copies exactly the
      instantiated read union (at most, under optimized movement), and
      move-out writes exactly the instantiated write union of live-out
      arrays and nothing when an array is not live-out;
    - bounds: every copy's local index and every rewritten access
      [F'(y) - g] stays inside the buffer's [0, size) box;
    - write-back safety: every element the move-out scan copies to
      global memory holds a defined value — it was either staged by the
      move-in scan or produced by some rewritten write instance (this is
      the invariant that catches rational-image "lattice holes" of
      strided writes being copied out of uninitialized buffer cells);
    - capacity: the summed buffer footprint fits the scratchpad.

    The valuation [env] must bind every parameter of the plan's program
    (for a tiled plan: the tile origins, which should be taken inside
    the tile-origin context — e.g. each dimension's lower bound). *)

open Emsc_arith
open Emsc_core

type violation = {
  buffer : string;  (** local buffer name, or ["<plan>"] for capacity *)
  invariant : string;  (** short machine-usable tag *)
  detail : string;
}

val check :
  ?capacity_words:int ->
  ?hierarchy:Emsc_machine.Hierarchy.t ->
  ?double_buffer:bool ->
  ?live_out:(string -> bool) ->
  ?optimized_movement:bool ->
  env:(string -> Zint.t) ->
  Plan.t ->
  violation list
(** Empty list = all invariants hold.  [optimized_movement] relaxes the
    exact-cover checks to containment (the Section 3.1.4 optimization
    legitimately copies less).  [double_buffer] makes the capacity
    check use the effective footprint
    ({!Emsc_machine.Hierarchy.effective_words}): a plan that fits
    single-buffered may not fit once staging double-buffers.
    [hierarchy] generalizes the capacity invariant to per-level checks:
    buffers are placed by {!Emsc_machine.Placement.of_plan} and each
    explicit level's effective usage is compared against its capacity
    (on a 2-level machine this coincides with [capacity_words] over the
    staging level, which remains the legacy single-scratchpad path). *)

val pp_violation : Format.formatter -> violation -> unit

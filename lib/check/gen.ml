open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir

type access_spec = {
  arr : string;
  kind : Prog.access_kind;
  rows : int array array;
}

type stmt_spec = {
  depth : int;
  lo : int array;
  hi : int array;
  param_ub : bool array;
  write : access_spec;
  reads : access_spec list;
}

type t = {
  uses_param : bool;
  n_value : int;
  ranks : (string * int) list;
  stmts : stmt_spec list;
}

(* ---- generation ------------------------------------------------------- *)

let array_names = [| "A"; "B"; "C" |]
let iter_names_pool = [| "i"; "j" |]

let pick rng a = a.(Random.State.int rng (Array.length a))

(* dimensions bounded by [n-1] only take coefficients in {0,1}: the
   subscript minimum then does not depend on n, so the non-negativity
   shift stays a constant and extents stay affine in n *)
let coef_const = [| 0; 1; 1; 1; -1; 2 |]
let coef_param = [| 0; 1; 1 |]

let gen_access rng (ranks : (string * int) list) ~depth ~param_ub kind =
  let arr, rank = List.nth ranks (Random.State.int rng (List.length ranks)) in
  let rows =
    Array.init rank (fun _ ->
      let row = Array.make (depth + 1) 0 in
      for d = 0 to depth - 1 do
        row.(d) <-
          pick rng (if param_ub.(d) then coef_param else coef_const)
      done;
      row.(depth) <- Random.State.int rng 3;
      row)
  in
  { arr; kind; rows }

let gen_stmt rng ~uses_param ranks =
  let depth = 1 + Random.State.int rng 2 in
  let lo = Array.init depth (fun _ -> Random.State.int rng 3) in
  let hi = Array.map (fun l -> l + 1 + Random.State.int rng 6) lo in
  let param_ub =
    Array.init depth (fun _ -> uses_param && Random.State.bool rng)
  in
  let write = gen_access rng ranks ~depth ~param_ub Prog.Write in
  let nreads = Random.State.int rng 4 in
  let reads =
    List.init nreads (fun _ -> gen_access rng ranks ~depth ~param_ub Prog.Read)
  in
  { depth; lo; hi; param_ub; write; reads }

let generate rng =
  let uses_param = Random.State.int rng 4 = 0 in
  let n_value = 4 + Random.State.int rng 5 in
  let narrays = 2 + Random.State.int rng 2 in
  let ranks =
    List.init narrays (fun k ->
      (array_names.(k), 1 + Random.State.int rng 2))
  in
  let nstmts = 1 + Random.State.int rng 3 in
  let stmts = List.init nstmts (fun _ -> gen_stmt rng ~uses_param ranks) in
  { uses_param; n_value; ranks; stmts }

(* ---- materialization -------------------------------------------------- *)

let param_env t name =
  if t.uses_param && name = "n" then Zint.of_int t.n_value
  else failwith ("Gen.param_env: unbound parameter " ^ name)

(* per subscript row: the constant shift making its minimum 0, and its
   affine maximum (p*n + c form) after that shift *)
let row_shift_and_max (s : stmt_spec) (row : int array) =
  let minv = ref row.(s.depth) and maxc = ref row.(s.depth) and maxp = ref 0 in
  for d = 0 to s.depth - 1 do
    let c = row.(d) in
    if s.param_ub.(d) then begin
      (* c is in {0,1}: minimum at lo, maximum at n-1 *)
      minv := !minv + (c * s.lo.(d));
      maxp := !maxp + c;
      maxc := !maxc - c
    end
    else begin
      let a = c * s.lo.(d) and b = c * s.hi.(d) in
      minv := !minv + min a b;
      maxc := !maxc + max a b
    end
  done;
  let shift = if !minv < 0 then - !minv else 0 in
  (shift, (!maxp, !maxc + shift))

let materialize t =
  let np = if t.uses_param then 1 else 0 in
  let params = if t.uses_param then [| "n" |] else [||] in
  (* (array, dim) -> affine extent candidates as (n coeff, const) *)
  let extent_max : (string * int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let note_extent arr k (p, c) =
    (* extent must cover index max + 1; among affine candidates keep
       the one largest at the actual runtime value of n *)
    let cand = (p, c + 1) in
    let at_n (p, c) = (p * t.n_value) + c in
    match Hashtbl.find_opt extent_max (arr, k) with
    | Some cur when at_n cur >= at_n cand -> ()
    | _ -> Hashtbl.replace extent_max (arr, k) cand
  in
  let mk_access (s : stmt_spec) (a : access_spec) =
    let rows =
      Array.to_list a.rows
      |> List.mapi (fun k row ->
           let shift, mx = row_shift_and_max s row in
           note_extent a.arr k mx;
           List.init (s.depth + np + 1) (fun j ->
             if j < s.depth then row.(j)
             else if j < s.depth + np then 0
             else row.(s.depth) + shift))
    in
    Prog.mk_access ~array:a.arr ~kind:a.kind ~rows
  in
  let mk_stmt idx (s : stmt_spec) =
    let dim = s.depth + np in
    let ineqs =
      List.concat
        (List.init s.depth (fun d ->
           let ge = Vec.make (dim + 1) in
           ge.(d) <- Zint.one;
           ge.(dim) <- Zint.of_int (- s.lo.(d));
           let le = Vec.make (dim + 1) in
           le.(d) <- Zint.minus_one;
           if s.param_ub.(d) then begin
             le.(s.depth) <- Zint.one;
             le.(dim) <- Zint.minus_one
           end
           else le.(dim) <- Zint.of_int s.hi.(d);
           [ ge; le ]))
    in
    let domain = Poly.make ~dim ~eqs:[] ~ineqs in
    let write = mk_access s s.write in
    let reads = List.map (mk_access s) s.reads in
    let seed =
      Prog.Eadd (Prog.Econst (1.0 +. (0.25 *. float_of_int idx)), Prog.Eiter 0)
    in
    let rhs =
      List.fold_left
        (fun e r -> Prog.Eadd (Prog.Emul (Prog.Econst 0.75, e), Prog.Eref r))
        seed reads
    in
    Build.stmt ~id:(idx + 1)
      ~name:(Printf.sprintf "S%d" idx)
      ~np ~depth:s.depth
      ~iter_names:(Array.sub iter_names_pool 0 s.depth)
      ~domain ~writes:[ write ] ~reads ~body:(write, rhs)
      ~beta:(idx :: List.init s.depth (fun _ -> 0))
      ()
  in
  (* statements first: materializing accesses populates [extent_max] *)
  let stmts = List.mapi mk_stmt t.stmts in
  let arrays =
    List.map (fun (arr, rank) ->
      let extents =
        Array.init rank (fun k ->
          let p, c =
            match Hashtbl.find_opt extent_max (arr, k) with
            | Some e -> e
            | None -> (0, 1)  (* dimension never accessed *)
          in
          let row = Vec.make (np + 1) in
          if np > 0 then row.(0) <- Zint.of_int p;
          row.(np) <- Zint.of_int c;
          row)
      in
      { Prog.array_name = arr; rank; extents })
      t.ranks
  in
  { Prog.params; arrays; stmts }

let to_string t =
  Format.asprintf "n=%d@.%a" t.n_value Prog.pp (materialize t)

open Emsc_poly
open Emsc_ir
open Emsc_transform
open Emsc_driver

type failure = {
  origin : string;
  setting : string;
  reason : string;
  program : string;
}

type report = {
  generated : int;
  suite : int;
  checks : int;
  failures : failure list;
}

type setting = {
  sname : string;
  options : Options.t;
  needs_independence : bool;
      (** arbitrary rectangular tiling is only semantics-preserving for
          dependence-free programs; settings that tile are skipped (not
          failed) when the program has dependences *)
}

let untiled_settings =
  let base = { Options.default with Options.find_band = false } in
  [ { sname = "cell-merge";
      options = { base with Options.arch = `Cell; merge_per_array = true };
      needs_independence = false };
    { sname = "cell-optmove";
      options = { base with Options.arch = `Cell; optimize_movement = true };
      needs_independence = false };
    { sname = "gpu-delta0.3";
      options = { base with Options.arch = `Gpu };
      needs_independence = false };
    { sname = "gpu-delta0";
      options = { base with Options.arch = `Gpu; delta = 0.0 };
      needs_independence = false } ]

let settings_for ~inter_tile (spec : Gen.t) =
  match spec.Gen.stmts with
  | [ s ] when not spec.Gen.uses_param ->
    let tile_spec =
      Array.init s.Gen.depth (fun _ ->
        { Tile.block = None; mem = Some 4; thread = None })
    in
    (* block tiling with no mem level: the shape inter-tile reuse keys
       on — every dim's origin is a launch parameter and consecutive
       innermost blocks form residency chains *)
    let block_spec =
      Array.init s.Gen.depth (fun _ ->
        { Tile.block = Some 4; mem = None; thread = None })
    in
    untiled_settings
    @ [ { sname = "cell-tiled4";
          options =
            { Options.default with
              Options.arch = `Cell;
              find_band = false;
              tiling = Options.Spec tile_spec };
          needs_independence = true } ]
    @ (if inter_tile then
         [ { sname = "cell-intertile4";
             options =
               { Options.default with
                 Options.arch = `Cell;
                 find_band = false;
                 inter_tile_reuse = true;
                 tiling = Options.Spec block_spec };
             needs_independence = true } ]
       else [])
  | _ -> untiled_settings

(* valuation for the plan's program: original parameters from
   [param_env], tile origins at the lower bound of the origin context
   (a point the movement code's omitted guards are valid at) *)
let invariant_env (c : Pipeline.compiled) param_env =
  match c.Pipeline.tiled with
  | None -> param_env
  | Some t ->
    let tp = t.Pipeline.tiled_prog in
    let ctx = t.Pipeline.context in
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun k name ->
      match Poly.var_bounds_int ctx k with
      | Some lb, _ -> Hashtbl.replace tbl name lb
      | None, _ -> ())
      tp.Prog.params;
    fun name ->
      match Hashtbl.find_opt tbl name with
      | Some v -> v
      | None -> param_env name

let violations_str vs =
  String.concat "; "
    (List.map (Format.asprintf "%a" Invariants.pp_violation) vs)

let check_plan ~backend ~capacity_words ~hierarchy ~param_env ~(options : Options.t)
    (c : Pipeline.compiled) =
  match Oracle.check_compiled ~backend ~param_env c with
  | Error r -> Error ("oracle: " ^ r)
  | Ok () ->
    (match c.Pipeline.plan with
     | None -> Ok ()  (* unreachable: the oracle already required a plan *)
     | Some plan ->
       let env = invariant_env c param_env in
       (match
          Invariants.check ~capacity_words ?hierarchy
            ~optimized_movement:options.Options.optimize_movement ~env plan
        with
        | [] -> Ok ()
        | vs -> Error ("invariants: " ^ violations_str vs)))

(* [Ok None] = setting not applicable to this program (skipped) *)
let check_setting ~backend ~capacity_words ~hierarchy (spec : Gen.t) (st : setting) =
  let prog = Gen.materialize spec in
  if st.needs_independence && Deps.analyze prog <> [] then Ok None
  else
    match
      Pipeline.compile
        (Pipeline.job ~options:st.options
           (Source.Program { name = "gen"; prog }))
    with
    | Error e -> Error ("compile: " ^ Frontend.error_message e)
    | Ok c ->
      (match
         check_plan ~backend ~capacity_words ~hierarchy
           ~param_env:(Gen.param_env spec) ~options:st.options c
       with
       | Ok () -> Ok (Some ())
       | Error _ as e -> e)

let check_generated ~backend ~capacity_words ~hierarchy ~inter_tile ~progress
    ~seed i =
  let rng = Random.State.make [| seed; i |] in
  let spec = Gen.generate rng in
  Emsc_obs.Metrics.counter "fuzz.generated" 1.0;
  let checks = ref 0 and failures = ref [] in
  List.iter (fun st ->
    match check_setting ~backend ~capacity_words ~hierarchy spec st with
    | Ok None -> ()
    | Ok (Some ()) ->
      incr checks;
      Emsc_obs.Metrics.counter "fuzz.checks" 1.0
    | Error reason ->
      incr checks;
      Emsc_obs.Metrics.counter "fuzz.checks" 1.0;
      Emsc_obs.Metrics.counter "fuzz.failed" 1.0;
      progress
        (Printf.sprintf "gen#%d failed under %s: %s — shrinking" i st.sname
           reason);
      let still_fails s =
        match check_setting ~backend ~capacity_words ~hierarchy s st with
        | Error _ -> true
        | Ok _ -> false
      in
      Emsc_obs.Metrics.counter "fuzz.shrunk" 1.0;
      let small = Shrink.minimize ~max_steps:25 ~still_fails spec in
      let reason =
        match check_setting ~backend ~capacity_words ~hierarchy small st with
        | Error r -> r
        | Ok _ -> reason
      in
      failures :=
        { origin = Printf.sprintf "gen#%d" i;
          setting = st.sname;
          reason;
          program = Gen.to_string small }
        :: !failures)
    (settings_for ~inter_tile spec);
  (!checks, List.rev !failures)

let check_suite_job ~backend ~capacity_words ~hierarchy (job : Pipeline.job) =
  let name = Source.name job.Pipeline.source in
  match Pipeline.compile job with
  | Error e ->
    ( 1,
      [ { origin = name; setting = "suite";
          reason = "compile: " ^ Frontend.error_message e; program = "" } ] )
  | Ok c ->
    (match c.Pipeline.plan with
     | None -> (0, [])  (* job stops before planning: nothing to validate *)
     | Some _ ->
       (match
          check_plan ~backend ~capacity_words ~hierarchy ~param_env:Runner.zero_env
            ~options:job.Pipeline.options c
        with
        | Ok () -> (1, [])
        | Error reason ->
          ( 1,
            [ { origin = name; setting = "suite"; reason; program = "" } ] )))

let run ?(backend = `Seq) ?(fuzz = 50) ?(seed = 1) ?(capacity_words = 4096)
    ?hierarchy ?(inter_tile = false) ?(progress = fun _ -> ()) () =
  Emsc_obs.Trace.span "check.run" @@ fun () ->
  let checks = ref 0 and failures = ref [] in
  for i = 0 to fuzz - 1 do
    let c, fs =
      check_generated ~backend ~capacity_words ~hierarchy ~inter_tile
        ~progress ~seed i
    in
    checks := !checks + c;
    failures := !failures @ fs
  done;
  let suite = Emsc_kernels.Suite.jobs () in
  let suite_checked = ref 0 in
  List.iter (fun job ->
    let c, fs = check_suite_job ~backend ~capacity_words ~hierarchy job in
    suite_checked := !suite_checked + c;
    checks := !checks + c;
    failures := !failures @ fs)
    suite;
  { generated = fuzz; suite = !suite_checked; checks = !checks;
    failures = !failures }

module J = Emsc_obs.Json

let report_json r =
  J.Obj
    [ ("schema", J.Str "emsc-check/1");
      ("generated", J.Int r.generated);
      ("suite", J.Int r.suite);
      ("checks", J.Int r.checks);
      ("failures", J.Int (List.length r.failures));
      ( "details",
        J.List
          (List.map (fun f ->
             J.Obj
               [ ("origin", J.Str f.origin);
                 ("setting", J.Str f.setting);
                 ("reason", J.Str f.reason);
                 ("program", J.Str f.program) ])
             r.failures) ) ]

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%d generated program(s), %d suite kernel(s), %d check(s), %d \
     failure(s)@,"
    r.generated r.suite r.checks
    (List.length r.failures);
  List.iter (fun f ->
    Format.fprintf fmt "@,FAIL %s under %s:@,  %s@," f.origin f.setting
      f.reason;
    if f.program <> "" then Format.fprintf fmt "@[<v 2>  %s@]@," f.program)
    r.failures;
  Format.fprintf fmt "@]"

type t =
  | File of string
  | Stdin
  | Text of { name : string; text : string }
  | Program of { name : string; prog : Emsc_ir.Prog.t }

let name = function
  | File p -> p
  | Stdin -> "<stdin>"
  | Text { name; _ } -> name
  | Program { name; _ } -> name

let file path = if path = "-" then Stdin else File path

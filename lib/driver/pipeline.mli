(** The canonical EMSC compilation pipeline, typed and memoized:

    {v
    parse -> deps -> hyperplanes -> [tilesearch] -> [tile] -> plan -> codegen
    v}

    Every entry point of the repo (CLI subcommands, the bench harness,
    the examples, the kernel suite) builds compilations exclusively
    through this module; the duplicated parse→plan glue they used to
    carry lives here once.

    Stage results are memoized by content ({!Cache}): a repeated
    compilation of the same source with the same options skips the
    hyperplane search, the tile-size search and [Plan.plan_block] —
    the three dominant costs.  {!compile_many} compiles independent
    jobs in parallel worker processes with deterministic result
    ordering. *)

open Emsc_ir
open Emsc_core
open Emsc_transform

type tiled = {
  spec : Tile.spec;
  tiled_prog : Prog.t;
      (** the "tile block" program the Section 3 framework plans *)
  context : Emsc_poly.Poly.t;  (** tile-origin parameter context *)
  ast : Emsc_codegen.Ast.stm list;  (** generated kernel with movement *)
}

type compiled = {
  source_name : string;
  digest : string;  (** content digest of the source program *)
  options : Options.t;
  prog : Prog.t;    (** original (untiled) program *)
  deps : Deps.t list option;       (** [None] before [Dependences] *)
  band : Hyperplanes.band option;  (** [None]: not requested, or none exists *)
  searched : Tilesearch.candidate option;  (** tile-size search pick *)
  tiled : tiled option;            (** [None] when compiling untiled *)
  plan : Plan.t option;            (** [None] before [Full] *)
  movement : (Emsc_codegen.Ast.stm list * Emsc_codegen.Ast.stm list) list;
      (** per-buffer (move-in, move-out); [[]] when not staging *)
  timings : Stage.timing list;     (** in stage order *)
  cache_hits : int;                (** over this compilation's stages *)
  cache_misses : int;
}

type job = { source : Source.t; options : Options.t }

val job : ?options:Options.t -> Source.t -> job

val compile : ?cache:Cache.t -> job -> (compiled, Frontend.error) result
(** Runs the pipeline up to [job.options.stop].  Stage failures
    (unbounded buffers, tiling constraint violations, ...) come back
    as [Error], never [exit]. *)

val compile_source :
  ?cache:Cache.t -> ?options:Options.t -> Source.t ->
  (compiled, Frontend.error) result

val compile_many :
  ?cache:Cache.t -> ?jobs:int ->
  ?compile_one:(cache:Cache.t -> job -> (compiled, Frontend.error) result) ->
  job list ->
  (compiled, Frontend.error) result list
(** Compiles independent jobs in parallel forked workers ([jobs]
    defaults to {!default_jobs}; values [<= 1], singleton batches, and
    Windows fall back to in-process sequential compilation).  Results
    are in input order regardless of completion order.

    Failures never collapse: a job whose compile raises comes back as
    that job's own [Error] (origin = its source name, message = the
    exception), and because workers stream results per job, a worker
    that dies mid-batch yields a named [Error] for each job it had not
    yet reported — carrying the worker's exit status — while every
    result it already streamed survives.

    [compile_one] (default {!compile}) is a test hook: injecting a
    raising or process-aborting function exercises those error paths
    deterministically.

    Worker cache *stores* land in the shared on-disk layer; the
    parent's in-memory counters only see its own lookups. *)

val default_jobs : unit -> int

val search_problem : Prog.t -> Options.tile_search -> Tilesearch.problem
(** The Section 4.3 problem the [tilesearch] stage solves, exposed so
    callers can inspect the cost landscape the search walked. *)

val report_json : compiled -> Emsc_obs.Json.t
(** Per-stage timing rows with cache verdicts, plus hit/miss totals —
    the ["pipeline"] object of [emsc analyze --json]. *)

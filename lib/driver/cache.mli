(** Content-addressed memoization of pipeline stage results.

    Keys are digests of (source content, stage name, option
    fingerprint, cache format version); values are marshalled OCaml
    values.  Two layers: an in-process table (hits within one run,
    across the workers of a batch via fork inheritance of warm state,
    and across the requests of a long-running [emsc serve] daemon) and
    an optional on-disk store (hits across processes — this is what
    makes a repeated [emsc analyze] skip the hyperplane search, the
    tile-size search and [Plan.plan_block]).

    The memory layer is an exact LRU bounded by [max_entries] (when
    given), so a persistent process cannot grow without limit; an
    evicted entry that was also stored on disk falls through to the
    disk layer on its next lookup and is promoted back.

    Domain-safe: every counter update and memory-layer mutation runs
    under one internal mutex, so a single [t] may be shared by
    concurrent worker domains.  The cached computation itself runs
    outside the lock — two domains racing on one key may both compute
    it (both count a miss, both store; last store wins), which is
    benign because values are content-addressed.

    Lookups never fail the compilation: a corrupt or unreadable entry
    is a miss, an unwritable directory silently degrades to the
    in-memory layer. *)

type t

val off : t
(** Never hits, never stores, counts nothing. *)

val in_memory : ?max_entries:int -> unit -> t
(** Memory-only cache; [max_entries] caps the LRU (unbounded when
    omitted). *)

val create : ?dir:string -> ?max_entries:int -> unit -> t
(** Disk-backed cache at [dir] (created if missing; falls back to
    memory-only if creation fails).  [dir] defaults to
    {!default_dir}; [max_entries] caps the memory layer only — the
    disk layer is never evicted. *)

val default_dir : unit -> string
(** [$EMSC_CACHE_DIR], else [$XDG_CACHE_HOME/emsc], else
    [~/.cache/emsc], else a directory under the system temp dir. *)

val enabled : t -> bool
val dir : t -> string option
val max_entries : t -> int option

val key : digest:string -> stage:string -> extra:string -> string
(** The content-addressed key: digest of source digest + stage name +
    option fingerprint + format version. *)

val memo : t -> key:string -> (unit -> 'a) -> 'a * bool
(** Cached value (and [true]), or [f ()] stored under [key] (and
    [false]).  Counters are updated accordingly.

    The stored representation is untyped (Marshal); soundness comes
    from the key: a given (version, stage) pair always stores the same
    type, and the version constant must be bumped whenever a stage's
    result type changes. *)

val find : t -> key:string -> 'a option

val store :
  ?writer:(out_channel -> string -> unit) -> t -> key:string -> 'a -> unit
(** [writer] (default [output_string]) performs the on-disk write of
    the marshalled bytes; tests inject a failing writer to exercise the
    error path.  If it raises, the temporary file is closed and
    unlinked — never orphaned — and I/O errors degrade silently to the
    in-memory layer as usual. *)

val hits : t -> int
(** [hot_hits + disk_hits]. *)

val hot_hits : t -> int
(** Lookups answered by the memory layer. *)

val disk_hits : t -> int
(** Lookups that missed memory, hit disk, and were promoted. *)

val misses : t -> int
val stores : t -> int

val evictions : t -> int
(** Memory-layer entries dropped by the LRU cap (also counted on the
    ["driver.cache.evictions"] metric). *)

val mem_entries : t -> int
(** Current memory-layer size; always [<= max_entries] when capped. *)

val stats_json : t -> Emsc_obs.Json.t

(** Content-addressed memoization of pipeline stage results.

    Keys are digests of (source content, stage name, option
    fingerprint, cache format version); values are marshalled OCaml
    values.  Two layers: an in-process table (hits within one run, and
    across the workers of a batch via fork inheritance of warm state)
    and an optional on-disk store (hits across processes — this is
    what makes a repeated [emsc analyze] skip the hyperplane search,
    the tile-size search, and [Plan.plan_block]).

    Lookups never fail the compilation: a corrupt or unreadable entry
    is a miss, an unwritable directory silently degrades to the
    in-memory layer. *)

type t

val off : t
(** Never hits, never stores, counts nothing. *)

val in_memory : unit -> t

val create : ?dir:string -> unit -> t
(** Disk-backed cache at [dir] (created if missing; falls back to
    memory-only if creation fails).  [dir] defaults to
    {!default_dir}. *)

val default_dir : unit -> string
(** [$EMSC_CACHE_DIR], else [$XDG_CACHE_HOME/emsc], else
    [~/.cache/emsc], else a directory under the system temp dir. *)

val enabled : t -> bool
val dir : t -> string option

val key : digest:string -> stage:string -> extra:string -> string
(** The content-addressed key: digest of source digest + stage name +
    option fingerprint + format version. *)

val memo : t -> key:string -> (unit -> 'a) -> 'a * bool
(** Cached value (and [true]), or [f ()] stored under [key] (and
    [false]).  Counters are updated accordingly.

    The stored representation is untyped (Marshal); soundness comes
    from the key: a given (version, stage) pair always stores the same
    type, and the version constant must be bumped whenever a stage's
    result type changes. *)

val find : t -> key:string -> 'a option

val store :
  ?writer:(out_channel -> string -> unit) -> t -> key:string -> 'a -> unit
(** [writer] (default [output_string]) performs the on-disk write of
    the marshalled bytes; tests inject a failing writer to exercise the
    error path.  If it raises, the temporary file is closed and
    unlinked — never orphaned — and I/O errors degrade silently to the
    in-memory layer as usual. *)

val hits : t -> int
val misses : t -> int
val stores : t -> int
val stats_json : t -> Emsc_obs.Json.t

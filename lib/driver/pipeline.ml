open Emsc_ir
open Emsc_core
open Emsc_transform
open Emsc_obs

type tiled = {
  spec : Tile.spec;
  tiled_prog : Prog.t;
  context : Emsc_poly.Poly.t;
  ast : Emsc_codegen.Ast.stm list;
}

type compiled = {
  source_name : string;
  digest : string;
  options : Options.t;
  prog : Prog.t;
  deps : Deps.t list option;
  band : Hyperplanes.band option;
  searched : Tilesearch.candidate option;
  tiled : tiled option;
  plan : Plan.t option;
  movement : (Emsc_codegen.Ast.stm list * Emsc_codegen.Ast.stm list) list;
  timings : Stage.timing list;
  cache_hits : int;
  cache_misses : int;
}

type job = { source : Source.t; options : Options.t }

let job ?(options = Options.default) source = { source; options }

let spec_of_search (ts : Options.tile_search) t =
  Array.init (Array.length t) (fun j ->
    { Tile.block = ts.Options.search_block.(j); mem = Some t.(j);
      thread = None })

let search_problem prog (ts : Options.tile_search) =
  Tilesearch.pipeline_problem ~prog
    ~spec_of:(spec_of_search ts)
    ~ranges:ts.Options.search_ranges
    ~mem_limit_words:ts.Options.search_mem_limit_words
    ~threads:ts.Options.search_threads
    ~sync_cost:ts.Options.search_sync_cost
    ~transfer_cost:ts.Options.search_transfer_cost ()

let compile ?(cache = Cache.off) { source; options = o } =
  let timings = ref [] in
  let hits = ref 0 and misses = ref 0 in
  let record (t : Stage.timing) =
    timings := t :: !timings;
    if t.Stage.cacheable then
      if t.Stage.cached then incr hits else incr misses
  in
  let name = Source.name source in
  match Stage.exec ~record (Stage.v "parse" Frontend.load) source with
  | Error e -> Error e
  | Ok (prog, digest) ->
    let cached_exec ~stage ~extra f x =
      let key = Cache.key ~digest ~stage ~extra in
      Stage.exec ~cache:(cache, key) ~record (Stage.v stage f) x
    in
    let finish acc =
      Ok
        { acc with
          timings = List.rev !timings;
          cache_hits = !hits;
          cache_misses = !misses }
    in
    let base =
      { source_name = name; digest; options = o; prog; deps = None;
        band = None; searched = None; tiled = None; plan = None;
        movement = []; timings = []; cache_hits = 0; cache_misses = 0 }
    in
    (try
       if o.Options.stop = Options.Front_end then finish base
       else begin
         let deps = cached_exec ~stage:"deps" ~extra:"" Deps.analyze prog in
         let acc = { base with deps = Some deps } in
         if o.Options.stop = Options.Dependences then finish acc
         else begin
           let band =
             if o.Options.find_band then
               cached_exec ~stage:"hyperplanes" ~extra:""
                 (fun (p, d) ->
                   (* mixed statement depths admit no common band *)
                   match Hyperplanes.find_band p d with
                   | b -> Some b
                   | exception Invalid_argument _ -> None)
                 (prog, deps)
             else None
           in
           let acc = { acc with band } in
           if o.Options.stop = Options.Band then finish acc
           else begin
             let tiling_fp = Options.tiling_fingerprint o in
             let searched, spec =
               match o.Options.tiling with
               | Options.No_tiling -> (None, None)
               | Options.Spec s -> (None, Some s)
               | Options.Search ts ->
                 let cand =
                   cached_exec ~stage:"tilesearch" ~extra:tiling_fp
                     (fun p ->
                       Tilesearch.search
                         ~max_evals:ts.Options.search_max_evals
                         ~snap_pow2:ts.Options.search_snap_pow2
                         (search_problem p ts))
                     prog
                 in
                 (match cand with
                  | Some c -> (Some c, Some (spec_of_search ts c.Tilesearch.t))
                  | None -> (None, None))
             in
             let pre =
               match spec with
               | None -> None
               | Some spec ->
                 let tp, ctx =
                   cached_exec ~stage:"tile" ~extra:tiling_fp
                     (fun (p, s) ->
                       (Tile.tile_program p s, Tile.origin_context p s))
                     (prog, spec)
                 in
                 Some (spec, tp, ctx)
             in
             let plan =
               let plan_input, ctx =
                 match pre with
                 | Some (_, tp, ctx) -> (tp, Some ctx)
                 | None -> (prog, None)
               in
               (* the delta is keyed on the innermost block origin of
                  the tile spec; an untiled compile has no chains *)
               let inter_tile =
                 match pre with
                 | Some (spec, _, _) when o.Options.inter_tile_reuse ->
                   Tile.inter_tile_origin prog spec
                 | _ -> None
               in
               cached_exec ~stage:"plan"
                 ~extra:(Options.plan_fingerprint o)
                 (fun (p, ctx) ->
                   Plan.plan_block ~arch:o.Options.arch
                     ~merge_per_array:o.Options.merge_per_array
                     ~delta:o.Options.delta
                     ~optimize_movement:o.Options.optimize_movement
                     ?param_context:ctx ?inter_tile p)
                 (plan_input, ctx)
             in
             let movement =
               if o.Options.stage_data then
                 List.map
                   (fun (b : Plan.buffered) ->
                     (b.Plan.move_in, b.Plan.move_out))
                   plan.Plan.buffered
               else []
             in
             let tiled =
               match pre with
               | None -> None
               | Some (spec, tp, ctx) ->
                 let ast =
                   Stage.exec ~record
                     (Stage.v "codegen" (fun () ->
                        Tile.generate prog spec ~movement))
                     ()
                 in
                 Some { spec; tiled_prog = tp; context = ctx; ast }
             in
             finish { acc with searched; tiled; plan = Some plan; movement }
           end
         end
       end
     with
     | Failure m ->
       Error { Frontend.origin = name; stage = "pipeline"; message = m }
     | Invalid_argument m ->
       Error { Frontend.origin = name; stage = "pipeline"; message = m })

let compile_source ?cache ?options source = compile ?cache (job ?options source)

let default_jobs () =
  try Domain.recommended_domain_count () with _ -> 4

(* Batch compilation via forked workers.  Jobs are dealt round-robin
   to [workers] children; each child streams back one (index, result)
   message per job over a pipe — converting any exception its job
   raised into that job's [Error] — and the parent reassembles them by
   index, so the output order is the input order no matter how workers
   interleave.  Because results stream incrementally, a worker that
   dies mid-batch (OOM kill, segfault, crashing [compile_one] hook)
   loses only the jobs it had not yet reported; each of those comes
   back as its own [Error] naming the job, never a collapsed
   whole-batch failure.  Fork (rather than domains) keeps each job's
   compile single-threaded and the workers' address spaces isolated.

   [compile_one] (default {!compile}) exists for tests: injecting a
   raising or aborting function exercises the per-job error and
   dead-worker paths without needing a genuinely crashing input. *)
let compile_many ?(cache = Cache.off) ?jobs
    ?(compile_one = fun ~cache jb -> compile ~cache jb) job_list =
  let items = Array.of_list job_list in
  let n = Array.length items in
  let workers =
    let j = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min j n)
  in
  let guarded i =
    try compile_one ~cache items.(i)
    with e ->
      Error
        { Frontend.origin = Source.name items.(i).source;
          stage = "batch";
          message = Printexc.to_string e }
  in
  if workers <= 1 || n <= 1 || Sys.win32 then
    List.init n guarded
  else begin
    let spans = Array.make workers [] in
    for i = n - 1 downto 0 do
      spans.(i mod workers) <- i :: spans.(i mod workers)
    done;
    let slots = Array.make n None in
    let children =
      Array.to_list spans
      |> List.filter (fun idxs -> idxs <> [])
      |> List.map (fun idxs ->
           let r, w = Unix.pipe () in
           match Unix.fork () with
           | 0 ->
             (* child: compute, marshal each result as soon as it
                exists, vanish without running the parent's at_exit
                flushes *)
             (try
                Unix.close r;
                let oc = Unix.out_channel_of_descr w in
                List.iter
                  (fun i ->
                    Marshal.to_channel oc (i, guarded i) [];
                    flush oc)
                  idxs;
                Unix._exit 0
              with _ -> Unix._exit 1)
           | pid ->
             Unix.close w;
             (pid, r, idxs))
    in
    List.iter
      (fun (pid, r, idxs) ->
        let ic = Unix.in_channel_of_descr r in
        (try
           while true do
             let (i, res) : int * (compiled, Frontend.error) result =
               Marshal.from_channel ic
             in
             slots.(i) <- Some res
           done
         with End_of_file | Failure _ -> ());
        close_in_noerr ic;
        let rec wait () =
          try snd (Unix.waitpid [] pid)
          with Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        let status = wait () in
        let status_message =
          match status with
          | Unix.WEXITED 0 -> "worker exited before reporting this job"
          | Unix.WEXITED c -> Printf.sprintf "worker exited with code %d" c
          | Unix.WSIGNALED s -> Printf.sprintf "worker killed by signal %d" s
          | Unix.WSTOPPED s -> Printf.sprintf "worker stopped by signal %d" s
        in
        List.iter
          (fun i ->
            if Option.is_none slots.(i) then
              slots.(i) <-
                Some
                  (Error
                     { Frontend.origin = Source.name items.(i).source;
                       stage = "batch";
                       message = status_message }))
          idxs)
      children;
    Array.to_list (Array.map (fun s -> Option.get s) slots)
  end

let report_json c =
  Json.Obj
    [ ("source", Json.Str c.source_name);
      ("digest", Json.Str c.digest);
      ( "cache",
        Json.Obj
          [ ("hits", Json.Int c.cache_hits);
            ("misses", Json.Int c.cache_misses) ] );
      ("stages", Json.List (List.map Stage.timing_json c.timings)) ]

(** Execution back end of the pipeline: the memory-setup /
    local-buffer / executor glue every consumer used to hand-roll.

    {!simulate} runs a compiled (tiled) kernel on the simulated
    machine; {!reference} runs the original program on the exact
    reference interpreter; {!execute} is the generic form for kernels
    produced outside the plan pipeline (e.g. the overlapped stencil
    tiler). *)

open Emsc_arith
open Emsc_ir
open Emsc_machine

(** How to populate global arrays before running. *)
type memory_kind =
  | Phantom
      (** shape-only memory for sampled timing runs (huge sizes) *)
  | Zeroed
  | Filled of (string * (int array -> float)) list
  | Pseudorandom
      (** deterministic hash fill — the CLI's reproducible inputs *)

val no_params : string -> Zint.t
(** Raises [Failure]; the param env for parameter-free programs. *)

val zero_env : string -> Zint.t

val env_of_params : (string * int) list -> string -> Zint.t
(** Raises [Failure "parameter <p> needs a value"] on unbound names. *)

val prepare :
  ?memory:memory_kind -> param_env:(string -> Zint.t) -> Prog.t -> Memory.t
(** Memory with globals allocated and populated ([Zeroed] default). *)

type backend = [ `Seq | `Par of int ]
(** [`Seq] replays on the sequential interpreter; [`Par jobs] executes
    block-parallel on [jobs] domains through {!Emsc_runtime.Runtime}.
    Parallel execution is always [Full] fidelity and produces
    bit-identical arrays, totals and launch grids to [`Seq] in [Full]
    mode, for any [jobs] and either scheduling policy. *)

val execute :
  prog:Prog.t ->
  ?local_ref:(Prog.stmt -> Prog.access -> Emsc_codegen.Ast.ref_expr option) ->
  ?locals:string list ->
  ?mode:Exec.mode ->
  ?memory:memory_kind ->
  ?param_env:(string -> Zint.t) ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  ?backend:backend ->
  ?policy:Emsc_runtime.Runtime.policy ->
  ?double_buffer:bool ->
  ?track_ownership:bool ->
  ?block_words:int ->
  ?inter_tile_reuse:bool ->
  ?hierarchy:Hierarchy.t ->
  Emsc_codegen.Ast.stm list ->
  Memory.t * Exec.result
(** Run an AST: prepare memory, declare [locals], execute under a
    ["driver.execute"] trace span.  Defaults: [Zeroed] memory,
    [Sampled 6] mode, parameter-free env, [`Seq] backend.  With
    [`Par], [mode] is ignored ([Full] by construction), [block_words]
    sizes each block's scratchpad arena, [double_buffer] turns on the
    async DMA pipeline, and the concurrent-arena cap follows
    [Timing.occupancy] over the effective (buffering-adjusted)
    footprint against [hierarchy] (default {!Hierarchy.gtx8800},
    through its staging-level projection).  [inter_tile_reuse] switches
    the parallel executor to chain-aware scheduling (one arena per
    chain of consecutive blocks) so the plan's resident slabs survive
    between blocks — required when the AST carries delta-movement
    guards. *)

val simulate :
  ?mode:Exec.mode ->
  ?memory:memory_kind ->
  ?param_env:(string -> Zint.t) ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  ?backend:backend ->
  ?policy:Emsc_runtime.Runtime.policy ->
  ?double_buffer:bool ->
  ?track_ownership:bool ->
  ?hierarchy:Hierarchy.t ->
  Pipeline.compiled ->
  Memory.t * Exec.result
(** Run a compiled kernel: the tiled AST against the tiled program,
    with the plan's buffers declared and accesses redirected when the
    compilation staged data (its options had [stage_data], the
    default).  Defaults: [Phantom] memory, [Sampled 6], [`Seq].  With
    [`Par], the mode is forced to [Full] and the per-block arena size
    is derived from the plan's total footprint.
    @raise Invalid_argument if the compilation has no generated kernel
    (untiled, or stopped early). *)

val with_runtime_report :
  ?capacity:int ->
  (unit -> 'a) ->
  'a * Emsc_obs.Runtime_report.t option
(** Record {!Emsc_obs.Events} around [f] — reset, enable (optionally
    with a ring [capacity]), run, drain, analyze.  [None] when [f]
    produced no runtime events (e.g. a sequential run).  Event
    recording is restored to its previous state afterwards; the drained
    rings are kept, so {!Emsc_obs.Events.write_merged_chrome} called
    later still exports this run's tracks. *)

val reference :
  ?memory:memory_kind ->
  ?param_env:(string -> Zint.t) ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  Prog.t ->
  Memory.t * Exec.counters
(** Exact reference interpretation under a ["driver.reference"]
    span.  Default memory: [Zeroed]. *)

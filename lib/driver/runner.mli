(** Execution back end of the pipeline: the memory-setup /
    local-buffer / executor glue every consumer used to hand-roll.

    {!simulate} runs a compiled (tiled) kernel on the simulated
    machine; {!reference} runs the original program on the exact
    reference interpreter; {!execute} is the generic form for kernels
    produced outside the plan pipeline (e.g. the overlapped stencil
    tiler). *)

open Emsc_arith
open Emsc_ir
open Emsc_machine

(** How to populate global arrays before running. *)
type memory_kind =
  | Phantom
      (** shape-only memory for sampled timing runs (huge sizes) *)
  | Zeroed
  | Filled of (string * (int array -> float)) list
  | Pseudorandom
      (** deterministic hash fill — the CLI's reproducible inputs *)

val no_params : string -> Zint.t
(** Raises [Failure]; the param env for parameter-free programs. *)

val zero_env : string -> Zint.t

val env_of_params : (string * int) list -> string -> Zint.t
(** Raises [Failure "parameter <p> needs a value"] on unbound names. *)

val prepare :
  ?memory:memory_kind -> param_env:(string -> Zint.t) -> Prog.t -> Memory.t
(** Memory with globals allocated and populated ([Zeroed] default). *)

val execute :
  prog:Prog.t ->
  ?local_ref:(Prog.stmt -> Prog.access -> Emsc_codegen.Ast.ref_expr option) ->
  ?locals:string list ->
  ?mode:Exec.mode ->
  ?memory:memory_kind ->
  ?param_env:(string -> Zint.t) ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  Emsc_codegen.Ast.stm list ->
  Memory.t * Exec.result
(** Run an AST: prepare memory, declare [locals], execute under a
    ["driver.execute"] trace span.  Defaults: [Zeroed] memory,
    [Sampled 6] mode, parameter-free env. *)

val simulate :
  ?mode:Exec.mode ->
  ?memory:memory_kind ->
  ?param_env:(string -> Zint.t) ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  Pipeline.compiled ->
  Memory.t * Exec.result
(** Run a compiled kernel: the tiled AST against the tiled program,
    with the plan's buffers declared and accesses redirected when the
    compilation staged data (its options had [stage_data], the
    default).  Defaults: [Phantom] memory, [Sampled 6].
    @raise Invalid_argument if the compilation has no generated kernel
    (untiled, or stopped early). *)

val reference :
  ?memory:memory_kind ->
  ?param_env:(string -> Zint.t) ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  Prog.t ->
  Memory.t * Exec.counters
(** Exact reference interpretation under a ["driver.reference"]
    span.  Default memory: [Zeroed]. *)

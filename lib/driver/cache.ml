type t = {
  on : bool;
  dir : string option;
  mem : (string, string) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

(* bump when any stage's result type changes: stored values are
   untyped, the key is the only type witness *)
let version = "emsc-driver-cache/1"

let off =
  { on = false; dir = None; mem = Hashtbl.create 1; hits = 0; misses = 0;
    stores = 0 }

let in_memory () =
  { on = true; dir = None; mem = Hashtbl.create 64; hits = 0; misses = 0;
    stores = 0 }

let default_dir () =
  let non_empty = function Some d when d <> "" -> Some d | _ -> None in
  match non_empty (Sys.getenv_opt "EMSC_CACHE_DIR") with
  | Some d -> d
  | None ->
    (match non_empty (Sys.getenv_opt "XDG_CACHE_HOME") with
     | Some d -> Filename.concat d "emsc"
     | None ->
       (match non_empty (Sys.getenv_opt "HOME") with
        | Some h -> Filename.concat (Filename.concat h ".cache") "emsc"
        | None -> Filename.concat (Filename.get_temp_dir_name ()) "emsc-cache"))

let rec mkdir_p d =
  if d <> "" && not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let create ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let dir =
    try
      mkdir_p dir;
      if Sys.is_directory dir then Some dir else None
    with Unix.Unix_error _ | Sys_error _ -> None
  in
  { on = true; dir; mem = Hashtbl.create 64; hits = 0; misses = 0; stores = 0 }

let enabled t = t.on
let dir t = t.dir
let hits t = t.hits
let misses t = t.misses
let stores t = t.stores

let key ~digest ~stage ~extra =
  Digest.to_hex
    (Digest.string (String.concat "\x00" [ version; digest; stage; extra ]))

let read_all path =
  match open_in_bin path with
  | ic ->
    (try
       Some
         (Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> In_channel.input_all ic))
     with Sys_error _ -> None)
  | exception Sys_error _ -> None

let decode bytes = try Some (Marshal.from_string bytes 0) with _ -> None

let find t ~key =
  if not t.on then None
  else
    match Hashtbl.find_opt t.mem key with
    | Some bytes -> decode bytes
    | None ->
      (match t.dir with
       | None -> None
       | Some dir ->
         let path = Filename.concat dir key in
         if Sys.file_exists path then
           match read_all path with
           | Some bytes ->
             (match decode bytes with
              | Some v ->
                Hashtbl.replace t.mem key bytes;
                Some v
              | None -> None)
           | None -> None
         else None)

let store ?(writer = output_string) t ~key v =
  if t.on then begin
    let bytes = Marshal.to_string v [] in
    Hashtbl.replace t.mem key bytes;
    t.stores <- t.stores + 1;
    match t.dir with
    | None -> ()
    | Some dir ->
      (* atomic publish: concurrent batch workers may race on the same
         entry; last rename wins and every intermediate state is a
         complete file.  A failed write must not orphan the .tmp file:
         close and unlink before the error is swallowed (or re-raised
         for non-I/O exceptions). *)
      (try
         let tmp =
           Filename.concat dir
             (Printf.sprintf ".%s.%d.tmp" key (Unix.getpid ()))
         in
         let oc = open_out_bin tmp in
         (match writer oc bytes with
          | () ->
            close_out_noerr oc;
            Sys.rename tmp (Filename.concat dir key)
          | exception e ->
            close_out_noerr oc;
            (try Sys.remove tmp with Sys_error _ -> ());
            raise e)
       with Sys_error _ | Unix.Unix_error _ -> ())
  end

let memo t ~key f =
  if not t.on then (f (), false)
  else begin
    (* lookup/store latencies feed warm-vs-cold compile cost into the
       compile_profile artifact: a hit's cost is its lookup (decode,
       possibly disk), a miss pays lookup + compute + store *)
    let t0 = Unix.gettimeofday () in
    let found = Emsc_obs.Prof.probe "driver.cache.lookup" (fun () -> find t ~key) in
    let lookup_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    match found with
    | Some v ->
      t.hits <- t.hits + 1;
      Emsc_obs.Metrics.counter "driver.cache.hits" 1.0;
      Emsc_obs.Metrics.observe "driver.cache.hit_ms" lookup_ms;
      (v, true)
    | None ->
      t.misses <- t.misses + 1;
      Emsc_obs.Metrics.counter "driver.cache.misses" 1.0;
      Emsc_obs.Metrics.observe "driver.cache.miss_ms" lookup_ms;
      let v = f () in
      let t1 = Unix.gettimeofday () in
      Emsc_obs.Prof.probe "driver.cache.store" (fun () -> store t ~key v);
      Emsc_obs.Metrics.observe "driver.cache.store_ms"
        ((Unix.gettimeofday () -. t1) *. 1000.0);
      Emsc_obs.Metrics.counter "driver.cache.stores" 1.0;
      (v, false)
  end

let stats_json t =
  Emsc_obs.Json.Obj
    [ ("enabled", Emsc_obs.Json.Bool t.on);
      ( "dir",
        match t.dir with
        | Some d -> Emsc_obs.Json.Str d
        | None -> Emsc_obs.Json.Null );
      ("hits", Emsc_obs.Json.Int t.hits);
      ("misses", Emsc_obs.Json.Int t.misses);
      ("stores", Emsc_obs.Json.Int t.stores) ]

(* Content-addressed pass cache, shared across domains.

   The memory layer is an exact LRU with an optional entry cap: a
   long-running process (the [emsc serve] daemon) front-loads every
   worker's lookups through this table, so it must both be safe to hit
   from concurrent domains and be bounded.  Every mutation of the
   table, the recency list and the counters happens under one mutex;
   the expensive parts — marshalling, disk I/O, and above all the
   cached computation itself — run outside it, so two domains may race
   to compute the same key (both miss, both store, last store wins;
   the values are content-addressed so either result is correct). *)

(* Exact LRU over a circular doubly-linked list with a sentinel:
   [sentinel.next] is most recent, [sentinel.prev] least recent. *)
type node = {
  n_key : string;
  n_bytes : string;
  mutable prev : node;
  mutable next : node;
}

type t = {
  on : bool;
  dir : string option;
  max_entries : int option;
  mu : Mutex.t;
  mem : (string, node) Hashtbl.t;
  sentinel : node;
  mutable hot_hits : int;   (* served from the memory layer *)
  mutable disk_hits : int;  (* memory miss, disk hit (then promoted) *)
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
}

(* bump when any stage's result type changes: stored values are
   untyped, the key is the only type witness *)
let version = "emsc-driver-cache/1"

let make_sentinel () =
  let rec s = { n_key = ""; n_bytes = ""; prev = s; next = s } in
  s

let make ~on ~dir ~max_entries =
  { on; dir; max_entries; mu = Mutex.create ();
    mem = Hashtbl.create 64; sentinel = make_sentinel ();
    hot_hits = 0; disk_hits = 0; misses = 0; stores = 0; evictions = 0 }

let off = make ~on:false ~dir:None ~max_entries:None

let in_memory ?max_entries () = make ~on:true ~dir:None ~max_entries

let default_dir () =
  let non_empty = function Some d when d <> "" -> Some d | _ -> None in
  match non_empty (Sys.getenv_opt "EMSC_CACHE_DIR") with
  | Some d -> d
  | None ->
    (match non_empty (Sys.getenv_opt "XDG_CACHE_HOME") with
     | Some d -> Filename.concat d "emsc"
     | None ->
       (match non_empty (Sys.getenv_opt "HOME") with
        | Some h -> Filename.concat (Filename.concat h ".cache") "emsc"
        | None -> Filename.concat (Filename.get_temp_dir_name ()) "emsc-cache"))

let rec mkdir_p d =
  if d <> "" && not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let create ?dir ?max_entries () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  let dir =
    try
      mkdir_p dir;
      if Sys.is_directory dir then Some dir else None
    with Unix.Unix_error _ | Sys_error _ -> None
  in
  make ~on:true ~dir ~max_entries

let enabled t = t.on
let dir t = t.dir
let max_entries t = t.max_entries

let locked t f =
  Mutex.lock t.mu;
  match f () with
  | v -> Mutex.unlock t.mu; v
  | exception e -> Mutex.unlock t.mu; raise e

let hits t = locked t (fun () -> t.hot_hits + t.disk_hits)
let hot_hits t = locked t (fun () -> t.hot_hits)
let disk_hits t = locked t (fun () -> t.disk_hits)
let misses t = locked t (fun () -> t.misses)
let stores t = locked t (fun () -> t.stores)
let evictions t = locked t (fun () -> t.evictions)
let mem_entries t = locked t (fun () -> Hashtbl.length t.mem)

let key ~digest ~stage ~extra =
  Digest.to_hex
    (Digest.string (String.concat "\x00" [ version; digest; stage; extra ]))

(* list surgery; call with t.mu held *)
let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

(* insert (or refresh) [key -> bytes] at the front, evicting from the
   tail when over the cap; returns the eviction count of this insert *)
let insert_locked t key bytes =
  (match Hashtbl.find_opt t.mem key with
   | Some old -> unlink old; Hashtbl.remove t.mem key
   | None -> ());
  let n = { n_key = key; n_bytes = bytes; prev = t.sentinel; next = t.sentinel } in
  push_front t n;
  Hashtbl.replace t.mem key n;
  let evicted = ref 0 in
  (match t.max_entries with
   | Some cap ->
     while Hashtbl.length t.mem > max 0 cap do
       let lru = t.sentinel.prev in
       if lru == t.sentinel then Hashtbl.reset t.mem (* cap = 0 *)
       else begin
         unlink lru;
         Hashtbl.remove t.mem lru.n_key;
         incr evicted
       end
     done
   | None -> ());
  t.evictions <- t.evictions + !evicted;
  !evicted

let note_evictions n =
  if n > 0 then
    Emsc_obs.Metrics.counter "driver.cache.evictions" (float_of_int n)

let read_all path =
  match open_in_bin path with
  | ic ->
    (try
       Some
         (Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> In_channel.input_all ic))
     with Sys_error _ -> None)
  | exception Sys_error _ -> None

let decode bytes = try Some (Marshal.from_string bytes 0) with _ -> None

(* [find_where] is [find] that also reports which layer answered, so
   [memo] can split the hit counters *)
let find_where t ~key =
  if not t.on then None
  else
    let cached =
      locked t (fun () ->
        match Hashtbl.find_opt t.mem key with
        | Some n ->
          unlink n;
          push_front t n;
          Some n.n_bytes
        | None -> None)
    in
    match cached with
    | Some bytes ->
      (* a torn or corrupt entry is impossible in memory (strings are
         immutable once linked), but decode defensively anyway *)
      (match decode bytes with Some v -> Some (v, `Hot) | None -> None)
    | None ->
      (match t.dir with
       | None -> None
       | Some dir ->
         let path = Filename.concat dir key in
         if Sys.file_exists path then
           match read_all path with
           | Some bytes ->
             (match decode bytes with
              | Some v ->
                let ev = locked t (fun () -> insert_locked t key bytes) in
                note_evictions ev;
                Some (v, `Disk)
              | None -> None)
           | None -> None
         else None)

let find t ~key = Option.map fst (find_where t ~key)

let store ?(writer = output_string) t ~key v =
  if t.on then begin
    let bytes = Marshal.to_string v [] in
    let ev = locked t (fun () -> insert_locked t key bytes) in
    note_evictions ev;
    locked t (fun () -> t.stores <- t.stores + 1);
    match t.dir with
    | None -> ()
    | Some dir ->
      (* atomic publish: concurrent workers may race on the same
         entry; last rename wins and every intermediate state is a
         complete file.  A failed write must not orphan the .tmp file:
         close and unlink before the error is swallowed (or re-raised
         for non-I/O exceptions).  The tmp name carries pid and domain
         so two domains of one process never collide. *)
      (try
         let tmp =
           Filename.concat dir
             (Printf.sprintf ".%s.%d.%d.tmp" key (Unix.getpid ())
                (Domain.self () :> int))
         in
         let oc = open_out_bin tmp in
         (match writer oc bytes with
          | () ->
            close_out_noerr oc;
            Sys.rename tmp (Filename.concat dir key)
          | exception e ->
            close_out_noerr oc;
            (try Sys.remove tmp with Sys_error _ -> ());
            raise e)
       with Sys_error _ | Unix.Unix_error _ -> ())
  end

let memo t ~key f =
  if not t.on then (f (), false)
  else begin
    (* lookup/store latencies feed warm-vs-cold compile cost into the
       compile_profile artifact: a hit's cost is its lookup (decode,
       possibly disk), a miss pays lookup + compute + store *)
    let t0 = Unix.gettimeofday () in
    let found =
      Emsc_obs.Prof.probe "driver.cache.lookup" (fun () -> find_where t ~key)
    in
    let lookup_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    match found with
    | Some (v, layer) ->
      locked t (fun () ->
        match layer with
        | `Hot -> t.hot_hits <- t.hot_hits + 1
        | `Disk -> t.disk_hits <- t.disk_hits + 1);
      Emsc_obs.Metrics.counter "driver.cache.hits" 1.0;
      Emsc_obs.Metrics.counter
        (match layer with
         | `Hot -> "driver.cache.hot_hits"
         | `Disk -> "driver.cache.disk_hits")
        1.0;
      Emsc_obs.Metrics.observe "driver.cache.hit_ms" lookup_ms;
      (v, true)
    | None ->
      locked t (fun () -> t.misses <- t.misses + 1);
      Emsc_obs.Metrics.counter "driver.cache.misses" 1.0;
      Emsc_obs.Metrics.observe "driver.cache.miss_ms" lookup_ms;
      let v = f () in
      let t1 = Unix.gettimeofday () in
      Emsc_obs.Prof.probe "driver.cache.store" (fun () -> store t ~key v);
      Emsc_obs.Metrics.observe "driver.cache.store_ms"
        ((Unix.gettimeofday () -. t1) *. 1000.0);
      Emsc_obs.Metrics.counter "driver.cache.stores" 1.0;
      (v, false)
  end

let stats_json t =
  let hot, disk, miss, st, ev, entries =
    locked t (fun () ->
      (t.hot_hits, t.disk_hits, t.misses, t.stores, t.evictions,
       Hashtbl.length t.mem))
  in
  Emsc_obs.Json.Obj
    [ ("enabled", Emsc_obs.Json.Bool t.on);
      ( "dir",
        match t.dir with
        | Some d -> Emsc_obs.Json.Str d
        | None -> Emsc_obs.Json.Null );
      ("hits", Emsc_obs.Json.Int (hot + disk));
      ("hot_hits", Emsc_obs.Json.Int hot);
      ("disk_hits", Emsc_obs.Json.Int disk);
      ("misses", Emsc_obs.Json.Int miss);
      ("stores", Emsc_obs.Json.Int st);
      ("evictions", Emsc_obs.Json.Int ev);
      ("mem_entries", Emsc_obs.Json.Int entries);
      ( "max_entries",
        match t.max_entries with
        | Some n -> Emsc_obs.Json.Int n
        | None -> Emsc_obs.Json.Null ) ]

open Emsc_obs

type ('a, 'b) t = {
  name : string;
  run : 'a -> 'b;
}

let v name run = { name; run }

let ( >>> ) a b = { name = a.name ^ ">>" ^ b.name; run = (fun x -> b.run (a.run x)) }

type timing = {
  stage : string;
  ms : float;
  cacheable : bool;
  cached : bool;
}

let timing_json t =
  Json.Obj
    [ ("stage", Json.Str t.stage);
      ("ms", Json.Float t.ms);
      ("cached", Json.Bool t.cached) ]

let exec ?cache ~record st x =
  let t0 = Unix.gettimeofday () in
  let label = "driver." ^ st.name in
  let result, cacheable, cached =
    Prof.probe label @@ fun () ->
    Trace.span label @@ fun () ->
    match cache with
    | Some (c, key) when Cache.enabled c ->
      let value, hit = Cache.memo c ~key (fun () -> st.run x) in
      Trace.count (if hit then "cache.hit" else "cache.miss") 1.0;
      (value, true, hit)
    | _ -> (st.run x, false, false)
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  record { stage = st.name; ms; cacheable; cached };
  if Metrics.enabled () then begin
    let labels = [ ("stage", st.name) ] in
    Metrics.counter ~labels "pipeline.stage_runs" 1.0;
    if cached then Metrics.counter ~labels "pipeline.stage_cached" 1.0;
    Metrics.observe ~labels "pipeline.stage_ms" ms
  end;
  result

(** Front end of the driver pipeline: reading and parsing sources with
    recoverable errors.

    Every entry point used to clone its own parse-and-report helper
    and call [exit 1] on failure; library callers could not recover.
    Here errors are ordinary values: the CLI decides to exit, the
    batch compiler records the failure and keeps going. *)

type error = {
  origin : string;   (** file / source name *)
  stage : string;    (** "read", "lex", "parse", or a pipeline stage *)
  message : string;
}

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

val read_file : string -> (string, error) result
(** Reads the whole file; the channel is closed even when reading
    raises ([Fun.protect]), so the descriptor never leaks. *)

val parse : name:string -> string -> (Emsc_ir.Prog.t, error) result

val digest_text : string -> string
(** Hex content digest of source text (cache key material). *)

val digest_prog : Emsc_ir.Prog.t -> string
(** Hex digest of the canonical (unshared) marshalled form of an IR
    program, so programmatically-built kernels are content-addressed
    exactly like textual sources. *)

val load : Source.t -> (Emsc_ir.Prog.t * string, error) result
(** Program plus its content digest. *)

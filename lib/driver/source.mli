(** Where a compilation job's program comes from.

    The driver is consumed both by the CLI (textual programs in the
    affine input language) and by the kernel/bench layers (programs
    built directly in the IR); a [t] names either kind uniformly so
    the rest of the pipeline never cares. *)

type t =
  | File of string  (** path to a program in the affine input language *)
  | Stdin
  | Text of { name : string; text : string }
      (** in-memory source text; [name] is used in error messages and
          reports only — the cache key is the content *)
  | Program of { name : string; prog : Emsc_ir.Prog.t }
      (** an already-built IR program (kernel generators) *)

val name : t -> string

val file : string -> t
(** [file "-"] is {!Stdin}. *)

open Emsc_arith
open Emsc_ir
open Emsc_core
open Emsc_machine
open Emsc_obs

type memory_kind =
  | Phantom
  | Zeroed
  | Filled of (string * (int array -> float)) list
  | Pseudorandom

let no_params name = failwith ("unbound parameter " ^ name)

let zero_env _ = Zint.zero

let env_of_params params name =
  match List.assoc_opt name params with
  | Some v -> Zint.of_int v
  | None -> failwith ("parameter " ^ name ^ " needs a value")

let pseudorandom_fill m (p : Prog.t) =
  List.iter
    (fun (d : Prog.array_decl) ->
      Memory.fill m d.Prog.array_name (fun idx ->
        let h = Array.fold_left (fun acc i -> (acc * 31) + i) 17 idx in
        float_of_int (h mod 101) /. 101.0))
    p.Prog.arrays

let prepare ?(memory = Zeroed) ~param_env (p : Prog.t) =
  match memory with
  | Phantom -> Memory.create_phantom p ~param_env
  | Zeroed -> Memory.create p ~param_env
  | Filled inits ->
    let m = Memory.create p ~param_env in
    List.iter (fun (a, f) -> Memory.fill m a f) inits;
    m
  | Pseudorandom ->
    let m = Memory.create p ~param_env in
    pseudorandom_fill m p;
    m

type backend = [ `Seq | `Par of int ]

(* Parallel runs honor the machine's concurrent-blocks rule: at most
   [occupancy * num_mimd] arenas live at once, with occupancy derived
   from the block's effective scratchpad need (doubled when
   double-buffering keeps two windows resident).  The machine defaults
   to the paper's GPU; any hierarchy works through its staging-level
   projection. *)
let par_cfg ?(hierarchy = Hierarchy.gtx8800) ~jobs ~policy ~double_buffer
    ~track_ownership ~block_words ?(inter_tile_reuse = false) () =
  let g = Hierarchy.to_gpu_exn hierarchy in
  let occ =
    Timing.occupancy g
      ~smem_bytes_per_block:
        (Timing.effective_smem_bytes ~double_buffer
           ~word_bytes:g.Config.word_bytes block_words)
  in
  { (Emsc_runtime.Runtime.default_cfg ~jobs) with
    Emsc_runtime.Runtime.policy; double_buffer; track_ownership;
    max_concurrent_blocks = Some (occ * g.Config.num_mimd);
    block_words; inter_tile_reuse }

let execute ~prog ?local_ref ?(locals = []) ?(mode = Exec.Sampled 6) ?memory
    ?(param_env = no_params) ?on_global ?(backend = `Seq)
    ?(policy = Emsc_runtime.Runtime.Static) ?(double_buffer = false)
    ?(track_ownership = false) ?(block_words = 0) ?(inter_tile_reuse = false)
    ?hierarchy ast =
  let m = prepare ?memory ~param_env prog in
  List.iter (Memory.declare_local m) locals;
  let result =
    match backend with
    | `Seq ->
      Trace.span "driver.execute" @@ fun () ->
      Exec.run ~prog ?local_ref ~param_env ~memory:m ~mode ?on_global ast
    | `Par jobs ->
      (* parallel execution is Full-fidelity by construction: sampling
         extrapolates from iteration deltas, a sequential notion *)
      let cfg =
        par_cfg ?hierarchy ~jobs ~policy ~double_buffer ~track_ownership
          ~block_words ~inter_tile_reuse ()
      in
      Trace.span "driver.execute" @@ fun () ->
      Emsc_runtime.Runtime.run ~prog ?local_ref ~param_env ~memory:m
        ?on_global ~cfg ast
  in
  (m, result)

let simulate ?(mode = Exec.Sampled 6) ?(memory = Phantom) ?param_env
    ?on_global ?(backend = `Seq) ?policy ?(double_buffer = false)
    ?track_ownership ?hierarchy (c : Pipeline.compiled) =
  match (c.Pipeline.tiled, c.Pipeline.plan) with
  | Some t, Some plan ->
    let staged = c.Pipeline.options.Options.stage_data in
    let locals =
      if staged then
        List.map
          (fun (b : Plan.buffered) -> b.Plan.buffer.Alloc.local_name)
          plan.Plan.buffered
      else []
    in
    let local_ref =
      if staged && plan.Plan.buffered <> [] then Some (Plan.local_ref plan)
      else None
    in
    let block_words =
      match backend with
      | `Seq -> 0
      | `Par _ -> (
        let env = match param_env with Some e -> e | None -> no_params in
        match Zint.to_int_exn (Plan.total_footprint plan env) with
        | words -> max 0 words
        | exception _ -> 0)
    in
    let mode = match backend with `Seq -> mode | `Par _ -> Exec.Full in
    (* chain-aware scheduling is needed exactly when the generated
       movement carries delta guards — i.e. some buffer planned with
       inter-tile reuse *)
    let inter_tile_reuse =
      staged
      && List.exists
           (fun (b : Plan.buffered) -> b.Plan.reuse <> None)
           plan.Plan.buffered
    in
    execute ~prog:t.Pipeline.tiled_prog ?local_ref ~locals ~mode ~memory
      ?param_env ?on_global ~backend ?policy ~double_buffer ?track_ownership
      ~block_words ~inter_tile_reuse ?hierarchy t.Pipeline.ast
  | _ ->
    invalid_arg
      "Emsc_driver.Runner.simulate: compilation has no generated kernel \
       (compile with tiling)"

(* Record runtime events around [f] and analyze them.  Draining is
   non-destructive, so a later [Events.write_merged_chrome] still sees
   the run's tracks; [reset] beforehand keeps one profiled run per
   report.  The previous enabled state is restored on exit. *)
let with_runtime_report ?capacity f =
  let was_on = Events.enabled () in
  Events.reset ();
  Events.enable ?capacity ();
  Fun.protect ~finally:(fun () -> if not was_on then Events.disable ())
  @@ fun () ->
  let result = f () in
  (result, Runtime_report.build (Events.drain ()))

let reference ?memory ?(param_env = no_params) ?on_global (p : Prog.t) =
  let m = prepare ?memory ~param_env p in
  let counters =
    Trace.span "driver.reference" @@ fun () ->
    Reference.run p ~param_env m ?on_global ()
  in
  (m, counters)

(** Pass options for the canonical EMSC pipeline.

    The option record is the second half of every cache key (the first
    is the source digest), so each field either changes what a stage
    computes — and then appears in that stage's fingerprint — or is
    purely structural ({!stop}, {!field-stage_data}) and deliberately
    kept out, so e.g. [emsc deps] warms the cache for a later
    [emsc analyze] of the same file. *)

open Emsc_transform

type tile_search = {
  search_block : int option array;
      (** fixed block-level tile per dimension ([None] = untiled) *)
  search_ranges : (int * int) array;
      (** inclusive range of the searched memory-level tile per
          dimension; a degenerate range pins that dimension *)
  search_mem_limit_words : int;  (** scratchpad capacity *)
  search_threads : float;        (** P of the Section 4.3 model *)
  search_sync_cost : float;      (** S *)
  search_transfer_cost : float;  (** L *)
  search_max_evals : int;
  search_snap_pow2 : bool;
}

type tiling =
  | No_tiling
  | Spec of Tile.spec           (** caller-supplied tile sizes *)
  | Search of tile_search       (** Section 4.3 tile-size search *)

(** How far to run the pipeline.  Later stages are skipped entirely
    (not just cached): [emsc deps] must not fail because a program
    cannot be buffered. *)
type stop = Front_end | Dependences | Band | Full

type t = {
  arch : [ `Gpu | `Cell ];
  merge_per_array : bool;
  delta : float;                 (** Algorithm 1 threshold *)
  optimize_movement : bool;      (** Section 3.1.4 refinement *)
  inter_tile_reuse : bool;
      (** emit irredundant inter-tile movement: consecutive blocks of
          the innermost block loop move only the footprint delta, the
          rest stays resident in the scratchpad *)
  find_band : bool;              (** run the hyperplane search *)
  tiling : tiling;
  stage_data : bool;
      (** when false the plan is still computed but the generated
          kernel keeps every access in global memory (the bench
          harness's no-scratchpad baselines) *)
  machine : string;
      (** digest of the resolved [--machine] hierarchy ([""] = default
          machine); folded into the plan fingerprint so a warm cache
          never serves a plan computed for a different machine *)
  stop : stop;
}

val default : t
(** GPU arch, delta 0.3, no movement optimization, band search on, no
    tiling, staging on, full pipeline. *)

val tiling_fingerprint : t -> string
(** Stable rendering of the tiling request (tile / tilesearch stage
    keys). *)

val plan_fingerprint : t -> string
(** Everything {!Emsc_core.Plan.plan_block} depends on: arch, merge,
    delta, movement optimization, inter-tile reuse, the machine
    digest, and the tiling (the plan runs on the tiled program). *)

type error = {
  origin : string;
  stage : string;
  message : string;
}

let error_message e = Printf.sprintf "%s: %s error: %s" e.origin e.stage e.message
let pp_error fmt e = Format.pp_print_string fmt (error_message e)

let read_file path =
  match open_in_bin path with
  | ic ->
    (try
       Ok
         (Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> In_channel.input_all ic))
     with Sys_error m -> Error { origin = path; stage = "read"; message = m })
  | exception Sys_error m ->
    Error { origin = path; stage = "read"; message = m }

let parse ~name text =
  match Emsc_lang.Parser.parse text with
  | p -> Ok p
  | exception Emsc_lang.Parser.Error m ->
    Error { origin = name; stage = "parse"; message = m }
  | exception Emsc_lang.Lexer.Error m ->
    Error { origin = name; stage = "lex"; message = m }

let digest_text text = Digest.to_hex (Digest.string text)

let digest_prog prog =
  Digest.to_hex (Digest.string (Marshal.to_string prog [ Marshal.No_sharing ]))

let load source =
  let parsed name text =
    Result.map (fun p -> (p, digest_text text)) (parse ~name text)
  in
  match (source : Source.t) with
  | Source.Stdin -> parsed "<stdin>" (In_channel.input_all In_channel.stdin)
  | Source.File path ->
    (match read_file path with
     | Error e -> Error e
     | Ok text -> parsed path text)
  | Source.Text { name; text } -> parsed name text
  | Source.Program { name = _; prog } -> Ok (prog, digest_prog prog)

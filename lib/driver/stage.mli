(** The typed pass abstraction: a named pure function from one
    pipeline artifact type to the next.

    Stages compose with {!(>>>)}; {!exec} is the single place where a
    stage run is traced (an [Emsc_obs.Trace] span named
    ["driver.<stage>"]), timed, counted against the memo cache, and
    reported, so every consumer of the pipeline gets identical
    observability for free. *)

type ('a, 'b) t = private {
  name : string;
  run : 'a -> 'b;  (** must be pure: results are memoized by content *)
}

val v : string -> ('a -> 'b) -> ('a, 'b) t

val ( >>> ) : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t
(** [a >>> b] runs [a] then [b]; the composite is named
    ["a>>b"]. *)

type timing = {
  stage : string;
  ms : float;
  cacheable : bool;  (** a live cache was consulted *)
  cached : bool;     (** ... and hit *)
}

val timing_json : timing -> Emsc_obs.Json.t

val exec :
  ?cache:Cache.t * string ->
  record:(timing -> unit) ->
  ('a, 'b) t -> 'a -> 'b
(** Run the stage: inside a trace span, through the memo cache when
    [(cache, key)] is given, reporting a {!timing} to [record]. *)

open Emsc_transform

type tile_search = {
  search_block : int option array;
  search_ranges : (int * int) array;
  search_mem_limit_words : int;
  search_threads : float;
  search_sync_cost : float;
  search_transfer_cost : float;
  search_max_evals : int;
  search_snap_pow2 : bool;
}

type tiling =
  | No_tiling
  | Spec of Tile.spec
  | Search of tile_search

type stop = Front_end | Dependences | Band | Full

type t = {
  arch : [ `Gpu | `Cell ];
  merge_per_array : bool;
  delta : float;
  optimize_movement : bool;
  inter_tile_reuse : bool;
  find_band : bool;
  tiling : tiling;
  stage_data : bool;
  machine : string;
  stop : stop;
}

let default =
  { arch = `Gpu;
    merge_per_array = false;
    delta = 0.3;
    optimize_movement = false;
    inter_tile_reuse = false;
    find_band = true;
    tiling = No_tiling;
    stage_data = true;
    machine = "";
    stop = Full }

let opt_int = function None -> "_" | Some n -> string_of_int n

let spec_fingerprint spec =
  String.concat ";"
    (Array.to_list
       (Array.map
          (fun (d : Tile.dim_spec) ->
            Printf.sprintf "%s,%s,%s" (opt_int d.Tile.block)
              (opt_int d.Tile.mem) (opt_int d.Tile.thread))
          spec))

let tiling_fingerprint t =
  match t.tiling with
  | No_tiling -> "none"
  | Spec s -> "spec:" ^ spec_fingerprint s
  | Search ts ->
    Printf.sprintf "search:block=%s;ranges=%s;mem=%d;P=%g;S=%g;L=%g;evals=%d;pow2=%b"
      (String.concat ";" (Array.to_list (Array.map opt_int ts.search_block)))
      (String.concat ";"
         (Array.to_list
            (Array.map (fun (lo, hi) -> Printf.sprintf "%d-%d" lo hi)
               ts.search_ranges)))
      ts.search_mem_limit_words ts.search_threads ts.search_sync_cost
      ts.search_transfer_cost ts.search_max_evals ts.search_snap_pow2

let plan_fingerprint t =
  Printf.sprintf "arch=%s;merge=%b;delta=%g;optmove=%b;intertile=%b;machine=%s;%s"
    (match t.arch with `Gpu -> "gpu" | `Cell -> "cell")
    t.merge_per_array t.delta t.optimize_movement t.inter_tile_reuse
    t.machine (tiling_fingerprint t)

open Emsc_arith
open Emsc_linalg
open Emsc_poly

exception Gave_up

type opt_result =
  | Empty
  | Unbounded
  | Opt of Zint.t * Vec.t

let default_max_nodes = 20_000

(* Integer value of an integer objective row at an integer point. *)
let eval_obj (obj : Vec.t) (pt : Vec.t) =
  let n = Array.length obj - 1 in
  let acc = ref obj.(n) in
  for i = 0 to n - 1 do
    acc := Zint.add !acc (Zint.mul obj.(i) pt.(i))
  done;
  !acc

let point_of_q qpt = Array.map (fun q -> Q.num q) qpt

let first_fractional qpt =
  let n = Array.length qpt in
  let rec go i =
    if i >= n then None
    else if Q.is_integer qpt.(i) then go (i + 1)
    else Some i
  in
  go 0

(* branch constraint rows: x_j <= floor(v)  /  x_j >= ceil(v) *)
let branch_rows dim j v =
  let le = Vec.make (dim + 1) in
  le.(j) <- Zint.minus_one;
  le.(dim) <- Q.floor v;
  let ge = Vec.make (dim + 1) in
  ge.(j) <- Zint.one;
  ge.(dim) <- Zint.neg (Q.ceil v);
  (le, ge)

(* Depth-first branch and bound; finds an integer point minimizing
   [obj], or detects emptiness/unboundedness. *)
let minimize_impl ?(max_nodes = default_max_nodes) p obj =
  if Array.length obj <> Poly.dim p + 1 then invalid_arg "Ilp.minimize";
  let dim = Poly.dim p in
  let qobj = Simplex.obj_of_vec obj in
  let nodes = ref 0 in
  let best : (Zint.t * Vec.t) option ref = ref None in
  let unbounded = ref false in
  let found_any = ref false in
  let rec search node =
    if !unbounded then ()
    else begin
      incr nodes;
      if !nodes > max_nodes then raise Gave_up;
      if not (Poly.is_trivially_empty node) then begin
        let eqs, ineqs = Poly.constraints node in
        match Simplex.minimize ~dim ~eqs ~ineqs ~obj:qobj with
        | Simplex.Infeasible -> ()
        | Simplex.Unbounded ->
          (* LP relaxation unbounded: the ILP is unbounded iff the node
             has an integer point (rational recession direction scales
             to an integer one). *)
          if find_point node then unbounded := true
        | Simplex.Optimal (v, qpt) ->
          let prune =
            match !best with
            | Some (bv, _) -> Q.compare v (Q.of_zint bv) >= 0
            | None -> false
          in
          if not prune then begin
            match first_fractional qpt with
            | None ->
              let pt = point_of_q qpt in
              found_any := true;
              let value = eval_obj obj pt in
              (match !best with
               | Some (bv, _) when Zint.compare bv value <= 0 -> ()
               | Some _ | None -> best := Some (value, pt))
            | Some j ->
              let le, ge = branch_rows dim j qpt.(j) in
              search (Poly.add_ineq node le);
              search (Poly.add_ineq node ge)
          end
      end
    end
  and find_point node =
    (* feasibility-only search inside the same node budget *)
    incr nodes;
    if !nodes > max_nodes then raise Gave_up;
    if Poly.is_trivially_empty node then false
    else begin
      let eqs, ineqs = Poly.constraints node in
      match Simplex.feasible_point ~dim ~eqs ~ineqs with
      | None -> false
      | Some qpt -> begin
        match first_fractional qpt with
        | None -> true
        | Some j ->
          let le, ge = branch_rows dim j qpt.(j) in
          find_point (Poly.add_ineq node le)
          || find_point (Poly.add_ineq node ge)
      end
    end
  in
  let bump_nodes () =
    if Emsc_obs.Prof.enabled () then
      Emsc_obs.Prof.add "pip.nodes" (float_of_int !nodes)
  in
  (match search p with
   | () -> bump_nodes ()
   | exception e -> bump_nodes (); raise e);
  if !unbounded then Unbounded
  else
    match !best with
    | Some (v, pt) -> Opt (v, pt)
    | None -> Empty

(* flag-tested wrappers so the disabled path allocates no closure *)
let minimize ?max_nodes p obj =
  if not (Emsc_obs.Prof.enabled ()) then minimize_impl ?max_nodes p obj
  else
    Emsc_obs.Prof.probe "pip.minimize" (fun () ->
      minimize_impl ?max_nodes p obj)

let maximize ?max_nodes p obj =
  match minimize ?max_nodes p (Vec.neg obj) with
  | Opt (v, pt) -> Opt (Zint.neg v, pt)
  | (Empty | Unbounded) as r -> r

let int_point_impl ?(max_nodes = default_max_nodes) p =
  let dim = Poly.dim p in
  let nodes = ref 0 in
  let rec go node =
    incr nodes;
    if !nodes > max_nodes then raise Gave_up;
    if Poly.is_trivially_empty node then None
    else begin
      let eqs, ineqs = Poly.constraints node in
      match Simplex.feasible_point ~dim ~eqs ~ineqs with
      | None -> None
      | Some qpt -> begin
        match first_fractional qpt with
        | None -> Some (point_of_q qpt)
        | Some j ->
          let le, ge = branch_rows dim j qpt.(j) in
          (match go (Poly.add_ineq node le) with
           | Some _ as r -> r
           | None -> go (Poly.add_ineq node ge))
      end
    end
  in
  let bump_nodes () =
    if Emsc_obs.Prof.enabled () then
      Emsc_obs.Prof.add "pip.nodes" (float_of_int !nodes)
  in
  match go p with
  | r -> bump_nodes (); r
  | exception e -> bump_nodes (); raise e

let int_point ?max_nodes p =
  if not (Emsc_obs.Prof.enabled ()) then int_point_impl ?max_nodes p
  else
    Emsc_obs.Prof.probe "pip.int_point" (fun () -> int_point_impl ?max_nodes p)

let is_int_empty ?max_nodes p = int_point ?max_nodes p = None

let lexmin_impl ?max_nodes p =
  let dim = Poly.dim p in
  let rec fix j node acc =
    if j >= dim then Some (Array.of_list (List.rev acc))
    else begin
      let obj = Vec.unit (dim + 1) j in
      match minimize ?max_nodes node obj with
      | Empty -> None
      | Unbounded -> raise Gave_up
      | Opt (v, _) ->
        let eq = Vec.make (dim + 1) in
        eq.(j) <- Zint.one;
        eq.(dim) <- Zint.neg v;
        fix (j + 1) (Poly.add_eq node eq) (v :: acc)
    end
  in
  fix 0 p []

let lexmin ?max_nodes p =
  if not (Emsc_obs.Prof.enabled ()) then lexmin_impl ?max_nodes p
  else Emsc_obs.Prof.probe "pip.lexmin" (fun () -> lexmin_impl ?max_nodes p)

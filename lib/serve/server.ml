module P = Protocol
module J = Emsc_obs.Json
module Metrics = Emsc_obs.Metrics
module Trace = Emsc_obs.Trace
module Pipeline = Emsc_driver.Pipeline
module Cache = Emsc_driver.Cache
module Source = Emsc_driver.Source
module Frontend = Emsc_driver.Frontend
module Options = Emsc_driver.Options
module Hierarchy = Emsc_machine.Hierarchy

type addr = [ `Unix of string | `Tcp of string * int ]

type config = {
  addr : addr;
  workers : int;
  queue_capacity : int;
  default_timeout_ms : float;
  max_line_bytes : int;
  cache : Cache.t;
  default_machine : string;
  install_signal_handlers : bool;
  log : string -> unit;
}

let default_workers () =
  let d = try Domain.recommended_domain_count () with _ -> 2 in
  max 1 (min 4 (d - 1))

let config ?workers ?(queue_capacity = 64) ?(default_timeout_ms = 0.0)
    ?(max_line_bytes = P.default_max_line_bytes) ?(cache = Cache.off)
    ?(default_machine = "gtx8800") ?(install_signal_handlers = false)
    ?(log = fun _ -> ()) addr =
  let workers =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  { addr; workers; queue_capacity; default_timeout_ms; max_line_bytes;
    cache; default_machine; install_signal_handlers; log }

type stats = {
  served : int;       (** requests answered [ok:true] *)
  rejected : int;     (** requests answered with a typed error *)
  connections : int;  (** connections accepted over the lifetime *)
}

(* --- request -> pipeline job --------------------------------------------- *)

let spec_of_lists ~depth ~block ~mem ~thread =
  let get a j =
    if j < Array.length a && a.(j) > 0 then Some a.(j) else None
  in
  Array.init depth (fun j ->
    { Emsc_transform.Tile.block = get block j; mem = get mem j;
      thread = get thread j })

(* Both the daemon and the bit-identity tests construct compilations
   through this one function, so "the daemon's result equals a direct
   Pipeline.compile" is a comparison of two compiles of the very same
   job. *)
let job_of_request ~default_machine ~name ~text (o : P.options_req) =
  let machine = if o.P.o_machine = "" then default_machine else o.P.o_machine in
  match Hierarchy.load machine with
  | Error m -> Error (P.reject "bad_request" (Printf.sprintf "machine: %s" m))
  | Ok hier ->
    let capacity_words = Hierarchy.staging_capacity_words hier in
    let base =
      { Options.default with
        arch = o.P.o_arch;
        merge_per_array = o.P.o_merge_per_array;
        delta = o.P.o_delta;
        optimize_movement = o.P.o_optimize_movement;
        inter_tile_reuse = o.P.o_inter_tile_reuse;
        machine = Hierarchy.digest hier }
    in
    if o.P.o_block = [] && o.P.o_mem = [] && o.P.o_thread = [] then
      Ok (Pipeline.job ~options:base (Source.Text { name; text }),
          capacity_words)
    else begin
      match Frontend.load (Source.Text { name; text }) with
      | Error e ->
        Error (P.reject "compile_error" (Frontend.error_message e))
      | Ok (prog, _digest) ->
        (match prog.Emsc_ir.Prog.stmts with
         | [ s ] ->
           let arr l = Array.of_list l in
           let spec =
             spec_of_lists ~depth:s.Emsc_ir.Prog.depth
               ~block:(arr o.P.o_block) ~mem:(arr o.P.o_mem)
               ~thread:(arr o.P.o_thread)
           in
           let options =
             { base with
               Options.find_band = false; tiling = Options.Spec spec }
           in
           Ok (Pipeline.job ~options (Source.Program { name; prog }),
               capacity_words)
         | _ ->
           Error
             (P.reject "bad_request"
                "tile specs (block/mem/thread) require a \
                 single-statement program"))
    end

(* --- request execution ---------------------------------------------------- *)

(* Runs one already-admitted operation.  [Ok (result, server)] is the
   deterministic payload plus the non-deterministic per-request server
   fields; rejects carry typed codes the client can branch on. *)
let execute ~cache ~default_machine (op : P.op) =
  let compile_op ~name ~text ~options ~payload_of =
    match job_of_request ~default_machine ~name ~text options with
    | Error r -> Error r
    | Ok (jb, capacity_words) ->
      (match Pipeline.compile ~cache jb with
       | Error e -> Error (P.reject "compile_error" (Frontend.error_message e))
       | Ok c ->
         (match payload_of ~capacity_words c with
          | payload ->
            Ok
              ( payload,
                [ ("cache_hits", J.Int c.Pipeline.cache_hits);
                  ("cache_misses", J.Int c.Pipeline.cache_misses) ] )
          | exception Failure m -> Error (P.reject "server_error" m)))
  in
  match op with
  | P.Compile { name; text; options } ->
    compile_op ~name ~text ~options ~payload_of:P.compile_result
  | P.Analyze { name; text; options } ->
    compile_op ~name ~text ~options ~payload_of:P.analyze_result
  | P.Check { fuzz; seed } ->
    (match Emsc_check.Fuzz.run ~fuzz ~seed () with
     | report -> Ok (Emsc_check.Fuzz.report_json report, [])
     | exception e ->
       Error (P.reject "server_error" (Printexc.to_string e)))
  | P.Status | P.Shutdown ->
    (* answered synchronously by the event loop, never queued *)
    Error (P.reject "server_error" "status/shutdown are not queueable")

(* --- connection state ----------------------------------------------------- *)

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_in : Buffer.t;           (* bytes read, not yet split into lines *)
  c_out : Buffer.t;          (* encoded responses awaiting the socket *)
  mutable c_out_off : int;   (* prefix of [c_out] already written *)
  mutable c_eof : bool;      (* stop reading (EOF or protocol error) *)
  mutable c_close : bool;    (* close once [c_out] drains *)
}

type task = {
  t_conn : int;
  t_req : P.request;
  t_arrival : float;
  t_deadline : float option;
}

let set_nonblock fd = try Unix.set_nonblock fd with Unix.Unix_error _ -> ()

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let listen_socket = function
  | `Unix path ->
    (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | `Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ ->
        (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
         with Not_found -> Unix.inet_addr_loopback)
    in
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

(* --- the daemon ----------------------------------------------------------- *)

let run (cfg : config) : stats =
  let listen_fd = listen_socket cfg.addr in
  set_nonblock listen_fd;
  (* a write to a disconnected client must be an EPIPE error, not a
     process-killing signal *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;

  (* self-pipe: workers (and signal handlers) wake the select loop *)
  let wake_r, wake_w = Unix.pipe () in
  set_nonblock wake_r;
  set_nonblock wake_w;
  let wake () =
    try ignore (Unix.write wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  in

  let drain_requested = Atomic.make false in
  if cfg.install_signal_handlers then begin
    let handler =
      Sys.Signal_handle (fun _ -> Atomic.set drain_requested true; wake ())
    in
    Sys.set_signal Sys.sigterm handler;
    Sys.set_signal Sys.sigint handler
  end;

  (* work queue: event loop pushes, worker domains pop *)
  let qmutex = Mutex.create () in
  let qcond = Condition.create () in
  let queue : task Queue.t = Queue.create () in
  let stop_workers = ref false in
  let in_flight = ref 0 in

  (* done queue: workers push encoded response lines back *)
  let dmutex = Mutex.create () in
  let done_q : (int * string * bool) Queue.t = Queue.create () in

  let observe_reject code =
    Metrics.counter ~labels:[ ("code", code) ] "serve.rejects" 1.0
  in

  let process (t : task) =
    let now = Unix.gettimeofday () in
    let queue_ms = (now -. t.t_arrival) *. 1000.0 in
    Metrics.observe "serve.queue_ms" queue_ms;
    let expired =
      match t.t_deadline with Some d -> now > d | None -> false
    in
    let id = t.t_req.P.req_id in
    if expired then begin
      observe_reject "timeout";
      ( P.error_response ~id
          (P.reject "timeout"
             (Printf.sprintf "request spent %.0f ms queued, past its deadline"
                queue_ms)),
        false )
    end
    else begin
      let opn = P.op_name t.t_req.P.op in
      let result =
        Trace.span ("serve." ^ opn) (fun () ->
          execute ~cache:cfg.cache ~default_machine:cfg.default_machine
            t.t_req.P.op)
      in
      let exec_ms = (Unix.gettimeofday () -. now) *. 1000.0 in
      Metrics.observe "serve.exec_ms" exec_ms;
      Metrics.observe ~labels:[ ("op", opn) ] "serve.request_ms"
        (queue_ms +. exec_ms);
      match result with
      | Ok (payload, server) ->
        Metrics.counter ~labels:[ ("op", opn) ] "serve.requests" 1.0;
        let server =
          server
          @ [ ("queue_ms", J.Float queue_ms); ("exec_ms", J.Float exec_ms) ]
        in
        (P.ok_response ~id ~server payload, true)
      | Error r ->
        observe_reject r.P.code;
        (P.error_response ~id r, false)
    end
  in

  let worker () =
    let rec loop () =
      Mutex.lock qmutex;
      while Queue.is_empty queue && not !stop_workers do
        Condition.wait qcond qmutex
      done;
      if Queue.is_empty queue then Mutex.unlock qmutex
      else begin
        let t = Queue.pop queue in
        incr in_flight;
        Mutex.unlock qmutex;
        let line, ok =
          try process t
          with e ->
            ( P.error_response ~id:t.t_req.P.req_id
                (P.reject "server_error" (Printexc.to_string e)),
              false )
        in
        Mutex.lock dmutex;
        Queue.push (t.t_conn, line, ok) done_q;
        Mutex.unlock dmutex;
        Mutex.lock qmutex;
        decr in_flight;
        Mutex.unlock qmutex;
        wake ();
        loop ()
      end
    in
    loop ()
  in
  let domains = Array.init cfg.workers (fun _ -> Domain.spawn worker) in

  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_conn = ref 0 in
  let served = ref 0 in
  let rejected = ref 0 in
  let accepted = ref 0 in
  let outstanding = ref 0 in   (* queued or executing, response not yet seen *)
  let draining = ref false in
  let t_start = Unix.gettimeofday () in

  let send c line =
    Buffer.add_string c.c_out line;
    Buffer.add_char c.c_out '\n'
  in

  let send_reject c ~id r =
    observe_reject r.P.code;
    incr rejected;
    send c (P.error_response ~id r)
  in

  (* the id of a line that failed validation, for the error echo *)
  let id_of_line line =
    match J.of_string line with
    | Ok j ->
      (match J.member "id" j with Some (J.Str s) -> s | _ -> "")
    | Error _ -> ""
  in

  let queue_depth () =
    Mutex.lock qmutex;
    let d = Queue.length queue and f = !in_flight in
    Mutex.unlock qmutex;
    (d, f)
  in

  let status_json () =
    let depth, flight = queue_depth () in
    J.Obj
      [ ("queue_depth", J.Int depth);
        ("in_flight", J.Int flight);
        ("outstanding", J.Int !outstanding);
        ("workers", J.Int cfg.workers);
        ("queue_capacity", J.Int cfg.queue_capacity);
        ("draining", J.Bool !draining);
        ("served", J.Int !served);
        ("rejected", J.Int !rejected);
        ("connections", J.Int !accepted);
        ( "uptime_ms",
          J.Float ((Unix.gettimeofday () -. t_start) *. 1000.0) );
        ("cache", Cache.stats_json cfg.cache) ]
  in

  let begin_drain () =
    if not !draining then begin
      draining := true;
      cfg.log "draining: no new work accepted";
      (* stop accepting; connections stay open to collect responses *)
      close_noerr listen_fd
    end
  in

  let handle_request c (req : P.request) =
    match req.P.op with
    | P.Status ->
      incr served;
      send c (P.ok_response ~id:req.P.req_id (status_json ()))
    | P.Shutdown ->
      incr served;
      send c (P.ok_response ~id:req.P.req_id (J.Obj [ ("draining", J.Bool true) ]));
      begin_drain ()
    | P.Compile _ | P.Analyze _ | P.Check _ ->
      if !draining then
        send_reject c ~id:req.P.req_id
          (P.reject "draining" "daemon is shutting down")
      else begin
        let now = Unix.gettimeofday () in
        let timeout_ms =
          match req.P.timeout_ms with
          | Some ms -> ms
          | None -> cfg.default_timeout_ms
        in
        let deadline =
          if timeout_ms > 0.0 then Some (now +. (timeout_ms /. 1000.0))
          else None
        in
        let t =
          { t_conn = c.c_id; t_req = req; t_arrival = now;
            t_deadline = deadline }
        in
        Mutex.lock qmutex;
        let depth = Queue.length queue in
        let admitted = depth < cfg.queue_capacity in
        if admitted then begin
          Queue.push t queue;
          Metrics.gauge "serve.queue_depth" (float_of_int (depth + 1));
          Condition.signal qcond
        end;
        Mutex.unlock qmutex;
        if admitted then incr outstanding
        else
          send_reject c ~id:req.P.req_id
            (P.reject "queue_full"
               (Printf.sprintf "queue at capacity (%d); retry later"
                  cfg.queue_capacity))
      end
  in

  let handle_line c line =
    match P.parse_request line with
    | Error r -> send_reject c ~id:(id_of_line line) r
    | Ok req -> handle_request c req
  in

  (* split [c_in] on newlines and process each complete line; reject the
     connection when a line grows past the cap (the alternative is
     buffering without bound on behalf of a broken client) *)
  let drain_input c =
    let data = Buffer.contents c.c_in in
    let n = String.length data in
    let pos = ref 0 in
    (try
       while !pos < n do
         match String.index_from data !pos '\n' with
         | nl ->
           let line = String.sub data !pos (nl - !pos) in
           pos := nl + 1;
           if String.length line > cfg.max_line_bytes then begin
             send_reject c ~id:""
               (P.reject "oversized_line"
                  (Printf.sprintf "request line exceeds %d bytes"
                     cfg.max_line_bytes));
             c.c_eof <- true;
             c.c_close <- true;
             raise Exit
           end
           else if line <> "" then handle_line c line
         | exception Not_found ->
           if n - !pos > cfg.max_line_bytes then begin
             send_reject c ~id:""
               (P.reject "oversized_line"
                  (Printf.sprintf "request line exceeds %d bytes"
                     cfg.max_line_bytes));
             c.c_eof <- true;
             c.c_close <- true;
             pos := n;
             raise Exit
           end;
           raise Exit
       done
     with Exit -> ());
    let rest = String.sub data !pos (n - !pos) in
    Buffer.clear c.c_in;
    Buffer.add_string c.c_in rest
  in

  let close_conn c =
    Hashtbl.remove conns c.c_id;
    close_noerr c.c_fd
  in

  let read_buf = Bytes.create 65536 in
  let read_conn c =
    match Unix.read c.c_fd read_buf 0 (Bytes.length read_buf) with
    | 0 ->
      c.c_eof <- true;
      (* whatever already arrived still gets parsed and answered *)
      drain_input c;
      if Buffer.length c.c_out = 0 && !outstanding = 0 then close_conn c
      else c.c_close <- true
    | n ->
      Buffer.add_subbytes c.c_in read_buf 0 n;
      drain_input c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
    | exception Unix.Unix_error (_, _, _) ->
      c.c_eof <- true;
      c.c_close <- true
  in

  let write_conn c =
    let len = Buffer.length c.c_out - c.c_out_off in
    if len > 0 then begin
      let chunk = Buffer.to_bytes c.c_out in
      match Unix.write c.c_fd chunk c.c_out_off len with
      | n ->
        c.c_out_off <- c.c_out_off + n;
        if c.c_out_off >= Buffer.length c.c_out then begin
          Buffer.clear c.c_out;
          c.c_out_off <- 0
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
      | exception Unix.Unix_error (_, _, _) ->
        Buffer.clear c.c_out;
        c.c_out_off <- 0;
        c.c_eof <- true;
        c.c_close <- true
    end;
    if Buffer.length c.c_out = 0 && c.c_close then close_conn c
  in

  let accept_new () =
    let rec loop () =
      match Unix.accept listen_fd with
      | fd, _ ->
        set_nonblock fd;
        incr accepted;
        incr next_conn;
        let c =
          { c_id = !next_conn; c_fd = fd; c_in = Buffer.create 256;
            c_out = Buffer.create 256; c_out_off = 0; c_eof = false;
            c_close = false }
        in
        Hashtbl.replace conns c.c_id c;
        loop ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
      | exception Unix.Unix_error (_, _, _) -> ()
    in
    loop ()
  in

  let deliver_done () =
    let batch = ref [] in
    Mutex.lock dmutex;
    while not (Queue.is_empty done_q) do
      batch := Queue.pop done_q :: !batch
    done;
    Mutex.unlock dmutex;
    List.iter
      (fun (conn_id, line, ok) ->
        decr outstanding;
        if ok then incr served else incr rejected;
        match Hashtbl.find_opt conns conn_id with
        | Some c -> send c line
        | None -> ())   (* client hung up before its answer was ready *)
      (List.rev !batch)
  in

  let drain_wake () =
    let b = Bytes.create 64 in
    let rec loop () =
      match Unix.read wake_r b 0 64 with
      | n when n > 0 -> loop ()
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    loop ()
  in

  cfg.log
    (match cfg.addr with
     | `Unix p -> Printf.sprintf "listening on unix socket %s" p
     | `Tcp (h, p) -> Printf.sprintf "listening on %s:%d" h p);

  let finished = ref false in
  while not !finished do
    if Atomic.get drain_requested then begin_drain ();
    let reads =
      wake_r
      :: (if !draining then [] else [ listen_fd ])
      @ Hashtbl.fold
          (fun _ c acc -> if c.c_eof then acc else c.c_fd :: acc)
          conns []
    in
    let writes =
      Hashtbl.fold
        (fun _ c acc ->
          if Buffer.length c.c_out - c.c_out_off > 0 then c.c_fd :: acc
          else acc)
        conns []
    in
    (match Unix.select reads writes [] 0.2 with
     | rs, ws, _ ->
       if List.mem wake_r rs then drain_wake ();
       deliver_done ();
       if not !draining && List.mem listen_fd rs then accept_new ();
       (* snapshot: handlers mutate [conns] *)
       let by_fd =
         Hashtbl.fold (fun _ c acc -> (c.c_fd, c) :: acc) conns []
       in
       List.iter
         (fun fd ->
           match List.assoc_opt fd by_fd with
           | Some c when not c.c_eof -> read_conn c
           | _ -> ())
         rs;
       List.iter
         (fun fd ->
           match List.assoc_opt fd by_fd with
           | Some c -> write_conn c
           | None -> ())
         ws
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    deliver_done ();
    (* flush anything newly buffered to sockets that can take it *)
    Hashtbl.iter (fun _ c -> write_conn c) conns;
    (* closed clients with nothing pending *)
    let dead =
      Hashtbl.fold
        (fun _ c acc ->
          if c.c_eof && Buffer.length c.c_out = 0 && !outstanding = 0 then
            c :: acc
          else acc)
        conns []
    in
    List.iter close_conn dead;
    if !draining then begin
      let depth, flight = queue_depth () in
      let pending_out =
        Hashtbl.fold
          (fun _ c acc -> acc + Buffer.length c.c_out - c.c_out_off)
          conns 0
      in
      if depth = 0 && flight = 0 && !outstanding = 0 && pending_out = 0 then
        finished := true
    end
  done;

  (* graceful exit: stop the pool, join, release every descriptor *)
  Mutex.lock qmutex;
  stop_workers := true;
  Condition.broadcast qcond;
  Mutex.unlock qmutex;
  Array.iter Domain.join domains;
  Hashtbl.iter (fun _ c -> close_noerr c.c_fd) conns;
  Hashtbl.reset conns;
  close_noerr wake_r;
  close_noerr wake_w;
  (match cfg.addr with
   | `Unix path ->
     (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ())
   | `Tcp _ -> ());
  cfg.log
    (Printf.sprintf "drained: %d served, %d rejected, %d connection(s)"
       !served !rejected !accepted);
  { served = !served; rejected = !rejected; connections = !accepted }

module P = Protocol
module J = Emsc_obs.Json

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let sockaddr_of = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ ->
        (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
         with Not_found -> Unix.inet_addr_loopback)
    in
    Unix.ADDR_INET (inet, port)

(* Connect, retrying while the daemon is still binding its socket. *)
let connect ?(retries = 50) ?(retry_delay_s = 0.1) addr =
  let sa = sockaddr_of addr in
  let rec attempt n =
    let domain = Unix.domain_of_sockaddr sa in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () ->
      Ok { fd; ic = Unix.in_channel_of_descr fd;
           oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match e with
       | (Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN) when n > 0 ->
         Unix.sleepf retry_delay_s;
         attempt (n - 1)
       | _ -> Error (Unix.error_message e))
  in
  attempt retries

let close t =
  (* channels share [fd]; closing the channel closes the descriptor *)
  (try close_out_noerr t.oc with _ -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ())

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t =
  match input_line t.ic with
  | line -> Ok line
  | exception End_of_file -> Error "connection closed by daemon"
  | exception Sys_error m -> Error m

type response = {
  resp_id : string;
  ok : bool;
  result : J.t option;     (** present when [ok] *)
  server : J.t option;     (** per-request server-side facts *)
  error : P.reject option; (** present when [not ok] *)
  raw : string;            (** the exact line off the wire *)
}

let parse_response raw =
  match J.of_string raw with
  | Error m -> Error (Printf.sprintf "bad response JSON: %s" m)
  | Ok j ->
    let str name =
      match J.member name j with Some (J.Str s) -> s | _ -> ""
    in
    (match J.member "ok" j with
     | Some (J.Bool ok) ->
       let error =
         match J.member "error" j with
         | Some e ->
           let field n =
             match J.member n e with Some (J.Str s) -> s | _ -> ""
           in
           Some (P.reject (field "code") (field "message"))
         | None -> None
       in
       Ok
         { resp_id = str "id"; ok; result = J.member "result" j;
           server = J.member "server" j; error; raw }
     | _ -> Error "response has no \"ok\" field")

let roundtrip t (req : P.request) =
  send_line t (P.request_line req);
  match recv_line t with
  | Error m -> Error m
  | Ok raw -> parse_response raw

(* one-shot helper: connect, ask, close *)
let once ?retries ?retry_delay_s addr req =
  match connect ?retries ?retry_delay_s addr with
  | Error m -> Error m
  | Ok t ->
    let r = roundtrip t req in
    close t;
    r

(** The [emsc serve] daemon: compile-as-a-service over the
    {!Protocol} wire format.

    {v
            clients (unix socket / loopback TCP, one JSON line per request)
               │
        ┌──────▼──────────────────────────────────────────────┐
        │ event loop (select): accept, split lines, validate, │
        │ answer status/shutdown, apply backpressure          │
        └──────┬──────────────────────────────────────────────┘
               │ bounded task queue (queue_full reject past capacity)
        ┌──────▼──────────────┐
        │ worker domain pool  │── Pipeline.compile under Trace/Metrics
        └──────┬──────────────┘
               │ shared Driver.Cache (LRU memory layer + atomic disk)
               ▼
         responses, delivered by the event loop in arrival order
    v}

    One thread (the caller of {!run}) owns all socket I/O; worker
    domains only compute.  Admitted requests carry their arrival time:
    a worker that pops a request past its deadline answers a
    ["timeout"] reject without compiling (timeouts bound queueing, not
    an in-flight compile — a compile cannot be safely preempted).
    [shutdown] (or SIGTERM when [install_signal_handlers]) starts a
    graceful drain: the listen socket closes, queued and in-flight
    work finishes, every response flushes, the pool joins, and {!run}
    returns. *)

type addr = [ `Unix of string | `Tcp of string * int ]

type config = {
  addr : addr;
  workers : int;             (** worker domains executing requests *)
  queue_capacity : int;      (** admitted-but-unstarted request bound *)
  default_timeout_ms : float;(** [<= 0]: no deadline unless the request sets one *)
  max_line_bytes : int;      (** request lines past this are rejected *)
  cache : Emsc_driver.Cache.t;  (** shared across workers; make it LRU-capped *)
  default_machine : string;  (** when a request names no machine *)
  install_signal_handlers : bool;
      (** SIGTERM/SIGINT → graceful drain.  Leave [false] when
          embedding the server in a test or bench process. *)
  log : string -> unit;
}

val config :
  ?workers:int ->
  ?queue_capacity:int ->
  ?default_timeout_ms:float ->
  ?max_line_bytes:int ->
  ?cache:Emsc_driver.Cache.t ->
  ?default_machine:string ->
  ?install_signal_handlers:bool ->
  ?log:(string -> unit) ->
  addr -> config
(** Defaults: workers from [Domain.recommended_domain_count] (capped
    at 4), queue capacity 64, no timeout, 1 MiB lines, no cache,
    machine ["gtx8800"], no signal handlers, silent. *)

type stats = {
  served : int;       (** requests answered [ok:true] *)
  rejected : int;     (** requests answered with a typed error *)
  connections : int;  (** connections accepted over the lifetime *)
}

val run : config -> stats
(** Serve until a [shutdown] request (or SIGTERM under
    [install_signal_handlers]) completes its drain.  Blocks the
    calling thread; embed in a [Domain.spawn] to serve in-process. *)

val job_of_request :
  default_machine:string -> name:string -> text:string ->
  Protocol.options_req ->
  (Emsc_driver.Pipeline.job * int, Protocol.reject) result
(** The pipeline job (and machine staging capacity in words) a request
    denotes.  The daemon and the bit-identity tests both build jobs
    here, so a server response can be compared against a direct
    [Pipeline.compile] of the very same job. *)

val execute :
  cache:Emsc_driver.Cache.t -> default_machine:string -> Protocol.op ->
  (Emsc_obs.Json.t * (string * Emsc_obs.Json.t) list, Protocol.reject) result
(** Run one admitted operation: the deterministic result payload plus
    the non-deterministic per-request server fields (cache traffic).
    [Status]/[Shutdown] are answered by the event loop and reject
    here. *)

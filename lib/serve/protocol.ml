module J = Emsc_obs.Json

let version = "emsc-serve/1"
let default_max_line_bytes = 1 lsl 20

type options_req = {
  o_arch : [ `Gpu | `Cell ];
  o_merge_per_array : bool;
  o_delta : float;
  o_optimize_movement : bool;
  o_inter_tile_reuse : bool;
  o_machine : string;
  o_block : int list;
  o_mem : int list;
  o_thread : int list;
}

let default_options =
  { o_arch = `Gpu;
    o_merge_per_array = false;
    o_delta = 0.3;
    o_optimize_movement = false;
    o_inter_tile_reuse = false;
    o_machine = "";
    o_block = [];
    o_mem = [];
    o_thread = [] }

type op =
  | Compile of { name : string; text : string; options : options_req }
  | Analyze of { name : string; text : string; options : options_req }
  | Check of { fuzz : int; seed : int }
  | Status
  | Shutdown

type request = {
  req_id : string;
  op : op;
  timeout_ms : float option;
}

let op_name = function
  | Compile _ -> "compile"
  | Analyze _ -> "analyze"
  | Check _ -> "check"
  | Status -> "status"
  | Shutdown -> "shutdown"

type reject = {
  code : string;
  message : string;
}

let reject code message = { code; message }

(* --- request encoding (clients) ----------------------------------------- *)

let options_json o =
  let ints l = J.List (List.map (fun i -> J.Int i) l) in
  let fields =
    (match o.o_arch with `Gpu -> [] | `Cell -> [ ("arch", J.Str "cell") ])
    @ (if o.o_merge_per_array then [ ("merge_per_array", J.Bool true) ] else [])
    @ (if o.o_delta <> default_options.o_delta then
         [ ("delta", J.Float o.o_delta) ]
       else [])
    @ (if o.o_optimize_movement then [ ("optimize_movement", J.Bool true) ]
       else [])
    @ (if o.o_inter_tile_reuse then [ ("inter_tile_reuse", J.Bool true) ]
       else [])
    @ (if o.o_machine <> "" then [ ("machine", J.Str o.o_machine) ] else [])
    @ (if o.o_block <> [] then [ ("block", ints o.o_block) ] else [])
    @ (if o.o_mem <> [] then [ ("mem", ints o.o_mem) ] else [])
    @ (if o.o_thread <> [] then [ ("thread", ints o.o_thread) ] else [])
  in
  J.Obj fields

let request_json r =
  let base = [ ("v", J.Str version); ("id", J.Str r.req_id) ] in
  let timeout =
    match r.timeout_ms with
    | Some ms -> [ ("timeout_ms", J.Float ms) ]
    | None -> []
  in
  let op_fields =
    match r.op with
    | Compile { name; text; options } | Analyze { name; text; options } ->
      [ ("op", J.Str (op_name r.op)); ("name", J.Str name);
        ("text", J.Str text); ("options", options_json options) ]
    | Check { fuzz; seed } ->
      [ ("op", J.Str "check"); ("fuzz", J.Int fuzz); ("seed", J.Int seed) ]
    | Status -> [ ("op", J.Str "status") ]
    | Shutdown -> [ ("op", J.Str "shutdown") ]
  in
  J.Obj (base @ [ List.hd op_fields ] @ timeout @ List.tl op_fields)

let request_line r = J.to_string (request_json r)

(* --- request decoding (the daemon) -------------------------------------- *)

let str_field j name =
  match J.member name j with Some (J.Str s) -> Some s | _ -> None

let num_field j name =
  match J.member name j with
  | Some (J.Float f) -> Some f
  | Some (J.Int i) -> Some (float_of_int i)
  | _ -> None

let bool_field ~default j name =
  match J.member name j with Some (J.Bool b) -> b | _ -> default

let int_list_field j name =
  match J.member name j with
  | Some (J.List l) ->
    (try
       Ok
         (List.map
            (function
              | J.Int i -> i
              | _ -> raise Exit)
            l)
     with Exit -> Error (Printf.sprintf "%S must be a list of integers" name))
  | Some _ -> Error (Printf.sprintf "%S must be a list of integers" name)
  | None -> Ok []

let options_of_json j =
  let ( let* ) = Result.bind in
  match j with
  | None -> Ok default_options
  | Some j ->
    let* arch =
      match str_field j "arch" with
      | None | Some "gpu" -> Ok `Gpu
      | Some "cell" -> Ok `Cell
      | Some a -> Error (Printf.sprintf "unknown arch %S" a)
    in
    let* block = int_list_field j "block" in
    let* mem = int_list_field j "mem" in
    let* thread = int_list_field j "thread" in
    Ok
      { o_arch = arch;
        o_merge_per_array = bool_field ~default:false j "merge_per_array";
        o_delta =
          (match num_field j "delta" with
           | Some d -> d
           | None -> default_options.o_delta);
        o_optimize_movement = bool_field ~default:false j "optimize_movement";
        o_inter_tile_reuse = bool_field ~default:false j "inter_tile_reuse";
        o_machine = Option.value ~default:"" (str_field j "machine");
        o_block = block;
        o_mem = mem;
        o_thread = thread }

(* Parse one request line.  Every failure is a typed [reject] the
   daemon answers without dropping the connection (except oversized
   lines, which the transport layer rejects before parsing: an
   arbitrarily long line would otherwise buffer without bound). *)
let parse_request line =
  match J.of_string line with
  | Error e -> Error (reject "bad_json" e)
  | Ok j ->
    let id = Option.value ~default:"" (str_field j "id") in
    (match str_field j "v" with
     | None ->
       Error (reject "bad_version" (Printf.sprintf "missing \"v\" (expected %S)" version))
     | Some v when v <> version ->
       Error
         (reject "bad_version"
            (Printf.sprintf "protocol version %S unsupported (expected %S)" v
               version))
     | Some _ ->
       let timeout_ms = num_field j "timeout_ms" in
       let source_op build =
         match str_field j "text" with
         | None -> Error (reject "bad_request" "missing \"text\" field")
         | Some text ->
           let name = Option.value ~default:"<request>" (str_field j "name") in
           (match options_of_json (J.member "options" j) with
            | Error m -> Error (reject "bad_request" m)
            | Ok options -> Ok (build ~name ~text ~options))
       in
       let op =
         match str_field j "op" with
         | None -> Error (reject "bad_request" "missing \"op\" field")
         | Some "compile" ->
           source_op (fun ~name ~text ~options -> Compile { name; text; options })
         | Some "analyze" ->
           source_op (fun ~name ~text ~options -> Analyze { name; text; options })
         | Some "check" ->
           let int_of name default =
             match num_field j name with
             | Some f -> int_of_float f
             | None -> default
           in
           Ok (Check { fuzz = int_of "fuzz" 10; seed = int_of "seed" 1 })
         | Some "status" -> Ok Status
         | Some "shutdown" -> Ok Shutdown
         | Some o -> Error (reject "bad_request" (Printf.sprintf "unknown op %S" o))
       in
       (match op with
        | Error r -> Error r
        | Ok op -> Ok { req_id = id; op; timeout_ms }))

(* --- responses ----------------------------------------------------------- *)

let ok_response ~id ?(server = []) result =
  J.to_string
    (J.Obj
       ([ ("v", J.Str version); ("id", J.Str id); ("ok", J.Bool true);
          ("result", result) ]
        @ if server = [] then [] else [ ("server", J.Obj server) ]))

let error_response ~id r =
  J.to_string
    (J.Obj
       [ ("v", J.Str version); ("id", J.Str id); ("ok", J.Bool false);
         ( "error",
           J.Obj [ ("code", J.Str r.code); ("message", J.Str r.message) ] ) ])

(* --- deterministic result payloads --------------------------------------- *)

(* The serve contract: the "result" object of a compile/analyze
   response is a pure function of (source, options, machine) — no
   timings, no cache traffic, no queue state (those live in the
   sibling "server" object).  The daemon and the bit-identity tests
   both build it here, so "bit-identical to a direct Pipeline.compile"
   is checked by string equality of this JSON. *)

let block_text stms = Format.asprintf "%a" Emsc_codegen.Ast.pp_block stms

let plan_exn (c : Emsc_driver.Pipeline.compiled) =
  match c.Emsc_driver.Pipeline.plan with
  | Some plan -> plan
  | None -> failwith "compilation produced no plan"

let analyze_result ~capacity_words (c : Emsc_driver.Pipeline.compiled) =
  let module P = Emsc_driver.Pipeline in
  J.Obj
    [ ("source", J.Str c.P.source_name);
      ("digest", J.Str c.P.digest);
      ("plan", Emsc_core.Plan.explain_json ~capacity_words (plan_exn c)) ]

let compile_result ~capacity_words (c : Emsc_driver.Pipeline.compiled) =
  let module P = Emsc_driver.Pipeline in
  let plan = plan_exn c in
  let movement =
    List.map
      (fun (b : Emsc_core.Plan.buffered) ->
        J.Obj
          [ ("buffer", J.Str b.Emsc_core.Plan.buffer.Emsc_core.Alloc.local_name);
            ("move_in", J.Str (block_text b.Emsc_core.Plan.move_in));
            ("move_out", J.Str (block_text b.Emsc_core.Plan.move_out)) ])
      plan.Emsc_core.Plan.buffered
  in
  J.Obj
    [ ("source", J.Str c.P.source_name);
      ("digest", J.Str c.P.digest);
      ("plan", Emsc_core.Plan.explain_json ~capacity_words plan);
      ( "kernel",
        match c.P.tiled with
        | Some t -> J.Str (block_text t.P.ast)
        | None -> J.Null );
      ("movement", J.List movement) ]

(** The [emsc-serve/1] wire protocol: newline-delimited JSON.

    A client sends one JSON object per line and reads one JSON object
    per line back, in request order.  Every request carries the
    protocol version under ["v"] and an opaque ["id"] the response
    echoes, so a client may pipeline requests on one connection.

    Requests:
    {v
    {"v":"emsc-serve/1","id":"1","op":"compile","name":"mm","text":"...",
     "options":{"arch":"cell","block":[16,16],"mem":[0,0,8]}}
    {"v":"emsc-serve/1","id":"2","op":"analyze","text":"..."}
    {"v":"emsc-serve/1","id":"3","op":"check","fuzz":25,"seed":3}
    {"v":"emsc-serve/1","id":"4","op":"status"}
    {"v":"emsc-serve/1","id":"5","op":"shutdown"}
    v}

    Responses:
    {v
    {"v":"emsc-serve/1","id":"1","ok":true,"result":{...},"server":{...}}
    {"v":"emsc-serve/1","id":"1","ok":false,
     "error":{"code":"queue_full","message":"..."}}
    v}

    The ["result"] object of a compile/analyze response is a pure
    function of (source, options, machine) — bit-identical to what a
    direct [Pipeline.compile] of the same job yields through
    {!compile_result}/{!analyze_result}.  Timings, cache traffic and
    queue state live in the non-deterministic sibling ["server"]
    object. *)

module J = Emsc_obs.Json

val version : string
(** ["emsc-serve/1"]. *)

val default_max_line_bytes : int
(** 1 MiB: requests longer than this are rejected before parsing. *)

type options_req = {
  o_arch : [ `Gpu | `Cell ];
  o_merge_per_array : bool;
  o_delta : float;
  o_optimize_movement : bool;
  o_inter_tile_reuse : bool;
  o_machine : string;  (** built-in name or machine-file path; [""] = default *)
  o_block : int list;  (** block tile sizes; [[]] = untiled *)
  o_mem : int list;
  o_thread : int list;
}

val default_options : options_req

type op =
  | Compile of { name : string; text : string; options : options_req }
  | Analyze of { name : string; text : string; options : options_req }
  | Check of { fuzz : int; seed : int }
  | Status
  | Shutdown

type request = {
  req_id : string;
  op : op;
  timeout_ms : float option;
      (** overrides the daemon's default per-request timeout *)
}

val op_name : op -> string

type reject = {
  code : string;
      (** ["bad_json"], ["bad_version"], ["bad_request"],
          ["oversized_line"], ["queue_full"], ["timeout"],
          ["draining"], ["compile_error"], ["server_error"] *)
  message : string;
}

val reject : string -> string -> reject

val request_json : request -> J.t
val request_line : request -> string
(** One-line (no trailing newline) encoding of a request. *)

val parse_request : string -> (request, reject) result
(** Parse one request line.  Never raises: malformed input comes back
    as a typed [reject] the daemon answers in-band. *)

val ok_response : id:string -> ?server:(string * J.t) list -> J.t -> string
val error_response : id:string -> reject -> string

val analyze_result :
  capacity_words:int -> Emsc_driver.Pipeline.compiled -> J.t
(** Deterministic analyze payload: source, digest, plan explanation.
    @raise Failure when the compilation carries no plan. *)

val compile_result :
  capacity_words:int -> Emsc_driver.Pipeline.compiled -> J.t
(** Deterministic compile payload: analyze fields plus the generated
    kernel and per-buffer movement code, pretty-printed.
    @raise Failure when the compilation carries no plan. *)

(** Minimal blocking client for the [emsc-serve/1] protocol.

    Used by [emsc client], the serve bench load generator, and the
    end-to-end tests.  One {!t} is one connection; requests written
    through it are answered in order, so a caller may interleave
    {!send_line}s and {!recv_line}s to pipeline. *)

module P = Protocol
module J = Emsc_obs.Json

type t

val connect :
  ?retries:int -> ?retry_delay_s:float ->
  [ `Unix of string | `Tcp of string * int ] ->
  (t, string) result
(** Retries [ECONNREFUSED]/[ENOENT] (default 50 × 0.1 s) so callers
    can race a freshly spawned daemon to its [bind]. *)

val close : t -> unit

val send_line : t -> string -> unit
val recv_line : t -> (string, string) result

type response = {
  resp_id : string;
  ok : bool;
  result : J.t option;     (** present when [ok] *)
  server : J.t option;     (** per-request server-side facts *)
  error : P.reject option; (** present when [not ok] *)
  raw : string;            (** the exact line off the wire *)
}

val parse_response : string -> (response, string) result

val roundtrip : t -> P.request -> (response, string) result
(** Send one request and block for its response. *)

val once :
  ?retries:int -> ?retry_delay_s:float ->
  [ `Unix of string | `Tcp of string * int ] ->
  P.request -> (response, string) result
(** Connect, ask one question, close. *)

module Ev = Emsc_obs.Events

type ticket = {
  tm : Mutex.t;
  tcv : Condition.t;
  mutable finished : bool;
  mutable failure : exn option;
}

type channel = {
  chan_id : int;
  m : Mutex.t;
  cv : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domain : unit Domain.t option;
  mutable evr : Ev.ring option;
      (* transfer events; written only by the channel's own domain *)
}

let worker ch () =
  let rec loop () =
    Mutex.lock ch.m;
    while Queue.is_empty ch.jobs && not ch.stopping do
      Condition.wait ch.cv ch.m
    done;
    if Queue.is_empty ch.jobs then Mutex.unlock ch.m  (* stopping, drained *)
    else begin
      let job = Queue.pop ch.jobs in
      Mutex.unlock ch.m;
      job ();
      loop ()
    end
  in
  loop ()

let create ~id =
  let ch =
    { chan_id = id; m = Mutex.create (); cv = Condition.create ();
      jobs = Queue.create (); stopping = false; domain = None; evr = None }
  in
  ch.domain <- Some (Domain.spawn (worker ch));
  ch

let id ch = ch.chan_id

let set_event_ring ch r = ch.evr <- Some r

let submit ?event ch f =
  let t =
    { tm = Mutex.create (); tcv = Condition.create (); finished = false;
      failure = None }
  in
  let job () =
    (* [event] is evaluated after [f] on this channel's domain, so the
       payload can read what the transfer produced and the ring write
       stays single-writer *)
    (match (ch.evr, event) with
     | Some r, Some mk when Ev.enabled () ->
       let t0 = Ev.now () in
       (try f () with e -> t.failure <- Some e);
       Ev.emit r ~t0 (mk ())
     | _ -> ( try f () with e -> t.failure <- Some e));
    Mutex.lock t.tm;
    t.finished <- true;
    Condition.broadcast t.tcv;
    Mutex.unlock t.tm
  in
  Mutex.lock ch.m;
  if ch.stopping then begin
    Mutex.unlock ch.m;
    invalid_arg "Dma.submit: channel is shut down"
  end;
  Queue.push job ch.jobs;
  Condition.signal ch.cv;
  Mutex.unlock ch.m;
  t

let await t =
  Mutex.lock t.tm;
  while not t.finished do
    Condition.wait t.tcv t.tm
  done;
  Mutex.unlock t.tm;
  match t.failure with Some e -> raise e | None -> ()

let shutdown ch =
  Mutex.lock ch.m;
  ch.stopping <- true;
  Condition.broadcast ch.cv;
  Mutex.unlock ch.m;
  match ch.domain with
  | Some d ->
    ch.domain <- None;
    Domain.join d
  | None -> ()

(** Multicore parallel execution backend.

    Executes a compiled kernel AST with true parallelism on OCaml 5
    domains, realizing the machine model the compiler targets: each
    launch's outermost band of [Block]-parallel loops is decomposed
    into block tasks dispatched over a fixed domain pool; every block
    runs in its own scratchpad {!Arena} (shared globals, private
    locals); when [double_buffer] is set and the block body has the
    canonical move-in / compute / move-out shape, the move phases run
    asynchronously on per-worker {!Dma} channels, overlapping block
    [j]'s compute with block [j+1]'s move-in.  Launches are separated
    by global barriers: all block tasks join, counters are reduced in
    block order (bit-identical to sequential execution for any [jobs]
    value and either policy), and movement metrics are fenced out.

    Determinism rests on the plan's launch race-freedom: blocks of one
    launch write disjoint global cells and never read another block's
    writes.  [track_ownership] checks exactly that at runtime.

    [Full] fidelity only — sampled execution is inherently sequential
    (iteration deltas), and parallel runs exist to produce exact
    arrays and wall time. *)

open Emsc_arith
open Emsc_ir
open Emsc_codegen
open Emsc_machine

type policy =
  | Static  (** block [i] goes to worker [i mod jobs] *)
  | Work_stealing
      (** contiguous chunks seeded per worker; idle workers steal from
          the far end of a victim's deque *)

type cfg = {
  jobs : int;                    (** worker domains *)
  policy : policy;
  double_buffer : bool;          (** pipeline move phases on DMA channels *)
  track_ownership : bool;
      (** debug: detect cross-block global write conflicts and
          reads-of-foreign-writes within a launch *)
  capacity_words : int option;   (** arena pool capacity *)
  max_concurrent_blocks : int option;
      (** concurrent-arena cap; [Timing.occupancy]'s rule *)
  block_words : int;
      (** estimated per-block scratchpad words, the pool accounting
          unit (0 = unknown, arenas are unaccounted) *)
  inter_tile_reuse : bool;
      (** the plan carries inter-tile delta movement (guarded
          full/delta nests from [Plan.plan_block ~inter_tile]): group
          consecutive blocks differing only in the innermost block
          origin into chains, run each chain on one worker in ONE
          arena so resident slabs survive between blocks, and schedule
          chain-statically ([chain mod jobs]) — [policy] and
          [double_buffer] are ignored, since stealing or releasing
          arenas mid-chain would wipe residency.  Counter totals stay
          bit-identical to sequential execution. *)
}

val default_cfg : jobs:int -> cfg
(** [Static], no double buffering, no tracking, unbounded pool, no
    inter-tile reuse. *)

exception Ownership_violation of string
exception Runtime_error of string

val pipeline_phases :
  Ast.stm list -> (Ast.stm list * Ast.stm list * Ast.stm list) option
(** Split a block body into (move-in, compute, move-out) at its
    top-level fences when the prefix/suffix are pure movement — the
    shape the tiler emits for hoisted transfers.  [None] when the body
    does not pipeline (movement nested inside compute loops). *)

val run :
  prog:Prog.t ->
  ?local_ref:(Prog.stmt -> Prog.access -> Ast.ref_expr option) ->
  param_env:(string -> Zint.t) ->
  memory:Memory.t ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  ?cfg:cfg ->
  Ast.stm list ->
  Exec.result
(** Drop-in parallel analogue of {!Exec.run} in [Full] mode: same
    totals bit-for-bit, same launch records (grids from exact block
    enumeration), same global-array contents.  Host-level statements
    (outside any block loop) execute on the calling domain.
    [on_global], when given, is serialized under a mutex.
    @raise Ownership_violation when [track_ownership] finds a race.
    @raise Runtime_error when a block's arena can never fit the pool. *)

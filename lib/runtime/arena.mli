(** Per-block scratchpad arenas carved from a shared pool.

    An arena is a {!Emsc_machine.Memory.fork_view} of the launch
    memory: globals are shared physically, local buffers are private to
    the block executing in the arena.  The pool enforces the machine's
    concurrency limits — total scratchpad capacity in words and the
    concurrent-blocks rule from [Timing.occupancy] — and recycles
    released views so steady-state acquisition allocates nothing.

    Thread-safe: acquire/release may be called from any domain. *)

open Emsc_machine

type pool
type t

type error =
  | Capacity_exceeded of {
      requested_words : int;
      capacity_words : int;
    }  (** the request alone can never fit the pool *)

val error_message : error -> string

val create_pool :
  ?capacity_words:int ->
  ?max_arenas:int ->
  base:Memory.t ->
  unit ->
  pool
(** [capacity_words]: total scratchpad words arenas may hold at once
    (unbounded when omitted).  [max_arenas]: concurrent-arena cap, the
    occupancy rule (unbounded when omitted).  [base] supplies the
    shared globals and the set of declared local buffer names. *)

val set_event_ring : pool -> Emsc_obs.Events.ring -> unit
(** Record an {!Emsc_obs.Events.Occupancy} sample (words and arenas in
    use) on [r] at every reserve and release.  Samples are emitted
    inside the pool's critical section, so the ring's single-writer
    contract holds even though acquire/release run on many domains.
    No-op cost when events are disabled. *)

val acquire : pool -> words:int -> (t, error) result
(** Reserve [words] of scratchpad and hand out a view.  Blocks while
    the pool is momentarily full; returns [Error] only for requests
    that can never be satisfied. *)

val try_acquire : pool -> words:int -> t option
(** Non-blocking variant for opportunistic use (DMA prefetch): [None]
    when the pool is full right now or the request can never fit. *)

val memory : t -> Memory.t

val release : t -> unit
(** Return the arena to the pool.  Records the view's peak local
    occupancy, clears its local buffers, and recycles the view.
    Idempotent: releasing twice is a no-op. *)

val in_use : pool -> int
(** Arenas currently held. *)

val peak_in_use : pool -> int
(** High-water mark of concurrently held arenas. *)

val peak_occupancy : pool -> (string * int) list
(** Per local buffer, the largest footprint in words any single arena
    reached before release — the per-block scratchpad peak, sorted by
    name. *)

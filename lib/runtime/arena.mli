(** Per-block scratchpad arenas carved from a shared pool.

    An arena is a {!Emsc_machine.Memory.fork_view} of the launch
    memory: globals are shared physically, local buffers are private to
    the block executing in the arena.  The pool enforces the machine's
    concurrency limits — total scratchpad capacity in words and the
    concurrent-blocks rule from [Timing.occupancy] — and recycles
    released views so steady-state acquisition allocates nothing.

    Thread-safe: acquire/release may be called from any domain. *)

open Emsc_machine

type pool
type t

type error =
  | Capacity_exceeded of {
      requested_words : int;
      capacity_words : int;
    }  (** the request alone can never fit the pool *)
  | Too_many_arenas of {
      requested : int;
      max_arenas : int;
    }
      (** an {!acquire_all} batch wider than the concurrent-arena cap
          can never be granted atomically *)

val error_message : error -> string

val create_pool :
  ?capacity_words:int ->
  ?max_arenas:int ->
  ?fork:(Memory.t -> Memory.t) ->
  base:Memory.t ->
  unit ->
  pool
(** [capacity_words]: total scratchpad words arenas may hold at once
    (unbounded when omitted).  [max_arenas]: concurrent-arena cap, the
    occupancy rule (unbounded when omitted).  [base] supplies the
    shared globals and the set of declared local buffer names.
    [fork] (default {!Memory.fork_view}) creates each fresh view; tests
    inject a raising fork to exercise the pool's failure paths. *)

val set_event_ring : pool -> Emsc_obs.Events.ring -> unit
(** Record an {!Emsc_obs.Events.Occupancy} sample (words and arenas in
    use) on [r] at every reserve and release.  Samples are emitted
    inside the pool's critical section, so the ring's single-writer
    contract holds even though acquire/release run on many domains.
    No-op cost when events are disabled. *)

val acquire : pool -> words:int -> (t, error) result
(** Reserve [words] of scratchpad and hand out a view.  Blocks while
    the pool is momentarily full; returns [Error] only for requests
    that can never be satisfied.  Exception-safe: if forking the view
    raises, the pool is left exactly as found — counters untouched,
    mutex released — and the exception propagates. *)

val try_acquire : pool -> words:int -> t option
(** Non-blocking variant for opportunistic use (DMA prefetch): [None]
    when the pool is full right now or the request can never fit.
    Exception-safe like {!acquire}. *)

val acquire_all : pool -> words:int list -> (t list, error) result
(** Transactional batch acquisition: reserve one arena per element of
    [words], all inside a single critical section, so two concurrent
    batch acquirers can never deadlock on half-granted requests.
    Blocks until the whole batch fits at once.  If forking a view
    raises mid-batch, the arenas already granted are rolled back into
    the pool (no slab leak, no [peak_in_use] skew) before the exception
    propagates. *)

val memory : t -> Memory.t

val release : t -> unit
(** Return the arena to the pool.  Records the view's peak local
    occupancy, clears its local buffers, and recycles the view.
    Idempotent: releasing twice is a no-op. *)

val in_use : pool -> int
(** Arenas currently held. *)

val peak_in_use : pool -> int
(** High-water mark of concurrently held arenas. *)

val peak_occupancy : pool -> (string * int) list
(** Per local buffer, the largest footprint in words any single arena
    reached before release — the per-block scratchpad peak, sorted by
    name. *)

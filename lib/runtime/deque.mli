(** Work-stealing task deque over a fixed set of integer task ids.

    One deque per worker, seeded once at launch start (no concurrent
    pushes).  The owner drains its tasks front-to-back — preserving the
    block sequence order, which keeps the DMA prefetcher useful — while
    thieves take from the back, the far end of the owner's cursor.
    Mutex-protected: the runtime's unit of work (a whole thread block)
    is large enough that lock traffic is noise. *)

type t

val of_range : lo:int -> hi:int -> t
(** Tasks [lo, hi) in ascending order. *)

val next : t -> int option
(** Owner side: take the front task. *)

val steal : t -> int option
(** Thief side: take the back task. *)

val length : t -> int

(** Asynchronous DMA channels.

    A channel is a dedicated domain executing submitted transfer jobs
    in FIFO order — the software analogue of the scratchpad DMA engine
    the paper's machine model assumes.  The runtime gives each worker
    one channel and, when the kernel double-buffers, stages block
    [j+1]'s move-in on the channel while the worker computes block [j],
    then retires block [j]'s move-out asynchronously the same way.

    Jobs must never block on pool resources (the runtime acquires
    arenas before submitting), so a channel always drains and the
    worker/channel pair cannot deadlock.  Exceptions raised by a job
    are stored in its ticket and re-raised by {!await}. *)

type channel
type ticket

val create : id:int -> channel
(** Spawn the channel's domain.  [id] names it in metrics. *)

val id : channel -> int

val set_event_ring : channel -> Emsc_obs.Events.ring -> unit
(** Attach an event ring (a DMA lane in the merged trace).  Set it
    before the first [submit]; the channel's own domain is the ring's
    only writer. *)

val submit :
  ?event:(unit -> Emsc_obs.Events.data) -> channel -> (unit -> unit) -> ticket
(** [event], when given and a ring is attached and events are enabled,
    is evaluated on the channel domain after the job runs — its result
    is recorded spanning the job's execution, and may read state the
    job produced (e.g. the words it moved). *)

val await : ticket -> unit
(** Block until the job has run; re-raise its exception, if any. *)

val shutdown : channel -> unit
(** Drain remaining jobs, then join the domain.  Idempotent. *)

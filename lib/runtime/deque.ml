type t = {
  m : Mutex.t;
  mutable front : int;  (* next task the owner takes *)
  mutable back : int;   (* one past the next task a thief takes *)
}

let of_range ~lo ~hi = { m = Mutex.create (); front = lo; back = max lo hi }

let with_lock d f =
  Mutex.lock d.m;
  let r = f () in
  Mutex.unlock d.m;
  r

let next d =
  with_lock d @@ fun () ->
  if d.front < d.back then begin
    let i = d.front in
    d.front <- i + 1;
    Some i
  end
  else None

let steal d =
  with_lock d @@ fun () ->
  if d.front < d.back then begin
    d.back <- d.back - 1;
    Some d.back
  end
  else None

let length d = with_lock d @@ fun () -> d.back - d.front

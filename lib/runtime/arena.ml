open Emsc_machine
module Ev = Emsc_obs.Events

type pool = {
  m : Mutex.t;
  cv : Condition.t;
  capacity_words : int option;
  max_arenas : int option;
  base : Memory.t;
  fork : Memory.t -> Memory.t;
  mutable free_views : Memory.t list;  (* recycled, locals cleared *)
  mutable in_use : int;
  mutable words_in_use : int;
  mutable peak_in_use : int;
  occupancy : (string, int) Hashtbl.t;  (* per-buffer per-arena peak *)
  mutable evr : Ev.ring option;
      (* occupancy events; written only under [m], which satisfies the
         ring's single-writer contract *)
}

type t = {
  pool : pool;
  words : int;
  mem : Memory.t;
  mutable released : bool;  (* guarded by [pool.m] *)
}

type error =
  | Capacity_exceeded of {
      requested_words : int;
      capacity_words : int;
    }
  | Too_many_arenas of {
      requested : int;
      max_arenas : int;
    }

let error_message = function
  | Capacity_exceeded { requested_words; capacity_words } ->
    Printf.sprintf
      "arena request of %d words exceeds pool capacity of %d words"
      requested_words capacity_words
  | Too_many_arenas { requested; max_arenas } ->
    Printf.sprintf
      "request for %d arenas exceeds the pool's concurrent-arena cap of %d"
      requested max_arenas

let create_pool ?capacity_words ?max_arenas ?fork ~base () =
  { m = Mutex.create (); cv = Condition.create (); capacity_words;
    max_arenas; base;
    fork = (match fork with Some f -> f | None -> Memory.fork_view);
    free_views = []; in_use = 0; words_in_use = 0;
    peak_in_use = 0; occupancy = Hashtbl.create 4; evr = None }

let set_event_ring p r =
  Mutex.lock p.m;
  p.evr <- Some r;
  Mutex.unlock p.m

(* caller holds [p.m] *)
let emit_occupancy p =
  match p.evr with
  | Some r when Ev.enabled () ->
    let t = Ev.now () in
    Ev.emit r ~t0:t ~t1:t
      (Ev.Occupancy { words = p.words_in_use; arenas = p.in_use })
  | _ -> ()

let fits_eventually p words =
  match p.capacity_words with
  | Some cap when words > cap -> false
  | _ -> true

let fits_now p words =
  (match p.max_arenas with Some k -> p.in_use < k | None -> true)
  && (match p.capacity_words with
      | Some cap -> p.words_in_use + words <= cap
      | None -> true)

(* caller holds [p.m] and has checked [fits_now].  The view fork runs
   before any counter moves, so a raise (injected fork in tests, OOM)
   leaves the pool's accounting untouched — but the CALLER must unlock
   [p.m] on the way out, or every later acquirer deadlocks. *)
let take_locked p words =
  let mem =
    match p.free_views with
    | v :: rest ->
      p.free_views <- rest;
      v
    | [] -> p.fork p.base
  in
  p.in_use <- p.in_use + 1;
  p.words_in_use <- p.words_in_use + words;
  if p.in_use > p.peak_in_use then p.peak_in_use <- p.in_use;
  emit_occupancy p;
  { pool = p; words; mem; released = false }

let acquire p ~words =
  Mutex.lock p.m;
  if not (fits_eventually p words) then begin
    let cap = Option.get p.capacity_words in
    Mutex.unlock p.m;
    Error (Capacity_exceeded { requested_words = words; capacity_words = cap })
  end
  else begin
    while not (fits_now p words) do
      Condition.wait p.cv p.m
    done;
    match take_locked p words with
    | a ->
      Mutex.unlock p.m;
      Ok a
    | exception e ->
      Mutex.unlock p.m;
      raise e
  end

let try_acquire p ~words =
  Mutex.lock p.m;
  let r =
    if fits_eventually p words && fits_now p words then
      match take_locked p words with
      | a -> Some a
      | exception e ->
        Mutex.unlock p.m;
        raise e
    else None
  in
  Mutex.unlock p.m;
  r

let memory a = a.mem

(* caller holds [a.pool.m] *)
let release_locked a =
  let p = a.pool in
  if not a.released then begin
    a.released <- true;
    List.iter (fun (name, cells) ->
      match Hashtbl.find_opt p.occupancy name with
      | Some prev when prev >= cells -> ()
      | _ -> Hashtbl.replace p.occupancy name cells)
      (Memory.local_occupancy a.mem);
    Memory.clear_locals a.mem;
    p.free_views <- a.mem :: p.free_views;
    p.in_use <- p.in_use - 1;
    p.words_in_use <- p.words_in_use - a.words;
    emit_occupancy p;
    Condition.broadcast p.cv
  end

let release a =
  let p = a.pool in
  Mutex.lock p.m;
  release_locked a;
  Mutex.unlock p.m

(* Transactional multi-arena acquisition: all requests are granted
   under one critical section — two concurrent half-granted callers can
   therefore never deadlock each other — and a fork failure mid-way
   rolls the already-granted arenas back into the pool before the
   exception propagates, so neither views nor reserved words leak and
   [peak_in_use] reflects only acquisitions that fully succeeded. *)
let acquire_all p ~words =
  let total = List.fold_left ( + ) 0 words in
  let k = List.length words in
  Mutex.lock p.m;
  if not (fits_eventually p total) then begin
    let cap = Option.get p.capacity_words in
    Mutex.unlock p.m;
    Error (Capacity_exceeded { requested_words = total; capacity_words = cap })
  end
  else if (match p.max_arenas with Some m -> k > m | None -> false) then begin
    let m = Option.get p.max_arenas in
    Mutex.unlock p.m;
    Error (Too_many_arenas { requested = k; max_arenas = m })
  end
  else begin
    let peak0 = p.peak_in_use in
    let fits_all_now () =
      (match p.max_arenas with Some m -> p.in_use + k <= m | None -> true)
      && (match p.capacity_words with
          | Some cap -> p.words_in_use + total <= cap
          | None -> true)
    in
    while not (fits_all_now ()) do
      Condition.wait p.cv p.m
    done;
    let taken = ref [] in
    match
      List.iter (fun w -> taken := take_locked p w :: !taken) words
    with
    | () ->
      let arenas = List.rev !taken in
      Mutex.unlock p.m;
      Ok arenas
    | exception e ->
      List.iter release_locked !taken;
      (* a partial grant must not move the high-water mark *)
      p.peak_in_use <- max peak0 p.in_use;
      Mutex.unlock p.m;
      raise e
  end

let in_use p =
  Mutex.lock p.m;
  let n = p.in_use in
  Mutex.unlock p.m;
  n

let peak_in_use p =
  Mutex.lock p.m;
  let n = p.peak_in_use in
  Mutex.unlock p.m;
  n

let peak_occupancy p =
  Mutex.lock p.m;
  let occ = Hashtbl.fold (fun n c acc -> (n, c) :: acc) p.occupancy [] in
  Mutex.unlock p.m;
  List.sort compare occ

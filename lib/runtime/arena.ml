open Emsc_machine
module Ev = Emsc_obs.Events

type pool = {
  m : Mutex.t;
  cv : Condition.t;
  capacity_words : int option;
  max_arenas : int option;
  base : Memory.t;
  mutable free_views : Memory.t list;  (* recycled, locals cleared *)
  mutable in_use : int;
  mutable words_in_use : int;
  mutable peak_in_use : int;
  occupancy : (string, int) Hashtbl.t;  (* per-buffer per-arena peak *)
  mutable evr : Ev.ring option;
      (* occupancy events; written only under [m], which satisfies the
         ring's single-writer contract *)
}

type t = {
  pool : pool;
  words : int;
  mem : Memory.t;
  mutable released : bool;  (* guarded by [pool.m] *)
}

type error =
  | Capacity_exceeded of {
      requested_words : int;
      capacity_words : int;
    }

let error_message = function
  | Capacity_exceeded { requested_words; capacity_words } ->
    Printf.sprintf
      "arena request of %d words exceeds pool capacity of %d words"
      requested_words capacity_words

let create_pool ?capacity_words ?max_arenas ~base () =
  { m = Mutex.create (); cv = Condition.create (); capacity_words;
    max_arenas; base; free_views = []; in_use = 0; words_in_use = 0;
    peak_in_use = 0; occupancy = Hashtbl.create 4; evr = None }

let set_event_ring p r =
  Mutex.lock p.m;
  p.evr <- Some r;
  Mutex.unlock p.m

(* caller holds [p.m] *)
let emit_occupancy p =
  match p.evr with
  | Some r when Ev.enabled () ->
    let t = Ev.now () in
    Ev.emit r ~t0:t ~t1:t
      (Ev.Occupancy { words = p.words_in_use; arenas = p.in_use })
  | _ -> ()

let fits_eventually p words =
  match p.capacity_words with
  | Some cap when words > cap -> false
  | _ -> true

let fits_now p words =
  (match p.max_arenas with Some k -> p.in_use < k | None -> true)
  && (match p.capacity_words with
      | Some cap -> p.words_in_use + words <= cap
      | None -> true)

(* caller holds [p.m] and has checked [fits_now] *)
let take_locked p words =
  let mem =
    match p.free_views with
    | v :: rest ->
      p.free_views <- rest;
      v
    | [] -> Memory.fork_view p.base
  in
  p.in_use <- p.in_use + 1;
  p.words_in_use <- p.words_in_use + words;
  if p.in_use > p.peak_in_use then p.peak_in_use <- p.in_use;
  emit_occupancy p;
  { pool = p; words; mem; released = false }

let acquire p ~words =
  Mutex.lock p.m;
  if not (fits_eventually p words) then begin
    let cap = Option.get p.capacity_words in
    Mutex.unlock p.m;
    Error (Capacity_exceeded { requested_words = words; capacity_words = cap })
  end
  else begin
    while not (fits_now p words) do
      Condition.wait p.cv p.m
    done;
    let a = take_locked p words in
    Mutex.unlock p.m;
    Ok a
  end

let try_acquire p ~words =
  Mutex.lock p.m;
  let r =
    if fits_eventually p words && fits_now p words then
      Some (take_locked p words)
    else None
  in
  Mutex.unlock p.m;
  r

let memory a = a.mem

let release a =
  let p = a.pool in
  Mutex.lock p.m;
  if not a.released then begin
    a.released <- true;
    List.iter (fun (name, cells) ->
      match Hashtbl.find_opt p.occupancy name with
      | Some prev when prev >= cells -> ()
      | _ -> Hashtbl.replace p.occupancy name cells)
      (Memory.local_occupancy a.mem);
    Memory.clear_locals a.mem;
    p.free_views <- a.mem :: p.free_views;
    p.in_use <- p.in_use - 1;
    p.words_in_use <- p.words_in_use - a.words;
    emit_occupancy p;
    Condition.broadcast p.cv
  end;
  Mutex.unlock p.m

let in_use p =
  Mutex.lock p.m;
  let n = p.in_use in
  Mutex.unlock p.m;
  n

let peak_in_use p =
  Mutex.lock p.m;
  let n = p.peak_in_use in
  Mutex.unlock p.m;
  n

let peak_occupancy p =
  Mutex.lock p.m;
  let occ = Hashtbl.fold (fun n c acc -> (n, c) :: acc) p.occupancy [] in
  Mutex.unlock p.m;
  List.sort compare occ

open Emsc_arith
open Emsc_codegen
open Emsc_machine
module Ev = Emsc_obs.Events

type policy = Static | Work_stealing

type cfg = {
  jobs : int;
  policy : policy;
  double_buffer : bool;
  track_ownership : bool;
  capacity_words : int option;
  max_concurrent_blocks : int option;
  block_words : int;
  inter_tile_reuse : bool;
}

let default_cfg ~jobs =
  { jobs = max 1 jobs; policy = Static; double_buffer = false;
    track_ownership = false; capacity_words = None;
    max_concurrent_blocks = None; block_words = 0;
    inter_tile_reuse = false }

exception Ownership_violation of string
exception Runtime_error of string

(* ----------------------------------------------------------------- *)
(* Phase splitting                                                    *)

let rec is_movement (s : Ast.stm) =
  match s with
  | Ast.Copy _ | Ast.Comment _ -> true
  | Ast.Guard (_, body) -> List.for_all is_movement body
  | Ast.Loop l -> List.for_all is_movement l.Ast.body
  | Ast.Sync | Ast.Fence | Ast.Stmt_call _ -> false

let rec has_copy (s : Ast.stm) =
  match s with
  | Ast.Copy _ -> true
  | Ast.Guard (_, body) -> List.exists has_copy body
  | Ast.Loop l -> List.exists has_copy l.Ast.body
  | Ast.Sync | Ast.Fence | Ast.Stmt_call _ | Ast.Comment _ -> false

(* The tiler brackets hoisted movement with fences:
   [ins @ (Fence :: core) @ (Fence :: outs)].  Recover the three
   phases from the outermost fences; each fence travels with its
   movement phase so phase counter sums equal the unsplit body's. *)
let pipeline_phases (body : Ast.stm list) =
  let arr = Array.of_list body in
  let n = Array.length arr in
  let fences =
    List.filter (fun i -> arr.(i) = Ast.Fence) (List.init n Fun.id)
  in
  match fences with
  | [] -> None
  | first :: _ ->
    let last = List.fold_left max first fences in
    let sub lo hi = Array.to_list (Array.sub arr lo (max 0 (hi - lo))) in
    let pre = sub 0 first in
    let post = sub (last + 1) n in
    let pre_ok =
      pre <> [] && List.for_all is_movement pre && List.exists has_copy pre
    in
    let post_ok =
      post <> [] && List.for_all is_movement post && List.exists has_copy post
    in
    if pre_ok && post_ok && first < last then
      Some (pre @ [ Ast.Fence ], sub (first + 1) last, Ast.Fence :: post)
    else if pre_ok then Some (pre @ [ Ast.Fence ], sub (first + 1) n, [])
    else if post_ok && first = last then
      Some ([], sub 0 last, Ast.Fence :: post)
    else None

(* ----------------------------------------------------------------- *)
(* Launch discovery and task enumeration                              *)

let rec contains_block (s : Ast.stm) =
  match s with
  | Ast.Loop l -> l.Ast.par = Ast.Block || List.exists contains_block l.Ast.body
  | Ast.Guard (_, body) -> List.exists contains_block body
  | Ast.Copy _ | Ast.Sync | Ast.Fence | Ast.Stmt_call _ | Ast.Comment _ ->
    false

(* Mirror [Exec.grid_size]'s launch shape: peel the outermost chain of
   singleton Block loops, evaluating each level's bounds under the
   accumulated bindings, and emit one task per grid point in
   sequential order.  Bindings are inner-first. *)
let enumerate_tasks lookup (l : Ast.loop) =
  let tasks = ref [] in
  let rec go bindings (l : Ast.loop) =
    let look n =
      match List.assoc_opt n bindings with Some v -> v | None -> lookup n
    in
    let lb = Ast.eval look l.Ast.lb and ub = Ast.eval look l.Ast.ub in
    if Zint.compare lb ub <= 0 then begin
      let trip =
        Zint.to_int_exn
          (Zint.add (Zint.fdiv (Zint.sub ub lb) l.Ast.step) Zint.one)
      in
      let v = ref lb in
      for _ = 1 to trip do
        let b = (l.Ast.var, !v) :: bindings in
        (match l.Ast.body with
         | [ Ast.Loop ({ par = Ast.Block; _ } as l') ] -> go b l'
         | body -> tasks := (b, body) :: !tasks);
        v := Zint.add !v l.Ast.step
      done
    end
  in
  go [] l;
  Array.of_list (List.rev !tasks)

(* ----------------------------------------------------------------- *)
(* Worker pool: [jobs] domains, one dispatched closure per launch     *)

module Pool = struct
  type t = {
    jobs : int;
    m : Mutex.t;
    work_cv : Condition.t;
    done_cv : Condition.t;
    mutable epoch : int;
    mutable work : (int -> unit) option;
    mutable remaining : int;
    mutable stop : bool;
    mutable error : exn option;
    mutable domains : unit Domain.t array;
  }

  let worker p w () =
    let rec loop my_epoch =
      Mutex.lock p.m;
      while (not p.stop) && p.epoch = my_epoch do
        Condition.wait p.work_cv p.m
      done;
      if p.stop then Mutex.unlock p.m
      else begin
        let e = p.epoch in
        let f = Option.get p.work in
        Mutex.unlock p.m;
        (try f w
         with exn ->
           Mutex.lock p.m;
           if p.error = None then p.error <- Some exn;
           Mutex.unlock p.m);
        Mutex.lock p.m;
        p.remaining <- p.remaining - 1;
        if p.remaining = 0 then Condition.broadcast p.done_cv;
        Mutex.unlock p.m;
        loop e
      end
    in
    loop 0

  let create jobs =
    let p =
      { jobs; m = Mutex.create (); work_cv = Condition.create ();
        done_cv = Condition.create (); epoch = 0; work = None;
        remaining = 0; stop = false; error = None; domains = [||] }
    in
    p.domains <- Array.init jobs (fun w -> Domain.spawn (worker p w));
    p

  (* run [f 0 .. f (jobs-1)] to completion; re-raise the first worker
     exception *)
  let dispatch p f =
    Mutex.lock p.m;
    p.work <- Some f;
    p.remaining <- p.jobs;
    p.error <- None;
    p.epoch <- p.epoch + 1;
    Condition.broadcast p.work_cv;
    while p.remaining > 0 do
      Condition.wait p.done_cv p.m
    done;
    let err = p.error in
    Mutex.unlock p.m;
    match err with Some e -> raise e | None -> ()

  let shutdown p =
    Mutex.lock p.m;
    p.stop <- true;
    Condition.broadcast p.work_cv;
    Mutex.unlock p.m;
    Array.iter Domain.join p.domains;
    p.domains <- [||]
end

(* ----------------------------------------------------------------- *)
(* Debug write-ownership tracking                                     *)

type tracker = {
  tr_m : Mutex.t;
  writers : (int, int) Hashtbl.t;  (* global word address -> block *)
  mutable violation : string option;
}

let fresh_tracker () =
  { tr_m = Mutex.create (); writers = Hashtbl.create 1024; violation = None }

let tracker_record tr block arr addr kind =
  Mutex.lock tr.tr_m;
  (match kind with
   | `St -> (
     match Hashtbl.find_opt tr.writers addr with
     | Some other when other <> block ->
       if tr.violation = None then
         tr.violation <-
           Some
             (Printf.sprintf
                "blocks %d and %d of one launch both write %s (word %d)"
                other block arr addr)
     | _ -> Hashtbl.replace tr.writers addr block)
   | `Ld -> (
     match Hashtbl.find_opt tr.writers addr with
     | Some other when other <> block ->
       if tr.violation = None then
         tr.violation <-
           Some
             (Printf.sprintf
                "block %d reads %s (word %d) written by block %d in the same \
                 launch"
                block arr addr other)
     | _ -> ()));
  Mutex.unlock tr.tr_m

(* ----------------------------------------------------------------- *)
(* Movement accounting (reduced on the main domain)                   *)

type dma_acc = {
  mutable acc_copies : float;
  acc_in : (string, float ref) Hashtbl.t;
  acc_out : (string, float ref) Hashtbl.t;
}

let fresh_acc () =
  { acc_copies = 0.; acc_in = Hashtbl.create 4; acc_out = Hashtbl.create 4 }

let acc_add acc (d : Exec.block_dma) =
  let bump tbl (name, words) =
    match Hashtbl.find_opt tbl name with
    | Some r -> r := !r +. words
    | None -> Hashtbl.replace tbl name (ref words)
  in
  acc.acc_copies <- acc.acc_copies +. d.Exec.copies;
  List.iter (bump acc.acc_in) d.Exec.moved_in;
  List.iter (bump acc.acc_out) d.Exec.moved_out

let acc_dma acc : Exec.block_dma =
  let sorted tbl =
    Hashtbl.fold (fun n r l -> (n, !r) :: l) tbl [] |> List.sort compare
  in
  { Exec.copies = acc.acc_copies; moved_in = sorted acc.acc_in;
    moved_out = sorted acc.acc_out }

(* per-channel transfer statistics; each worker owns its own slot, the
   launch barrier publishes them to the main domain *)
type chan_stat = {
  mutable in_words : float;
  mutable out_words : float;
  mutable transfers : float;
}

(* ----------------------------------------------------------------- *)
(* The backend                                                        *)

type rt = {
  cfg : cfg;
  session : Exec.session;
  param_env : string -> Zint.t;
  memory : Memory.t;
  apool : Arena.pool;
  wpool : Pool.t;
  channels : Dma.channel array;  (* empty unless double_buffer *)
  collect_dma : bool;
  user_hook : (string -> int -> [ `Ld | `St ] -> unit) option;
  hook_m : Mutex.t;
  totals : Exec.counters;
  run_dma : dma_acc;
  chan_stats : chan_stat array;
  ev : Ev.ring array option;
      (* per-worker exec rings; [None] when events are disabled, so
         the hot path tests one option and allocates nothing *)
  mutable launch_seq : int;
  mutable launches : Exec.launch list;
  mutable blocks_run : int;
}

let ev_ring rt w = match rt.ev with Some a -> Some a.(w) | None -> None

let sum_words moved = List.fold_left (fun a (_, w) -> a +. w) 0.0 moved

let block_hook rt tracker i =
  match (tracker, rt.user_hook) with
  | None, None -> None
  | _ ->
    Some
      (fun arr addr kind ->
        (match rt.user_hook with
         | Some f ->
           Mutex.lock rt.hook_m;
           f arr addr kind;
           Mutex.unlock rt.hook_m
         | None -> ());
        match tracker with
        | Some tr -> tracker_record tr i arr addr kind
        | None -> ())

let acquire_arena ?er rt =
  let res =
    match er with
    | Some r when Ev.enabled () ->
      (* records the wait for pool capacity; ~0-length when the pool
         has room immediately *)
      let t0 = Ev.now () in
      let res = Arena.acquire rt.apool ~words:rt.cfg.block_words in
      Ev.emit r ~t0 (Ev.Idle `Arena);
      res
    | _ -> Arena.acquire rt.apool ~words:rt.cfg.block_words
  in
  match res with
  | Ok a -> a
  | Error e -> raise (Runtime_error (Arena.error_message e))

let merge_outcomes (a : Exec.block_outcome option)
    (b : Exec.block_outcome option) (c : Exec.block_outcome option) =
  let acc = fresh_acc () in
  let counters = Exec.fresh () in
  List.iter
    (function
      | None -> ()
      | Some (o : Exec.block_outcome) ->
        Exec.add_into o.Exec.b_counters counters;
        acc_add acc o.Exec.b_dma)
    [ a; b; c ];
  (counters, acc_dma acc)

type launch_slots = {
  launch_id : int;  (* tags events so the report can group by launch *)
  tasks : ((string * Zint.t) list * Ast.stm list) array;
  host_bindings : (string * Zint.t) list;  (* outer-first *)
  in_slots : Exec.block_outcome option array;
  core_slots : Exec.block_outcome option array;
  out_slots : Exec.block_outcome option array;
  chan_of : int array;
}

let task_bindings st i =
  let task_b, _ = st.tasks.(i) in
  (* run_block applies bindings in list order (later wins): host outer
     scope first, then the block chain, innermost last *)
  st.host_bindings @ List.rev task_b

let run_phase rt st hook i ~memory phase =
  let bindings = task_bindings st i in
  Exec.run_block rt.session ~memory ?on_global:(hook i)
    ~collect_dma:rt.collect_dma ~bindings phase

(* run one block body in a caller-supplied arena *)
let exec_task_in_arena rt st hook w i arena =
  let _, body = st.tasks.(i) in
  let er = ev_ring rt w in
  (match er with
   | Some r when Ev.enabled () ->
     let t0 = Ev.now () in
     st.core_slots.(i) <-
       Some (run_phase rt st hook i ~memory:(Arena.memory arena) body);
     Ev.emit r ~t0
       (Ev.Block { launch = st.launch_id; block = i; phase = Ev.Whole })
   | _ ->
     st.core_slots.(i) <-
       Some (run_phase rt st hook i ~memory:(Arena.memory arena) body));
  st.chan_of.(i) <- w

(* simple path: the whole block body runs on the worker in a fresh
   arena *)
let exec_task_plain rt st hook w i =
  let er = ev_ring rt w in
  let arena = acquire_arena ?er rt in
  Fun.protect ~finally:(fun () -> Arena.release arena) @@ fun () ->
  exec_task_in_arena rt st hook w i arena

(* inter-tile reuse path: tasks are partitioned into chains (runs of
   consecutive blocks that differ only in the innermost block origin);
   a whole chain executes on one worker in ONE arena, so local buffers
   — and in particular the resident slabs the plan's delta guards rely
   on — survive from block to block.  The arena is released (locals
   cleared) only at chain boundaries; a fresh chain therefore always
   starts from a clean scratchpad and its first block's full move-in.
   Assignment is chain-static ([chain mod jobs]): stealing mid-chain
   would break residency, and the barrier reduction keeps counter
   totals bit-identical regardless of worker count anyway. *)
let exec_tasks_chained rt st hook chain_id w =
  let n = Array.length st.tasks in
  let jobs = rt.wpool.Pool.jobs in
  let er = ev_ring rt w in
  let arena = ref None in
  let release_current () =
    match !arena with
    | Some a ->
      arena := None;
      Arena.release a
    | None -> ()
  in
  Fun.protect ~finally:release_current @@ fun () ->
  let prev_chain = ref (-1) in
  for i = 0 to n - 1 do
    let c = chain_id.(i) in
    if c mod jobs = w then begin
      if c <> !prev_chain then begin
        release_current ();
        arena := Some (acquire_arena ?er rt);
        prev_chain := c
      end;
      exec_task_in_arena rt st hook w i (Option.get !arena)
    end
  done

(* Chains are contiguous in sequential task order because
   [enumerate_tasks] walks the block-loop chain in lexicographic
   order; task bindings are inner-first, so two consecutive tasks
   belong to one chain exactly when their binding TAILS (everything
   but the innermost origin) agree. *)
let chain_ids tasks =
  let n = Array.length tasks in
  let ids = Array.make n 0 in
  let same_tail a b =
    match (a, b) with
    | _ :: ta, _ :: tb ->
      (try
         List.for_all2
           (fun (na, va) (nb, vb) ->
             String.equal na nb && Zint.compare va vb = 0)
           ta tb
       with Invalid_argument _ -> false)
    | _ -> false
  in
  for i = 1 to n - 1 do
    let ba, _ = tasks.(i - 1) and bb, _ = tasks.(i) in
    ids.(i) <- (if same_tail ba bb then ids.(i - 1) else ids.(i - 1) + 1)
  done;
  ids

(* double-buffered path: the worker's DMA channel carries the move
   phases; block j+1's move-in is staged while block j computes *)
let exec_tasks_pipelined rt st hook (ins, core, outs) w next_task =
  let chan = rt.channels.(w) in
  let er = ev_ring rt w in
  let events_on = rt.ev <> None in
  let stage i arena =
    let run () =
      st.in_slots.(i) <-
        Some (run_phase rt st hook i ~memory:(Arena.memory arena) ins)
    in
    let t =
      if events_on then
        Dma.submit chan run ~event:(fun () ->
          let words =
            match st.in_slots.(i) with
            | Some o -> sum_words o.Exec.b_dma.Exec.moved_in
            | None -> 0.0
          in
          Ev.Dma_transfer
            { launch = st.launch_id; block = i; dir = `In; words })
      else Dma.submit chan run
    in
    (i, arena, t)
  in
  let out_tickets = ref [] in
  let rec go (i, arena, tin) =
    let next =
      match next_task () with
      | None -> None
      | Some j -> (
        (* opportunistic prefetch: skip when the pool is full now *)
        match Arena.try_acquire rt.apool ~words:rt.cfg.block_words with
        | Some a -> Some (`Staged (stage j a))
        | None -> Some (`Plain j))
    in
    (match er with
     | Some r when Ev.enabled () ->
       let t0 = Ev.now () in
       Dma.await tin;
       Ev.emit r ~t0 (Ev.Dma_wait { launch = st.launch_id; block = i })
     | _ -> Dma.await tin);
    (match er with
     | Some r when Ev.enabled () ->
       let t0 = Ev.now () in
       st.core_slots.(i) <-
         Some (run_phase rt st hook i ~memory:(Arena.memory arena) core);
       Ev.emit r ~t0
         (Ev.Block { launch = st.launch_id; block = i; phase = Ev.Compute })
     | _ ->
       st.core_slots.(i) <-
         Some (run_phase rt st hook i ~memory:(Arena.memory arena) core));
    st.chan_of.(i) <- w;
    let run_out () =
      Fun.protect ~finally:(fun () -> Arena.release arena) @@ fun () ->
      st.out_slots.(i) <-
        Some (run_phase rt st hook i ~memory:(Arena.memory arena) outs)
    in
    let tout =
      if events_on then
        Dma.submit chan run_out ~event:(fun () ->
          let words =
            match st.out_slots.(i) with
            | Some o -> sum_words o.Exec.b_dma.Exec.moved_out
            | None -> 0.0
          in
          Ev.Dma_transfer
            { launch = st.launch_id; block = i; dir = `Out; words })
      else Dma.submit chan run_out
    in
    out_tickets := tout :: !out_tickets;
    match next with
    | Some (`Staged s) -> go s
    | Some (`Plain j) -> go (stage j (acquire_arena ?er rt))
    | None -> ()
  in
  (match next_task () with
   | None -> ()
   | Some i -> go (stage i (acquire_arena ?er rt)));
  List.iter Dma.await !out_tickets

let exec_launch rt host_bindings (l : Ast.loop) =
  (* host bindings are inner-first while walking (innermost shadows);
     launch state wants them outer-first for [run_block] *)
  let lookup n =
    match List.assoc_opt n host_bindings with
    | Some v -> v
    | None -> rt.param_env n
  in
  let tasks = enumerate_tasks lookup l in
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    let module J = Emsc_obs.Json in
    Emsc_obs.Trace.span "runtime.launch"
      ~args:
        [ ("grid", J.Float (float_of_int n));
          ("jobs", J.Int rt.cfg.jobs);
          ( "policy",
            J.Str
              (if rt.cfg.inter_tile_reuse then "chain-static"
               else
                 match rt.cfg.policy with
                 | Static -> "static"
                 | Work_stealing -> "work-stealing") ) ]
    @@ fun () ->
    let launch_id = rt.launch_seq in
    rt.launch_seq <- launch_id + 1;
    let st =
      { launch_id; tasks; host_bindings = List.rev host_bindings;
        in_slots = Array.make n None; core_slots = Array.make n None;
        out_slots = Array.make n None; chan_of = Array.make n 0 }
    in
    let tracker = if rt.cfg.track_ownership then Some (fresh_tracker ()) else None in
    let hook = block_hook rt tracker in
    let _, body0 = tasks.(0) in
    (* residency needs the plain path: the pipelined executor releases
       each block's arena after its move-out, which would wipe the
       resident slab between blocks of a chain *)
    let phases =
      if
        rt.cfg.double_buffer && (not rt.cfg.inter_tile_reuse)
        && Array.length rt.channels > 0
      then pipeline_phases body0
      else None
    in
    (* the task source is built once per launch — with Work_stealing
       the deques must be shared by every worker *)
    let next_task =
      match rt.cfg.policy with
      | Static ->
        fun w ->
          let k = ref w in
          fun () ->
            if !k < n then begin
              let i = !k in
              k := !k + rt.wpool.Pool.jobs;
              Some i
            end
            else None
      | Work_stealing ->
        let jobs = rt.wpool.Pool.jobs in
        let chunk = (n + jobs - 1) / jobs in
        let deques =
          Array.init jobs (fun v ->
            Deque.of_range ~lo:(min n (v * chunk)) ~hi:(min n ((v + 1) * chunk)))
        in
        fun w () ->
          match Deque.next deques.(w) with
          | Some i -> Some i
          | None ->
            let record victim ok =
              match ev_ring rt w with
              | Some r when Ev.enabled () ->
                let t = Ev.now () in
                Ev.emit r ~t0:t ~t1:t (Ev.Steal { victim; ok })
              | _ -> ()
            in
            let rec scan k =
              if k = jobs then None
              else begin
                let victim = (w + k) mod jobs in
                match Deque.steal deques.(victim) with
                | Some i ->
                  record victim true;
                  Some i
                | None ->
                  record victim false;
                  scan (k + 1)
              end
            in
            scan 1
    in
    let chains =
      if rt.cfg.inter_tile_reuse then Some (chain_ids tasks) else None
    in
    Pool.dispatch rt.wpool (fun w ->
      match chains with
      | Some chain_id -> exec_tasks_chained rt st hook chain_id w
      | None -> (
        let next = next_task w in
        match phases with
        | Some p -> exec_tasks_pipelined rt st hook p w next
        | None ->
          let rec drain () =
            match next () with
            | None -> ()
            | Some i ->
              exec_task_plain rt st hook w i;
              drain ()
          in
          drain ()));
    (match tracker with
     | Some { violation = Some msg; _ } -> raise (Ownership_violation msg)
     | _ -> ());
    (* barrier reduction, in block order: exact for the integer-valued
       counters, so totals are independent of jobs and policy *)
    let delta = Exec.fresh () in
    for i = 0 to n - 1 do
      let c, dma =
        merge_outcomes st.in_slots.(i) st.core_slots.(i) st.out_slots.(i)
      in
      Exec.add_into c delta;
      acc_add rt.run_dma dma;
      let cs = rt.chan_stats.(st.chan_of.(i)) in
      List.iter (fun (_, words) -> cs.in_words <- cs.in_words +. words)
        dma.Exec.moved_in;
      List.iter (fun (_, words) -> cs.out_words <- cs.out_words +. words)
        dma.Exec.moved_out;
      if dma.Exec.copies > 0.0 then cs.transfers <- cs.transfers +. 1.0
    done;
    Exec.add_into delta rt.totals;
    rt.blocks_run <- rt.blocks_run + n;
    Emsc_obs.Trace.count "launch.flops" delta.Exec.flops;
    Emsc_obs.Trace.count "launch.global" (Exec.total_global delta);
    Emsc_obs.Trace.count "launch.smem" (Exec.total_smem delta);
    Emsc_obs.Trace.count "launch.syncs" delta.Exec.syncs;
    let grid = float_of_int n in
    rt.launches <-
      { Exec.grid; per_block = Exec.scale_counters delta (1.0 /. grid);
        repeat = 1.0 }
      :: rt.launches
  end

(* host-level statement: no block loop inside, runs on this domain *)
let exec_host_leaf rt host_bindings (s : Ast.stm) =
  let bindings = List.rev host_bindings in
  let o =
    Exec.run_block rt.session ~memory:rt.memory
      ?on_global:rt.user_hook ~collect_dma:rt.collect_dma ~bindings [ s ]
  in
  Exec.add_into o.Exec.b_counters rt.totals;
  acc_add rt.run_dma o.Exec.b_dma

let rec exec_host rt host_bindings (s : Ast.stm) =
  match s with
  | Ast.Loop l when l.Ast.par = Ast.Block -> exec_launch rt host_bindings l
  | Ast.Loop l when List.exists contains_block l.Ast.body ->
    let lookup n =
      match List.assoc_opt n host_bindings with
      | Some v -> v
      | None -> rt.param_env n
    in
    let lb = Ast.eval lookup l.Ast.lb and ub = Ast.eval lookup l.Ast.ub in
    if Zint.compare lb ub <= 0 then begin
      let trip =
        Zint.to_int_exn
          (Zint.add (Zint.fdiv (Zint.sub ub lb) l.Ast.step) Zint.one)
      in
      let v = ref lb in
      for _ = 1 to trip do
        List.iter
          (exec_host rt ((l.Ast.var, !v) :: host_bindings))
          l.Ast.body;
        v := Zint.add !v l.Ast.step
      done
    end
  | Ast.Guard (conds, body) when List.exists contains_block body ->
    let lookup n =
      match List.assoc_opt n host_bindings with
      | Some v -> v
      | None -> rt.param_env n
    in
    if
      List.for_all
        (fun c -> not (Zint.is_negative (Ast.eval lookup c)))
        conds
    then List.iter (exec_host rt host_bindings) body
  | s -> exec_host_leaf rt host_bindings s

let flush_metrics rt =
  if Emsc_obs.Metrics.enabled () then begin
    let open Emsc_obs in
    Exec.flush_dma_metrics (acc_dma rt.run_dma);
    Metrics.counter "exec.runs" 1.0;
    Metrics.counter "exec.flops" rt.totals.Exec.flops;
    Metrics.counter "exec.global_loads" rt.totals.Exec.g_ld;
    Metrics.counter "exec.global_stores" rt.totals.Exec.g_st;
    Metrics.counter "exec.smem_loads" rt.totals.Exec.s_ld;
    Metrics.counter "exec.smem_stores" rt.totals.Exec.s_st;
    Metrics.counter "exec.syncs" rt.totals.Exec.syncs;
    Metrics.counter "exec.fences" rt.totals.Exec.fences;
    Metrics.counter "runtime.blocks" (float_of_int rt.blocks_run);
    Metrics.counter "runtime.launches"
      (float_of_int (List.length rt.launches));
    Metrics.gauge_max "runtime.arena_peak_concurrent"
      (float_of_int (Arena.peak_in_use rt.apool));
    (* per-block scratchpad peaks, observed at arena release: tighter
       than the sequential executor's cumulative union of windows *)
    let occ = Arena.peak_occupancy rt.apool in
    List.iter
      (fun (name, cells) ->
        Metrics.gauge_max
          ~labels:[ ("buffer", name) ]
          "exec.scratchpad_occupancy_words" (float_of_int cells))
      occ;
    if occ <> [] then
      Metrics.gauge_max "exec.scratchpad_occupancy_total_words"
        (float_of_int (List.fold_left (fun a (_, c) -> a + c) 0 occ));
    Array.iteri
      (fun i cs ->
        if cs.transfers > 0.0 then begin
          let labels = [ ("channel", "ch" ^ string_of_int i) ] in
          Metrics.counter ~labels "runtime.dma.move_in_words" cs.in_words;
          Metrics.counter ~labels "runtime.dma.move_out_words" cs.out_words;
          Metrics.counter ~labels "runtime.dma.transfers" cs.transfers
        end)
      rt.chan_stats
  end

let run ~prog ?local_ref ~param_env ~memory ?on_global
    ?(cfg = default_cfg ~jobs:1) stms =
  let cfg = { cfg with jobs = max 1 cfg.jobs } in
  let session = Exec.session ~prog ?local_ref ~param_env () in
  let apool =
    Arena.create_pool ?capacity_words:cfg.capacity_words
      ?max_arenas:cfg.max_concurrent_blocks ~base:memory ()
  in
  let wpool = Pool.create cfg.jobs in
  let channels =
    if cfg.double_buffer then
      Array.init cfg.jobs (fun i -> Dma.create ~id:i)
    else [||]
  in
  let ev =
    if Ev.enabled () then begin
      (* one exec track per worker, one DMA lane per channel, one
         arena-occupancy track; registered up front so the hot path
         only indexes arrays *)
      Array.iter
        (fun ch ->
          Dma.set_event_ring ch
            (Ev.ring ~kind:Ev.Dma_track
               ("dma" ^ string_of_int (Dma.id ch))))
        channels;
      Arena.set_event_ring apool (Ev.ring ~kind:Ev.Arena_track "arena");
      Some
        (Array.init cfg.jobs (fun i ->
           Ev.ring ~kind:Ev.Exec_track ("worker" ^ string_of_int i)))
    end
    else None
  in
  let rt =
    { cfg; session; param_env; memory; apool; wpool; channels;
      collect_dma = Emsc_obs.Metrics.enabled () || Ev.enabled ();
      user_hook = on_global;
      hook_m = Mutex.create (); totals = Exec.fresh ();
      run_dma = fresh_acc ();
      chan_stats =
        Array.init cfg.jobs (fun _ ->
          { in_words = 0.; out_words = 0.; transfers = 0. });
      ev; launch_seq = 0; launches = []; blocks_run = 0 }
  in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown wpool;
      Array.iter Dma.shutdown channels)
  @@ fun () ->
  Emsc_obs.Trace.span "runtime.run"
    ~args:[ ("jobs", Emsc_obs.Json.Int cfg.jobs) ]
  @@ fun () ->
  List.iter (exec_host rt []) stms;
  flush_metrics rt;
  { Exec.totals = rt.totals; launches = List.rev rt.launches }

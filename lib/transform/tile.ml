open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir
open Emsc_codegen

type dim_spec = {
  block : int option;
  mem : int option;
  thread : int option;
}

let no_tiling = { block = None; mem = None; thread = None }

type spec = dim_spec array

(* --- unimodular re-indexing -------------------------------------------- *)

let integer_inverse u =
  let d = Mat.rows u in
  if Mat.cols u <> d then invalid_arg "Tile.apply_unimodular: not square";
  let cols =
    Array.init d (fun j ->
      match Mat.solve u (Vec.unit d j) with
      | None -> invalid_arg "Tile.apply_unimodular: singular"
      | Some qs ->
        Array.map (fun q ->
          if not (Q.is_integer q) then
            invalid_arg "Tile.apply_unimodular: not unimodular";
          Q.num q)
          qs)
  in
  (* cols.(j).(i) = (U^-1)_{i,j}; build row-major U^-1 *)
  Array.init d (fun i -> Array.init d (fun j -> cols.(j).(i)))

(* x = U^-1 y; rewrite a row over (x, params, 1) into (y, params, 1) *)
let rewrite_row ~uinv ~depth ~np (row : Vec.t) =
  let out = Vec.make (depth + np + 1) in
  for j = 0 to depth - 1 do
    let acc = ref Zint.zero in
    for i = 0 to depth - 1 do
      acc := Zint.add !acc (Zint.mul row.(i) uinv.(i).(j))
    done;
    out.(j) <- !acc
  done;
  for k = 0 to np do
    out.(depth + k) <- row.(depth + k)
  done;
  out

let apply_unimodular p u =
  let np = Prog.nparams p in
  let uinv = integer_inverse u in
  let depth = Mat.rows u in
  let rewrite_stmt (s : Prog.stmt) =
    if s.Prog.depth <> depth then
      invalid_arg "Tile.apply_unimodular: depth mismatch";
    let rw_rows rows = List.map (rewrite_row ~uinv ~depth ~np) rows in
    let eqs, ineqs = Poly.constraints s.Prog.domain in
    let domain =
      Poly.make ~dim:(depth + np) ~eqs:(rw_rows eqs) ~ineqs:(rw_rows ineqs)
    in
    let rw_access (a : Prog.access) =
      { a with Prog.map = Array.map (rewrite_row ~uinv ~depth ~np) a.Prog.map }
    in
    let rw_expr e =
      let rec go = function
        | Prog.Eref a -> Prog.Eref (rw_access a)
        | (Prog.Eiter _ | Prog.Eparam _ | Prog.Econst _) as e -> e
        | Prog.Eneg e -> Prog.Eneg (go e)
        | Prog.Eabs e -> Prog.Eabs (go e)
        | Prog.Eadd (a, b) -> Prog.Eadd (go a, go b)
        | Prog.Esub (a, b) -> Prog.Esub (go a, go b)
        | Prog.Emul (a, b) -> Prog.Emul (go a, go b)
        | Prog.Ediv (a, b) -> Prog.Ediv (go a, go b)
        | Prog.Emin (a, b) -> Prog.Emin (go a, go b)
        | Prog.Emax (a, b) -> Prog.Emax (go a, go b)
      in
      go e
    in
    { s with
      Prog.domain;
      writes = List.map rw_access s.Prog.writes;
      reads = List.map rw_access s.Prog.reads;
      body =
        Option.map (fun (lhs, rhs) -> (rw_access lhs, rw_expr rhs)) s.Prog.body;
      schedule = Array.map (rewrite_row ~uinv ~depth ~np) s.Prog.schedule }
  in
  { p with Prog.stmts = List.map rewrite_stmt p.Prog.stmts }

(* --- tile-block program -------------------------------------------------- *)

let atomic_extent ds =
  match ds.mem, ds.block with
  | Some m, _ -> Some m
  | None, Some b -> Some b
  | None, None -> None

let origin_names (s : Prog.stmt) spec =
  List.filter_map (fun j ->
    match atomic_extent spec.(j) with
    | Some size ->
      let base = s.Prog.iter_names.(j) in
      let name =
        if spec.(j).mem <> None then base ^ "M"
        else base ^ "T"
      in
      Some (j, name, size)
    | None -> None)
    (List.init (Array.length spec) (fun j -> j))

let origin_context p spec =
  let np = Prog.nparams p in
  let stmt =
    match p.Prog.stmts with
    | [ s ] -> s
    | _ -> invalid_arg "Tile.origin_context: single-statement programs only"
  in
  let origins = origin_names stmt spec in
  let no = List.length origins in
  let rows =
    List.concat
      (List.mapi
         (fun k (j, _, _) ->
           match Poly.var_bounds_int stmt.Prog.domain j with
           | Some lo, Some hi ->
             let ge = Vec.make (np + no + 1) in
             ge.(np + k) <- Zint.one;
             ge.(np + no) <- Zint.neg lo;
             let le = Vec.make (np + no + 1) in
             le.(np + k) <- Zint.minus_one;
             le.(np + no) <- hi;
             [ ge; le ]
           | _ -> [])
         origins)
  in
  Poly.make ~dim:(np + no) ~eqs:[] ~ineqs:rows

let tile_program p spec =
  Emsc_obs.Trace.span "tile.tile_program" @@ fun () ->
  let np = Prog.nparams p in
  let stmt =
    match p.Prog.stmts with
    | [ s ] -> s
    | _ -> invalid_arg "Tile.tile_program: single-statement programs only"
  in
  let depth = stmt.Prog.depth in
  if Array.length spec <> depth then invalid_arg "Tile.tile_program: spec size";
  let origins = origin_names stmt spec in
  let no = List.length origins in
  let params' =
    Array.append p.Prog.params
      (Array.of_list (List.map (fun (_, n, _) -> n) origins))
  in
  (* widen a row over (iters, params, 1) to (iters, params ++ origins, 1) *)
  let widen (row : Vec.t) =
    let out = Vec.make (depth + np + no + 1) in
    Array.blit row 0 out 0 (depth + np);
    out.(depth + np + no) <- row.(depth + np);
    out
  in
  let domain =
    let d = Poly.insert_dims stmt.Prog.domain ~pos:(depth + np) ~count:no in
    (* origin_k <= x_j <= origin_k + size - 1 *)
    List.fold_left (fun acc (k, (j, _, size)) ->
      let ge = Vec.make (depth + np + no + 2 - 1) in
      ge.(j) <- Zint.one;
      ge.(depth + np + k) <- Zint.minus_one;
      let le = Vec.make (depth + np + no + 1) in
      le.(j) <- Zint.minus_one;
      le.(depth + np + k) <- Zint.one;
      le.(depth + np + no) <- Zint.of_int (size - 1);
      Poly.add_ineq (Poly.add_ineq acc ge) le)
      d
      (List.mapi (fun k o -> (k, o)) origins)
  in
  let widen_access (a : Prog.access) =
    { a with Prog.map = Array.map widen a.Prog.map }
  in
  let widen_expr e =
    let rec go = function
      | Prog.Eref a -> Prog.Eref (widen_access a)
      | (Prog.Eiter _ | Prog.Eparam _ | Prog.Econst _) as e -> e
      | Prog.Eneg e -> Prog.Eneg (go e)
      | Prog.Eabs e -> Prog.Eabs (go e)
      | Prog.Eadd (a, b) -> Prog.Eadd (go a, go b)
      | Prog.Esub (a, b) -> Prog.Esub (go a, go b)
      | Prog.Emul (a, b) -> Prog.Emul (go a, go b)
      | Prog.Ediv (a, b) -> Prog.Ediv (go a, go b)
      | Prog.Emin (a, b) -> Prog.Emin (go a, go b)
      | Prog.Emax (a, b) -> Prog.Emax (go a, go b)
    in
    go e
  in
  let stmt' =
    { stmt with
      Prog.domain;
      writes = List.map widen_access stmt.Prog.writes;
      reads = List.map widen_access stmt.Prog.reads;
      body =
        Option.map (fun (lhs, rhs) -> (widen_access lhs, widen_expr rhs))
          stmt.Prog.body;
      schedule = Array.map widen stmt.Prog.schedule }
  in
  let arrays' =
    List.map (fun (d : Prog.array_decl) ->
      { d with
        Prog.extents =
          Array.map (fun row ->
            let out = Vec.make (np + no + 1) in
            Array.blit row 0 out 0 np;
            out.(np + no) <- row.(np);
            out)
            d.Prog.extents })
      p.Prog.arrays
  in
  { Prog.params = params'; arrays = arrays'; stmts = [ stmt' ] }

(* --- tiled loop-nest generation ------------------------------------------ *)

let movement_profile p spec (mi, mo) =
  let stmt =
    match p.Prog.stmts with
    | [ s ] -> s
    | _ -> invalid_arg "Tile.movement_profile: single-statement programs only"
  in
  let depth = stmt.Prog.depth in
  let bounds j =
    match Poly.var_bounds_int stmt.Prog.domain j with
    | Some lo, Some hi -> (Zint.to_int_exn lo, Zint.to_int_exn hi)
    | _ -> invalid_arg "Tile.movement_profile: unbounded domain"
  in
  let name j = stmt.Prog.iter_names.(j) in
  let dims = List.init depth (fun j -> j) in
  (* ordered outer levels: (var, kind, trips) *)
  let block_levels =
    List.filter_map (fun j ->
      Option.map (fun sz ->
        let lo, hi = bounds j in
        (name j ^ "T", `Block, float_of_int ((hi - lo + sz) / sz)))
        spec.(j).block)
      dims
  in
  let mem_levels =
    List.filter_map (fun j ->
      Option.map (fun sz ->
        let extent =
          match spec.(j).block with
          | Some b -> b
          | None -> let lo, hi = bounds j in hi - lo + 1
        in
        (name j ^ "M", `Mem, float_of_int ((extent + sz - 1) / sz)))
        spec.(j).mem)
      dims
  in
  let outer = block_levels @ mem_levels in
  let needed = Ast.free_vars (mi @ mo) in
  let rec depth_of i acc = function
    | [] -> acc
    | (v, _, _) :: rest ->
      let acc = if List.mem v needed then i + 1 else acc in
      depth_of (i + 1) acc rest
  in
  let n_block = List.length block_levels in
  let d = max n_block (depth_of 0 0 outer) in
  (* occurrences per block tile = product of trips of the mem levels
     the movement sits inside *)
  List.filteri (fun i _ -> i < d) outer
  |> List.fold_left
       (fun acc (_, kind, trips) ->
         match kind with `Mem -> acc *. trips | `Block -> acc)
       1.0

let block_tile_count p spec =
  let stmt =
    match p.Prog.stmts with
    | [ s ] -> s
    | _ -> invalid_arg "Tile.block_tile_count: single-statement programs only"
  in
  let depth = stmt.Prog.depth in
  let count = ref 1.0 in
  for j = 0 to depth - 1 do
    match spec.(j).block with
    | None -> ()
    | Some sz ->
      (match Poly.var_bounds_int stmt.Prog.domain j with
       | Some lo, Some hi ->
         let lo = Zint.to_int_exn lo and hi = Zint.to_int_exn hi in
         count := !count *. float_of_int ((hi - lo + sz) / sz)
       | _ -> invalid_arg "Tile.block_tile_count: unbounded domain")
  done;
  !count

(* --- inter-tile reuse: the innermost block origin ------------------------ *)

let innermost_block_dim spec =
  let last = ref None in
  Array.iteri (fun j (d : dim_spec) -> if d.block <> None then last := Some j)
    spec;
  !last

let inter_tile_origin p spec =
  match p.Prog.stmts with
  | [ s ] when Array.length spec = s.Prog.depth -> begin
    match innermost_block_dim spec with
    (* the delta is keyed on consecutive values of the *innermost*
       block origin — the one sequential task enumeration varies
       fastest.  A dim that is also mem-tiled exposes only its M origin
       to the plan, so it cannot carry the inter-tile delta. *)
    | Some j when spec.(j).mem = None ->
      let sz = match spec.(j).block with Some sz -> sz | None -> assert false in
      let mem_names =
        List.filter_map (fun k ->
          if spec.(k).mem <> None then Some (s.Prog.iter_names.(k) ^ "M")
          else None)
          (List.init (Array.length spec) (fun k -> k))
      in
      Some (s.Prog.iter_names.(j) ^ "T", sz, mem_names)
    | _ -> None
  end
  | _ -> None

type level = {
  var : string;
  lb : Ast.aexpr;
  ub : Ast.aexpr;
  step : int;
  par : Ast.parallelism;
}

let wrap lvl body =
  [ Ast.Loop
      { var = lvl.var; lb = lvl.lb; ub = lvl.ub;
        step = Zint.of_int lvl.step; par = lvl.par; body } ]

let generate p spec ~movement =
  Emsc_obs.Trace.span "tile.generate" @@ fun () ->
  let np = Prog.nparams p in
  if np <> 0 then
    invalid_arg "Tile.generate: program parameters must be instantiated";
  let stmt =
    match p.Prog.stmts with
    | [ s ] -> s
    | _ -> invalid_arg "Tile.generate: single-statement programs only"
  in
  let depth = stmt.Prog.depth in
  if Array.length spec <> depth then invalid_arg "Tile.generate: spec size";
  let bounds =
    Array.init depth (fun j ->
      match Poly.var_bounds_int stmt.Prog.domain j with
      | Some lo, Some hi -> (Zint.to_int_exn lo, Zint.to_int_exn hi)
      | _ -> invalid_arg "Tile.generate: unbounded domain")
  in
  let name j = stmt.Prog.iter_names.(j) in
  let dims = List.init depth (fun j -> j) in
  (* enclosing (var, extent) at each tiling level, per dim *)
  let block_origin j =
    Option.map (fun sz -> (name j ^ "T", sz)) spec.(j).block
  in
  let mem_origin j = Option.map (fun sz -> (name j ^ "M", sz)) spec.(j).mem in
  let thread_origin j =
    Option.map (fun sz -> (name j ^ "t", sz)) spec.(j).thread
  in
  let lo j = fst bounds.(j) and hi j = snd bounds.(j) in
  (* enclosing tile levels, innermost first: `Mem sees block; `Thread
     sees mem then block; `Point sees thread, mem, block *)
  let enclosing upto j =
    let cands =
      match upto with
      | `Mem -> [ block_origin j ]
      | `Thread -> [ mem_origin j; block_origin j ]
      | `Point -> [ thread_origin j; mem_origin j; block_origin j ]
    in
    List.filter_map (fun x -> x) cands
  in
  let lb_of upto j =
    (* the innermost enclosing origin is always >= the outer ones *)
    match enclosing upto j with
    | (v, _) :: _ -> Ast.Var v
    | [] -> Ast.int_ (lo j)
  in
  let ub_of upto j =
    (* every enclosing tile bounds the range: a mem tile larger than
       its block tile must not leak past the block tile's edge *)
    match enclosing upto j with
    | [] -> Ast.int_ (hi j)
    | levels ->
      Ast.simplify
        (Ast.Min
           (Ast.int_ (hi j)
            :: List.map (fun (v, sz) ->
                 Ast.Add (Ast.Var v, Ast.int_ (sz - 1)))
                 levels))
  in
  let block_levels =
    List.filter_map (fun j ->
      Option.map (fun sz ->
        { var = name j ^ "T"; lb = Ast.int_ (lo j); ub = Ast.int_ (hi j);
          step = sz; par = Ast.Block })
        spec.(j).block)
      dims
  in
  let mem_levels =
    List.filter_map (fun j ->
      Option.map (fun sz ->
        { var = name j ^ "M"; lb = lb_of `Mem j; ub = ub_of `Mem j;
          step = sz; par = Ast.Seq })
        spec.(j).mem)
      dims
  in
  let thread_levels =
    List.filter_map (fun j ->
      Option.map (fun sz ->
        { var = name j ^ "t"; lb = lb_of `Thread j; ub = ub_of `Thread j;
          step = sz; par = Ast.Thread })
        spec.(j).thread)
      dims
  in
  let point_levels =
    List.map (fun j ->
      { var = name j; lb = lb_of `Point j; ub = ub_of `Point j; step = 1;
        par = Ast.Seq })
      dims
  in
  let compute =
    [ Ast.Stmt_call
        { stmt_id = stmt.Prog.id;
          iter_args = Array.init depth (fun j -> Ast.Var (name j)) } ]
  in
  let inner_levels = thread_levels @ point_levels in
  let outer_levels = block_levels @ mem_levels in
  let n_outer = List.length outer_levels in
  let n_block = List.length block_levels in
  (* per-buffer movement depth: inside every outer level whose variable
     the movement code mentions (and inside all block levels, since the
     copies run per-block), outside the rest *)
  let depth_of (mi, mo) =
    let needed = Ast.free_vars (mi @ mo) in
    let rec deepest i acc = function
      | [] -> acc
      | lvl :: rest ->
        let acc = if List.mem lvl.var needed then i + 1 else acc in
        deepest (i + 1) acc rest
    in
    max n_block (deepest 0 0 outer_levels)
  in
  let pairs = List.map (fun m -> (depth_of m, m)) movement in
  let at_depth d =
    List.filter_map (fun (pd, m) -> if pd = d then Some m else None) pairs
  in
  let attach core ms =
    if ms = [] then core
    else begin
      let ins = List.concat_map fst ms in
      let outs = List.concat_map snd ms in
      ins @ (Ast.Fence :: core) @ (Ast.Fence :: outs)
    end
  in
  let core = ref (List.fold_right wrap inner_levels compute) in
  (* wrap outer levels from the innermost outwards, attaching each
     buffer's movement just inside the level it needs *)
  let rev_outer = List.rev outer_levels in
  List.iteri (fun k lvl ->
    let depth = n_outer - k in
    core := attach !core (at_depth depth);
    core := wrap lvl !core)
    rev_outer;
  core := attach !core (at_depth 0);
  !core

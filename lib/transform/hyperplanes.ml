open Emsc_arith
open Emsc_linalg
open Emsc_ir
open Emsc_pip

let dep_obj (d : Deps.t) (h : Vec.t) np =
  let ds = d.Deps.src.Prog.depth and dt = d.Deps.dst.Prog.depth in
  let obj = Vec.make (ds + dt + np + 1) in
  Array.iteri (fun i c -> obj.(i) <- Zint.neg c) h;
  Array.iteri (fun i c -> obj.(ds + i) <- c) h;
  obj

let dep_component_bounds p (d : Deps.t) h =
  let np = Prog.nparams p in
  let obj = dep_obj d h np in
  let lo =
    match Ilp.minimize d.Deps.poly obj with
    | Ilp.Opt (v, _) -> Some v
    | Ilp.Unbounded -> None
    | Ilp.Empty -> Some Zint.zero
    | exception Ilp.Gave_up -> None
  in
  let hi =
    match Ilp.maximize d.Deps.poly obj with
    | Ilp.Opt (v, _) -> Some v
    | Ilp.Unbounded -> None
    | Ilp.Empty -> Some Zint.zero
    | exception Ilp.Gave_up -> None
  in
  (lo, hi)

let is_legal p deps h =
  List.for_all (fun d ->
    match fst (dep_component_bounds p d h) with
    | Some v -> not (Zint.is_negative v)
    | None -> false)
    deps

let is_parallel p deps h =
  is_legal p deps h
  && List.for_all (fun d ->
       match snd (dep_component_bounds p d h) with
       | Some v -> Zint.is_zero v || Zint.is_negative v
       | None -> false)
       deps

type band = {
  hyperplanes : Vec.t list;
  parallel : bool list;
}

(* communication volume proxy: sum over deps of the (capped) maximal
   forward component along h *)
let comm_cost p deps h =
  List.fold_left (fun acc d ->
    match snd (dep_component_bounds p d h) with
    | Some v -> acc + min 100 (max 0 (Zint.to_int_exn (Zint.min v (Zint.of_int 100))))
    | None -> acc + 100)
    0 deps

let candidates ~max_coeff depth =
  let rec build dims =
    if dims = 0 then [ [] ]
    else begin
      let rest = build (dims - 1) in
      List.concat_map (fun tail ->
        List.init ((2 * max_coeff) + 1) (fun k -> (k - max_coeff) :: tail))
        rest
    end
  in
  let all = build depth in
  let vecs =
    List.filter_map (fun l ->
      let v = Vec.of_ints l in
      if Vec.is_zero v then None
      else begin
        (* normalize: content 1, first nonzero positive *)
        let v = Vec.normalize v in
        let rec first i = if Zint.is_zero v.(i) then first (i + 1) else v.(i) in
        Some (if Zint.is_negative (first 0) then Vec.neg v else v)
      end)
      all
  in
  let simplicity v =
    Array.fold_left (fun acc c -> acc + Zint.to_int_exn (Zint.abs c)) 0 v
  in
  List.sort_uniq Vec.compare vecs
  |> List.sort (fun a b -> compare (simplicity a) (simplicity b))

let independent chosen v =
  let m = Array.of_list (v :: chosen) in
  Mat.rank m = List.length chosen + 1

let find_band ?(max_coeff = 1) p deps =
  Emsc_obs.Trace.span "hyperplanes.find_band" @@ fun () ->
  let depth =
    match p.Prog.stmts with
    | [] -> invalid_arg "Hyperplanes.find_band: empty program"
    | s :: rest ->
      if List.exists (fun t -> t.Prog.depth <> s.Prog.depth) rest then
        invalid_arg "Hyperplanes.find_band: statements of unequal depth";
      s.Prog.depth
  in
  let cands = candidates ~max_coeff depth in
  Emsc_obs.Trace.count "hyperplanes.candidates" (float_of_int (List.length cands));
  let legal_cands =
    List.filter_map (fun h ->
      if is_legal p deps h then
        Some (h, is_parallel p deps h, comm_cost p deps h)
      else None)
      cands
  in
  Emsc_obs.Trace.count "hyperplanes.legal"
    (float_of_int (List.length legal_cands));
  let chosen = ref [] in
  let flags = ref [] in
  let continue_ = ref true in
  while !continue_ && List.length !chosen < depth do
    let avail =
      List.filter (fun (h, _, _) -> independent !chosen h) legal_cands
    in
    match avail with
    | [] -> continue_ := false
    | _ ->
      let best =
        List.fold_left (fun (bh, bp, bc) (h, par, cost) ->
          if
            (par && not bp)
            || (par = bp && cost < bc)
          then (h, par, cost)
          else (bh, bp, bc))
          (match avail with x :: _ -> x | [] -> assert false)
          (List.tl avail)
      in
      let h, par, _ = best in
      chosen := !chosen @ [ h ];
      flags := !flags @ [ par ]
  done;
  (* order space-first, preserving relative order otherwise *)
  let pairs = List.combine !chosen !flags in
  let space, time = List.partition snd pairs in
  let ordered = space @ time in
  { hyperplanes = List.map fst ordered; parallel = List.map snd ordered }

let transform_matrix band ~depth =
  if List.length band.hyperplanes <> depth then None
  else begin
    let m = Array.of_list band.hyperplanes in
    if Zint.is_one (Zint.abs (Mat.det m)) then Some m else None
  end

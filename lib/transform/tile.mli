(** Multi-level rectangular tiling (Section 4.1) with automatic
    placement of data-movement code (Section 4.2).

    Tiling levels, outermost first, mirror Figure 3:
    - [block]: distributes tiles of the space loops across outer-level
      parallel units (thread blocks);
    - [mem]: further sequential sub-tiling inside a block tile, the
      level "introduced to satisfy the local memory limit";
    - [thread]: distributes the sub-tile's space iterations across
      inner-level parallel units (threads).

    Movement code is placed at the deepest loop level that binds all
    its free variables (tile origins); a tiling loop that is redundant
    for a buffer therefore ends up *below* the buffer's movement code —
    exactly the paper's hoisting rule. *)

open Emsc_linalg
open Emsc_ir
open Emsc_codegen

type dim_spec = {
  block : int option;
  mem : int option;
  thread : int option;
}

val no_tiling : dim_spec

type spec = dim_spec array  (** per (transformed) iterator dimension *)

val apply_unimodular : Prog.t -> Mat.t -> Prog.t
(** Rewrite every statement under iterators [y = U x]; [U] must be
    square unimodular over the common depth.
    @raise Invalid_argument if [U] is not invertible over the
    integers. *)

val origin_names : Prog.stmt -> spec -> (int * string * int) list
(** Per tiled dimension [(dim, origin parameter name, tile extent)]:
    the origin of the atomic (movement-level) tile — the [mem] level
    when present, else [block]. *)

val origin_context : Prog.t -> spec -> Emsc_poly.Poly.t
(** Polyhedron over the tile program's parameters (original parameters
    unconstrained, each origin within its dimension's loop range).
    Pass as [param_context] to {!Emsc_core.Plan.plan_block} so movement
    code is not littered with guards the tiling loops already
    guarantee — those spurious guards would also defeat hoisting. *)

val tile_program : Prog.t -> spec -> Prog.t
(** The "tile block" program handed to the Section 3 framework: tile
    origins become program parameters and each statement's domain is
    restricted to one atomic tile. *)

val movement_profile :
  Prog.t -> spec -> Ast.stm list * Ast.stm list -> float
(** Number of times the movement pair executes per block tile — the
    [∏ N_i / t_i] factor of the Section 4.3 cost model: the product of
    the trip counts of the sequential (mem-level) tiling loops the pair
    is placed inside, honouring the hoisting rule. *)

val block_tile_count : Prog.t -> spec -> float
(** Number of block tiles the spec carves the iteration space into:
    the product of the block-level trip counts ([1.0] with no block
    tiling).  With {!movement_profile} this scales a per-block
    prediction to a whole-program total.
    @raise Invalid_argument on multi-statement programs or unbounded
    domains, like {!movement_profile}. *)

val inter_tile_origin : Prog.t -> spec -> (string * int * string list) option
(** The origin the inter-tile delta movement is keyed on:
    [(origin parameter name, block size, mem-origin names)] of the
    innermost block-tiled dimension — the loop sequential task
    enumeration varies fastest, so consecutive tasks of a chain are
    consecutive values of this origin.  [None] when no dimension is
    block-tiled, or the innermost one is also mem-tiled (its block
    origin is then not a parameter of the tile program).  The
    mem-origin names let the planner refuse the delta for buffers whose
    movement sits inside a mem loop (re-staged per mem iteration, so
    block-to-block residency does not exist for them). *)

val generate :
  Prog.t -> spec -> movement:(Ast.stm list * Ast.stm list) list ->
  Ast.stm list
(** Tiled loop nest for a single-statement program with constant
    rectangular bounds.  Each [(move_in, move_out)] pair (one per
    buffer) references the origin parameter names from
    {!origin_names}; each pair is placed independently at the deepest
    level binding its free variables and bracketed by barriers, so a
    buffer whose data does not depend on an inner tiling loop keeps
    its contents across that loop's iterations (the paper's reuse
    across computational blocks). *)

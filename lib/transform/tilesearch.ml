open Emsc_arith
open Emsc_core
open Emsc_optim

type candidate = {
  t : int array;
  cost : float;
  footprint : int;
}

type problem = {
  ranges : (int * int) array;
  mem_limit_words : int;
  threads : float;
  sync_cost : float;
  transfer_cost : float;
  evaluate : int array -> (float * int) option;
}

let nearest_pow2 v =
  let v = max 1 v in
  let rec go p = if p * 2 <= v then go (p * 2) else p in
  let lower = go 1 in
  if v - lower <= (lower * 2) - v then lower else lower * 2

let clamp_round ?(snap_pow2 = false) ranges x =
  Array.mapi (fun i v ->
    let lo, hi = ranges.(i) in
    let r = int_of_float (Float.round v) in
    let r = if snap_pow2 then nearest_pow2 r else r in
    max lo (min hi r))
    x

let product t = Array.fold_left (fun acc v -> acc *. float_of_int v) 1.0 t

(* Memoized integer evaluation with the penalty used by the continuous
   relaxation: infeasibility is graded so the simplex can walk back
   into the feasible region. *)
let make_penalized pb =
  let cache : (int list, (float * int) option) Hashtbl.t = Hashtbl.create 64 in
  let eval t =
    let key = Array.to_list t in
    match Hashtbl.find_opt cache key with
    | Some r -> r
    | None ->
      Emsc_obs.Trace.count "tilesearch.evals" 1.0;
      let r = pb.evaluate t in
      Hashtbl.replace cache key r;
      r
  in
  let penalized t =
    match eval t with
    | None -> 1e24
    | Some (cost, fp) ->
      let mem_violation =
        Float.max 0.0
          (float_of_int fp -. float_of_int pb.mem_limit_words)
      in
      let par_violation = Float.max 0.0 (pb.threads -. product t) in
      if mem_violation = 0.0 && par_violation = 0.0 then cost
      else
        1e12 +. (mem_violation *. 1e6) +. (par_violation *. 1e8)
  in
  (eval, penalized)

let feasible pb t (cost, fp) =
  if fp <= pb.mem_limit_words && product t >= pb.threads then
    Some { t = Array.copy t; cost; footprint = fp }
  else None

let better a b =
  match a, b with
  | None, x | x, None -> x
  | Some ca, Some cb -> if cb.cost < ca.cost then Some cb else Some ca

let search ?(max_evals = 400) ?(snap_pow2 = false) pb =
  Emsc_obs.Trace.span "tilesearch.search" @@ fun () ->
  let n = Array.length pb.ranges in
  let eval, penalized = make_penalized pb in
  (* the distinct-candidate budget: both phases share the memo table,
     so only cache misses cost pipeline evaluations *)
  let evals = ref 0 in
  let best = ref None in
  let consider t =
    match eval t with
    | Some r -> best := better !best (feasible pb t r)
    | None -> ()
  in
  (* continuous relaxation, as in the paper (relax, minimize, round);
     every probe also feeds the incumbent so the rounding phase cannot
     lose what the relaxation already visited *)
  let f x =
    let t = clamp_round ~snap_pow2 pb.ranges x in
    incr evals;
    if !evals <= max_evals then consider t;
    penalized t
  in
  let mid =
    Array.map (fun (lo, hi) -> (float_of_int lo +. float_of_int hi) /. 2.0)
      pb.ranges
  in
  let low = Array.map (fun (lo, _) -> float_of_int lo) pb.ranges in
  let high = Array.map (fun (_, hi) -> float_of_int hi) pb.ranges in
  let quarter =
    Array.map (fun (lo, hi) ->
      float_of_int lo +. ((float_of_int hi -. float_of_int lo) /. 4.0))
      pb.ranges
  in
  let options =
    { Neldermead.default_options with
      max_iter = max 20 (max_evals / 8);
      initial_step = 0.4 }
  in
  let x_star, _ =
    Neldermead.minimize_multistart ~options ~f
      ~starts:[ mid; low; high; quarter ] ()
  in
  consider (clamp_round ~snap_pow2 pb.ranges x_star);
  (* discrete refinement: +-1 (or x2, /2 when snapping), hill climbing *)
  let start =
    match !best with
    | Some c -> Array.copy c.t
    | None -> clamp_round ~snap_pow2 pb.ranges x_star
  in
  let cur = ref start in
  let improved = ref true in
  let climb_evals = ref 0 in
  let in_range i v =
    let lo, hi = pb.ranges.(i) in
    v >= lo && v <= hi
  in
  let try_move deltas =
    (* deltas: (dim, new value) list *)
    if
      !climb_evals < max_evals
      && List.for_all (fun (i, v) -> in_range i v && v <> !cur.(i)) deltas
    then begin
      let t = Array.copy !cur in
      List.iter (fun (i, v) -> t.(i) <- v) deltas;
      incr climb_evals;
      let before = !best in
      consider t;
      match !best, before with
      | Some now, Some was when now.cost < was.cost ->
        cur := Array.copy now.t;
        improved := true
      | Some now, None ->
        cur := Array.copy now.t;
        improved := true
      | _ -> ()
    end
  in
  let steps i =
    if snap_pow2 then [ !cur.(i) * 2; !cur.(i) / 2 ]
    else [ !cur.(i) - 1; !cur.(i) + 1; !cur.(i) * 2; !cur.(i) / 2 ]
  in
  while !improved && !climb_evals < max_evals do
    improved := false;
    (* single-dimension moves *)
    for i = 0 to n - 1 do
      List.iter (fun v -> try_move [ (i, v) ]) (steps i)
    done;
    (* compound trades: grow one dimension while shrinking another, to
       slide along an active memory-capacity wall instead of sticking
       to a corner of it *)
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          List.iter (fun vi ->
            List.iter (fun vj -> try_move [ (i, vi); (j, vj) ]) (steps j))
            (steps i)
      done
    done
  done;
  !best

let pipeline_problem ~prog ~spec_of ~ranges ~mem_limit_words ~threads
    ~sync_cost ~transfer_cost () =
  let zero_env _ = Zint.zero in
  let evaluate t =
    Emsc_obs.Trace.span "tilesearch.evaluate"
      ~args:
        [ ( "t",
            Emsc_obs.Json.List
              (Array.to_list (Array.map (fun v -> Emsc_obs.Json.Int v) t)) ) ]
    @@ fun () ->
    match
      let spec = spec_of t in
      let tp = Tile.tile_program prog spec in
      let ctx = Tile.origin_context prog spec in
      let plan = Plan.plan_block ~arch:`Gpu ~param_context:ctx tp in
      let footprint =
        Zint.to_int_exn (Plan.total_footprint plan zero_env)
      in
      let cost =
        List.fold_left (fun acc (b : Plan.buffered) ->
          let occ =
            Tile.movement_profile prog spec (b.Plan.move_in, b.Plan.move_out)
          in
          let vol kind =
            (* an unknown movement volume is treated pessimistically:
               infinite cost keeps the search away from candidates whose
               data-movement bound cannot be established, instead of the
               old behaviour of silently pricing them at zero *)
            match
              Movement.volume_upper_bound tp
                b.Plan.buffer.Alloc.partition ~kind ~env:zero_env
            with
            | Some v -> Zint.to_float v
            | None -> Float.infinity
          in
          let vin = vol `Read and vout = vol `Write in
          let term v =
            if v <= 0.0 then 0.0
            else
              occ
              *. ((threads *. sync_cost) +. (v *. transfer_cost /. threads))
          in
          acc +. term vin +. term vout)
          0.0 plan.Plan.buffered
      in
      (cost, footprint)
    with
    | result -> Some result
    | exception _ -> None
  in
  { ranges; mem_limit_words; threads; sync_cost; transfer_cost; evaluate }

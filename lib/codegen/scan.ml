open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_pip

let bound_to_aexpr ~names ~kind (a, e) =
  (* lower: x >= ceil(-e / a); upper: x <= floor(e / a) *)
  match kind with
  | `Lower ->
    let neg = Ast.vec_to_aexpr ~names (Vec.neg e) in
    if Zint.is_one a then neg else Ast.Cdiv (neg, a)
  | `Upper ->
    let pos = Ast.vec_to_aexpr ~names e in
    if Zint.is_one a then pos else Ast.Fdiv (pos, a)

let scan_poly_impl ?context ~names ~outer ~body p =
  let dim = Poly.dim p in
  if Array.length names < dim then invalid_arg "Scan.scan_poly: names";
  let known =
    Option.map (fun c ->
      if Poly.dim c <> outer then invalid_arg "Scan.scan_poly: context dim";
      Poly.insert_dims c ~pos:outer ~count:(dim - outer))
      context
  in
  let p = match known with Some k -> Poly.intersect p k | None -> p in
  if Poly.is_empty p then []
  else begin
    let name i = names.(i) in
    let levels = Bounds.loop_bounds p in
    (* guards from the residual constraints over dims < outer, minus
       whatever the caller-supplied context already guarantees *)
    let residual =
      Poly.remove_redundant
        (Poly.eliminate_dims p (List.init (dim - outer) (fun i -> outer + i)))
    in
    let guard_rows =
      let eqs, ineqs = Poly.constraints residual in
      let rows = List.concat_map (fun e -> [ e; Vec.neg e ]) eqs @ ineqs in
      match context with
      | None -> rows
      | Some c ->
        List.filter (fun row -> not (Poly.implies c row)) rows
    in
    let guards =
      List.map (Ast.vec_to_aexpr ~names:name) guard_rows
    in
    let always_false =
      List.exists
        (function Ast.Const c -> Zint.is_negative c | _ -> false)
        guards
    in
    let guards =
      List.filter (function Ast.Const _ -> false | _ -> true) guards
    in
    (* the FM chain behind [loop_bounds] tightens each bound to the
       integer grid, so a piece with rational points but no integer
       points (e.g. a make_disjoint sliver pinning a dim between 10/3
       and 10/3) projects to a contradictory residue: scan nothing
       rather than misreport the missing bound rows as "unbounded" *)
    if always_false || Poly.is_empty residual then []
    else begin
      let rec build j =
        if j >= dim then body
        else begin
          let { Bounds.lowers; uppers } = levels.(j) in
          if lowers = [] || uppers = [] then
            invalid_arg
              (Printf.sprintf "Scan.scan_poly: dimension %d (%s) unbounded" j
                 (name j));
          let lb =
            Ast.simplify
              (Ast.Max
                 (List.map (bound_to_aexpr ~names:name ~kind:`Lower) lowers))
          in
          let ub =
            Ast.simplify
              (Ast.Min
                 (List.map (bound_to_aexpr ~names:name ~kind:`Upper) uppers))
          in
          [ Ast.Loop
              { var = name j; lb; ub; step = Zint.one; par = Ast.Seq;
                body = build (j + 1) } ]
        end
      in
      let loops = build outer in
      match guards with [] -> loops | _ -> [ Ast.Guard (guards, loops) ]
    end
  end

let scan_poly ?context ~names ~outer ~body p =
  if not (Emsc_obs.Prof.enabled ()) then
    scan_poly_impl ?context ~names ~outer ~body p
  else
    Emsc_obs.Prof.probe "scan.poly" (fun () ->
      scan_poly_impl ?context ~names ~outer ~body p)

let scan_uset_impl ?context ~names ~outer ~body u =
  let disjoint = Uset.make_disjoint u in
  let keyed =
    List.map (fun p ->
      let key =
        match Ilp.lexmin p with
        | Some pt -> Some pt
        | None -> None
        | exception Ilp.Gave_up -> None
      in
      (key, p))
      (Uset.pieces disjoint)
  in
  let cmp (ka, _) (kb, _) =
    match ka, kb with
    | Some a, Some b -> Vec.compare a b
    | Some _, None -> -1
    | None, Some _ -> 1
    | None, None -> 0
  in
  let sorted = List.stable_sort cmp keyed in
  List.concat_map (fun (_, p) -> scan_poly ?context ~names ~outer ~body p)
    sorted

let scan_uset ?context ~names ~outer ~body u =
  if not (Emsc_obs.Prof.enabled ()) then
    scan_uset_impl ?context ~names ~outer ~body u
  else
    Emsc_obs.Prof.probe "scan.uset" (fun () ->
      scan_uset_impl ?context ~names ~outer ~body u)

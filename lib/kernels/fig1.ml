open Emsc_ir

let np = 0

let program =
  let a_write =
    Prog.mk_access ~array:"A" ~kind:Prog.Write
      ~rows:[ [ 1; 0; 0 ]; [ 0; 1; 1 ] ]
  in
  let a_read_diag =
    Prog.mk_access ~array:"A" ~kind:Prog.Read
      ~rows:[ [ 1; 1; 0 ]; [ 0; 1; 1 ] ]
  in
  let s1 =
    Build.stmt ~id:1 ~name:"S1" ~np ~depth:2
      ~iter_names:[| "i"; "j" |]
      ~domain:(Build.box_domain ~np [ (10, 14); (10, 14) ])
      ~writes:[ a_write ]
      ~reads:[ a_read_diag ]
      ~body:(a_write, Prog.Emul (Prog.Eref a_read_diag, Prog.Econst 3.0))
      ~beta:[ 0; 0; 0 ] ()
  in
  let b_write =
    Prog.mk_access ~array:"B" ~kind:Prog.Write
      ~rows:[ [ 1; 0; 0; 0 ]; [ 0; 1; 1; 0 ] ]
  in
  let a_read =
    Prog.mk_access ~array:"A" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0; 0 ]; [ 0; 0; 1; 0 ] ]
  in
  let b_read =
    Prog.mk_access ~array:"B" ~kind:Prog.Read
      ~rows:[ [ 1; 1; 0; 0 ]; [ 0; 0; 1; 0 ] ]
  in
  let s2 =
    Build.stmt ~id:2 ~name:"S2" ~np ~depth:3
      ~iter_names:[| "i"; "j"; "k" |]
      ~domain:(Build.box_domain ~np [ (10, 14); (10, 14); (11, 20) ])
      ~writes:[ b_write ]
      ~reads:[ a_read; b_read ]
      ~body:(b_write, Prog.Eadd (Prog.Eref a_read, Prog.Eref b_read))
      ~beta:[ 0; 0; 1; 0 ] ()
  in
  { Prog.params = [||];
    arrays = [ Build.array2 "A" 200 200 ~np; Build.array2 "B" 200 200 ~np ];
    stmts = [ s1; s2 ] }

let job () =
  Emsc_driver.Pipeline.job
    ~options:
      { Emsc_driver.Options.default with arch = `Cell; merge_per_array = true }
    (Emsc_driver.Source.Program { name = "fig1"; prog = program })

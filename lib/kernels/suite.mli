(** The kernel suite as pipeline jobs — the batch every consumer
    (tests, bench, [emsc compile] smoke runs) compiles. *)

val jobs : unit -> Emsc_driver.Pipeline.job list
(** One job per kernel at its default (small, fast) configuration,
    in a fixed order: fig1, matmul, me, jacobi1d, conv2d, doitgen. *)

val names : unit -> string list
(** Source names of {!jobs}, in the same order. *)

open Emsc_ir

let program ~nr ~nq ~np_ =
  let np = 0 in
  (* iterators: r, q, p, s *)
  let w_sum =
    Prog.mk_access ~array:"sum3" ~kind:Prog.Write
      ~rows:[ [ 1; 0; 0; 0; 0 ]; [ 0; 1; 0; 0; 0 ]; [ 0; 0; 1; 0; 0 ] ]
  in
  let r_sum =
    Prog.mk_access ~array:"sum3" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0; 0; 0 ]; [ 0; 1; 0; 0; 0 ]; [ 0; 0; 1; 0; 0 ] ]
  in
  let r_a3 =
    Prog.mk_access ~array:"a3" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0; 0; 0 ]; [ 0; 1; 0; 0; 0 ]; [ 0; 0; 0; 1; 0 ] ]
  in
  let r_c4 =
    Prog.mk_access ~array:"c4" ~kind:Prog.Read
      ~rows:[ [ 0; 0; 0; 1; 0 ]; [ 0; 0; 1; 0; 0 ] ]
  in
  let s =
    Build.stmt ~id:1 ~name:"S_doitgen" ~np ~depth:4
      ~iter_names:[| "r"; "q"; "p"; "s" |]
      ~domain:
        (Build.box_domain ~np
           [ (0, nr - 1); (0, nq - 1); (0, np_ - 1); (0, np_ - 1) ])
      ~writes:[ w_sum ]
      ~reads:[ r_sum; r_a3; r_c4 ]
      ~body:
        ( w_sum,
          Prog.Eadd
            (Prog.Eref r_sum, Prog.Emul (Prog.Eref r_a3, Prog.Eref r_c4)) )
      ~beta:[ 0; 0; 0; 0; 0 ] ()
  in
  { Prog.params = [||];
    arrays =
      [ { Prog.array_name = "sum3"; rank = 3;
          extents =
            [| Emsc_linalg.Vec.of_ints [ nr ]; Emsc_linalg.Vec.of_ints [ nq ];
               Emsc_linalg.Vec.of_ints [ np_ ] |] };
        { Prog.array_name = "a3"; rank = 3;
          extents =
            [| Emsc_linalg.Vec.of_ints [ nr ]; Emsc_linalg.Vec.of_ints [ nq ];
               Emsc_linalg.Vec.of_ints [ np_ ] |] };
        Build.array2 "c4" np_ np_ ~np ];
    stmts = [ s ] }

let job ?(nr = 8) ?(nq = 8) ?(np_ = 16) () =
  let spec =
    [| { Emsc_transform.Tile.block = Some 4; mem = None; thread = None };
       { Emsc_transform.Tile.block = Some 4; mem = None; thread = None };
       { Emsc_transform.Tile.block = None; mem = Some 8; thread = None };
       { Emsc_transform.Tile.block = None; mem = Some 8; thread = None } |]
  in
  Emsc_driver.Pipeline.job
    ~options:
      { Emsc_driver.Options.default with
        tiling = Emsc_driver.Options.Spec spec }
    (Emsc_driver.Source.Program
       { name = Printf.sprintf "doitgen-%dx%dx%d" nr nq np_;
         prog = program ~nr ~nq ~np_ })

(** Polybench-style doitgen: a batched contraction
    [sum[r][q][p] += a3[r][q][s] * c4[s][p]] — exercises rank-3 arrays
    and a read-only coefficient matrix with order-of-magnitude reuse. *)

val program : nr:int -> nq:int -> np_:int -> Emsc_ir.Prog.t

val job : ?nr:int -> ?nq:int -> ?np_:int -> unit -> Emsc_driver.Pipeline.job
(** Full-pipeline configuration: 4-blocks over (r, q), the
    contraction loops memory-tiled by 8. *)

(** 2-D convolution with a [kw x kw] kernel — a second sliding-window
    workload (like ME, but with a true 2-D stencil halo):

    {v
    out[i][j] += img[i+k][j+l] * w[k][l]
    v} *)

val program : n:int -> kw:int -> Emsc_ir.Prog.t

val job : ?n:int -> ?kw:int -> unit -> Emsc_driver.Pipeline.job
(** Full-pipeline configuration: 8-blocks over the image, the window
    loops memory-tiled at the kernel width. *)

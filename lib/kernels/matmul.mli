(** Dense matrix multiplication C += A * B — the classic kernel used to
    exercise the full pipeline (hyperplanes, tiling, buffering). *)

val program : n:int -> Emsc_ir.Prog.t
(** Single statement of depth 3 (i, j, k) over an [n x n] problem. *)

val spec : Emsc_transform.Tile.spec
(** The canonical tiling: i, j across 16-blocks with 4-thread tiles,
    k sub-tiled by 8 to bound the accumulator buffer. *)

val job : ?n:int -> unit -> Emsc_driver.Pipeline.job
(** Full-pipeline configuration (Cell planning over {!spec});
    [n] defaults to 32. *)

open Emsc_ir

let program ~ni ~nj ~ws =
  let np = 0 in
  let w_sad =
    Prog.mk_access ~array:"sad" ~kind:Prog.Write
      ~rows:[ [ 1; 0; 0; 0; 0 ]; [ 0; 1; 0; 0; 0 ] ]
  in
  let r_sad =
    Prog.mk_access ~array:"sad" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0; 0; 0 ]; [ 0; 1; 0; 0; 0 ] ]
  in
  let r_cur =
    Prog.mk_access ~array:"cur" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 1; 0; 0 ]; [ 0; 1; 0; 1; 0 ] ]
  in
  let r_ref =
    Prog.mk_access ~array:"refb" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 1; 0; 0 ]; [ 0; 1; 0; 1; 0 ] ]
  in
  let s =
    Build.stmt ~id:1 ~name:"S_me" ~np ~depth:4
      ~iter_names:[| "i"; "j"; "k"; "l" |]
      ~domain:
        (Build.box_domain ~np
           [ (0, ni - 1); (0, nj - 1); (0, ws - 1); (0, ws - 1) ])
      ~writes:[ w_sad ]
      ~reads:[ r_sad; r_cur; r_ref ]
      ~body:
        ( w_sad,
          Prog.Eadd
            ( Prog.Eref r_sad,
              Prog.Eabs (Prog.Esub (Prog.Eref r_cur, Prog.Eref r_ref)) ) )
      ~beta:[ 0; 0; 0; 0; 0 ] ()
  in
  { Prog.params = [||];
    arrays =
      [ Build.array2 "sad" ni nj ~np;
        Build.array2 "cur" (ni + ws) (nj + ws) ~np;
        Build.array2 "refb" (ni + ws) (nj + ws) ~np ];
    stmts = [ s ] }

let spec ~ni ~nj (ti, tj, tk, tl) =
  (* A mem tile wider than the block slice stages (and writes back)
     cells outside the block's compute range: pure movement waste, and
     the overlapping write-backs race once blocks run in parallel.
     Clamp staging to the block. *)
  let bi = (ni + 7) / 8 and bj = (nj + 3) / 4 in
  [| { Emsc_transform.Tile.block = Some bi; mem = Some (min ti bi);
       thread = None };
     { Emsc_transform.Tile.block = Some bj; mem = Some (min tj bj);
       thread = None };
     { Emsc_transform.Tile.block = None; mem = Some tk; thread = None };
     { Emsc_transform.Tile.block = None; mem = Some tl; thread = None } |]

let job ?(ni = 32) ?(nj = 32) ?(ws = 8) ?tiles ?(stage_data = true) () =
  let tiles = match tiles with Some t -> t | None -> (ws, ws, ws, ws) in
  let ti, tj, tk, tl = tiles in
  Emsc_driver.Pipeline.job
    ~options:
      { Emsc_driver.Options.default with
        arch = `Gpu;
        stage_data;
        tiling = Emsc_driver.Options.Spec (spec ~ni ~nj tiles) }
    (Emsc_driver.Source.Program
       { name = Printf.sprintf "me-%dx%d-ws%d-t%d.%d.%d.%d" ni nj ws ti tj tk tl;
         prog = program ~ni ~nj ~ws })

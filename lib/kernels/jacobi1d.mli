(** 1-D Jacobi stencil with explicit copy-back (affine ping):

    {v
    for t in 0 .. steps-1:
      for i in 1 .. n-2:   S1: nxt[i] = (cur[i-1] + cur[i] + cur[i+1]) / 3
      for i in 1 .. n-2:   S2: cur[i] = nxt[i]
    v}

    The space loop is surrounded by a time loop; tiling it for the GPU
    needs the concurrent-start treatment of Krishnamoorthy et al.
    (PLDI'07, the paper's [27]), which {!Emsc_transform.Stencil}
    realizes as overlapped (halo) time tiling. *)

val program : n:int -> steps:int -> Emsc_ir.Prog.t

val program_expanded : n:int -> steps:int -> Emsc_ir.Prog.t
(** Time-expanded single-statement form
    [a[t+1][i] = (a[t][i-1] + a[t][i] + a[t][i+1]) / 3] over an
    [(steps+1) x n] array: the formulation whose dependences
    [(1, -1), (1, 0), (1, 1)] admit the skewed permutable band
    {(1,0), (1,1)} — use for transform tests at small sizes (memory
    grows with [steps]). *)

val job : ?n:int -> ?steps:int -> unit -> Emsc_driver.Pipeline.job
(** Pipeline configuration over {!program_expanded}, stopping after
    the band stage: the skewed permutable band is the result under
    test, and the executable kernel comes from
    {!Emsc_transform.Stencil}, not the rectangular tiler. *)

open Emsc_ir

let program ~n =
  let np = 0 in
  let w_c =
    Prog.mk_access ~array:"C" ~kind:Prog.Write
      ~rows:[ [ 1; 0; 0; 0 ]; [ 0; 1; 0; 0 ] ]
  in
  let r_c =
    Prog.mk_access ~array:"C" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0; 0 ]; [ 0; 1; 0; 0 ] ]
  in
  let r_a =
    Prog.mk_access ~array:"A" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0; 0 ]; [ 0; 0; 1; 0 ] ]
  in
  let r_b =
    Prog.mk_access ~array:"B" ~kind:Prog.Read
      ~rows:[ [ 0; 0; 1; 0 ]; [ 0; 1; 0; 0 ] ]
  in
  let s =
    Build.stmt ~id:1 ~name:"S_mm" ~np ~depth:3
      ~iter_names:[| "i"; "j"; "k" |]
      ~domain:(Build.box_domain ~np [ (0, n - 1); (0, n - 1); (0, n - 1) ])
      ~writes:[ w_c ]
      ~reads:[ r_c; r_a; r_b ]
      ~body:
        (w_c, Prog.Eadd (Prog.Eref r_c, Prog.Emul (Prog.Eref r_a, Prog.Eref r_b)))
      ~beta:[ 0; 0; 0; 0 ] ()
  in
  { Prog.params = [||];
    arrays =
      [ Build.array2 "C" n n ~np; Build.array2 "A" n n ~np;
        Build.array2 "B" n n ~np ];
    stmts = [ s ] }

let spec =
  [| { Emsc_transform.Tile.block = Some 16; mem = None; thread = Some 4 };
     { Emsc_transform.Tile.block = Some 16; mem = None; thread = Some 4 };
     { Emsc_transform.Tile.block = None; mem = Some 8; thread = None } |]

let job ?(n = 32) () =
  Emsc_driver.Pipeline.job
    ~options:
      { Emsc_driver.Options.default with
        arch = `Cell;
        tiling = Emsc_driver.Options.Spec spec }
    (Emsc_driver.Source.Program
       { name = Printf.sprintf "matmul-n%d" n; prog = program ~n })

(** The worked example of the paper's Figure 1:

    {v
    A[200][200]; B[200][200];
    for (i = 10..14)
      for (j = 10..14) {
        S1: A[i][j+1] = A[i+j][j+1] * 3;
        for (k = 11..20)
          S2: B[i][j+k] = A[i][k] + B[i+j][k];
      }
    v}

    The paper derives LA[19][10] (offsets 10, 11) and LB[19][24]
    (offsets 10, 11) for this block; the core tests check our
    framework reproduces those exact extents. *)

val program : Emsc_ir.Prog.t

val job : unit -> Emsc_driver.Pipeline.job
(** Pipeline configuration: Cell-style planning with one buffer per
    array — the paper's Figure 1 treatment.  The block is untiled (it
    is already a single small block) and its statements have mixed
    depths, so the band stage reports no common band. *)

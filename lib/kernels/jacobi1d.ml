open Emsc_ir

let program ~n ~steps =
  let np = 0 in
  let third = 1.0 /. 3.0 in
  let w_nxt =
    Prog.mk_access ~array:"nxt" ~kind:Prog.Write ~rows:[ [ 0; 1; 0 ] ]
  in
  let r_m1 = Prog.mk_access ~array:"cur" ~kind:Prog.Read ~rows:[ [ 0; 1; -1 ] ] in
  let r_0 = Prog.mk_access ~array:"cur" ~kind:Prog.Read ~rows:[ [ 0; 1; 0 ] ] in
  let r_p1 = Prog.mk_access ~array:"cur" ~kind:Prog.Read ~rows:[ [ 0; 1; 1 ] ] in
  let s1 =
    Build.stmt ~id:1 ~name:"S_jac" ~np ~depth:2
      ~iter_names:[| "t"; "i" |]
      ~domain:(Build.box_domain ~np [ (0, steps - 1); (1, n - 2) ])
      ~writes:[ w_nxt ]
      ~reads:[ r_m1; r_0; r_p1 ]
      ~body:
        ( w_nxt,
          Prog.Emul
            ( Prog.Econst third,
              Prog.Eadd
                (Prog.Eref r_m1, Prog.Eadd (Prog.Eref r_0, Prog.Eref r_p1)) ) )
      ~beta:[ 0; 0; 0 ] ()
  in
  let w_cur =
    Prog.mk_access ~array:"cur" ~kind:Prog.Write ~rows:[ [ 0; 1; 0 ] ]
  in
  let r_nxt = Prog.mk_access ~array:"nxt" ~kind:Prog.Read ~rows:[ [ 0; 1; 0 ] ] in
  let s2 =
    Build.stmt ~id:2 ~name:"S_copy" ~np ~depth:2
      ~iter_names:[| "t"; "i" |]
      ~domain:(Build.box_domain ~np [ (0, steps - 1); (1, n - 2) ])
      ~writes:[ w_cur ]
      ~reads:[ r_nxt ]
      ~body:(w_cur, Prog.Eref r_nxt)
      ~beta:[ 0; 1; 0 ] ()
  in
  { Prog.params = [||];
    arrays = [ Build.array1 "cur" n ~np; Build.array1 "nxt" n ~np ];
    stmts = [ s1; s2 ] }

let program_expanded ~n ~steps =
  let np = 0 in
  let third = 1.0 /. 3.0 in
  let w = Prog.mk_access ~array:"a" ~kind:Prog.Write
      ~rows:[ [ 1; 0; 1 ]; [ 0; 1; 0 ] ]
  in
  let r_m1 = Prog.mk_access ~array:"a" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0 ]; [ 0; 1; -1 ] ]
  in
  let r_0 = Prog.mk_access ~array:"a" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0 ]; [ 0; 1; 0 ] ]
  in
  let r_p1 = Prog.mk_access ~array:"a" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0 ]; [ 0; 1; 1 ] ]
  in
  let s =
    Build.stmt ~id:1 ~name:"S_jex" ~np ~depth:2
      ~iter_names:[| "t"; "i" |]
      ~domain:(Build.box_domain ~np [ (0, steps - 1); (1, n - 2) ])
      ~writes:[ w ]
      ~reads:[ r_m1; r_0; r_p1 ]
      ~body:
        ( w,
          Prog.Emul
            ( Prog.Econst third,
              Prog.Eadd
                (Prog.Eref r_m1, Prog.Eadd (Prog.Eref r_0, Prog.Eref r_p1)) ) )
      ~beta:[ 0; 0; 0 ] ()
  in
  { Prog.params = [||];
    arrays = [ Build.array2 "a" (steps + 1) n ~np ];
    stmts = [ s ] }

let job ?(n = 64) ?(steps = 8) () =
  Emsc_driver.Pipeline.job
    ~options:{ Emsc_driver.Options.default with stop = Emsc_driver.Options.Band }
    (Emsc_driver.Source.Program
       { name = Printf.sprintf "jacobi1d-n%d-s%d" n steps;
         prog = program_expanded ~n ~steps })

let jobs () =
  [ Fig1.job (); Matmul.job (); Me.job (); Jacobi1d.job (); Conv2d.job ();
    Doitgen.job () ]

let names () =
  List.map
    (fun (j : Emsc_driver.Pipeline.job) ->
      Emsc_driver.Source.name j.Emsc_driver.Pipeline.source)
    (jobs ())

open Emsc_ir

let program ~n ~kw =
  let np = 0 in
  let w_out =
    Prog.mk_access ~array:"out" ~kind:Prog.Write
      ~rows:[ [ 1; 0; 0; 0; 0 ]; [ 0; 1; 0; 0; 0 ] ]
  in
  let r_out =
    Prog.mk_access ~array:"out" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0; 0; 0 ]; [ 0; 1; 0; 0; 0 ] ]
  in
  let r_img =
    Prog.mk_access ~array:"img" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 1; 0; 0 ]; [ 0; 1; 0; 1; 0 ] ]
  in
  let r_w =
    Prog.mk_access ~array:"w" ~kind:Prog.Read
      ~rows:[ [ 0; 0; 1; 0; 0 ]; [ 0; 0; 0; 1; 0 ] ]
  in
  let s =
    Build.stmt ~id:1 ~name:"S_conv" ~np ~depth:4
      ~iter_names:[| "i"; "j"; "k"; "l" |]
      ~domain:
        (Build.box_domain ~np
           [ (0, n - 1); (0, n - 1); (0, kw - 1); (0, kw - 1) ])
      ~writes:[ w_out ]
      ~reads:[ r_out; r_img; r_w ]
      ~body:
        ( w_out,
          Prog.Eadd
            (Prog.Eref r_out, Prog.Emul (Prog.Eref r_img, Prog.Eref r_w)) )
      ~beta:[ 0; 0; 0; 0; 0 ] ()
  in
  { Prog.params = [||];
    arrays =
      [ Build.array2 "out" n n ~np;
        Build.array2 "img" (n + kw) (n + kw) ~np;
        Build.array2 "w" kw kw ~np ];
    stmts = [ s ] }

let job ?(n = 16) ?(kw = 3) () =
  let spec =
    [| { Emsc_transform.Tile.block = Some 8; mem = None; thread = None };
       { Emsc_transform.Tile.block = Some 8; mem = None; thread = None };
       { Emsc_transform.Tile.block = None; mem = Some kw; thread = None };
       { Emsc_transform.Tile.block = None; mem = Some kw; thread = None } |]
  in
  Emsc_driver.Pipeline.job
    ~options:
      { Emsc_driver.Options.default with
        tiling = Emsc_driver.Options.Spec spec }
    (Emsc_driver.Source.Program
       { name = Printf.sprintf "conv2d-n%d-k%d" n kw; prog = program ~n ~kw })

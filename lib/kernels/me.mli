(** Mpeg4 Motion Estimation kernel, the structure of the paper's
    Figure 2: two FORALL space loops (i, j) over the frame and two FOR
    loops (k, l) over a [ws x ws] search/window range.

    {v
    forall i in 0 .. ni-1:
      forall j in 0 .. nj-1:
        for k in 0 .. ws-1:
          for l in 0 .. ws-1:
            sad[i][j] += |cur[i+k][j+l] - refb[i+k][j+l]|
    v}

    Both frame windows slide with (i, j) — neighbouring iterations
    share (ws-1)/ws of their data, the reuse the paper's framework
    captures in scratchpad memory.  With two [(t_i+ws) x (t_j+ws)]
    windows plus the [t_i x t_j] accumulator, the 16 KB scratchpad
    admits memory tiles up to (32, 16, 16, 16) — the size the paper's
    search selects — while (64, 16, ...) and (32, 32, ...) overflow,
    reproducing the Figure 6 feasibility frontier. *)

val program : ni:int -> nj:int -> ws:int -> Emsc_ir.Prog.t

val spec :
  ni:int -> nj:int -> int * int * int * int -> Emsc_transform.Tile.spec
(** The paper's 8 x 4 block grid with memory tiles [(ti, tj, tk, tl)]. *)

val job :
  ?ni:int -> ?nj:int -> ?ws:int -> ?tiles:int * int * int * int ->
  ?stage_data:bool -> unit -> Emsc_driver.Pipeline.job
(** GPU pipeline configuration over {!spec}.  Defaults: a 32 x 32
    frame with [ws = 8] and window-sized memory tiles;
    [~stage_data:false] plans but does not emit movement (the
    DRAM-only ablation). *)

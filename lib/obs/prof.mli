(** Hierarchical self-profiler for the compiler hot paths.

    Answers "where does compile time go?" with caller attribution:
    each probe pushes a label on a per-domain stack and accumulates
    wall time and call counts keyed by the full stack, so the same
    pass (say Fourier–Motzkin projection) is costed separately under
    dependence analysis and under code generation.  Memory is bounded
    by the number of distinct label stacks, never by the call count.

    Follows the [Events] discipline: disabled by default, every entry
    point tests one boolean first, and the disabled path of the
    [wrap]/[counted] forms performs no allocation — safe to leave in
    the hottest loops.  Domain-safe: each domain owns its own stack
    and tables; [snapshot] merges them all.

    Snapshots export three ways: a collapsed-stack string that
    external flamegraph tools (flamegraph.pl, speedscope, inferno)
    accept directly; a top-K self-time table; and the
    ["compile_profile"] JSON section embedded in bench artifacts and
    [emsc profile]/[analyze --json] output, which
    {!Emsc_audit.Bench_compare} diffs for regression attribution. *)

(** {2 Lifecycle} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Also forced on at startup when the [EMSC_PROF] environment
    variable is set to anything but [""], ["0"] or ["false"] — lets CI
    run an unmodified binary profiled for the overhead budget check. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded data from every domain. *)

val set_clock : (unit -> float) -> unit
(** Replace the wall clock (seconds); for deterministic tests. *)

val use_default_clock : unit -> unit

(** {2 Recording} *)

val probe : string -> (unit -> 'a) -> 'a
(** [probe name f] runs [f] with [name] pushed on this domain's label
    stack, accumulating one call and its wall time under the full
    stack.  Exceptions still record and re-raise.  Disabled: calls [f]
    directly (the closure at the call-site is the only cost). *)

val wrap : string -> ('a -> 'b) -> 'a -> 'b
(** [wrap name f x]: like [probe] but fully applied, so a hot
    call-site [let g x = Prof.wrap "g" g_impl x] allocates nothing
    when profiling is off. *)

val wrap2 : string -> ('a -> 'b -> 'c) -> 'a -> 'b -> 'c

val counted : string -> ('a -> 'b) -> 'a -> 'b
(** [wrap] that additionally emits the legacy [Trace.count name 1.0]
    (itself guarded by the tracing flag), preserving historical
    trace-counter totals bit-for-bit at converted call-sites. *)

val counted2 : string -> ('a -> 'b -> 'c) -> 'a -> 'b -> 'c

val add : string -> float -> unit
(** [add name v] bumps counter [name] attributed to the current label
    stack (e.g. simplex pivots under whichever pass triggered them).
    No-op when disabled. *)

(** {2 Snapshots} *)

type frame = {
  f_stack : string list;  (** labels, outermost first *)
  f_calls : int;
  f_total_s : float;      (** inclusive wall seconds *)
  f_self_s : float;       (** total minus probed children, clamped at 0 *)
  f_counters : (string * float) list;  (** sorted by name *)
}

type profile = frame list
(** Sorted by stack, so a fixed workload under a fixed clock snapshots
    deterministically. *)

val snapshot : unit -> profile
(** Merge every domain's tables.  Establish a happens-before edge
    (join your domains) before trusting cross-domain numbers. *)

val attributed_s : profile -> float
(** Total wall seconds under root (depth-1) frames — the denominator
    for "how much of the pipeline is attributed". *)

(** {2 Per-pass aggregation} *)

type pass = {
  p_name : string;   (** leaf label, summed across all stacks *)
  p_calls : int;
  p_total_s : float;
  p_self_s : float;
}

val passes : profile -> pass list
(** Aggregated by leaf label, sorted by self time (descending). *)

val top_self : ?k:int -> profile -> pass list
(** First [k] (default 15) of [passes]. *)

(** {2 Export} *)

val collapsed : profile -> string
(** Collapsed-stack text: one ["a;b;c <self µs>"] line per stack. *)

val write_collapsed : string -> profile -> unit

val pp_top : ?k:int -> Format.formatter -> profile -> unit
(** Human top-K self-time table plus an attributed-total footer. *)

val json : ?wall_ms:float -> profile -> Json.t
(** The ["compile_profile"] artifact section
    (schema [emsc-compile-profile/1]): [attributed_ms], per-pass
    [passes] (calls / total_ms / self_ms, keyed by leaf label) and the
    full [stacks] list. *)

(** Hierarchical tracing spans with wall-clock timing and counters.

    Disabled by default: every entry point first tests one boolean, so
    instrumented code paths cost nothing measurable when tracing is
    off.  When enabled, {!span} builds a tree of timed spans which can
    be rendered as a human-readable tree ({!pp_tree}), exported as
    Chrome [trace_event] JSON ({!chrome_json}, loadable in
    [chrome://tracing] or Perfetto), or summarized per span name
    ({!aggregate}).

    Counters bumped with {!count} accumulate on the innermost open
    span (or on an implicit root when no span is open) and appear in
    the [args] of the exported events.  Domain-safe: each domain keeps
    its own span stack (spans nest within one domain), and completed
    roots plus root counters are guarded, so worker-domain emitters
    never corrupt each other's trees.  {!roots} presents top-level
    spans in start order regardless of which domain finished first. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded spans and counters (open spans included). *)

val set_clock : (unit -> float) -> unit
(** Replace the wall clock (seconds).  For deterministic tests. *)

val use_default_clock : unit -> unit

val span : ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span.  The span closes when [f]
    returns or raises (the exception is re-raised; the span is marked
    ["error"]).  When tracing is disabled this is exactly [f ()]. *)

val count : string -> float -> unit
(** Add to a named counter on the innermost open span. *)

(** {2 Inspection and export} *)

type node = {
  name : string;
  args : (string * Json.t) list;
  start_s : float;          (** seconds, from the clock *)
  dur_s : float;
  counters : (string * float) list;  (** sorted by name *)
  children : node list;     (** in start order *)
}

val roots : unit -> node list
(** Completed top-level spans, in start order.  Open spans are not
    included. *)

val pp_tree : Format.formatter -> unit -> unit

val chrome_json : unit -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] with one
    complete ("ph":"X") event per span; timestamps and durations in
    microseconds, counters and args merged into the event's [args]. *)

val write_chrome : string -> unit
(** Write {!chrome_json} to a file. *)

type agg = {
  agg_name : string;
  calls : int;
  errors : int;    (** spans of this name that closed with an error *)
  total_s : float;
  agg_counters : (string * float) list;
      (** counter totals over every span of this name, sorted *)
}

val aggregate : unit -> agg list
(** Per span name over the whole tree, sorted by descending total
    time.  Errored spans are counted distinctly, so report consumers
    can tell a clean run from a partially-failed one. *)

val aggregate_json : unit -> Json.t

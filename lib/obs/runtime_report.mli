(** Post-run analysis of drained {!Events} tracks.

    Turns the raw per-domain timelines into the quantities the paper's
    overlap story is about: where each worker domain spent its time
    (busy / waiting-on-DMA / idle), how much of the DMA channels' busy
    time was hidden under compute (the achieved overlap fraction the
    double-buffer {!Timing} model predicts an upper bound for),
    scratchpad occupancy over time, and the critical-path length of
    the launch sequence. *)

type domain_stat = {
  d_name : string;
  d_busy_s : float;      (** executing block phases *)
  d_dma_wait_s : float;  (** blocked awaiting a DMA ticket *)
  d_idle_s : float;      (** window minus busy minus wait, clamped at 0 *)
  d_steal_attempts : int;
  d_steal_hits : int;
  d_blocks : int;        (** block phases executed *)
}

type occupancy_sample = { o_t : float; o_words : int; o_arenas : int }

type t = {
  window_s : float;        (** earliest event start to latest end *)
  domains : domain_stat list;
  compute_busy_s : float;  (** union of block-phase intervals, all domains *)
  dma_busy_s : float;      (** union of DMA-transfer intervals, all lanes *)
  dma_words : float;
  overlap_s : float;       (** |compute ∩ dma| *)
  overlap_fraction : float;
      (** [overlap_s /. dma_busy_s]; 0 when no DMA ran *)
  occupancy : occupancy_sample list;  (** time order *)
  occupancy_peak_words : int;
  occupancy_peak_arenas : int;
  critical_path_s : float;
      (** launches are barrier-separated, so: sum over launches of the
          longest single block envelope in that launch *)
  dropped_events : int;  (** total ring-wraparound drops, all tracks *)
}

val build : Events.track list -> t option
(** [None] when the tracks carry no events (recording was off). *)

val to_json : t -> Json.t
(** Times in milliseconds, fractions unitless. *)

val pp : Format.formatter -> t -> unit

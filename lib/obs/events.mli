(** Runtime execution events: per-domain lock-free ring buffers.

    The parallel backend ({!Emsc_runtime}) runs blocks, steals work,
    and pipelines DMA across several domains; this module gives each
    emitting domain its own fixed-capacity ring of timestamped events
    so the run can be reconstructed afterwards — per-domain timelines,
    DMA lanes, arena occupancy — without any synchronization on the
    hot path.

    Discipline, same as {!Trace} and {!Metrics}: disabled by default,
    and every emit first tests one boolean.  Instrumented code must
    guard the event-record construction behind {!enabled} (or a cached
    copy of it), so a disabled run allocates nothing and executes
    bit-identically to an uninstrumented one.

    Concurrency contract: each ring has exactly one writer domain
    (rings for mutex-guarded shared structures, e.g. the arena pool,
    are written only inside that structure's critical section, which
    serializes the writes).  {!drain} must only be called after the
    writers have quiesced — in practice after the worker pool's launch
    barrier or shutdown, both of which establish the needed
    happens-before edges.  Draining is non-destructive; {!reset}
    discards everything. *)

(** what a ring records; determines its Chrome-trace lane *)
type kind =
  | Exec_track   (** a worker domain executing block phases *)
  | Dma_track    (** an asynchronous DMA channel *)
  | Arena_track  (** the scratchpad arena pool (occupancy samples) *)

type phase = Whole | Compute | Move_in | Move_out

type data =
  | Block of { launch : int; block : int; phase : phase }
      (** a block (or one phase of it) executed on a worker domain *)
  | Dma_transfer of {
      launch : int;
      block : int;
      dir : [ `In | `Out ];
      words : float;  (** staged words moved; 0 when not collected *)
    }  (** an asynchronous move phase carried by a DMA channel *)
  | Dma_wait of { launch : int; block : int }
      (** a worker blocked awaiting a DMA ticket *)
  | Steal of { victim : int; ok : bool }
      (** a work-stealing attempt (instant: [t0 = t1] allowed) *)
  | Idle of [ `Work | `Arena ]
      (** a worker waiting — for work or for arena capacity *)
  | Occupancy of { words : int; arenas : int }
      (** arena-pool occupancy after a reserve/release (instant) *)

type event = { t0 : float; t1 : float; data : data }

type ring

type track = {
  t_name : string;
  t_kind : kind;
  dropped : int;     (** events overwritten by wraparound (oldest first) *)
  events : event list;  (** surviving events, oldest first *)
}

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Turn recording on.  [capacity] (default 65536) bounds each ring;
    when a ring wraps, the oldest events are dropped and counted — the
    drop count is reported by {!drain}, never silently swallowed.
    Rings registered before [enable] keep their previous capacity. *)

val disable : unit -> unit
(** Stop recording.  Already-recorded events remain drainable. *)

val reset : unit -> unit
(** Drop every ring and its events. *)

val set_clock : (unit -> float) -> unit
(** Replace the wall clock (seconds).  For deterministic tests. *)

val use_default_clock : unit -> unit

val now : unit -> float
(** Read the clock (only meaningful while instrumenting). *)

val ring : kind:kind -> string -> ring
(** Register (or look up) the named ring.  Registration takes a mutex —
    do it once per run, outside hot loops.  Looking up an existing name
    returns the same ring, so repeated runs in one profiling session
    append to one track. *)

val emit : ring -> t0:float -> ?t1:float -> data -> unit
(** Record one event ([t1] defaults to [now ()]).  Lock-free: a plain
    array store by the ring's single writer.  No-op when disabled. *)

val drain : unit -> track list
(** Snapshot every ring, in registration order.  Non-destructive.
    Call only when writer domains have quiesced (see above). *)

val chrome_events : track list -> Json.t list
(** Chrome [trace_event] objects for the runtime tracks: one thread
    per track under pid 2 ("emsc runtime"), complete ("ph":"X") events
    plus thread/process-name metadata.  Empty input yields []. *)

val merged_chrome_json : unit -> Json.t
(** The compile-path {!Trace} spans (pid 1) and the drained runtime
    tracks (pid 2) in a single [{"traceEvents": ...}] document, so one
    file shows parse → plan → execute on one timeline. *)

val write_merged_chrome : string -> unit
(** Write {!merged_chrome_json} to a file.  When no runtime events
    were recorded this is exactly {!Trace.write_chrome}. *)

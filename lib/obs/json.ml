type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter (fun c ->
    match c with
    | '"' -> Buffer.add_string b "\\\""
    | '\\' -> Buffer.add_string b "\\\\"
    | '\n' -> Buffer.add_string b "\\n"
    | '\r' -> Buffer.add_string b "\\r"
    | '\t' -> Buffer.add_string b "\\t"
    | c when Char.code c < 0x20 ->
      Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
    | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* shortest representation that round-trips a float, always with a
   fraction or exponent so the parser reads it back as Float *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let number_repr f =
  if Float.is_nan f || not (Float.is_finite f) then "null" else float_repr f

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  let pad n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let sp () = if pretty then Buffer.add_char b ' ' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (number_repr f)
    | Str s -> escape b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri (fun i x ->
        if i > 0 then begin Buffer.add_char b ','; nl () end;
        pad (depth + 1);
        go (depth + 1) x)
        xs;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri (fun i (k, x) ->
        if i > 0 then begin Buffer.add_char b ','; nl () end;
        pad (depth + 1);
        escape b k;
        Buffer.add_char b ':';
        sp ();
        go (depth + 1) x)
        fields;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

let pp fmt v = Format.pp_print_string fmt (to_string ~pretty:true v)

(* --- parsing ----------------------------------------------------------- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents b
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some '/' -> Buffer.add_char b '/'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'b' -> Buffer.add_char b '\b'; advance ()
         | Some 'f' -> Buffer.add_char b '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let hex = String.sub s !pos 4 in
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           (* UTF-8 encode the code point (BMP only; enough for our
              own output, which never emits surrogates) *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
    Error (Printf.sprintf "at offset %d: %s" at msg)

(* --- misc -------------------------------------------------------------- *)

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k, v) (k', v') -> String.equal k k' && equal v v')
         xs ys
  | _ -> false

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> xs | _ -> []

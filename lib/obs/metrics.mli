(** Process-wide metrics registry: named, labeled counters, gauges, and
    log-scale histograms.

    Same discipline as {!Trace}: disabled by default, and every update
    entry point first tests one boolean, so instrumented code paths cost
    nothing measurable when metrics are off.  When enabled, updates are
    O(1) hashtable operations keyed by (name, sorted labels).

    A {!snapshot} captures the whole registry at a point in time;
    {!diff} subtracts an earlier snapshot from a later one (counters and
    histograms subtract, gauges keep the newer value), which is how
    callers attribute traffic to one phase of a longer run.  Snapshots
    serialize to JSON with a stable ordering, so they can be embedded in
    reports and compared across runs.

    Domain-safe: every update and snapshot runs under one registry
    mutex (after the enabled test), so counters bumped from worker
    domains — arena gauges, exec counters — sum exactly; no update is
    lost to a racing read-modify-write. *)

type labels = (string * string) list
(** Label pairs; order does not matter (keys are canonicalized). *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop every registered metric. *)

val set_clock : (unit -> float) -> unit
(** Replace the wall clock (seconds) used to stamp snapshots.  For
    deterministic tests. *)

val use_default_clock : unit -> unit

(** {2 Updates} *)

val counter : ?labels:labels -> string -> float -> unit
(** [counter name v] adds [v] to a monotonically increasing counter. *)

val gauge : ?labels:labels -> string -> float -> unit
(** [gauge name v] sets a gauge to its most recent value. *)

val gauge_max : ?labels:labels -> string -> float -> unit
(** [gauge_max name v] keeps the maximum value ever set — e.g. peak
    scratchpad occupancy. *)

val observe : ?labels:labels -> string -> float -> unit
(** [observe name v] records [v] into a log-scale histogram: bucket
    [k] counts observations with [2^(k-1) < v <= 2^k] ([v <= 0] lands
    in an underflow bucket).  The histogram also tracks count and
    sum, so means survive serialization. *)

(** {2 Snapshots} *)

type value =
  | Counter of float
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (int * int) list }
      (** [(bucket exponent, count)], ascending; underflow is
          exponent [min_int], rendered as ["le0"] in JSON *)

type sample = {
  m_name : string;
  m_labels : labels;  (** sorted by key *)
  m_value : value;
}

type snapshot = {
  at_s : float;       (** clock reading at capture *)
  samples : sample list;  (** sorted by (name, labels) *)
}

val snapshot : unit -> snapshot
(** Capture the registry (empty when metrics are disabled or nothing
    was recorded). *)

val diff : snapshot -> snapshot -> snapshot
(** [diff earlier later]: counters and histograms subtract (clamped at
    zero), gauges take the later value; metrics absent earlier pass
    through unchanged.  [at_s] is the later snapshot's. *)

val find : ?labels:labels -> snapshot -> string -> value option
(** Look up one metric in a snapshot. *)

val counter_value : ?labels:labels -> snapshot -> string -> float
(** The counter's value, or [0.] when absent (or not a counter). *)

val quantile : value -> float -> float option
(** [quantile v q] estimates the [q]-quantile (clamped to [0,1]) of a
    {!Histogram} by linear interpolation inside the log2 bucket that
    crosses rank [q*count]: bucket [k] spans [(2^(k-1), 2^k]] and the
    underflow bucket is exactly [0].  Coarse above (log-scale
    resolution) but monotone in [q].  [None] for non-histograms or
    empty histograms. *)

val snapshot_json : snapshot -> Json.t
(** [{"at_s": ..., "metrics": [{"name","labels","type",...}]}] with
    samples in snapshot order.  Histograms carry [p50]/[p95]/[p99]
    fields (from {!quantile}) alongside count/sum/buckets. *)

val pp : Format.formatter -> snapshot -> unit
(** One metric per line, for human consumption. *)

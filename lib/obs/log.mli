(** Leveled structured logging with pluggable sinks.

    A log record is a level, a message, and optional structured fields.
    The default sink is a no-op, so instrumented code costs one boolean
    test per call site when logging is off.  Sinks are plain functions;
    two canonical ones are provided: a human-readable formatter sink
    and an NDJSON sink (one JSON object per line, machine-readable). *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

type sink = level -> string -> (string * Json.t) list -> unit

val set_sink : sink option -> unit
(** [None] (the default) disables logging entirely. *)

val set_level : level -> unit
(** Records below this level are dropped before reaching the sink.
    Default [Info]. *)

val formatter_sink : Format.formatter -> sink
(** [LEVEL message  k=v ...] lines. *)

val ndjson_sink : out_channel -> sink
(** [{"level":...,"msg":...,...fields}] lines.  The channel is flushed
    after every record, so nothing is lost when the process dies
    mid-stream. *)

val msg : level -> ?fields:(string * Json.t) list -> string -> unit

val debug : ?fields:(string * Json.t) list -> string -> unit
val info : ?fields:(string * Json.t) list -> string -> unit
val warn : ?fields:(string * Json.t) list -> string -> unit
val error : ?fields:(string * Json.t) list -> string -> unit

val logf :
  level -> ?fields:(string * Json.t) list ->
  ('a, unit, string, unit) format4 -> 'a
(** Printf-style; the message is only built when a sink is installed
    and the level passes. *)

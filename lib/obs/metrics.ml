type labels = (string * string) list

type cell =
  | Ccounter of float ref
  | Cgauge of float ref
  | Chist of { mutable h_count : int; mutable h_sum : float;
               h_buckets : (int, int ref) Hashtbl.t }

let enabled_flag = ref false
let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

let default_clock = Unix.gettimeofday
let clock = ref default_clock
let set_clock c = clock := c
let use_default_clock () = clock := default_clock

(* One table for the whole process, keyed by (name, sorted labels).
   Cells are updated from worker domains (arena gauges, exec counters),
   so every table access and cell mutation happens under [m] — the
   updates are tiny, and the enabled-flag test keeps the disabled path
   lock-free. *)
let m = Mutex.create ()
let table : (string * labels, cell) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock m;
  match f () with
  | v -> Mutex.unlock m; v
  | exception e -> Mutex.unlock m; raise e

let reset () = locked (fun () -> Hashtbl.reset table)

let canon labels =
  match labels with
  | [] -> []
  | [ _ ] -> labels
  | _ -> List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let cell ?(labels = []) name make =
  let key = (name, canon labels) in
  match Hashtbl.find_opt table key with
  | Some c -> c
  | None ->
    let c = make () in
    Hashtbl.replace table key c;
    c

let counter ?labels name v =
  if !enabled_flag then
    locked (fun () ->
      match cell ?labels name (fun () -> Ccounter (ref 0.0)) with
      | Ccounter r -> r := !r +. v
      | Cgauge _ | Chist _ -> ())

let gauge ?labels name v =
  if !enabled_flag then
    locked (fun () ->
      match cell ?labels name (fun () -> Cgauge (ref v)) with
      | Cgauge r -> r := v
      | Ccounter _ | Chist _ -> ())

let gauge_max ?labels name v =
  if !enabled_flag then
    locked (fun () ->
      match cell ?labels name (fun () -> Cgauge (ref v)) with
      | Cgauge r -> if v > !r then r := v
      | Ccounter _ | Chist _ -> ())

(* log2 bucket exponent: smallest k with v <= 2^k; v <= 0 underflows *)
let bucket_of v =
  if v <= 0.0 then min_int
  else begin
    let k = ref 0 and b = ref 1.0 in
    if v <= 1.0 then 0
    else begin
      while !b < v && !k < 1024 do
        b := !b *. 2.0;
        incr k
      done;
      !k
    end
  end

let observe ?labels name v =
  if !enabled_flag then
    locked (fun () ->
      match
        cell ?labels name (fun () ->
          Chist { h_count = 0; h_sum = 0.0; h_buckets = Hashtbl.create 8 })
      with
      | Chist h ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        let k = bucket_of v in
        (match Hashtbl.find_opt h.h_buckets k with
         | Some r -> incr r
         | None -> Hashtbl.replace h.h_buckets k (ref 1))
      | Ccounter _ | Cgauge _ -> ())

(* --- snapshots --------------------------------------------------------- *)

type value =
  | Counter of float
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (int * int) list }

type sample = {
  m_name : string;
  m_labels : labels;
  m_value : value;
}

type snapshot = {
  at_s : float;
  samples : sample list;
}

let freeze = function
  | Ccounter r -> Counter !r
  | Cgauge r -> Gauge !r
  | Chist h ->
    let buckets =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) h.h_buckets []
      |> List.sort compare
    in
    Histogram { count = h.h_count; sum = h.h_sum; buckets }

let compare_sample a b =
  match String.compare a.m_name b.m_name with
  | 0 -> compare a.m_labels b.m_labels
  | c -> c

let snapshot () =
  let samples =
    locked (fun () ->
      Hashtbl.fold (fun (name, labels) c acc ->
        { m_name = name; m_labels = labels; m_value = freeze c } :: acc)
        table [])
    |> List.sort compare_sample
  in
  { at_s = !clock (); samples }

let sub_buckets later earlier =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, n) -> Hashtbl.replace tbl k n) later;
  List.iter (fun (k, n) ->
    let cur = try Hashtbl.find tbl k with Not_found -> 0 in
    Hashtbl.replace tbl k (max 0 (cur - n)))
    earlier;
  Hashtbl.fold (fun k n acc -> if n > 0 then (k, n) :: acc else acc) tbl []
  |> List.sort compare

let diff earlier later =
  let earlier_tbl = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace earlier_tbl (s.m_name, s.m_labels) s)
    earlier.samples;
  let samples =
    List.map (fun s ->
      match Hashtbl.find_opt earlier_tbl (s.m_name, s.m_labels) with
      | None -> s
      | Some e ->
        let value =
          match s.m_value, e.m_value with
          | Counter a, Counter b -> Counter (Float.max 0.0 (a -. b))
          | Histogram h, Histogram g ->
            Histogram
              { count = max 0 (h.count - g.count);
                sum = Float.max 0.0 (h.sum -. g.sum);
                buckets = sub_buckets h.buckets g.buckets }
          | v, _ -> v
        in
        { s with m_value = value })
      later.samples
  in
  { at_s = later.at_s; samples }

let find ?(labels = []) snap name =
  let labels = canon labels in
  List.find_map (fun s ->
    if s.m_name = name && s.m_labels = labels then Some s.m_value else None)
    snap.samples

let counter_value ?labels snap name =
  match find ?labels snap name with Some (Counter v) -> v | _ -> 0.0

(* Bucket-interpolated quantiles over the log2 histogram.  Bucket k
   spans (2^(k-1), 2^k] (k = 0 spans (0, 1]; the underflow bucket is
   exactly 0), and the estimate interpolates linearly inside the
   bucket that crosses the target rank — coarse above, but monotone,
   and honest about the histogram's resolution. *)
let bucket_bounds k =
  if k = min_int then (0.0, 0.0)
  else if k = 0 then (0.0, 1.0)
  else (Float.pow 2.0 (float_of_int (k - 1)), Float.pow 2.0 (float_of_int k))

let quantile v q =
  match v with
  | Histogram { count; buckets; _ } when count > 0 && buckets <> [] ->
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int count in
    let rec go cum = function
      | [] -> None
      | (k, n) :: rest ->
        let cum' = cum +. float_of_int n in
        if cum' >= target || rest = [] then begin
          let lo, hi = bucket_bounds k in
          let frac =
            if n = 0 then 1.0
            else Float.max 0.0 (Float.min 1.0 ((target -. cum) /. float_of_int n))
          in
          Some (lo +. ((hi -. lo) *. frac))
        end
        else go cum' rest
    in
    go 0.0 buckets
  | _ -> None

(* --- rendering --------------------------------------------------------- *)

let bucket_label k = if k = min_int then "le0" else string_of_int k

let value_fields = function
  | Counter v -> [ ("type", Json.Str "counter"); ("value", Json.Float v) ]
  | Gauge v -> [ ("type", Json.Str "gauge"); ("value", Json.Float v) ]
  | Histogram { count; sum; buckets } as h ->
    let quantiles =
      if count = 0 then []
      else
        List.filter_map (fun (label, q) ->
          match quantile h q with
          | Some v -> Some (label, Json.Float v)
          | None -> None)
          [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99) ]
    in
    [ ("type", Json.Str "histogram");
      ("count", Json.Int count);
      ("sum", Json.Float sum) ]
    @ quantiles
    @ [ ( "buckets",
          Json.Obj
            (List.map (fun (k, n) -> (bucket_label k, Json.Int n)) buckets) ) ]

let snapshot_json snap =
  Json.Obj
    [ ("at_s", Json.Float snap.at_s);
      ( "metrics",
        Json.List
          (List.map (fun s ->
             Json.Obj
               (("name", Json.Str s.m_name)
                :: (if s.m_labels = [] then []
                    else
                      [ ( "labels",
                          Json.Obj
                            (List.map (fun (k, v) -> (k, Json.Str v))
                               s.m_labels) ) ])
                @ value_fields s.m_value))
             snap.samples) ) ]

let pp fmt snap =
  List.iter (fun s ->
    Format.fprintf fmt "%s" s.m_name;
    if s.m_labels <> [] then begin
      Format.fprintf fmt "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> k ^ "=" ^ v) s.m_labels))
    end;
    (match s.m_value with
     | Counter v -> Format.fprintf fmt " = %.0f" v
     | Gauge v -> Format.fprintf fmt " = %g (gauge)" v
     | Histogram { count; sum; _ } ->
       Format.fprintf fmt " = %d obs, sum %g" count sum);
    Format.pp_print_newline fmt ())
    snap.samples

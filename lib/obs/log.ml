type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type sink = level -> string -> (string * Json.t) list -> unit

let sink : sink option ref = ref None
let threshold = ref Info

let set_sink s = sink := s
let set_level l = threshold := l

let formatter_sink fmt : sink =
 fun level msg fields ->
  Format.fprintf fmt "%-5s %s" (String.uppercase_ascii (level_name level)) msg;
  List.iter (fun (k, v) -> Format.fprintf fmt "  %s=%s" k (Json.to_string v))
    fields;
  Format.pp_print_newline fmt ()

let ndjson_sink oc : sink =
 fun level msg fields ->
  let record =
    Json.Obj
      (("level", Json.Str (level_name level))
       :: ("msg", Json.Str msg)
       :: fields)
  in
  output_string oc (Json.to_string record);
  output_char oc '\n';
  (* flush per record: NDJSON sinks feed crash forensics (fuzz runs,
     aborted simulations), where buffered records would be exactly the
     ones that matter *)
  flush oc

let active level =
  match !sink with
  | None -> None
  | Some s -> if severity level >= severity !threshold then Some s else None

let msg level ?(fields = []) text =
  match active level with
  | None -> ()
  | Some s -> s level text fields

let debug ?fields text = msg Debug ?fields text
let info ?fields text = msg Info ?fields text
let warn ?fields text = msg Warn ?fields text
let error ?fields text = msg Error ?fields text

let logf level ?(fields = []) fmt =
  match active level with
  | None -> Printf.ikfprintf (fun () -> ()) () fmt
  | Some s -> Printf.ksprintf (fun text -> s level text fields) fmt

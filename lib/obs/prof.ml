(* Hierarchical self-profiler for the compiler hot paths.

   Same discipline as Events: disabled by default, and every entry
   point tests one boolean first, so instrumented code costs nothing
   measurable when profiling is off (the [counted]/[counted2] wrappers
   exist so hot call-sites do not even allocate a closure).  When
   enabled, each probe pushes its label on a per-domain stack and
   accumulates (calls, inclusive seconds) into a per-domain table
   keyed by the full label stack — caller attribution falls out of the
   key, and memory is bounded by the number of distinct stacks, not by
   the call count.

   Domain-safe the same way Events is: each domain owns its state
   (registered under a mutex on first probe), writers never share
   cells, and [snapshot] merges every domain's table after the caller
   has established a happens-before edge (joined its domains). *)

type acc = { mutable a_calls : int; mutable a_total : float }

type dstate = {
  mutable d_stack : string list; (* open probes, innermost first *)
  d_frames : (string list, acc) Hashtbl.t;
  d_counters : (string list * string, float ref) Hashtbl.t;
}

let enabled_flag = ref false
let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

let default_clock = Unix.gettimeofday
let clock = ref default_clock
let set_clock c = clock := c
let use_default_clock () = clock := default_clock

(* registered domain states; [generation] invalidates cached DLS
   states across [reset] so a reset never resurrects old tables *)
let reg_m = Mutex.create ()
let states : dstate list ref = ref []
let generation = ref 0

let reset () =
  Mutex.lock reg_m;
  states := [];
  incr generation;
  Mutex.unlock reg_m

let dls_key : (int * dstate) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let state () =
  let cell = Domain.DLS.get dls_key in
  match !cell with
  | Some (g, st) when g = !generation -> st
  | _ ->
    let st =
      { d_stack = []; d_frames = Hashtbl.create 64;
        d_counters = Hashtbl.create 16 }
    in
    Mutex.lock reg_m;
    let g = !generation in
    states := st :: !states;
    Mutex.unlock reg_m;
    cell := Some (g, st);
    st

let record st path dt =
  match Hashtbl.find_opt st.d_frames path with
  | Some a ->
    a.a_calls <- a.a_calls + 1;
    a.a_total <- a.a_total +. dt
  | None -> Hashtbl.add st.d_frames path { a_calls = 1; a_total = dt }

let probe name f =
  if not !enabled_flag then f ()
  else begin
    let st = state () in
    let saved = st.d_stack in
    let path = name :: saved in
    st.d_stack <- path;
    let t0 = !clock () in
    let pop () =
      let dt = !clock () -. t0 in
      st.d_stack <- saved;
      record st path dt
    in
    match f () with
    | r -> pop (); r
    | exception e ->
      pop ();
      raise e
  end

(* No-closure wrappers for hot call-sites: fully applied, so the
   disabled path is one flag test and a direct call — no allocation.
   [counted]/[counted2] also forward the legacy [Trace.count] of the
   same name (itself guarded by the tracing flag), so trace aggregates
   keep their historical counter totals bit-for-bit. *)

let wrap name f x = if not !enabled_flag then f x else probe name (fun () -> f x)

let wrap2 name f x y =
  if not !enabled_flag then f x y else probe name (fun () -> f x y)

let counted name f x =
  Trace.count name 1.0;
  wrap name f x

let counted2 name f x y =
  Trace.count name 1.0;
  wrap2 name f x y

let add name v =
  if !enabled_flag then begin
    let st = state () in
    let key = (st.d_stack, name) in
    match Hashtbl.find_opt st.d_counters key with
    | Some r -> r := !r +. v
    | None -> Hashtbl.add st.d_counters key (ref v)
  end

(* --- snapshots ---------------------------------------------------------- *)

type frame = {
  f_stack : string list; (* outermost first *)
  f_calls : int;
  f_total_s : float;
  f_self_s : float;      (* total minus probed children, clamped at 0 *)
  f_counters : (string * float) list;
}

type profile = frame list

let snapshot () =
  Mutex.lock reg_m;
  let sts = !states in
  Mutex.unlock reg_m;
  (* merge per-domain tables; keys are innermost-first label stacks *)
  let totals : (string list, acc) Hashtbl.t = Hashtbl.create 64 in
  let counters : (string list * string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun st ->
    Hashtbl.iter (fun path a ->
      match Hashtbl.find_opt totals path with
      | Some m ->
        m.a_calls <- m.a_calls + a.a_calls;
        m.a_total <- m.a_total +. a.a_total
      | None ->
        Hashtbl.add totals path { a_calls = a.a_calls; a_total = a.a_total })
      st.d_frames;
    Hashtbl.iter (fun key r ->
      let cur = try Hashtbl.find counters key with Not_found -> 0.0 in
      Hashtbl.replace counters key (cur +. !r))
      st.d_counters)
    sts;
  (* counters recorded under a stack that never completed a probe (or
     outside any probe) still need a frame to hang off *)
  Hashtbl.iter (fun (path, _) _ ->
    if path <> [] && not (Hashtbl.mem totals path) then
      Hashtbl.add totals path { a_calls = 0; a_total = 0.0 })
    counters;
  (* self = total - sum of direct probed children *)
  let selfs : (string list, float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter (fun path a -> Hashtbl.replace selfs path a.a_total) totals;
  Hashtbl.iter (fun path a ->
    match path with
    | _ :: parent when Hashtbl.mem totals parent ->
      Hashtbl.replace selfs parent
        (Hashtbl.find selfs parent -. a.a_total)
    | _ -> ())
    totals;
  let frames =
    Hashtbl.fold (fun path a fs ->
      let cs =
        Hashtbl.fold (fun (p, name) v cs ->
          if p = path then (name, v) :: cs else cs)
          counters []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      { f_stack = List.rev path;
        f_calls = a.a_calls;
        f_total_s = a.a_total;
        f_self_s = Float.max 0.0 (Hashtbl.find selfs path);
        f_counters = cs }
      :: fs)
      totals []
  in
  List.sort (fun a b -> compare a.f_stack b.f_stack) frames

let attributed_s prof =
  List.fold_left (fun acc f ->
    match f.f_stack with [ _ ] -> acc +. f.f_total_s | _ -> acc)
    0.0 prof

(* --- per-pass aggregation (leaf label, across stacks) ------------------- *)

type pass = {
  p_name : string;
  p_calls : int;
  p_total_s : float;
  p_self_s : float;
}

let leaf f = List.nth f.f_stack (List.length f.f_stack - 1)

let passes prof =
  let tbl : (string, pass) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun f ->
    let name = leaf f in
    let cur =
      match Hashtbl.find_opt tbl name with
      | Some p -> p
      | None -> { p_name = name; p_calls = 0; p_total_s = 0.0; p_self_s = 0.0 }
    in
    Hashtbl.replace tbl name
      { cur with
        p_calls = cur.p_calls + f.f_calls;
        p_total_s = cur.p_total_s +. f.f_total_s;
        p_self_s = cur.p_self_s +. f.f_self_s })
    prof;
  Hashtbl.fold (fun _ p acc -> p :: acc) tbl []
  |> List.sort (fun a b ->
       match compare b.p_self_s a.p_self_s with
       | 0 -> String.compare a.p_name b.p_name
       | c -> c)

let top_self ?(k = 15) prof =
  let ps = passes prof in
  List.filteri (fun i _ -> i < k) ps

(* --- rendering ---------------------------------------------------------- *)

(* collapsed-stack format (Brendan Gregg flamegraph.pl / speedscope /
   inferno): one "frame;frame;frame <value>" line per stack, value =
   self time in integer microseconds.  Sorted by stack so a fixed
   workload under a fixed clock renders byte-identically. *)
let collapsed prof =
  let b = Buffer.create 1024 in
  List.iter (fun f ->
    Buffer.add_string b (String.concat ";" f.f_stack);
    Buffer.add_char b ' ';
    Buffer.add_string b
      (string_of_int (int_of_float (f.f_self_s *. 1e6 +. 0.5)));
    Buffer.add_char b '\n')
    prof;
  Buffer.contents b

let write_collapsed path prof =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (collapsed prof))

let pp_top ?k fmt prof =
  let ps = top_self ?k prof in
  Format.fprintf fmt "%12s %12s %10s  %s@." "self ms" "total ms" "calls"
    "hot path";
  List.iter (fun p ->
    Format.fprintf fmt "%12.3f %12.3f %10d  %s@." (p.p_self_s *. 1e3)
      (p.p_total_s *. 1e3) p.p_calls p.p_name)
    ps;
  Format.fprintf fmt "%12.3f ms attributed across %d stack(s)@."
    (attributed_s prof *. 1e3)
    (List.length prof)

let pass_json p =
  Json.Obj
    [ ("calls", Json.Int p.p_calls);
      ("total_ms", Json.Float (p.p_total_s *. 1e3));
      ("self_ms", Json.Float (p.p_self_s *. 1e3)) ]

let json ?wall_ms prof =
  let ps =
    List.sort (fun a b -> String.compare a.p_name b.p_name) (passes prof)
  in
  Json.Obj
    ([ ("schema", Json.Str "emsc-compile-profile/1");
       ("attributed_ms", Json.Float (attributed_s prof *. 1e3)) ]
     @ (match wall_ms with
        | Some w -> [ ("wall_ms", Json.Float w) ]
        | None -> [])
     @ [ ("passes", Json.Obj (List.map (fun p -> (p.p_name, pass_json p)) ps));
         ( "stacks",
           Json.List
             (List.map (fun f ->
                Json.Obj
                  ([ ("stack", Json.Str (String.concat ";" f.f_stack));
                     ("calls", Json.Int f.f_calls);
                     ("total_ms", Json.Float (f.f_total_s *. 1e3));
                     ("self_ms", Json.Float (f.f_self_s *. 1e3)) ]
                   @
                   if f.f_counters = [] then []
                   else
                     [ ( "counters",
                         Json.Obj
                           (List.map (fun (k, v) -> (k, Json.Float v))
                              f.f_counters) ) ]))
                prof) ) ])

(* force-enable from the environment, so an unmodified binary (the
   tier-1 test runner, a CI compile) can run profiled for the overhead
   budget check *)
let () =
  match Sys.getenv_opt "EMSC_PROF" with
  | Some ("" | "0" | "false") | None -> ()
  | Some _ -> enabled_flag := true

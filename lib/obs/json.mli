(** Minimal JSON values: construction, printing, parsing.

    The container has no JSON library, so the observability layer
    carries its own.  The printer emits strictly conforming JSON
    (RFC 8259): strings are escaped, non-finite floats become [null].
    The parser accepts anything the printer emits (and ordinary JSON in
    general) so serialized reports can be round-tripped in tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces. *)

val pp : Format.formatter -> t -> unit
(** Pretty form, for human consumption. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error msg] carries the character
    offset of the failure.  Numbers with a fraction or exponent parse
    as [Float], others as [Int]. *)

val equal : t -> t -> bool
(** Structural equality; [Int n] and [Float f] are distinct even when
    numerically equal. *)

(** {2 Accessors (for tests and report consumers)} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_list : t -> t list
(** Elements of a [List]; [[]] on anything else. *)

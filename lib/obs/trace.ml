type node = {
  name : string;
  args : (string * Json.t) list;
  start_s : float;
  dur_s : float;
  counters : (string * float) list;
  children : node list;
}

(* an open span under construction; children/counters accumulate in
   reverse *)
type frame = {
  f_name : string;
  f_args : (string * Json.t) list;
  f_start : float;
  mutable f_counters : (string, float) Hashtbl.t;
  mutable f_children : node list;
}

let enabled_flag = ref false
let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

let default_clock = Unix.gettimeofday
let clock = ref default_clock
let set_clock c = clock := c
let use_default_clock () = clock := default_clock

(* Each domain keeps its own span stack (spans nest within one domain
   only), so worker-domain emitters never see each other's frames.
   Completed roots and root counters are shared across domains and
   guarded by [shared_m]. *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let shared_m = Mutex.create ()
let completed : node list ref = ref []  (* guarded by shared_m *)
let root_counters : (string, float) Hashtbl.t = Hashtbl.create 16
(* guarded by shared_m *)

let reset () =
  (stack ()) := [];
  Mutex.lock shared_m;
  completed := [];
  Hashtbl.reset root_counters;
  Mutex.unlock shared_m

let fresh_frame ?(args = []) name =
  { f_name = name; f_args = args; f_start = !clock ();
    f_counters = Hashtbl.create 4; f_children = [] }

let close_frame ?error f =
  let counters =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) f.f_counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let args =
    match error with
    | Some msg -> f.f_args @ [ ("error", Json.Str msg) ]
    | None -> f.f_args
  in
  { name = f.f_name; args; start_s = f.f_start;
    dur_s = !clock () -. f.f_start; counters;
    children = List.rev f.f_children }

let attach stack node =
  match !stack with
  | parent :: _ -> parent.f_children <- node :: parent.f_children
  | [] ->
    Mutex.lock shared_m;
    completed := node :: !completed;
    Mutex.unlock shared_m

let span ?args name f =
  if not !enabled_flag then f ()
  else begin
    let stack = stack () in
    let frame = fresh_frame ?args name in
    stack := frame :: !stack;
    let pop ?error () =
      (match !stack with
       | top :: rest when top == frame ->
         stack := rest;
         attach stack (close_frame ?error frame)
       | _ ->
         (* unbalanced (an inner span escaped via an exception we did
            not see); drop everything down to our frame *)
         let rec unwind = function
           | top :: rest when top == frame ->
             stack := rest;
             attach stack (close_frame ?error frame)
           | _ :: rest -> unwind rest
           | [] -> stack := []
         in
         unwind !stack)
    in
    match f () with
    | r -> pop (); r
    | exception e ->
      pop ~error:(Printexc.to_string e) ();
      raise e
  end

let bump tbl name v =
  let cur = try Hashtbl.find tbl name with Not_found -> 0.0 in
  Hashtbl.replace tbl name (cur +. v)

let count name v =
  if !enabled_flag then
    match !(stack ()) with
    | top :: _ -> bump top.f_counters name v
    | [] ->
      Mutex.lock shared_m;
      bump root_counters name v;
      Mutex.unlock shared_m

let roots () =
  Mutex.lock shared_m;
  let rs = List.rev !completed in
  Mutex.unlock shared_m;
  (* concurrent emitters finish in nondeterministic order; present
     roots in start order so renders are stable *)
  List.stable_sort (fun a b -> compare a.start_s b.start_s) rs

(* --- rendering --------------------------------------------------------- *)

let pp_tree fmt () =
  let rec go indent n =
    Format.fprintf fmt "%s%-*s %8.3f ms" indent
      (max 1 (40 - String.length indent))
      n.name (n.dur_s *. 1e3);
    List.iter (fun (k, v) -> Format.fprintf fmt "  %s=%.0f" k v) n.counters;
    Format.pp_print_newline fmt ();
    List.iter (go (indent ^ "  ")) n.children
  in
  List.iter (go "") (roots ());
  let rc =
    Mutex.lock shared_m;
    let rc =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) root_counters []
    in
    Mutex.unlock shared_m;
    List.sort compare rc
  in
  if rc <> [] then begin
    Format.fprintf fmt "(outside any span)";
    List.iter (fun (k, v) -> Format.fprintf fmt "  %s=%.0f" k v) rc;
    Format.pp_print_newline fmt ()
  end

let chrome_json () =
  let events = ref [] in
  let rec emit n =
    let args =
      n.args @ List.map (fun (k, v) -> (k, Json.Float v)) n.counters
    in
    let ev =
      Json.Obj
        ([ ("name", Json.Str n.name);
           ("cat", Json.Str "emsc");
           ("ph", Json.Str "X");
           ("ts", Json.Float (n.start_s *. 1e6));
           ("dur", Json.Float (n.dur_s *. 1e6));
           ("pid", Json.Int 1);
           ("tid", Json.Int 1) ]
         @ (if args = [] then [] else [ ("args", Json.Obj args) ]))
    in
    events := ev :: !events;
    List.iter emit n.children
  in
  List.iter emit (roots ());
  Json.Obj
    [ ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.Str "ms") ]

let write_chrome path =
  let oc = open_out path in
  output_string oc (Json.to_string (chrome_json ()));
  output_char oc '\n';
  close_out oc

type agg = {
  agg_name : string;
  calls : int;
  errors : int;
  total_s : float;
  agg_counters : (string * float) list;
}

let aggregate () =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  let rec go n =
    let cur =
      match Hashtbl.find_opt tbl n.name with
      | Some a -> a
      | None ->
        { agg_name = n.name; calls = 0; errors = 0; total_s = 0.0;
          agg_counters = [] }
    in
    let errored = List.mem_assoc "error" n.args in
    let counters =
      List.fold_left (fun acc (k, v) ->
        let prev = try List.assoc k acc with Not_found -> 0.0 in
        (k, prev +. v) :: List.remove_assoc k acc)
        cur.agg_counters n.counters
    in
    Hashtbl.replace tbl n.name
      { cur with
        calls = cur.calls + 1;
        errors = (cur.errors + if errored then 1 else 0);
        total_s = cur.total_s +. n.dur_s;
        agg_counters = counters };
    List.iter go n.children
  in
  List.iter go (roots ());
  Hashtbl.fold (fun _ a acc ->
    { a with
      agg_counters =
        List.sort (fun (x, _) (y, _) -> String.compare x y) a.agg_counters }
    :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.total_s a.total_s)

let aggregate_json () =
  Json.List
    (List.map (fun a ->
       Json.Obj
         ([ ("name", Json.Str a.agg_name);
            ("calls", Json.Int a.calls);
            ("errors", Json.Int a.errors);
            ("total_ms", Json.Float (a.total_s *. 1e3)) ]
          @
          if a.agg_counters = [] then []
          else
            [ ( "counters",
                Json.Obj
                  (List.map (fun (k, v) -> (k, Json.Float v)) a.agg_counters)
              ) ]))
       (aggregate ()))

type kind = Exec_track | Dma_track | Arena_track

type phase = Whole | Compute | Move_in | Move_out

type data =
  | Block of { launch : int; block : int; phase : phase }
  | Dma_transfer of {
      launch : int;
      block : int;
      dir : [ `In | `Out ];
      words : float;
    }
  | Dma_wait of { launch : int; block : int }
  | Steal of { victim : int; ok : bool }
  | Idle of [ `Work | `Arena ]
  | Occupancy of { words : int; arenas : int }

type event = { t0 : float; t1 : float; data : data }

(* Single-writer ring: [buf.(seq mod cap)] is the next slot; once [seq]
   passes [cap] the oldest events are overwritten and counted as
   dropped.  [seq] is a plain mutable — the one writer bumps it, and
   readers only look after a happens-before edge (pool barrier). *)
type ring = {
  r_name : string;
  r_kind : kind;
  buf : event option array;
  mutable seq : int;
}

type track = {
  t_name : string;
  t_kind : kind;
  dropped : int;
  events : event list;
}

let enabled_flag = ref false
let enabled () = !enabled_flag

let default_capacity = 65536
let capacity = ref default_capacity

let default_clock = Unix.gettimeofday
let clock = ref default_clock
let set_clock c = clock := c
let use_default_clock () = clock := default_clock
let now () = !clock ()

(* registration order preserved; guarded by [reg_m] *)
let reg_m = Mutex.create ()
let rings : ring list ref = ref []  (* reverse registration order *)

let enable ?capacity:(cap = default_capacity) () =
  if cap < 1 then invalid_arg "Events.enable: capacity < 1";
  (* future rings get the new capacity; existing ones keep theirs *)
  capacity := cap;
  enabled_flag := true

let disable () = enabled_flag := false

let reset () =
  Mutex.lock reg_m;
  rings := [];
  Mutex.unlock reg_m

let ring ~kind name =
  Mutex.lock reg_m;
  let r =
    match List.find_opt (fun r -> r.r_name = name) !rings with
    | Some r -> r
    | None ->
      let r =
        { r_name = name; r_kind = kind;
          buf = Array.make !capacity None; seq = 0 }
      in
      rings := r :: !rings;
      r
  in
  Mutex.unlock reg_m;
  r

let emit r ~t0 ?t1 data =
  if !enabled_flag then begin
    let t1 = match t1 with Some t -> t | None -> !clock () in
    let cap = Array.length r.buf in
    r.buf.(r.seq mod cap) <- Some { t0; t1; data };
    r.seq <- r.seq + 1
  end

let drain_ring r =
  let cap = Array.length r.buf in
  let n = min r.seq cap in
  let dropped = r.seq - n in
  (* oldest surviving event sits at [seq mod cap] once wrapped, at 0
     otherwise *)
  let first = if r.seq > cap then r.seq mod cap else 0 in
  let events = ref [] in
  for i = n - 1 downto 0 do
    match r.buf.((first + i) mod cap) with
    | Some e -> events := e :: !events
    | None -> ()
  done;
  { t_name = r.r_name; t_kind = r.r_kind; dropped; events = !events }

let drain () =
  Mutex.lock reg_m;
  let rs = List.rev !rings in
  Mutex.unlock reg_m;
  List.map drain_ring rs

(* --- Chrome trace_event rendering -------------------------------------- *)

let runtime_pid = 2

let event_name = function
  | Block { phase = Whole; _ } -> "block"
  | Block { phase = Compute; _ } -> "compute"
  | Block { phase = Move_in; _ } -> "move-in"
  | Block { phase = Move_out; _ } -> "move-out"
  | Dma_transfer { dir = `In; _ } -> "dma-in"
  | Dma_transfer { dir = `Out; _ } -> "dma-out"
  | Dma_wait _ -> "dma-wait"
  | Steal { ok = true; _ } -> "steal"
  | Steal { ok = false; _ } -> "steal-miss"
  | Idle `Work -> "idle"
  | Idle `Arena -> "arena-wait"
  | Occupancy _ -> "occupancy"

let event_args = function
  | Block { launch; block; _ } | Dma_wait { launch; block } ->
    [ ("launch", Json.Int launch); ("block", Json.Int block) ]
  | Dma_transfer { launch; block; words; _ } ->
    [ ("launch", Json.Int launch); ("block", Json.Int block);
      ("words", Json.Float words) ]
  | Steal { victim; _ } -> [ ("victim", Json.Int victim) ]
  | Idle _ -> []
  | Occupancy { words; arenas } ->
    [ ("words", Json.Int words); ("arenas", Json.Int arenas) ]

let chrome_events tracks =
  let out = ref [] in
  let push e = out := e :: !out in
  (match tracks with
   | [] -> ()
   | _ ->
     push
       (Json.Obj
          [ ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int runtime_pid);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.Str "emsc runtime") ]) ]));
  List.iteri
    (fun i tr ->
       let tid = i + 1 in
       push
         (Json.Obj
            [ ("name", Json.Str "thread_name");
              ("ph", Json.Str "M");
              ("pid", Json.Int runtime_pid);
              ("tid", Json.Int tid);
              ("args", Json.Obj [ ("name", Json.Str tr.t_name) ]) ]);
       List.iter
         (fun e ->
            let args = event_args e.data in
            push
              (Json.Obj
                 ([ ("name", Json.Str (event_name e.data));
                    ("cat", Json.Str "emsc-runtime");
                    ("ph", Json.Str "X");
                    ("ts", Json.Float (e.t0 *. 1e6));
                    ("dur", Json.Float (max 0.0 (e.t1 -. e.t0) *. 1e6));
                    ("pid", Json.Int runtime_pid);
                    ("tid", Json.Int tid) ]
                  @ (if args = [] then []
                     else [ ("args", Json.Obj args) ]))))
         tr.events)
    tracks;
  List.rev !out

let merged_chrome_json () =
  let compile = Trace.chrome_json () in
  let compile_events =
    match Json.member "traceEvents" compile with
    | Some l -> Json.to_list l
    | None -> []
  in
  let tracks = drain () in
  (* keep empty tracks out of the file so an events-off profile is
     byte-identical to the compile-only trace *)
  let tracks = List.filter (fun t -> t.events <> [] || t.dropped > 0) tracks in
  Json.Obj
    [ ("traceEvents", Json.List (compile_events @ chrome_events tracks));
      ("displayTimeUnit", Json.Str "ms") ]

let write_merged_chrome path =
  let oc = open_out path in
  output_string oc (Json.to_string (merged_chrome_json ()));
  output_char oc '\n';
  close_out oc

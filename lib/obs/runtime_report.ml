type domain_stat = {
  d_name : string;
  d_busy_s : float;
  d_dma_wait_s : float;
  d_idle_s : float;
  d_steal_attempts : int;
  d_steal_hits : int;
  d_blocks : int;
}

type occupancy_sample = { o_t : float; o_words : int; o_arenas : int }

type t = {
  window_s : float;
  domains : domain_stat list;
  compute_busy_s : float;
  dma_busy_s : float;
  dma_words : float;
  overlap_s : float;
  overlap_fraction : float;
  occupancy : occupancy_sample list;
  occupancy_peak_words : int;
  occupancy_peak_arenas : int;
  critical_path_s : float;
  dropped_events : int;
}

(* total length of the union of [(t0, t1)] intervals: sort by start,
   sweep, merge overlaps *)
let union_length intervals =
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare a b)
      (List.filter (fun (a, b) -> b > a) intervals)
  in
  let rec go acc cur = function
    | [] -> (match cur with None -> acc | Some (lo, hi) -> acc +. (hi -. lo))
    | (a, b) :: rest ->
      (match cur with
       | None -> go acc (Some (a, b)) rest
       | Some (lo, hi) ->
         if a <= hi then go acc (Some (lo, max hi b)) rest
         else go (acc +. (hi -. lo)) (Some (a, b)) rest)
  in
  go 0.0 None sorted

(* |A ∩ B| = |A| + |B| − |A ∪ B| *)
let intersection_length xs ys =
  max 0.0 (union_length xs +. union_length ys -. union_length (xs @ ys))

let build (tracks : Events.track list) =
  let all_events = List.concat_map (fun t -> t.Events.events) tracks in
  if all_events = [] then None
  else begin
    let t_min =
      List.fold_left (fun a e -> min a e.Events.t0) infinity all_events
    and t_max =
      List.fold_left (fun a e -> max a e.Events.t1) neg_infinity all_events
    in
    let window_s = max 0.0 (t_max -. t_min) in
    let dur e = max 0.0 (e.Events.t1 -. e.Events.t0) in
    let domains =
      List.filter_map
        (fun tr ->
           if tr.Events.t_kind <> Events.Exec_track then None
           else begin
             let busy = ref 0.0 and wait = ref 0.0 in
             let attempts = ref 0 and hits = ref 0 and blocks = ref 0 in
             List.iter
               (fun e ->
                  match e.Events.data with
                  | Events.Block _ ->
                    busy := !busy +. dur e;
                    incr blocks
                  | Events.Dma_wait _ -> wait := !wait +. dur e
                  | Events.Steal { ok; _ } ->
                    incr attempts;
                    if ok then incr hits
                  | _ -> ())
               tr.Events.events;
             Some
               { d_name = tr.Events.t_name;
                 d_busy_s = !busy;
                 d_dma_wait_s = !wait;
                 d_idle_s = max 0.0 (window_s -. !busy -. !wait);
                 d_steal_attempts = !attempts;
                 d_steal_hits = !hits;
                 d_blocks = !blocks }
           end)
        tracks
    in
    let compute_ivals =
      List.concat_map
        (fun tr ->
           if tr.Events.t_kind <> Events.Exec_track then []
           else
             List.filter_map
               (fun e ->
                  match e.Events.data with
                  | Events.Block _ -> Some (e.Events.t0, e.Events.t1)
                  | _ -> None)
               tr.Events.events)
        tracks
    in
    let dma_ivals = ref [] and dma_words = ref 0.0 in
    List.iter
      (fun tr ->
         List.iter
           (fun e ->
              match e.Events.data with
              | Events.Dma_transfer { words; _ } ->
                dma_ivals := (e.Events.t0, e.Events.t1) :: !dma_ivals;
                dma_words := !dma_words +. words
              | _ -> ())
           tr.Events.events)
      tracks;
    let compute_busy_s = union_length compute_ivals in
    let dma_busy_s = union_length !dma_ivals in
    let overlap_s = intersection_length compute_ivals !dma_ivals in
    let occupancy =
      List.concat_map
        (fun tr ->
           List.filter_map
             (fun e ->
                match e.Events.data with
                | Events.Occupancy { words; arenas } ->
                  Some { o_t = e.Events.t0; o_words = words;
                         o_arenas = arenas }
                | _ -> None)
             tr.Events.events)
        tracks
      |> List.stable_sort (fun a b -> compare a.o_t b.o_t)
    in
    let occupancy_peak_words =
      List.fold_left (fun a s -> max a s.o_words) 0 occupancy
    and occupancy_peak_arenas =
      List.fold_left (fun a s -> max a s.o_arenas) 0 occupancy
    in
    (* per-(launch, block) event envelope; launches are separated by a
       global barrier, so the run's critical path is the sum over
       launches of the longest block envelope *)
    let envelopes : (int * int, float * float) Hashtbl.t =
      Hashtbl.create 64
    in
    let touch launch block e =
      let lo, hi =
        match Hashtbl.find_opt envelopes (launch, block) with
        | Some (lo, hi) -> (min lo e.Events.t0, max hi e.Events.t1)
        | None -> (e.Events.t0, e.Events.t1)
      in
      Hashtbl.replace envelopes (launch, block) (lo, hi)
    in
    List.iter
      (fun e ->
         match e.Events.data with
         | Events.Block { launch; block; _ }
         | Events.Dma_transfer { launch; block; _ }
         | Events.Dma_wait { launch; block } -> touch launch block e
         | _ -> ())
      all_events;
    let per_launch : (int, float) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.iter
      (fun (launch, _) (lo, hi) ->
         let len = max 0.0 (hi -. lo) in
         let cur =
           match Hashtbl.find_opt per_launch launch with
           | Some v -> v
           | None -> 0.0
         in
         Hashtbl.replace per_launch launch (max cur len))
      envelopes;
    let critical_path_s = Hashtbl.fold (fun _ v a -> a +. v) per_launch 0.0 in
    let dropped_events =
      List.fold_left (fun a tr -> a + tr.Events.dropped) 0 tracks
    in
    Some
      { window_s; domains; compute_busy_s; dma_busy_s;
        dma_words = !dma_words; overlap_s;
        overlap_fraction =
          (if dma_busy_s > 0.0 then overlap_s /. dma_busy_s else 0.0);
        occupancy; occupancy_peak_words; occupancy_peak_arenas;
        critical_path_s; dropped_events }
  end

let ms s = Json.Float (s *. 1e3)

let to_json r =
  Json.Obj
    [ ("window_ms", ms r.window_s);
      ( "domains",
        Json.List
          (List.map
             (fun d ->
                Json.Obj
                  [ ("name", Json.Str d.d_name);
                    ("busy_ms", ms d.d_busy_s);
                    ("dma_wait_ms", ms d.d_dma_wait_s);
                    ("idle_ms", ms d.d_idle_s);
                    ("steal_attempts", Json.Int d.d_steal_attempts);
                    ("steal_hits", Json.Int d.d_steal_hits);
                    ("blocks", Json.Int d.d_blocks) ])
             r.domains) );
      ("compute_busy_ms", ms r.compute_busy_s);
      ("dma_busy_ms", ms r.dma_busy_s);
      ("dma_words", Json.Float r.dma_words);
      ("overlap_ms", ms r.overlap_s);
      ("overlap_fraction", Json.Float r.overlap_fraction);
      ( "occupancy",
        Json.List
          (List.map
             (fun s ->
                Json.Obj
                  [ ("t_ms", ms s.o_t);
                    ("words", Json.Int s.o_words);
                    ("arenas", Json.Int s.o_arenas) ])
             r.occupancy) );
      ("occupancy_peak_words", Json.Int r.occupancy_peak_words);
      ("occupancy_peak_arenas", Json.Int r.occupancy_peak_arenas);
      ("critical_path_ms", ms r.critical_path_s);
      ("dropped_events", Json.Int r.dropped_events) ]

let pp fmt r =
  Format.fprintf fmt "runtime report (window %.3f ms)@."
    (r.window_s *. 1e3);
  List.iter
    (fun d ->
       Format.fprintf fmt
         "  %-10s busy %8.3f ms  dma-wait %8.3f ms  idle %8.3f ms  \
          blocks %d  steals %d/%d@."
         d.d_name (d.d_busy_s *. 1e3) (d.d_dma_wait_s *. 1e3)
         (d.d_idle_s *. 1e3) d.d_blocks d.d_steal_hits d.d_steal_attempts)
    r.domains;
  Format.fprintf fmt
    "  dma busy %.3f ms (%.0f words)  overlap %.3f ms (%.1f%% of dma)@."
    (r.dma_busy_s *. 1e3) r.dma_words (r.overlap_s *. 1e3)
    (r.overlap_fraction *. 100.0);
  Format.fprintf fmt "  occupancy peak %d words / %d arenas@."
    r.occupancy_peak_words r.occupancy_peak_arenas;
  Format.fprintf fmt "  critical path %.3f ms@." (r.critical_path_s *. 1e3);
  if r.dropped_events > 0 then
    Format.fprintf fmt "  (%d events dropped to ring wraparound)@."
      r.dropped_events

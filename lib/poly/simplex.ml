open Emsc_arith
open Emsc_linalg

type result =
  | Infeasible
  | Unbounded
  | Optimal of Q.t * Q.t array

(* Internal standard-form problem:
     minimize  cost . y
     s.t.      tab * y = rhs,   y >= 0
   where the tableau rows are kept with rhs >= 0 throughout.  Free
   variables of the user problem are split as x = u - v. *)

type tableau = {
  mutable rows : Q.t array array; (* m x ncols *)
  mutable rhs : Q.t array;        (* m *)
  mutable basis : int array;      (* m, column index basic in each row *)
  ncols : int;
}

let pivot t ~row ~col =
  Emsc_obs.Prof.add "simplex.pivots" 1.0;
  let m = Array.length t.rows in
  let piv = t.rows.(row).(col) in
  let inv = Q.inv piv in
  let r = t.rows.(row) in
  for j = 0 to t.ncols - 1 do
    r.(j) <- Q.mul r.(j) inv
  done;
  t.rhs.(row) <- Q.mul t.rhs.(row) inv;
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = t.rows.(i).(col) in
      if not (Q.is_zero f) then begin
        let ri = t.rows.(i) in
        for j = 0 to t.ncols - 1 do
          ri.(j) <- Q.sub ri.(j) (Q.mul f r.(j))
        done;
        t.rhs.(i) <- Q.sub t.rhs.(i) (Q.mul f t.rhs.(row))
      end
    end
  done;
  t.basis.(row) <- col

(* Reduced costs for objective [cost] (length ncols) given the current
   basis: z_j = cost_j - cost_B . B^-1 A_j.  We maintain them by direct
   computation each iteration; problems are small, clarity wins. *)
let reduced_costs t cost =
  let m = Array.length t.rows in
  let red = Array.copy cost in
  for i = 0 to m - 1 do
    let cb = cost.(t.basis.(i)) in
    if not (Q.is_zero cb) then begin
      let ri = t.rows.(i) in
      for j = 0 to t.ncols - 1 do
        red.(j) <- Q.sub red.(j) (Q.mul cb ri.(j))
      done
    end
  done;
  red

let objective_value t cost =
  let m = Array.length t.rows in
  let v = ref Q.zero in
  for i = 0 to m - 1 do
    v := Q.add !v (Q.mul cost.(t.basis.(i)) t.rhs.(i))
  done;
  !v

(* Bland's rule: entering = smallest-index column with negative reduced
   cost (restricted to [allowed]); leaving = smallest-index basic var
   among the min-ratio rows.  Returns `Optimal or `Unbounded. *)
let solve_phase t cost ~allowed =
  let m = Array.length t.rows in
  let rec iterate () =
    let red = reduced_costs t cost in
    let entering = ref (-1) in
    for j = t.ncols - 1 downto 0 do
      if allowed j && Q.sign red.(j) < 0 then entering := j
    done;
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best = ref (-1) in
      let best_ratio = ref Q.zero in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if Q.sign a > 0 then begin
          let ratio = Q.div t.rhs.(i) a in
          if !best < 0
             || Q.compare ratio !best_ratio < 0
             || (Q.equal ratio !best_ratio
                 && t.basis.(i) < t.basis.(!best))
          then begin best := i; best_ratio := ratio end
        end
      done;
      if !best < 0 then `Unbounded
      else begin
        pivot t ~row:!best ~col;
        iterate ()
      end
    end
  in
  iterate ()

let minimize_impl ~dim ~eqs ~ineqs ~obj =
  let n_eq = List.length eqs and n_in = List.length ineqs in
  let m = n_eq + n_in in
  (* columns: [0, 2*dim): u/v pairs; [2*dim, 2*dim+n_in): slacks;
     [2*dim+n_in, 2*dim+n_in+m): artificials *)
  let n_struct = 2 * dim in
  let slack0 = n_struct in
  let art0 = n_struct + n_in in
  let ncols = art0 + m in
  let rows = Array.init m (fun _ -> Array.make ncols Q.zero) in
  let rhs = Array.make m Q.zero in
  let basis = Array.make m 0 in
  let fill i (a : Vec.t) ~slack =
    (* a . x + a.(dim) {>=,=} 0  =>  sum a_j (u_j - v_j) [- s] = -a.(dim) *)
    let r = rows.(i) in
    for j = 0 to dim - 1 do
      let c = Q.of_zint a.(j) in
      r.(2 * j) <- c;
      r.(2 * j + 1) <- Q.neg c
    done;
    (match slack with
     | Some k -> r.(slack0 + k) <- Q.minus_one
     | None -> ());
    rhs.(i) <- Q.neg (Q.of_zint a.(dim));
    (* normalize to rhs >= 0 *)
    if Q.sign rhs.(i) < 0 then begin
      for j = 0 to ncols - 1 do
        r.(j) <- Q.neg r.(j)
      done;
      rhs.(i) <- Q.neg rhs.(i)
    end;
    r.(art0 + i) <- Q.one;
    basis.(i) <- art0 + i
  in
  List.iteri (fun i a -> fill i a ~slack:None) eqs;
  List.iteri (fun k a -> fill (n_eq + k) a ~slack:(Some k)) ineqs;
  let t = { rows; rhs; basis; ncols } in
  (* Phase 1: minimize sum of artificials. *)
  let cost1 = Array.make ncols Q.zero in
  for j = art0 to ncols - 1 do
    cost1.(j) <- Q.one
  done;
  (match solve_phase t cost1 ~allowed:(fun _ -> true) with
   | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
   | `Optimal -> ());
  if Q.sign (objective_value t cost1) > 0 then Infeasible
  else begin
    (* Drive any artificial still basic (at value 0) out of the basis. *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= art0 then begin
        let piv = ref (-1) in
        for j = art0 - 1 downto 0 do
          if not (Q.is_zero t.rows.(i).(j)) then piv := j
        done;
        if !piv >= 0 then pivot t ~row:i ~col:!piv
        (* else: redundant row; harmless to keep with the artificial
           pinned at zero since artificials are banned in phase 2 *)
      end
    done;
    (* Phase 2 *)
    let cost2 = Array.make ncols Q.zero in
    for j = 0 to dim - 1 do
      cost2.(2 * j) <- obj.(j);
      cost2.(2 * j + 1) <- Q.neg obj.(j)
    done;
    let allowed j = j < art0 in
    match solve_phase t cost2 ~allowed with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let value = Q.add (objective_value t cost2) obj.(dim) in
      let y = Array.make ncols Q.zero in
      for i = 0 to m - 1 do
        y.(t.basis.(i)) <- t.rhs.(i)
      done;
      let point =
        Array.init dim (fun j -> Q.sub y.(2 * j) y.(2 * j + 1))
      in
      Optimal (value, point)
  end

(* the flag test keeps the disabled path free of the probe closure *)
let minimize ~dim ~eqs ~ineqs ~obj =
  if not (Emsc_obs.Prof.enabled ()) then minimize_impl ~dim ~eqs ~ineqs ~obj
  else
    Emsc_obs.Prof.probe "simplex.minimize" (fun () ->
      minimize_impl ~dim ~eqs ~ineqs ~obj)

let maximize ~dim ~eqs ~ineqs ~obj =
  let neg = Array.map Q.neg obj in
  match minimize ~dim ~eqs ~ineqs ~obj:neg with
  | Optimal (v, p) -> Optimal (Q.neg v, p)
  | (Infeasible | Unbounded) as r -> r

let feasible_point ~dim ~eqs ~ineqs =
  let obj = Array.make (dim + 1) Q.zero in
  match minimize ~dim ~eqs ~ineqs ~obj with
  | Optimal (_, p) -> Some p
  | Infeasible | Unbounded -> None

let obj_of_vec (v : Vec.t) = Array.map Q.of_zint v

open Emsc_arith
open Emsc_linalg

type t = { dim : int; eqs : Vec.t list; ineqs : Vec.t list }

exception Empty

(* --- constraint normalization ------------------------------------- *)

let var_part row = Array.sub row 0 (Array.length row - 1)
let const_of row = row.(Array.length row - 1)

(* Integer-tighten an inequality: divide the variable part by its gcd
   and floor the constant.  Exact on integer points.  Raises Empty for
   a constant contradiction; returns None for a trivially-true row. *)
let normalize_ineq row =
  let n = Array.length row - 1 in
  let g = Vec.content (var_part row) in
  if Zint.is_zero g then begin
    if Zint.is_negative row.(n) then raise Empty else None
  end
  else if Zint.is_one g then Some row
  else begin
    let r =
      Array.init (n + 1) (fun i ->
        if i < n then Zint.divexact row.(i) g else Zint.fdiv row.(i) g)
    in
    Some r
  end

(* Normalize an equality: integer-infeasible when gcd of the variable
   part does not divide the constant.  Sign-normalized so the first
   nonzero coefficient is positive. *)
let normalize_eq row =
  let n = Array.length row - 1 in
  let g = Vec.content (var_part row) in
  if Zint.is_zero g then begin
    if not (Zint.is_zero row.(n)) then raise Empty else None
  end
  else begin
    if not (Zint.is_zero (Zint.rem row.(n) g)) then raise Empty;
    let r =
      if Zint.is_one g then row
      else Array.map (fun x -> Zint.divexact x g) row
    in
    let rec first_nonzero i =
      if Zint.is_zero r.(i) then first_nonzero (i + 1) else r.(i)
    in
    Some (if Zint.is_negative (first_nonzero 0) then Vec.neg r else r)
  end

(* Deduplicate inequalities sharing a variable part: keep the tightest
   (smallest) constant. *)
let dedupe_ineqs ineqs =
  let cmp a b =
    let c = Vec.compare (var_part a) (var_part b) in
    if c <> 0 then c else Zint.compare (const_of a) (const_of b)
  in
  let sorted = List.sort cmp ineqs in
  (* after sorting, the first row of each var-part group has the
     smallest constant, i.e. is the tightest: keep it, drop the rest *)
  let rec keep = function
    | [] -> []
    | r :: rest ->
      let same_dir r' = Vec.equal (var_part r) (var_part r') in
      r :: keep (List.filter (fun r' -> not (same_dir r')) rest)
  in
  keep sorted

let dedupe_eqs eqs = List.sort_uniq Vec.compare eqs

let bottom dim =
  let row = Vec.make (dim + 1) in
  row.(dim) <- Zint.minus_one;
  { dim; eqs = []; ineqs = [ row ] }

let construct dim eqs ineqs =
  try
    let eqs = List.filter_map normalize_eq eqs in
    let ineqs = List.filter_map normalize_ineq ineqs in
    { dim; eqs = dedupe_eqs eqs; ineqs = dedupe_ineqs ineqs }
  with Empty -> bottom dim

let universe dim = { dim; eqs = []; ineqs = [] }

let check_width dim rows =
  List.iter (fun r ->
    if Array.length r <> dim + 1 then
      invalid_arg "Poly: constraint width <> dim + 1")
    rows

let make ~dim ~eqs ~ineqs =
  check_width dim eqs;
  check_width dim ineqs;
  construct dim eqs ineqs

let of_ineqs ~dim rows = make ~dim ~eqs:[] ~ineqs:(List.map Vec.of_ints rows)

let dim p = p.dim
let constraints p = (p.eqs, p.ineqs)

let add_eq p row = construct p.dim (row :: p.eqs) p.ineqs
let add_ineq p row = construct p.dim p.eqs (row :: p.ineqs)

let intersect p q =
  if p.dim <> q.dim then invalid_arg "Poly.intersect: dimension mismatch";
  construct p.dim (p.eqs @ q.eqs) (p.ineqs @ q.ineqs)

let is_trivially_empty p =
  List.exists (fun r ->
    Vec.is_zero (var_part r) && Zint.is_negative (const_of r))
    p.ineqs

let is_empty_impl p =
  is_trivially_empty p
  || Simplex.feasible_point ~dim:p.dim ~eqs:p.eqs ~ineqs:p.ineqs = None

let is_empty p = Emsc_obs.Prof.counted "poly.is_empty" is_empty_impl p

let is_universe p = p.eqs = [] && p.ineqs = []

let eval_row row pt =
  let n = Array.length row - 1 in
  let acc = ref row.(n) in
  for i = 0 to n - 1 do
    acc := Zint.add !acc (Zint.mul row.(i) pt.(i))
  done;
  !acc

let contains_point p pt =
  Array.length pt = p.dim
  && List.for_all (fun r -> Zint.is_zero (eval_row r pt)) p.eqs
  && List.for_all (fun r -> not (Zint.is_negative (eval_row r pt))) p.ineqs

let sample_rational p =
  Simplex.feasible_point ~dim:p.dim ~eqs:p.eqs ~ineqs:p.ineqs

(* --- Fourier–Motzkin ------------------------------------------------ *)

(* Substitute using equality [e] (nonzero coefficient at [j]) into [row]
   so the result has a zero coefficient at [j]; valid for both
   equalities and inequalities since the multiplier on [row] is > 0. *)
let substitute_eq e j row =
  let ej = e.(j) and rj = row.(j) in
  if Zint.is_zero rj then row
  else begin
    let mult_row = Zint.abs ej in
    let mult_e = Zint.neg (Zint.mul rj (Zint.of_int (Zint.sign ej))) in
    Vec.combine mult_row row mult_e e
  end

let eliminate_dim_impl p j =
  (* input-structure histograms: FM projection cost is driven by
     constraint count and dimension, so record both per call *)
  if Emsc_obs.Metrics.enabled () then begin
    Emsc_obs.Metrics.observe "poly.project.ineqs"
      (float_of_int (List.length p.ineqs));
    Emsc_obs.Metrics.observe "poly.project.dim" (float_of_int p.dim)
  end;
  if is_trivially_empty p then bottom (p.dim - 1)
  else begin
    let drop row = Vec.remove row j in
    let has_j r = not (Zint.is_zero r.(j)) in
    match List.find_opt has_j p.eqs with
    | Some e ->
      let other_eqs = List.filter (fun r -> r != e) p.eqs in
      construct (p.dim - 1)
        (List.map (fun r -> drop (substitute_eq e j r)) other_eqs)
        (List.map (fun r -> drop (substitute_eq e j r)) p.ineqs)
    | None ->
      let pos, rest = List.partition (fun r -> Zint.is_positive r.(j)) p.ineqs in
      let neg, zero = List.partition (fun r -> Zint.is_negative r.(j)) rest in
      let combined =
        List.concat_map (fun rp ->
          List.map (fun rn ->
            (* positive multipliers: (-an) * rp + ap * rn *)
            drop (Vec.combine (Zint.neg rn.(j)) rp rp.(j) rn))
            neg)
          pos
      in
      construct (p.dim - 1)
        (List.map drop p.eqs)
        (List.map drop zero @ combined)
  end

let eliminate_dim p j =
  if j < 0 || j >= p.dim then invalid_arg "Poly.eliminate_dim";
  Emsc_obs.Prof.counted2 "poly.eliminate_dim" eliminate_dim_impl p j

let eliminate_dims p js =
  let sorted = List.sort_uniq (fun a b -> compare b a) js in
  List.fold_left eliminate_dim p sorted

let project_prefix p k =
  let js = List.init (p.dim - k) (fun i -> k + i) in
  eliminate_dims p js

(* --- affine images --------------------------------------------------- *)

let insert_dims p ~pos ~count =
  if count = 0 then p
  else begin
    let zeros = Vec.make count in
    let widen row =
      let n = Array.length row - 1 in
      Vec.append (Array.sub row 0 pos)
        (Vec.append zeros (Array.sub row pos (n + 1 - pos)))
    in
    { dim = p.dim + count;
      eqs = List.map widen p.eqs;
      ineqs = List.map widen p.ineqs }
  end

let image_impl p f =
  let n = p.dim and m = Mat.rows f in
  (* build over (x, y) then eliminate x *)
  let ext = insert_dims p ~pos:n ~count:m in
  let eq_rows =
    List.init m (fun i ->
      let row = Vec.make (n + m + 1) in
      for j = 0 to n - 1 do
        row.(j) <- Zint.neg f.(i).(j)
      done;
      row.(n + i) <- Zint.one;
      row.(n + m) <- Zint.neg f.(i).(n);
      row)
  in
  let combined =
    construct (n + m) (eq_rows @ ext.eqs) ext.ineqs
  in
  eliminate_dims combined (List.init n (fun i -> i))

let image p f =
  if Mat.cols f <> p.dim + 1 then invalid_arg "Poly.image: map width";
  Emsc_obs.Prof.counted2 "poly.image" image_impl p f

let preimage p f =
  let n = p.dim in
  if Mat.rows f <> n then invalid_arg "Poly.preimage: map height";
  let pdim = Mat.cols f - 1 in
  let transform row =
    let out = Vec.make (pdim + 1) in
    for k = 0 to pdim do
      let acc = ref Zint.zero in
      for i = 0 to n - 1 do
        acc := Zint.add !acc (Zint.mul row.(i) f.(i).(k))
      done;
      out.(k) <- !acc
    done;
    out.(pdim) <- Zint.add out.(pdim) row.(n);
    out
  in
  construct pdim (List.map transform p.eqs) (List.map transform p.ineqs)

let translate p v =
  if Array.length v <> p.dim then invalid_arg "Poly.translate";
  let shift row =
    let r = Vec.copy row in
    r.(p.dim) <- Zint.sub row.(p.dim) (Vec.dot (var_part row) v);
    r
  in
  (* x' = x + v  =>  substitute x = x' - v:  a.(x'-v) + c = a.x' + (c - a.v) *)
  { p with eqs = List.map shift p.eqs; ineqs = List.map shift p.ineqs }

let fix_dim p j v =
  if j < 0 || j >= p.dim then invalid_arg "Poly.fix_dim";
  let subst row =
    let r = Vec.remove row j in
    r.(p.dim - 1) <- Zint.add r.(p.dim - 1) (Zint.mul row.(j) v);
    r
  in
  construct (p.dim - 1) (List.map subst p.eqs) (List.map subst p.ineqs)

(* --- bounds ----------------------------------------------------------- *)

let var_bounds p i =
  let obj = Array.make (p.dim + 1) Q.zero in
  obj.(i) <- Q.one;
  let lo =
    match Simplex.minimize ~dim:p.dim ~eqs:p.eqs ~ineqs:p.ineqs ~obj with
    | Simplex.Optimal (v, _) -> Some v
    | Simplex.Unbounded | Simplex.Infeasible -> None
  in
  let hi =
    match Simplex.maximize ~dim:p.dim ~eqs:p.eqs ~ineqs:p.ineqs ~obj with
    | Simplex.Optimal (v, _) -> Some v
    | Simplex.Unbounded | Simplex.Infeasible -> None
  in
  (lo, hi)

let var_bounds_int p i =
  let lo, hi = var_bounds p i in
  (Option.map Q.ceil lo, Option.map Q.floor hi)

let dim_bound_pairs p j =
  let lowers = ref [] and uppers = ref [] in
  let zero_j row =
    let r = Vec.copy row in
    r.(j) <- Zint.zero;
    r
  in
  let add_ineq row =
    let a = row.(j) in
    if Zint.is_positive a then lowers := (a, zero_j row) :: !lowers
    else if Zint.is_negative a then
      uppers := (Zint.neg a, zero_j row) :: !uppers
  in
  List.iter add_ineq p.ineqs;
  List.iter (fun row ->
    let a = row.(j) in
    if not (Zint.is_zero a) then begin
      let row = if Zint.is_negative a then Vec.neg row else row in
      let a = Zint.abs a in
      lowers := (a, zero_j row) :: !lowers;
      uppers := (a, Vec.neg (zero_j row)) :: !uppers
    end)
    p.eqs;
  (!lowers, !uppers)

(* --- entailment and redundancy ---------------------------------------- *)

let row_min p row =
  Simplex.minimize ~dim:p.dim ~eqs:p.eqs ~ineqs:p.ineqs
    ~obj:(Simplex.obj_of_vec row)

let row_max p row =
  Simplex.maximize ~dim:p.dim ~eqs:p.eqs ~ineqs:p.ineqs
    ~obj:(Simplex.obj_of_vec row)

let implies p row =
  match row_min p row with
  | Simplex.Infeasible -> true
  | Simplex.Unbounded -> false
  | Simplex.Optimal (v, _) -> Q.sign v >= 0

let is_subset p q =
  if p.dim <> q.dim then invalid_arg "Poly.is_subset";
  is_empty p
  || (List.for_all (fun e -> implies p e && implies p (Vec.neg e)) q.eqs
      && List.for_all (implies p) q.ineqs)

let equal_set p q = is_subset p q && is_subset q p

let remove_redundant_impl p =
  if is_empty p then bottom p.dim
  else begin
    (* implicit equalities first *)
    let eqs = ref p.eqs in
    let ineqs = ref [] in
    List.iter (fun row ->
      match row_max p row with
      | Simplex.Optimal (v, _) when Q.is_zero v -> eqs := row :: !eqs
      | _ -> ineqs := row :: !ineqs)
      p.ineqs;
    (* then drop inequalities implied by the others *)
    let kept = ref [] in
    let rec sweep = function
      | [] -> ()
      | row :: rest ->
        let others = { p with eqs = !eqs; ineqs = !kept @ rest } in
        if implies others row then sweep rest
        else begin
          kept := row :: !kept;
          sweep rest
        end
    in
    sweep !ineqs;
    construct p.dim !eqs !kept
  end

let remove_redundant p =
  Emsc_obs.Prof.counted "poly.remove_redundant" remove_redundant_impl p

let affine_hull p =
  let implicit =
    List.filter (fun row ->
      match row_max p row with
      | Simplex.Optimal (v, _) -> Q.is_zero v
      | Simplex.Unbounded | Simplex.Infeasible -> false)
      p.ineqs
  in
  List.filter_map normalize_eq (p.eqs @ implicit) |> dedupe_eqs

(* --- printing ---------------------------------------------------------- *)

let pp_row names fmt row ~rel =
  let n = Array.length row - 1 in
  let first = ref true in
  for i = 0 to n - 1 do
    let c = row.(i) in
    if not (Zint.is_zero c) then begin
      let name = names i in
      if !first then begin
        if Zint.is_one c then Format.fprintf fmt "%s" name
        else if Zint.equal c Zint.minus_one then Format.fprintf fmt "-%s" name
        else Format.fprintf fmt "%a%s" Zint.pp c name;
        first := false
      end
      else if Zint.is_positive c then begin
        if Zint.is_one c then Format.fprintf fmt " + %s" name
        else Format.fprintf fmt " + %a%s" Zint.pp c name
      end
      else begin
        let a = Zint.abs c in
        if Zint.is_one a then Format.fprintf fmt " - %s" name
        else Format.fprintf fmt " - %a%s" Zint.pp a name
      end
    end
  done;
  let c = row.(n) in
  if !first then Format.fprintf fmt "%a" Zint.pp c
  else if Zint.is_positive c then Format.fprintf fmt " + %a" Zint.pp c
  else if Zint.is_negative c then
    Format.fprintf fmt " - %a" Zint.pp (Zint.abs c);
  Format.fprintf fmt " %s 0" rel

let pp_with names fmt p =
  if is_universe p then Format.fprintf fmt "{ true }"
  else begin
    Format.fprintf fmt "{ ";
    let sep = ref false in
    let item rel row =
      if !sep then Format.fprintf fmt ", ";
      sep := true;
      pp_row names fmt row ~rel
    in
    List.iter (item "=") p.eqs;
    List.iter (item ">=") p.ineqs;
    Format.fprintf fmt " }"
  end

let default_name i = Printf.sprintf "x%d" i

let pp fmt p = pp_with default_name fmt p

let pp_named names fmt p =
  pp_with (fun i -> if i < Array.length names then names.(i) else default_name i)
    fmt p

let to_string ?names p =
  Format.asprintf "%a"
    (match names with None -> pp | Some ns -> pp_named ns)
    p

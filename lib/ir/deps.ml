open Emsc_arith
open Emsc_linalg
open Emsc_poly

type kind = Flow | Anti | Output

type t = {
  src : Prog.stmt;
  dst : Prog.stmt;
  src_access : Prog.access;
  dst_access : Prog.access;
  kind : kind;
  level : int;
  poly : Poly.t;
}

(* Re-express a row over (depth + np + 1) in the combined space
   (ds + dt + np + 1).  [role] places the iterator block. *)
let embed_row ~ds ~dt ~np ~role (row : Vec.t) =
  let depth = match role with `Src -> ds | `Dst -> dt in
  let out = Vec.make (ds + dt + np + 1) in
  let iter_off = match role with `Src -> 0 | `Dst -> ds in
  for i = 0 to depth - 1 do
    out.(iter_off + i) <- row.(i)
  done;
  for k = 0 to np - 1 do
    out.(ds + dt + k) <- row.(depth + k)
  done;
  out.(ds + dt + np) <- row.(depth + np);
  out

(* sched_s row minus sched_t row, in the combined space *)
let sched_diff ~ds ~dt ~np srow trow =
  Vec.sub
    (embed_row ~ds ~dt ~np ~role:`Src srow)
    (embed_row ~ds ~dt ~np ~role:`Dst trow)

let embed_domain ~ds ~dt ~np ~role dom =
  (* domain over (depth + np): insert the other statement's iterator
     block to reach (ds + dt + np) *)
  ignore np;
  match role with
  | `Src -> Poly.insert_dims dom ~pos:ds ~count:dt
  | `Dst -> Poly.insert_dims dom ~pos:0 ~count:ds

let kind_of src_k dst_k =
  match src_k, dst_k with
  | Prog.Write, Prog.Read -> Some Flow
  | Prog.Read, Prog.Write -> Some Anti
  | Prog.Write, Prog.Write -> Some Output
  | Prog.Read, Prog.Read -> None

let analyze ?context p =
  Emsc_obs.Trace.span "deps.analyze" @@ fun () ->
  let p = Prog.pad_schedules p in
  let np = Prog.nparams p in
  let sched_rows = Prog.max_schedule_rows p in
  let deps = ref [] in
  let context_rows =
    match context with
    | None -> []
    | Some ctx ->
      if Poly.dim ctx <> np then invalid_arg "Deps.analyze: context dim";
      let eqs, ineqs = Poly.constraints ctx in
      List.map (fun r -> (`Eq, r)) eqs @ List.map (fun r -> (`Ge, r)) ineqs
  in
  let for_pair (s : Prog.stmt) (sa : Prog.access) (t : Prog.stmt)
      (ta : Prog.access) kind =
    let ds = s.Prog.depth and dt = t.Prog.depth in
    let cdim = ds + dt + np in
    (* conflicting access: F_s(is) = F_t(it) *)
    let conflict_eqs =
      List.init (Mat.rows sa.Prog.map) (fun i ->
        sched_diff ~ds ~dt ~np sa.Prog.map.(i) ta.Prog.map.(i))
    in
    let base =
      Poly.intersect
        (embed_domain ~ds ~dt ~np ~role:`Src s.Prog.domain)
        (embed_domain ~ds ~dt ~np ~role:`Dst t.Prog.domain)
    in
    let base = List.fold_left Poly.add_eq base conflict_eqs in
    let widen_ctx row =
      (* context row over (np + 1) -> combined space *)
      let out = Vec.make (cdim + 1) in
      for k = 0 to np - 1 do
        out.(ds + dt + k) <- row.(k)
      done;
      out.(cdim) <- row.(np);
      out
    in
    let base =
      List.fold_left (fun acc (rel, row) ->
        let row = widen_ctx row in
        match rel with
        | `Eq -> Poly.add_eq acc row
        | `Ge -> Poly.add_ineq acc row)
        base context_rows
    in
    (* one polyhedron per precedence level *)
    for level = 0 to sched_rows - 1 do
      let cur = ref base in
      for l = 0 to level - 1 do
        cur :=
          Poly.add_eq !cur
            (sched_diff ~ds ~dt ~np s.Prog.schedule.(l) t.Prog.schedule.(l))
      done;
      (* strict: sched_t(level) - sched_s(level) - 1 >= 0 *)
      let strict =
        let d =
          Vec.neg
            (sched_diff ~ds ~dt ~np s.Prog.schedule.(level)
               t.Prog.schedule.(level))
        in
        d.(cdim) <- Zint.sub d.(cdim) Zint.one;
        d
      in
      let dep_poly = Poly.add_ineq !cur strict in
      let nonempty =
        if Poly.is_empty dep_poly then false
        else
          match Emsc_pip.Ilp.is_int_empty dep_poly with
          | empty -> not empty
          | exception Emsc_pip.Ilp.Gave_up -> true
      in
      Emsc_obs.Trace.count "deps.levels_tested" 1.0;
      if nonempty then begin
        Emsc_obs.Trace.count "deps.found" 1.0;
        deps :=
          { src = s; dst = t; src_access = sa; dst_access = ta; kind; level;
            poly = dep_poly }
          :: !deps
      end
    done
  in
  List.iter (fun (s : Prog.stmt) ->
    List.iter (fun (t : Prog.stmt) ->
      List.iter (fun (sa : Prog.access) ->
        List.iter (fun (ta : Prog.access) ->
          if sa.Prog.array = ta.Prog.array then
            match kind_of sa.Prog.kind ta.Prog.kind with
            | Some kind -> for_pair s sa t ta kind
            | None -> ())
          (Prog.accesses t))
        (Prog.accesses s))
      p.Prog.stmts)
    p.Prog.stmts;
  List.rev !deps

let pp fmt d =
  let k =
    match d.kind with Flow -> "flow" | Anti -> "anti" | Output -> "output"
  in
  Format.fprintf fmt "%s dep %s -> %s on %s at level %d" k d.src.Prog.name
    d.dst.Prog.name d.src_access.Prog.array d.level

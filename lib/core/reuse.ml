open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir

type report = {
  nonconstant : bool;
  overlap_fraction : float option;
  beneficial : bool;
}

let access_has_nonconstant_reuse (s : Prog.stmt) (a : Prog.access) =
  let depth = s.Prog.depth in
  let iter_part =
    Array.map (fun row -> Array.sub row 0 depth) a.Prog.map
  in
  Mat.rank iter_part < depth

(* Fix the leading [np] parameter dimensions of a space to the given
   values. *)
let instantiate np env space =
  let rec go i p = if i >= np then p else go (i + 1) (Poly.fix_dim p 0 env.(i)) in
  (* fixing dim 0 repeatedly walks through the parameter block *)
  go 0 space

let volume ?(limit = 200_000) p =
  match Count.count_poly ~limit p with
  | Count.Exact n -> Some (Zint.to_float n)
  (* the count limit was hit: the partial tally is a lower bound, and
     criterion (b) compares a ratio against δ — deciding from a
     truncated numerator or denominator is arbitrary, so report
     "unknown" instead *)
  | Count.More_than _ -> None
  | Count.Unbounded -> None
  | exception _ -> None

let overlap_fraction ~count_limit np env (part : Dataspaces.partition) =
  let spaces =
    List.map (fun (d : Dataspaces.dspace) -> instantiate np env d.space)
      part.Dataspaces.members
  in
  let dim = match spaces with [] -> 0 | p :: _ -> Poly.dim p in
  let union = Uset.of_pieces ~dim spaces in
  let total =
    match Count.count_uset ~limit:count_limit union with
    | Count.Exact n -> Some (Zint.to_float n)
    | Count.More_than _ -> None
    | Count.Unbounded -> None
    | exception _ -> None
  in
  match total with
  | None -> None
  | Some total when total <= 0.0 -> None
  | Some total ->
    (* Overlap volume is Σ|DSᵢ| − |∪DSᵢ|: every element is counted once
       per extra reference covering it.  Summing pairwise intersections
       instead double-counts k-way overlaps (an element shared by k
       references contributes C(k,2) times, not k−1), which can push
       the fraction above 1.0 and mis-trigger the δ test. *)
    let rec sum acc = function
      | [] -> Some acc
      | p :: rest -> begin
        match volume ~limit:count_limit p with
        | Some v -> sum (acc +. v) rest
        | None -> None
      end
    in
    (match sum 0.0 spaces with
     | Some member_sum ->
       let overlap = member_sum -. total in
       Some (Float.max 0.0 (Float.min 1.0 (overlap /. total)))
     | None -> None)

let analyze ?(delta = 0.3) ?param_env ?(count_limit = 200_000) p part =
  let nonconstant =
    List.exists (fun (d : Dataspaces.dspace) ->
      access_has_nonconstant_reuse d.Dataspaces.stmt d.Dataspaces.access)
      part.Dataspaces.members
  in
  if nonconstant then
    { nonconstant = true; overlap_fraction = None; beneficial = true }
  else begin
    let np = Prog.nparams p in
    let frac =
      match param_env with
      | Some env when Array.length env = np ->
        overlap_fraction ~count_limit np env part
      | Some _ -> None
      | None -> if np = 0 then overlap_fraction ~count_limit 0 [||] part else None
    in
    (* Section 3.1: copy when the overlap "exceeds" δ — strictly
       greater, so a fraction exactly equal to δ is not beneficial *)
    let beneficial = match frac with Some f -> f > delta | None -> false in
    { nonconstant = false; overlap_fraction = frac; beneficial }
  end

let pp_report fmt r =
  Format.fprintf fmt "{ nonconstant=%b; overlap=%s; beneficial=%b }"
    r.nonconstant
    (match r.overlap_fraction with
     | None -> "n/a"
     | Some f -> Printf.sprintf "%.2f" f)
    r.beneficial

open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir

type dspace = {
  stmt : Prog.stmt;
  access : Prog.access;
  space : Poly.t;
}

type partition = {
  array : string;
  rank : int;
  members : dspace list;
  union : Uset.t;
}

let space_of_access p (s : Prog.stmt) (a : Prog.access) =
  let np = Prog.nparams p in
  let depth = s.Prog.depth in
  let width = depth + np + 1 in
  (* image map: parameters first (copied through), then the array
     subscripts *)
  let param_rows =
    Array.init np (fun k ->
      let row = Vec.make width in
      row.(depth + k) <- Zint.one;
      row)
  in
  let map = Mat.append_rows param_rows a.Prog.map in
  Poly.image s.Prog.domain map

let spaces_of_array p name =
  List.map (fun (s, a) -> { stmt = s; access = a; space = space_of_access p s a })
    (Prog.all_accesses_to p name)

(* Connected components of the overlap graph. *)
let components spaces =
  let n = List.length spaces in
  let arr = Array.of_list spaces in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let join i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Poly.is_empty (Poly.intersect arr.(i).space arr.(j).space))
      then join i j
    done
  done;
  let groups = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let r = find i in
    Hashtbl.replace groups r (arr.(i) :: (try Hashtbl.find groups r with Not_found -> []))
  done;
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) groups []
  |> List.sort compare

let partition_array p name =
  let decl = Prog.find_array p name in
  let np = Prog.nparams p in
  let dim = np + decl.Prog.rank in
  let spaces = spaces_of_array p name in
  List.map (fun members ->
    { array = name;
      rank = decl.Prog.rank;
      members;
      union = Uset.of_pieces ~dim (List.map (fun d -> d.space) members) })
    (components spaces)

let partition_all p =
  List.concat_map (fun (d : Prog.array_decl) ->
    partition_array p d.Prog.array_name)
    p.Prog.arrays

let merge_partitions parts =
  match parts with
  | [] -> invalid_arg "Dataspaces.merge_partitions: empty"
  | first :: rest ->
    if List.exists (fun p -> p.array <> first.array) rest then
      invalid_arg "Dataspaces.merge_partitions: mixed arrays";
    { array = first.array;
      rank = first.rank;
      members = List.concat_map (fun p -> p.members) parts;
      union = List.fold_left (fun acc p -> Uset.union acc p.union)
          first.union rest }

let union_of p part keep =
  let np = Prog.nparams p in
  let dim = np + part.rank in
  Uset.of_pieces ~dim
    (List.filter_map (fun d -> if keep d then Some d.space else None)
       part.members)

let reads_union p part =
  union_of p part (fun d -> d.access.Prog.kind = Prog.Read)

let writes_union p part =
  union_of p part (fun d -> d.access.Prog.kind = Prog.Write)

(* Sufficient test that the rational image has no integer "holes": all
   iterator coefficients are unit, and rows discharge one by one, each
   owning an iterator (unit coefficient) no other remaining row uses —
   the map is then completable to a unimodular change of basis, so
   every integer point of the image has an integer preimage.  Rows with
   no iterator at all (constant subscripts) are exact by themselves. *)
let exact_image (s : Prog.stmt) (a : Prog.access) =
  let depth = s.Prog.depth in
  let unit_coef v = Zint.compare (Zint.abs v) Zint.one <= 0 in
  let iter_part =
    Array.to_list (Array.map (fun row -> Array.sub row 0 depth) a.Prog.map)
  in
  List.for_all (fun r -> Array.for_all unit_coef r) iter_part
  && begin
    let remaining =
      ref
        (List.filter
           (fun r -> Array.exists (fun c -> not (Zint.is_zero c)) r)
           iter_part)
    in
    let progress = ref true in
    while !progress && !remaining <> [] do
      progress := false;
      let owns_pivot r =
        let found = ref false in
        Array.iteri (fun c v ->
          if
            (not !found)
            && (not (Zint.is_zero v))
            && List.for_all (fun r' -> r' == r || Zint.is_zero r'.(c))
                 !remaining
          then found := true)
          r;
        !found
      in
      match List.find_opt owns_pivot !remaining with
      | Some r ->
        remaining := List.filter (fun r' -> r' != r) !remaining;
        progress := true
      | None -> ()
    done;
    !remaining = []
  end

open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir
open Emsc_codegen

let data_dim_names ~prefix rank =
  Array.init rank (fun k -> Printf.sprintf "%s%d" prefix k)

let copy_code ?context p (buf : Alloc.buffer) ~dir ~data =
  let np = Prog.nparams p in
  let rank = buf.Alloc.orig_rank in
  let dnames = data_dim_names ~prefix:"c" rank in
  let names = Array.append p.Prog.params dnames in
  let global : Ast.ref_expr =
    { array = buf.Alloc.array;
      indices = Array.map (fun n -> Ast.Var n) dnames }
  in
  let local : Ast.ref_expr =
    { array = buf.Alloc.local_name;
      indices =
        Array.mapi (fun i k ->
          Ast.simplify
            (Ast.Sub (Ast.Var dnames.(k), buf.Alloc.lbs.(i).expr)))
          buf.Alloc.kept }
  in
  let body =
    match dir with
    | `In -> [ Ast.Copy { dst = local; src = global } ]
    | `Out -> [ Ast.Copy { dst = global; src = local } ]
  in
  Scan.scan_uset ?context ~names ~outer:np ~body data

(* Local-to-local relocation of the resident slab for inter-tile reuse:
   when the buffer's global window advances with the block origin, a
   kept cell's local address drops by the per-dim shift, so the cells
   that stay resident must move to their new addresses before the delta
   move-in fills the rest.  [new[i] = old[i + s]] scanned in ascending
   (lexicographic) order is safe for s >= 0: the source cell is always
   ahead of the write front.  [data] is scanned in global coordinates,
   like the movement code, so the same context-based guard elision
   applies. *)
let shift_code ?context p (buf : Alloc.buffer) ~shift ~data =
  if Array.for_all (fun s -> s = 0) shift then []
  else begin
    let np = Prog.nparams p in
    let rank = buf.Alloc.orig_rank in
    let dnames = data_dim_names ~prefix:"c" rank in
    let names = Array.append p.Prog.params dnames in
    let idx i k =
      Ast.simplify (Ast.Sub (Ast.Var dnames.(k), buf.Alloc.lbs.(i).expr))
    in
    let dst : Ast.ref_expr =
      { array = buf.Alloc.local_name;
        indices = Array.mapi (fun i k -> idx i k) buf.Alloc.kept }
    in
    let src : Ast.ref_expr =
      { array = buf.Alloc.local_name;
        indices =
          Array.mapi (fun i k ->
            Ast.simplify (Ast.Add (idx i k, Ast.int_ shift.(i))))
            buf.Alloc.kept }
    in
    Scan.scan_uset ?context ~names ~outer:np
      ~body:[ Ast.Copy { dst; src } ] data
  end

let move_in ?context p buf =
  copy_code ?context p buf ~dir:`In
    ~data:(Dataspaces.reads_union p buf.Alloc.partition)

let move_out ?context p buf =
  copy_code ?context p buf ~dir:`Out
    ~data:(Dataspaces.writes_union p buf.Alloc.partition)

(* Project a dependence polyhedron (src iters ++ dst iters ++ params)
   onto the destination statement's space (dst iters ++ params). *)
let project_onto_dst (d : Deps.t) =
  let ds = d.Deps.src.Prog.depth in
  Poly.eliminate_dims d.Deps.poly (List.init ds (fun i -> i))

let same_access (a : Prog.access) (b : Prog.access) =
  a.Prog.array = b.Prog.array && a.Prog.kind = b.Prog.kind
  && Mat.equal a.Prog.map b.Prog.map

let optimized_move_in_data p deps (buf : Alloc.buffer) =
  let np = Prog.nparams p in
  let dim = np + buf.Alloc.orig_rank in
  let members = buf.Alloc.partition.Dataspaces.members in
  let unions =
    List.filter_map (fun (m : Dataspaces.dspace) ->
      if m.Dataspaces.access.Prog.kind <> Prog.Read then None
      else begin
        let s = m.Dataspaces.stmt in
        let covered =
          List.filter_map (fun (d : Deps.t) ->
            if
              d.Deps.kind = Deps.Flow
              && d.Deps.dst.Prog.id = s.Prog.id
              && same_access d.Deps.dst_access m.Dataspaces.access
            then Some (project_onto_dst d)
            else None)
            deps
        in
        let dom_dim = s.Prog.depth + np in
        let uncovered =
          Uset.subtract
            (Uset.of_poly s.Prog.domain)
            (Uset.of_pieces ~dim:dom_dim covered)
        in
        (* map uncovered iterations to data space, parameters first *)
        let width = s.Prog.depth + np + 1 in
        let param_rows =
          Array.init np (fun k ->
            let row = Vec.make width in
            row.(s.Prog.depth + k) <- Zint.one;
            row)
        in
        let map = Mat.append_rows param_rows m.Dataspaces.access.Prog.map in
        Some (Uset.image uncovered map)
      end)
      members
  in
  List.fold_left Uset.union (Uset.empty dim) unions

let optimized_move_out_data p ~live_out (buf : Alloc.buffer) =
  let np = Prog.nparams p in
  let dim = np + buf.Alloc.orig_rank in
  if live_out buf.Alloc.array then
    Dataspaces.writes_union p buf.Alloc.partition
  else Uset.empty dim

(* overlap components among a list of polyhedra *)
let components polys =
  let arr = Array.of_list polys in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Poly.is_empty (Poly.intersect arr.(i) arr.(j))) then begin
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      end
    done
  done;
  let tbl = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let r = find i in
    Hashtbl.replace tbl r
      (arr.(i) :: (try Hashtbl.find tbl r with Not_found -> []))
  done;
  Hashtbl.fold (fun _ g acc -> g :: acc) tbl []

let volume_upper_bound p (part : Dataspaces.partition) ~kind ~env =
  let np = Prog.nparams p in
  let keep (m : Dataspaces.dspace) =
    match kind with
    | `Read -> m.Dataspaces.access.Prog.kind = Prog.Read
    | `Write -> m.Dataspaces.access.Prog.kind = Prog.Write
  in
  let fix_params space =
    let rec go i acc =
      if i >= np then acc
      else go (i + 1) (Poly.fix_dim acc 0 (env p.Prog.params.(i)))
    in
    go 0 space
  in
  let spaces =
    List.filter_map (fun m ->
      if keep m then Some (fix_params m.Dataspaces.space) else None)
      part.Dataspaces.members
  in
  let groups = components spaces in
  (* an uncountable (unbounded) group poisons the whole bound: callers
     must not mistake "unknown" for "free", so the unknown propagates *)
  List.fold_left (fun acc group ->
    match acc with
    | None -> None
    | Some acc ->
      let u = Uset.of_pieces ~dim:part.Dataspaces.rank group in
      (match Count.box_volume_uset u with
       | Some v -> Some (Zint.add acc v)
       | None -> None))
    (Some Zint.zero) groups

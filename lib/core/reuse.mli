(** Algorithm 1 of the paper: is a partition of data spaces beneficial
    to copy into scratchpad memory?

    A partition qualifies if (a) some member reference has
    order-of-magnitude reuse — the rank of its access function
    restricted to the iteration dimensions is smaller than the
    iteration-space dimensionality — or (b) the overlap volume
    Σ|DSᵢ| − |∪DSᵢ| exceeds a fraction δ of the union's volume
    (δ = 30% by default, the paper's empirical setting).  The fraction
    is clamped to [0, 1]; Section 3.1 says "exceeds δ", so the
    comparison is strict ([>], not [>=]). *)

open Emsc_arith
open Emsc_ir

type report = {
  nonconstant : bool;
      (** criterion (a): some reference has rank < iteration dim *)
  overlap_fraction : float option;
      (** criterion (b) evidence; [None] when volumes were not
          computable (symbolic parameters without a valuation, or
          unbounded spaces) *)
  beneficial : bool;
}

val access_has_nonconstant_reuse : Prog.stmt -> Prog.access -> bool

val analyze :
  ?delta:float ->
  ?param_env:Zint.t array ->
  ?count_limit:int ->
  Prog.t -> Dataspaces.partition -> report
(** [param_env] gives numeric values to the program parameters for the
    volume computation of criterion (b); without it only criterion (a)
    is decided. *)

val pp_report : Format.formatter -> report -> unit

(** Data spaces of array references (Section 3.1 of the paper).

    The data space of a reference is the image of the statement's
    iteration domain under the affine access function.  Spaces live in
    dimension [nparams + rank]: parameter dimensions first (so they can
    stay symbolic, e.g. tile origins), then the array dimensions.

    The spaces of one array are partitioned into maximal groups of
    pairwise-overlapping regions by connected components of the overlap
    graph, exactly as in the paper. *)

open Emsc_poly
open Emsc_ir

type dspace = {
  stmt : Prog.stmt;
  access : Prog.access;
  space : Poly.t;  (** dimension [nparams + rank] *)
}

type partition = {
  array : string;
  rank : int;
  members : dspace list;
  union : Uset.t;  (** union of all member spaces *)
}

val space_of_access : Prog.t -> Prog.stmt -> Prog.access -> Poly.t
(** Image of the statement domain under the access, parameters kept. *)

val spaces_of_array : Prog.t -> string -> dspace list

val partition_array : Prog.t -> string -> partition list
(** Connected components of the overlap graph of one array's spaces. *)

val partition_all : Prog.t -> partition list
(** All arrays of the program, in declaration order. *)

val merge_partitions : partition list -> partition
(** Merge several partitions of the same array into one (the paper's
    Figure 1 allocates a single buffer per array even when the data
    spaces split into disjoint groups).
    @raise Invalid_argument on an empty list or mixed arrays. *)

val reads_union : Prog.t -> partition -> Uset.t
(** Union of the member spaces whose access reads. *)

val writes_union : Prog.t -> partition -> Uset.t

val exact_image : Prog.stmt -> Prog.access -> bool
(** Is the access's data space (a rational image of the iteration
    domain) guaranteed to contain no integer point the access never
    touches?  Sufficient syntactic test: every iterator coefficient is
    in [{-1,0,1}] and the iterator part of the map reduces by greedy
    pivoting (repeatedly discharging a row that owns an iterator with a
    unit coefficient appearing in no other remaining row).  A stride-2
    subscript like [A[2j]] fails the test: its rational image covers
    the odd elements the access skips.  [false] only means "not
    provably exact" — callers must treat the space as possibly
    over-approximate (see the move-in widening in
    {!Emsc_core.Plan.plan_block}). *)

(** Data-movement code generation (Section 3.1.3) and the
    dependence-driven copy-set minimization the paper sketches as
    future work in Section 3.1.4 (implemented here).

    Move-in code scans the union of the data spaces accessed by read
    references; move-out code scans the union for write references.
    Scanning goes through {!Emsc_codegen.Scan}, whose disjoint
    decomposition guarantees a single transfer per element even when
    reference footprints overlap. *)

open Emsc_arith
open Emsc_poly
open Emsc_ir
open Emsc_codegen

val data_dim_names : prefix:string -> int -> string array
(** Fresh iterator names for the copy loops over array dimensions. *)

val copy_code :
  ?context:Poly.t -> Prog.t -> Alloc.buffer -> dir:[ `In | `Out ] ->
  data:Uset.t -> Ast.stm list
(** Loop nest copying [data] (dimension nparams+rank) between the
    original array and the local buffer.  [`In] copies global → local,
    [`Out] local → global. *)

val shift_code :
  ?context:Poly.t -> Prog.t -> Alloc.buffer -> shift:int array ->
  data:Uset.t -> Ast.stm list
(** Local-to-local relocation of the resident slab for inter-tile
    reuse: scans [data] (the resident set, in global coordinates) and
    copies each cell from its previous-block local address
    [idx + shift] to its current one [idx].  [shift] is per kept dim
    and must be non-negative (ascending scan order then never
    overwrites a cell before reading it); an all-zero shift returns
    [[]] — resident cells already sit at the right addresses. *)

val move_in : ?context:Poly.t -> Prog.t -> Alloc.buffer -> Ast.stm list
(** Copy-in of everything read in the partition. *)

val move_out : ?context:Poly.t -> Prog.t -> Alloc.buffer -> Ast.stm list
(** Copy-out of everything written in the partition. *)

val optimized_move_in_data : Prog.t -> Deps.t list -> Alloc.buffer -> Uset.t
(** Section 3.1.4: only elements read by some instance whose producing
    write lies outside the block (equivalently: not covered by any
    intra-block flow dependence), plus of course data of arrays never
    written in the block. *)

val optimized_move_out_data :
  Prog.t -> live_out:(string -> bool) -> Alloc.buffer -> Uset.t
(** Elements written in the block that the outside world may observe;
    with no inter-block liveness information this is the write union of
    live-out arrays and empty for block-local arrays. *)

val volume_upper_bound :
  Prog.t -> Dataspaces.partition -> kind:[ `Read | `Write ] ->
  env:(string -> Zint.t) -> Zint.t option
(** The paper's Vin/Vout estimate: partition the read (write) spaces
    into maximal non-overlapping groups and sum the local-storage box
    sizes of the groups, under a parameter valuation.  [None] when any
    group is unbounded (uncountable): the bound is unknown, and callers
    like tile-size search must treat it pessimistically rather than as
    zero movement. *)

open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir
open Emsc_codegen

(* Inter-tile reuse: consecutive blocks along the innermost block
   origin share most of their footprint, so every block after the first
   of a chain moves only the delta and every block before the last
   flushes only the writes no later block rewrites.  The sets are
   symbolic in the tile origins; the generated movement selects full or
   delta code with origin-based guards, so it stays deterministic (the
   sequential and parallel executors run bit-identical copies). *)
type reuse = {
  r_origin : string;  (** innermost block origin parameter *)
  r_step : int;       (** its loop step (the block size) *)
  r_lb : int;         (** first origin value of a chain *)
  r_last : int;       (** origin value of a chain's final block *)
  r_full_in : Uset.t;   (** DS(o), what a chain-opening block loads *)
  r_delta_in : Uset.t;  (** DS(o) − DS(o−step) *)
  r_resident : Uset.t;  (** DS(o) ∩ DS(o−step) *)
  r_full_out : Uset.t;  (** W(o), what a chain-closing block flushes *)
  r_delta_out : Uset.t; (** W(o) − W(o+step): a later block of the
                            chain rewrites (and flushes) the rest *)
  r_shift : int array;  (** local relocation per kept dim *)
}

type buffered = {
  buffer : Alloc.buffer;
  report : Reuse.report;
  move_in : Ast.stm list;
  move_out : Ast.stm list;
  reuse : reuse option;
}

type t = {
  prog : Prog.t;
  buffered : buffered list;
  skipped : (Dataspaces.partition * Reuse.report) list;
  delta : float;
  arch : [ `Gpu | `Cell ];
}

let expr_vars e = Ast.free_vars [ Ast.Guard ([ e ], []) ]

(* g ∈ result(o) ⟺ (o + delta, g) ∈ data: the footprint of an adjacent
   block, over the same (params, data) space *)
let origin_shifted ~oi ~delta data =
  let dim = Uset.dim data in
  let map =
    Array.init dim (fun r ->
      let row = Vec.make (dim + 1) in
      row.(r) <- Zint.one;
      if r = oi then row.(dim) <- Zint.of_int delta;
      row)
  in
  Uset.image data map

(* Decide whether a buffer can carry the inter-tile delta, and compute
   the symbolic sets if so.  Refused (falling back to full per-block
   movement, which is always sound) when:
   - the movement sits inside a mem loop: the buffer is re-staged per
     mem iteration, so block-to-block residency does not exist;
   - a buffer bound tracks the origin but not as a unit-coefficient
     affine row, the size is not origin-invariant, or the local window
     moves backwards: the resident relocation would not be a constant
     non-negative per-dim shift;
   - a nonzero shift with a genuinely non-convex resident set: the
     ascending scan-order safety argument is per convex piece, so a
     multi-piece set is accepted only when its template hull is exact
     on integer points (e.g. the contiguous union of a stencil's
     shifted reads) and the relocation scans that single hull. *)
let reuse_of ~p ~param_context ~origin ~step ~mem_names ~buffer ~in_data
    ~out_data ~full_in ~full_out =
  match param_context with
  | None -> None
  | Some ctx -> begin
    try
      let params = p.Prog.params in
      let oi =
        let rec find i =
          if i >= Array.length params then raise Exit
          else if params.(i) = origin then i
          else find (i + 1)
        in
        find 0
      in
      let lb, hi =
        match Poly.var_bounds_int ctx oi with
        | Some lo, Some hi -> (Zint.to_int_exn lo, Zint.to_int_exn hi)
        | _ -> raise Exit
      in
      let last = lb + ((hi - lb) / step) * step in
      let fv = Ast.free_vars (full_in @ full_out) in
      if List.exists (fun m -> List.mem m fv) mem_names then raise Exit;
      let shift =
        Array.mapi (fun i _k ->
          let lbb = buffer.Alloc.lbs.(i) and ubb = buffer.Alloc.ubs.(i) in
          let mentions (b : Alloc.bound) = List.mem origin (expr_vars b.Alloc.expr) in
          if not (mentions lbb) && not (mentions ubb) then 0
          else
            match lbb.Alloc.row, ubb.Alloc.row with
            | Some lrow, Some urow when Zint.compare lrow.(oi) urow.(oi) = 0 ->
              let s = Zint.to_int_exn (Zint.mul lrow.(oi) (Zint.of_int step)) in
              if s < 0 then raise Exit else s
            | _ -> raise Exit)
          buffer.Alloc.kept
      in
      let prev_in = origin_shifted ~oi ~delta:step in_data in
      let next_out = origin_shifted ~oi ~delta:(-step) out_data in
      let resident = Uset.intersect in_data prev_in in
      let resident =
        if Array.for_all (fun s -> s = 0) shift then resident
        else
          match Uset.pieces (Uset.make_disjoint resident) with
          | [] | [ _ ] -> resident
          | _ ->
            (* multi-access footprints (stencils) intersect to a
               multi-piece representation of what is often a convex
               set: coalesce through the template hull when that is
               exact on integer points, else refuse *)
            let hull = Uset.of_poly (Uset.template_hull resident) in
            if Uset.equal_set hull resident then hull else raise Exit
      in
      Some
        { r_origin = origin; r_step = step; r_lb = lb; r_last = last;
          r_full_in = in_data;
          r_delta_in = Uset.subtract in_data prev_in;
          r_resident = resident;
          r_full_out = out_data;
          r_delta_out = Uset.subtract out_data next_out;
          r_shift = shift }
    with Exit | Failure _ -> None
  end

let plan_block ?(delta = 0.3) ?param_env ?param_context ?(arch = `Gpu)
    ?(optimize_movement = false) ?(live_out = fun _ -> true)
    ?(merge_per_array = false) ?inter_tile p =
  Emsc_obs.Trace.span "plan.plan_block"
    ~args:
      [ ("arch", Emsc_obs.Json.Str (match arch with `Gpu -> "gpu" | `Cell -> "cell"));
        ("delta", Emsc_obs.Json.Float delta) ]
  @@ fun () ->
  let partitions =
    Emsc_obs.Trace.span "plan.partition" @@ fun () ->
    let parts = Dataspaces.partition_all p in
    if not merge_per_array then parts
    else
      List.filter_map (fun (d : Prog.array_decl) ->
        match
          List.filter (fun (pt : Dataspaces.partition) ->
            pt.Dataspaces.array = d.Prog.array_name)
            parts
        with
        | [] -> None
        | group -> Some (Dataspaces.merge_partitions group))
        p.Prog.arrays
  in
  let deps = if optimize_movement then Deps.analyze p else [] in
  let counter = Hashtbl.create 8 in
  let fresh_name array =
    let n = try Hashtbl.find counter array with Not_found -> 0 in
    Hashtbl.replace counter array (n + 1);
    if n = 0 then "l_" ^ array else Printf.sprintf "l_%s_%d" array n
  in
  let buffered = ref [] and skipped = ref [] in
  List.iter (fun part ->
    Emsc_obs.Trace.span "plan.partition_plan"
      ~args:[ ("array", Emsc_obs.Json.Str part.Dataspaces.array) ]
    @@ fun () ->
    let report =
      Emsc_obs.Trace.span "reuse.analyze" @@ fun () ->
      Reuse.analyze ~delta ?param_env p part
    in
    let copy =
      match arch with `Cell -> true | `Gpu -> report.Reuse.beneficial
    in
    if copy then begin
      let buffer =
        Emsc_obs.Trace.span "alloc.build" @@ fun () ->
        Alloc.build ~local_name:(fresh_name part.Dataspaces.array) p part
      in
      let out_data =
        if optimize_movement then
          Movement.optimized_move_out_data p ~live_out buffer
        else if live_out part.Dataspaces.array then
          Dataspaces.writes_union p part
        else Uset.empty (Prog.nparams p + part.Dataspaces.rank)
      in
      let in_data =
        if optimize_movement then Movement.optimized_move_in_data p deps buffer
        else Dataspaces.reads_union p part
      in
      (* the move-out scan walks the rational image of the writes; when
         that image is not provably exact (e.g. a stride-2 subscript),
         it covers elements no statement instance writes, and copying
         them out of an uninitialized buffer cell would corrupt global
         memory.  Staging the move-out set on the way in makes those
         elements round-trip unchanged (read-modify-write staging). *)
      let in_data =
        let write_exact =
          List.for_all (fun (m : Dataspaces.dspace) ->
            m.Dataspaces.access.Prog.kind <> Prog.Write
            || Dataspaces.exact_image m.Dataspaces.stmt m.Dataspaces.access)
            part.Dataspaces.members
        in
        if write_exact then in_data else Uset.union in_data out_data
      in
      let move_in =
        Emsc_obs.Trace.span "movement.copy_code_in" @@ fun () ->
        Movement.copy_code ?context:param_context p buffer ~dir:`In
          ~data:in_data
      in
      let move_out =
        Emsc_obs.Trace.span "movement.copy_code_out" @@ fun () ->
        Movement.copy_code ?context:param_context p buffer ~dir:`Out
          ~data:out_data
      in
      (* optimized movement already prunes the move-in with flow-
         dependence cover, whose interaction with cross-block residency
         is not established; the two refinements are exclusive *)
      let reuse =
        match inter_tile with
        | Some (origin, step, mem_names) when not optimize_movement ->
          Emsc_obs.Trace.span "plan.inter_tile_reuse" @@ fun () ->
          reuse_of ~p ~param_context ~origin ~step ~mem_names ~buffer
            ~in_data ~out_data ~full_in:move_in ~full_out:move_out
        | _ -> None
      in
      let move_in, move_out =
        match reuse with
        | None -> (move_in, move_out)
        | Some r ->
          let o = Ast.Var r.r_origin in
          let delta_in_nests =
            Movement.copy_code ?context:param_context p buffer ~dir:`In
              ~data:r.r_delta_in
          in
          let delta_out_nests =
            Movement.copy_code ?context:param_context p buffer ~dir:`Out
              ~data:r.r_delta_out
          in
          let shift_nests =
            Movement.shift_code ?context:param_context p buffer
              ~shift:r.r_shift ~data:r.r_resident
          in
          (* all guard conditions are over the block origin, which both
             executors bind identically: full movement on the chain's
             first (move-in) / last (move-out) block, delta elsewhere.
             The shift must precede the delta nests — the delta may
             land on old addresses of resident cells. *)
          ( [ Ast.Guard ([ Ast.Sub (Ast.int_ r.r_lb, o) ], move_in);
              Ast.Guard
                ( [ Ast.simplify (Ast.Sub (o, Ast.int_ (r.r_lb + 1))) ],
                  shift_nests @ delta_in_nests ) ],
            [ Ast.Guard
                ( [ Ast.simplify (Ast.Sub (Ast.int_ (r.r_last - 1), o)) ],
                  delta_out_nests );
              Ast.Guard ([ Ast.Sub (o, Ast.int_ r.r_last) ], move_out) ] )
      in
      buffered := { buffer; report; move_in; move_out; reuse } :: !buffered
    end
    else skipped := (part, report) :: !skipped)
    partitions;
  { prog = p; buffered = List.rev !buffered; skipped = List.rev !skipped;
    delta; arch }

let find_buffer plan (s : Prog.stmt) (a : Prog.access) =
  List.find_opt (fun b ->
    List.exists (fun (m : Dataspaces.dspace) ->
      m.Dataspaces.stmt.Prog.id = s.Prog.id
      && m.Dataspaces.access.Prog.array = a.Prog.array
      && m.Dataspaces.access.Prog.kind = a.Prog.kind
      && Mat.equal m.Dataspaces.access.Prog.map a.Prog.map)
      b.buffer.Alloc.partition.Dataspaces.members)
    plan.buffered

let local_ref plan s a =
  match find_buffer plan s a with
  | None -> None
  | Some b ->
    let buf = b.buffer in
    let np = Prog.nparams plan.prog in
    let depth = s.Prog.depth in
    let names i =
      if i < depth then s.Prog.iter_names.(i)
      else plan.prog.Prog.params.(i - depth)
    in
    ignore np;
    let indices =
      Array.mapi (fun i k ->
        let subscript = Ast.vec_to_aexpr ~names a.Prog.map.(k) in
        Ast.simplify (Ast.Sub (subscript, buf.Alloc.lbs.(i).expr)))
        buf.Alloc.kept
    in
    Some { Ast.array = buf.Alloc.local_name; indices }

let all_move_in plan = List.concat_map (fun b -> b.move_in) plan.buffered
let all_move_out plan = List.concat_map (fun b -> b.move_out) plan.buffered

let total_footprint plan env =
  List.fold_left (fun acc b -> Zint.add acc (Alloc.footprint b.buffer env))
    Zint.zero plan.buffered

let pp fmt plan =
  Format.fprintf fmt "@[<v>plan: %d buffered, %d in global memory@,"
    (List.length plan.buffered)
    (List.length plan.skipped);
  List.iter (fun b ->
    Format.fprintf fmt "%a  %a@," Alloc.pp b.buffer Reuse.pp_report b.report)
    plan.buffered;
  List.iter (fun ((part : Dataspaces.partition), r) ->
    Format.fprintf fmt "skip %s %a@," part.Dataspaces.array Reuse.pp_report r)
    plan.skipped;
  Format.fprintf fmt "@]"

(* --- the Algorithm 1 explain report ------------------------------------ *)

module J = Emsc_obs.Json

type buffer_summary = {
  b_name : string;
  b_dims : (int * string * string * string) array;
      (** (original array dim, lb, ub, size) as printed expressions
          over the program parameters *)
  b_footprint_words : int option;
      (** under the valuation given to {!explain}; [None] when a bound
          stays symbolic *)
  b_move_in_nests : int;
  b_move_out_nests : int;
  b_inter_tile_reuse : bool;
      (** the buffer carries the inter-tile delta: chain-interior
          blocks move only the footprint difference *)
}

type verdict = {
  v_array : string;
  v_members : int;
  v_rank_reuse : bool;
      (** Algorithm 1 criterion (a): some reference's access function
          restricted to the iterators has rank < iteration depth *)
  v_overlap_fraction : float option;
      (** criterion (b) evidence, compared against delta *)
  v_delta : float;
  v_beneficial : bool;
  v_copied : bool;  (** differs from beneficial only under [`Cell] *)
  v_buffer : buffer_summary option;
}

let aexpr_str e = Format.asprintf "%a" Ast.pp_aexpr e

let buffer_summary ~param_env (b : buffered) =
  let buf = b.buffer in
  let sizes = Alloc.size_exprs buf in
  let dims =
    Array.mapi (fun i k ->
      (k, aexpr_str buf.Alloc.lbs.(i).Alloc.expr,
       aexpr_str buf.Alloc.ubs.(i).Alloc.expr, aexpr_str sizes.(i)))
      buf.Alloc.kept
  in
  let footprint =
    match Zint.to_int_exn (Alloc.footprint buf param_env) with
    | n -> Some n
    | exception _ -> None
  in
  { b_name = buf.Alloc.local_name; b_dims = dims;
    b_footprint_words = footprint;
    b_move_in_nests = List.length b.move_in;
    b_move_out_nests = List.length b.move_out;
    b_inter_tile_reuse = b.reuse <> None }

let explain ?(param_env = fun _ -> Zint.zero) plan =
  let of_report ~copied ~buffer (part : Dataspaces.partition)
      (r : Reuse.report) =
    { v_array = part.Dataspaces.array;
      v_members = List.length part.Dataspaces.members;
      v_rank_reuse = r.Reuse.nonconstant;
      v_overlap_fraction = r.Reuse.overlap_fraction;
      v_delta = plan.delta;
      v_beneficial = r.Reuse.beneficial;
      v_copied = copied;
      v_buffer = buffer }
  in
  List.map (fun b ->
    of_report ~copied:true ~buffer:(Some (buffer_summary ~param_env b))
      b.buffer.Alloc.partition b.report)
    plan.buffered
  @ List.map (fun (part, r) -> of_report ~copied:false ~buffer:None part r)
      plan.skipped

let opt_int = function Some n -> J.Int n | None -> J.Null
let opt_float = function Some f -> J.Float f | None -> J.Null

let verdict_json v =
  J.Obj
    [ ("array", J.Str v.v_array);
      ("members", J.Int v.v_members);
      ( "algorithm1",
        J.Obj
          [ ("rank_reuse", J.Bool v.v_rank_reuse);
            ("overlap_fraction", opt_float v.v_overlap_fraction);
            ("delta", J.Float v.v_delta);
            ("beneficial", J.Bool v.v_beneficial) ] );
      ("copied", J.Bool v.v_copied);
      ( "buffer",
        match v.v_buffer with
        | None -> J.Null
        | Some b ->
          J.Obj
            [ ("name", J.Str b.b_name);
              ( "dims",
                J.List
                  (Array.to_list
                     (Array.map (fun (k, lb, ub, size) ->
                        J.Obj
                          [ ("dim", J.Int k); ("lb", J.Str lb);
                            ("ub", J.Str ub); ("size", J.Str size) ])
                        b.b_dims)) );
              ("footprint_words", opt_int b.b_footprint_words);
              ("move_in_nests", J.Int b.b_move_in_nests);
              ("move_out_nests", J.Int b.b_move_out_nests);
              ("inter_tile_reuse", J.Bool b.b_inter_tile_reuse) ] ) ]

let explain_json ?capacity_words ?param_env plan =
  let verdicts = explain ?param_env plan in
  let footprint =
    List.fold_left (fun acc v ->
      match acc, v.v_buffer with
      | Some t, Some { b_footprint_words = Some f; _ } -> Some (t + f)
      | _, None -> acc
      | _ -> None)
      (Some 0) verdicts
  in
  let fits =
    match footprint, capacity_words with
    | Some f, Some c -> J.Bool (f <= c)
    | _ -> J.Null
  in
  J.Obj
    [ ("arch", J.Str (match plan.arch with `Gpu -> "gpu" | `Cell -> "cell"));
      ("delta", J.Float plan.delta);
      ( "program",
        J.Obj
          [ ("statements", J.Int (List.length plan.prog.Prog.stmts));
            ( "arrays",
              J.List
                (List.map (fun (d : Prog.array_decl) ->
                   J.Str d.Prog.array_name)
                   plan.prog.Prog.arrays) );
            ( "params",
              J.List
                (Array.to_list
                   (Array.map (fun s -> J.Str s) plan.prog.Prog.params)) ) ] );
      ("partitions", J.List (List.map verdict_json verdicts));
      ( "totals",
        J.Obj
          [ ("buffered", J.Int (List.length plan.buffered));
            ("skipped", J.Int (List.length plan.skipped));
            ("footprint_words", opt_int footprint);
            ("capacity_words", opt_int capacity_words);
            ("fits_scratchpad", fits) ] ) ]

(** End-to-end data-management planning for a program block: the
    framework of Section 3 assembled — data spaces, partitioning,
    Algorithm 1 (reuse), Algorithm 2 (allocation), access-function
    rewriting, and movement code. *)

open Emsc_arith
open Emsc_ir
open Emsc_codegen

(** Inter-tile reuse evidence for one buffer: consecutive blocks along
    the innermost block origin [r_origin] (stepping by [r_step] from
    [r_lb] to [r_last]) share [r_resident]; chain-interior blocks load
    only [r_delta_in] (after relocating the resident slab by [r_shift]
    local cells per kept dim) and flush only [r_delta_out] — writes a
    later block of the chain rewrites stay in the scratchpad until
    that block (or the chain-closing full flush) moves them out.  All
    sets are symbolic in the tile origins; [Uset.union r_delta_in
    r_resident] equals [r_full_in] exactly on integer points (checked
    by {!Emsc_check.Invariants}). *)
type reuse = {
  r_origin : string;
  r_step : int;
  r_lb : int;
  r_last : int;
  r_full_in : Emsc_poly.Uset.t;
  r_delta_in : Emsc_poly.Uset.t;
  r_resident : Emsc_poly.Uset.t;
  r_full_out : Emsc_poly.Uset.t;
  r_delta_out : Emsc_poly.Uset.t;
  r_shift : int array;
}

type buffered = {
  buffer : Alloc.buffer;
  report : Reuse.report;
  move_in : Ast.stm list;
  move_out : Ast.stm list;
  reuse : reuse option;
      (** when present, [move_in]/[move_out] are guard pairs selecting
          full movement on a chain's first/last block and delta
          movement elsewhere *)
}

type t = {
  prog : Prog.t;
  buffered : buffered list;  (** partitions copied to scratchpad *)
  skipped : (Dataspaces.partition * Reuse.report) list;
      (** partitions left in global memory (GPU mode only) *)
  delta : float;  (** Algorithm 1 threshold the plan was built with *)
  arch : [ `Gpu | `Cell ];
}

val plan_block :
  ?delta:float ->
  ?param_env:Zint.t array ->
  ?param_context:Emsc_poly.Poly.t ->
  ?arch:[ `Gpu | `Cell ] ->
  ?optimize_movement:bool ->
  ?live_out:(string -> bool) ->
  ?merge_per_array:bool ->
  ?inter_tile:string * int * string list ->
  Prog.t -> t
(** [arch = `Gpu] (default) copies only partitions Algorithm 1 marks
    beneficial; [`Cell] copies everything, since Cell-like machines
    cannot touch global memory from compute code.
    [optimize_movement] applies the Section 3.1.4 refinement using
    flow-dependence information.  [live_out] defaults to treating every
    array as live (conservative).
    [inter_tile = (origin, step, mem_origins)] (normally
    {!Emsc_transform.Tile.inter_tile_origin}) enables irredundant
    inter-tile movement keyed on the named block origin: eligible
    buffers get guarded full/delta movement (see {!reuse}); ineligible
    ones silently keep full per-block movement.  Requires
    [param_context] for the origin's range and is mutually exclusive
    with [optimize_movement]. *)

val local_ref : t -> Prog.stmt -> Prog.access -> Ast.ref_expr option
(** How an access is rewritten to the local buffer: index expressions
    over the statement's iterator names and the program parameters.
    [None] when the access stays in global memory. *)

val all_move_in : t -> Ast.stm list
val all_move_out : t -> Ast.stm list

val total_footprint : t -> (string -> Zint.t) -> Zint.t
(** Scratchpad elements needed by all buffers under a parameter
    valuation (the ∑ M_i of Section 4.3). *)

val pp : Format.formatter -> t -> unit

(** {2 Explain report}

    Machine-readable record of why each partition was (or was not)
    staged into scratchpad: the Algorithm 1 verdict with its rank-test
    and overlap-fraction evidence, and the chosen buffer extents.
    Serialized with {!Emsc_obs.Json}; surfaced by
    [emsc analyze --json]. *)

type buffer_summary = {
  b_name : string;
  b_dims : (int * string * string * string) array;
      (** (original array dim, lb, ub, size) as printed expressions
          over the program parameters *)
  b_footprint_words : int option;
      (** under the valuation given to {!explain}; [None] when a bound
          stays symbolic *)
  b_move_in_nests : int;
  b_move_out_nests : int;
  b_inter_tile_reuse : bool;
      (** the buffer carries the inter-tile delta: chain-interior
          blocks move only the footprint difference *)
}

type verdict = {
  v_array : string;
  v_members : int;  (** data spaces in the partition *)
  v_rank_reuse : bool;
      (** Algorithm 1 criterion (a): some reference's access function
          restricted to the iterators has rank < iteration depth *)
  v_overlap_fraction : float option;
      (** criterion (b) evidence, compared against delta *)
  v_delta : float;
  v_beneficial : bool;
  v_copied : bool;  (** differs from beneficial only under [`Cell] *)
  v_buffer : buffer_summary option;
}

val explain : ?param_env:(string -> Zint.t) -> t -> verdict list
(** One verdict per partition, buffered partitions first.
    [param_env] (default: everything 0) evaluates buffer footprints. *)

val verdict_json : verdict -> Emsc_obs.Json.t

val explain_json :
  ?capacity_words:int -> ?param_env:(string -> Zint.t) -> t -> Emsc_obs.Json.t
(** Full plan report: program summary, per-partition verdicts, and
    footprint totals (compared against [capacity_words] when given). *)

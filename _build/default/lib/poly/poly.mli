(** Convex rational polyhedra with integer constraint coefficients.

    A polyhedron of dimension [n] is a conjunction of affine
    constraints over variables [x0..x_{n-1}].  Constraint vectors have
    length [n + 1]; vector [a] encodes [a.(0)*x0 + ... + a.(n-1)*x_{n-1}
    + a.(n) {>=,=} 0].  Inequalities are kept integer-tightened: the
    variable part is divided by its gcd and the constant floored, which
    is exact on integer points (the objects the compiler reasons
    about). *)

open Emsc_arith
open Emsc_linalg

type t = private { dim : int; eqs : Vec.t list; ineqs : Vec.t list }

val universe : int -> t
val bottom : int -> t
(** The canonically-empty polyhedron (constraint [-1 >= 0]). *)

val make : dim:int -> eqs:Vec.t list -> ineqs:Vec.t list -> t
val of_ineqs : dim:int -> int list list -> t
(** Convenience: inequality rows given as [int] lists of length dim+1. *)

val dim : t -> int
val constraints : t -> Vec.t list * Vec.t list
(** [(eqs, ineqs)]. *)

val add_eq : t -> Vec.t -> t
val add_ineq : t -> Vec.t -> t
val intersect : t -> t -> t

val is_trivially_empty : t -> bool
val is_empty : t -> bool
(** Rational emptiness, decided by LP.  (Integer emptiness lives in
    [Emsc_pip.Ilp].) *)

val is_universe : t -> bool

val contains_point : t -> Vec.t -> bool
(** Integer point membership; the point has length [dim]. *)

val sample_rational : t -> Q.t array option

val eliminate_dim : t -> int -> t
(** Fourier–Motzkin elimination of one variable; result has [dim - 1]
    dimensions (later variables shift down). *)

val eliminate_dims : t -> int list -> t
val project_prefix : t -> int -> t
(** [project_prefix p k] keeps the first [k] dimensions. *)

val image : t -> Mat.t -> t
(** [image p f]: image of [p] under the affine map [y = f * (x, 1)];
    [f] has [dim p + 1] columns; result dimension = rows of [f].
    Computed by rational projection (see DESIGN.md). *)

val preimage : t -> Mat.t -> t
(** [preimage p f]: [{ x | f * (x,1) ∈ p }]; [f] has [dim p] rows;
    result dimension = cols of [f] - 1. *)

val insert_dims : t -> pos:int -> count:int -> t
(** Add unconstrained dimensions at position [pos]. *)

val translate : t -> Vec.t -> t
(** [translate p v] shifts the polyhedron by integer vector [v]
    (length [dim]). *)

val fix_dim : t -> int -> Zint.t -> t
(** [fix_dim p j v] substitutes [x_j = v]; the result has [dim - 1]
    dimensions (later variables shift down). *)

val var_bounds : t -> int -> Q.t option * Q.t option
(** Rational (min, max) of a variable; [None] means unbounded. *)

val var_bounds_int : t -> int -> Zint.t option * Zint.t option
(** Integer-tightened bounds: ceil of the min, floor of the max. *)

val dim_bound_pairs : t -> int -> (Zint.t * Vec.t) list * (Zint.t * Vec.t) list
(** Syntactic bounds on variable [j] from the constraints that mention
    it: [(lowers, uppers)] where a lower [(a, e)] means
    [a * x_j >= -e(x)] with [a > 0] (i.e. [x_j >= ceil(-e/a)]) and an
    upper [(a, e)] means [a * x_j <= e(x)] with [a > 0].  [e] ranges
    over all dimensions (with the [j] entry zeroed) plus constant. *)

val implies : t -> Vec.t -> bool
(** [implies p row]: does [row >= 0] hold on every rational point of
    [p]?  True for empty [p]. *)

val is_subset : t -> t -> bool
(** [is_subset p q]: does every rational point of [p] lie in [q]? *)

val remove_redundant : t -> t
(** Drop inequalities implied by the rest (LP test) and detect implicit
    equalities. *)

val affine_hull : t -> Vec.t list
(** Equalities satisfied by every (rational) point: explicit equalities
    plus implicit ones (inequalities whose max over the set is 0). *)

val equal_set : t -> t -> bool
(** Mutual inclusion (rational). *)

val pp : Format.formatter -> t -> unit
val pp_named : string array -> Format.formatter -> t -> unit
(** Pretty-print with variable names. *)

val to_string : ?names:string array -> t -> string

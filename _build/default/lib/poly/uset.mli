(** Finite unions of convex polyhedra (the "data spaces" of the paper).

    Pieces are kept free of trivially-empty members but may overlap
    unless [make_disjoint] has been applied. *)

open Emsc_arith
open Emsc_linalg

type t = private { dim : int; pieces : Poly.t list }

val empty : int -> t
val of_poly : Poly.t -> t
val of_pieces : dim:int -> Poly.t list -> t
val dim : t -> int
val pieces : t -> Poly.t list
val is_empty : t -> bool
(** Rational emptiness of every piece. *)

val union : t -> t -> t
val intersect : t -> t -> t

val subtract : t -> t -> t
(** Set difference, exact on integer points (constraint negation uses
    [a.x + c <= -1]).  The result's pieces are pairwise disjoint if the
    first argument's were. *)

val make_disjoint : t -> t
(** Same integer points, pairwise-disjoint pieces. *)

val overlap : t -> t -> bool
(** Do the two unions share a rational point? *)

val is_subset : t -> t -> bool
(** Integer-point inclusion (via subtraction and integer emptiness of
    the pieces being rationally checked; sound for the tightened
    representation). *)

val equal_set : t -> t -> bool

val contains_point : t -> Vec.t -> bool

val image : t -> Mat.t -> t
(** Piecewise affine image. *)

val var_bounds_int : t -> int -> Zint.t option * Zint.t option
(** Per-dimension integer bounds of the union = bounds of its convex
    hull.  [None] means unbounded (or the union is empty). *)

val bounding_box : t -> (Zint.t * Zint.t) array option
(** All dimensions' [lb, ub]; [None] when empty or unbounded. *)

val affine_hull : t -> Vec.t list
(** Equalities satisfied by every point of the union: intersection of
    the pieces' affine hulls (computed by linear algebra on a spanning
    set). *)

val template_hull : t -> Poly.t
(** Convex over-approximation of the union: for every constraint
    direction occurring in any piece (plus axis directions), the
    tightest bound valid for the whole union.  Exact when the pieces
    share facet directions (e.g. boxes); always a superset. *)

val pp : Format.formatter -> t -> unit

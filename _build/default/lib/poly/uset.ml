open Emsc_arith
open Emsc_linalg

type t = { dim : int; pieces : Poly.t list }

let prune pieces =
  List.filter (fun p -> not (Poly.is_empty p)) pieces

let empty dim = { dim; pieces = [] }

let of_poly p =
  { dim = Poly.dim p; pieces = (if Poly.is_empty p then [] else [ p ]) }

let of_pieces ~dim pieces =
  List.iter (fun p ->
    if Poly.dim p <> dim then invalid_arg "Uset.of_pieces: dim mismatch")
    pieces;
  { dim; pieces = prune pieces }

let dim u = u.dim
let pieces u = u.pieces
let is_empty u = u.pieces = []

let check2 a b name =
  if a.dim <> b.dim then invalid_arg ("Uset." ^ name ^ ": dim mismatch")

let union a b =
  check2 a b "union";
  { a with pieces = a.pieces @ b.pieces }

let intersect a b =
  check2 a b "intersect";
  { a with
    pieces =
      prune
        (List.concat_map (fun p ->
           List.map (Poly.intersect p) b.pieces)
           a.pieces) }

(* integer negation of one inequality row *)
let negate_row row =
  let r = Vec.neg row in
  let n = Array.length r - 1 in
  r.(n) <- Zint.sub r.(n) Zint.one;
  r

(* p \ q for convex q, as a list of disjoint convex pieces *)
let subtract_poly p q =
  let rows =
    List.concat_map (fun e -> [ e; Vec.neg e ]) (fst (Poly.constraints q))
    @ snd (Poly.constraints q)
  in
  let rec go asserted rows acc =
    match rows with
    | [] -> acc
    | row :: rest ->
      let piece = Poly.add_ineq asserted (negate_row row) in
      go (Poly.add_ineq asserted row) rest (piece :: acc)
  in
  prune (go p rows [])

let subtract a b =
  check2 a b "subtract";
  let sub_piece p =
    List.fold_left (fun frags q ->
      List.concat_map (fun frag -> subtract_poly frag q) frags)
      [ p ] b.pieces
  in
  { a with pieces = prune (List.concat_map sub_piece a.pieces) }

let make_disjoint u =
  let rec go acc = function
    | [] -> List.rev acc
    | p :: rest ->
      let fresh =
        List.fold_left (fun frags q ->
          List.concat_map (fun frag -> subtract_poly frag q) frags)
          [ p ] acc
      in
      go (List.rev_append fresh acc) rest
  in
  { u with pieces = prune (go [] u.pieces) }

let overlap a b =
  check2 a b "overlap";
  List.exists (fun p ->
    List.exists (fun q -> not (Poly.is_empty (Poly.intersect p q))) b.pieces)
    a.pieces

let is_subset a b =
  check2 a b "is_subset";
  is_empty (subtract a b)

let equal_set a b = is_subset a b && is_subset b a

let contains_point u pt =
  List.exists (fun p -> Poly.contains_point p pt) u.pieces

let image u f =
  let target = Mat.rows f in
  { dim = target; pieces = prune (List.map (fun p -> Poly.image p f) u.pieces) }

let var_bounds_int u i =
  let fold_opt pick =
    List.fold_left (fun acc b ->
      match acc, b with
      | `Start, Some v -> `Some v
      | `Some a, Some v -> `Some (pick a v)
      | (`Start | `Some _ | `None), None -> `None
      | `None, Some _ -> `None)
      `Start
  in
  let finish = function `Some v -> Some v | `Start | `None -> None in
  let per_piece = List.map (fun p -> Poly.var_bounds_int p i) u.pieces in
  ( finish (fold_opt Zint.min (List.map fst per_piece)),
    finish (fold_opt Zint.max (List.map snd per_piece)) )

let bounding_box u =
  if is_empty u then None
  else begin
    let box =
      Array.init u.dim (fun i -> var_bounds_int u i)
    in
    if Array.for_all (fun (lo, hi) -> lo <> None && hi <> None) box then
      Some (Array.map (fun (lo, hi) -> (Option.get lo, Option.get hi)) box)
    else None
  end

(* Rational points that affinely span a piece: a sample point plus that
   point offset by each direction of the piece's linearity space. *)
let spanning_points p =
  match Poly.sample_rational p with
  | None -> []
  | Some x0 ->
    let hull = Poly.affine_hull p in
    let var_rows =
      Array.of_list
        (List.map (fun r -> Array.sub r 0 (Poly.dim p)) hull)
    in
    let dirs =
      if Array.length var_rows = 0 then
        List.init (Poly.dim p) (fun i -> Vec.unit (Poly.dim p) i)
      else Mat.nullspace var_rows
    in
    x0
    :: List.map (fun d ->
         Array.mapi (fun i xi -> Q.add xi (Q.of_zint d.(i))) x0)
         dirs

let affine_hull u =
  match u.pieces with
  | [] -> []
  | _ ->
    let points = List.concat_map spanning_points u.pieces in
    (* homogenize each rational point to an integer row (x, 1) * lcm *)
    let rows =
      List.map (fun x ->
        let l =
          Array.fold_left (fun acc q -> Zint.lcm acc (Q.den q)) Zint.one x
        in
        let row = Vec.make (u.dim + 1) in
        Array.iteri (fun i q ->
          row.(i) <- Zint.mul (Q.num q) (Zint.divexact l (Q.den q)))
          x;
        row.(u.dim) <- l;
        row)
        points
    in
    Mat.nullspace (Array.of_list rows)

let template_hull u =
  match u.pieces with
  | [] -> Poly.bottom u.dim
  | _ ->
    let directions =
      let of_piece p =
        let eqs, ineqs = Poly.constraints p in
        List.concat_map (fun e -> [ e; Vec.neg e ]) eqs @ ineqs
      in
      let axis =
        List.concat_map (fun i ->
          let u1 = Vec.unit (u.dim + 1) i in
          [ u1; Vec.neg u1 ])
          (List.init u.dim (fun i -> i))
      in
      let dirs =
        List.map (fun row ->
          Vec.normalize (Array.sub row 0 u.dim))
          (List.concat_map of_piece u.pieces
           @ List.map (fun r -> Array.sub r 0 (u.dim + 1)) axis)
      in
      List.sort_uniq Vec.compare (List.filter (fun d -> not (Vec.is_zero d)) dirs)
    in
    let bound_for d =
      (* minimum of d.x over the union; the hull constraint is
         d.x >= ceil(min) *)
      let obj = Array.append (Array.map Q.of_zint d) [| Q.zero |] in
      let mins =
        List.map (fun p ->
          let eqs, ineqs = Poly.constraints p in
          Simplex.minimize ~dim:u.dim ~eqs ~ineqs ~obj)
          u.pieces
      in
      let rec fold acc = function
        | [] -> acc
        | Simplex.Optimal (v, _) :: rest ->
          (match acc with
           | None -> fold (Some v) rest
           | Some a -> fold (Some (Q.min a v)) rest)
        | (Simplex.Unbounded | Simplex.Infeasible) :: _ -> None
      in
      match fold None mins with
      | None -> None
      | Some m ->
        let row = Vec.append d [| Zint.neg (Q.ceil m) |] in
        Some row
    in
    let rows = List.filter_map bound_for directions in
    Poly.make ~dim:u.dim ~eqs:[] ~ineqs:rows

let pp fmt u =
  match u.pieces with
  | [] -> Format.fprintf fmt "{ false }"
  | pieces ->
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.fprintf f " ∪ ")
      Poly.pp fmt pieces

open Emsc_arith

type result =
  | Exact of Zint.t
  | More_than of Zint.t
  | Unbounded

exception Hit_limit of Zint.t
exception Is_unbounded

(* Pick the dimension with the smallest integer extent to branch on;
   raises Is_unbounded if some dimension is unbounded. *)
let narrowest_dim p =
  let n = Poly.dim p in
  let best = ref (-1) in
  let best_width = ref Zint.zero in
  for i = 0 to n - 1 do
    match Poly.var_bounds_int p i with
    | Some lo, Some hi ->
      let w = Zint.sub hi lo in
      if !best < 0 || Zint.compare w !best_width < 0 then begin
        best := i;
        best_width := w
      end
    | _ -> raise Is_unbounded
  done;
  !best

let count_poly ?limit p =
  let limit_z = Option.map Zint.of_int limit in
  let over n =
    match limit_z with
    | Some l when Zint.compare n l > 0 -> true
    | Some _ | None -> false
  in
  let total = ref Zint.zero in
  let rec go p =
    if Poly.is_empty p then ()
    else if Poly.dim p = 0 then begin
      total := Zint.add !total Zint.one;
      if over !total then raise (Hit_limit !total)
    end
    else begin
      let j = narrowest_dim p in
      match Poly.var_bounds_int p j with
      | Some lo, Some hi ->
        let v = ref lo in
        while Zint.compare !v hi <= 0 do
          go (Poly.fix_dim p j !v);
          v := Zint.add !v Zint.one
        done
      | _ -> raise Is_unbounded
    end
  in
  try
    go p;
    Exact !total
  with
  | Hit_limit n -> More_than n
  | Is_unbounded -> Unbounded

let count_uset ?limit u =
  let disjoint = Uset.make_disjoint u in
  let rec sum acc = function
    | [] -> Exact acc
    | p :: rest -> begin
      match count_poly ?limit p with
      | Exact n -> sum (Zint.add acc n) rest
      | More_than n -> More_than (Zint.add acc n)
      | Unbounded -> Unbounded
    end
  in
  sum Zint.zero (Uset.pieces disjoint)

let box_volume p =
  if Poly.is_empty p then None
  else begin
    let n = Poly.dim p in
    let rec go acc i =
      if i >= n then Some acc
      else
        match Poly.var_bounds_int p i with
        | Some lo, Some hi ->
          go (Zint.mul acc (Zint.add (Zint.sub hi lo) Zint.one)) (i + 1)
        | _ -> None
    in
    go Zint.one 0
  end

let box_volume_uset u =
  match Uset.bounding_box u with
  | None -> None
  | Some box ->
    Some
      (Array.fold_left (fun acc (lo, hi) ->
         Zint.mul acc (Zint.add (Zint.sub hi lo) Zint.one))
         Zint.one box)

let to_float = function
  | Exact n | More_than n -> Zint.to_float n
  | Unbounded -> infinity

(** Exact rational linear programming (two-phase primal simplex with
    Bland's rule, hence guaranteed to terminate).

    Problems are stated over [dim] free variables.  Constraint vectors
    have length [dim + 1]: the first [dim] entries are variable
    coefficients and the last is the constant, so a vector [a] encodes
    [a.(0)*x0 + ... + a.(dim-1)*x_{dim-1} + a.(dim) {>=,=} 0]. *)

open Emsc_arith
open Emsc_linalg

type result =
  | Infeasible
  | Unbounded
  | Optimal of Q.t * Q.t array
      (** Optimal objective value and a witness point (length [dim]). *)

val minimize :
  dim:int -> eqs:Vec.t list -> ineqs:Vec.t list -> obj:Q.t array -> result
(** [minimize ~dim ~eqs ~ineqs ~obj] minimizes
    [obj.(0)*x0 + ... + obj.(dim-1)*x_{dim-1} + obj.(dim)] subject to
    the constraints.  [obj] has length [dim + 1]. *)

val maximize :
  dim:int -> eqs:Vec.t list -> ineqs:Vec.t list -> obj:Q.t array -> result

val feasible_point :
  dim:int -> eqs:Vec.t list -> ineqs:Vec.t list -> Q.t array option
(** A rational point of the polyhedron, if non-empty. *)

val obj_of_vec : Vec.t -> Q.t array
(** Convert an integer objective row to the rational form. *)

(** Counting integer points of polyhedra and unions.

    Used for the constant-reuse test of Algorithm 1 (overlap volume
    versus total volume, threshold δ) and for data-movement volume
    estimates.  The counter scans dimension by dimension, always
    branching on the currently narrowest variable; a [limit] caps the
    work for callers that only need "more than N or not". *)

open Emsc_arith

type result =
  | Exact of Zint.t
  | More_than of Zint.t  (** hit the [limit]; true count is larger *)
  | Unbounded

val count_poly : ?limit:int -> Poly.t -> result
val count_uset : ?limit:int -> Uset.t -> result
(** The union is made disjoint first, so overlaps are not
    double-counted. *)

val box_volume : Poly.t -> Zint.t option
(** Product of per-dimension integer extents: an upper bound on the
    number of integer points; [None] when unbounded or empty. *)

val box_volume_uset : Uset.t -> Zint.t option
(** Extent product of the union's bounding box. *)

val to_float : result -> float
(** [Exact n] and [More_than n] map to [n]; [Unbounded] to [infinity]. *)

lib/poly/poly.ml: Array Emsc_arith Emsc_linalg Format List Mat Option Printf Q Simplex Vec Zint

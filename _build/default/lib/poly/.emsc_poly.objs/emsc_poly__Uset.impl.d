lib/poly/uset.ml: Array Emsc_arith Emsc_linalg Format List Mat Option Poly Q Simplex Vec Zint

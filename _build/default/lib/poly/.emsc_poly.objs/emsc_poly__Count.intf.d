lib/poly/count.mli: Emsc_arith Poly Uset Zint

lib/poly/uset.mli: Emsc_arith Emsc_linalg Format Mat Poly Vec Zint

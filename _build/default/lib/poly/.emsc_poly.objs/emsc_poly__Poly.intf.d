lib/poly/poly.mli: Emsc_arith Emsc_linalg Format Mat Q Vec Zint

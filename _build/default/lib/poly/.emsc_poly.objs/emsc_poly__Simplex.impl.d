lib/poly/simplex.ml: Array Emsc_arith Emsc_linalg List Q Vec

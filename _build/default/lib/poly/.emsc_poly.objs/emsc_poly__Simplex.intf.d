lib/poly/simplex.mli: Emsc_arith Emsc_linalg Q Vec

lib/poly/count.ml: Array Emsc_arith Option Poly Uset Zint

lib/pip/ilp.ml: Array Emsc_arith Emsc_linalg Emsc_poly List Poly Q Simplex Vec Zint

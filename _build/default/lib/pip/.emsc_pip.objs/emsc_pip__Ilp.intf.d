lib/pip/ilp.mli: Emsc_arith Emsc_linalg Emsc_poly Poly Vec Zint

lib/pip/bounds.ml: Array Emsc_arith Emsc_linalg Emsc_poly List Poly Vec Zint

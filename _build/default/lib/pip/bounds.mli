(** Parametric loop bounds by ordered Fourier–Motzkin elimination.

    This is the role PIP/CLooG play in the paper when buffer extents
    and scanning loops must be expressed as affine functions of outer
    variables and program parameters: eliminating dimensions from the
    innermost outwards leaves, at each level [j], the bounds of [x_j]
    as affine forms over [x_0 .. x_{j-1}] (which include any leading
    parameter dimensions). *)

open Emsc_arith
open Emsc_linalg
open Emsc_poly

type level = {
  lowers : (Zint.t * Vec.t) list;
      (** [(a, e)] encodes [a * x_j + e >= 0] with [a > 0], i.e.
          [x_j >= ceil(-e / a)]; [e] has width [j + 2] with the entry
          at position [j] zero (coefficients of [x_0..x_{j-1}] and a
          constant). *)
  uppers : (Zint.t * Vec.t) list;
      (** [(a, e)] encodes [x_j <= floor(e / a)] with [a > 0]. *)
}

val loop_bounds : Poly.t -> level array
(** [loop_bounds p] computes, for each dimension [j] of [p] in order,
    the bounds of [x_j] in terms of earlier dimensions only.  Each
    intermediate projection is redundancy-reduced so the generated
    [min]/[max] bound sets stay small.  A dimension whose bound set is
    empty on one side is unbounded there. *)

val context : Poly.t -> Poly.t
(** The 0-dimensional residue of eliminating every dimension: trivially
    empty iff the polytope is (rationally) empty. *)

(** Integer linear programming by branch-and-bound over the exact
    rational simplex.

    This plays the role PIP plays in the paper for the non-parametric
    questions: integer emptiness of dependence polyhedra, integer
    optima of affine forms, and integer lexicographic minima.  Search
    is capped; hitting the cap raises {!Gave_up} so callers can fall
    back to a conservative answer. *)

open Emsc_arith
open Emsc_linalg
open Emsc_poly

exception Gave_up

type opt_result =
  | Empty          (** no integer point *)
  | Unbounded      (** integer points exist with arbitrarily small objective *)
  | Opt of Zint.t * Vec.t
      (** optimal objective value and an integer witness *)

val minimize : ?max_nodes:int -> Poly.t -> Vec.t -> opt_result
(** [minimize p obj] minimizes [obj . (x, 1)] (length [dim p + 1])
    over the integer points of [p]. *)

val maximize : ?max_nodes:int -> Poly.t -> Vec.t -> opt_result

val int_point : ?max_nodes:int -> Poly.t -> Vec.t option
(** Some integer point of [p], or [None] when there is none. *)

val is_int_empty : ?max_nodes:int -> Poly.t -> bool

val lexmin : ?max_nodes:int -> Poly.t -> Vec.t option
(** Integer lexicographic minimum (dimension by dimension).  [None]
    when empty. @raise Gave_up when some coordinate is unbounded below
    or the node cap is hit. *)

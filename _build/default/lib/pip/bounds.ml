open Emsc_arith
open Emsc_linalg
open Emsc_poly

type level = {
  lowers : (Zint.t * Vec.t) list;
  uppers : (Zint.t * Vec.t) list;
}

(* Zero out the j-th coefficient and truncate to width j+2 (columns for
   x_0..x_j plus the constant). *)
let truncate_expr j (row : Vec.t) =
  let n = Array.length row - 1 in
  let e = Array.make (j + 2) Zint.zero in
  Array.blit row 0 e 0 j;
  e.(j) <- Zint.zero;
  e.(j + 1) <- row.(n);
  e

let loop_bounds p =
  let dim = Poly.dim p in
  let levels = Array.make dim { lowers = []; uppers = [] } in
  let cur = ref (Poly.remove_redundant p) in
  for j = dim - 1 downto 0 do
    let lowers, uppers = Poly.dim_bound_pairs !cur j in
    (* at this point !cur has dimension j+1, so every bound row only
       involves x_0..x_j: truncating is exact *)
    levels.(j) <-
      {
        lowers = List.map (fun (a, e) -> (a, truncate_expr j e)) lowers;
        uppers = List.map (fun (a, e) -> (a, truncate_expr j e)) uppers;
      };
    cur := Poly.remove_redundant (Poly.eliminate_dim !cur j)
  done;
  levels

let context p =
  let dim = Poly.dim p in
  Poly.eliminate_dims p (List.init dim (fun i -> i))

lib/core/dataspaces.ml: Array Emsc_arith Emsc_ir Emsc_linalg Emsc_poly Hashtbl List Mat Poly Prog Uset Vec Zint

lib/core/reuse.ml: Array Count Dataspaces Emsc_arith Emsc_ir Emsc_linalg Emsc_poly Format List Mat Poly Printf Prog Uset Zint

lib/core/movement.mli: Alloc Ast Dataspaces Deps Emsc_arith Emsc_codegen Emsc_ir Emsc_poly Poly Prog Uset Zint

lib/core/dataspaces.mli: Emsc_ir Emsc_poly Poly Prog Uset

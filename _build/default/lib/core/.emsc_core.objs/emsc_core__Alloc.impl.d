lib/core/alloc.ml: Array Ast Dataspaces Emsc_arith Emsc_codegen Emsc_ir Emsc_linalg Emsc_poly Format List Poly Prog Uset Vec Zint

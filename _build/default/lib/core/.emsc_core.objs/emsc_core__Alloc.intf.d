lib/core/alloc.mli: Ast Dataspaces Emsc_arith Emsc_codegen Emsc_ir Emsc_linalg Format Prog Vec Zint

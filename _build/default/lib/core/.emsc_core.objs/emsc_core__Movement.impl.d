lib/core/movement.ml: Alloc Array Ast Count Dataspaces Deps Emsc_arith Emsc_codegen Emsc_ir Emsc_linalg Emsc_poly Hashtbl List Mat Poly Printf Prog Scan Uset Vec Zint

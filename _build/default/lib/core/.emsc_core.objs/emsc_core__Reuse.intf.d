lib/core/reuse.mli: Dataspaces Emsc_arith Emsc_ir Format Prog Zint

lib/core/plan.mli: Alloc Ast Dataspaces Emsc_arith Emsc_codegen Emsc_ir Emsc_poly Format Prog Reuse Zint

lib/core/plan.ml: Alloc Array Ast Dataspaces Deps Emsc_arith Emsc_codegen Emsc_ir Emsc_linalg Emsc_poly Format Hashtbl List Mat Movement Printf Prog Reuse Uset Zint

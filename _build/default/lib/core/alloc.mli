(** Algorithm 2 of the paper: local-memory storage for a partition of
    data spaces.

    For every dimension of the convex union of the partition we find a
    lower and an upper bound as (quasi-)affine functions of the program
    parameters (which, inside a tile, include the tile origins — this
    is the role PIP plays in the paper).  Bounds are extracted from the
    pieces' own constraints and validated against every piece, so they
    hold for the whole union; when no single affine candidate is valid
    for the union, a min/max tree over candidates is used, which can
    only over-allocate, never under-allocate.

    Array dimensions that are affinely determined by the others on the
    whole union (the paper's "dimensions that do not appear in the
    convex union polytope") are dropped from the local array when the
    determining equality has a unit coefficient, matching the paper's
    [m > n] case. *)

open Emsc_arith
open Emsc_linalg
open Emsc_ir
open Emsc_codegen

type bound = {
  row : Vec.t option;
      (** affine form over parameters (width nparams+1) when the bound
          is a single affine expression *)
  expr : Ast.aexpr;  (** always present; over the parameter names *)
}

type buffer = {
  local_name : string;
  array : string;
  orig_rank : int;
  kept : int array;
      (** original array dimensions represented in the local array,
          ascending *)
  lbs : bound array;  (** per kept dimension *)
  ubs : bound array;
  partition : Dataspaces.partition;
}

val build :
  ?local_name:string -> Prog.t -> Dataspaces.partition -> buffer
(** @raise Failure if some dimension of the union is unbounded (the
    block then cannot be buffered). *)

val size_exprs : buffer -> Ast.aexpr array
(** Per kept dimension, [ub - lb + 1] over the parameter names. *)

val footprint : buffer -> (string -> Zint.t) -> Zint.t
(** Product of the sizes under a parameter valuation (number of
    elements). *)

val pp : Format.formatter -> buffer -> unit

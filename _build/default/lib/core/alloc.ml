open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir
open Emsc_codegen

type bound = {
  row : Vec.t option;
  expr : Ast.aexpr;
}

type buffer = {
  local_name : string;
  array : string;
  orig_rank : int;
  kept : int array;
  lbs : bound array;
  ubs : bound array;
  partition : Dataspaces.partition;
}

(* A candidate bound for data dimension [a] (absolute index) extracted
   from one piece: [c * x_a + e >= 0] for lowers, [c * x_a <= e] for
   uppers, with [e] affine over the parameters. *)
type candidate = { c : Zint.t; param_part : Vec.t (* width np+1 *) }

let widen_candidate ~np ~dim ~a ~kind cand =
  let row = Vec.make (dim + 1) in
  for k = 0 to np - 1 do
    row.(k) <- cand.param_part.(k)
  done;
  row.(dim) <- cand.param_part.(np);
  (match kind with
   | `Lower -> row.(a) <- cand.c (* c*x_a + e >= 0 *)
   | `Upper ->
     (* x_a <= e/c  <=>  -c*x_a + e >= 0 *)
     row.(a) <- Zint.neg cand.c);
  row

let candidate_expr ~param_names ~kind cand =
  match kind with
  | `Lower ->
    (* x_a >= ceil(-e / c) *)
    let neg = Ast.vec_to_aexpr ~names:param_names (Vec.neg cand.param_part) in
    if Zint.is_one cand.c then Ast.simplify neg else Ast.Cdiv (neg, cand.c)
  | `Upper ->
    let pos = Ast.vec_to_aexpr ~names:param_names cand.param_part in
    if Zint.is_one cand.c then Ast.simplify pos else Ast.Fdiv (pos, cand.c)

let candidate_row ~kind cand =
  if Zint.is_one cand.c then
    Some
      (match kind with
       | `Lower -> Vec.neg cand.param_part
       | `Upper -> Vec.copy cand.param_part)
  else None

(* All candidate bounds of dimension [a] from one piece, found by
   projecting out every other data dimension. *)
let piece_candidates ~np ~rank piece a =
  let other_data =
    List.filter (fun d -> d <> a)
      (List.init rank (fun k -> np + k))
  in
  let proj = Poly.eliminate_dims piece other_data in
  (* in [proj], dims are params 0..np-1 then x_a at position np *)
  let lowers, uppers = Poly.dim_bound_pairs proj np in
  let mk (c, e) =
    let param_part = Vec.make (np + 1) in
    Array.blit e 0 param_part 0 np;
    param_part.(np) <- e.(np + 1);
    { c; param_part }
  in
  (List.map mk lowers, List.map mk uppers)

let dedupe_candidates cands =
  List.sort_uniq
    (fun a b ->
      let c = Zint.compare a.c b.c in
      if c <> 0 then c else Vec.compare a.param_part b.param_part)
    cands

(* Numeric tie-breaking valuation used only to choose among several
   valid candidates; any choice is sound.  Parameters are tile origins
   in the tiled pipeline, so evaluate at origin = 0: a tile-relative
   bound like [iT + 7] then scores 7 and beats the whole-array bound
   [n - 1], keeping buffers tile-sized. *)
let eval_candidate ~kind cand =
  let env _ = Zint.zero in
  Ast.eval env (candidate_expr ~param_names:(fun _ -> "p") ~kind cand)

let param_dependence cand =
  let np = Array.length cand.param_part - 1 in
  let n = ref 0 in
  for k = 0 to np - 1 do
    if not (Zint.is_zero cand.param_part.(k)) then incr n
  done;
  !n

let select_bound ~np ~dim ~a ~kind ~param_names pieces candidates =
  let candidates = dedupe_candidates candidates in
  if candidates = [] then
    failwith "Alloc: dimension of the data-space union is unbounded";
  let valid =
    List.filter (fun cand ->
      let row = widen_candidate ~np ~dim ~a ~kind cand in
      List.for_all (fun piece -> Poly.implies piece row) pieces)
      candidates
  in
  match valid with
  | [] ->
    (* no single affine bound valid for the whole union: combine all
       candidates; min of lower bounds / max of upper bounds is sound *)
    let exprs = List.map (candidate_expr ~param_names ~kind) candidates in
    let expr =
      Ast.simplify
        (match kind with `Lower -> Ast.Min exprs | `Upper -> Ast.Max exprs)
    in
    { row = None; expr }
  | _ ->
    (* pick the tightest under the hint valuation; prefer tile-relative
       (parameter-dependent) bounds on ties *)
    let score = eval_candidate ~kind in
    let better x y =
      let c =
        match kind with
        | `Lower -> Zint.compare (score x) (score y)
        | `Upper -> Zint.compare (score y) (score x)
      in
      if c <> 0 then c > 0 else param_dependence x > param_dependence y
    in
    let best =
      List.fold_left (fun acc c -> if better c acc then c else acc)
        (List.hd valid) (List.tl valid)
    in
    { row = candidate_row ~kind best;
      expr = candidate_expr ~param_names ~kind best }

(* Data dimensions determined (with unit coefficient) by the others on
   the whole union can be dropped from the local array. *)
let droppable_dims ~np ~rank hull_eqs =
  let dropped = ref [] in
  let rows = ref (List.map Vec.copy hull_eqs) in
  let continue_ = ref true in
  while !continue_ do
    let pick =
      List.find_map (fun row ->
        let rec find k =
          if k >= rank then None
          else if
            (not (List.mem k !dropped))
            && Zint.is_one (Zint.abs row.(np + k))
          then Some (k, row)
          else find (k + 1)
        in
        find 0)
        !rows
    in
    match pick with
    | None -> continue_ := false
    | Some (k, row) ->
      dropped := k :: !dropped;
      let c = row.(np + k) in
      rows :=
        List.filter_map (fun r ->
          if r == row then None
          else if Zint.is_zero r.(np + k) then Some r
          else
            (* r' = c * r - r_k * row   (c = ±1 keeps integrality) *)
            Some (Vec.combine c r (Zint.neg r.(np + k)) row))
          !rows
  done;
  !dropped

let build ?local_name p (part : Dataspaces.partition) =
  let np = Prog.nparams p in
  let rank = part.Dataspaces.rank in
  let dim = np + rank in
  let pieces = Uset.pieces part.Dataspaces.union in
  let param_names i = p.Prog.params.(i) in
  let hull_eqs = Uset.affine_hull part.Dataspaces.union in
  let dropped = droppable_dims ~np ~rank hull_eqs in
  let kept =
    Array.of_list
      (List.filter (fun k -> not (List.mem k dropped))
         (List.init rank (fun k -> k)))
  in
  let bound_of k kind =
    let a = np + k in
    let candidates =
      List.concat_map (fun piece ->
        let lo, hi = piece_candidates ~np ~rank piece a in
        match kind with `Lower -> lo | `Upper -> hi)
        pieces
    in
    select_bound ~np ~dim ~a ~kind ~param_names pieces candidates
  in
  let lbs = Array.map (fun k -> bound_of k `Lower) kept in
  let ubs = Array.map (fun k -> bound_of k `Upper) kept in
  let local_name =
    match local_name with
    | Some n -> n
    | None -> "l_" ^ part.Dataspaces.array
  in
  { local_name; array = part.Dataspaces.array; orig_rank = rank; kept;
    lbs; ubs; partition = part }

let size_exprs buf =
  Array.init (Array.length buf.kept) (fun i ->
    Ast.simplify
      (Ast.Add
         (Ast.Sub (buf.ubs.(i).expr, buf.lbs.(i).expr),
          Ast.Const Zint.one)))

let footprint buf env =
  Array.fold_left (fun acc size ->
    let s = Ast.eval env size in
    Zint.mul acc (Zint.max Zint.zero s))
    Zint.one (size_exprs buf)

let pp fmt buf =
  Format.fprintf fmt "@[<v 2>%s for %s (rank %d -> %d):" buf.local_name
    buf.array buf.orig_rank (Array.length buf.kept);
  Array.iteri (fun i k ->
    Format.fprintf fmt "@ dim %d: lb = %a, ub = %a" k Ast.pp_aexpr
      buf.lbs.(i).expr Ast.pp_aexpr buf.ubs.(i).expr)
    buf.kept;
  Format.fprintf fmt "@]"

(** End-to-end data-management planning for a program block: the
    framework of Section 3 assembled — data spaces, partitioning,
    Algorithm 1 (reuse), Algorithm 2 (allocation), access-function
    rewriting, and movement code. *)

open Emsc_arith
open Emsc_ir
open Emsc_codegen

type buffered = {
  buffer : Alloc.buffer;
  report : Reuse.report;
  move_in : Ast.stm list;
  move_out : Ast.stm list;
}

type t = {
  prog : Prog.t;
  buffered : buffered list;  (** partitions copied to scratchpad *)
  skipped : (Dataspaces.partition * Reuse.report) list;
      (** partitions left in global memory (GPU mode only) *)
}

val plan_block :
  ?delta:float ->
  ?param_env:Zint.t array ->
  ?param_context:Emsc_poly.Poly.t ->
  ?arch:[ `Gpu | `Cell ] ->
  ?optimize_movement:bool ->
  ?live_out:(string -> bool) ->
  ?merge_per_array:bool ->
  Prog.t -> t
(** [arch = `Gpu] (default) copies only partitions Algorithm 1 marks
    beneficial; [`Cell] copies everything, since Cell-like machines
    cannot touch global memory from compute code.
    [optimize_movement] applies the Section 3.1.4 refinement using
    flow-dependence information.  [live_out] defaults to treating every
    array as live (conservative). *)

val local_ref : t -> Prog.stmt -> Prog.access -> Ast.ref_expr option
(** How an access is rewritten to the local buffer: index expressions
    over the statement's iterator names and the program parameters.
    [None] when the access stays in global memory. *)

val all_move_in : t -> Ast.stm list
val all_move_out : t -> Ast.stm list

val total_footprint : t -> (string -> Zint.t) -> Zint.t
(** Scratchpad elements needed by all buffers under a parameter
    valuation (the ∑ M_i of Section 4.3). *)

val pp : Format.formatter -> t -> unit

open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir
open Emsc_codegen

type buffered = {
  buffer : Alloc.buffer;
  report : Reuse.report;
  move_in : Ast.stm list;
  move_out : Ast.stm list;
}

type t = {
  prog : Prog.t;
  buffered : buffered list;
  skipped : (Dataspaces.partition * Reuse.report) list;
}

let plan_block ?(delta = 0.3) ?param_env ?param_context ?(arch = `Gpu)
    ?(optimize_movement = false) ?(live_out = fun _ -> true)
    ?(merge_per_array = false) p =
  let partitions =
    let parts = Dataspaces.partition_all p in
    if not merge_per_array then parts
    else
      List.filter_map (fun (d : Prog.array_decl) ->
        match
          List.filter (fun (pt : Dataspaces.partition) ->
            pt.Dataspaces.array = d.Prog.array_name)
            parts
        with
        | [] -> None
        | group -> Some (Dataspaces.merge_partitions group))
        p.Prog.arrays
  in
  let deps = if optimize_movement then Deps.analyze p else [] in
  let counter = Hashtbl.create 8 in
  let fresh_name array =
    let n = try Hashtbl.find counter array with Not_found -> 0 in
    Hashtbl.replace counter array (n + 1);
    if n = 0 then "l_" ^ array else Printf.sprintf "l_%s_%d" array n
  in
  let buffered = ref [] and skipped = ref [] in
  List.iter (fun part ->
    let report = Reuse.analyze ~delta ?param_env p part in
    let copy =
      match arch with `Cell -> true | `Gpu -> report.Reuse.beneficial
    in
    if copy then begin
      let buffer =
        Alloc.build ~local_name:(fresh_name part.Dataspaces.array) p part
      in
      let in_data =
        if optimize_movement then Movement.optimized_move_in_data p deps buffer
        else Dataspaces.reads_union p part
      in
      let out_data =
        if optimize_movement then
          Movement.optimized_move_out_data p ~live_out buffer
        else if live_out part.Dataspaces.array then
          Dataspaces.writes_union p part
        else Uset.empty (Prog.nparams p + part.Dataspaces.rank)
      in
      let move_in =
        Movement.copy_code ?context:param_context p buffer ~dir:`In
          ~data:in_data
      in
      let move_out =
        Movement.copy_code ?context:param_context p buffer ~dir:`Out
          ~data:out_data
      in
      buffered := { buffer; report; move_in; move_out } :: !buffered
    end
    else skipped := (part, report) :: !skipped)
    partitions;
  { prog = p; buffered = List.rev !buffered; skipped = List.rev !skipped }

let find_buffer plan (s : Prog.stmt) (a : Prog.access) =
  List.find_opt (fun b ->
    List.exists (fun (m : Dataspaces.dspace) ->
      m.Dataspaces.stmt.Prog.id = s.Prog.id
      && m.Dataspaces.access.Prog.array = a.Prog.array
      && m.Dataspaces.access.Prog.kind = a.Prog.kind
      && Mat.equal m.Dataspaces.access.Prog.map a.Prog.map)
      b.buffer.Alloc.partition.Dataspaces.members)
    plan.buffered

let local_ref plan s a =
  match find_buffer plan s a with
  | None -> None
  | Some b ->
    let buf = b.buffer in
    let np = Prog.nparams plan.prog in
    let depth = s.Prog.depth in
    let names i =
      if i < depth then s.Prog.iter_names.(i)
      else plan.prog.Prog.params.(i - depth)
    in
    ignore np;
    let indices =
      Array.mapi (fun i k ->
        let subscript = Ast.vec_to_aexpr ~names a.Prog.map.(k) in
        Ast.simplify (Ast.Sub (subscript, buf.Alloc.lbs.(i).expr)))
        buf.Alloc.kept
    in
    Some { Ast.array = buf.Alloc.local_name; indices }

let all_move_in plan = List.concat_map (fun b -> b.move_in) plan.buffered
let all_move_out plan = List.concat_map (fun b -> b.move_out) plan.buffered

let total_footprint plan env =
  List.fold_left (fun acc b -> Zint.add acc (Alloc.footprint b.buffer env))
    Zint.zero plan.buffered

let pp fmt plan =
  Format.fprintf fmt "@[<v>plan: %d buffered, %d in global memory@,"
    (List.length plan.buffered)
    (List.length plan.skipped);
  List.iter (fun b ->
    Format.fprintf fmt "%a  %a@," Alloc.pp b.buffer Reuse.pp_report b.report)
    plan.buffered;
  List.iter (fun ((part : Dataspaces.partition), r) ->
    Format.fprintf fmt "skip %s %a@," part.Dataspaces.array Reuse.pp_report r)
    plan.skipped;
  Format.fprintf fmt "@]"

lib/optim/neldermead.ml: Array Float List

lib/optim/neldermead.mli:

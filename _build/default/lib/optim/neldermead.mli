(** Derivative-free simplex minimization (Nelder–Mead).

    Stands in for the sequential-quadratic-programming step of
    Section 4.3: the paper relaxes the integer tile sizes to reals,
    solves the smooth constrained problem, and rounds; we do the same
    with a penalty formulation and this minimizer (see
    {!Emsc_core.Tilesearch}). *)

type options = {
  max_iter : int;
  tolerance : float;   (** stop when the simplex spread is below this *)
  initial_step : float;  (** relative size of the starting simplex *)
}

val default_options : options

val minimize :
  ?options:options -> f:(float array -> float) -> x0:float array -> unit ->
  float array * float
(** Returns the best point found and its value. *)

val minimize_multistart :
  ?options:options -> f:(float array -> float) -> starts:float array list ->
  unit -> float array * float

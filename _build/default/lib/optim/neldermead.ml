type options = {
  max_iter : int;
  tolerance : float;
  initial_step : float;
}

let default_options = { max_iter = 500; tolerance = 1e-6; initial_step = 0.1 }

(* Standard coefficients: reflection 1, expansion 2, contraction 1/2,
   shrink 1/2. *)
let minimize ?(options = default_options) ~f ~x0 () =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Neldermead.minimize: empty point";
  let simplex =
    Array.init (n + 1) (fun i ->
      let x = Array.copy x0 in
      if i > 0 then begin
        let j = i - 1 in
        let delta =
          if Float.abs x.(j) > 1e-12 then options.initial_step *. x.(j)
          else options.initial_step
        in
        x.(j) <- x.(j) +. delta
      end;
      x)
  in
  let values = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    idx
  in
  let centroid except =
    let c = Array.make n 0.0 in
    Array.iteri (fun i x ->
      if i <> except then
        Array.iteri (fun j v -> c.(j) <- c.(j) +. v) x)
      simplex;
    Array.map (fun v -> v /. float_of_int n) c
  in
  let combine a c x =
    Array.init n (fun j -> c.(j) +. (a *. (c.(j) -. x.(j))))
  in
  let iter = ref 0 in
  let spread idx =
    Float.abs (values.(idx.(n)) -. values.(idx.(0)))
    /. (1.0 +. Float.abs values.(idx.(0)))
  in
  let idx = ref (order ()) in
  while !iter < options.max_iter && spread !idx > options.tolerance do
    incr iter;
    let worst = !idx.(n) and best = !idx.(0) in
    let second_worst = !idx.(n - 1) in
    let c = centroid worst in
    let xr = combine 1.0 c simplex.(worst) in
    let fr = f xr in
    if fr < values.(best) then begin
      (* try expanding *)
      let xe = combine 2.0 c simplex.(worst) in
      let fe = f xe in
      if fe < fr then begin
        simplex.(worst) <- xe;
        values.(worst) <- fe
      end
      else begin
        simplex.(worst) <- xr;
        values.(worst) <- fr
      end
    end
    else if fr < values.(second_worst) then begin
      simplex.(worst) <- xr;
      values.(worst) <- fr
    end
    else begin
      (* contract *)
      let xc = combine (-0.5) c simplex.(worst) in
      let fc = f xc in
      if fc < values.(worst) then begin
        simplex.(worst) <- xc;
        values.(worst) <- fc
      end
      else begin
        (* shrink toward the best vertex *)
        let xb = simplex.(best) in
        Array.iteri (fun i x ->
          if i <> best then begin
            let x' =
              Array.init n (fun j -> xb.(j) +. (0.5 *. (x.(j) -. xb.(j))))
            in
            simplex.(i) <- x';
            values.(i) <- f x'
          end)
          (Array.copy simplex)
      end
    end;
    idx := order ()
  done;
  let best = !idx.(0) in
  (Array.copy simplex.(best), values.(best))

let minimize_multistart ?options ~f ~starts () =
  match starts with
  | [] -> invalid_arg "Neldermead.minimize_multistart: no starts"
  | s0 :: rest ->
    List.fold_left
      (fun (bx, bv) s ->
        let x, v = minimize ?options ~f ~x0:s () in
        if v < bv then (x, v) else (bx, bv))
      (minimize ?options ~f ~x0:s0 ())
      rest

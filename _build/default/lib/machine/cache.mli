(** Set-associative LRU cache simulator (CPU baseline timing). *)

type t

type stats = {
  mutable hits : float;
  mutable misses : float;
}

val create : Config.cache -> word_bytes:int -> t
val access : t -> int -> bool
(** [access c word_addr] returns whether the access hit, updating LRU
    state. *)

val stats : t -> stats
val reset : t -> unit

(** Two-level hierarchy with the usual inclusive lookup. *)
module Hierarchy : sig
  type h

  val create : Config.cpu -> h
  val access : h -> int -> [ `L1 | `L2 | `Mem ]
  val l1_hits : h -> float
  val l2_hits : h -> float
  val mem_accesses : h -> float
end

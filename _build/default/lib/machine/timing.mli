(** First-order timing models.

    GPU launch time combines a throughput term (SIMD lanes shared by
    the block's threads), a bandwidth term (device DRAM bandwidth
    partitioned across multiprocessors, derated by coalescing
    efficiency), a latency term (hidden by warps in flight), and
    synchronization costs.  Occupancy follows the paper's Section 5
    rule: concurrent blocks per multiprocessor = scratchpad capacity
    divided by per-block scratchpad need, capped by hardware. *)

type gpu_params = {
  threads : int;              (** threads per block *)
  smem_bytes_per_block : int; (** drives occupancy *)
  coalesce_eff : float;
      (** effective words per global transaction, in
          [1, coalesce_width]; 16 = fully coalesced on the 8800 *)
  global_sync : bool;
      (** charge a cross-block synchronization per launch (kernels
          that need all blocks to finish, e.g. time-tiled stencils) *)
  double_buffer : bool;
      (** overlap movement with compute (double-buffered staging):
          removes the per-phase DRAM drain; the caller must double
          [smem_bytes_per_block] *)
}

val default_params : gpu_params

val occupancy : Config.gpu -> smem_bytes_per_block:int -> int
(** Concurrent blocks per multiprocessor. *)

val gpu_launch_cycles : Config.gpu -> gpu_params -> Exec.launch -> float
val gpu_total_ms : Config.gpu -> gpu_params -> Exec.result -> float

val cpu_total_ms :
  Config.cpu -> flops:float -> l1_hits:float -> l2_hits:float ->
  mem_accesses:float -> float

open Emsc_arith
open Emsc_poly
open Emsc_ir

(* integer points of a statement domain with parameters fixed, in
   lexicographic order *)
let domain_points (s : Prog.stmt) ~np ~param_values =
  (* fix the trailing parameter dims *)
  let fixed =
    let rec go k p =
      if k >= np then p
      else go (k + 1) (Poly.fix_dim p s.Prog.depth param_values.(k))
    in
    go 0 s.Prog.domain
  in
  let acc = ref [] in
  let rec scan p prefix =
    if Poly.is_empty p then ()
    else if Poly.dim p = 0 then acc := List.rev prefix :: !acc
    else begin
      match Poly.var_bounds_int p 0 with
      | Some lo, Some hi ->
        let v = ref lo in
        while Zint.compare !v hi <= 0 do
          scan (Poly.fix_dim p 0 !v) (!v :: prefix);
          v := Zint.add !v Zint.one
        done
      | _ -> invalid_arg ("Reference: unbounded domain in " ^ s.Prog.name)
    end
  in
  scan fixed [];
  List.rev_map Array.of_list !acc

let schedule_time (s : Prog.stmt) ~np ~param_values iters =
  Array.map (fun row ->
    let acc = ref row.(s.Prog.depth + np) in
    Array.iteri (fun i v ->
      acc := Zint.add !acc (Zint.mul row.(i) v))
      iters;
    for k = 0 to np - 1 do
      acc := Zint.add !acc (Zint.mul row.(s.Prog.depth + k) param_values.(k))
    done;
    !acc)
    s.Prog.schedule

let compare_times a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then compare (Array.length a) (Array.length b)
    else begin
      let c = Zint.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
    end
  in
  go 0

let instances p ~param_env =
  let p = Prog.pad_schedules p in
  let np = Prog.nparams p in
  let param_values =
    Array.map (fun name -> param_env name) p.Prog.params
  in
  let all =
    List.concat_map (fun (s : Prog.stmt) ->
      List.map (fun iters ->
        (schedule_time s ~np ~param_values iters, (s, iters)))
        (domain_points s ~np ~param_values))
      p.Prog.stmts
  in
  List.map snd (List.sort (fun (ta, _) (tb, _) -> compare_times ta tb) all)

let run p ~param_env memory ?on_global () =
  let insts = instances p ~param_env in
  Exec.run_instances ~prog:p ~param_env ~memory ?on_global insts

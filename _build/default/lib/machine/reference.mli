(** Reference executor: runs a polyhedral program directly from its
    domains and schedules (global lexicographic order), with exact
    semantics.  Used as ground truth when validating transformed code
    and as the CPU-baseline workload. *)

open Emsc_arith
open Emsc_ir

val instances : Prog.t -> param_env:(string -> Zint.t) ->
  (Prog.stmt * Zint.t array) list
(** Every dynamic statement instance, sorted by schedule time.
    Intended for small problem sizes (it materializes the list). *)

val run :
  Prog.t -> param_env:(string -> Zint.t) -> Memory.t ->
  ?on_global:(string -> int -> [ `Ld | `St ] -> unit) ->
  unit -> Exec.counters

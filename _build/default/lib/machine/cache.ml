type stats = {
  mutable hits : float;
  mutable misses : float;
}

type t = {
  nsets : int;
  assoc : int;
  line_words : int;
  tags : int array array;   (* nsets x assoc, -1 = invalid *)
  ages : int array array;   (* LRU: smaller = older *)
  mutable clock : int;
  st : stats;
}

let create (c : Config.cache) ~word_bytes =
  let line_words = max 1 (c.Config.line_bytes / word_bytes) in
  let nlines = max 1 (c.Config.size_bytes / c.Config.line_bytes) in
  let assoc = max 1 c.Config.assoc in
  let nsets = max 1 (nlines / assoc) in
  { nsets; assoc; line_words;
    tags = Array.init nsets (fun _ -> Array.make assoc (-1));
    ages = Array.init nsets (fun _ -> Array.make assoc 0);
    clock = 0;
    st = { hits = 0.; misses = 0. } }

let access c word_addr =
  let line = word_addr / c.line_words in
  let set = line mod c.nsets in
  let tags = c.tags.(set) and ages = c.ages.(set) in
  c.clock <- c.clock + 1;
  let rec find i = if i >= c.assoc then None
    else if tags.(i) = line then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    ages.(i) <- c.clock;
    c.st.hits <- c.st.hits +. 1.0;
    true
  | None ->
    c.st.misses <- c.st.misses +. 1.0;
    (* evict LRU way *)
    let victim = ref 0 in
    for i = 1 to c.assoc - 1 do
      if ages.(i) < ages.(!victim) then victim := i
    done;
    tags.(!victim) <- line;
    ages.(!victim) <- c.clock;
    false

let stats c = c.st

let reset c =
  Array.iter (fun t -> Array.fill t 0 (Array.length t) (-1)) c.tags;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) c.ages;
  c.clock <- 0;
  c.st.hits <- 0.;
  c.st.misses <- 0.

module Hierarchy = struct
  type h = {
    l1 : t;
    l2 : t;
    mutable l1h : float;
    mutable l2h : float;
    mutable mem : float;
  }

  let create (cpu : Config.cpu) =
    { l1 = create cpu.Config.l1 ~word_bytes:4;
      l2 = create cpu.Config.l2 ~word_bytes:4;
      l1h = 0.; l2h = 0.; mem = 0. }

  let access h addr =
    if access h.l1 addr then begin
      h.l1h <- h.l1h +. 1.0;
      `L1
    end
    else if access h.l2 addr then begin
      h.l2h <- h.l2h +. 1.0;
      `L2
    end
    else begin
      h.mem <- h.mem +. 1.0;
      `Mem
    end

  let l1_hits h = h.l1h
  let l2_hits h = h.l2h
  let mem_accesses h = h.mem
end

lib/machine/exec.ml: Array Ast Emsc_arith Emsc_codegen Emsc_ir Emsc_linalg Float Hashtbl List Memory Obj Printf Prog Zint

lib/machine/timing.ml: Config Exec Float List

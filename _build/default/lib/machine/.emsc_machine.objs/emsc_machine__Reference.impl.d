lib/machine/reference.ml: Array Emsc_arith Emsc_ir Emsc_poly Exec List Poly Prog Zint

lib/machine/config.ml:

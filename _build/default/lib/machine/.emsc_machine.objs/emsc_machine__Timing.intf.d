lib/machine/timing.mli: Config Exec

lib/machine/memory.mli: Emsc_arith Emsc_ir Prog Zint

lib/machine/exec.mli: Emsc_arith Emsc_codegen Emsc_ir Memory Prog Zint

lib/machine/reference.mli: Emsc_arith Emsc_ir Exec Memory Prog Zint

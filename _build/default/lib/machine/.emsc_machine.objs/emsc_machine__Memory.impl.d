lib/machine/memory.ml: Array Emsc_arith Emsc_ir Emsc_linalg Float Hashtbl List Printf Prog Zint

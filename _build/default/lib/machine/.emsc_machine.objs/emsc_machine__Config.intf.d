lib/machine/config.mli:

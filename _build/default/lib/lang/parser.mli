(** Parser for the affine input language — the front end that turns
    textual loop nests (like the paper's Figure 1 example) into the
    polyhedral IR.

    Grammar (statements at any nesting depth):

    {v
    program := decl* stm*
    decl    := "param" ID ";"
             | "array" ID ("[" aff "]")+ ";"
    stm     := "for" "(" ID "=" aff ";" ID "<=" aff ";" ID "++" ")"
               "{" stm* "}"
             | ref ("=" | "+=") expr ";"
    ref     := ID ("[" aff "]")+
    aff     := affine expression over enclosing iterators, parameters
               and integer literals: +, -, and scaling by constants
    expr    := expression over refs, iterators, parameters and integers
               with + - * /, unary -, abs(e), min(e,e), max(e,e)
    v}

    [x += e] is sugar for [x = x + e] (the left-hand reference is also
    recorded as a read).  Schedules are assigned from syntactic
    position (2d+1 form). *)

exception Error of string
(** Parse or semantic error (non-affine subscript, unknown array,
    rank mismatch, ...), with line/column information. *)

val parse : string -> Emsc_ir.Prog.t
(** @raise Error *)

val parse_file : string -> Emsc_ir.Prog.t

lib/lang/lexer.mli:

lib/lang/parser.mli: Emsc_ir

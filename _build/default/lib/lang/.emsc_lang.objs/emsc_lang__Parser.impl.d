lib/lang/parser.ml: Array Build Emsc_arith Emsc_ir Emsc_linalg Emsc_poly Lexer List Poly Printf Prog Vec Zint

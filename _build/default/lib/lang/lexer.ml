type token =
  | INT of int
  | ID of string
  | KW_PARAM | KW_ARRAY | KW_FOR | KW_ABS | KW_MIN | KW_MAX
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH
  | ASSIGN
  | PLUS_ASSIGN
  | LE
  | LT
  | INCR
  | EOF

type located = { tok : token; line : int; col : int }

exception Error of string

let keyword = function
  | "param" -> Some KW_PARAM
  | "array" -> Some KW_ARRAY
  | "for" -> Some KW_FOR
  | "abs" -> Some KW_ABS
  | "min" -> Some KW_MIN
  | "max" -> Some KW_MAX
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let push tok = toks := { tok; line = !line; col = !col } :: !toks in
  let advance k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance 1
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      advance 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance 2;
          closed := true
        end
        else advance 1
      done;
      if not !closed then raise (Error "unterminated comment")
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance 1
      done;
      push (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do
        advance 1
      done;
      let word = String.sub src start (!i - start) in
      push (match keyword word with Some k -> k | None -> ID word)
    end
    else begin
      let two a b t =
        if c = a && peek 1 = Some b then begin
          push t;
          advance 2;
          true
        end
        else false
      in
      if two '+' '=' PLUS_ASSIGN || two '+' '+' INCR || two '<' '=' LE then ()
      else begin
        let t =
          match c with
          | '(' -> LPAREN
          | ')' -> RPAREN
          | '{' -> LBRACE
          | '}' -> RBRACE
          | '[' -> LBRACKET
          | ']' -> RBRACKET
          | ';' -> SEMI
          | ',' -> COMMA
          | '+' -> PLUS
          | '-' -> MINUS
          | '*' -> STAR
          | '/' -> SLASH
          | '=' -> ASSIGN
          | '<' -> LT
          | _ ->
            raise
              (Error
                 (Printf.sprintf "line %d, col %d: unexpected character %c"
                    !line !col c))
        in
        push t;
        advance 1
      end
    end
  done;
  push EOF;
  List.rev !toks

let describe = function
  | INT n -> string_of_int n
  | ID s -> Printf.sprintf "identifier %s" s
  | KW_PARAM -> "param"
  | KW_ARRAY -> "array"
  | KW_FOR -> "for"
  | KW_ABS -> "abs"
  | KW_MIN -> "min"
  | KW_MAX -> "max"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | LE -> "<="
  | LT -> "<"
  | INCR -> "++"
  | EOF -> "end of input"

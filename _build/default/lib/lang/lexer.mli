(** Tokenizer for the affine input language (see {!Parser}). *)

type token =
  | INT of int
  | ID of string
  | KW_PARAM | KW_ARRAY | KW_FOR | KW_ABS | KW_MIN | KW_MAX
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA
  | PLUS | MINUS | STAR | SLASH
  | ASSIGN        (** [=] *)
  | PLUS_ASSIGN   (** [+=] *)
  | LE            (** [<=] *)
  | LT            (** [<] *)
  | INCR          (** [++] *)
  | EOF

type located = { tok : token; line : int; col : int }

exception Error of string

val tokenize : string -> located list
(** @raise Error on an unknown character.  Supports [//] line comments
    and [/* */] block comments. *)

val describe : token -> string

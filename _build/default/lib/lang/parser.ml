open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir

exception Error of string

type state = {
  mutable toks : Lexer.located list;
  mutable params : string list;        (* in declaration order *)
  mutable arrays : (string * Vec.t list) list;  (* extents over params *)
  mutable stmts : Prog.stmt list;      (* reversed *)
  mutable next_id : int;
}

let err_at (l : Lexer.located) fmt =
  Printf.ksprintf (fun s ->
    raise (Error (Printf.sprintf "line %d, col %d: %s" l.Lexer.line l.Lexer.col s)))
    fmt

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> raise (Error "unexpected end of token stream")

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let expect st tok =
  let t = peek st in
  if t.Lexer.tok = tok then advance st
  else err_at t "expected %s, found %s" (Lexer.describe tok)
      (Lexer.describe t.Lexer.tok)

let expect_id st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.ID name ->
    advance st;
    name
  | other -> err_at t "expected an identifier, found %s" (Lexer.describe other)

(* --- affine expressions -------------------------------------------------- *)

(* Affine vectors over (iters ++ params ++ const); [iters] is the
   current loop nest, innermost last. *)
let aff_width ~iters st = List.length iters + List.length st.params + 1

let var_index ~iters st name =
  let rec find k = function
    | [] -> None
    | x :: rest -> if x = name then Some k else find (k + 1) rest
  in
  match find 0 iters with
  | Some k -> Some k
  | None -> begin
    match find 0 st.params with
    | Some k -> Some (List.length iters + k)
    | None -> None
  end

let const_vec ~iters st c =
  let v = Vec.make (aff_width ~iters st) in
  v.(aff_width ~iters st - 1) <- Zint.of_int c;
  v

let rec parse_aff st ~iters =
  let lhs = parse_aff_term st ~iters in
  parse_aff_rest st ~iters lhs

and parse_aff_rest st ~iters lhs =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.PLUS ->
    advance st;
    let rhs = parse_aff_term st ~iters in
    parse_aff_rest st ~iters (Vec.add lhs rhs)
  | Lexer.MINUS ->
    advance st;
    let rhs = parse_aff_term st ~iters in
    parse_aff_rest st ~iters (Vec.sub lhs rhs)
  | _ -> lhs

and parse_aff_term st ~iters =
  let lhs = parse_aff_factor st ~iters in
  let rec go acc =
    let t = peek st in
    match t.Lexer.tok with
    | Lexer.STAR ->
      advance st;
      let rhs = parse_aff_factor st ~iters in
      let w = aff_width ~iters st in
      let const_of v =
        let rec check k =
          if k >= w - 1 then true
          else Zint.is_zero v.(k) && check (k + 1)
        in
        if check 0 then Some v.(w - 1) else None
      in
      (match const_of acc, const_of rhs with
       | Some c, _ -> go (Vec.scale c rhs)
       | _, Some c -> go (Vec.scale c acc)
       | None, None ->
         err_at t "non-affine product in an index or bound expression")
    | _ -> acc
  in
  go lhs

and parse_aff_factor st ~iters =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.INT n ->
    advance st;
    const_vec ~iters st n
  | Lexer.MINUS ->
    advance st;
    Vec.neg (parse_aff_factor st ~iters)
  | Lexer.ID name -> begin
    advance st;
    match var_index ~iters st name with
    | Some k ->
      let v = Vec.make (aff_width ~iters st) in
      v.(k) <- Zint.one;
      v
    | None -> err_at t "unknown variable %s in affine expression" name
  end
  | Lexer.LPAREN ->
    advance st;
    let v = parse_aff st ~iters in
    expect st Lexer.RPAREN;
    v
  | other -> err_at t "unexpected %s in affine expression" (Lexer.describe other)

(* --- computational expressions ------------------------------------------- *)

let find_array st name =
  match List.assoc_opt name st.arrays with
  | Some extents -> extents
  | None -> raise (Error (Printf.sprintf "undeclared array %s" name))

let parse_access st ~iters ~kind name =
  let extents = find_array st name in
  let rank = List.length extents in
  let rows = ref [] in
  for _ = 1 to rank do
    expect st Lexer.LBRACKET;
    rows := parse_aff st ~iters :: !rows;
    expect st Lexer.RBRACKET
  done;
  (match (peek st).Lexer.tok with
   | Lexer.LBRACKET ->
     raise (Error (Printf.sprintf "too many subscripts on array %s" name))
   | _ -> ());
  { Prog.array = name; kind; map = Array.of_list (List.rev !rows) }

let rec parse_expr st ~iters ~reads =
  let lhs = parse_mul st ~iters ~reads in
  let rec go acc =
    let t = peek st in
    match t.Lexer.tok with
    | Lexer.PLUS ->
      advance st;
      let rhs = parse_mul st ~iters ~reads in
      go (Prog.Eadd (acc, rhs))
    | Lexer.MINUS ->
      advance st;
      let rhs = parse_mul st ~iters ~reads in
      go (Prog.Esub (acc, rhs))
    | _ -> acc
  in
  go lhs

and parse_mul st ~iters ~reads =
  let lhs = parse_unary st ~iters ~reads in
  let rec go acc =
    let t = peek st in
    match t.Lexer.tok with
    | Lexer.STAR ->
      advance st;
      go (Prog.Emul (acc, parse_unary st ~iters ~reads))
    | Lexer.SLASH ->
      advance st;
      go (Prog.Ediv (acc, parse_unary st ~iters ~reads))
    | _ -> acc
  in
  go lhs

and parse_unary st ~iters ~reads =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.MINUS ->
    advance st;
    Prog.Eneg (parse_unary st ~iters ~reads)
  | Lexer.INT n ->
    advance st;
    Prog.Econst (float_of_int n)
  | Lexer.KW_ABS ->
    advance st;
    expect st Lexer.LPAREN;
    let e = parse_expr st ~iters ~reads in
    expect st Lexer.RPAREN;
    Prog.Eabs e
  | Lexer.KW_MIN | Lexer.KW_MAX ->
    let is_min = t.Lexer.tok = Lexer.KW_MIN in
    advance st;
    expect st Lexer.LPAREN;
    let a = parse_expr st ~iters ~reads in
    expect st Lexer.COMMA;
    let b = parse_expr st ~iters ~reads in
    expect st Lexer.RPAREN;
    if is_min then Prog.Emin (a, b) else Prog.Emax (a, b)
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st ~iters ~reads in
    expect st Lexer.RPAREN;
    e
  | Lexer.ID name -> begin
    advance st;
    match (peek st).Lexer.tok with
    | Lexer.LBRACKET ->
      let acc = parse_access st ~iters ~kind:Prog.Read name in
      reads := acc :: !reads;
      Prog.Eref acc
    | _ -> begin
      match var_index ~iters st name with
      | Some k when k < List.length iters -> Prog.Eiter k
      | Some k -> Prog.Eparam (k - List.length iters)
      | None -> err_at t "unknown identifier %s" name
    end
  end
  | other -> err_at t "unexpected %s in expression" (Lexer.describe other)

(* --- statements ------------------------------------------------------------ *)

(* Loop context: per enclosing loop, the lower/upper affine bound over
   the iterators outside it (plus params).  Rows are widened to the
   full statement width when a statement is created. *)
type loop_info = {
  iter : string;
  lb : Vec.t;  (* over (outer iters ++ params ++ 1) *)
  ub : Vec.t;
}

let widen_bound ~np ~depth ~loop_index row =
  (* row over (loop_index iters ++ params ++ 1) -> (depth ++ params ++ 1) *)
  let out = Vec.make (depth + np + 1) in
  Array.blit row 0 out 0 loop_index;
  for k = 0 to np do
    out.(depth + k) <- row.(loop_index + k)
  done;
  out

let domain_of_loops st loops =
  let np = List.length st.params in
  let depth = List.length loops in
  let rows =
    List.concat
      (List.mapi
         (fun k (li : loop_info) ->
           let lb = widen_bound ~np ~depth ~loop_index:k li.lb in
           let ub = widen_bound ~np ~depth ~loop_index:k li.ub in
           (* i_k - lb >= 0  and  ub - i_k >= 0 *)
           let ge = Vec.neg lb in
           ge.(k) <- Zint.add ge.(k) Zint.one;
           let le = Vec.copy ub in
           le.(k) <- Zint.sub le.(k) Zint.one;
           [ ge; le ])
         loops)
  in
  Poly.make ~dim:(depth + np) ~eqs:[] ~ineqs:rows

let rec parse_stm st ~loops ~beta_rev ~position =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN;
    let iter = expect_id st in
    expect st Lexer.ASSIGN;
    let outer_iters = List.map (fun l -> l.iter) loops in
    let lb = parse_aff st ~iters:outer_iters in
    expect st Lexer.SEMI;
    let iter2 = expect_id st in
    if iter2 <> iter then err_at t "loop condition must test %s" iter;
    let strict = (peek st).Lexer.tok = Lexer.LT in
    (match (peek st).Lexer.tok with
     | Lexer.LE | Lexer.LT -> advance st
     | other -> err_at t "expected <= or <, found %s" (Lexer.describe other));
    let ub = parse_aff st ~iters:outer_iters in
    let ub =
      if strict then begin
        let u = Vec.copy ub in
        let last = Array.length u - 1 in
        u.(last) <- Zint.sub u.(last) Zint.one;
        u
      end
      else ub
    in
    expect st Lexer.SEMI;
    let iter3 = expect_id st in
    if iter3 <> iter then err_at t "increment must update %s" iter;
    expect st Lexer.INCR;
    expect st Lexer.RPAREN;
    expect st Lexer.LBRACE;
    let inner = { iter; lb; ub } in
    let pos = ref 0 in
    let rec body () =
      match (peek st).Lexer.tok with
      | Lexer.RBRACE -> advance st
      | _ ->
        parse_stm st ~loops:(loops @ [ inner ])
          ~beta_rev:(position :: beta_rev) ~position:!pos;
        incr pos;
        body ()
    in
    body ()
  | Lexer.ID name -> begin
    advance st;
    let iters = List.map (fun l -> l.iter) loops in
    let lhs = parse_access st ~iters ~kind:Prog.Write name in
    let reads = ref [] in
    let op = peek st in
    let rhs =
      match op.Lexer.tok with
      | Lexer.ASSIGN ->
        advance st;
        parse_expr st ~iters ~reads
      | Lexer.PLUS_ASSIGN ->
        advance st;
        let self = { lhs with Prog.kind = Prog.Read } in
        reads := self :: !reads;
        Prog.Eadd (Prog.Eref self, parse_expr st ~iters ~reads)
      | other -> err_at op "expected = or +=, found %s" (Lexer.describe other)
    in
    expect st Lexer.SEMI;
    let depth = List.length loops in
    let np = List.length st.params in
    let beta = List.rev (position :: beta_rev) in
    let id = st.next_id in
    st.next_id <- id + 1;
    let stmt =
      { Prog.id;
        name = Printf.sprintf "S%d" id;
        depth;
        domain = domain_of_loops st loops;
        iter_names = Array.of_list iters;
        writes = [ lhs ];
        reads = List.rev !reads;
        body = Some (lhs, rhs);
        schedule = Build.schedule_2d1 ~np ~depth ~beta }
    in
    st.stmts <- stmt :: st.stmts
  end
  | other -> err_at t "expected a loop or an assignment, found %s"
      (Lexer.describe other)

let parse_decls st =
  let rec go () =
    match (peek st).Lexer.tok with
    | Lexer.KW_PARAM ->
      advance st;
      let name = expect_id st in
      expect st Lexer.SEMI;
      st.params <- st.params @ [ name ];
      go ()
    | Lexer.KW_ARRAY ->
      advance st;
      let name = expect_id st in
      let extents = ref [] in
      let rec dims () =
        match (peek st).Lexer.tok with
        | Lexer.LBRACKET ->
          advance st;
          (* extents range over parameters only *)
          extents := parse_aff st ~iters:[] :: !extents;
          expect st Lexer.RBRACKET;
          dims ()
        | _ -> ()
      in
      dims ();
      expect st Lexer.SEMI;
      if !extents = [] then
        raise (Error (Printf.sprintf "array %s needs at least one dimension" name));
      st.arrays <- st.arrays @ [ (name, List.rev !extents) ];
      go ()
    | _ -> ()
  in
  go ()

let parse src =
  let st =
    { toks = Lexer.tokenize src; params = []; arrays = []; stmts = [];
      next_id = 1 }
  in
  parse_decls st;
  (* re-parse array extents is unnecessary: they were parsed with the
     params known so far; require all params declared before arrays *)
  let pos = ref 0 in
  let rec top () =
    match (peek st).Lexer.tok with
    | Lexer.EOF -> ()
    | _ ->
      parse_stm st ~loops:[] ~beta_rev:[] ~position:!pos;
      incr pos;
      top ()
  in
  top ();
  let prog =
    { Prog.params = Array.of_list st.params;
      arrays =
        List.map (fun (name, extents) ->
          { Prog.array_name = name;
            rank = List.length extents;
            extents = Array.of_list extents })
          st.arrays;
      stmts = List.rev st.stmts }
  in
  match Prog.validate prog with
  | Ok () -> prog
  | Error e -> raise (Error ("inconsistent program: " ^ e))

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src

(** Dense integer matrices (rows of {!Vec.t}) with the exact linear
    algebra the polyhedral layer needs: Bareiss rank, rational
    nullspace with integer basis, Hermite normal form, and solving. *)

open Emsc_arith

type t = Vec.t array
(** Row-major; all rows share one length.  The empty matrix [[||]] is
    allowed and has 0 rows. *)

val make : int -> int -> t
val of_ints : int list list -> t
val identity : int -> t
val rows : t -> int
val cols : t -> int
val copy : t -> t
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t
val add : t -> t -> t
val equal : t -> t -> bool
val append_rows : t -> t -> t
val map_rows : (Vec.t -> Vec.t) -> t -> t

val rank : t -> int
(** Rank over the rationals (fraction-free Bareiss elimination). *)

val det : t -> Zint.t
(** Determinant of a square matrix. @raise Invalid_argument otherwise. *)

val nullspace : t -> Vec.t list
(** Integer basis of the right nullspace \{x | M x = 0\} over Q;
    each basis vector is content-normalized. *)

val solve : t -> Vec.t -> (Q.t array) option
(** [solve m b] finds a rational solution of [m x = b], or [None] if
    the system is inconsistent.  Free variables are set to zero. *)

val hermite_normal_form : t -> t * t
(** [hermite_normal_form m] is [(h, u)] with [h = u * m], [u]
    unimodular, and [h] in row-style Hermite normal form (pivots
    positive, entries above each pivot reduced, zero rows last). *)

val row_echelon_q : t -> Q.t array array * int list
(** Rational row echelon form together with the pivot-column list. *)

val pp : Format.formatter -> t -> unit

open Emsc_arith

type t = Vec.t array

let make r c = Array.init r (fun _ -> Vec.make c)
let of_ints rows = Array.of_list (List.map Vec.of_ints rows)

let identity n = Array.init n (fun i -> Vec.unit n i)

let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)
let copy m = Array.map Vec.copy m
let row m i = m.(i)
let col m j = Array.map (fun r -> r.(j)) m

let transpose m =
  let r = rows m and c = cols m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let mul a b =
  if cols a <> rows b then invalid_arg "Mat.mul: dimension mismatch";
  let bt = transpose b in
  Array.map (fun ra -> Array.map (fun cb -> Vec.dot ra cb) bt) a

let mul_vec m v = Array.map (fun r -> Vec.dot r v) m

let add a b =
  if rows a <> rows b || cols a <> cols b then invalid_arg "Mat.add";
  Array.map2 Vec.add a b

let equal a b =
  rows a = rows b && cols a = cols b && Array.for_all2 Vec.equal a b

let append_rows = Array.append
let map_rows = Array.map

(* Rational row echelon form; returns (echelon, pivot column list in
   order).  Works on a fresh Q copy. *)
let row_echelon_q m =
  let r = rows m and c = cols m in
  let a = Array.init r (fun i -> Array.init c (fun j -> Q.of_zint m.(i).(j))) in
  let pivots = ref [] in
  let cur_row = ref 0 in
  for j = 0 to c - 1 do
    if !cur_row < r then begin
      (* find a pivot in column j at or below cur_row *)
      let p = ref (-1) in
      for i = !cur_row to r - 1 do
        if !p < 0 && not (Q.is_zero a.(i).(j)) then p := i
      done;
      if !p >= 0 then begin
        let tmp = a.(!cur_row) in
        a.(!cur_row) <- a.(!p);
        a.(!p) <- tmp;
        let inv_pivot = Q.inv a.(!cur_row).(j) in
        for k = 0 to c - 1 do
          a.(!cur_row).(k) <- Q.mul a.(!cur_row).(k) inv_pivot
        done;
        for i = 0 to r - 1 do
          if i <> !cur_row && not (Q.is_zero a.(i).(j)) then begin
            let f = a.(i).(j) in
            for k = 0 to c - 1 do
              a.(i).(k) <- Q.sub a.(i).(k) (Q.mul f a.(!cur_row).(k))
            done
          end
        done;
        pivots := j :: !pivots;
        incr cur_row
      end
    end
  done;
  (a, List.rev !pivots)

let rank m = List.length (snd (row_echelon_q m))

(* Bareiss fraction-free elimination: exact integer determinant. *)
let det m =
  let n = rows m in
  if n <> cols m then invalid_arg "Mat.det: not square";
  if n = 0 then Zint.one
  else begin
    let a = Array.map Vec.copy m in
    let sign = ref 1 in
    let prev = ref Zint.one in
    let result = ref Zint.zero in
    (try
       for k = 0 to n - 2 do
         if Zint.is_zero a.(k).(k) then begin
           (* find a pivot row below *)
           let p = ref (-1) in
           for i = k + 1 to n - 1 do
             if !p < 0 && not (Zint.is_zero a.(i).(k)) then p := i
           done;
           if !p < 0 then begin
             result := Zint.zero;
             raise Exit
           end;
           let t = a.(k) in
           a.(k) <- a.(!p);
           a.(!p) <- t;
           sign := - !sign
         end;
         for i = k + 1 to n - 1 do
           for j = k + 1 to n - 1 do
             a.(i).(j) <-
               Zint.divexact
                 (Zint.sub
                    (Zint.mul a.(i).(j) a.(k).(k))
                    (Zint.mul a.(i).(k) a.(k).(j)))
                 !prev
           done;
           a.(i).(k) <- Zint.zero
         done;
         prev := a.(k).(k)
       done;
       result := a.(n - 1).(n - 1)
     with Exit -> ());
    if !sign < 0 then Zint.neg !result else !result
  end

(* Clear denominators of a rational vector into a normalized integer
   vector. *)
let integerize qv =
  let l =
    Array.fold_left (fun acc q -> Zint.lcm acc (Q.den q)) Zint.one qv
  in
  Vec.normalize
    (Array.map (fun q -> Zint.mul (Q.num q) (Zint.divexact l (Q.den q))) qv)

let nullspace m =
  let c = cols m in
  if c = 0 then []
  else begin
    let ech, pivots = row_echelon_q m in
    let is_pivot = Array.make c false in
    List.iter (fun j -> is_pivot.(j) <- true) pivots;
    let pivot_rows = List.mapi (fun i j -> (j, i)) pivots in
    let basis = ref [] in
    for j = c - 1 downto 0 do
      if not is_pivot.(j) then begin
        (* free variable j = 1, other free vars = 0 *)
        let v = Array.make c Q.zero in
        v.(j) <- Q.one;
        List.iter (fun (pj, pi) -> v.(pj) <- Q.neg ech.(pi).(j)) pivot_rows;
        basis := integerize v :: !basis
      end
    done;
    !basis
  end

let solve m b =
  let r = rows m and c = cols m in
  if r <> Array.length b then invalid_arg "Mat.solve";
  (* eliminate on the augmented matrix *)
  let aug =
    Array.init r (fun i ->
      Array.init (c + 1) (fun j -> if j < c then m.(i).(j) else b.(i)))
  in
  let ech, pivots = row_echelon_q aug in
  if List.mem c pivots then None (* pivot in the constant column *)
  else begin
    let x = Array.make c Q.zero in
    List.iteri (fun i j -> x.(j) <- ech.(i).(c)) pivots;
    Some x
  end

(* Row-style HNF via integer row operations (Euclidean column sweeps).
   Returns (h, u) with h = u * m and u unimodular. *)
let hermite_normal_form m =
  let r = rows m and c = cols m in
  let h = copy m in
  let u = identity r in
  let swap i k =
    let t = h.(i) in h.(i) <- h.(k); h.(k) <- t;
    let t = u.(i) in u.(i) <- u.(k); u.(k) <- t
  in
  let addmul i k q =
    (* row i <- row i - q * row k *)
    h.(i) <- Vec.combine Zint.one h.(i) (Zint.neg q) h.(k);
    u.(i) <- Vec.combine Zint.one u.(i) (Zint.neg q) u.(k)
  in
  let negate i =
    h.(i) <- Vec.neg h.(i);
    u.(i) <- Vec.neg u.(i)
  in
  let cur = ref 0 in
  for j = 0 to c - 1 do
    if !cur < r then begin
      (* reduce entries below cur in column j to zero via gcd steps *)
      let progressing = ref true in
      while !progressing do
        (* find row with minimal nonzero |h.(i).(j)| for i >= cur *)
        let best = ref (-1) in
        for i = !cur to r - 1 do
          if not (Zint.is_zero h.(i).(j))
             && (!best < 0
                 || Zint.compare (Zint.abs h.(i).(j)) (Zint.abs h.(!best).(j))
                    < 0)
          then best := i
        done;
        if !best < 0 then progressing := false
        else begin
          if !best <> !cur then swap !cur !best;
          if Zint.is_negative h.(!cur).(j) then negate !cur;
          let all_zero = ref true in
          for i = !cur + 1 to r - 1 do
            if not (Zint.is_zero h.(i).(j)) then begin
              let q = Zint.fdiv h.(i).(j) h.(!cur).(j) in
              addmul i !cur q;
              if not (Zint.is_zero h.(i).(j)) then all_zero := false
            end
          done;
          if !all_zero then begin
            (* reduce entries above the pivot *)
            for i = 0 to !cur - 1 do
              if not (Zint.is_zero h.(i).(j)) then begin
                let q = Zint.fdiv h.(i).(j) h.(!cur).(j) in
                addmul i !cur q
              end
            done;
            incr cur;
            progressing := false
          end
        end
      done
    end
  done;
  (h, u)

let pp fmt m =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list Vec.pp)
    (Array.to_list m)

(** Dense integer vectors (over {!Emsc_arith.Zint}). *)

open Emsc_arith

type t = Zint.t array

val make : int -> t
(** Zero vector of the given length. *)

val of_ints : int list -> t
val of_array : int array -> t
val to_ints_exn : t -> int list
val copy : t -> t
val length : t -> int

val unit : int -> int -> t
(** [unit n i] is the [n]-length vector with 1 in position [i]. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Zint.t -> t -> t
val scale_int : int -> t -> t

val combine : Zint.t -> t -> Zint.t -> t -> t
(** [combine a x b y = a*x + b*y]. *)

val dot : t -> t -> Zint.t
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val content : t -> Zint.t
(** Gcd of all entries (non-negative); zero for the zero vector. *)

val normalize : t -> t
(** Divide by the content; identity on the zero vector. *)

val append : t -> t -> t
val sub_vec : t -> int -> int -> t
(** [sub_vec v pos len]. *)

val insert : t -> int -> Zint.t -> t
(** [insert v pos x] returns a vector one longer with [x] at [pos]. *)

val remove : t -> int -> t
(** Remove the entry at the given position. *)

val pp : Format.formatter -> t -> unit

lib/linalg/vec.mli: Emsc_arith Format Zint

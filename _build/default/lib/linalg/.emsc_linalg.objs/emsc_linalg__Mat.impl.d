lib/linalg/mat.ml: Array Emsc_arith Format List Q Vec Zint

lib/linalg/mat.mli: Emsc_arith Format Q Vec Zint

lib/linalg/vec.ml: Array Emsc_arith Format List Zint

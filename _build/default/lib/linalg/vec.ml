open Emsc_arith

type t = Zint.t array

let make n = Array.make n Zint.zero
let of_ints l = Array.of_list (List.map Zint.of_int l)
let of_array a = Array.map Zint.of_int a
let to_ints_exn v = Array.to_list (Array.map Zint.to_int_exn v)
let copy = Array.copy
let length = Array.length

let unit n i =
  let v = make n in
  v.(i) <- Zint.one;
  v

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Vec: length mismatch";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add = map2 Zint.add
let sub = map2 Zint.sub
let neg v = Array.map Zint.neg v
let scale c v = Array.map (Zint.mul c) v
let scale_int c v = scale (Zint.of_int c) v

let combine a x b y =
  map2 (fun xi yi -> Zint.add (Zint.mul a xi) (Zint.mul b yi)) x y

let dot a b =
  let acc = ref Zint.zero in
  if Array.length a <> Array.length b then invalid_arg "Vec.dot";
  for i = 0 to Array.length a - 1 do
    acc := Zint.add !acc (Zint.mul a.(i) b.(i))
  done;
  !acc

let is_zero v = Array.for_all Zint.is_zero v

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Zint.equal a b

let compare a b =
  let c = compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else begin
    let rec go i =
      if i >= Array.length a then 0
      else begin
        let c = Zint.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
      end
    in
    go 0
  end

let content v = Array.fold_left Zint.gcd Zint.zero v

let normalize v =
  let g = content v in
  if Zint.is_zero g || Zint.is_one g then v
  else Array.map (fun x -> Zint.divexact x g) v

let append = Array.append
let sub_vec = Array.sub

let insert v pos x =
  let n = Array.length v in
  Array.init (n + 1) (fun i ->
    if i < pos then v.(i) else if i = pos then x else v.(i - 1))

let remove v pos =
  let n = Array.length v in
  Array.init (n - 1) (fun i -> if i < pos then v.(i) else v.(i + 1))

let pp fmt v =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") Zint.pp)
    (Array.to_list v)

lib/codegen/scan.ml: Array Ast Bounds Emsc_arith Emsc_linalg Emsc_pip Emsc_poly Ilp List Option Poly Printf Uset Vec Zint

lib/codegen/ast.mli: Emsc_arith Emsc_linalg Format Zint

lib/codegen/scan.mli: Ast Emsc_poly Poly Uset

lib/codegen/ast.ml: Array Emsc_arith Emsc_linalg Format Hashtbl List Option Set String Zint

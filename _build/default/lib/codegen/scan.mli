(** Polyhedron scanning: generate a loop nest enumerating the integer
    points of a polytope (or a union) in lexicographic order of the
    scanned dimensions — the role CLooG plays in the paper.

    Dimensions [0 .. outer-1] are context (parameters, tile origins):
    they are not looped; constraints involving only them become guards.
    Dimensions [outer .. dim-1] become nested loops, outermost first. *)

open Emsc_poly

val scan_poly :
  ?context:Poly.t -> names:string array -> outer:int ->
  body:Ast.stm list -> Poly.t -> Ast.stm list
(** [context], when given, is a polyhedron over the outer dimensions
    known to hold at run time (e.g. tile-origin ranges): the scanned
    set is restricted to it and guard conditions it implies are
    omitted — this is what lets movement code hoist above tiling loops
    it does not actually depend on.
    @raise Invalid_argument if a scanned dimension is unbounded. *)

val scan_uset :
  ?context:Poly.t -> names:string array -> outer:int ->
  body:Ast.stm list -> Uset.t -> Ast.stm list
(** The union is decomposed into disjoint pieces first, so the body is
    executed exactly once per integer point — the paper's "single
    load/store of each data element ... even if the accessed data
    spaces of references are overlapping".  Pieces are ordered by
    integer lexicographic minimum when that is computable, else
    syntactically. *)

(** Loop-nest AST produced by the code generators and consumed by the
    emitters and the machine simulator.

    Index expressions are affine terms over named integer variables
    with floor/ceil division and min/max, which is exactly what
    polyhedron scanning and rectangular tiling produce. *)

open Emsc_arith

type aexpr =
  | Var of string
  | Const of Zint.t
  | Add of aexpr * aexpr
  | Sub of aexpr * aexpr
  | Mul of Zint.t * aexpr
  | Fdiv of aexpr * Zint.t  (** floor division by a positive constant *)
  | Cdiv of aexpr * Zint.t  (** ceiling division by a positive constant *)
  | Min of aexpr list
  | Max of aexpr list

type parallelism =
  | Seq     (** ordinary sequential loop *)
  | Block   (** distributed across outer-level parallel units *)
  | Thread  (** distributed across inner-level parallel units *)

type ref_expr = { array : string; indices : aexpr array }

type stm =
  | Loop of loop
  | Guard of aexpr list * stm list
      (** run body iff every expression is [>= 0] *)
  | Stmt_call of { stmt_id : int; iter_args : aexpr array }
      (** instance of an IR statement with iterator values bound *)
  | Copy of { dst : ref_expr; src : ref_expr }
      (** data-movement assignment [dst := src] *)
  | Sync  (** barrier across the inner-level parallel units *)
  | Fence
      (** barrier bracketing a global-memory movement phase: besides
          synchronizing it drains outstanding DRAM traffic, which the
          timing model charges a memory round-trip for *)
  | Comment of string

and loop = {
  var : string;
  lb : aexpr;
  ub : aexpr;  (** inclusive *)
  step : Zint.t;
  par : parallelism;
  body : stm list;
}

val int_ : int -> aexpr
val var : string -> aexpr
val ( +: ) : aexpr -> aexpr -> aexpr
val ( -: ) : aexpr -> aexpr -> aexpr
val ( *: ) : int -> aexpr -> aexpr

val simplify : aexpr -> aexpr
(** Constant folding and flattening of nested min/max; keeps the
    expression semantically identical. *)

val subst : (string * aexpr) list -> aexpr -> aexpr

val eval : (string -> Zint.t) -> aexpr -> Zint.t
(** Evaluate under an environment. @raise Not_found for unbound
    variables (propagated from the environment function). *)

val vec_to_aexpr : names:(int -> string) -> Emsc_linalg.Vec.t -> aexpr
(** Affine row (width n+1, constant last) to an expression. *)

val loop_ : ?par:parallelism -> ?step:int -> string -> lb:aexpr -> ub:aexpr ->
  stm list -> stm

val map_stm : (stm -> stm option) -> stm list -> stm list
(** Bottom-up rewriting: the function sees each node after its children
    were rewritten; [None] keeps the node. *)

val free_vars : stm list -> string list
(** Variables read by the block that no loop inside it binds (sorted,
    unique) — used to decide how deep data-movement code can be
    hoisted (Section 4.2). *)

val pp_aexpr : Format.formatter -> aexpr -> unit
val pp_stm : Format.formatter -> stm -> unit
val pp_block : Format.formatter -> stm list -> unit

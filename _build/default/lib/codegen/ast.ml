open Emsc_arith

type aexpr =
  | Var of string
  | Const of Zint.t
  | Add of aexpr * aexpr
  | Sub of aexpr * aexpr
  | Mul of Zint.t * aexpr
  | Fdiv of aexpr * Zint.t
  | Cdiv of aexpr * Zint.t
  | Min of aexpr list
  | Max of aexpr list

type parallelism = Seq | Block | Thread

type ref_expr = { array : string; indices : aexpr array }

type stm =
  | Loop of loop
  | Guard of aexpr list * stm list
  | Stmt_call of { stmt_id : int; iter_args : aexpr array }
  | Copy of { dst : ref_expr; src : ref_expr }
  | Sync
  | Fence
  | Comment of string

and loop = {
  var : string;
  lb : aexpr;
  ub : aexpr;
  step : Zint.t;
  par : parallelism;
  body : stm list;
}

let int_ n = Const (Zint.of_int n)
let var s = Var s
let ( +: ) a b = Add (a, b)
let ( -: ) a b = Sub (a, b)
let ( *: ) c a = Mul (Zint.of_int c, a)

(* Flatten a purely affine subtree into (coefficient map, constant);
   [None] when it contains division or min/max. *)
let rec linearize e =
  match e with
  | Var s -> Some ([ (s, Zint.one) ], Zint.zero)
  | Const c -> Some ([], c)
  | Add (a, b) -> begin
    match linearize a, linearize b with
    | Some (ta, ca), Some (tb, cb) -> Some (ta @ tb, Zint.add ca cb)
    | _ -> None
  end
  | Sub (a, b) -> begin
    match linearize a, linearize b with
    | Some (ta, ca), Some (tb, cb) ->
      Some
        (ta @ List.map (fun (v, c) -> (v, Zint.neg c)) tb, Zint.sub ca cb)
    | _ -> None
  end
  | Mul (k, a) -> begin
    match linearize a with
    | Some (ta, ca) ->
      Some (List.map (fun (v, c) -> (v, Zint.mul k c)) ta, Zint.mul k ca)
    | None -> None
  end
  | Fdiv _ | Cdiv _ | Min _ | Max _ -> None

let rebuild_linear terms const =
  let merged = Hashtbl.create 8 in
  let order = ref [] in
  List.iter (fun (v, c) ->
    match Hashtbl.find_opt merged v with
    | Some c0 -> Hashtbl.replace merged v (Zint.add c0 c)
    | None ->
      Hashtbl.replace merged v c;
      order := v :: !order)
    terms;
  let parts =
    List.rev !order
    |> List.filter_map (fun v ->
         let c = Hashtbl.find merged v in
         if Zint.is_zero c then None
         else if Zint.is_one c then Some (Var v)
         else Some (Mul (c, Var v)))
  in
  match parts, Zint.is_zero const with
  | [], true -> Const Zint.zero
  | [], false -> Const const
  | e :: rest, true -> List.fold_left (fun acc x -> Add (acc, x)) e rest
  | e :: rest, false ->
    Add (List.fold_left (fun acc x -> Add (acc, x)) e rest, Const const)

let rec simplify e =
  match linearize e with
  | Some (terms, const) -> rebuild_linear terms const
  | None -> simplify_structural e

and simplify_structural e =
  match e with
  | Var _ | Const _ -> e
  | Add (a, b) -> begin
    match simplify a, simplify b with
    | Const x, Const y -> Const (Zint.add x y)
    | Const x, b' when Zint.is_zero x -> b'
    | a', Const y when Zint.is_zero y -> a'
    | a', b' -> Add (a', b')
  end
  | Sub (a, b) -> begin
    match simplify a, simplify b with
    | Const x, Const y -> Const (Zint.sub x y)
    | a', Const y when Zint.is_zero y -> a'
    | a', b' -> Sub (a', b')
  end
  | Mul (c, a) -> begin
    if Zint.is_zero c then Const Zint.zero
    else
      match simplify a with
      | Const x -> Const (Zint.mul c x)
      | a' when Zint.is_one c -> a'
      | a' -> Mul (c, a')
  end
  | Fdiv (a, d) -> begin
    match simplify a with
    | Const x -> Const (Zint.fdiv x d)
    | a' when Zint.is_one d -> a'
    | a' -> Fdiv (a', d)
  end
  | Cdiv (a, d) -> begin
    match simplify a with
    | Const x -> Const (Zint.cdiv x d)
    | a' when Zint.is_one d -> a'
    | a' -> Cdiv (a', d)
  end
  | Min es -> begin
    let es = List.map simplify es in
    let flat =
      List.concat_map (function Min xs -> xs | e -> [ e ]) es
    in
    let consts, rest =
      List.partition_map
        (function Const c -> Left c | e -> Right e)
        flat
    in
    let rest =
      match consts with
      | [] -> rest
      | c :: cs -> rest @ [ Const (List.fold_left Zint.min c cs) ]
    in
    match List.sort_uniq compare rest with
    | [] -> invalid_arg "Ast.simplify: empty min"
    | [ e ] -> e
    | es -> Min es
  end
  | Max es -> begin
    let es = List.map simplify es in
    let flat =
      List.concat_map (function Max xs -> xs | e -> [ e ]) es
    in
    let consts, rest =
      List.partition_map
        (function Const c -> Left c | e -> Right e)
        flat
    in
    let rest =
      match consts with
      | [] -> rest
      | c :: cs -> rest @ [ Const (List.fold_left Zint.max c cs) ]
    in
    match List.sort_uniq compare rest with
    | [] -> invalid_arg "Ast.simplify: empty max"
    | [ e ] -> e
    | es -> Max es
  end

let rec subst env e =
  match e with
  | Var s -> (match List.assoc_opt s env with Some e' -> e' | None -> e)
  | Const _ -> e
  | Add (a, b) -> Add (subst env a, subst env b)
  | Sub (a, b) -> Sub (subst env a, subst env b)
  | Mul (c, a) -> Mul (c, subst env a)
  | Fdiv (a, d) -> Fdiv (subst env a, d)
  | Cdiv (a, d) -> Cdiv (subst env a, d)
  | Min es -> Min (List.map (subst env) es)
  | Max es -> Max (List.map (subst env) es)

let rec eval env e =
  match e with
  | Var s -> env s
  | Const c -> c
  | Add (a, b) -> Zint.add (eval env a) (eval env b)
  | Sub (a, b) -> Zint.sub (eval env a) (eval env b)
  | Mul (c, a) -> Zint.mul c (eval env a)
  | Fdiv (a, d) -> Zint.fdiv (eval env a) d
  | Cdiv (a, d) -> Zint.cdiv (eval env a) d
  | Min (e0 :: es) ->
    List.fold_left (fun acc x -> Zint.min acc (eval env x)) (eval env e0) es
  | Max (e0 :: es) ->
    List.fold_left (fun acc x -> Zint.max acc (eval env x)) (eval env e0) es
  | Min [] | Max [] -> invalid_arg "Ast.eval: empty min/max"

let vec_to_aexpr ~names (row : Emsc_linalg.Vec.t) =
  let n = Array.length row - 1 in
  let terms = ref [] in
  for i = n - 1 downto 0 do
    if not (Zint.is_zero row.(i)) then
      terms := Mul (row.(i), Var (names i)) :: !terms
  done;
  let base =
    if Zint.is_zero row.(n) && !terms <> [] then None
    else Some (Const row.(n))
  in
  let all = !terms @ Option.to_list base in
  match all with
  | [] -> Const Zint.zero
  | e :: rest -> simplify (List.fold_left (fun acc x -> Add (acc, x)) e rest)

let loop_ ?(par = Seq) ?(step = 1) v ~lb ~ub body =
  Loop { var = v; lb; ub; step = Zint.of_int step; par; body }

let rec map_stm f stms =
  List.map
    (fun s ->
      let s' =
        match s with
        | Loop l -> Loop { l with body = map_stm f l.body }
        | Guard (c, body) -> Guard (c, map_stm f body)
        | Stmt_call _ | Copy _ | Sync | Fence | Comment _ -> s
      in
      match f s' with Some s'' -> s'' | None -> s')
    stms

module Sset = Set.Make (String)

let rec aexpr_vars acc = function
  | Var s -> Sset.add s acc
  | Const _ -> acc
  | Add (a, b) | Sub (a, b) -> aexpr_vars (aexpr_vars acc a) b
  | Mul (_, a) | Fdiv (a, _) | Cdiv (a, _) -> aexpr_vars acc a
  | Min es | Max es -> List.fold_left aexpr_vars acc es

let rec stm_free (bound, acc) s =
  match s with
  | Loop l ->
    let acc = Sset.union acc (Sset.diff (aexpr_vars Sset.empty l.lb) bound) in
    let acc = Sset.union acc (Sset.diff (aexpr_vars Sset.empty l.ub) bound) in
    let bound' = Sset.add l.var bound in
    let _, acc =
      List.fold_left (fun (b, a) s -> (b, snd (stm_free (b, a) s)))
        (bound', acc) l.body
    in
    (bound, acc)
  | Guard (conds, body) ->
    let acc =
      List.fold_left (fun a c -> Sset.union a (Sset.diff (aexpr_vars Sset.empty c) bound))
        acc conds
    in
    let _, acc =
      List.fold_left (fun (b, a) s -> (b, snd (stm_free (b, a) s)))
        (bound, acc) body
    in
    (bound, acc)
  | Stmt_call { iter_args; _ } ->
    let acc =
      Array.fold_left (fun a e -> Sset.union a (Sset.diff (aexpr_vars Sset.empty e) bound))
        acc iter_args
    in
    (bound, acc)
  | Copy { dst; src } ->
    let ref_vars acc (r : ref_expr) =
      Array.fold_left (fun a e -> Sset.union a (Sset.diff (aexpr_vars Sset.empty e) bound))
        acc r.indices
    in
    (bound, ref_vars (ref_vars acc dst) src)
  | Sync | Fence | Comment _ -> (bound, acc)

let free_vars stms =
  let _, acc =
    List.fold_left (fun (b, a) s -> (b, snd (stm_free (b, a) s)))
      (Sset.empty, Sset.empty) stms
  in
  Sset.elements acc

(* --- printing ----------------------------------------------------------- *)

let rec pp_aexpr fmt e =
  match e with
  | Var s -> Format.pp_print_string fmt s
  | Const c -> Zint.pp fmt c
  | Add (a, b) -> Format.fprintf fmt "%a + %a" pp_aexpr a pp_aexpr b
  | Sub (a, b) -> Format.fprintf fmt "%a - %a" pp_aexpr a pp_atom b
  | Mul (c, a) -> Format.fprintf fmt "%a*%a" Zint.pp c pp_atom a
  | Fdiv (a, d) -> Format.fprintf fmt "floord(%a, %a)" pp_aexpr a Zint.pp d
  | Cdiv (a, d) -> Format.fprintf fmt "ceild(%a, %a)" pp_aexpr a Zint.pp d
  | Min es ->
    Format.fprintf fmt "min(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ")
         pp_aexpr)
      es
  | Max es ->
    Format.fprintf fmt "max(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ")
         pp_aexpr)
      es

and pp_atom fmt e =
  match e with
  | Add _ | Sub _ -> Format.fprintf fmt "(%a)" pp_aexpr e
  | Var _ | Const _ | Mul _ | Fdiv _ | Cdiv _ | Min _ | Max _ ->
    pp_aexpr fmt e

let pp_ref fmt { array; indices } =
  Format.pp_print_string fmt array;
  Array.iter (fun i -> Format.fprintf fmt "[%a]" pp_aexpr i) indices

let rec pp_stm fmt s =
  match s with
  | Loop l ->
    let kw =
      match l.par with
      | Seq -> "for"
      | Block -> "forall_block"
      | Thread -> "forall_thread"
    in
    if Zint.is_one l.step then
      Format.fprintf fmt "@[<v 2>%s (%s = %a; %s <= %a; %s++) {@,%a@]@,}" kw
        l.var pp_aexpr l.lb l.var pp_aexpr l.ub l.var pp_block l.body
    else
      Format.fprintf fmt "@[<v 2>%s (%s = %a; %s <= %a; %s += %a) {@,%a@]@,}"
        kw l.var pp_aexpr l.lb l.var pp_aexpr l.ub l.var Zint.pp l.step
        pp_block l.body
  | Guard (conds, body) ->
    Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " && ")
         (fun f c -> Format.fprintf f "%a >= 0" pp_aexpr c))
      conds pp_block body
  | Stmt_call { stmt_id; iter_args } ->
    Format.fprintf fmt "S%d(%a);" stmt_id
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ")
         pp_aexpr)
      (Array.to_list iter_args)
  | Copy { dst; src } ->
    Format.fprintf fmt "%a = %a;" pp_ref dst pp_ref src
  | Sync -> Format.pp_print_string fmt "__syncthreads();"
  | Fence -> Format.pp_print_string fmt "__syncthreads(); /* + memory fence */"
  | Comment c -> Format.fprintf fmt "/* %s */" c

and pp_block fmt stms =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stm fmt stms

(** Exact rational numbers over {!Zint}.

    Values are kept in canonical form: the denominator is strictly
    positive and gcd(num, den) = 1.  Used throughout the polyhedral
    layer (simplex pivots, Fourier–Motzkin coefficients, volumes). *)

type t = private { num : Zint.t; den : Zint.t }

val zero : t
val one : t
val minus_one : t

val make : Zint.t -> Zint.t -> t
(** [make num den] in canonical form. @raise Division_by_zero. *)

val of_zint : Zint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints num den]. *)

val num : t -> Zint.t
val den : t -> Zint.t

val neg : t -> t
val abs : t -> t
val inv : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Zint.t
val ceil : t -> Zint.t

val to_float : t -> float
val of_float_approx : float -> t
(** Nearest rational with denominator up to 10^9; used only for
    reporting, never inside exact algorithms. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

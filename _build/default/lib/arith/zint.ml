(* Sign-magnitude bignums over 31-bit limbs (little-endian).  All limb
   products fit in 62 bits, so every intermediate stays inside OCaml's
   native 63-bit [int] with room for a carry bit. *)

let limb_bits = 31
let base = 1 lsl limb_bits (* 2^31 *)
let limb_mask = base - 1

type t = { sign : int; mag : int array }
(* Invariants: sign ∈ {-1,0,1}; sign = 0 iff mag = [||];
   mag has no trailing (most-significant) zero limb;
   every limb is in [0, base). *)

let zero = { sign = 0; mag = [||] }

let normalize_mag mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do decr n done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* min_int negation overflows; go through the loop with negatives *)
    let rec limbs acc n =
      if n = 0 then List.rev acc
      else limbs ((-(n mod base)) :: acc) (n / base)
    in
    let l = limbs [] (if n < 0 then n else -n) in
    { sign; mag = Array.of_list l }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0
let is_negative x = x.sign < 0
let is_positive x = x.sign > 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign >= 0 then compare_mag x.mag y.mag
  else compare_mag y.mag x.mag

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let is_one x = x.sign = 1 && Array.length x.mag = 1 && x.mag.(0) = 1

let hash x =
  Array.fold_left (fun acc limb -> (acc * 31 + limb) land max_int)
    (x.sign + 2) x.mag

(* |a| + |b| *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let ai = if i < la then a.(i) else 0 in
    let bi = if i < lb then b.(i) else 0 in
    let s = ai + bi + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r

(* |a| - |b|, requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let d = a.(i) - bi - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  r

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (add_mag x.mag y.mag)
  else begin
    let c = compare_mag x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then make x.sign (sub_mag x.mag y.mag)
    else make y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let t = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      (* propagate the final carry, which can itself exceed one limb *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land limb_mask;
        carry := t lsr limb_bits;
        incr k
      done
    end
  done;
  r

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else make (x.sign * y.sign) (mul_mag x.mag y.mag)

let mul_int x n = mul x (of_int n)
let add_int x n = add x (of_int n)

(* Left-shift a magnitude by [s] bits, 0 <= s < limb_bits. *)
let shl_mag_bits a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) lsl s) lor !carry in
      r.(i) <- t land limb_mask;
      carry := t lsr limb_bits
    done;
    r.(la) <- !carry;
    r
  end

(* Right-shift a magnitude by [s] bits, 0 <= s < limb_bits. *)
let shr_mag_bits a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let hi = if i + 1 < la then a.(i + 1) else 0 in
      r.(i) <- ((a.(i) lsr s) lor (hi lsl (limb_bits - s))) land limb_mask
    done;
    r
  end

let shift_left x k =
  if k < 0 then invalid_arg "Zint.shift_left"
  else if x.sign = 0 || k = 0 then x
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let shifted = shl_mag_bits x.mag bits in
    let r = Array.make (limbs + Array.length shifted) 0 in
    Array.blit shifted 0 r limbs (Array.length shifted);
    make x.sign r
  end

(* Knuth Algorithm D.  [divmod_mag u v] returns (q, r) with
   u = q*v + r, 0 <= r < v, all as magnitudes. *)
let divmod_mag u v =
  let n = Array.length v in
  assert (n > 0);
  if compare_mag u v < 0 then ([||], Array.copy u)
  else if n = 1 then begin
    let v0 = v.(0) in
    let lu = Array.length u in
    let q = Array.make lu 0 in
    let r = ref 0 in
    for i = lu - 1 downto 0 do
      let cur = (!r lsl limb_bits) lor u.(i) in
      q.(i) <- cur / v0;
      r := cur mod v0
    done;
    (q, if !r = 0 then [||] else [| !r |])
  end
  else begin
    (* Normalize so the top divisor limb has its high bit set. *)
    let s =
      let rec go s top = if top land (base lsr 1) <> 0 then s
        else go (s + 1) (top lsl 1)
      in
      go 0 v.(n - 1)
    in
    let vn = normalize_mag (shl_mag_bits v s) in
    assert (Array.length vn = n);
    let un =
      let t = shl_mag_bits u s in
      (* ensure one extra high limb *)
      if Array.length t = Array.length u then Array.append t [| 0 |] else t
    in
    let m = Array.length un - n - 1 in
    let q = Array.make (m + 1) 0 in
    let v1 = vn.(n - 1) and v2 = vn.(n - 2) in
    for j = m downto 0 do
      let top = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
      let qhat = ref (top / v1) and rhat = ref (top mod v1) in
      let adjust = ref true in
      while !adjust do
        if !qhat >= base
           || !qhat * v2 > (!rhat lsl limb_bits) lor un.(j + n - 2)
        then begin
          decr qhat;
          rhat := !rhat + v1;
          if !rhat >= base then adjust := false
        end
        else adjust := false
      done;
      (* multiply-subtract qhat * vn from un[j .. j+n] *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * vn.(i) + !carry in
        carry := p lsr limb_bits;
        let d = un.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin un.(i + j) <- d + base; borrow := 1 end
        else begin un.(i + j) <- d; borrow := 0 end
      done;
      let d = un.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* rare over-estimate: add vn back and decrement qhat *)
        un.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let t = un.(i + j) + vn.(i) + !c in
          un.(i + j) <- t land limb_mask;
          c := t lsr limb_bits
        done;
        un.(j + n) <- (un.(j + n) + !c) land limb_mask
      end
      else un.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = shr_mag_bits (Array.sub un 0 n) s in
    (q, r)
  end

let divmod x y =
  if y.sign = 0 then raise Division_by_zero
  else if x.sign = 0 then (zero, zero)
  else begin
    let q, r = divmod_mag x.mag y.mag in
    (make (x.sign * y.sign) q, make x.sign r)
  end

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let fdiv x y =
  let q, r = divmod x y in
  if r.sign <> 0 && r.sign <> y.sign then sub q one else q

let cdiv x y =
  let q, r = divmod x y in
  if r.sign <> 0 && r.sign = y.sign then add q one else q

let fmod x y = sub x (mul y (fdiv x y))

let divexact x y =
  let q, r = divmod x y in
  assert (is_zero r);
  q

let rec gcd_aux a b = if is_zero b then a else gcd_aux b (rem a b)
let gcd x y = gcd_aux (abs x) (abs y)

let lcm x y =
  if is_zero x || is_zero y then zero
  else abs (mul x (divexact y (gcd x y)))

let pow x k =
  if k < 0 then invalid_arg "Zint.pow";
  let rec go acc b k =
    if k = 0 then acc
    else if k land 1 = 1 then go (mul acc b) (mul b b) (k asr 1)
    else go acc (mul b b) (k asr 1)
  in
  go one x k

let to_int_opt x =
  (* Two limbs cover 62 bits, which always fits; three limbs only fit
     for min_int = -2^62 itself. *)
  match Array.length x.mag with
  | 0 -> Some 0
  | 1 -> Some (x.sign * x.mag.(0))
  | 2 -> Some (x.sign * ((x.mag.(1) lsl limb_bits) lor x.mag.(0)))
  | 3 when x.sign = -1 && x.mag.(0) = 0 && x.mag.(1) = 0 && x.mag.(2) = 1 ->
    Some min_int
  | _ -> None

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> failwith "Zint.to_int_exn: value does not fit in int"

let to_float x =
  let f = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  float_of_int x.sign *. !f

let ten = of_int 10
let billion = of_int 1_000_000_000

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    (* peel 9 decimal digits at a time *)
    let rec go v acc =
      if is_zero v then acc
      else begin
        let q, r = divmod v billion in
        go q (to_int_exn r :: acc)
      end
    in
    if x.sign < 0 then Buffer.add_char buf '-';
    (match go (abs x) [] with
     | [] -> assert false
     | d :: rest ->
       Buffer.add_string buf (string_of_int d);
       List.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%09d" d))
         rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Zint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Zint.of_string: no digits";
  let v = ref zero in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Zint.of_string: bad digit";
    v := add (mul !v ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !v else !v

let pp fmt x = Format.pp_print_string fmt (to_string x)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end

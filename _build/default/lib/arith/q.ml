type t = { num : Zint.t; den : Zint.t }

let make num den =
  if Zint.is_zero den then raise Division_by_zero;
  let num, den = if Zint.is_negative den then Zint.neg num, Zint.neg den
    else num, den
  in
  if Zint.is_zero num then { num = Zint.zero; den = Zint.one }
  else begin
    let g = Zint.gcd num den in
    if Zint.is_one g then { num; den }
    else { num = Zint.divexact num g; den = Zint.divexact den g }
  end

let of_zint n = { num = n; den = Zint.one }
let of_int n = of_zint (Zint.of_int n)
let of_ints n d = make (Zint.of_int n) (Zint.of_int d)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num q = q.num
let den q = q.den

let neg q = { q with num = Zint.neg q.num }
let abs q = { q with num = Zint.abs q.num }

let inv q =
  if Zint.is_zero q.num then raise Division_by_zero;
  if Zint.is_negative q.num then
    { num = Zint.neg q.den; den = Zint.neg q.num }
  else { num = q.den; den = q.num }

let add a b =
  make (Zint.add (Zint.mul a.num b.den) (Zint.mul b.num a.den))
    (Zint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Zint.mul a.num b.num) (Zint.mul a.den b.den)
let div a b = mul a (inv b)

let sign q = Zint.sign q.num
let is_zero q = Zint.is_zero q.num
let is_integer q = Zint.is_one q.den

let compare a b =
  Zint.compare (Zint.mul a.num b.den) (Zint.mul b.num a.den)

let equal a b = Zint.equal a.num b.num && Zint.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor q = Zint.fdiv q.num q.den
let ceil q = Zint.cdiv q.num q.den

let to_float q = Zint.to_float q.num /. Zint.to_float q.den

let of_float_approx f =
  let scale = 1_000_000_000 in
  make (Zint.of_int (int_of_float (Float.round (f *. float_of_int scale))))
    (Zint.of_int scale)

let to_string q =
  if is_integer q then Zint.to_string q.num
  else Zint.to_string q.num ^ "/" ^ Zint.to_string q.den

let pp fmt q = Format.pp_print_string fmt (to_string q)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( <> ) a b = not (equal a b)
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end

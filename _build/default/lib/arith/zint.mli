(** Arbitrary-precision signed integers.

    Polyhedral operations (Fourier–Motzkin elimination, exact simplex,
    lattice computations) produce coefficients that overflow machine
    integers; every algebraic layer of emsc is built on this module.
    The representation is sign–magnitude with 31-bit limbs so that all
    intermediate limb products fit in OCaml's 63-bit native [int]. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val to_float : t -> float

val of_string : string -> t
(** Accepts an optional leading [-] followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool
val is_positive : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val add_int : t -> int -> t

val divmod : t -> t -> t * t
(** Truncated division: quotient rounds toward zero, remainder has the
    sign of the dividend. @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val fdiv : t -> t -> t
(** Floor division: rounds toward negative infinity. *)

val cdiv : t -> t -> t
(** Ceiling division: rounds toward positive infinity. *)

val fmod : t -> t -> t
(** [fmod a b = a - b * fdiv a b]; has the sign of [b] (or zero). *)

val divexact : t -> t -> t
(** Division known to be exact; checked with an assertion. *)

val gcd : t -> t -> t
(** Non-negative gcd; [gcd zero zero = zero]. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

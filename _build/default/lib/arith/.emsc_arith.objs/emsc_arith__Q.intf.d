lib/arith/q.mli: Format Zint

lib/arith/q.ml: Float Format Zint

lib/arith/zint.ml: Array Buffer Char Format List Printf String

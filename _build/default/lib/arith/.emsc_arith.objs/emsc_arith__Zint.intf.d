lib/arith/zint.mli: Format

(** Dense matrix multiplication C += A * B — the classic kernel used to
    exercise the full pipeline (hyperplanes, tiling, buffering). *)

val program : n:int -> Emsc_ir.Prog.t
(** Single statement of depth 3 (i, j, k) over an [n x n] problem. *)

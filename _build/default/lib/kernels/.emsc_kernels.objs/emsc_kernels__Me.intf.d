lib/kernels/me.mli: Emsc_ir

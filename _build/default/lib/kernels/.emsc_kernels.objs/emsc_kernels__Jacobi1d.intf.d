lib/kernels/jacobi1d.mli: Emsc_ir

lib/kernels/fig1.ml: Build Emsc_ir Prog

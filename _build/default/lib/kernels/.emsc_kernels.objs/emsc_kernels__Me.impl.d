lib/kernels/me.ml: Build Emsc_ir Prog

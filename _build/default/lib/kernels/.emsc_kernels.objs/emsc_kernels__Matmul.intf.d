lib/kernels/matmul.mli: Emsc_ir

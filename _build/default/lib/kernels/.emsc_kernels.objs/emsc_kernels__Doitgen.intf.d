lib/kernels/doitgen.mli: Emsc_ir

lib/kernels/jacobi1d.ml: Build Emsc_ir Prog

lib/kernels/matmul.ml: Build Emsc_ir Prog

lib/kernels/conv2d.ml: Build Emsc_ir Prog

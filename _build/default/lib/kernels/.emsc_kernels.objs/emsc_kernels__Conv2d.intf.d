lib/kernels/conv2d.mli: Emsc_ir

lib/kernels/fig1.mli: Emsc_ir

lib/kernels/doitgen.ml: Build Emsc_ir Emsc_linalg Prog

open Emsc_linalg
open Emsc_poly

type access_kind = Read | Write

type access = {
  array : string;
  kind : access_kind;
  map : Mat.t;
}

type expr =
  | Eref of access
  | Eiter of int
  | Eparam of int
  | Econst of float
  | Eneg of expr
  | Eabs of expr
  | Eadd of expr * expr
  | Esub of expr * expr
  | Emul of expr * expr
  | Ediv of expr * expr
  | Emin of expr * expr
  | Emax of expr * expr

type stmt = {
  id : int;
  name : string;
  depth : int;
  domain : Poly.t;
  iter_names : string array;
  writes : access list;
  reads : access list;
  body : (access * expr) option;
  schedule : Mat.t;
}

type array_decl = {
  array_name : string;
  rank : int;
  extents : Vec.t array;
}

type t = {
  params : string array;
  arrays : array_decl list;
  stmts : stmt list;
}

let nparams p = Array.length p.params

let find_array p name =
  match List.find_opt (fun a -> a.array_name = name) p.arrays with
  | Some a -> a
  | None -> invalid_arg ("Prog.find_array: undeclared array " ^ name)

let find_stmt p id =
  match List.find_opt (fun s -> s.id = id) p.stmts with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Prog.find_stmt: no statement %d" id)

let accesses s = s.writes @ s.reads

let all_accesses_to p name =
  List.concat_map (fun s ->
    List.filter_map (fun a -> if a.array = name then Some (s, a) else None)
      (accesses s))
    p.stmts

let mk_access ~array ~kind ~rows = { array; kind; map = Mat.of_ints rows }

let stmt_param_start s = s.depth

let rec expr_accesses = function
  | Eref a -> [ a ]
  | Eiter _ | Eparam _ | Econst _ -> []
  | Eneg e | Eabs e -> expr_accesses e
  | Eadd (a, b) | Esub (a, b) | Emul (a, b) | Ediv (a, b)
  | Emin (a, b) | Emax (a, b) ->
    expr_accesses a @ expr_accesses b

let validate p =
  let np = nparams p in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_stmt s =
    let width = s.depth + np + 1 in
    if Poly.dim s.domain <> s.depth + np then
      err "stmt %s: domain dim %d <> depth %d + nparams %d" s.name
        (Poly.dim s.domain) s.depth np
    else if Array.length s.iter_names <> s.depth then
      err "stmt %s: %d iterator names for depth %d" s.name
        (Array.length s.iter_names) s.depth
    else if Mat.cols s.schedule <> width && Mat.rows s.schedule > 0 then
      err "stmt %s: schedule width %d <> %d" s.name (Mat.cols s.schedule) width
    else begin
      let check_access a =
        match List.find_opt (fun d -> d.array_name = a.array) p.arrays with
        | None -> err "stmt %s: undeclared array %s" s.name a.array
        | Some decl ->
          if Mat.rows a.map <> decl.rank then
            err "stmt %s: access to %s has %d rows, array rank %d" s.name
              a.array (Mat.rows a.map) decl.rank
          else if Mat.cols a.map <> width then
            err "stmt %s: access to %s width %d <> %d" s.name a.array
              (Mat.cols a.map) width
          else Ok ()
      in
      let rec all = function
        | [] -> Ok ()
        | a :: rest -> (match check_access a with Ok () -> all rest | e -> e)
      in
      match all (accesses s) with
      | Error _ as e -> e
      | Ok () -> begin
        (* body accesses must be drawn from the declared access lists *)
        match s.body with
        | None -> Ok ()
        | Some (lhs, rhs) ->
          if lhs.kind <> Write then err "stmt %s: lhs access is not a write" s.name
          else if
            List.exists (fun a -> a.kind <> Read) (expr_accesses rhs)
          then err "stmt %s: rhs contains a write access" s.name
          else all (lhs :: expr_accesses rhs)
      end
    end
  in
  let check_arrays () =
    let rec go = function
      | [] -> Ok ()
      | d :: rest ->
        if Array.length d.extents <> d.rank then
          err "array %s: %d extents for rank %d" d.array_name
            (Array.length d.extents) d.rank
        else if
          Array.exists (fun e -> Array.length e <> np + 1) d.extents
        then err "array %s: extent width <> nparams+1" d.array_name
        else go rest
    in
    go p.arrays
  in
  match check_arrays () with
  | Error _ as e -> e
  | Ok () ->
    let rec go = function
      | [] -> Ok ()
      | s :: rest -> (match check_stmt s with Ok () -> go rest | e -> e)
    in
    go p.stmts

let max_schedule_rows p =
  List.fold_left (fun acc s -> Stdlib.max acc (Mat.rows s.schedule)) 0 p.stmts

let pad_schedules p =
  let target = max_schedule_rows p in
  let np = nparams p in
  let pad s =
    let have = Mat.rows s.schedule in
    if have >= target then s
    else begin
      let width = s.depth + np + 1 in
      let zeros = Array.init (target - have) (fun _ -> Vec.make width) in
      { s with schedule = Mat.append_rows s.schedule zeros }
    end
  in
  { p with stmts = List.map pad p.stmts }

let pp_access fmt a =
  Format.fprintf fmt "%s%s[" (match a.kind with Read -> "R:" | Write -> "W:")
    a.array;
  Array.iteri (fun i row ->
    if i > 0 then Format.fprintf fmt ", ";
    Vec.pp fmt row)
    a.map;
  Format.fprintf fmt "]"

let pp_stmt p fmt s =
  let np = nparams p in
  let names =
    Array.append s.iter_names (Array.sub p.params 0 np)
  in
  Format.fprintf fmt "@[<v 2>%s (depth %d):@ domain %a@ %a@]" s.name s.depth
    (Poly.pp_named names) s.domain
    (Format.pp_print_list pp_access)
    (accesses s)

let pp fmt p =
  Format.fprintf fmt "@[<v>params: %s@ %a@]"
    (String.concat ", " (Array.to_list p.params))
    (Format.pp_print_list (pp_stmt p))
    p.stmts

lib/ir/build.ml: Array Emsc_arith Emsc_linalg Emsc_poly List Poly Printf Prog Vec Zint

lib/ir/build.mli: Emsc_linalg Emsc_poly Poly Prog

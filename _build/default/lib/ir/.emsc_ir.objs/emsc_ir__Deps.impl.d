lib/ir/deps.ml: Array Emsc_arith Emsc_linalg Emsc_pip Emsc_poly Format List Mat Poly Prog Vec Zint

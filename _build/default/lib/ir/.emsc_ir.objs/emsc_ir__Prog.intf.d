lib/ir/prog.mli: Emsc_linalg Emsc_poly Format Mat Poly Vec

lib/ir/prog.ml: Array Emsc_linalg Emsc_poly Format List Mat Poly Printf Stdlib String Vec

lib/ir/deps.mli: Emsc_poly Format Poly Prog

(** Polyhedral dependence analysis.

    For each pair of accesses to the same array in which at least one
    access writes, builds the dependence polyhedra over the combined
    space [(src iterators) ++ (dst iterators) ++ params], one per
    lexicographic precedence level, and keeps the integer-non-empty
    ones.  Integer emptiness is decided by {!Emsc_pip.Ilp}; if the
    search gives up the dependence is kept (conservative). *)

open Emsc_poly

type kind = Flow | Anti | Output

type t = {
  src : Prog.stmt;
  dst : Prog.stmt;
  src_access : Prog.access;
  dst_access : Prog.access;
  kind : kind;
  level : int;
      (** 0-based schedule level at which the precedence is strict *)
  poly : Poly.t;
      (** dimension [src.depth + dst.depth + nparams] *)
}

val analyze : ?context:Poly.t -> Prog.t -> t list
(** [context], when given, is a polyhedron over the parameters only
    (dimension = nparams) constraining problem sizes, e.g. [N >= 1]. *)

val pp : Format.formatter -> t -> unit

open Emsc_arith
open Emsc_linalg
open Emsc_poly

let box_domain ~np bounds =
  let depth = List.length bounds in
  let dim = depth + np in
  let rows =
    List.concat
      (List.mapi
         (fun i (lo, hi) ->
           let ge = Vec.make (dim + 1) in
           ge.(i) <- Zint.one;
           ge.(dim) <- Zint.of_int (-lo);
           let le = Vec.make (dim + 1) in
           le.(i) <- Zint.minus_one;
           le.(dim) <- Zint.of_int hi;
           [ ge; le ])
         bounds)
  in
  Poly.make ~dim ~eqs:[] ~ineqs:rows

let domain_rows ~np ~depth rows =
  ignore depth;
  let dim = depth + np in
  Poly.make ~dim ~eqs:[] ~ineqs:(List.map Vec.of_ints rows)

let schedule_2d1 ~np ~depth ~beta =
  if List.length beta <> depth + 1 then
    invalid_arg "Build.schedule_2d1: beta length <> depth+1";
  let width = depth + np + 1 in
  let rows = ref [] in
  List.iteri
    (fun i b ->
      let const_row = Vec.make width in
      const_row.(width - 1) <- Zint.of_int b;
      rows := const_row :: !rows;
      if i < depth then begin
        let iter_row = Vec.make width in
        iter_row.(i) <- Zint.one;
        rows := iter_row :: !rows
      end)
    beta;
  Array.of_list (List.rev !rows)

let stmt ~id ~name ~np ~depth ?iter_names ~domain ?(writes = []) ?(reads = [])
    ?body ~beta () =
  let iter_names =
    match iter_names with
    | Some ns -> ns
    | None -> Array.init depth (fun i -> Printf.sprintf "i%d" i)
  in
  { Prog.id; name; depth; domain; iter_names; writes; reads; body;
    schedule = schedule_2d1 ~np ~depth ~beta }

let const_extent ~np n =
  let row = Vec.make (np + 1) in
  row.(np) <- Zint.of_int n;
  row

let array2 name n0 n1 ~np =
  { Prog.array_name = name; rank = 2;
    extents = [| const_extent ~np n0; const_extent ~np n1 |] }

let array1 name n0 ~np =
  { Prog.array_name = name; rank = 1; extents = [| const_extent ~np n0 |] }

let array_p name rows =
  { Prog.array_name = name; rank = List.length rows;
    extents = Array.of_list (List.map Vec.of_ints rows) }

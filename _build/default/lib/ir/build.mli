(** Convenience constructors for polyhedral programs (used by the
    kernel library, the parser, and tests). *)

open Emsc_poly

val box_domain : np:int -> (int * int) list -> Poly.t
(** Constant rectangular domain: one [(lo, hi)] per iterator;
    dimension = depth + np (parameters unconstrained). *)

val domain_rows : np:int -> depth:int -> int list list -> Poly.t
(** Domain from inequality rows (width depth+np+1). *)

val schedule_2d1 : np:int -> depth:int -> beta:int list -> Emsc_linalg.Mat.t
(** Classic 2d+1 schedule: [beta] has [depth+1] syntactic positions;
    rows alternate constant-position rows and iterator rows. *)

val stmt :
  id:int -> name:string -> np:int -> depth:int ->
  ?iter_names:string array ->
  domain:Poly.t ->
  ?writes:Prog.access list ->
  ?reads:Prog.access list ->
  ?body:(Prog.access * Prog.expr) ->
  beta:int list ->
  unit -> Prog.stmt

val array2 : string -> int -> int -> np:int -> Prog.array_decl
(** Rank-2 array with constant extents. *)

val array1 : string -> int -> np:int -> Prog.array_decl

val array_p : string -> int list list -> Prog.array_decl
(** Array whose extents are affine rows over the parameters
    (width np+1 each). *)

(** Polyhedral program IR.

    A program (the paper's "program block") is a set of statements,
    each with an iteration domain, affine array accesses, an executable
    body, and an affine schedule.  Dimension convention for a statement
    of depth [d] in a program with [np] parameters: vectors over the
    statement's space have width [d + np + 1] — iterator columns first,
    then parameter columns, then the constant. *)

open Emsc_linalg
open Emsc_poly

type access_kind = Read | Write

type access = {
  array : string;
  kind : access_kind;
  map : Mat.t;
      (** rows = array rank; cols = depth + nparams + 1 *)
}

(** Executable statement bodies, interpreted over float arrays. *)
type expr =
  | Eref of access  (** read the array element the access maps to *)
  | Eiter of int    (** value of the i-th surrounding iterator *)
  | Eparam of int   (** value of the i-th program parameter *)
  | Econst of float
  | Eneg of expr
  | Eabs of expr
  | Eadd of expr * expr
  | Esub of expr * expr
  | Emul of expr * expr
  | Ediv of expr * expr
  | Emin of expr * expr
  | Emax of expr * expr

type stmt = {
  id : int;
  name : string;
  depth : int;
  domain : Poly.t;   (** dimension [depth + nparams] *)
  iter_names : string array;
  writes : access list;  (** usually one *)
  reads : access list;
  body : (access * expr) option;
      (** [lhs, rhs]; [None] for analysis-only statements *)
  schedule : Mat.t;
      (** rows = schedule depth (uniform per program after padding);
          cols = depth + nparams + 1 *)
}

type array_decl = {
  array_name : string;
  rank : int;
  extents : Vec.t array;
      (** per-dimension extent, affine in parameters: width nparams+1;
          dimension [k] is indexed [0 .. extent_k - 1] *)
}

type t = {
  params : string array;
  arrays : array_decl list;
  stmts : stmt list;
}

val nparams : t -> int
val find_array : t -> string -> array_decl
val find_stmt : t -> int -> stmt
val accesses : stmt -> access list
(** writes @ reads *)

val all_accesses_to : t -> string -> (stmt * access) list

val mk_access :
  array:string -> kind:access_kind -> rows:int list list -> access
(** Rows given as int lists of width depth+nparams+1. *)

val validate : t -> (unit, string) result
(** Structural checks: dimensions of domains, access maps, schedules,
    and array ranks are mutually consistent; referenced arrays are
    declared. *)

val max_schedule_rows : t -> int
val pad_schedules : t -> t
(** Pad every schedule with zero rows up to the maximum, so
    lexicographic comparison is well-defined across statements. *)

val stmt_param_start : stmt -> int
(** Column index where parameter coefficients start (= depth). *)

val pp_access : Format.formatter -> access -> unit
val pp_stmt : t -> Format.formatter -> stmt -> unit
val pp : Format.formatter -> t -> unit

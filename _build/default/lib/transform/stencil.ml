open Emsc_arith
open Emsc_ir
open Emsc_codegen

type kernel = {
  ast : Ast.stm list;
  local_ref : Prog.stmt -> Prog.access -> Ast.ref_expr option;
  locals : string list;
  smem_words : int;
  time_tiles : int;
  result_array : string;
}

let v = Ast.var
let i_ = Ast.int_

let loop ?(par = Ast.Seq) ?(step = 1) var ~lb ~ub body =
  Ast.Loop
    { var; lb = Ast.simplify lb; ub = Ast.simplify ub;
      step = Zint.of_int step; par; body }

let find_stencil_stmts (p : Prog.t) =
  match p.Prog.stmts with
  | [ s1; s2 ] -> (s1, s2)
  | _ -> invalid_arg "Stencil: expected the update + copy-back pair"

(* One time tile = one launch.  Blocks read the halo'd window from
   [src], run [tt] local steps in scratchpad (recomputing halo cells)
   and write their own cells to [dst]; ping-ponging [src]/[dst] across
   launches keeps concurrent blocks from racing on the halo. *)
let time_tile_launch ~n ~steps ~ts ~tt ~s1_id ~t_tile ~src ~dst =
  let lidx c = Ast.simplify Ast.(c -: v "s0" +: i_ tt) in
  let lref name idx : Ast.ref_expr = { array = name; indices = [| idx |] } in
  let move_in =
    loop ~par:Ast.Thread "c"
      ~lb:(Ast.Max [ i_ 0; Ast.(v "s0" -: i_ tt) ])
      ~ub:(Ast.Min [ i_ (n - 1); Ast.(v "s0" +: i_ (ts - 1 + tt)) ])
      [ Ast.Copy
          { dst = lref "l_cur" (lidx (v "c"));
            src = { array = src; indices = [| v "c" |] } } ]
  in
  let move_out =
    loop ~par:Ast.Thread "c" ~lb:(v "s0")
      ~ub:(Ast.Min [ i_ (n - 2); Ast.(v "s0" +: i_ (ts - 1)) ])
      [ Ast.Copy
          { dst = { array = dst; indices = [| v "c" |] };
            src = lref "l_cur" (lidx (v "c")) } ]
  in
  (* cells 0 and n-1 are fixed boundary values: the destination array
     must carry them forward for the next tile's halo loads *)
  let copy_boundary =
    List.concat_map (fun c ->
      [ Ast.Copy
          { dst = { array = dst; indices = [| i_ c |] };
            src = { array = src; indices = [| i_ c |] } } ])
      [ 0; n - 1 ]
  in
  let steps_here = min tt (steps - (t_tile * tt)) in
  let clb tl = Ast.Max [ i_ 1; Ast.simplify Ast.(v "s0" -: i_ tt +: tl +: i_ 1) ] in
  let cub tl =
    Ast.Min [ i_ (n - 2); Ast.simplify Ast.(v "s0" +: i_ (ts + tt - 2) -: tl) ]
  in
  let inner_time =
    loop "tl" ~lb:(i_ 0) ~ub:(i_ (steps_here - 1))
      [ loop ~par:Ast.Thread "i" ~lb:(clb (v "tl")) ~ub:(cub (v "tl"))
          [ Ast.Stmt_call
              { stmt_id = s1_id;
                iter_args =
                  [| Ast.simplify Ast.(i_ (t_tile * tt) +: v "tl"); v "i" |] } ];
        Ast.Sync;
        loop ~par:Ast.Thread "i" ~lb:(clb (v "tl")) ~ub:(cub (v "tl"))
          [ Ast.Copy
              { dst = lref "l_cur" (lidx (v "i"));
                src = lref "l_nxt" (lidx (v "i")) } ];
        Ast.Sync ]
  in
  loop ~par:Ast.Block ~step:ts "s0" ~lb:(i_ 1) ~ub:(i_ (n - 2))
    ([ move_in; Ast.Fence; inner_time; Ast.Fence; move_out ]
     @ [ Ast.Guard ([ Ast.simplify Ast.(i_ 1 -: v "s0") ], copy_boundary) ])

let overlapped_1d ~n ~steps ~ts ~tt (p : Prog.t) =
  if ts <= 0 || tt <= 0 then invalid_arg "Stencil.overlapped_1d: tile sizes";
  let s1, _s2 = find_stencil_stmts p in
  let width = ts + (2 * tt) in
  let time_tiles = (steps + tt - 1) / tt in
  let ast =
    List.init time_tiles (fun t_tile ->
      let src = if t_tile mod 2 = 0 then "cur" else "nxt" in
      let dst = if t_tile mod 2 = 0 then "nxt" else "cur" in
      time_tile_launch ~n ~steps ~ts ~tt ~s1_id:s1.Prog.id ~t_tile ~src ~dst)
  in
  let local_ref (s : Prog.stmt) (a : Prog.access) =
    if s.Prog.id <> s1.Prog.id then None
    else begin
      let buffer =
        match a.Prog.kind with
        | Prog.Write -> "l_nxt"
        | Prog.Read -> "l_cur"
      in
      let names k = s.Prog.iter_names.(k) in
      let subscript = Ast.vec_to_aexpr ~names a.Prog.map.(0) in
      Some
        { Ast.array = buffer;
          indices = [| Ast.simplify Ast.(subscript -: v "s0" +: i_ tt) |] }
    end
  in
  { ast; local_ref; locals = [ "l_cur"; "l_nxt" ]; smem_words = 2 * width;
    time_tiles;
    result_array = (if time_tiles mod 2 = 0 then "cur" else "nxt") }

let dram_1d ~n ~steps ~ts (p : Prog.t) =
  let s1, s2 = find_stencil_stmts p in
  let body_loop stmt_id =
    loop ~par:Ast.Block ~step:ts "s0" ~lb:(i_ 1) ~ub:(i_ (n - 2))
      [ loop ~par:Ast.Thread "i" ~lb:(v "s0")
          ~ub:(Ast.Min [ i_ (n - 2); Ast.(v "s0" +: i_ (ts - 1)) ])
          [ Ast.Stmt_call { stmt_id; iter_args = [| v "t"; v "i" |] } ];
        Ast.Sync ]
  in
  let ast =
    [ loop "t" ~lb:(i_ 0) ~ub:(i_ (steps - 1))
        [ body_loop s1.Prog.id; body_loop s2.Prog.id ] ]
  in
  { ast; local_ref = (fun _ _ -> None); locals = []; smem_words = 0;
    time_tiles = steps; result_array = "cur" }

(** The tile-size search of Section 4.3.

    Minimizes the data-movement cost
    [C = Σ_k N_k · (P·S + V_k·L / P)]
    over tile sizes [t], subject to (1) [1 <= t_i <= N_i],
    (2) [Σ_i M_i(t) <= M_up] (scratchpad capacity) and (3)
    [Π t_i >= P] (enough work to keep the inner-level processes busy).

    Following the paper, the integer program is relaxed to the reals,
    minimized (penalty formulation + Nelder–Mead standing in for SQP)
    and rounded; a discrete neighbourhood refinement then repairs any
    rounding loss.  All model quantities (buffer footprints M_i,
    movement occurrence counts N_k, volumes V_k) come from the actual
    Section 3 pipeline evaluated at each candidate. *)

open Emsc_ir

type candidate = {
  t : int array;
  cost : float;
  footprint : int;  (** scratchpad words at these tile sizes *)
}

type problem = {
  ranges : (int * int) array;  (** inclusive per-dimension range *)
  mem_limit_words : int;
  threads : float;             (** P *)
  sync_cost : float;           (** S *)
  transfer_cost : float;       (** L *)
  evaluate : int array -> (float * int) option;
      (** [t -> Some (movement_cost, footprint_words)], [None] when the
          pipeline cannot handle the candidate *)
}

val search : ?max_evals:int -> ?snap_pow2:bool -> problem -> candidate option
(** Best feasible candidate found, or [None] if none is feasible.
    [snap_pow2] restricts candidates to powers of two, the practical
    choice on warp-based hardware (and the paper's candidate set). *)

val pipeline_problem :
  prog:Prog.t ->
  spec_of:(int array -> Tile.spec) ->
  ranges:(int * int) array ->
  mem_limit_words:int ->
  threads:float ->
  sync_cost:float ->
  transfer_cost:float ->
  unit -> problem
(** Problem whose evaluator runs the real pipeline: tile program →
    Section 3 plan → buffer footprints, movement occurrences
    ({!Tile.movement_profile}) and Vin/Vout volume bounds. *)

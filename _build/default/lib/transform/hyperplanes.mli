(** Tiling-hyperplane search — the role of Bondhugula et al.'s
    framework [7] in the paper.

    We search small-coefficient hyperplanes common to all statements
    of equal depth.  A hyperplane [h] is legal when every dependence
    has a non-negative component along it ([h . target - h . source >=
    0] over the dependence polyhedron, checked by exact ILP); it is
    communication-free ("space") when the component is exactly zero
    for every dependence.  Legal mutually-independent hyperplanes
    form a permutable band, ordered space-first then by increasing
    communication volume — precisely the structure Section 4.1 tiles. *)

open Emsc_linalg
open Emsc_ir

type band = {
  hyperplanes : Vec.t list;
      (** iterator-coefficient vectors, length = depth; in order *)
  parallel : bool list;
      (** per hyperplane: communication-free? *)
}

val dep_component_bounds :
  Prog.t -> Deps.t -> Vec.t -> Emsc_arith.Zint.t option * Emsc_arith.Zint.t option
(** (min, max) of [h.target - h.source] over the dependence polyhedron;
    [None] = unbounded on that side. *)

val is_legal : Prog.t -> Deps.t list -> Vec.t -> bool
val is_parallel : Prog.t -> Deps.t list -> Vec.t -> bool

val find_band : ?max_coeff:int -> Prog.t -> Deps.t list -> band
(** Greedy search over coefficient vectors with entries in
    [-max_coeff, max_coeff] (default 1), preferring parallel
    hyperplanes, then low communication; stops when [depth]
    linearly-independent hyperplanes are found or none is legal.
    Requires all statements to share one depth.
    The resulting matrix is completed to full rank; rows are returned
    space-first. *)

val transform_matrix : band -> depth:int -> Mat.t option
(** The band's rows as a square matrix if it is full and unimodular
    (|det| = 1), which is what {!Tile.apply_unimodular} needs. *)

lib/transform/stencil.ml: Array Ast Emsc_arith Emsc_codegen Emsc_ir List Prog Zint

lib/transform/tile.mli: Ast Emsc_codegen Emsc_ir Emsc_linalg Emsc_poly Mat Prog

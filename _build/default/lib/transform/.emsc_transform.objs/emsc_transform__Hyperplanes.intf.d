lib/transform/hyperplanes.mli: Deps Emsc_arith Emsc_ir Emsc_linalg Mat Prog Vec

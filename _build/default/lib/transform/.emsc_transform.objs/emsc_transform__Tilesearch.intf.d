lib/transform/tilesearch.mli: Emsc_ir Prog Tile

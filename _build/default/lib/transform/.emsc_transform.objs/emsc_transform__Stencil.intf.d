lib/transform/stencil.mli: Ast Emsc_codegen Emsc_ir Prog

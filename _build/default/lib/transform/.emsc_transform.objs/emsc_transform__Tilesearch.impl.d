lib/transform/tilesearch.ml: Alloc Array Emsc_arith Emsc_core Emsc_optim Float Hashtbl List Movement Neldermead Plan Tile Zint

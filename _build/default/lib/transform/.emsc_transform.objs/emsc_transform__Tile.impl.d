lib/transform/tile.ml: Array Ast Emsc_arith Emsc_codegen Emsc_ir Emsc_linalg Emsc_poly List Mat Option Poly Prog Q Vec Zint

lib/transform/hyperplanes.ml: Array Deps Emsc_arith Emsc_ir Emsc_linalg Emsc_pip Ilp List Mat Prog Vec Zint

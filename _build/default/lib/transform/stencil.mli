(** Overlapped (halo) time tiling for 1-D stencils — our realization of
    the concurrent-start treatment the paper takes from Krishnamoorthy
    et al., PLDI'07 [27].

    Plain skewed time tiling serializes tiles along the wavefront;
    [27] modifies the tiled code so all processors start concurrently.
    Overlapped tiling achieves the same concurrency: every space tile
    loads a halo of [tt] cells on each side, performs [tt] local time
    steps in scratchpad (recomputing halo cells redundantly), and
    writes back only its own cells, so all blocks run independently
    within a time tile and synchronize globally between time tiles —
    the execution structure of the paper's Jacobi experiments
    (Figures 5, 7, 8). *)

open Emsc_ir
open Emsc_codegen

type kernel = {
  ast : Ast.stm list;
  local_ref : Prog.stmt -> Prog.access -> Ast.ref_expr option;
      (** rewrite of the stencil statement's accesses into the
          scratchpad buffers, for the executor *)
  locals : string list;   (** scratchpad buffer names *)
  smem_words : int;       (** per-block scratchpad footprint *)
  time_tiles : int;       (** number of launches (global syncs) *)
  result_array : string;
      (** global array holding the final values: time tiles ping-pong
          between [cur] and [nxt] so concurrently-running blocks never
          read cells another block writes in the same launch *)
}

val overlapped_1d :
  n:int -> steps:int -> ts:int -> tt:int -> Prog.t -> kernel
(** [overlapped_1d ~n ~steps ~ts ~tt p] tiles the two-statement Jacobi
    program from {!Emsc_kernels.Jacobi1d.program} (update + copy-back)
    with space tiles of [ts] interior cells and time tiles of [tt]
    steps.  The copy-back statement becomes a scratchpad-to-scratchpad
    copy; the temporary array [nxt] is never written back to global
    memory (the Section 3.1.4 liveness refinement). *)

val dram_1d : n:int -> steps:int -> ts:int -> Prog.t -> kernel
(** Baseline without scratchpad: same block decomposition, every
    access goes to global memory, one launch per time step. *)

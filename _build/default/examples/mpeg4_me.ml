(* Mpeg4 motion estimation on the simulated GPU.

     dune exec examples/mpeg4_me.exe

   Builds the Figure 2 kernel, applies the multi-level tiling of
   Section 4 with the paper's tile sizes, buffers the sliding windows
   in scratchpad, verifies the transformed code against the reference
   executor at a small frame, and projects execution times for a large
   frame with and without scratchpad staging. *)

open Emsc_arith
open Emsc_core
open Emsc_transform
open Emsc_machine
open Emsc_kernels

let no_params name = failwith name
let zero_env _ = Zint.zero
let gpu = Config.gtx8800

let spec ~ni ~nj (ti, tj, tk, tl) =
  [| { Tile.block = Some ((ni + 7) / 8); mem = Some ti; thread = None };
     { Tile.block = Some ((nj + 3) / 4); mem = Some tj; thread = None };
     { Tile.block = None; mem = Some tk; thread = None };
     { Tile.block = None; mem = Some tl; thread = None } |]

let build ~ni ~nj ~ws ~tiles ~smem =
  let p = Me.program ~ni ~nj ~ws in
  let sp = spec ~ni ~nj tiles in
  let tp = Tile.tile_program p sp in
  let plan =
    Plan.plan_block ~arch:`Gpu ~param_context:(Tile.origin_context p sp) tp
  in
  let movement =
    if smem then
      List.map (fun (b : Plan.buffered) -> (b.Plan.move_in, b.Plan.move_out))
        plan.Plan.buffered
    else []
  in
  (p, tp, plan, Tile.generate p sp ~movement)

let () =
  (* 1. correctness at a small frame *)
  let ni = 32 and nj = 32 and ws = 8 in
  let p, tp, plan, ast = build ~ni ~nj ~ws ~tiles:(8, 8, 8, 8) ~smem:true in
  let init =
    [ ("cur", fun idx -> float_of_int (((idx.(0) * 13) + idx.(1)) mod 31));
      ("refb", fun idx -> float_of_int (((idx.(0) * 5) + (idx.(1) * 3)) mod 23));
      ("sad", fun _ -> 0.0) ]
  in
  let m_ref = Memory.create p ~param_env:no_params in
  List.iter (fun (a, f) -> Memory.fill m_ref a f) init;
  let (_ : Exec.counters) = Reference.run p ~param_env:no_params m_ref () in
  let m = Memory.create p ~param_env:no_params in
  List.iter (fun (a, f) -> Memory.fill m a f) init;
  List.iter (fun (b : Plan.buffered) ->
    Memory.declare_local m b.Plan.buffer.Alloc.local_name)
    plan.Plan.buffered;
  let r =
    Exec.run ~prog:tp ~local_ref:(Plan.local_ref plan) ~param_env:no_params
      ~memory:m ~mode:Exec.Full ast
  in
  Printf.printf "correctness (%dx%d, ws=%d): %s\n" ni nj ws
    (if Memory.arrays_equal m_ref m "sad" then "OK" else "MISMATCH");
  Printf.printf "global words: %.0f, scratchpad words: %.0f\n\n"
    (Exec.total_global r.Exec.totals)
    (Exec.total_smem r.Exec.totals);

  (* 2. projected times at a 2048x2048 frame *)
  let ni = 2048 and nj = 2048 and ws = 16 in
  let project ~smem =
    let _, tp, plan, ast = build ~ni ~nj ~ws ~tiles:(32, 16, 16, 16) ~smem in
    let m = Memory.create_phantom (Me.program ~ni ~nj ~ws) ~param_env:no_params in
    List.iter (fun (b : Plan.buffered) ->
      Memory.declare_local m b.Plan.buffer.Alloc.local_name)
      plan.Plan.buffered;
    let local_ref = if smem then Some (Plan.local_ref plan) else None in
    let r =
      Exec.run ~prog:tp ?local_ref ~param_env:no_params ~memory:m
        ~mode:(Exec.Sampled 6) ast
    in
    let fp =
      if smem then
        Zint.to_int_exn (Plan.total_footprint plan zero_env)
        * gpu.Config.word_bytes
      else 0
    in
    Timing.gpu_total_ms gpu
      { Timing.threads = 256; smem_bytes_per_block = fp;
        coalesce_eff = (if smem then 16.0 else 4.0); global_sync = false;
        double_buffer = false }
      r
  in
  let t_smem = project ~smem:true in
  let t_dram = project ~smem:false in
  Printf.printf "projected time at %dx%d (ws %d), tiles (32,16,16,16):\n" ni nj
    ws;
  Printf.printf "  with scratchpad staging : %8.1f ms\n" t_smem;
  Printf.printf "  global memory only      : %8.1f ms  (%.1fx slower)\n" t_dram
    (t_dram /. t_smem)

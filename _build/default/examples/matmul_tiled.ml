(* Matrix multiplication through the whole pipeline.

     dune exec examples/matmul_tiled.exe

   Dependence analysis -> hyperplane band (i and j parallel, k
   sequential) -> multi-level tiling -> scratchpad buffers with
   hoisted movement for the accumulator -> verified execution. *)

open Emsc_ir
open Emsc_codegen
open Emsc_core
open Emsc_transform
open Emsc_machine
open Emsc_kernels

let no_params name = failwith name

let () =
  let n = 32 in
  let p = Matmul.program ~n in

  (* 1. what parallelism is there? *)
  let deps = Deps.analyze p in
  let band = Hyperplanes.find_band p deps in
  Format.printf "hyperplane band (space loops first):@.";
  List.iteri (fun k h ->
    Format.printf "  %a %s@." Emsc_linalg.Vec.pp h
      (if List.nth band.Hyperplanes.parallel k then "(parallel)"
       else "(sequential)"))
    band.Hyperplanes.hyperplanes;

  (* 2. tile: i, j across blocks; k sub-tiled to bound the buffers *)
  let spec =
    [| { Tile.block = Some 16; mem = None; thread = Some 4 };
       { Tile.block = Some 16; mem = None; thread = Some 4 };
       { Tile.block = None; mem = Some 8; thread = None } |]
  in
  let tp = Tile.tile_program p spec in
  let plan =
    Plan.plan_block ~arch:`Cell ~param_context:(Tile.origin_context p spec) tp
  in
  List.iter (fun (b : Plan.buffered) ->
    Format.printf "buffer %s: sizes %a@." b.Plan.buffer.Alloc.local_name
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " x ")
         Ast.pp_aexpr)
      (Array.to_list (Alloc.size_exprs b.Plan.buffer)))
    plan.Plan.buffered;

  let movement =
    List.map (fun (b : Plan.buffered) -> (b.Plan.move_in, b.Plan.move_out))
      plan.Plan.buffered
  in
  let ast = Tile.generate p spec ~movement in
  Format.printf "@.generated kernel (movement for C hoisted above kM):@.%a@.@."
    Ast.pp_block ast;

  (* 3. verify against the reference *)
  let init =
    [ ("A", fun idx -> float_of_int (((idx.(0) * 7) + idx.(1)) mod 13));
      ("B", fun idx -> float_of_int (((idx.(0) * 3) + (idx.(1) * 5)) mod 11));
      ("C", fun _ -> 0.0) ]
  in
  let m_ref = Memory.create p ~param_env:no_params in
  List.iter (fun (a, f) -> Memory.fill m_ref a f) init;
  let (_ : Exec.counters) = Reference.run p ~param_env:no_params m_ref () in
  let m = Memory.create p ~param_env:no_params in
  List.iter (fun (a, f) -> Memory.fill m a f) init;
  List.iter (fun (b : Plan.buffered) ->
    Memory.declare_local m b.Plan.buffer.Alloc.local_name)
    plan.Plan.buffered;
  let r =
    Exec.run ~prog:tp ~local_ref:(Plan.local_ref plan) ~param_env:no_params
      ~memory:m ~mode:Exec.Full ast
  in
  Printf.printf "result: %s\n"
    (if Memory.arrays_equal m_ref m "C" then "matches reference"
     else "MISMATCH");
  Printf.printf "global words: %.0f (untiled would move %d)\n"
    (Exec.total_global r.Exec.totals)
    (4 * n * n * n)

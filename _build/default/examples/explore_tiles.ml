(* The Section 4.3 tile-size search, visualized.

     dune exec examples/explore_tiles.exe

   Runs the constrained data-movement-cost minimization for the
   motion-estimation kernel over its memory-level tile sizes and
   prints the model's landscape next to the search result. *)

open Emsc_transform
open Emsc_kernels

let ni = 1024
let nj = 1024
let ws = 16
let threads = 256.0
let smem_words = 4096 (* 16 KB / 4-byte words *)

let spec (ti, tj) =
  [| { Tile.block = Some (ni / 8); mem = Some ti; thread = None };
     { Tile.block = Some (nj / 4); mem = Some tj; thread = None };
     { Tile.block = None; mem = Some ws; thread = None };
     { Tile.block = None; mem = Some ws; thread = None } |]

let () =
  let prog = Me.program ~ni ~nj ~ws in
  let problem =
    Tilesearch.pipeline_problem ~prog
      ~spec_of:(fun t -> spec (t.(0), t.(1)))
      ~ranges:[| (8, 64); (8, 64) |]
      ~mem_limit_words:smem_words ~threads ~sync_cost:40.0 ~transfer_cost:4.0
      ()
  in
  Format.printf "movement-cost model over (t_i, t_j), X = over 16 KB:@.@.";
  Format.printf "%8s" "";
  List.iter (fun tj -> Format.printf " %10d" tj) [ 8; 16; 32; 64 ];
  Format.printf "@.";
  List.iter (fun ti ->
    Format.printf "%8d" ti;
    List.iter (fun tj ->
      match problem.Tilesearch.evaluate [| ti; tj |] with
      | Some (cost, fp) when fp <= smem_words -> Format.printf " %10.0f" cost
      | Some _ -> Format.printf " %10s" "X"
      | None -> Format.printf " %10s" "?")
      [ 8; 16; 32; 64 ];
    Format.printf "@.")
    [ 8; 16; 32; 64 ];
  match Tilesearch.search ~max_evals:60 ~snap_pow2:true problem with
  | Some c ->
    Format.printf
      "@.search picks (t_i, t_j) = (%d, %d): cost %.0f, %d words of \
       scratchpad@."
      c.Tilesearch.t.(0)
      c.Tilesearch.t.(1)
      c.Tilesearch.cost c.Tilesearch.footprint
  | None -> Format.printf "@.nothing feasible?!@."

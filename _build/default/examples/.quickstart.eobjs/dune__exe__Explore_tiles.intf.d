examples/explore_tiles.mli:

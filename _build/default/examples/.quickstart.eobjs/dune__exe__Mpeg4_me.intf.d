examples/mpeg4_me.mli:

examples/quickstart.ml: Alloc Array Ast Emsc_codegen Emsc_core Emsc_ir Emsc_lang Format List Plan Prog Reuse String

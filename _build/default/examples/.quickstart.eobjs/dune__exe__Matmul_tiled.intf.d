examples/matmul_tiled.mli:

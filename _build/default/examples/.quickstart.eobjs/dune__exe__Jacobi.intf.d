examples/jacobi.mli:

examples/explore_tiles.ml: Array Emsc_kernels Emsc_transform Format List Me Tile Tilesearch

examples/jacobi.ml: Array Config Deps Emsc_ir Emsc_kernels Emsc_linalg Emsc_machine Emsc_transform Exec Float Format Hyperplanes Jacobi1d List Memory Printf Reference Stencil Timing

examples/quickstart.mli:

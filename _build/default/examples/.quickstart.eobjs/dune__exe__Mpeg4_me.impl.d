examples/mpeg4_me.ml: Alloc Array Config Emsc_arith Emsc_core Emsc_kernels Emsc_machine Emsc_transform Exec List Me Memory Plan Printf Reference Tile Timing Zint

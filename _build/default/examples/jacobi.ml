(* Time-tiled 1-D Jacobi with concurrent start.

     dune exec examples/jacobi.exe

   Shows the hyperplane search discovering the skewed permutable band
   of the time-expanded stencil, then runs the overlapped (halo) tiled
   kernel — the paper's [27] treatment — and verifies it against the
   reference executor before projecting large-size execution times. *)

open Emsc_ir
open Emsc_transform
open Emsc_machine
open Emsc_kernels

let no_params name = failwith name
let gpu = Config.gtx8800

let () =
  (* 1. the transform story: Jacobi needs skewing to tile *)
  let pex = Jacobi1d.program_expanded ~n:64 ~steps:8 in
  let band = Hyperplanes.find_band pex (Deps.analyze pex) in
  Format.printf "permutable band of the time-expanded stencil:@.";
  List.iter (fun h -> Format.printf "  %a@." Emsc_linalg.Vec.pp h)
    band.Hyperplanes.hyperplanes;

  (* 2. overlapped tiling: correctness *)
  let n = 4096 and steps = 64 and ts = 128 and tt = 16 in
  let p = Jacobi1d.program ~n ~steps in
  let k = Stencil.overlapped_1d ~n ~steps ~ts ~tt p in
  let init idx = sin (float_of_int idx.(0) /. 10.0) in
  let m_ref = Memory.create p ~param_env:no_params in
  Memory.fill m_ref "cur" init;
  let (_ : Exec.counters) = Reference.run p ~param_env:no_params m_ref () in
  let m = Memory.create p ~param_env:no_params in
  Memory.fill m "cur" init;
  List.iter (Memory.declare_local m) k.Stencil.locals;
  let r =
    Exec.run ~prog:p ~local_ref:k.Stencil.local_ref ~param_env:no_params
      ~memory:m ~mode:Exec.Full k.Stencil.ast
  in
  let a = Memory.global_data m_ref "cur" in
  let b = Memory.global_data m k.Stencil.result_array in
  let ok = ref true in
  Array.iteri (fun i x ->
    if Float.abs (x -. b.(i)) > 1e-6 then ok := false)
    a;
  Printf.printf "\noverlapped tiling (n=%d, %d steps, ts=%d, tt=%d): %s\n" n
    steps ts tt
    (if !ok then "matches reference" else "MISMATCH");
  Printf.printf "scratchpad per block: %d words; launches: %d\n"
    k.Stencil.smem_words k.Stencil.time_tiles;
  Printf.printf "global words moved: %.0f (vs %.0f for the untiled version)\n"
    (Exec.total_global r.Exec.totals)
    (float_of_int (n * steps * 6));

  (* 3. projected times at 512k cells, 4096 steps *)
  let n = 524288 and steps = 4096 in
  let p = Jacobi1d.program ~n ~steps in
  let time_of kernel coalesce =
    let m = Memory.create_phantom p ~param_env:no_params in
    List.iter (Memory.declare_local m) kernel.Stencil.locals;
    let r =
      Exec.run ~prog:p ~local_ref:kernel.Stencil.local_ref
        ~param_env:no_params ~memory:m ~mode:(Exec.Sampled 6)
        kernel.Stencil.ast
    in
    Timing.gpu_total_ms gpu
      { Timing.threads = 64;
        smem_bytes_per_block =
          kernel.Stencil.smem_words * gpu.Config.word_bytes;
        coalesce_eff = coalesce; global_sync = true; double_buffer = false }
      r
  in
  let smem = time_of (Stencil.overlapped_1d ~n ~steps ~ts:256 ~tt:32 p) 16.0 in
  let dram = time_of (Stencil.dram_1d ~n ~steps ~ts:256 p) 3.5 in
  Printf.printf "\nprojected at n=512k, %d steps (ts=256, tt=32):\n" steps;
  Printf.printf "  scratchpad version  : %8.1f ms\n" smem;
  Printf.printf "  global-memory only  : %8.1f ms  (%.1fx slower)\n" dram
    (dram /. smem)

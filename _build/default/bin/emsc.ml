(* emsc — command-line driver.

     emsc analyze FILE     data-management plan: partitions, Algorithm 1
                           verdicts, buffer extents, movement code
     emsc deps FILE        dependence analysis
     emsc band FILE        tiling-hyperplane search
     emsc run FILE         execute the program on the reference
                           interpreter and print array checksums

   FILE is a program in the affine input language (see
   lib/lang/parser.mli); use '-' for stdin. *)

open Emsc_arith
open Emsc_ir
open Emsc_codegen
open Emsc_core
open Cmdliner

let read_input path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else begin
    let ic = open_in path in
    let s = In_channel.input_all ic in
    close_in ic;
    s
  end

let load path =
  match Emsc_lang.Parser.parse (read_input path) with
  | p -> p
  | exception Emsc_lang.Parser.Error e ->
    Printf.eprintf "parse error: %s\n" e;
    exit 1
  | exception Emsc_lang.Lexer.Error e ->
    Printf.eprintf "lex error: %s\n" e;
    exit 1

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let arch_arg =
  let parse = function
    | "gpu" -> Ok `Gpu
    | "cell" -> Ok `Cell
    | s -> Error (`Msg ("unknown architecture " ^ s))
  in
  let print fmt a =
    Format.pp_print_string fmt (match a with `Gpu -> "gpu" | `Cell -> "cell")
  in
  Arg.(value & opt (conv (parse, print)) `Gpu
       & info [ "arch" ] ~doc:"Target style: gpu (copy only beneficial \
                               partitions) or cell (copy everything).")

let merge_arg =
  Arg.(value & flag
       & info [ "merge-per-array" ]
           ~doc:"One buffer per array (the paper's Figure 1 style) instead \
                 of one per non-overlapping partition.")

let delta_arg =
  Arg.(value & opt float 0.3
       & info [ "delta" ] ~doc:"Overlap-volume threshold of Algorithm 1.")

let optmove_arg =
  Arg.(value & flag
       & info [ "optimize-movement" ]
           ~doc:"Apply the Section 3.1.4 dependence-based copy-set \
                 minimization.")

let analyze_cmd =
  let run file arch merge delta optimize_movement =
    let p = load file in
    let plan =
      Plan.plan_block ~arch ~merge_per_array:merge ~delta
        ~optimize_movement p
    in
    Format.printf "%a@." Plan.pp plan;
    List.iter (fun (b : Plan.buffered) ->
      let buf = b.Plan.buffer in
      Format.printf "@.// buffer %s, sizes %a@." buf.Alloc.local_name
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " x ")
           Ast.pp_aexpr)
        (Array.to_list (Alloc.size_exprs buf));
      Format.printf "/* data move-in code */@.%a@." Ast.pp_block b.Plan.move_in;
      Format.printf "/* data move-out code */@.%a@." Ast.pp_block
        b.Plan.move_out)
      plan.Plan.buffered
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Data-management plan for a program block")
    Term.(const run $ file_arg $ arch_arg $ merge_arg $ delta_arg
          $ optmove_arg)

let deps_cmd =
  let run file =
    let p = load file in
    let deps = Deps.analyze p in
    if deps = [] then print_endline "no dependences"
    else List.iter (fun d -> Format.printf "%a@." Deps.pp d) deps
  in
  Cmd.v (Cmd.info "deps" ~doc:"Polyhedral dependence analysis")
    Term.(const run $ file_arg)

let band_cmd =
  let run file =
    let p = load file in
    let deps = Deps.analyze p in
    match Emsc_transform.Hyperplanes.find_band p deps with
    | band ->
      List.iteri (fun k h ->
        Format.printf "h%d = %a%s@." k Emsc_linalg.Vec.pp h
          (if List.nth band.Emsc_transform.Hyperplanes.parallel k then
             "  (parallel / space loop)"
           else "  (sequential)"))
        band.Emsc_transform.Hyperplanes.hyperplanes
    | exception Invalid_argument e -> Printf.eprintf "band search: %s\n" e
  in
  Cmd.v
    (Cmd.info "band" ~doc:"Find the permutable tiling-hyperplane band")
    Term.(const run $ file_arg)

let run_cmd =
  let param_args =
    Arg.(value & opt_all (pair ~sep:'=' string int) []
         & info [ "p"; "param" ] ~docv:"NAME=VALUE"
             ~doc:"Give a program parameter a value (repeatable).")
  in
  let run file params =
    let p = load file in
    let env name =
      match List.assoc_opt name params with
      | Some v -> Zint.of_int v
      | None ->
        Printf.eprintf "parameter %s needs a value (use -p %s=N)\n" name name;
        exit 1
    in
    let m = Emsc_machine.Memory.create p ~param_env:env in
    (* deterministic pseudo-random inputs *)
    List.iter (fun (d : Prog.array_decl) ->
      Emsc_machine.Memory.fill m d.Prog.array_name (fun idx ->
        let h = Array.fold_left (fun acc i -> (acc * 31) + i) 17 idx in
        float_of_int (h mod 101) /. 101.0))
      p.Prog.arrays;
    let c = Emsc_machine.Reference.run p ~param_env:env m () in
    Printf.printf "executed: %.0f statement flops, %.0f loads, %.0f stores\n"
      c.Emsc_machine.Exec.flops c.Emsc_machine.Exec.g_ld
      c.Emsc_machine.Exec.g_st;
    List.iter (fun (d : Prog.array_decl) ->
      let data = Emsc_machine.Memory.global_data m d.Prog.array_name in
      let sum = Array.fold_left ( +. ) 0.0 data in
      Printf.printf "checksum %-10s = %.6f\n" d.Prog.array_name sum)
      p.Prog.arrays
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute on the reference interpreter")
    Term.(const run $ file_arg $ param_args)

let () =
  let info =
    Cmd.info "emsc"
      ~doc:"Explicitly-managed-scratchpad compiler (PPoPP'08 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ analyze_cmd; deps_cmd; band_cmd; run_cmd ]))

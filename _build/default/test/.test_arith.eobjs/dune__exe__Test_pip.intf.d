test/test_pip.mli:

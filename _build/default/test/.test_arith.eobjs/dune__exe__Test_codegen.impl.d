test/test_codegen.ml: Alcotest Array Ast Emsc_arith Emsc_codegen Emsc_linalg Emsc_poly List Poly QCheck QCheck_alcotest Scan Uset Vec Zint

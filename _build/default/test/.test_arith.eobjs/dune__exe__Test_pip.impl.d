test/test_pip.ml: Alcotest Array Bounds Count Emsc_arith Emsc_linalg Emsc_pip Emsc_poly Ilp List Poly QCheck QCheck_alcotest Vec Zint

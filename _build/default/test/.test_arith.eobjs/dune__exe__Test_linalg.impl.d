test/test_linalg.ml: Alcotest Array Emsc_arith Emsc_linalg List Mat Q QCheck QCheck_alcotest Vec Zint

test/test_optim.ml: Alcotest Array Emsc_core Emsc_kernels Emsc_optim Emsc_transform Float List Neldermead Printf Tile Tilesearch

test/test_machine.ml: Alcotest Array Ast Cache Config Emsc_codegen Emsc_ir Emsc_kernels Emsc_linalg Emsc_machine Emsc_transform Exec Fig1 List Matmul Memory Prog Reference Timing

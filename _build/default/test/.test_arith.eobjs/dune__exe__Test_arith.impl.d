test/test_arith.ml: Alcotest Emsc_arith Float List Printf Q QCheck QCheck_alcotest Zint

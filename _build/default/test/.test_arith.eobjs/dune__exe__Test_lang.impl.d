test/test_lang.ml: Alcotest Alloc Array Emsc_arith Emsc_codegen Emsc_core Emsc_ir Emsc_kernels Emsc_lang Emsc_linalg Emsc_machine Emsc_poly Float Lexer List Parser Plan Poly Printf Prog Vec Zint

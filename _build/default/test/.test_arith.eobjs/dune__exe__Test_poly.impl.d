test/test_poly.ml: Alcotest Array Count Emsc_arith Emsc_linalg Emsc_poly List Mat Option Poly Q QCheck QCheck_alcotest Simplex Uset Vec Zint

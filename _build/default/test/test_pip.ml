(* Integer linear programming (branch & bound) and parametric bounds. *)

open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_pip

let vi = Vec.of_ints

let box2 (xl, xh) (yl, yh) =
  Poly.of_ineqs ~dim:2
    [ [ 1; 0; -xl ]; [ -1; 0; xh ]; [ 0; 1; -yl ]; [ 0; -1; yh ] ]

let test_ilp_basic () =
  (* min x + y over the box [2,9] x [3,9] *)
  let p = box2 (2, 9) (3, 9) in
  match Ilp.minimize p (vi [ 1; 1; 0 ]) with
  | Ilp.Opt (v, pt) ->
    Alcotest.(check int) "optimum" 5 (Zint.to_int_exn v);
    Alcotest.(check bool) "witness in set" true (Poly.contains_point p pt)
  | _ -> Alcotest.fail "expected optimum"

let test_ilp_fractional_gap () =
  (* max x s.t. 2x <= 9: LP says 9/2, ILP must say 4 *)
  let p = Poly.of_ineqs ~dim:1 [ [ -2; 9 ]; [ 1; 0 ] ] in
  match Ilp.maximize p (vi [ 1; 0 ]) with
  | Ilp.Opt (v, _) -> Alcotest.(check int) "ilp max" 4 (Zint.to_int_exn v)
  | _ -> Alcotest.fail "expected optimum"

let test_ilp_empty () =
  let p = Poly.of_ineqs ~dim:1 [ [ 1; -5 ]; [ -1; 3 ] ] in
  Alcotest.(check bool) "empty" true (Ilp.minimize p (vi [ 1; 0 ]) = Ilp.Empty)

let test_ilp_rational_only () =
  (* 3x - 3y = 1 has rational points but no integer point (gcd test
     catches it); and 2x = 2y + 1 via inequalities only *)
  let p =
    Poly.of_ineqs ~dim:2 [ [ 2; -2; -1 ]; [ -2; 2; 1 ]; [ 1; 0; 0 ];
                           [ -1; 0; 10 ]; [ 0; 1; 0 ]; [ 0; -1; 10 ] ]
  in
  Alcotest.(check bool) "integrally empty" true (Ilp.is_int_empty p)

let test_ilp_unbounded () =
  let p = Poly.of_ineqs ~dim:1 [ [ 1; 0 ] ] in
  Alcotest.(check bool) "unbounded above" true
    (Ilp.maximize p (vi [ 1; 0 ]) = Ilp.Unbounded)

let test_int_point () =
  let tri = Poly.of_ineqs ~dim:2 [ [ 0; 1; 0 ]; [ 1; -1; 0 ]; [ -1; 0; 4 ] ] in
  (match Ilp.int_point tri with
   | Some pt -> Alcotest.(check bool) "in set" true (Poly.contains_point tri pt)
   | None -> Alcotest.fail "triangle has points");
  Alcotest.(check bool) "empty has none" true
    (Ilp.int_point (Poly.bottom 2) = None)

let test_lexmin () =
  let p = box2 (3, 7) (2, 9) in
  match Ilp.lexmin p with
  | Some pt -> Alcotest.(check (list int)) "lexmin" [ 3; 2 ] (Vec.to_ints_exn pt)
  | None -> Alcotest.fail "expected lexmin"

let test_lexmin_skewed () =
  (* x + y >= 10, 0 <= x,y <= 10: lexmin = (0, 10) *)
  let p =
    Poly.of_ineqs ~dim:2
      [ [ 1; 1; -10 ]; [ 1; 0; 0 ]; [ -1; 0; 10 ]; [ 0; 1; 0 ]; [ 0; -1; 10 ] ]
  in
  match Ilp.lexmin p with
  | Some pt -> Alcotest.(check (list int)) "lexmin" [ 0; 10 ] (Vec.to_ints_exn pt)
  | None -> Alcotest.fail "expected lexmin"

(* --- parametric bounds --------------------------------------------------- *)

let test_loop_bounds_triangle () =
  (* { (i, j) : 0 <= i <= 9, i <= j <= 9 } *)
  let p = Poly.of_ineqs ~dim:2 [ [ 1; 0; 0 ]; [ -1; 0; 9 ]; [ -1; 1; 0 ]; [ 0; -1; 9 ] ] in
  let levels = Bounds.loop_bounds p in
  Alcotest.(check int) "two levels" 2 (Array.length levels);
  (* level 1: j >= i (coefficient form), j <= 9 *)
  let { Bounds.lowers; uppers } = levels.(1) in
  Alcotest.(check bool) "has i-dependent lower bound" true
    (List.exists (fun (a, e) ->
       Zint.is_one a && Zint.to_int_exn e.(0) = 1 (* -e = i => e has +1? *)
       || Zint.is_one a && Zint.to_int_exn e.(0) = -1)
       lowers);
  Alcotest.(check bool) "has constant upper 9" true
    (List.exists (fun (a, e) ->
       Zint.is_one a && Zint.is_zero e.(0) && Zint.to_int_exn e.(2) = 9)
       uppers)

let test_bounds_scan_equivalence () =
  (* the bound trees must describe exactly the set: re-enumerate *)
  let p =
    Poly.of_ineqs ~dim:2
      [ [ 1; 0; 2 ]; [ -1; 0; 6 ]; [ -2; 1; 3 ]; [ 0; -1; 11 ] ]
  in
  (* dim0 in [-2, 6]; dim1 in [2*d0 - 3, 11] *)
  let levels = Bounds.loop_bounds p in
  let count = ref 0 in
  let l1 = levels.(1) in
  (* evaluate bounds by substitution *)
  let eval_bound (a, (e : Vec.t)) env_d0 ~lower =
    (* e over (d0, d1(zeroed), const) *)
    let v = Zint.add (Zint.mul e.(0) env_d0) e.(2) in
    if lower then Zint.cdiv (Zint.neg v) a else Zint.fdiv v a
  in
  for d0 = -2 to 6 do
    let z0 = Zint.of_int d0 in
    let lo1 =
      List.fold_left (fun acc b ->
        Zint.max acc (eval_bound b z0 ~lower:true))
        (Zint.of_int min_int) l1.Bounds.lowers
    in
    let hi1 =
      List.fold_left (fun acc b ->
        Zint.min acc (eval_bound b z0 ~lower:false))
        (Zint.of_int max_int) l1.Bounds.uppers
    in
    let v = ref lo1 in
    while Zint.compare !v hi1 <= 0 do
      incr count;
      v := Zint.add !v Zint.one
    done
  done;

  (match Count.count_poly p with
   | Count.Exact n -> Alcotest.(check int) "same cardinality"
       (Zint.to_int_exn n) !count
   | _ -> Alcotest.fail "count failed")

(* --- properties ----------------------------------------------------------- *)

let prop_ilp_vs_enumeration =
  QCheck.Test.make ~name:"ilp min matches brute force" ~count:60
    QCheck.(quad (int_range (-6) 6) (int_range 0 6) (int_range (-6) 6)
              (int_range 0 6))
    (fun (xl, w, yl, h) ->
      let p = box2 (xl, xl + w) (yl, yl + h) in
      (* cut the box with a diagonal to make it interesting *)
      let p = Poly.add_ineq p (vi [ 1; 2; 5 ]) in
      let obj = vi [ 3; -2; 1 ] in
      let brute = ref None in
      for x = xl to xl + w do
        for y = yl to yl + h do
          if Poly.contains_point p (vi [ x; y ]) then begin
            let v = (3 * x) - (2 * y) + 1 in
            match !brute with
            | Some b when b <= v -> ()
            | _ -> brute := Some v
          end
        done
      done;
      match Ilp.minimize p obj, !brute with
      | Ilp.Opt (v, _), Some b -> Zint.to_int_exn v = b
      | Ilp.Empty, None -> true
      | _ -> false)

let () =
  Alcotest.run "pip"
    [
      ( "ilp",
        [
          Alcotest.test_case "basic" `Quick test_ilp_basic;
          Alcotest.test_case "fractional gap" `Quick test_ilp_fractional_gap;
          Alcotest.test_case "empty" `Quick test_ilp_empty;
          Alcotest.test_case "rational-only points" `Quick
            test_ilp_rational_only;
          Alcotest.test_case "unbounded" `Quick test_ilp_unbounded;
          Alcotest.test_case "int point" `Quick test_int_point;
          Alcotest.test_case "lexmin" `Quick test_lexmin;
          Alcotest.test_case "lexmin skewed" `Quick test_lexmin_skewed;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "triangle levels" `Quick test_loop_bounds_triangle;
          Alcotest.test_case "scan equivalence" `Quick
            test_bounds_scan_equivalence;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_ilp_vs_enumeration ]);
    ]

(* Transform + machine integration: hyperplane search finds the
   expected bands, unimodular re-indexing preserves semantics, and the
   fully tiled + scratchpad-buffered kernels compute exactly what the
   reference executor computes. *)

open Emsc_arith
open Emsc_linalg
open Emsc_ir
open Emsc_core
open Emsc_codegen
open Emsc_transform
open Emsc_machine
open Emsc_kernels

let no_params name = failwith ("unexpected parameter " ^ name)

let vi = Vec.of_ints

(* --- hyperplane search ---------------------------------------------------- *)

let test_matmul_band () =
  let p = Matmul.program ~n:8 in
  let deps = Deps.analyze p in
  let band = Hyperplanes.find_band p deps in
  Alcotest.(check int) "full band" 3 (List.length band.Hyperplanes.hyperplanes);
  Alcotest.(check (list bool)) "two parallel + one sequential"
    [ true; true; false ]
    band.Hyperplanes.parallel;
  (* the parallel ones are i and j *)
  let par_planes =
    List.filteri (fun i _ -> List.nth band.Hyperplanes.parallel i)
      band.Hyperplanes.hyperplanes
  in
  List.iter (fun h ->
    Alcotest.(check bool) "axis hyperplane" true
      (Vec.equal h (vi [ 1; 0; 0 ]) || Vec.equal h (vi [ 0; 1; 0 ])))
    par_planes

let test_jacobi_band () =
  let p = Jacobi1d.program_expanded ~n:20 ~steps:6 in
  let deps = Deps.analyze p in
  let band = Hyperplanes.find_band p deps in
  Alcotest.(check int) "two hyperplanes" 2
    (List.length band.Hyperplanes.hyperplanes);
  Alcotest.(check (list bool)) "none parallel" [ false; false ]
    band.Hyperplanes.parallel;
  List.iter (fun h ->
    Alcotest.(check bool) "skewed family" true
      (Vec.equal h (vi [ 1; 0 ]) || Vec.equal h (vi [ 1; 1 ])
       || Vec.equal h (vi [ 1; -1 ])))
    band.Hyperplanes.hyperplanes;
  match Hyperplanes.transform_matrix band ~depth:2 with
  | None -> Alcotest.fail "expected a unimodular transform"
  | Some u -> Alcotest.(check bool) "unimodular" true
      (Zint.is_one (Zint.abs (Mat.det u)))

let test_me_space_loops () =
  let p = Me.program ~ni:6 ~nj:6 ~ws:3 in
  let deps = Deps.analyze p in
  let band = Hyperplanes.find_band p deps in
  let parallel_count =
    List.length (List.filter (fun b -> b) band.Hyperplanes.parallel)
  in
  Alcotest.(check int) "i and j are space loops" 2 parallel_count

let test_jacobi_copyback_band () =
  (* the two-statement copy-back form only admits the time hyperplane *)
  let p = Jacobi1d.program ~n:16 ~steps:4 in
  let deps = Deps.analyze p in
  let band = Hyperplanes.find_band p deps in
  Alcotest.(check int) "only (1,0) survives" 1
    (List.length band.Hyperplanes.hyperplanes);
  Alcotest.(check bool) "it is the time axis" true
    (Vec.equal (List.hd band.Hyperplanes.hyperplanes) (vi [ 1; 0 ]))

(* --- unimodular application ----------------------------------------------- *)

let test_apply_unimodular_semantics () =
  let p = Jacobi1d.program_expanded ~n:14 ~steps:5 in
  let u = Mat.of_ints [ [ 1; 0 ]; [ 1; 1 ] ] in
  let p' = Tile.apply_unimodular p u in
  (match Prog.validate p' with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let init _ = Random.float 1.0 in
  Random.init 42;
  let m1 = Memory.create p ~param_env:no_params in
  Memory.fill m1 "a" (fun idx -> if idx.(0) = 0 then init idx else 0.0);
  Random.init 42;
  let m2 = Memory.create p' ~param_env:no_params in
  Memory.fill m2 "a" (fun idx -> if idx.(0) = 0 then init idx else 0.0);
  let (_ : Exec.counters) = Reference.run p ~param_env:no_params m1 () in
  let (_ : Exec.counters) = Reference.run p' ~param_env:no_params m2 () in
  Alcotest.(check bool) "same result after skewing" true
    (Memory.arrays_equal m1 m2 "a")

(* --- tile-block program & buffers ------------------------------------------ *)

let mm_spec =
  [| { Tile.block = Some 8; mem = None; thread = Some 2 };
     { Tile.block = Some 8; mem = None; thread = Some 4 };
     { Tile.block = None; mem = Some 4; thread = None } |]

let test_tile_program_buffers () =
  let p = Matmul.program ~n:16 in
  let tp = Tile.tile_program p mm_spec in
  (match Prog.validate tp with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "origin params" [ "iT"; "jT"; "kM" ]
    (Array.to_list tp.Prog.params);
  let plan =
    Plan.plan_block ~arch:`Cell ~param_context:(Tile.origin_context p mm_spec)
      tp
  in
  let find name =
    (List.find (fun (b : Plan.buffered) ->
       b.Plan.buffer.Alloc.array = name)
       plan.Plan.buffered)
      .Plan.buffer
  in
  let sizes buf =
    Array.to_list
      (Array.map (fun e -> Zint.to_int_exn (Ast.eval no_params e))
         (Alloc.size_exprs buf))
  in
  ignore sizes;
  (* extents must be tile-local: A tile is 8 x 4, B is 4 x 8, C is 8 x 8 *)
  let const_sizes buf =
    Array.to_list
      (Array.map
         (fun e ->
           match Ast.simplify e with
           | Ast.Const c -> Zint.to_int_exn c
           | _ -> Alcotest.fail "size should be constant")
         (Alloc.size_exprs buf))
  in
  Alcotest.(check (list int)) "l_A is 8x4" [ 8; 4 ] (const_sizes (find "A"));
  Alcotest.(check (list int)) "l_B is 4x8" [ 4; 8 ] (const_sizes (find "B"));
  Alcotest.(check (list int)) "l_C is 8x8" [ 8; 8 ] (const_sizes (find "C"))

(* --- end-to-end: tiled + buffered kernels vs reference --------------------- *)

let run_pipeline ?(arch = `Cell) p spec ~init =
  let tp = Tile.tile_program p spec in
  let ctx = Tile.origin_context p spec in
  let plan = Plan.plan_block ~arch ~param_context:ctx tp in
  let movement =
    List.map (fun (b : Plan.buffered) -> (b.Plan.move_in, b.Plan.move_out))
      plan.Plan.buffered
  in
  let ast = Tile.generate p spec ~movement in
  (* reference *)
  let m_ref = Memory.create p ~param_env:no_params in
  List.iter (fun (name, f) -> Memory.fill m_ref name f) init;
  let (_ : Exec.counters) = Reference.run p ~param_env:no_params m_ref () in
  (* tiled execution *)
  let m_gpu = Memory.create p ~param_env:no_params in
  List.iter (fun (name, f) -> Memory.fill m_gpu name f) init;
  List.iter (fun (b : Plan.buffered) ->
    Memory.declare_local m_gpu b.Plan.buffer.Alloc.local_name)
    plan.Plan.buffered;
  let result =
    Exec.run ~prog:tp
      ~local_ref:(Plan.local_ref plan)
      ~param_env:no_params ~memory:m_gpu ~mode:Exec.Full ast
  in
  (m_ref, m_gpu, result, plan)

let test_tiled_matmul_correct () =
  let n = 16 in
  let p = Matmul.program ~n in
  let init =
    [ ("A", fun idx -> float_of_int (((idx.(0) * 7) + idx.(1)) mod 13));
      ("B", fun idx -> float_of_int (((idx.(0) * 3) + (idx.(1) * 5)) mod 11));
      ("C", fun _ -> 0.0) ]
  in
  let m_ref, m_gpu, result, _ = run_pipeline p mm_spec ~init in
  Alcotest.(check bool) "C matches reference" true
    (Memory.arrays_equal m_ref m_gpu "C");
  (* with full buffering, compute touches no global memory: all global
     traffic comes from the movement code *)
  Alcotest.(check bool) "some smem traffic" true
    (Exec.total_smem result.Exec.totals > 0.0);
  Alcotest.(check bool) "launches recorded" true
    (List.length result.Exec.launches >= 1)

let test_tiled_matmul_reduces_traffic () =
  let n = 16 in
  let p = Matmul.program ~n in
  let init = [ ("A", (fun _ -> 1.0)); ("B", (fun _ -> 2.0)); ("C", fun _ -> 0.0) ] in
  let _, _, with_smem, _ = run_pipeline p mm_spec ~init in
  (* DRAM-only version: same tiling, no buffering *)
  let tp = Tile.tile_program p mm_spec in
  let ast = Tile.generate p mm_spec ~movement:[] in
  let m = Memory.create p ~param_env:no_params in
  List.iter (fun (name, f) -> Memory.fill m name f) init;
  let dram =
    Exec.run ~prog:tp ~param_env:no_params ~memory:m ~mode:Exec.Full ast
  in
  let g1 = Exec.total_global with_smem.Exec.totals in
  let g2 = Exec.total_global dram.Exec.totals in
  Alcotest.(check bool)
    (Printf.sprintf "global traffic shrinks (%.0f < %.0f)" g1 g2)
    true (g1 < g2 /. 4.0)

let me_spec =
  [| { Tile.block = Some 8; mem = None; thread = Some 2 };
     { Tile.block = Some 8; mem = None; thread = Some 4 };
     Tile.no_tiling; Tile.no_tiling |]

let test_tiled_me_correct () =
  let p = Me.program ~ni:16 ~nj:16 ~ws:4 in
  let init =
    [ ("cur", fun idx -> float_of_int (((idx.(0) * 5) + idx.(1)) mod 17));
      ("refb", fun idx -> float_of_int (((idx.(0) * 2) + idx.(1)) mod 7));
      ("sad", fun _ -> 0.0) ]
  in
  let m_ref, m_gpu, _, plan = run_pipeline p me_spec ~init in
  Alcotest.(check bool) "sad matches reference" true
    (Memory.arrays_equal m_ref m_gpu "sad");
  (* ME buffers: sad is beneficial (rank), cur is beneficial (rank),
     refb is beneficial (rank: k,l only, 2 < 4) *)
  Alcotest.(check int) "three buffers" 3 (List.length plan.Plan.buffered)

let test_me_gpu_arch_buffers () =
  let p = Me.program ~ni:16 ~nj:16 ~ws:4 in
  let tp = Tile.tile_program p me_spec in
  let plan =
    Plan.plan_block ~arch:`Gpu ~param_context:(Tile.origin_context p me_spec)
      tp
  in
  Alcotest.(check int) "all partitions beneficial on GPU too" 3
    (List.length plan.Plan.buffered)

(* movement hoisting: with k mem-tiled in matmul, l_C's movement must
   sit outside the kM loop while l_A's sits inside *)
let test_movement_hoisting () =
  let p = Matmul.program ~n:16 in
  let tp = Tile.tile_program p mm_spec in
  let plan =
    Plan.plan_block ~arch:`Cell ~param_context:(Tile.origin_context p mm_spec)
      tp
  in
  let movement =
    List.map (fun (b : Plan.buffered) -> (b.Plan.move_in, b.Plan.move_out))
      plan.Plan.buffered
  in
  let ast = Tile.generate p mm_spec ~movement in
  (* find the kM loop and check which buffers are copied inside it *)
  let copies_into_local_inside_km = ref [] in
  let copies_into_local_outside_km = ref [] in
  let rec walk inside_km (s : Ast.stm) =
    match s with
    | Ast.Loop l ->
      let inside = inside_km || l.Ast.var = "kM" in
      List.iter (walk inside) l.Ast.body
    | Ast.Guard (_, body) -> List.iter (walk inside_km) body
    | Ast.Copy { dst; _ } when String.length dst.Ast.array > 2
                               && String.sub dst.Ast.array 0 2 = "l_" ->
      if inside_km then
        copies_into_local_inside_km := dst.Ast.array :: !copies_into_local_inside_km
      else
        copies_into_local_outside_km := dst.Ast.array :: !copies_into_local_outside_km
    | Ast.Copy _ | Ast.Stmt_call _ | Ast.Sync | Ast.Fence | Ast.Comment _ -> ()
  in
  List.iter (walk false) ast;
  let uniq l = List.sort_uniq compare l in
  Alcotest.(check bool) "A and B loaded inside kM" true
    (List.mem "l_A" (uniq !copies_into_local_inside_km)
     && List.mem "l_B" (uniq !copies_into_local_inside_km));
  Alcotest.(check bool) "C loaded outside kM (hoisted)" true
    (List.mem "l_C" (uniq !copies_into_local_outside_km));
  Alcotest.(check bool) "C not re-loaded inside kM" false
    (List.mem "l_C" (uniq !copies_into_local_inside_km))

(* --- sampled fidelity ------------------------------------------------------ *)

let test_sampled_counts_match () =
  (* rectangular nest: sampled counters must equal full counters *)
  let p = Matmul.program ~n:16 in
  let tp = Tile.tile_program p mm_spec in
  let plan =
    Plan.plan_block ~arch:`Cell ~param_context:(Tile.origin_context p mm_spec)
      tp
  in
  let movement =
    List.map (fun (b : Plan.buffered) -> (b.Plan.move_in, b.Plan.move_out))
      plan.Plan.buffered
  in
  let ast = Tile.generate p mm_spec ~movement in
  let mk () =
    let m = Memory.create p ~param_env:no_params in
    List.iter (fun (b : Plan.buffered) ->
      Memory.declare_local m b.Plan.buffer.Alloc.local_name)
      plan.Plan.buffered;
    m
  in
  let full =
    Exec.run ~prog:tp ~local_ref:(Plan.local_ref plan) ~param_env:no_params
      ~memory:(mk ()) ~mode:Exec.Full ast
  in
  let sampled =
    Exec.run ~prog:tp ~local_ref:(Plan.local_ref plan) ~param_env:no_params
      ~memory:(mk ()) ~mode:(Exec.Sampled 4) ast
  in
  let close a b =
    Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a +. Float.abs b)
  in
  Alcotest.(check bool) "flops match" true
    (close full.Exec.totals.Exec.flops sampled.Exec.totals.Exec.flops);
  Alcotest.(check bool) "global traffic matches" true
    (close
       (Exec.total_global full.Exec.totals)
       (Exec.total_global sampled.Exec.totals));
  Alcotest.(check bool) "smem traffic matches" true
    (close (Exec.total_smem full.Exec.totals)
       (Exec.total_smem sampled.Exec.totals))

(* --- stencil: overlapped time tiling -------------------------------------- *)

let run_stencil ~n ~steps ~ts ~tt =
  let p = Jacobi1d.program ~n ~steps in
  let init = fun idx -> float_of_int ((idx.(0) * 37) mod 19) /. 19.0 in
  let m_ref = Memory.create p ~param_env:no_params in
  Memory.fill m_ref "cur" init;
  let (_ : Exec.counters) = Reference.run p ~param_env:no_params m_ref () in
  let k = Stencil.overlapped_1d ~n ~steps ~ts ~tt p in
  let m_gpu = Memory.create p ~param_env:no_params in
  Memory.fill m_gpu "cur" init;
  List.iter (Memory.declare_local m_gpu) k.Stencil.locals;
  let r =
    Exec.run ~prog:p ~local_ref:k.Stencil.local_ref ~param_env:no_params
      ~memory:m_gpu ~mode:Exec.Full k.Stencil.ast
  in
  (* compare the reference's cur against the kernel's result array *)
  let ok =
    let a = Memory.global_data m_ref "cur" in
    let b = Memory.global_data m_gpu k.Stencil.result_array in
    Array.length a = Array.length b
    && begin
      let good = ref true in
      Array.iteri (fun i x ->
        if Float.abs (x -. b.(i)) > 1e-6 *. (1.0 +. Float.abs x) then
          good := false)
        a;
      !good
    end
  in
  (m_ref, m_gpu, r, k, ok)

let test_stencil_correct () =
  let _, _, _, k, ok = run_stencil ~n:64 ~steps:17 ~ts:16 ~tt:4 in
  Alcotest.(check bool) "overlapped tiling matches reference" true ok;
  Alcotest.(check int) "time tiles" 5 k.Stencil.time_tiles;
  Alcotest.(check int) "smem words" (2 * (16 + 8)) k.Stencil.smem_words

let test_stencil_uneven () =
  (* n-2 not divisible by ts, steps not divisible by tt *)
  let _, _, _, _, ok = run_stencil ~n:47 ~steps:11 ~ts:8 ~tt:3 in
  Alcotest.(check bool) "uneven sizes still correct" true ok

let test_stencil_dram_correct () =
  let n = 40 and steps = 9 in
  let p = Jacobi1d.program ~n ~steps in
  let init = fun idx -> float_of_int ((idx.(0) * 11) mod 7) in
  let m_ref = Memory.create p ~param_env:no_params in
  Memory.fill m_ref "cur" init;
  let (_ : Exec.counters) = Reference.run p ~param_env:no_params m_ref () in
  let k = Stencil.dram_1d ~n ~steps ~ts:8 p in
  let m = Memory.create p ~param_env:no_params in
  Memory.fill m "cur" init;
  let r =
    Exec.run ~prog:p ~param_env:no_params ~memory:m ~mode:Exec.Full
      k.Stencil.ast
  in
  Alcotest.(check bool) "dram version correct" true
    (Memory.arrays_equal m_ref m "cur");
  Alcotest.(check bool) "many launches" true
    (List.length r.Exec.launches = 2 * steps)

let test_stencil_traffic_gap () =
  let _, _, smem_run, _, _ = run_stencil ~n:1024 ~steps:64 ~ts:64 ~tt:16 in
  let p = Jacobi1d.program ~n:1024 ~steps:64 in
  let k = Stencil.dram_1d ~n:1024 ~steps:64 ~ts:64 p in
  let m = Memory.create p ~param_env:no_params in
  let dram_run =
    Exec.run ~prog:p ~param_env:no_params ~memory:m ~mode:Exec.Full
      k.Stencil.ast
  in
  let g_smem = Exec.total_global smem_run.Exec.totals in
  let g_dram = Exec.total_global dram_run.Exec.totals in
  Alcotest.(check bool)
    (Printf.sprintf "global traffic gap (%.0f vs %.0f)" g_smem g_dram)
    true
    (g_smem < g_dram /. 3.0)

let prop_stencil_random =
  QCheck.Test.make ~name:"overlapped tiling correct on random shapes"
    ~count:12
    QCheck.(quad (int_range 16 70) (int_range 1 20) (int_range 4 24)
              (int_range 1 8))
    (fun (n, steps, ts, tt) ->
      let _, _, _, _, ok = run_stencil ~n ~steps ~ts ~tt in
      ok)

(* regression: a mem tile larger than its block tile must not leak
   past the block tile edge (was double-accumulating sad cells) *)
let test_mem_tile_exceeds_block () =
  let p = Matmul.program ~n:12 in
  let spec =
    [| { Tile.block = Some 4; mem = Some 8; thread = None };
       { Tile.block = Some 4; mem = Some 8; thread = None };
       { Tile.block = None; mem = Some 8; thread = None } |]
  in
  let init =
    [ ("A", fun idx -> float_of_int ((idx.(0) + (idx.(1) * 2)) mod 7));
      ("B", fun idx -> float_of_int ((idx.(0) * 3) mod 5));
      ("C", fun _ -> 0.0) ]
  in
  let m_ref, m_gpu, _, _ = run_pipeline p spec ~init in
  Alcotest.(check bool) "no leakage across block tiles" true
    (Memory.arrays_equal m_ref m_gpu "C")


(* additional kernels through the full pipeline *)
let test_tiled_conv2d_correct () =
  let p = Conv2d.program ~n:16 ~kw:3 in
  let spec =
    [| { Tile.block = Some 8; mem = None; thread = None };
       { Tile.block = Some 8; mem = None; thread = None };
       Tile.no_tiling; Tile.no_tiling |]
  in
  let init =
    [ ("img", fun idx -> float_of_int (((idx.(0) * 3) + idx.(1)) mod 11));
      ("w", fun idx -> float_of_int (1 + idx.(0) + idx.(1)));
      ("out", fun _ -> 0.0) ]
  in
  let m_ref, m_gpu, _, plan = run_pipeline p spec ~init in
  Alcotest.(check bool) "conv2d matches reference" true
    (Memory.arrays_equal m_ref m_gpu "out");
  Alcotest.(check int) "three buffers" 3 (List.length plan.Plan.buffered)

let test_tiled_doitgen_correct () =
  let p = Doitgen.program ~nr:6 ~nq:6 ~np_:8 in
  let spec =
    [| { Tile.block = Some 3; mem = None; thread = None };
       { Tile.block = Some 3; mem = None; thread = None };
       Tile.no_tiling;
       { Tile.block = None; mem = Some 4; thread = None } |]
  in
  let init =
    [ ("a3", fun idx ->
        float_of_int (((idx.(0) * 5) + (idx.(1) * 3) + idx.(2)) mod 13));
      ("c4", fun idx -> float_of_int (((idx.(0) * 2) + idx.(1)) mod 7));
      ("sum3", fun _ -> 0.0) ]
  in
  let m_ref, m_gpu, _, _ = run_pipeline p spec ~init in
  Alcotest.(check bool) "doitgen (rank-3) matches reference" true
    (Memory.arrays_equal m_ref m_gpu "sum3")

let test_conv2d_reuse_verdicts () =
  (* img slides (beneficial by rank), w is tiny but rank-deficient too *)
  let p = Conv2d.program ~n:16 ~kw:3 in
  let parts = Dataspaces.partition_all p in
  List.iter (fun (part : Dataspaces.partition) ->
    let r = Reuse.analyze p part in
    Alcotest.(check bool)
      (part.Dataspaces.array ^ " beneficial")
      true r.Reuse.beneficial)
    parts

let () =
  Alcotest.run "transform"
    [
      ( "hyperplanes",
        [
          Alcotest.test_case "matmul band" `Quick test_matmul_band;
          Alcotest.test_case "jacobi skewed band" `Quick test_jacobi_band;
          Alcotest.test_case "me space loops" `Quick test_me_space_loops;
          Alcotest.test_case "jacobi copy-back band" `Quick
            test_jacobi_copyback_band;
        ] );
      ( "unimodular",
        [
          Alcotest.test_case "skewing preserves semantics" `Quick
            test_apply_unimodular_semantics;
        ] );
      ( "stencil",
        [
          Alcotest.test_case "overlapped correct" `Quick test_stencil_correct;
          Alcotest.test_case "uneven sizes" `Quick test_stencil_uneven;
          Alcotest.test_case "dram baseline correct" `Quick
            test_stencil_dram_correct;
          Alcotest.test_case "traffic gap" `Quick test_stencil_traffic_gap;
          QCheck_alcotest.to_alcotest prop_stencil_random;
        ] );
      ( "tiling",
        [
          Alcotest.test_case "tile-block buffers" `Quick
            test_tile_program_buffers;
          Alcotest.test_case "tiled matmul correct" `Quick
            test_tiled_matmul_correct;
          Alcotest.test_case "buffering cuts global traffic" `Quick
            test_tiled_matmul_reduces_traffic;
          Alcotest.test_case "tiled ME correct" `Quick test_tiled_me_correct;
          Alcotest.test_case "ME beneficial on GPU" `Quick
            test_me_gpu_arch_buffers;
          Alcotest.test_case "movement hoisting (4.2)" `Quick
            test_movement_hoisting;
          Alcotest.test_case "sampled = full counters" `Quick
            test_sampled_counts_match;
          Alcotest.test_case "mem tile > block tile" `Quick
            test_mem_tile_exceeds_block;
          Alcotest.test_case "tiled conv2d correct" `Quick
            test_tiled_conv2d_correct;
          Alcotest.test_case "tiled doitgen correct" `Quick
            test_tiled_doitgen_correct;
          Alcotest.test_case "conv2d reuse verdicts" `Quick
            test_conv2d_reuse_verdicts;
        ] );
    ]

(* Tests for the polyhedral layer: exact simplex, Fourier–Motzkin,
   affine images, unions, and integer-point counting. *)

open Emsc_arith
open Emsc_linalg
open Emsc_poly

let z = Zint.of_int
let vi = Vec.of_ints

(* Helper: a 2-D box lo <= x,y <= hi. *)
let box2 (xl, xh) (yl, yh) =
  Poly.of_ineqs ~dim:2
    [ [ 1; 0; -xl ]; [ -1; 0; xh ]; [ 0; 1; -yl ]; [ 0; -1; yh ] ]

let interval lo hi = Poly.of_ineqs ~dim:1 [ [ 1; -lo ]; [ -1; hi ] ]

let count_exn p =
  match Count.count_poly p with
  | Count.Exact n -> Zint.to_int_exn n
  | Count.More_than _ | Count.Unbounded -> Alcotest.fail "expected exact count"

let count_uset_exn u =
  match Count.count_uset u with
  | Count.Exact n -> Zint.to_int_exn n
  | Count.More_than _ | Count.Unbounded -> Alcotest.fail "expected exact count"

(* --- simplex ----------------------------------------------------------- *)

let test_lp_basic () =
  (* min x + y s.t. x >= 1, y >= 2 *)
  let ineqs = [ vi [ 1; 0; -1 ]; vi [ 0; 1; -2 ] ] in
  let obj = [| Q.one; Q.one; Q.zero |] in
  match Simplex.minimize ~dim:2 ~eqs:[] ~ineqs ~obj with
  | Simplex.Optimal (v, pt) ->
    Alcotest.(check string) "objective" "3" (Q.to_string v);
    Alcotest.(check string) "x" "1" (Q.to_string pt.(0));
    Alcotest.(check string) "y" "2" (Q.to_string pt.(1))
  | _ -> Alcotest.fail "expected optimal"

let test_lp_fractional () =
  (* max x s.t. 2x <= 7, x >= 0 : optimum 7/2 *)
  let ineqs = [ vi [ -2; 7 ]; vi [ 1; 0 ] ] in
  let obj = [| Q.one; Q.zero |] in
  match Simplex.maximize ~dim:1 ~eqs:[] ~ineqs ~obj with
  | Simplex.Optimal (v, _) ->
    Alcotest.(check string) "objective" "7/2" (Q.to_string v)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let ineqs = [ vi [ 1; -3 ]; vi [ -1; 1 ] ] in
  (* x >= 3 and x <= 1 *)
  let obj = [| Q.one; Q.zero |] in
  Alcotest.(check bool) "infeasible" true
    (Simplex.minimize ~dim:1 ~eqs:[] ~ineqs ~obj = Simplex.Infeasible)

let test_lp_unbounded () =
  let ineqs = [ vi [ 1; 0 ] ] in
  (* x >= 0, maximize x *)
  let obj = [| Q.one; Q.zero |] in
  Alcotest.(check bool) "unbounded" true
    (Simplex.maximize ~dim:1 ~eqs:[] ~ineqs ~obj = Simplex.Unbounded)

let test_lp_equalities () =
  (* min y s.t. x + y = 10, x <= 4 → x=4, y=6 *)
  let eqs = [ vi [ 1; 1; -10 ] ] in
  let ineqs = [ vi [ -1; 0; 4 ] ] in
  let obj = [| Q.zero; Q.one; Q.zero |] in
  match Simplex.minimize ~dim:2 ~eqs ~ineqs ~obj with
  | Simplex.Optimal (v, _) -> Alcotest.(check string) "min y" "6" (Q.to_string v)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_negative_vars () =
  (* variables are free: min x s.t. x >= -5 *)
  let ineqs = [ vi [ 1; 5 ] ] in
  let obj = [| Q.one; Q.zero |] in
  match Simplex.minimize ~dim:1 ~eqs:[] ~ineqs ~obj with
  | Simplex.Optimal (v, _) -> Alcotest.(check string) "min" "-5" (Q.to_string v)
  | _ -> Alcotest.fail "expected optimal"

(* --- polyhedra --------------------------------------------------------- *)

let test_empty_detection () =
  Alcotest.(check bool) "box non-empty" false (Poly.is_empty (box2 (0, 5) (0, 5)));
  Alcotest.(check bool) "contradiction" true
    (Poly.is_empty (Poly.of_ineqs ~dim:1 [ [ 1; -3 ]; [ -1; 1 ] ]));
  Alcotest.(check bool) "bottom" true (Poly.is_empty (Poly.bottom 3));
  (* rationally non-empty but integrally empty on an equality: 2x = 1 *)
  let p = Poly.make ~dim:1 ~eqs:[ vi [ 2; -1 ] ] ~ineqs:[] in
  Alcotest.(check bool) "2x=1 integer-tightened to empty" true
    (Poly.is_empty p)

let test_integer_tightening () =
  (* 2x >= 1 tightens to x >= 1 *)
  let p = Poly.of_ineqs ~dim:1 [ [ 2; -1 ] ] in
  let lo, _ = Poly.var_bounds_int p 0 in
  Alcotest.(check int) "tightened lb" 1 (Zint.to_int_exn (Option.get lo))

let test_fm_projection () =
  (* triangle 0 <= y <= x <= 10, project out y → 0 <= x <= 10 *)
  let tri =
    Poly.of_ineqs ~dim:2 [ [ 0; 1; 0 ]; [ 1; -1; 0 ]; [ -1; 0; 10 ] ]
  in
  let proj = Poly.eliminate_dim tri 1 in
  Alcotest.(check int) "dim" 1 (Poly.dim proj);
  let lo, hi = Poly.var_bounds_int proj 0 in
  Alcotest.(check int) "lb" 0 (Zint.to_int_exn (Option.get lo));
  Alcotest.(check int) "ub" 10 (Zint.to_int_exn (Option.get hi))

let test_fm_uses_equalities () =
  (* x = 2y and 0 <= y <= 3; eliminating y gives 0 <= x <= 6 (even) *)
  let p =
    Poly.make ~dim:2
      ~eqs:[ vi [ 1; -2; 0 ] ]
      ~ineqs:[ vi [ 0; 1; 0 ]; vi [ 0; -1; 3 ] ]
  in
  let proj = Poly.eliminate_dim p 1 in
  let lo, hi = Poly.var_bounds_int proj 0 in
  Alcotest.(check int) "lb" 0 (Zint.to_int_exn (Option.get lo));
  Alcotest.(check int) "ub" 6 (Zint.to_int_exn (Option.get hi))

let test_image_shift () =
  (* image of [0,5] under y = x + 3 is [3,8] *)
  let f = Mat.of_ints [ [ 1; 3 ] ] in
  let img = Poly.image (interval 0 5) f in
  let lo, hi = Poly.var_bounds_int img 0 in
  Alcotest.(check int) "lb" 3 (Zint.to_int_exn (Option.get lo));
  Alcotest.(check int) "ub" 8 (Zint.to_int_exn (Option.get hi))

let test_image_projection_map () =
  (* image of box [0,4]x[0,9] under y = i (drop j) is [0,4] *)
  let f = Mat.of_ints [ [ 1; 0; 0 ] ] in
  let img = Poly.image (box2 (0, 4) (0, 9)) f in
  Alcotest.(check int) "dim" 1 (Poly.dim img);
  let lo, hi = Poly.var_bounds_int img 0 in
  Alcotest.(check int) "lb" 0 (Zint.to_int_exn (Option.get lo));
  Alcotest.(check int) "ub" 4 (Zint.to_int_exn (Option.get hi))

let test_image_sum_map () =
  (* image of [10,14]x[10,14] under a = i + j is [20,28]
     — the A[i+j][...] reference of the paper's Figure 1 *)
  let f = Mat.of_ints [ [ 1; 1; 0 ] ] in
  let img = Poly.image (box2 (10, 14) (10, 14)) f in
  let lo, hi = Poly.var_bounds_int img 0 in
  Alcotest.(check int) "lb" 20 (Zint.to_int_exn (Option.get lo));
  Alcotest.(check int) "ub" 28 (Zint.to_int_exn (Option.get hi))

let test_preimage () =
  (* preimage of [0,10] under y = 2x is  0 <= 2x <= 10 → x in [0,5] *)
  let f = Mat.of_ints [ [ 2; 0 ] ] in
  let pre = Poly.preimage (interval 0 10) f in
  let lo, hi = Poly.var_bounds_int pre 0 in
  Alcotest.(check int) "lb" 0 (Zint.to_int_exn (Option.get lo));
  Alcotest.(check int) "ub" 5 (Zint.to_int_exn (Option.get hi))

let test_contains_point () =
  let p = box2 (0, 5) (0, 5) in
  Alcotest.(check bool) "inside" true (Poly.contains_point p (vi [ 3; 3 ]));
  Alcotest.(check bool) "boundary" true (Poly.contains_point p (vi [ 0; 5 ]));
  Alcotest.(check bool) "outside" false (Poly.contains_point p (vi [ 6; 3 ]))

let test_subset () =
  Alcotest.(check bool) "box in bigger box" true
    (Poly.is_subset (box2 (1, 4) (1, 4)) (box2 (0, 5) (0, 5)));
  Alcotest.(check bool) "not subset" false
    (Poly.is_subset (box2 (0, 6) (0, 5)) (box2 (0, 5) (0, 5)));
  Alcotest.(check bool) "empty in anything" true
    (Poly.is_subset (Poly.bottom 2) (box2 (0, 1) (0, 1)))

let test_remove_redundant () =
  (* x >= 0, x >= -5 (redundant), x <= 10 *)
  let p = Poly.of_ineqs ~dim:1 [ [ 1; 0 ]; [ 1; 5 ]; [ -1; 10 ] ] in
  let r = Poly.remove_redundant p in
  let _, ineqs = Poly.constraints r in
  Alcotest.(check int) "constraint count" 2 (List.length ineqs);
  Alcotest.(check bool) "same set" true (Poly.equal_set p r)

let test_implicit_equality () =
  (* x >= 3 and x <= 3 → affine hull contains x = 3 *)
  let p = Poly.of_ineqs ~dim:1 [ [ 1; -3 ]; [ -1; 3 ] ] in
  let hull = Poly.affine_hull p in
  Alcotest.(check int) "one equality" 1 (List.length hull);
  Alcotest.(check (list int)) "x - 3 = 0" [ 1; -3 ]
    (Vec.to_ints_exn (List.hd hull))

let test_fix_dim () =
  let p = box2 (0, 5) (2, 8) in
  let q = Poly.fix_dim p 0 (z 3) in
  Alcotest.(check int) "dim" 1 (Poly.dim q);
  Alcotest.(check int) "count" 7 (count_exn q);
  let r = Poly.fix_dim p 0 (z 99) in
  Alcotest.(check bool) "outside is empty" true (Poly.is_empty r)

let test_translate () =
  let p = Poly.translate (box2 (0, 5) (0, 5)) (vi [ 10; 20 ]) in
  Alcotest.(check bool) "translated" true
    (Poly.contains_point p (vi [ 10; 20 ]));
  Alcotest.(check bool) "old origin gone" false
    (Poly.contains_point p (vi [ 0; 0 ]))

(* --- uset --------------------------------------------------------------- *)

let test_uset_subtract () =
  let a = Uset.of_poly (interval 0 10) in
  let b = Uset.of_poly (interval 3 5) in
  let d = Uset.subtract a b in
  Alcotest.(check int) "count" 8 (count_uset_exn d);
  Alcotest.(check bool) "3 removed" false (Uset.contains_point d (vi [ 3 ]));
  Alcotest.(check bool) "6 kept" true (Uset.contains_point d (vi [ 6 ]))

let test_uset_disjoint () =
  (* two overlapping intervals: [0,10] ∪ [5,15] has 16 points *)
  let u = Uset.union (Uset.of_poly (interval 0 10)) (Uset.of_poly (interval 5 15)) in
  Alcotest.(check int) "disjoint count" 16 (count_uset_exn u);
  let d = Uset.make_disjoint u in
  (* pieces pairwise disjoint *)
  let rec pairwise = function
    | [] -> true
    | p :: rest ->
      List.for_all (fun q -> Poly.is_empty (Poly.intersect p q)) rest
      && pairwise rest
  in
  Alcotest.(check bool) "pairwise disjoint" true (pairwise (Uset.pieces d))

let test_uset_overlap () =
  let a = Uset.of_poly (interval 0 10) and b = Uset.of_poly (interval 10 20) in
  let c = Uset.of_poly (interval 11 20) in
  Alcotest.(check bool) "touching overlap" true (Uset.overlap a b);
  Alcotest.(check bool) "no overlap" false (Uset.overlap a c)

let test_uset_bounds () =
  let u =
    Uset.union (Uset.of_poly (interval 0 10)) (Uset.of_poly (interval 20 30))
  in
  (match Uset.bounding_box u with
   | Some box ->
     let lo, hi = box.(0) in
     Alcotest.(check int) "lb" 0 (Zint.to_int_exn lo);
     Alcotest.(check int) "ub" 30 (Zint.to_int_exn hi)
   | None -> Alcotest.fail "expected bounds")

let test_uset_template_hull () =
  let u =
    Uset.union
      (Uset.of_poly (box2 (0, 2) (0, 2)))
      (Uset.of_poly (box2 (5, 8) (1, 3)))
  in
  let hull = Uset.template_hull u in
  Alcotest.(check bool) "covers pieces" true
    (Uset.is_subset u (Uset.of_poly hull));
  (* hull of boxes along axis directions is the bounding box *)
  let lo, hi = Poly.var_bounds_int hull 0 in
  Alcotest.(check int) "x lb" 0 (Zint.to_int_exn (Option.get lo));
  Alcotest.(check int) "x ub" 8 (Zint.to_int_exn (Option.get hi))

let test_uset_affine_hull () =
  (* two segments on the line y = x → hull contains x - y = 0 *)
  let seg a b =
    Poly.make ~dim:2
      ~eqs:[ vi [ 1; -1; 0 ] ]
      ~ineqs:[ vi [ 1; 0; -a ]; vi [ -1; 0; b ] ]
  in
  let u = Uset.union (Uset.of_poly (seg 0 3)) (Uset.of_poly (seg 10 12)) in
  let hull = Uset.affine_hull u in
  Alcotest.(check int) "one equality" 1 (List.length hull);
  let e = List.hd hull in
  (* e is ±(x - y) *)
  Alcotest.(check bool) "is x=y" true
    (Vec.equal (Vec.normalize e) (vi [ 1; -1; 0 ])
     || Vec.equal (Vec.normalize e) (vi [ -1; 1; 0 ]))

(* --- counting ------------------------------------------------------------ *)

let test_count_box () =
  Alcotest.(check int) "6x6 box" 36 (count_exn (box2 (0, 5) (0, 5)));
  Alcotest.(check int) "interval" 11 (count_exn (interval 0 10));
  Alcotest.(check int) "empty" 0 (count_exn (Poly.bottom 2))

let test_count_triangle () =
  (* 0 <= y <= x <= 4: 5+4+3+2+1 = 15 points *)
  let tri = Poly.of_ineqs ~dim:2 [ [ 0; 1; 0 ]; [ 1; -1; 0 ]; [ -1; 0; 4 ] ] in
  Alcotest.(check int) "triangle" 15 (count_exn tri)

let test_count_limit () =
  match Count.count_poly ~limit:10 (box2 (0, 99) (0, 99)) with
  | Count.More_than _ -> ()
  | _ -> Alcotest.fail "expected limit hit"

let test_count_unbounded () =
  let p = Poly.of_ineqs ~dim:1 [ [ 1; 0 ] ] in
  Alcotest.(check bool) "unbounded" true (Count.count_poly p = Count.Unbounded)

(* --- properties ----------------------------------------------------------- *)

let small_box_gen =
  QCheck.map
    (fun (a, w, b, h) -> ((a, a + w), (b, b + h)))
    QCheck.(quad (int_range (-10) 10) (int_range 0 8) (int_range (-10) 10)
              (int_range 0 8))

let prop_fm_sound =
  QCheck.Test.make ~name:"projection contains projected points" ~count:100
    (QCheck.pair small_box_gen (QCheck.int_range (-12) 12))
    (fun (((xl, xh), (yl, yh)), cut) ->
      (* box with a diagonal cut x + y <= cut possibly *)
      let p = Poly.add_ineq (box2 (xl, xh) (yl, yh)) (vi [ -1; -1; cut + 20 ]) in
      let proj = Poly.eliminate_dim p 1 in
      (* every integer point of p projects into proj *)
      let ok = ref true in
      for x = xl to xh do
        for y = yl to yh do
          if Poly.contains_point p (vi [ x; y ]) then
            if not (Poly.contains_point proj (vi [ x ])) then ok := false
        done
      done;
      !ok)

let prop_union_count_inclusion_exclusion =
  QCheck.Test.make ~name:"count(A∪B) = |A| + |B| - |A∩B|" ~count:60
    (QCheck.pair small_box_gen small_box_gen)
    (fun ((ax, ay), (bx, by)) ->
      let a = box2 ax ay and b = box2 bx by in
      let cnt p = count_exn p in
      let u = Uset.union (Uset.of_poly a) (Uset.of_poly b) in
      count_uset_exn u = cnt a + cnt b - cnt (Poly.intersect a b))

let prop_subtract_partitions =
  QCheck.Test.make ~name:"|A| = |A\\B| + |A∩B|" ~count:60
    (QCheck.pair small_box_gen small_box_gen)
    (fun ((ax, ay), (bx, by)) ->
      let a = box2 ax ay and b = box2 bx by in
      let diff = Uset.subtract (Uset.of_poly a) (Uset.of_poly b) in
      count_exn a = count_uset_exn diff + count_exn (Poly.intersect a b))

let prop_image_preserves_membership =
  QCheck.Test.make ~name:"image contains mapped points" ~count:60
    (QCheck.pair small_box_gen
       (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3)))
    (fun ((ax, ay), (c1, c2)) ->
      let p = box2 ax ay in
      let f = Mat.of_ints [ [ c1; c2; 1 ] ] in
      let img = Poly.image p f in
      let (xl, xh), (yl, yh) = (ax, ay) in
      let ok = ref true in
      for x = xl to xh do
        for y = yl to yh do
          let v = (c1 * x) + (c2 * y) + 1 in
          if not (Poly.contains_point img (vi [ v ])) then ok := false
        done
      done;
      !ok)

let prop_template_hull_superset =
  QCheck.Test.make ~name:"template hull covers the union" ~count:40
    (QCheck.pair small_box_gen small_box_gen)
    (fun ((ax, ay), (bx, by)) ->
      let u = Uset.union (Uset.of_poly (box2 ax ay)) (Uset.of_poly (box2 bx by)) in
      Uset.is_subset u (Uset.of_poly (Uset.template_hull u)))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_fm_sound; prop_union_count_inclusion_exclusion;
        prop_subtract_partitions; prop_image_preserves_membership;
        prop_template_hull_superset ]
  in
  Alcotest.run "poly"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic lp" `Quick test_lp_basic;
          Alcotest.test_case "fractional optimum" `Quick test_lp_fractional;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "equalities" `Quick test_lp_equalities;
          Alcotest.test_case "free variables" `Quick test_lp_negative_vars;
        ] );
      ( "poly",
        [
          Alcotest.test_case "emptiness" `Quick test_empty_detection;
          Alcotest.test_case "integer tightening" `Quick test_integer_tightening;
          Alcotest.test_case "fm projection" `Quick test_fm_projection;
          Alcotest.test_case "fm equalities" `Quick test_fm_uses_equalities;
          Alcotest.test_case "image shift" `Quick test_image_shift;
          Alcotest.test_case "image projection" `Quick test_image_projection_map;
          Alcotest.test_case "image i+j (Fig 1)" `Quick test_image_sum_map;
          Alcotest.test_case "preimage" `Quick test_preimage;
          Alcotest.test_case "contains point" `Quick test_contains_point;
          Alcotest.test_case "subset" `Quick test_subset;
          Alcotest.test_case "remove redundant" `Quick test_remove_redundant;
          Alcotest.test_case "implicit equality" `Quick test_implicit_equality;
          Alcotest.test_case "fix dim" `Quick test_fix_dim;
          Alcotest.test_case "translate" `Quick test_translate;
        ] );
      ( "uset",
        [
          Alcotest.test_case "subtract" `Quick test_uset_subtract;
          Alcotest.test_case "disjoint decomposition" `Quick test_uset_disjoint;
          Alcotest.test_case "overlap" `Quick test_uset_overlap;
          Alcotest.test_case "bounds" `Quick test_uset_bounds;
          Alcotest.test_case "template hull" `Quick test_uset_template_hull;
          Alcotest.test_case "affine hull" `Quick test_uset_affine_hull;
        ] );
      ( "count",
        [
          Alcotest.test_case "boxes" `Quick test_count_box;
          Alcotest.test_case "triangle" `Quick test_count_triangle;
          Alcotest.test_case "limit" `Quick test_count_limit;
          Alcotest.test_case "unbounded" `Quick test_count_unbounded;
        ] );
      ("properties", props);
    ]

(* Parser tests: the textual Figure 1 program must analyze identically
   to the hand-built IR, plus error handling and parametric programs. *)

open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir
open Emsc_lang
open Emsc_core

let fig1_src =
  {|
  // the worked example of the paper's Figure 1
  array A[200][200];
  array B[200][200];
  for (i = 10; i <= 14; i++) {
    for (j = 10; j <= 14; j++) {
      A[i][j+1] = A[i+j][j+1] * 3;
      for (k = 11; k <= 20; k++) {
        B[i][j+k] = A[i][k] + B[i+j][k];
      }
    }
  }
  |}

let test_parse_fig1 () =
  let p = Parser.parse fig1_src in
  Alcotest.(check int) "two statements" 2 (List.length p.Prog.stmts);
  Alcotest.(check int) "no params" 0 (Prog.nparams p);
  let s1 = List.nth p.Prog.stmts 0 in
  let s2 = List.nth p.Prog.stmts 1 in
  Alcotest.(check int) "S1 depth" 2 s1.Prog.depth;
  Alcotest.(check int) "S2 depth" 3 s2.Prog.depth;
  Alcotest.(check int) "S2 reads" 2 (List.length s2.Prog.reads);
  (* domains agree with the hand-built kernel *)
  let h = Emsc_kernels.Fig1.program in
  let h1 = Prog.find_stmt h 1 and h2 = Prog.find_stmt h 2 in
  Alcotest.(check bool) "S1 domain" true
    (Poly.equal_set s1.Prog.domain h1.Prog.domain);
  Alcotest.(check bool) "S2 domain" true
    (Poly.equal_set s2.Prog.domain h2.Prog.domain)

let test_parsed_fig1_analysis () =
  (* the whole Figure 1 reproduction must hold on the PARSED program *)
  let p = Parser.parse fig1_src in
  let plan = Plan.plan_block ~arch:`Cell ~merge_per_array:true p in
  Alcotest.(check int) "two buffers" 2 (List.length plan.Plan.buffered);
  let sizes name =
    let b =
      List.find (fun (b : Plan.buffered) -> b.Plan.buffer.Alloc.array = name)
        plan.Plan.buffered
    in
    Array.to_list
      (Array.map
         (fun e ->
           Zint.to_int_exn (Emsc_codegen.Ast.eval (fun _ -> assert false) e))
         (Alloc.size_exprs b.Plan.buffer))
  in
  Alcotest.(check (list int)) "LA = [19; 10]" [ 19; 10 ] (sizes "A");
  Alcotest.(check (list int)) "LB = [19; 24]" [ 19; 24 ] (sizes "B")

let test_parse_parametric () =
  let src =
    {|
    param N;
    array X[N];
    array Y[N];
    for (i = 0; i < N; i++) {
      Y[i] = X[i] * 2 + 1;
    }
    |}
  in
  let p = Parser.parse src in
  Alcotest.(check int) "one param" 1 (Prog.nparams p);
  let s = List.hd p.Prog.stmts in
  (* domain: 0 <= i <= N-1 over dims (i, N) *)
  Alcotest.(check bool) "contains (3, 10)" true
    (Poly.contains_point s.Prog.domain (Vec.of_ints [ 3; 10 ]));
  Alcotest.(check bool) "excludes (10, 10)" false
    (Poly.contains_point s.Prog.domain (Vec.of_ints [ 10; 10 ]))

let test_plus_assign () =
  let src =
    {|
    array C[8][8];
    array A[8][8];
    for (i = 0; i <= 7; i++) {
      for (j = 0; j <= 7; j++) {
        C[i][j] += A[i][j] * A[j][i];
      }
    }
    |}
  in
  let p = Parser.parse src in
  let s = List.hd p.Prog.stmts in
  Alcotest.(check int) "write + three reads" 3 (List.length s.Prog.reads);
  Alcotest.(check bool) "first read is the accumulator" true
    ((List.hd s.Prog.reads).Prog.array = "C")

let test_executes_like_reference () =
  (* parse matmul, execute via the reference executor, compare with a
     direct float computation *)
  let n = 6 in
  let src =
    Printf.sprintf
      {|
      array C[%d][%d];
      array A[%d][%d];
      array B[%d][%d];
      for (i = 0; i <= %d; i++) {
        for (j = 0; j <= %d; j++) {
          for (k = 0; k <= %d; k++) {
            C[i][j] += A[i][k] * B[k][j];
          }
        }
      }
      |}
      n n n n n n (n - 1) (n - 1) (n - 1)
  in
  let p = Parser.parse src in
  let no_params name = failwith name in
  let m = Emsc_machine.Memory.create p ~param_env:no_params in
  let a i j = float_of_int (((i * 3) + j) mod 5) in
  let b i j = float_of_int (((i * 7) + (j * 2)) mod 9) in
  Emsc_machine.Memory.fill m "A" (fun idx -> a idx.(0) idx.(1));
  Emsc_machine.Memory.fill m "B" (fun idx -> b idx.(0) idx.(1));
  let (_ : Emsc_machine.Exec.counters) =
    Emsc_machine.Reference.run p ~param_env:no_params m ()
  in
  let c = Emsc_machine.Memory.global_data m "C" in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let expect = ref 0.0 in
      for k = 0 to n - 1 do
        expect := !expect +. (a i k *. b k j)
      done;
      if Float.abs (c.((i * n) + j) -. !expect) > 1e-9 then ok := false
    done
  done;
  Alcotest.(check bool) "matmul result" true !ok

let expect_error src =
  match Parser.parse src with
  | exception Parser.Error _ -> ()
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

let test_errors () =
  expect_error "array A[8]; for (i = 0; i <= 7; i++) { B[i] = 1; }";
  (* undeclared B *)
  expect_error "array A[8]; for (i = 0; i <= 7; i++) { A[i*i] = 1; }";
  (* non-affine subscript *)
  expect_error "array A[8][8]; for (i = 0; i <= 7; i++) { A[i] = 1; }";
  (* rank mismatch (missing subscript -> '=' unexpected) *)
  expect_error "for (i = 0; i <= 7; i+) { }";
  (* malformed increment *)
  expect_error "array A[8]; for (i = 0; i <= 7; j++) { A[i] = 1; }"
(* wrong increment variable *)

let test_comments_and_whitespace () =
  let p =
    Parser.parse
      "/* block */ array A[4]; // line\nfor (i = 0; i <= 3; i++) { A[i] = i; }"
  in
  Alcotest.(check int) "parsed" 1 (List.length p.Prog.stmts)

let () =
  Alcotest.run "lang"
    [
      ( "parser",
        [
          Alcotest.test_case "fig1 parses" `Quick test_parse_fig1;
          Alcotest.test_case "fig1 analysis identical" `Quick
            test_parsed_fig1_analysis;
          Alcotest.test_case "parametric" `Quick test_parse_parametric;
          Alcotest.test_case "plus-assign sugar" `Quick test_plus_assign;
          Alcotest.test_case "parsed matmul executes" `Quick
            test_executes_like_reference;
          Alcotest.test_case "errors rejected" `Quick test_errors;
          Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
        ] );
    ]

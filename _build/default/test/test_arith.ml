(* Unit and property tests for Zint and Q.  Properties are checked
   against native-int reference results on small operands and against
   algebraic identities on large ones. *)

open Emsc_arith

let z = Zint.of_int
let zs = Zint.of_string

let check_z msg expected actual =
  Alcotest.(check string) msg expected (Zint.to_string actual)

(* --- Zint unit tests ------------------------------------------------- *)

let test_of_int_roundtrip () =
  List.iter (fun n ->
    Alcotest.(check (option int))
      (Printf.sprintf "roundtrip %d" n)
      (Some n)
      (Zint.to_int_opt (z n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; max_int - 1; min_int + 1;
      1 lsl 31; -(1 lsl 31); (1 lsl 62) - 1 ]

let test_string_roundtrip () =
  List.iter (fun s -> check_z s s (zs s))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-99999999999999999999999999999999999999";
      "1000000000000000000000000000000000" ]

let test_add_carries () =
  check_z "carry chain"
    "18446744073709551616"
    (Zint.add (zs "18446744073709551615") Zint.one);
  check_z "negative wrap" "-1" (Zint.sub (zs "999") (zs "1000"))

let test_mul_large () =
  check_z "big square"
    "340282366920938463463374607431768211456"
    (Zint.mul (zs "18446744073709551616") (zs "18446744073709551616"))

let test_divmod_signs () =
  (* truncated semantics, like OCaml's / and mod *)
  List.iter (fun (a, b) ->
    let q, r = Zint.divmod (z a) (z b) in
    Alcotest.(check int) (Printf.sprintf "%d / %d" a b) (a / b)
      (Zint.to_int_exn q);
    Alcotest.(check int) (Printf.sprintf "%d mod %d" a b) (a mod b)
      (Zint.to_int_exn r))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (100, 10); (99, 100) ]

let test_fdiv_cdiv () =
  List.iter (fun (a, b, fd, cd) ->
    Alcotest.(check int) (Printf.sprintf "fdiv %d %d" a b) fd
      (Zint.to_int_exn (Zint.fdiv (z a) (z b)));
    Alcotest.(check int) (Printf.sprintf "cdiv %d %d" a b) cd
      (Zint.to_int_exn (Zint.cdiv (z a) (z b))))
    [ (7, 2, 3, 4); (-7, 2, -4, -3); (7, -2, -4, -3); (-7, -2, 3, 4);
      (6, 3, 2, 2); (-6, 3, -2, -2) ]

let test_gcd () =
  check_z "gcd" "6" (Zint.gcd (z 54) (z (-24)));
  check_z "gcd with zero" "7" (Zint.gcd (z 0) (z 7));
  check_z "gcd zero zero" "0" (Zint.gcd Zint.zero Zint.zero);
  check_z "lcm" "36" (Zint.lcm (z 12) (z (-18)))

let test_pow () =
  check_z "2^100" "1267650600228229401496703205376" (Zint.pow (z 2) 100);
  check_z "x^0" "1" (Zint.pow (z 12345) 0);
  check_z "(-3)^3" "-27" (Zint.pow (z (-3)) 3)

let test_big_division () =
  let a = zs "123456789123456789123456789123456789" in
  let b = zs "987654321987654321" in
  let q, r = Zint.divmod a b in
  check_z "reconstruct" (Zint.to_string a) (Zint.add (Zint.mul q b) r);
  Alcotest.(check bool) "remainder in range" true
    (Zint.compare (Zint.abs r) (Zint.abs b) < 0)

let test_shift_left () =
  check_z "1 << 100" "1267650600228229401496703205376"
    (Zint.shift_left Zint.one 100);
  check_z "5 << 31" (Zint.to_string (Zint.mul (z 5) (z (1 lsl 31))))
    (Zint.shift_left (z 5) 31)

let test_compare_total_order () =
  let values =
    [ zs "-100000000000000000000"; z (-5); Zint.zero; z 3;
      zs "99999999999999999999" ]
  in
  List.iteri (fun i a ->
    List.iteri (fun j b ->
      Alcotest.(check int)
        (Printf.sprintf "cmp %d %d" i j)
        (compare i j)
        (Zint.compare a b))
      values)
    values

(* --- Zint properties -------------------------------------------------- *)

let small_int = QCheck.int_range (-1_000_000) 1_000_000

let big_pair =
  (* random bignums built from several int factors to exceed one limb *)
  QCheck.map
    (fun (a, b, c) ->
      Zint.add (Zint.mul (Zint.mul (z a) (z b)) (z c)) (z a))
    (QCheck.triple small_int small_int small_int)

let prop_add_matches_int =
  QCheck.Test.make ~name:"zint add matches int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (a, b) -> Zint.to_int_exn (Zint.add (z a) (z b)) = a + b)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"zint mul matches int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (a, b) -> Zint.to_int_exn (Zint.mul (z a) (z b)) = a * b)

let prop_divmod_reconstruct =
  QCheck.Test.make ~name:"zint divmod reconstructs" ~count:500
    (QCheck.pair big_pair big_pair)
    (fun (a, b) ->
      QCheck.assume (not (Zint.is_zero b));
      let q, r = Zint.divmod a b in
      Zint.equal a (Zint.add (Zint.mul q b) r)
      && Zint.compare (Zint.abs r) (Zint.abs b) < 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"zint string roundtrip" ~count:300 big_pair
    (fun a -> Zint.equal a (Zint.of_string (Zint.to_string a)))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:300
    (QCheck.pair big_pair big_pair)
    (fun (a, b) ->
      let g = Zint.gcd a b in
      if Zint.is_zero g then Zint.is_zero a && Zint.is_zero b
      else
        Zint.is_zero (Zint.rem a g) && Zint.is_zero (Zint.rem b g))

let prop_mul_associative =
  QCheck.Test.make ~name:"mul associative" ~count:200
    (QCheck.triple big_pair big_pair big_pair)
    (fun (a, b, c) ->
      Zint.equal (Zint.mul a (Zint.mul b c)) (Zint.mul (Zint.mul a b) c))

let prop_fdiv_floor =
  QCheck.Test.make ~name:"fdiv is floor" ~count:500
    (QCheck.pair small_int small_int)
    (fun (a, b) ->
      QCheck.assume (b <> 0);
      Zint.to_int_exn (Zint.fdiv (z a) (z b))
      = int_of_float (Float.floor (float_of_int a /. float_of_int b)))

(* --- Q tests ----------------------------------------------------------- *)

let q = Q.of_ints

let test_q_canonical () =
  Alcotest.(check string) "reduced" "2/3" (Q.to_string (q 4 6));
  Alcotest.(check string) "sign in num" "-2/3" (Q.to_string (q 2 (-3)));
  Alcotest.(check string) "zero" "0" (Q.to_string (q 0 17));
  Alcotest.(check string) "integer" "5" (Q.to_string (q 10 2))

let test_q_arith () =
  Alcotest.(check string) "1/2 + 1/3" "5/6"
    (Q.to_string (Q.add (q 1 2) (q 1 3)));
  Alcotest.(check string) "2/3 * 3/4" "1/2"
    (Q.to_string (Q.mul (q 2 3) (q 3 4)));
  Alcotest.(check string) "(1/2) / (1/4)" "2"
    (Q.to_string (Q.div (q 1 2) (q 1 4)))

let test_q_floor_ceil () =
  List.iter (fun (n, d, fl, ce) ->
    Alcotest.(check int) (Printf.sprintf "floor %d/%d" n d) fl
      (Zint.to_int_exn (Q.floor (q n d)));
    Alcotest.(check int) (Printf.sprintf "ceil %d/%d" n d) ce
      (Zint.to_int_exn (Q.ceil (q n d))))
    [ (7, 2, 3, 4); (-7, 2, -4, -3); (6, 2, 3, 3); (-6, 2, -3, -3);
      (1, 3, 0, 1); (-1, 3, -1, 0) ]

let test_q_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.compare (q 1 3) (q 1 2) < 0);
  Alcotest.(check bool) "-1/2 < -1/3" true (Q.compare (q (-1) 2) (q (-1) 3) < 0);
  Alcotest.(check bool) "equal" true (Q.equal (q 2 4) (q 1 2))

let qgen =
  QCheck.map
    (fun (n, d) -> Q.make (z n) (z (if d = 0 then 1 else d)))
    (QCheck.pair small_int small_int)

let prop_q_add_comm =
  QCheck.Test.make ~name:"q add commutative" ~count:300
    (QCheck.pair qgen qgen)
    (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a))

let prop_q_distributive =
  QCheck.Test.make ~name:"q distributive" ~count:300
    (QCheck.triple qgen qgen qgen)
    (fun (a, b, c) ->
      Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_q_floor_le =
  QCheck.Test.make ~name:"floor <= q <= ceil" ~count:300 qgen
    (fun a ->
      Q.compare (Q.of_zint (Q.floor a)) a <= 0
      && Q.compare a (Q.of_zint (Q.ceil a)) <= 0)

let prop_q_inv_involutive =
  QCheck.Test.make ~name:"inv involutive" ~count:300 qgen
    (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.equal a (Q.inv (Q.inv a)))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_add_matches_int; prop_mul_matches_int; prop_divmod_reconstruct;
        prop_string_roundtrip; prop_gcd_divides; prop_mul_associative;
        prop_fdiv_floor; prop_q_add_comm; prop_q_distributive;
        prop_q_floor_le; prop_q_inv_involutive ]
  in
  Alcotest.run "arith"
    [
      ( "zint",
        [
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "add carries" `Quick test_add_carries;
          Alcotest.test_case "mul large" `Quick test_mul_large;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "fdiv cdiv" `Quick test_fdiv_cdiv;
          Alcotest.test_case "gcd lcm" `Quick test_gcd;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "big division" `Quick test_big_division;
          Alcotest.test_case "shift left" `Quick test_shift_left;
          Alcotest.test_case "total order" `Quick test_compare_total_order;
        ] );
      ( "q",
        [
          Alcotest.test_case "canonical form" `Quick test_q_canonical;
          Alcotest.test_case "arithmetic" `Quick test_q_arith;
          Alcotest.test_case "floor ceil" `Quick test_q_floor_ceil;
          Alcotest.test_case "compare" `Quick test_q_compare;
        ] );
      ("properties", props);
    ]

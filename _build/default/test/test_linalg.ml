(* Tests for integer vectors and matrices: rank, nullspace, HNF,
   solving. *)

open Emsc_arith
open Emsc_linalg

let z = Zint.of_int

let test_vec_basic () =
  let a = Vec.of_ints [ 1; 2; 3 ] and b = Vec.of_ints [ 4; 5; 6 ] in
  Alcotest.(check (list int)) "add" [ 5; 7; 9 ] (Vec.to_ints_exn (Vec.add a b));
  Alcotest.(check (list int)) "sub" [ -3; -3; -3 ]
    (Vec.to_ints_exn (Vec.sub a b));
  Alcotest.(check int) "dot" 32 (Zint.to_int_exn (Vec.dot a b));
  Alcotest.(check (list int)) "combine" [ -2; -1; 0 ]
    (Vec.to_ints_exn (Vec.combine (z 2) a Zint.minus_one b))

let test_vec_normalize () =
  Alcotest.(check (list int)) "normalize" [ 2; -3; 4 ]
    (Vec.to_ints_exn (Vec.normalize (Vec.of_ints [ 6; -9; 12 ])));
  Alcotest.(check (list int)) "zero unchanged" [ 0; 0 ]
    (Vec.to_ints_exn (Vec.normalize (Vec.of_ints [ 0; 0 ])))

let test_vec_insert_remove () =
  let v = Vec.of_ints [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "insert mid" [ 1; 9; 2; 3 ]
    (Vec.to_ints_exn (Vec.insert v 1 (z 9)));
  Alcotest.(check (list int)) "insert end" [ 1; 2; 3; 9 ]
    (Vec.to_ints_exn (Vec.insert v 3 (z 9)));
  Alcotest.(check (list int)) "remove" [ 1; 3 ]
    (Vec.to_ints_exn (Vec.remove v 1))

let test_mat_mul () =
  let a = Mat.of_ints [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = Mat.of_ints [ [ 5; 6 ]; [ 7; 8 ] ] in
  Alcotest.(check bool) "product" true
    (Mat.equal (Mat.mul a b) (Mat.of_ints [ [ 19; 22 ]; [ 43; 50 ] ]));
  Alcotest.(check bool) "identity" true
    (Mat.equal (Mat.mul a (Mat.identity 2)) a)

let test_rank () =
  Alcotest.(check int) "full rank" 2
    (Mat.rank (Mat.of_ints [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.(check int) "deficient" 1
    (Mat.rank (Mat.of_ints [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.(check int) "zero matrix" 0 (Mat.rank (Mat.of_ints [ [ 0; 0 ] ]));
  Alcotest.(check int) "tall" 2
    (Mat.rank (Mat.of_ints [ [ 1; 0 ]; [ 0; 1 ]; [ 1; 1 ] ]));
  (* rank of an access matrix with fewer rows than columns, e.g. the
     paper's reuse criterion rank(F) < dim(iteration space) *)
  Alcotest.(check int) "wide" 1 (Mat.rank (Mat.of_ints [ [ 1; 0; 0 ] ]))

let test_nullspace () =
  let m = Mat.of_ints [ [ 1; 2; 3 ] ] in
  let basis = Mat.nullspace m in
  Alcotest.(check int) "dimension" 2 (List.length basis);
  List.iter (fun v ->
    Alcotest.(check bool) "in kernel" true
      (Vec.is_zero (Mat.mul_vec m v)))
    basis;
  Alcotest.(check int) "trivial kernel" 0
    (List.length (Mat.nullspace (Mat.identity 3)))

let test_solve () =
  let m = Mat.of_ints [ [ 2; 1 ]; [ 1; -1 ] ] in
  (match Mat.solve m (Vec.of_ints [ 5; 1 ]) with
   | None -> Alcotest.fail "expected a solution"
   | Some x ->
     Alcotest.(check string) "x0" "2" (Q.to_string x.(0));
     Alcotest.(check string) "x1" "1" (Q.to_string x.(1)));
  (* inconsistent *)
  let m2 = Mat.of_ints [ [ 1; 1 ]; [ 2; 2 ] ] in
  Alcotest.(check bool) "inconsistent" true
    (Mat.solve m2 (Vec.of_ints [ 1; 3 ]) = None);
  (* underdetermined: free vars set to 0 *)
  (match Mat.solve (Mat.of_ints [ [ 1; 1 ] ]) (Vec.of_ints [ 4 ]) with
   | None -> Alcotest.fail "expected a solution"
   | Some x ->
     Alcotest.(check string) "pivot var" "4" (Q.to_string x.(0));
     Alcotest.(check string) "free var" "0" (Q.to_string x.(1)))

let test_hnf () =
  let m = Mat.of_ints [ [ 2; 4; 4 ]; [ -6; 6; 12 ]; [ 10; 4; 16 ] ] in
  let h, u = Mat.hermite_normal_form m in
  Alcotest.(check bool) "h = u * m" true (Mat.equal h (Mat.mul u m));
  (* H is upper triangular in the pivot structure with positive pivots *)
  let pivots_ok = ref true in
  let last_pivot_col = ref (-1) in
  Array.iter (fun row ->
    match Array.to_list row |> List.mapi (fun i x -> (i, x))
          |> List.find_opt (fun (_, x) -> not (Zint.is_zero x))
    with
    | None -> ()
    | Some (j, x) ->
      if j <= !last_pivot_col || Zint.is_negative x then pivots_ok := false;
      last_pivot_col := j)
    h;
  Alcotest.(check bool) "echelon structure" true !pivots_ok

let test_hnf_unimodular () =
  let m = Mat.of_ints [ [ 3; 5 ]; [ 7; 11 ] ] in
  let _, u = Mat.hermite_normal_form m in
  (* |det u| = 1 for 2x2 *)
  let det =
    Zint.sub (Zint.mul u.(0).(0) u.(1).(1)) (Zint.mul u.(0).(1) u.(1).(0))
  in
  Alcotest.(check bool) "unimodular" true (Zint.is_one (Zint.abs det))

(* --- properties -------------------------------------------------------- *)

let small_mat_gen rows cols =
  QCheck.map
    (fun entries ->
      Array.init rows (fun i ->
        Vec.of_array (Array.init cols (fun j -> entries.((i * cols) + j)))))
    QCheck.(array_of_size (QCheck.Gen.return (rows * cols))
              (int_range (-9) 9))

let prop_rank_transpose =
  QCheck.Test.make ~name:"rank m = rank m^T" ~count:200 (small_mat_gen 3 4)
    (fun m -> Mat.rank m = Mat.rank (Mat.transpose m))

let prop_nullspace_in_kernel =
  QCheck.Test.make ~name:"nullspace vectors are in kernel" ~count:200
    (small_mat_gen 2 4)
    (fun m ->
      List.for_all (fun v -> Vec.is_zero (Mat.mul_vec m v)) (Mat.nullspace m))

let prop_rank_nullity =
  QCheck.Test.make ~name:"rank + nullity = cols" ~count:200
    (small_mat_gen 3 4)
    (fun m -> Mat.rank m + List.length (Mat.nullspace m) = Mat.cols m)

let prop_hnf_consistent =
  QCheck.Test.make ~name:"hnf: h = u*m and rank preserved" ~count:200
    (small_mat_gen 3 3)
    (fun m ->
      let h, u = Mat.hermite_normal_form m in
      Mat.equal h (Mat.mul u m) && Mat.rank h = Mat.rank m)

let prop_solve_verifies =
  QCheck.Test.make ~name:"solve gives a real solution" ~count:200
    (QCheck.pair (small_mat_gen 3 3)
       QCheck.(array_of_size (QCheck.Gen.return 3) (int_range (-9) 9)))
    (fun (m, b) ->
      let bv = Vec.of_array b in
      match Mat.solve m bv with
      | None -> true (* inconsistency is allowed; checked in unit tests *)
      | Some x ->
        (* check m x = b over Q *)
        Array.for_all2
          (fun row bi ->
            let acc = ref Q.zero in
            Array.iteri (fun j mij ->
              acc := Q.add !acc (Q.mul (Q.of_zint mij) x.(j)))
              row;
            Q.equal !acc (Q.of_zint bi))
          m bv)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_rank_transpose; prop_nullspace_in_kernel; prop_rank_nullity;
        prop_hnf_consistent; prop_solve_verifies ]
  in
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "normalize" `Quick test_vec_normalize;
          Alcotest.test_case "insert/remove" `Quick test_vec_insert_remove;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "nullspace" `Quick test_nullspace;
          Alcotest.test_case "solve" `Quick test_solve;
          Alcotest.test_case "hnf" `Quick test_hnf;
          Alcotest.test_case "hnf unimodular" `Quick test_hnf_unimodular;
        ] );
      ("properties", props);
    ]

(* Optimizer tests: Nelder-Mead and the Section 4.3 tile-size search. *)

open Emsc_optim
open Emsc_transform

let test_nm_quadratic () =
  let f x = ((x.(0) -. 3.0) ** 2.0) +. ((x.(1) +. 2.0) ** 2.0) in
  let x, v = Neldermead.minimize ~f ~x0:[| 0.0; 0.0 |] () in
  Alcotest.(check bool) "near optimum" true
    (Float.abs (x.(0) -. 3.0) < 0.01 && Float.abs (x.(1) +. 2.0) < 0.01);
  Alcotest.(check bool) "value small" true (v < 1e-3)

let test_nm_rosenbrock () =
  let f x =
    let a = 1.0 -. x.(0) in
    let b = x.(1) -. (x.(0) *. x.(0)) in
    (a *. a) +. (100.0 *. b *. b)
  in
  let options = { Neldermead.default_options with max_iter = 4000 } in
  let x, _ =
    Neldermead.minimize_multistart ~options ~f
      ~starts:[ [| -1.0; 1.0 |]; [| 0.0; 0.0 |]; [| 2.0; 2.0 |] ] ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "rosenbrock (%f, %f)" x.(0) x.(1))
    true
    (Float.abs (x.(0) -. 1.0) < 0.05 && Float.abs (x.(1) -. 1.0) < 0.1)

let test_nm_1d () =
  let f x = Float.abs (x.(0) -. 42.0) in
  let x, _ = Neldermead.minimize ~f ~x0:[| 0.0 |] () in
  Alcotest.(check bool) "1d" true (Float.abs (x.(0) -. 42.0) < 0.1)

(* --- tile search -------------------------------------------------------------- *)

(* analytic problem with a known discrete optimum:
     cost(t) = 1000/t0 + 4*t0 + 1000/t1 + t1,  footprint = t0 + t1,
   memory limit high enough not to bind:
     optimum near t0 = sqrt(250) ~ 15.8, t1 = sqrt(1000) ~ 31.6 *)
let analytic_problem ~limit =
  { Tilesearch.ranges = [| (1, 128); (1, 128) |];
    mem_limit_words = limit;
    threads = 1.0;
    sync_cost = 0.0;
    transfer_cost = 0.0;
    evaluate =
      (fun t ->
        let t0 = float_of_int t.(0) and t1 = float_of_int t.(1) in
        Some
          ( (1000.0 /. t0) +. (4.0 *. t0) +. (1000.0 /. t1) +. t1,
            t.(0) + t.(1) )) }

let test_search_unconstrained () =
  match Tilesearch.search (analytic_problem ~limit:10000) with
  | Some c ->
    Alcotest.(check bool)
      (Printf.sprintf "found (%d, %d)" c.Tilesearch.t.(0) c.Tilesearch.t.(1))
      true
      (abs (c.Tilesearch.t.(0) - 16) <= 2 && abs (c.Tilesearch.t.(1) - 32) <= 3)
  | None -> Alcotest.fail "expected a candidate"

let test_search_memory_binds () =
  (* limit 20: must trade down; every returned candidate respects it *)
  match Tilesearch.search (analytic_problem ~limit:20) with
  | Some c ->
    Alcotest.(check bool) "within memory" true (c.Tilesearch.footprint <= 20);
    (* constrained optimum on t0 + t1 <= 20 is around (8, 12) *)
    Alcotest.(check bool) "still sensible" true
      (c.Tilesearch.t.(0) >= 4 && c.Tilesearch.t.(1) >= 8)
  | None -> Alcotest.fail "expected a candidate"

let test_search_parallelism_binds () =
  (* product must reach the thread count *)
  let pb =
    { (analytic_problem ~limit:10000) with
      Tilesearch.threads = 2048.0 }
  in
  match Tilesearch.search pb with
  | Some c ->
    Alcotest.(check bool) "t0*t1 >= threads" true
      (c.Tilesearch.t.(0) * c.Tilesearch.t.(1) >= 2048)
  | None -> Alcotest.fail "expected a candidate"

let test_search_infeasible () =
  let pb =
    { (analytic_problem ~limit:1) with Tilesearch.threads = 1.0 }
  in
  (* footprint = t0 + t1 >= 2 > 1: nothing feasible *)
  Alcotest.(check bool) "no candidate" true (Tilesearch.search pb = None)

let test_search_pow2 () =
  match Tilesearch.search ~snap_pow2:true (analytic_problem ~limit:10000) with
  | Some c ->
    let is_pow2 v = v land (v - 1) = 0 in
    Alcotest.(check bool) "powers of two" true
      (is_pow2 c.Tilesearch.t.(0) && is_pow2 c.Tilesearch.t.(1));
    Alcotest.(check bool) "right optimum (16, 32)" true
      (c.Tilesearch.t.(0) = 16 && c.Tilesearch.t.(1) = 32)
  | None -> Alcotest.fail "expected a candidate"

let test_movement_profile_hoisting () =
  (* matmul: C's movement outside kM runs once per block tile;
     A's movement inside kM runs n/tk times *)
  let p = Emsc_kernels.Matmul.program ~n:32 in
  let spec =
    [| { Tile.block = Some 8; mem = None; thread = None };
       { Tile.block = Some 8; mem = None; thread = None };
       { Tile.block = None; mem = Some 4; thread = None } |]
  in
  let tp = Tile.tile_program p spec in
  let plan =
    Emsc_core.Plan.plan_block ~arch:`Cell
      ~param_context:(Tile.origin_context p spec) tp
  in
  let occ name =
    let b =
      List.find (fun (b : Emsc_core.Plan.buffered) ->
        b.Emsc_core.Plan.buffer.Emsc_core.Alloc.array = name)
        plan.Emsc_core.Plan.buffered
    in
    Tile.movement_profile p spec
      (b.Emsc_core.Plan.move_in, b.Emsc_core.Plan.move_out)
  in
  Alcotest.(check (float 0.001)) "C moved once per block tile" 1.0 (occ "C");
  Alcotest.(check (float 0.001)) "A moved n/tk times" 8.0 (occ "A")

let () =
  Alcotest.run "optim"
    [
      ( "neldermead",
        [
          Alcotest.test_case "quadratic" `Quick test_nm_quadratic;
          Alcotest.test_case "rosenbrock" `Quick test_nm_rosenbrock;
          Alcotest.test_case "one-dimensional" `Quick test_nm_1d;
        ] );
      ( "tilesearch",
        [
          Alcotest.test_case "unconstrained" `Quick test_search_unconstrained;
          Alcotest.test_case "memory constraint" `Quick
            test_search_memory_binds;
          Alcotest.test_case "parallelism constraint" `Quick
            test_search_parallelism_binds;
          Alcotest.test_case "infeasible" `Quick test_search_infeasible;
          Alcotest.test_case "pow2 snapping" `Quick test_search_pow2;
          Alcotest.test_case "movement occurrences" `Quick
            test_movement_profile_hoisting;
        ] );
    ]

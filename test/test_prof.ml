(* The compiler self-profiler: zero-cost-when-disabled discipline,
   hierarchical accumulation with exact call counts under a 4-domain
   hammer, deterministic collapsed-stack export for a fixed compile,
   preserved legacy trace counters at the converted poly call-sites,
   histogram quantiles, and bench-compare regression attribution. *)

open Emsc_obs
module BC = Emsc_audit.Bench_compare

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

let with_prof f =
  Prof.reset ();
  Prof.enable ();
  Fun.protect f ~finally:(fun () ->
    Prof.disable ();
    Prof.reset ();
    Prof.use_default_clock ())

(* each clock read advances 1 ms, so every probe "takes" exactly the
   reads its dynamic extent performs — fully deterministic *)
let install_fake_clock () =
  let t = ref 0.0 in
  Prof.set_clock (fun () ->
    t := !t +. 0.001;
    !t)

let frame prof stack =
  match List.find_opt (fun f -> f.Prof.f_stack = stack) prof with
  | Some f -> f
  | None ->
    Alcotest.failf "no frame for stack %s" (String.concat ";" stack)

(* ------------------------------------------------------------------ *)
(* Disabled: no output, no allocation                                  *)
(* ------------------------------------------------------------------ *)

(* top-level so the [counted] call-site is fully applied: the disabled
   path must not build a closure *)
let na_impl x = x + 1

let test_disabled_records_nothing () =
  Prof.reset ();
  Prof.disable ();
  checki "counted still runs the function" 42 (Prof.counted "na" na_impl 41);
  ignore (Prof.probe "p" (fun () -> 7));
  Prof.add "c" 1.0;
  checki "nothing recorded while disabled" 0 (List.length (Prof.snapshot ()));
  checks "collapsed is empty" "" (Prof.collapsed (Prof.snapshot ()))

let test_disabled_no_allocation () =
  Prof.reset ();
  Prof.disable ();
  (* warm up so the loop's code path is settled before measuring *)
  ignore (Prof.counted "prof.na" na_impl 0);
  Prof.add "prof.na.counter" 1.0;
  let w0 = Gc.minor_words () in
  for i = 0 to 99_999 do
    ignore (Prof.counted "prof.na" na_impl i);
    Prof.add "prof.na.counter" 1.0
  done;
  let dw = Gc.minor_words () -. w0 in
  checkb (Printf.sprintf "no allocation when disabled (%.0f words)" dw) true
    (dw < 64.0)

(* ------------------------------------------------------------------ *)
(* Hierarchical accumulation                                           *)
(* ------------------------------------------------------------------ *)

let test_caller_attribution_and_self_time () =
  with_prof (fun () ->
    install_fake_clock ();
    (* clock reads: outer t0 @1ms, inner t0 @2ms, inner pop @3ms,
       outer pop @4ms — inner records 1 ms, outer spans 3 ms *)
    Prof.probe "outer" (fun () ->
      Prof.probe "inner" (fun () -> Prof.add "ticks" 3.0));
    (* the same leaf under a different caller accumulates separately *)
    Prof.probe "other" (fun () -> Prof.probe "inner" (fun () -> ()));
    let prof = Prof.snapshot () in
    checki "four distinct stacks" 4 (List.length prof);
    let outer = frame prof [ "outer" ] in
    checki "outer calls" 1 outer.Prof.f_calls;
    checkf "outer total spans the child's reads" 0.003 outer.Prof.f_total_s;
    checkf "outer self excludes the probed child" 0.002 outer.Prof.f_self_s;
    let inner = frame prof [ "outer"; "inner" ] in
    checkf "inner total" 0.001 inner.Prof.f_total_s;
    checkf "inner self = total (leaf)" 0.001 inner.Prof.f_self_s;
    checkf "counter attributed to the full stack" 3.0
      (List.assoc "ticks" inner.Prof.f_counters);
    checkb "counter absent under the other caller" true
      (List.assoc_opt "ticks" (frame prof [ "other"; "inner" ]).Prof.f_counters
       = None);
    checkf "attributed = both roots" 0.006 (Prof.attributed_s prof);
    (* per-pass aggregation merges the two "inner" stacks *)
    let inner_pass =
      List.find (fun p -> p.Prof.p_name = "inner") (Prof.passes prof)
    in
    checki "pass calls summed across callers" 2 inner_pass.Prof.p_calls;
    checkf "pass self summed across callers" 0.002 inner_pass.Prof.p_self_s)

let test_exception_still_records () =
  with_prof (fun () ->
    install_fake_clock ();
    (try Prof.probe "boom" (fun () -> failwith "x") with Failure _ -> ());
    let f = frame (Prof.snapshot ()) [ "boom" ] in
    checki "errored probe counted" 1 f.Prof.f_calls;
    checkb "errored probe timed" true (f.Prof.f_total_s > 0.0);
    (* the stack was popped: a later probe is a root, not a child *)
    Prof.probe "after" (fun () -> ());
    ignore (frame (Prof.snapshot ()) [ "after" ]))

let test_four_domain_hammer_exact_counts () =
  with_prof (fun () ->
    let iters = 1000 in
    let work () =
      for _ = 1 to iters do
        Prof.probe "outer" (fun () ->
          Prof.probe "inner" (fun () -> Prof.add "ticks" 1.0))
      done
    in
    let domains = List.init 4 (fun _ -> Domain.spawn work) in
    List.iter Domain.join domains;
    let prof = Prof.snapshot () in
    let outer = frame prof [ "outer" ] in
    let inner = frame prof [ "outer"; "inner" ] in
    checki "outer calls exact across domains" (4 * iters) outer.Prof.f_calls;
    checki "inner calls exact across domains" (4 * iters) inner.Prof.f_calls;
    checkf "counter total exact across domains"
      (float_of_int (4 * iters))
      (List.assoc "ticks" inner.Prof.f_counters))

(* ------------------------------------------------------------------ *)
(* Legacy trace counters at the converted poly call-sites              *)
(* ------------------------------------------------------------------ *)

let test_poly_trace_counters_preserved () =
  let open Emsc_poly in
  Trace.reset ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    (fun () ->
      let box =
        Poly.of_ineqs ~dim:2
          [ [ 1; 0; 0 ]; [ -1; 0; 7 ]; [ 0; 1; 0 ]; [ 0; -1; 7 ] ]
      in
      Trace.span "t" (fun () ->
        ignore (Poly.is_empty box);
        ignore (Poly.is_empty box);
        ignore (Poly.eliminate_dim box 1);
        ignore (Poly.remove_redundant box));
      let agg = Trace.aggregate () in
      let t = List.find (fun a -> a.Trace.agg_name = "t") agg in
      let total name =
        match List.assoc_opt name t.Trace.agg_counters with
        | Some v -> v
        | None -> Alcotest.failf "span lost counter %s" name
      in
      (* 2 explicit calls + the one remove_redundant makes internally,
         exactly as the pre-Prof call-sites counted *)
      checkf "poly.is_empty counter still emitted" 3.0 (total "poly.is_empty");
      checkf "poly.eliminate_dim counter still emitted" 1.0
        (total "poly.eliminate_dim");
      checkf "poly.remove_redundant counter still emitted" 1.0
        (total "poly.remove_redundant"))

(* ------------------------------------------------------------------ *)
(* Deterministic collapsed export for a fixed compile                  *)
(* ------------------------------------------------------------------ *)

let compile_once () =
  let open Emsc_driver in
  Prof.reset ();
  install_fake_clock ();
  (match
     Pipeline.compile ~cache:Cache.off (Emsc_kernels.Matmul.job ~n:16 ())
   with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "compile failed: %s" (Frontend.error_message e));
  Prof.collapsed (Prof.snapshot ())

let test_collapsed_deterministic_for_fixed_compile () =
  with_prof (fun () ->
    let first = compile_once () in
    let second = compile_once () in
    checkb "collapsed output non-trivial" true (String.length first > 0);
    checks "identical across identical compiles" first second;
    let lines = String.split_on_char '\n' (String.trim first) in
    List.iter (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "malformed collapsed line %S" line
      | Some i ->
        let v = String.sub line (i + 1) (String.length line - i - 1) in
        checkb
          (Printf.sprintf "integer self-µs in %S" line)
          true
          (match int_of_string_opt v with Some n -> n >= 0 | None -> false))
      lines;
    checkb "driver stages present" true
      (List.exists
         (fun l -> String.length l >= 7 && String.sub l 0 7 = "driver.")
         lines))

(* ------------------------------------------------------------------ *)
(* Histogram quantiles                                                 *)
(* ------------------------------------------------------------------ *)

let test_metrics_quantiles () =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
    (fun () ->
      (* values 1..8 fill buckets 0..3 as 1,1,2,4 observations *)
      for v = 1 to 8 do
        Metrics.observe "q" (float_of_int v)
      done;
      let h =
        match Metrics.find (Metrics.snapshot ()) "q" with
        | Some v -> v
        | None -> Alcotest.fail "histogram not recorded"
      in
      let q p =
        match Metrics.quantile h p with
        | Some v -> v
        | None -> Alcotest.fail "quantile on a histogram"
      in
      (* rank 4 of 8 lands at the top of bucket (2,4] *)
      checkf "p50" 4.0 (q 0.5);
      (* rank 7.92 interpolates inside (4,8] *)
      checkf "p99" 7.92 (q 0.99);
      checkb "monotone in q" true (q 0.5 <= q 0.95 && q 0.95 <= q 0.99);
      checkb "counters have no quantiles" true
        (Metrics.quantile (Metrics.Counter 3.0) 0.5 = None);
      (* the JSON rendering carries the fields *)
      let j = Metrics.snapshot_json (Metrics.snapshot ()) in
      let s = Json.to_string j in
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl
          && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      checkb "p50 rendered" true (contains "\"p50\"" s);
      checkb "p95 rendered" true (contains "\"p95\"" s);
      checkb "p99 rendered" true (contains "\"p99\"" s))

(* ------------------------------------------------------------------ *)
(* Bench-compare regression attribution                                *)
(* ------------------------------------------------------------------ *)

let artifact ~wall ~passes =
  Json.Obj
    [ ( "figure_wall_ms",
        Json.Obj [ ("figA", Json.Float wall) ] );
      ( "kernel_counters",
        Json.Obj
          [ ( "k",
              Json.Obj
                [ ("global_loads", Json.Float 10.0);
                  ("global_stores", Json.Float 10.0) ] ) ] );
      ( "compile_profile",
        Json.Obj
          [ ("schema", Json.Str "emsc-compile-profile/1");
            ( "passes",
              Json.Obj
                (List.map (fun (name, self_ms) ->
                   ( name,
                     Json.Obj
                       [ ("calls", Json.Int 1);
                         ("total_ms", Json.Float self_ms);
                         ("self_ms", Json.Float self_ms) ] ))
                   passes) ) ] ) ]

let compare_exn old_j new_j =
  match BC.compare old_j new_j with
  | Ok r -> r
  | Error e -> Alcotest.failf "compare failed: %s" e

let test_attribution_names_regressed_pass () =
  let old_j =
    artifact ~wall:100.0
      ~passes:[ ("poly.is_empty", 10.0); ("simplex.minimize", 40.0) ]
  in
  let new_j =
    artifact ~wall:300.0 (* 3x: past the default 0.5 wall tolerance *)
      ~passes:
        [ ("poly.is_empty", 12.0); (* within tolerance: not named *)
          ("simplex.minimize", 200.0); (* the offender *)
          ("scan.uset", 50.0) (* absent in old: tolerated as added *) ]
  in
  let r = compare_exn old_j new_j in
  checkb "wall regression fired" false (BC.ok r);
  (match r.BC.r_attribution with
   | [ c ] ->
     checks "offending pass named" "simplex.minimize" c.BC.c_key;
     checks "attribution metric" "pass_self_ms" c.BC.c_metric;
     checkf "old self" 40.0 c.BC.c_old;
     checkf "new self" 200.0 c.BC.c_new
   | l -> Alcotest.failf "expected exactly 1 attribution, got %d"
            (List.length l));
  checkb "absent-in-old pass tolerated as added" true
    (List.mem "scan.uset/pass_self_ms" r.BC.r_added);
  checkb "absent-in-old pass never attributed" true
    (List.for_all (fun c -> c.BC.c_key <> "scan.uset") r.BC.r_attribution);
  (* the failure message itself names the pass *)
  let msg = Format.asprintf "%a" BC.pp r in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl
      && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "pp names the offender" true (contains "simplex.minimize" msg);
  checkb "pp labels the attribution" true (contains "ATTRIBUTION" msg)

let test_no_attribution_without_wall_regression () =
  let old_j = artifact ~wall:100.0 ~passes:[ ("poly.is_empty", 10.0) ] in
  let new_j =
    (* pass self time exploded but wall stayed put: profiles alone
       must neither fail the gate nor produce attribution noise *)
    artifact ~wall:101.0 ~passes:[ ("poly.is_empty", 90.0) ]
  in
  let r = compare_exn old_j new_j in
  checkb "still ok" true (BC.ok r);
  checki "no attribution without a wall regression" 0
    (List.length r.BC.r_attribution)

let test_attribution_tolerates_missing_profile () =
  (* an old artifact that predates the profiler has no compile_profile
     section at all: the comparison must still work, with every new
     pass surfacing as added *)
  let old_j =
    Json.Obj
      [ ("figure_wall_ms", Json.Obj [ ("figA", Json.Float 100.0) ]);
        ( "kernel_counters",
          Json.Obj
            [ ( "k",
                Json.Obj
                  [ ("global_loads", Json.Float 10.0);
                    ("global_stores", Json.Float 10.0) ] ) ] ) ]
  in
  let new_j = artifact ~wall:300.0 ~passes:[ ("poly.is_empty", 50.0) ] in
  let r = compare_exn old_j new_j in
  checkb "wall regression still fires" false (BC.ok r);
  checki "nothing attributable without an old profile" 0
    (List.length r.BC.r_attribution);
  checkb "new coverage surfaces as added" true
    (List.mem "poly.is_empty/pass_self_ms" r.BC.r_added)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prof"
    [ ( "disabled",
        [ Alcotest.test_case "records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "no allocation" `Quick
            test_disabled_no_allocation ] );
      ( "hierarchy",
        [ Alcotest.test_case "caller attribution and self time" `Quick
            test_caller_attribution_and_self_time;
          Alcotest.test_case "exception still records" `Quick
            test_exception_still_records;
          Alcotest.test_case "4-domain hammer, exact counts" `Quick
            test_four_domain_hammer_exact_counts ] );
      ( "legacy",
        [ Alcotest.test_case "poly trace counters preserved" `Quick
            test_poly_trace_counters_preserved ] );
      ( "export",
        [ Alcotest.test_case "collapsed deterministic for a fixed compile"
            `Quick test_collapsed_deterministic_for_fixed_compile ] );
      ( "metrics",
        [ Alcotest.test_case "histogram quantiles" `Quick
            test_metrics_quantiles ] );
      ( "bench-compare",
        [ Alcotest.test_case "attribution names the regressed pass" `Quick
            test_attribution_names_regressed_pass;
          Alcotest.test_case "no attribution without wall regression" `Quick
            test_no_attribution_without_wall_regression;
          Alcotest.test_case "tolerates a profile-less old artifact" `Quick
            test_attribution_tolerates_missing_profile ] ) ]

(* lib/check: generator, shrinker, differential oracle, invariants *)

open Emsc_ir
open Emsc_core
open Emsc_check

(* --- generator ----------------------------------------------------------- *)

let test_gen_deterministic () =
  let once () =
    let rng = Random.State.make [| 42; 7 |] in
    Gen.to_string (Gen.generate rng)
  in
  Alcotest.(check string) "same seed, same program" (once ()) (once ())

let test_gen_validates () =
  for i = 0 to 39 do
    let rng = Random.State.make [| 11; i |] in
    let spec = Gen.generate rng in
    match Prog.validate (Gen.materialize spec) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "generated program %d invalid: %s" i e
  done

(* --- shrinker ------------------------------------------------------------ *)

let total_reads (s : Gen.t) =
  List.fold_left (fun n (st : Gen.stmt_spec) -> n + List.length st.Gen.reads)
    0 s.Gen.stmts

let test_shrink_minimizes () =
  (* synthetic failure: "some statement has a read".  The greedy
     shrinker must reach a single statement with a single read. *)
  let rng = Random.State.make [| 5; 0 |] in
  let rec find_spec k =
    if k > 200 then Alcotest.fail "no spec with >= 2 reads generated"
    else
      let spec = Gen.generate rng in
      if total_reads spec >= 2 && List.length spec.Gen.stmts >= 2 then spec
      else find_spec (k + 1)
  in
  let spec = find_spec 0 in
  let still_fails s = total_reads s >= 1 in
  let small = Shrink.minimize ~max_steps:200 ~still_fails spec in
  Alcotest.(check bool) "still fails" true (still_fails small);
  Alcotest.(check int) "one statement" 1 (List.length small.Gen.stmts);
  Alcotest.(check int) "one read" 1 (total_reads small)

(* --- fuzz run ------------------------------------------------------------ *)

let test_fuzz_clean () =
  let r = Fuzz.run ~fuzz:15 ~seed:2 () in
  Alcotest.(check int) "no failures" 0 (List.length r.Fuzz.failures);
  Alcotest.(check bool) "checks ran" true (r.Fuzz.checks > 0);
  Alcotest.(check bool) "suite covered" true (r.Fuzz.suite > 0)

(* --- invariants catch corrupted plans ------------------------------------ *)

let no_params _ = failwith "no parameters"

let fig1_plan () =
  let p = Emsc_kernels.Fig1.program in
  Plan.plan_block ~arch:`Cell ~merge_per_array:true p

let test_invariants_accept_fig1 () =
  match Invariants.check ~capacity_words:4096 ~env:no_params (fig1_plan ()) with
  | [] -> ()
  | vs ->
    Alcotest.failf "clean plan flagged: %a"
      (Format.pp_print_list Invariants.pp_violation)
      vs

let test_invariants_catch_missing_move_in () =
  let plan = fig1_plan () in
  let corrupted =
    { plan with
      Plan.buffered =
        List.map (fun (b : Plan.buffered) -> { b with Plan.move_in = [] })
          plan.Plan.buffered }
  in
  let vs = Invariants.check ~env:no_params corrupted in
  Alcotest.(check bool) "movement-cover violated" true
    (List.exists (fun v -> v.Invariants.invariant = "movement-cover") vs)

let test_invariants_catch_doubled_move_in () =
  let plan = fig1_plan () in
  let corrupted =
    { plan with
      Plan.buffered =
        List.map (fun (b : Plan.buffered) ->
          { b with Plan.move_in = b.Plan.move_in @ b.Plan.move_in })
          plan.Plan.buffered }
  in
  let vs = Invariants.check ~env:no_params corrupted in
  Alcotest.(check bool) "single-transfer violated" true
    (List.exists (fun v -> v.Invariants.invariant = "single-transfer") vs)

let test_invariants_catch_dead_move_out () =
  let plan = fig1_plan () in
  let vs =
    Invariants.check ~live_out:(fun _ -> false) ~env:no_params plan
  in
  Alcotest.(check bool) "live-out violated" true
    (List.exists (fun v -> v.Invariants.invariant = "live-out") vs)

let test_invariants_catch_tiny_capacity () =
  let vs =
    Invariants.check ~capacity_words:1 ~env:no_params (fig1_plan ())
  in
  Alcotest.(check bool) "capacity violated" true
    (List.exists (fun v -> v.Invariants.invariant = "capacity") vs)

(* --- inter-tile reuse partition property --------------------------------- *)

(* for every fuzz-generated program that plans with inter-tile reuse,
   the delta/resident split must partition the full per-block footprint
   exactly on integer points, symbolically in the tile origins:
   delta_in ∪ resident ≡ full_in, and the delta flush never writes
   outside the full move-out set *)
let test_reuse_partition_property () =
  let module Uset = Emsc_poly.Uset in
  let block_options depth =
    let spec =
      Array.init depth (fun _ ->
        { Emsc_transform.Tile.block = Some 4; mem = None; thread = None })
    in
    { Emsc_driver.Options.default with
      arch = `Cell; find_band = false; inter_tile_reuse = true;
      tiling = Emsc_driver.Options.Spec spec }
  in
  let reuse_buffers = ref 0 in
  for i = 0 to 29 do
    let rng = Random.State.make [| 91; i |] in
    let spec = Gen.generate rng in
    match spec.Gen.stmts with
    | [ s ] when (not spec.Gen.uses_param) && Deps.analyze (Gen.materialize spec) = [] ->
      (match
         Emsc_driver.Pipeline.compile
           (Emsc_driver.Pipeline.job ~options:(block_options s.Gen.depth)
              (Emsc_driver.Source.Program
                 { name = Printf.sprintf "gen#%d" i;
                   prog = Gen.materialize spec }))
       with
       | Error e ->
         Alcotest.failf "gen#%d: compile: %s" i
           (Emsc_driver.Frontend.error_message e)
       | Ok c ->
         let plan = Option.get c.Emsc_driver.Pipeline.plan in
         List.iter (fun (b : Plan.buffered) ->
           match b.Plan.reuse with
           | None -> ()
           | Some r ->
             incr reuse_buffers;
             Alcotest.(check bool)
               (Printf.sprintf "gen#%d %s: delta_in ∪ resident ≡ full_in" i
                  b.Plan.buffer.Alloc.local_name)
               true
               (Uset.equal_set
                  (Uset.union r.Plan.r_delta_in r.Plan.r_resident)
                  r.Plan.r_full_in);
             Alcotest.(check bool)
               (Printf.sprintf "gen#%d %s: delta_out ⊆ full_out" i
                  b.Plan.buffer.Alloc.local_name)
               true
               (Uset.equal_set
                  (Uset.union r.Plan.r_delta_out r.Plan.r_full_out)
                  r.Plan.r_full_out))
           plan.Plan.buffered)
    | _ -> ()
  done;
  Alcotest.(check bool) "property exercised on reuse buffers" true
    (!reuse_buffers > 0)

(* the fuzz harness's inter-tile setting: delta movement, residency
   chains and the reuse-partition invariant, sequential and -j 4 *)
let test_fuzz_inter_tile_clean () =
  let r = Fuzz.run ~fuzz:8 ~seed:3 ~inter_tile:true () in
  Alcotest.(check int) "seq: no failures" 0 (List.length r.Fuzz.failures);
  let rp = Fuzz.run ~backend:(`Par 4) ~fuzz:8 ~seed:3 ~inter_tile:true () in
  Alcotest.(check int) "-j4: no failures" 0 (List.length rp.Fuzz.failures);
  Alcotest.(check int) "same checks either backend" r.Fuzz.checks rp.Fuzz.checks

(* --- the strided-write staging fix --------------------------------------- *)

(* S: A[2i] = ... for 0 <= i <= 3 over A[8].  The write's rational image
   covers the odd elements no instance writes. *)
let strided_prog () =
  let wr = Prog.mk_access ~array:"A" ~kind:Prog.Write ~rows:[ [ 2; 0 ] ] in
  let s =
    Build.stmt ~id:1 ~name:"S" ~np:0 ~depth:1
      ~domain:(Build.domain_rows ~np:0 ~depth:1 [ [ 1; 0 ]; [ -1; 3 ] ])
      ~writes:[ wr ]
      ~body:(wr, Prog.Eadd (Prog.Econst 1.0, Prog.Eiter 0))
      ~beta:[ 0; 0 ] ()
  in
  { Prog.params = [||];
    arrays = [ Build.array1 "A" 8 ~np:0 ];
    stmts = [ s ] }

let test_exact_image () =
  let p = strided_prog () in
  let s = List.hd p.Prog.stmts in
  let stride2 = List.hd s.Prog.writes in
  Alcotest.(check bool) "stride-2 write not exact" false
    (Dataspaces.exact_image s stride2);
  let unit_row = Prog.mk_access ~array:"A" ~kind:Prog.Read ~rows:[ [ 1; 1 ] ] in
  Alcotest.(check bool) "unit-coefficient access exact" true
    (Dataspaces.exact_image s unit_row)

let test_strided_write_staged () =
  (* without the widening the buffer has no reads, so nothing is staged
     and move-out copies uninitialized cells over the skipped elements *)
  let plan = Plan.plan_block ~arch:`Cell (strided_prog ()) in
  (match plan.Plan.buffered with
   | [ b ] ->
     Alcotest.(check bool) "move-in stages the write image" true
       (b.Plan.move_in <> [])
   | bs -> Alcotest.failf "expected one buffer, got %d" (List.length bs));
  match Invariants.check ~env:no_params plan with
  | [] -> ()
  | vs ->
    Alcotest.failf "staged plan flagged: %a"
      (Format.pp_print_list Invariants.pp_violation)
      vs

let () =
  Alcotest.run "check"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "programs validate" `Quick test_gen_validates;
        ] );
      ( "shrink",
        [ Alcotest.test_case "minimizes" `Quick test_shrink_minimizes ] );
      ( "fuzz",
        [ Alcotest.test_case "small run clean" `Slow test_fuzz_clean;
          Alcotest.test_case "inter-tile setting clean" `Slow
            test_fuzz_inter_tile_clean ] );
      ( "inter-tile-reuse",
        [ Alcotest.test_case "partition property" `Slow
            test_reuse_partition_property ] );
      ( "invariants",
        [
          Alcotest.test_case "accept fig1 plan" `Quick
            test_invariants_accept_fig1;
          Alcotest.test_case "missing move-in" `Quick
            test_invariants_catch_missing_move_in;
          Alcotest.test_case "doubled move-in" `Quick
            test_invariants_catch_doubled_move_in;
          Alcotest.test_case "dead move-out" `Quick
            test_invariants_catch_dead_move_out;
          Alcotest.test_case "tiny capacity" `Quick
            test_invariants_catch_tiny_capacity;
        ] );
      ( "staging",
        [
          Alcotest.test_case "exact image" `Quick test_exact_image;
          Alcotest.test_case "strided write staged" `Quick
            test_strided_write_staged;
        ] );
    ]

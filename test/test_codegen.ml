(* Codegen tests: AST expression algebra and polyhedron scanning. *)

open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_codegen

let v = Ast.var
let i_ = Ast.int_

let test_simplify_linear () =
  (* iT + 7 - iT + 1 must fold to 8 *)
  let e =
    Ast.Add (Ast.Sub (Ast.Add (v "iT", i_ 7), v "iT"), i_ 1)
  in
  (match Ast.simplify e with
   | Ast.Const c -> Alcotest.(check int) "folded" 8 (Zint.to_int_exn c)
   | _ -> Alcotest.fail "expected a constant");
  (* 2*(x + 3) - x  ->  x + 6 *)
  let e2 = Ast.Sub (Ast.Mul (Zint.of_int 2, Ast.Add (v "x", i_ 3)), v "x") in
  let env n = if n = "x" then Zint.of_int 5 else failwith n in
  Alcotest.(check int) "value preserved" 11
    (Zint.to_int_exn (Ast.eval env (Ast.simplify e2)))

let test_simplify_minmax () =
  let e = Ast.Min [ i_ 5; Ast.Min [ i_ 3; v "x" ]; i_ 4 ] in
  let env n = if n = "x" then Zint.of_int 10 else failwith n in
  Alcotest.(check int) "min flattened" 3
    (Zint.to_int_exn (Ast.eval env (Ast.simplify e)))

let aexpr_gen =
  let open QCheck.Gen in
  let rec gen depth =
    if depth = 0 then
      oneof [ map (fun n -> Ast.Const (Zint.of_int n)) (int_range (-20) 20);
              return (v "x"); return (v "y") ]
    else begin
      let sub = gen (depth - 1) in
      oneof
        [ map2 (fun a b -> Ast.Add (a, b)) sub sub;
          map2 (fun a b -> Ast.Sub (a, b)) sub sub;
          map2 (fun k a -> Ast.Mul (Zint.of_int k, a)) (int_range (-4) 4) sub;
          map2 (fun a b -> Ast.Min [ a; b ]) sub sub;
          map2 (fun a b -> Ast.Max [ a; b ]) sub sub;
          map (fun a -> Ast.Fdiv (a, Zint.of_int 3)) sub;
          map (fun a -> Ast.Cdiv (a, Zint.of_int 2)) sub ]
    end
  in
  gen 4

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves evaluation" ~count:300
    (QCheck.make aexpr_gen)
    (fun e ->
      let env n =
        match n with
        | "x" -> Zint.of_int 7
        | "y" -> Zint.of_int (-3)
        | _ -> failwith n
      in
      Zint.equal (Ast.eval env e) (Ast.eval env (Ast.simplify e)))

let test_vec_to_aexpr () =
  let row = Vec.of_ints [ 2; 0; -3; 5 ] in
  let names = [| "a"; "b"; "c" |] in
  let e = Ast.vec_to_aexpr ~names:(fun i -> names.(i)) row in
  let env n =
    match n with
    | "a" -> Zint.of_int 10
    | "c" -> Zint.of_int 1
    | _ -> Zint.zero
  in
  Alcotest.(check int) "2a - 3c + 5" 22 (Zint.to_int_exn (Ast.eval env e))

let test_free_vars () =
  let stms =
    [ Ast.loop_ "i" ~lb:(v "lo") ~ub:(Ast.Min [ v "hi"; i_ 10 ])
        [ Ast.Copy
            { dst = { Ast.array = "l"; indices = [| Ast.Sub (v "i", v "off") |] };
              src = { Ast.array = "g"; indices = [| v "i" |] } } ] ]
  in
  Alcotest.(check (list string)) "free variables" [ "hi"; "lo"; "off" ]
    (Ast.free_vars stms)

(* --- scanning ---------------------------------------------------------------- *)

let scan_points ?context ~outer ~names p =
  let body =
    [ Ast.Copy
        { dst = { Ast.array = "sink"; indices = [||] };
          src = { Ast.array = "sink"; indices = [||] } } ]
  in
  let ast = Scan.scan_poly ?context ~names ~outer ~body p in
  (* walk the AST collecting loop-variable environments at Copy *)
  let pts = ref [] in
  let rec run env stms =
    List.iter (fun s ->
      match s with
      | Ast.Loop l ->
        let lb = Ast.eval env l.Ast.lb and ub = Ast.eval env l.Ast.ub in
        let x = ref lb in
        while Zint.compare !x ub <= 0 do
          let xv = !x in
          run (fun n -> if n = l.Ast.var then xv else env n) l.Ast.body;
          x := Zint.add !x l.Ast.step
        done
      | Ast.Guard (conds, body) ->
        if
          List.for_all (fun c -> not (Zint.is_negative (Ast.eval env c))) conds
        then run env body
      | Ast.Copy _ ->
        pts :=
          List.init (Array.length names - outer) (fun k ->
            Zint.to_int_exn (env names.(outer + k)))
          :: !pts
      | Ast.Stmt_call _ | Ast.Sync | Ast.Fence | Ast.Comment _ -> ())
      stms
  in
  run (fun n -> failwith ("unbound " ^ n)) ast;
  List.sort compare !pts

let enum_points p =
  let pts = ref [] in
  let rec go p prefix =
    if Poly.is_empty p then ()
    else if Poly.dim p = 0 then pts := List.rev prefix :: !pts
    else
      match Poly.var_bounds_int p 0 with
      | Some lo, Some hi ->
        let x = ref lo in
        while Zint.compare !x hi <= 0 do
          go (Poly.fix_dim p 0 !x) (Zint.to_int_exn !x :: prefix);
          x := Zint.add !x Zint.one
        done
      | _ -> failwith "unbounded"
  in
  go p [];
  List.sort compare !pts

let test_scan_triangle () =
  let tri =
    Poly.of_ineqs ~dim:2 [ [ 1; 0; 0 ]; [ -1; 1; 0 ]; [ 0; -1; 6 ] ]
  in
  (* 0 <= i <= j <= 6 *)
  Alcotest.(check (list (list int))) "same points"
    (enum_points tri)
    (scan_points ~outer:0 ~names:[| "i"; "j" |] tri)

let prop_scan_matches_enumeration =
  QCheck.Test.make ~name:"scan enumerates exactly the integer points"
    ~count:60
    QCheck.(quad (int_range (-5) 5) (int_range 0 6) (int_range (-5) 5)
              (int_range (-8) 8))
    (fun (a, w, b, cut) ->
      let p =
        Poly.of_ineqs ~dim:2
          [ [ 1; 0; -a ]; [ -1; 0; a + w ]; [ 0; 1; -b ]; [ 0; -1; b + 6 ];
            [ 1; 1; cut + 8 ] ]
      in
      if Poly.is_empty p then true
      else
        enum_points p = scan_points ~outer:0 ~names:[| "i"; "j" |] p)

let test_scan_uset_single_visit () =
  (* two overlapping boxes: each point visited exactly once *)
  let b1 = Poly.of_ineqs ~dim:1 [ [ 1; 0 ]; [ -1; 8 ] ] in
  let b2 = Poly.of_ineqs ~dim:1 [ [ 1; -5 ]; [ -1; 12 ] ] in
  let u = Uset.union (Uset.of_poly b1) (Uset.of_poly b2) in
  let body =
    [ Ast.Copy
        { dst = { Ast.array = "s"; indices = [||] };
          src = { Ast.array = "s"; indices = [||] } } ]
  in
  let ast = Scan.scan_uset ~names:[| "i" |] ~outer:0 ~body u in
  let visits = ref [] in
  let rec run env stms =
    List.iter (fun s ->
      match s with
      | Ast.Loop l ->
        let lb = Ast.eval env l.Ast.lb and ub = Ast.eval env l.Ast.ub in
        let x = ref lb in
        while Zint.compare !x ub <= 0 do
          let xv = !x in
          run (fun n -> if n = l.Ast.var then xv else env n) l.Ast.body;
          x := Zint.add !x Zint.one
        done
      | Ast.Guard (c, body) ->
        if List.for_all (fun e -> not (Zint.is_negative (Ast.eval env e))) c
        then run env body
      | Ast.Copy _ -> visits := Zint.to_int_exn (env "i") :: !visits
      | _ -> ())
      stms
  in
  run (fun n -> failwith n) ast;
  let sorted = List.sort compare !visits in
  Alcotest.(check (list int)) "each of 0..12 exactly once"
    (List.init 13 (fun i -> i))
    sorted

let test_scan_lattice_empty_piece () =
  (* rationally non-empty but integer-empty: x0 is pinned between 10/3
     and 10/3 on the line x0 + x1 = 7.  Integer-tightened elimination
     exposes the contradiction; the scan must emit nothing instead of
     reporting the dimension unbounded. *)
  let p =
    Poly.make ~dim:2
      ~eqs:[ Vec.of_ints [ 1; 1; -7 ] ]
      ~ineqs:
        [ Vec.of_ints [ -2; 1; 3 ]; Vec.of_ints [ 0; -1; 7 ];
          Vec.of_ints [ 0; 1; -2 ]; Vec.of_ints [ 1; 0; -1 ];
          Vec.of_ints [ 2; -1; -3 ] ]
  in
  Alcotest.(check bool) "rationally non-empty" false (Poly.is_empty p);
  let ast =
    Scan.scan_poly ~names:[| "c0"; "c1" |] ~outer:0 ~body:[ Ast.Sync ] p
  in
  Alcotest.(check int) "no code generated" 0 (List.length ast)

let test_scan_context_prunes_guards () =
  (* scanning {(p, i) : p <= i <= p + 3} with context 0 <= p <= 10:
     no residual guard on p should remain *)
  let p =
    Poly.of_ineqs ~dim:2
      [ [ -1; 1; 0 ]; [ 1; -1; 3 ]; [ 1; 0; 0 ]; [ -1; 0; 10 ] ]
  in
  let ctx = Poly.of_ineqs ~dim:1 [ [ 1; 0 ]; [ -1; 10 ] ] in
  let ast =
    Scan.scan_poly ~context:ctx ~names:[| "p"; "i" |] ~outer:1
      ~body:[ Ast.Sync ] p
  in
  let has_guard =
    List.exists (function Ast.Guard _ -> true | _ -> false) ast
  in
  Alcotest.(check bool) "no guard with context" false has_guard

let () =
  Alcotest.run "codegen"
    [
      ( "ast",
        [
          Alcotest.test_case "linear folding" `Quick test_simplify_linear;
          Alcotest.test_case "min/max flattening" `Quick test_simplify_minmax;
          Alcotest.test_case "vec to expr" `Quick test_vec_to_aexpr;
          Alcotest.test_case "free variables" `Quick test_free_vars;
          QCheck_alcotest.to_alcotest prop_simplify_preserves_eval;
        ] );
      ( "scan",
        [
          Alcotest.test_case "triangle" `Quick test_scan_triangle;
          Alcotest.test_case "union single visit" `Quick
            test_scan_uset_single_visit;
          Alcotest.test_case "context prunes guards" `Quick
            test_scan_context_prunes_guards;
          Alcotest.test_case "lattice-empty piece" `Quick
            test_scan_lattice_empty_piece;
          QCheck_alcotest.to_alcotest prop_scan_matches_enumeration;
        ] );
    ]

(* Machine-layer tests: memory, the cache simulator, the executor's
   counters and sampled fidelity, the reference executor's schedule
   order, and timing-model monotonicities. *)

open Emsc_ir
open Emsc_codegen
open Emsc_machine
open Emsc_kernels

let no_params name = failwith ("unexpected parameter " ^ name)

(* --- memory ---------------------------------------------------------------- *)

let test_memory_roundtrip () =
  let p = Matmul.program ~n:4 in
  let m = Memory.create p ~param_env:no_params in
  Memory.write_global m "A" [| 2; 3 |] 7.5;
  Alcotest.(check (float 0.0)) "read back" 7.5
    (Memory.read_global m "A" [| 2; 3 |]);
  Alcotest.(check (float 0.0)) "other cell untouched" 0.0
    (Memory.read_global m "A" [| 3; 2 |]);
  Alcotest.(check int) "flat index row-major" 11
    (Memory.flat_index m "A" [| 2; 3 |])

let test_memory_bounds () =
  let p = Matmul.program ~n:4 in
  let m = Memory.create p ~param_env:no_params in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Memory: A index 4 out of bounds [0,4) at dim 0")
    (fun () -> ignore (Memory.read_global m "A" [| 4; 0 |]))

let test_memory_locals () =
  let p = Matmul.program ~n:4 in
  let m = Memory.create p ~param_env:no_params in
  Memory.declare_local m "l_A";
  Alcotest.(check bool) "is local" true (Memory.is_local m "l_A");
  Alcotest.(check bool) "global not local" false (Memory.is_local m "A");
  Memory.write_local m "l_A" [| 100; 200 |] 3.0;
  Alcotest.(check (float 0.0)) "sparse local" 3.0
    (Memory.read_local m "l_A" [| 100; 200 |]);
  Alcotest.(check (float 0.0)) "unwritten local is 0" 0.0
    (Memory.read_local m "l_A" [| 0; 0 |])

let test_memory_phantom () =
  let p = Matmul.program ~n:1000 in
  (* phantom: no 1000x1000 allocation, indices ignored *)
  let m = Memory.create_phantom p ~param_env:no_params in
  Memory.write_global m "A" [| 999; 999 |] 1.0;
  Alcotest.(check (float 0.0)) "single cell semantics" 1.0
    (Memory.read_global m "A" [| 0; 0 |])

(* --- cache ------------------------------------------------------------------ *)

let test_cache_basics () =
  let c =
    Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 ~word_bytes:4
  in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit same line" true (Cache.access c 1);
  Alcotest.(check bool) "hit same line end" true (Cache.access c 15);
  Alcotest.(check bool) "next line misses" false (Cache.access c 16);
  let st = Cache.stats c in
  Alcotest.(check (float 0.0)) "hits" 2.0 st.Cache.hits;
  Alcotest.(check (float 0.0)) "misses" 2.0 st.Cache.misses

let test_cache_lru_eviction () =
  (* 1024 B, 64 B lines, 2-way: 8 sets; lines mapping to set 0 are
     word addresses 0, 128, 256, ... *)
  let c =
    Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 ~word_bytes:4
  in
  ignore (Cache.access c 0);
  ignore (Cache.access c 128);
  (* touch 0 again to make 128 the LRU *)
  Alcotest.(check bool) "0 still resident" true (Cache.access c 0);
  ignore (Cache.access c 256);
  (* 256 evicts 128, not 0 *)
  Alcotest.(check bool) "0 survives" true (Cache.access c 0);
  Alcotest.(check bool) "128 evicted" false (Cache.access c 128)

let test_cache_hierarchy () =
  let h = Cache.Sim.create Hierarchy.core2duo_cache_as_scratchpad in
  Alcotest.(check int) "two simulated levels" 2 (Cache.Sim.num_levels h);
  Alcotest.(check int) "first access misses to memory" 2 (Cache.Sim.access h 0);
  Alcotest.(check int) "second hits L1" 0 (Cache.Sim.access h 0);
  Alcotest.(check (float 0.0)) "one home access" 1.0
    (Cache.Sim.home_accesses h)

(* --- executor ---------------------------------------------------------------- *)

let v = Ast.var
let i_ = Ast.int_

let test_exec_counters () =
  let p = Matmul.program ~n:4 in
  let m = Memory.create p ~param_env:no_params in
  (* plain triple loop *)
  let spec = Array.make 3 Emsc_transform.Tile.no_tiling in
  let ast = Emsc_transform.Tile.generate p spec ~movement:[] in
  let r = Exec.run ~prog:p ~param_env:no_params ~memory:m ~mode:Exec.Full ast in
  (* per iteration: 2 flops (add, mul) + write + 3 reads; 64 iterations *)
  Alcotest.(check (float 0.0)) "flops" (float_of_int (64 * 3))
    r.Exec.totals.Exec.flops;
  Alcotest.(check (float 0.0)) "loads" (float_of_int (64 * 3))
    r.Exec.totals.Exec.g_ld;
  Alcotest.(check (float 0.0)) "stores" (float_of_int 64)
    r.Exec.totals.Exec.g_st

let test_exec_guard_and_copy () =
  let p = Matmul.program ~n:4 in
  let m = Memory.create p ~param_env:no_params in
  Memory.fill m "A" (fun idx -> float_of_int ((10 * idx.(0)) + idx.(1)));
  let ast =
    [ Ast.Guard
        ( [ i_ 1 ],
          [ Ast.Copy
              { dst = { Ast.array = "B"; indices = [| i_ 0; i_ 0 |] };
                src = { Ast.array = "A"; indices = [| i_ 2; i_ 3 |] } } ] );
      Ast.Guard
        ( [ i_ (-1) ],
          [ Ast.Copy
              { dst = { Ast.array = "B"; indices = [| i_ 1; i_ 1 |] };
                src = { Ast.array = "A"; indices = [| i_ 0; i_ 0 |] } } ] ) ]
  in
  let (_ : Exec.result) =
    Exec.run ~prog:p ~param_env:no_params ~memory:m ~mode:Exec.Full ast
  in
  Alcotest.(check (float 0.0)) "guard true executed" 23.0
    (Memory.read_global m "B" [| 0; 0 |]);
  Alcotest.(check (float 0.0)) "guard false skipped" 0.0
    (Memory.read_global m "B" [| 1; 1 |])

let test_sampled_triangle () =
  (* triangular loop: trapezoid sampling must be exact for linearly
     varying trip counts *)
  let p = Matmul.program ~n:4 in
  let mk () = Memory.create p ~param_env:no_params in
  let ast =
    [ Ast.loop_ "i" ~lb:(i_ 0) ~ub:(i_ 29)
        [ Ast.loop_ "j" ~lb:(i_ 0) ~ub:(v "i")
            [ Ast.Copy
                { dst = { Ast.array = "A"; indices = [| i_ 0; i_ 0 |] };
                  src = { Ast.array = "B"; indices = [| i_ 0; i_ 0 |] } } ] ] ]
  in
  let full =
    Exec.run ~prog:p ~param_env:no_params ~memory:(mk ()) ~mode:Exec.Full ast
  in
  let sampled =
    Exec.run ~prog:p ~param_env:no_params ~memory:(mk ())
      ~mode:(Exec.Sampled 4) ast
  in
  Alcotest.(check (float 0.001)) "triangle loads exact under sampling"
    full.Exec.totals.Exec.g_ld sampled.Exec.totals.Exec.g_ld

let test_launch_detection () =
  let p = Matmul.program ~n:4 in
  let m = Memory.create p ~param_env:no_params in
  let ast =
    [ Ast.loop_ "t" ~lb:(i_ 0) ~ub:(i_ 2)
        [ Ast.loop_ ~par:Ast.Block "b" ~lb:(i_ 0) ~ub:(i_ 7)
            [ Ast.Copy
                { dst = { Ast.array = "A"; indices = [| i_ 0; i_ 0 |] };
                  src = { Ast.array = "B"; indices = [| i_ 0; i_ 0 |] } } ] ] ]
  in
  let r = Exec.run ~prog:p ~param_env:no_params ~memory:m ~mode:Exec.Full ast in
  Alcotest.(check int) "three launches" 3 (List.length r.Exec.launches);
  List.iter (fun l ->
    Alcotest.(check (float 0.0)) "grid" 8.0 l.Exec.grid;
    Alcotest.(check (float 0.0)) "per-block load" 1.0 l.Exec.per_block.Exec.g_ld)
    r.Exec.launches

let test_sampled_launch_repeat () =
  let p = Matmul.program ~n:4 in
  let m = Memory.create p ~param_env:no_params in
  let ast =
    [ Ast.loop_ "t" ~lb:(i_ 0) ~ub:(i_ 99)
        [ Ast.loop_ ~par:Ast.Block "b" ~lb:(i_ 0) ~ub:(i_ 7)
            [ Ast.Copy
                { dst = { Ast.array = "A"; indices = [| i_ 0; i_ 0 |] };
                  src = { Ast.array = "B"; indices = [| i_ 0; i_ 0 |] } } ] ] ]
  in
  let r =
    Exec.run ~prog:p ~param_env:no_params ~memory:m ~mode:(Exec.Sampled 4) ast
  in
  let total_launches =
    List.fold_left (fun acc l -> acc +. l.Exec.repeat) 0.0 r.Exec.launches
  in
  Alcotest.(check (float 0.001)) "100 dynamic launches" 100.0 total_launches

(* --- reference executor ------------------------------------------------------ *)

let test_reference_schedule_order () =
  (* fig1: S1 at (i,j) must run before S2 at (i,j,k), and both obey
     lexicographic i, j order *)
  let insts =
    Reference.instances Fig1.program ~param_env:no_params
  in
  Alcotest.(check int) "instance count" ((5 * 5) + (5 * 5 * 10))
    (List.length insts);
  (* first instance is S1 at (10,10); the next ten are S2 at (10,10,k) *)
  (match insts with
   | (s, iters) :: rest ->
     Alcotest.(check string) "first is S1" "S1" s.Prog.name;
     Alcotest.(check (list int)) "at (10,10)" [ 10; 10 ]
       (Emsc_linalg.Vec.to_ints_exn iters);
     let s2s = List.filteri (fun i _ -> i < 10) rest in
     List.iter (fun ((s : Prog.stmt), _) ->
       Alcotest.(check string) "then S2" "S2" s.Prog.name)
       s2s
   | [] -> Alcotest.fail "no instances")

(* --- timing model ------------------------------------------------------------- *)

let test_occupancy () =
  let g = Config.gtx8800 in
  Alcotest.(check int) "no smem -> max blocks" 8
    (Timing.occupancy g ~smem_bytes_per_block:0);
  Alcotest.(check int) "16KB -> 1 block" 1
    (Timing.occupancy g ~smem_bytes_per_block:16384);
  Alcotest.(check int) "4KB -> 4 blocks" 4
    (Timing.occupancy g ~smem_bytes_per_block:4096);
  Alcotest.(check int) "1KB -> capped at 8" 8
    (Timing.occupancy g ~smem_bytes_per_block:1024)

let test_timing_monotonic_in_traffic () =
  let g = Config.gtx8800 in
  let params = Timing.default_params in
  let mk gld =
    { Exec.grid = 32.0;
      per_block =
        { Exec.flops = 1000.0; g_ld = gld; g_st = 0.0; s_ld = 0.0;
          s_st = 0.0; syncs = 0.0; fences = 0.0 };
      repeat = 1.0 }
  in
  let t1 = Timing.gpu_launch_cycles g params (mk 1000.0) in
  let t2 = Timing.gpu_launch_cycles g params (mk 100000.0) in
  Alcotest.(check bool) "more traffic, more time" true (t2 > t1)

let test_timing_repeat_scales () =
  let g = Config.gtx8800 in
  let params = Timing.default_params in
  let l =
    { Exec.grid = 16.0;
      per_block =
        { Exec.flops = 500.0; g_ld = 10.0; g_st = 10.0; s_ld = 0.0;
          s_st = 0.0; syncs = 2.0; fences = 1.0 };
      repeat = 1.0 }
  in
  let t1 = Timing.gpu_launch_cycles g params l in
  let t5 = Timing.gpu_launch_cycles g params { l with Exec.repeat = 5.0 } in
  Alcotest.(check (float 0.001)) "repeat multiplies" (5.0 *. t1) t5

let () =
  Alcotest.run "machine"
    [
      ( "memory",
        [
          Alcotest.test_case "roundtrip" `Quick test_memory_roundtrip;
          Alcotest.test_case "bounds check" `Quick test_memory_bounds;
          Alcotest.test_case "locals" `Quick test_memory_locals;
          Alcotest.test_case "phantom" `Quick test_memory_phantom;
        ] );
      ( "cache",
        [
          Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "hierarchy" `Quick test_cache_hierarchy;
        ] );
      ( "exec",
        [
          Alcotest.test_case "counters" `Quick test_exec_counters;
          Alcotest.test_case "guards and copies" `Quick test_exec_guard_and_copy;
          Alcotest.test_case "sampled triangle exact" `Quick
            test_sampled_triangle;
          Alcotest.test_case "launch detection" `Quick test_launch_detection;
          Alcotest.test_case "sampled launch repeat" `Quick
            test_sampled_launch_repeat;
        ] );
      ( "reference",
        [
          Alcotest.test_case "schedule order" `Quick
            test_reference_schedule_order;
        ] );
      ( "timing",
        [
          Alcotest.test_case "occupancy" `Quick test_occupancy;
          Alcotest.test_case "traffic monotonic" `Quick
            test_timing_monotonic_in_traffic;
          Alcotest.test_case "repeat scales" `Quick test_timing_repeat_scales;
        ] );
    ]

(* The driver pipeline: stage memoization semantics, cross-process
   (disk) cache persistence, batch-vs-sequential equivalence, trace
   integration, and recoverable front-end errors. *)

open Emsc_driver

let matmul_src =
  {|
  array A[24][24];
  array B[24][24];
  array C[24][24];
  for (i = 0; i <= 23; i++) {
    for (j = 0; j <= 23; j++) {
      for (k = 0; k <= 23; k++) {
        C[i][j] += A[i][k] * B[k][j];
      }
    }
  }
  |}

let src () = Source.Text { name = "matmul-test"; text = matmul_src }

let compile_ok ?cache ?(options = Options.default) source =
  match Pipeline.compile_source ?cache ~options source with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile failed: %s" (Frontend.error_message e)

let stage_cached c name =
  match
    List.find_opt (fun (t : Stage.timing) -> t.Stage.stage = name)
      c.Pipeline.timings
  with
  | Some t -> t.Stage.cached
  | None -> Alcotest.failf "no %S stage in timings" name

(* --- memoization semantics ------------------------------------------- *)

let test_cache_hits () =
  let cache = Cache.in_memory () in
  let c1 = compile_ok ~cache (src ()) in
  Alcotest.(check int) "first run misses" 0 c1.Pipeline.cache_hits;
  Alcotest.(check bool) "first run has misses" true
    (c1.Pipeline.cache_misses > 0);
  let c2 = compile_ok ~cache (src ()) in
  Alcotest.(check int) "second run all hits" c1.Pipeline.cache_misses
    c2.Pipeline.cache_hits;
  Alcotest.(check int) "second run no misses" 0 c2.Pipeline.cache_misses;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " cached") true (stage_cached c2 name))
    [ "deps"; "hyperplanes"; "plan" ];
  Alcotest.(check string) "same digest" c1.Pipeline.digest c2.Pipeline.digest

let test_option_change_misses_plan_only () =
  let cache = Cache.in_memory () in
  let (_ : Pipeline.compiled) = compile_ok ~cache (src ()) in
  (* a different delta invalidates the plan, not the analyses *)
  let c =
    compile_ok ~cache ~options:{ Options.default with delta = 0.7 } (src ())
  in
  Alcotest.(check bool) "deps still hits" true (stage_cached c "deps");
  Alcotest.(check bool) "hyperplanes still hits" true
    (stage_cached c "hyperplanes");
  Alcotest.(check bool) "plan misses" false (stage_cached c "plan")

let test_machine_change_misses_plan_only () =
  let cache = Cache.in_memory () in
  let with_machine h =
    { Options.default with machine = Emsc_machine.Hierarchy.digest h }
  in
  let gtx = Emsc_machine.Hierarchy.gtx8800 in
  let (_ : Pipeline.compiled) =
    compile_ok ~cache ~options:(with_machine gtx) (src ())
  in
  (* same machine digest: the plan entry is warm *)
  let c1 = compile_ok ~cache ~options:(with_machine gtx) (src ()) in
  Alcotest.(check bool) "same machine: plan hits" true (stage_cached c1 "plan");
  (* a different hierarchy must not be served the gtx8800 plan — the
     machine digest is part of the plan fingerprint, while the
     machine-independent analyses stay warm *)
  let c2 =
    compile_ok ~cache
      ~options:(with_machine Emsc_machine.Hierarchy.gtx8800_3level) (src ())
  in
  Alcotest.(check bool) "changed machine: deps hits" true
    (stage_cached c2 "deps");
  Alcotest.(check bool) "changed machine: hyperplanes hits" true
    (stage_cached c2 "hyperplanes");
  Alcotest.(check bool) "changed machine: plan misses" false
    (stage_cached c2 "plan")

let test_tiling_change_misses () =
  let cache = Cache.in_memory () in
  let spec1 =
    [| { Emsc_transform.Tile.block = Some 8; mem = None; thread = None };
       { Emsc_transform.Tile.block = Some 8; mem = None; thread = None };
       { Emsc_transform.Tile.block = None; mem = Some 4; thread = None } |]
  in
  let with_spec s =
    { Options.default with arch = `Cell; tiling = Options.Spec s }
  in
  let (_ : Pipeline.compiled) =
    compile_ok ~cache ~options:(with_spec spec1) (src ())
  in
  let c1 = compile_ok ~cache ~options:(with_spec spec1) (src ()) in
  Alcotest.(check bool) "same spec: tile hits" true (stage_cached c1 "tile");
  Alcotest.(check bool) "same spec: plan hits" true (stage_cached c1 "plan");
  let spec2 =
    [| spec1.(0); spec1.(1);
       { Emsc_transform.Tile.block = None; mem = Some 8; thread = None } |]
  in
  let c2 = compile_ok ~cache ~options:(with_spec spec2) (src ()) in
  Alcotest.(check bool) "changed spec: deps hits" true (stage_cached c2 "deps");
  Alcotest.(check bool) "changed spec: tile misses" false
    (stage_cached c2 "tile");
  Alcotest.(check bool) "changed spec: plan misses" false
    (stage_cached c2 "plan")

let test_source_change_misses () =
  let cache = Cache.in_memory () in
  let (_ : Pipeline.compiled) = compile_ok ~cache (src ()) in
  let other =
    Source.Text
      { name = "matmul-test";
        text =
          String.concat ""
            [ matmul_src; "\n// a comment changes the content digest\n" ] }
  in
  let c = compile_ok ~cache other in
  Alcotest.(check int) "different text: no hits" 0 c.Pipeline.cache_hits

let test_disk_persistence () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "emsc-test-cache-%d" (Unix.getpid ()))
  in
  (* two distinct cache values over the same directory model two
     separate processes: the second must hit via the disk layer *)
  let c1 = compile_ok ~cache:(Cache.create ~dir ()) (src ()) in
  Alcotest.(check int) "cold" 0 c1.Pipeline.cache_hits;
  let c2 = compile_ok ~cache:(Cache.create ~dir ()) (src ()) in
  Alcotest.(check int) "warm via disk" c1.Pipeline.cache_misses
    c2.Pipeline.cache_hits;
  Alcotest.(check int) "no misses" 0 c2.Pipeline.cache_misses

let test_corrupt_entry_is_miss () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "emsc-test-corrupt-%d" (Unix.getpid ()))
  in
  let (_ : Pipeline.compiled) = compile_ok ~cache:(Cache.create ~dir ()) (src ()) in
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      let oc = open_out path in
      output_string oc "garbage";
      close_out oc)
    (Sys.readdir dir);
  let c = compile_ok ~cache:(Cache.create ~dir ()) (src ()) in
  Alcotest.(check int) "corrupt entries all miss" 0 c.Pipeline.cache_hits

let test_failing_writer_leaves_no_tmp () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "emsc-test-writer-%d" (Unix.getpid ()))
  in
  let cache = Cache.create ~dir () in
  let key = Cache.key ~digest:"d" ~stage:"s" ~extra:"" in
  (* a writer failing mid-write models a full disk: the .tmp file must
     be closed and unlinked, not orphaned *)
  Cache.store ~writer:(fun _ _ -> raise (Sys_error "injected: disk full"))
    cache ~key 42;
  let tmp_files () =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
  in
  Alcotest.(check (list string)) "no orphaned tmp after Sys_error" []
    (tmp_files ());
  Alcotest.(check bool) "entry not published to disk" false
    (Sys.file_exists (Filename.concat dir key));
  Alcotest.(check (option int)) "in-memory layer still serves it" (Some 42)
    (Cache.find cache ~key);
  (* non-I/O exceptions propagate, but still without leaking the tmp *)
  (match
     Cache.store ~writer:(fun _ _ -> failwith "boom") cache ~key:"k2" 1
   with
   | () -> Alcotest.fail "expected the writer's exception to propagate"
   | exception Failure _ -> ());
  Alcotest.(check (list string)) "no orphaned tmp after Failure" []
    (tmp_files ())

(* --- LRU memory layer ------------------------------------------------- *)

let test_lru_cap_respected () =
  let cache = Cache.in_memory ~max_entries:4 () in
  for i = 0 to 19 do
    let key = Cache.key ~digest:(string_of_int i) ~stage:"s" ~extra:"" in
    let v, cached = Cache.memo cache ~key (fun () -> i) in
    Alcotest.(check int) "computed value" i v;
    Alcotest.(check bool) "first sight is a miss" false cached;
    Alcotest.(check bool) "cap respected under churn" true
      (Cache.mem_entries cache <= 4)
  done;
  Alcotest.(check int) "entries at cap" 4 (Cache.mem_entries cache);
  Alcotest.(check int) "evictions counted" 16 (Cache.evictions cache);
  Alcotest.(check int) "twenty stores" 20 (Cache.stores cache)

let test_lru_recency_order () =
  let cache = Cache.in_memory ~max_entries:2 () in
  let memo k = fst (Cache.memo cache ~key:k (fun () -> k)) in
  ignore (memo "a");
  ignore (memo "b");
  (* touching [a] makes [b] the eviction victim for [c] *)
  ignore (memo "a");
  ignore (memo "c");
  Alcotest.(check (option string)) "a survives (recently used)" (Some "a")
    (Cache.find cache ~key:"a");
  Alcotest.(check (option string)) "b evicted (least recent)" None
    (Cache.find cache ~key:"b");
  Alcotest.(check int) "one eviction" 1 (Cache.evictions cache)

let test_lru_eviction_metrics () =
  Emsc_obs.Metrics.reset ();
  Emsc_obs.Metrics.enable ();
  let finally () =
    Emsc_obs.Metrics.disable ();
    Emsc_obs.Metrics.reset ()
  in
  Fun.protect ~finally (fun () ->
    let cache = Cache.in_memory ~max_entries:2 () in
    for i = 0 to 9 do
      ignore (Cache.memo cache ~key:(string_of_int i) (fun () -> i))
    done;
    let snap = Emsc_obs.Metrics.snapshot () in
    let evictions =
      List.find_map
        (fun (s : Emsc_obs.Metrics.sample) ->
          match s.Emsc_obs.Metrics.m_value with
          | Emsc_obs.Metrics.Counter v
            when s.Emsc_obs.Metrics.m_name = "driver.cache.evictions" ->
            Some v
          | _ -> None)
        snap.Emsc_obs.Metrics.samples
    in
    Alcotest.(check (option (float 0.0))) "evictions in the registry"
      (Some 8.0) evictions)

let test_hit_after_evict_falls_to_disk () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "emsc-test-lru-disk-%d" (Unix.getpid ()))
  in
  let cache = Cache.create ~dir ~max_entries:2 () in
  let memo k = ignore (fst (Cache.memo cache ~key:k (fun () -> k))) in
  memo "a";
  memo "b";
  memo "c";   (* evicts [a] from memory; [a] stays published on disk *)
  Alcotest.(check int) "one eviction" 1 (Cache.evictions cache);
  let v, cached = Cache.memo cache ~key:"a" (fun () -> "recompute") in
  Alcotest.(check string) "disk served the evicted entry" "a" v;
  Alcotest.(check bool) "counted as a hit" true cached;
  Alcotest.(check int) "specifically a disk hit" 1 (Cache.disk_hits cache);
  (* the disk hit re-promotes [a] into the memory layer *)
  let (_ : string * bool) = Cache.memo cache ~key:"a" (fun () -> "x") in
  Alcotest.(check int) "promoted back to hot" 1 (Cache.hot_hits cache)

(* --- batch ------------------------------------------------------------ *)

let fingerprint (c : Pipeline.compiled) =
  let plan_s =
    match c.Pipeline.plan with
    | Some p ->
      Emsc_obs.Json.to_string (Emsc_core.Plan.explain_json p)
    | None -> "<no plan>"
  in
  let band_s =
    match c.Pipeline.band with
    | Some b ->
      String.concat ";"
        (List.map
           (fun v -> Format.asprintf "%a" Emsc_linalg.Vec.pp v)
           b.Emsc_transform.Hyperplanes.hyperplanes)
    | None -> "<no band>"
  in
  (c.Pipeline.source_name, c.Pipeline.digest, band_s, plan_s)

let test_batch_matches_sequential () =
  let jobs = Emsc_kernels.Suite.jobs () in
  let seq = Pipeline.compile_many ~jobs:1 jobs in
  let par = Pipeline.compile_many ~jobs:3 jobs in
  Alcotest.(check int) "same cardinality" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      match (a, b) with
      | Ok a, Ok b ->
        let na, da, ba, pa = fingerprint a in
        let nb, db, bb, pb = fingerprint b in
        Alcotest.(check string) "name" na nb;
        Alcotest.(check string) "digest" da db;
        Alcotest.(check string) ("band " ^ na) ba bb;
        Alcotest.(check string) ("plan " ^ na) pa pb
      | Error e, _ | _, Error e ->
        Alcotest.failf "suite kernel failed: %s" (Frontend.error_message e))
    seq par

let test_batch_reports_bad_file () =
  let jobs =
    [ Pipeline.job (src ());
      Pipeline.job (Source.Text { name = "broken"; text = "for (;;)" });
      Pipeline.job (src ()) ]
  in
  let results = Pipeline.compile_many ~jobs:2 jobs in
  (match results with
   | [ Ok _; Error e; Ok _ ] ->
     Alcotest.(check string) "failure origin" "broken" e.Frontend.origin
   | _ -> Alcotest.fail "expected [Ok; Error; Ok] in input order");
  ()

let named n = Pipeline.job (Source.Text { name = n; text = matmul_src })

let test_batch_raising_job_is_named () =
  (* a compile function that raises must surface as that job's own
     error — name and message — never as a collapsed batch failure *)
  let compile_one ~cache (jb : Pipeline.job) =
    if Source.name jb.Pipeline.source = "j2" then failwith "injected crash";
    Pipeline.compile ~cache jb
  in
  List.iter
    (fun jobs_n ->
      let results =
        Pipeline.compile_many ~jobs:jobs_n ~compile_one
          [ named "j0"; named "j1"; named "j2"; named "j3" ]
      in
      match results with
      | [ Ok _; Ok _; Error e; Ok _ ] ->
        Alcotest.(check string) "failed job is named" "j2" e.Frontend.origin;
        Alcotest.(check string) "batch stage" "batch" e.Frontend.stage;
        let contains s sub =
          let n = String.length sub in
          let rec at i =
            i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
          in
          at 0
        in
        Alcotest.(check bool) "message carries the exception" true
          (contains e.Frontend.message "injected crash")
      | _ -> Alcotest.failf "jobs=%d: expected [Ok; Ok; Error j2; Ok]" jobs_n)
    [ 1; 2 ]   (* both the sequential and the forked path *)

let test_batch_dead_worker_is_isolated () =
  (* jobs are dealt round-robin over 2 workers: worker 1 holds j1 and
     j3.  It aborts at j1 without reporting, so j1 and j3 must each
     come back as their own error carrying the exit status, while
     worker 0's j0 and j2 results survive untouched. *)
  let compile_one ~cache (jb : Pipeline.job) =
    if Source.name jb.Pipeline.source = "j1" then Unix._exit 3;
    Pipeline.compile ~cache jb
  in
  let results =
    Pipeline.compile_many ~jobs:2 ~compile_one
      [ named "j0"; named "j1"; named "j2"; named "j3" ]
  in
  match results with
  | [ Ok _; Error e1; Ok _; Error e3 ] ->
    Alcotest.(check string) "j1 named" "j1" e1.Frontend.origin;
    Alcotest.(check string) "j3 named" "j3" e3.Frontend.origin;
    Alcotest.(check string) "exit status reported"
      "worker exited with code 3" e1.Frontend.message;
    Alcotest.(check string) "unreported job carries the same status"
      "worker exited with code 3" e3.Frontend.message
  | _ ->
    Alcotest.failf "expected [Ok; Error; Ok; Error], got %s"
      (String.concat ";"
         (List.map (function Ok _ -> "ok" | Error _ -> "err") results))

(* --- tracing ---------------------------------------------------------- *)

let test_stage_spans () =
  Emsc_obs.Trace.reset ();
  Emsc_obs.Trace.enable ();
  let finally () =
    Emsc_obs.Trace.disable ();
    Emsc_obs.Trace.reset ()
  in
  Fun.protect ~finally (fun () ->
    let (_ : Pipeline.compiled) = compile_ok ~cache:(Cache.in_memory ()) (src ()) in
    let names =
      List.map (fun (a : Emsc_obs.Trace.agg) -> a.Emsc_obs.Trace.agg_name)
        (Emsc_obs.Trace.aggregate ())
    in
    List.iter
      (fun n ->
        Alcotest.(check bool) ("span " ^ n) true (List.mem n names))
      [ "driver.parse"; "driver.deps"; "driver.hyperplanes"; "driver.plan" ])

(* --- front-end errors ------------------------------------------------- *)

let test_parse_error () =
  match Pipeline.compile_source (Source.Text { name = "bad"; text = "for (" }) with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
    Alcotest.(check string) "origin" "bad" e.Frontend.origin;
    Alcotest.(check string) "stage" "parse" e.Frontend.stage

let test_missing_file () =
  match Pipeline.compile_source (Source.file "/nonexistent/x.emsc") with
  | Ok _ -> Alcotest.fail "expected a read error"
  | Error e -> Alcotest.(check string) "stage" "read" e.Frontend.stage

let test_pipeline_failure_is_error () =
  (* an unbounded parametric block cannot size its buffers: the plan
     stage fails, and the failure must surface as a result, not an
     exception or exit *)
  let text =
    {|
    param N;
    array A[N];
    for (i = 0; i <= N - 1; i++) { A[i] = A[i] + 1; }
    |}
  in
  match
    Pipeline.compile_source
      ~options:{ Options.default with arch = `Cell; find_band = false }
      (Source.Text { name = "unbounded"; text })
  with
  | Ok c -> Alcotest.(check bool) "plan exists" true (c.Pipeline.plan <> None)
  | Error e -> Alcotest.(check string) "stage" "pipeline" e.Frontend.stage

let () =
  Alcotest.run "driver"
    [ ( "cache",
        [ Alcotest.test_case "repeat compilation hits" `Quick test_cache_hits;
          Alcotest.test_case "delta change misses plan only" `Quick
            test_option_change_misses_plan_only;
          Alcotest.test_case "machine change misses plan only" `Quick
            test_machine_change_misses_plan_only;
          Alcotest.test_case "tile change misses tile+plan" `Quick
            test_tiling_change_misses;
          Alcotest.test_case "source change misses" `Quick
            test_source_change_misses;
          Alcotest.test_case "disk persistence" `Quick test_disk_persistence;
          Alcotest.test_case "corrupt entry is a miss" `Quick
            test_corrupt_entry_is_miss;
          Alcotest.test_case "failing writer leaks no tmp file" `Quick
            test_failing_writer_leaves_no_tmp ] );
      ( "lru",
        [ Alcotest.test_case "cap respected under churn" `Quick
            test_lru_cap_respected;
          Alcotest.test_case "least-recent entry is the victim" `Quick
            test_lru_recency_order;
          Alcotest.test_case "evictions reach the metrics registry" `Quick
            test_lru_eviction_metrics;
          Alcotest.test_case "hit after evict falls through to disk" `Quick
            test_hit_after_evict_falls_to_disk ] );
      ( "batch",
        [ Alcotest.test_case "parallel equals sequential" `Slow
            test_batch_matches_sequential;
          Alcotest.test_case "bad file is isolated" `Quick
            test_batch_reports_bad_file;
          Alcotest.test_case "raising job is its own named error" `Quick
            test_batch_raising_job_is_named;
          Alcotest.test_case "dead worker loses only unreported jobs" `Quick
            test_batch_dead_worker_is_isolated ] );
      ( "observability",
        [ Alcotest.test_case "stage spans present" `Quick test_stage_spans ] );
      ( "frontend",
        [ Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "pipeline failure is a result" `Quick
            test_pipeline_failure_is_error ] ) ]

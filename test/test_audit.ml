(* Cost-model audit: predicted-vs-measured drift on real kernels, the
   per-buffer metrics attribution it relies on, and the bench-compare
   regression gate. *)

open Emsc_core
open Emsc_machine
open Emsc_driver
open Emsc_obs
module A = Emsc_audit.Audit
module BC = Emsc_audit.Bench_compare

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let parse_exn s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse %S: %s" s e

let matmul_src =
  {|
  array A[24][24];
  array B[24][24];
  array C[24][24];
  for (i = 0; i <= 23; i++) {
    for (j = 0; j <= 23; j++) {
      for (k = 0; k <= 23; k++) {
        C[i][j] += A[i][k] * B[k][j];
      }
    }
  }
  |}

let compile_matmul () =
  match
    Pipeline.compile_source ~cache:(Cache.in_memory ())
      (Source.Text { name = "matmul-audit"; text = matmul_src })
  with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile failed: %s" (Frontend.error_message e)

(* --- auditing a real untiled kernel ----------------------------------- *)

let test_untiled_pass () =
  let c = compile_matmul () in
  checkb "auditable" true (A.auditable c);
  match A.audit_compiled c with
  | A.Skipped r -> Alcotest.failf "skipped: %s" r
  | A.Failed r -> Alcotest.failf "failed: %s" r
  | A.Audited t ->
    checkb "untiled" false t.A.a_tiled;
    Alcotest.check Alcotest.string "verdict" "pass"
      (A.verdict_string t.A.a_verdict);
    checkb "has buffer groups" true (t.A.a_groups <> []);
    checkb "has program quantities" true (t.A.a_program <> []);
    checkb "has timing quantities" true (t.A.a_timing <> []);
    let all =
      t.A.a_program @ t.A.a_timing
      @ List.concat_map (fun g -> g.A.g_quantities) t.A.a_groups
    in
    List.iter (fun q ->
      checkb (q.A.q_name ^ " within tolerance") true
        (Float.abs q.A.q_rel_err <= t.A.a_tolerance);
      (* movement predictions are upper bounds: never under-predict *)
      if q.A.q_name = "move_in_words" || q.A.q_name = "move_out_words" then
        checkb (q.A.q_name ^ " is an upper bound") true (q.A.q_rel_err >= 0.0))
      all;
    checkb "run metrics captured" true (t.A.a_metrics.Metrics.samples <> []);
    (* the report round-trips through JSON with its status marker *)
    let j = parse_exn (Json.to_string (A.outcome_json ~name:"matmul-audit"
                                         (A.Audited t))) in
    checkb "status" true (Json.member "status" j = Some (Json.Str "audited"));
    checkb "verdict field" true
      (Json.member "verdict" j = Some (Json.Str "pass"));
    checkb "groups field" true (Json.member "groups" j <> None)

let test_suite_ok () =
  let outcomes =
    List.map (fun (job : Pipeline.job) ->
      (Source.name job.Pipeline.source, A.audit_job ~cache:(Cache.in_memory ()) job))
      (Emsc_kernels.Suite.jobs ())
  in
  List.iter (fun (name, o) ->
    checkb (name ^ " audit ok") true (A.ok o)) outcomes;
  (* at least one kernel actually gets audited (not all skipped) *)
  checkb "some audited" true
    (List.exists (fun (_, o) -> match o with A.Audited _ -> true | _ -> false)
       outcomes)

let test_metrics_state_restored () =
  Metrics.reset ();
  Metrics.disable ();
  let c = compile_matmul () in
  (match A.audit_compiled c with
   | A.Audited _ -> ()
   | _ -> Alcotest.fail "expected an audited outcome");
  checkb "metrics disabled again after audit" false (Metrics.enabled ());
  (* nothing leaked into the (disabled) registry for later callers *)
  Metrics.reset ();
  checki "registry empty" 0 (List.length (Metrics.snapshot ()).Metrics.samples)

(* --- per-buffer movement attribution in the interpreter --------------- *)

let test_exec_attribution () =
  let c = compile_matmul () in
  let plan =
    match c.Pipeline.plan with
    | Some p -> p
    | None -> Alcotest.fail "no plan"
  in
  let run () =
    let harness = Plan.all_move_in plan @ Plan.all_move_out plan in
    let locals =
      List.map (fun (b : Plan.buffered) -> b.Plan.buffer.Alloc.local_name)
        plan.Plan.buffered
    in
    ignore
      (Runner.execute ~prog:c.Pipeline.prog ~local_ref:(Plan.local_ref plan)
         ~locals ~mode:Exec.Full ~memory:Runner.Zeroed harness)
  in
  Metrics.reset ();
  Metrics.disable ();
  run ();
  checki "disabled run records nothing" 0
    (List.length (Metrics.snapshot ()).Metrics.samples);
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () -> Metrics.disable (); Metrics.reset ())
    (fun () ->
      let snap0 = Metrics.snapshot () in
      run ();
      let d = Metrics.diff snap0 (Metrics.snapshot ()) in
      let copies = Metrics.counter_value d "exec.copies" in
      checkb "copies counted" true (copies > 0.0);
      (* every copy in the staging harness crosses the global/local
         boundary, so per-buffer words sum back to the copy total *)
      let per_buffer =
        List.fold_left (fun acc (b : Plan.buffered) ->
          let labels = [ ("buffer", b.Plan.buffer.Alloc.local_name) ] in
          acc
          +. Metrics.counter_value ~labels d "exec.move_in_words"
          +. Metrics.counter_value ~labels d "exec.move_out_words")
          0.0 plan.Plan.buffered
      in
      Alcotest.check (Alcotest.float 0.0) "per-buffer words = copies" copies
        per_buffer;
      checkb "occupancy recorded" true
        (Metrics.find d "exec.scratchpad_occupancy_total_words" <> None))

(* --- bench-compare gating --------------------------------------------- *)

let artifact figs kernels =
  Json.Obj
    [ ("schema", Json.Str "emsc-bench/1");
      ("figure_wall_ms", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) figs));
      ( "kernel_counters",
        Json.Obj
          (List.map (fun (k, (ld, st)) ->
             ( k,
               Json.Obj
                 [ ("global_loads", Json.Float ld);
                   ("global_stores", Json.Float st) ] ))
             kernels) ) ]

let compare_exn ?wall_tolerance ?move_tolerance old_a new_a =
  match BC.compare ?wall_tolerance ?move_tolerance old_a new_a with
  | Ok r -> r
  | Error e -> Alcotest.failf "compare: %s" e

let base () =
  artifact
    [ ("figure2", 100.0); ("figure3", 40.0) ]
    [ ("matmul", (1000.0, 500.0)); ("me", (2000.0, 100.0)) ]

let test_compare_identical () =
  let r = compare_exn (base ()) (base ()) in
  checkb "ok" true (BC.ok r);
  checki "no regressions" 0 (List.length r.BC.r_regressions);
  checki "all unchanged" 4 r.BC.r_unchanged;
  checki "nothing missing" 0 (List.length r.BC.r_missing)

let test_compare_movement_regression () =
  (* +2% global words on one kernel: inside the wall tolerance, outside
     the (tight) movement tolerance — the gate must trip *)
  let worse =
    artifact
      [ ("figure2", 100.0); ("figure3", 40.0) ]
      [ ("matmul", (1020.0, 510.0)); ("me", (2000.0, 100.0)) ]
  in
  let r = compare_exn (base ()) worse in
  checkb "regressed" false (BC.ok r);
  (match r.BC.r_regressions with
   | [ c ] ->
     Alcotest.check Alcotest.string "key" "matmul" c.BC.c_key;
     Alcotest.check Alcotest.string "metric" "global_words" c.BC.c_metric;
     checkb "ratio > 1" true (c.BC.c_ratio > 1.01)
   | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* the same artifact passes when the movement gate is loosened *)
  checkb "loose tolerance passes" true
    (BC.ok (compare_exn ~move_tolerance:0.05 (base ()) worse))

let test_compare_wall_regression () =
  let worse =
    artifact
      [ ("figure2", 200.0); ("figure3", 40.0) ]
      [ ("matmul", (1000.0, 500.0)); ("me", (2000.0, 100.0)) ]
  in
  let r = compare_exn (base ()) worse in
  checkb "2x wall time regresses" false (BC.ok r);
  match r.BC.r_regressions with
  | [ c ] -> Alcotest.check Alcotest.string "metric" "wall_ms" c.BC.c_metric
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l)

let test_compare_missing_and_added () =
  let next =
    artifact
      [ ("figure2", 100.0) ]
      [ ("matmul", (1000.0, 500.0)); ("me", (2000.0, 100.0));
        ("conv2d", (7.0, 7.0)) ]
  in
  let r = compare_exn (base ()) next in
  checkb "lost measurement fails" false (BC.ok r);
  checkb "missing names the figure" true
    (List.mem "figure3/wall_ms" r.BC.r_missing);
  checkb "added names the kernel" true
    (List.mem "conv2d/global_words" r.BC.r_added)

let test_compare_improvement () =
  let better =
    artifact
      [ ("figure2", 10.0); ("figure3", 40.0) ]
      [ ("matmul", (1000.0, 500.0)); ("me", (2000.0, 100.0)) ]
  in
  let r = compare_exn (base ()) better in
  checkb "improvement keeps ok" true (BC.ok r);
  checki "one improvement" 1 (List.length r.BC.r_improvements);
  (* report JSON carries the gate result *)
  let j = parse_exn (Json.to_string (BC.json r)) in
  checkb "ok field" true (Json.member "ok" j = Some (Json.Bool true))

let test_compare_malformed () =
  match BC.compare (Json.Obj [ ("schema", Json.Str "emsc-bench/1") ]) (base ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "artifact without sections must be rejected"

let () =
  Alcotest.run "audit"
    [ ( "audit",
        [ Alcotest.test_case "untiled-pass" `Quick test_untiled_pass;
          Alcotest.test_case "suite-ok" `Slow test_suite_ok;
          Alcotest.test_case "metrics-state" `Quick test_metrics_state_restored;
          Alcotest.test_case "exec-attribution" `Quick test_exec_attribution ]
      );
      ( "bench-compare",
        [ Alcotest.test_case "identical" `Quick test_compare_identical;
          Alcotest.test_case "movement-regression" `Quick
            test_compare_movement_regression;
          Alcotest.test_case "wall-regression" `Quick
            test_compare_wall_regression;
          Alcotest.test_case "missing+added" `Quick
            test_compare_missing_and_added;
          Alcotest.test_case "improvement" `Quick test_compare_improvement;
          Alcotest.test_case "malformed" `Quick test_compare_malformed ] ) ]

(* Core framework tests: the paper's Figure 1 worked example must be
   reproduced exactly (buffer extents, offsets, movement sets), plus
   unit tests for data spaces, partitioning, Algorithm 1 and the
   movement optimizer. *)

open Emsc_arith
open Emsc_linalg
open Emsc_poly
open Emsc_ir
open Emsc_codegen
open Emsc_core

let fig1 = Emsc_kernels.Fig1.program

(* --- tiny AST walker: collect executed Copy instances ----------------- *)

type copy_event = {
  dst_arr : string;
  dst_idx : int list;
  src_arr : string;
  src_idx : int list;
}

let run_copies stms =
  let events = ref [] in
  let rec run env stms =
    List.iter
      (fun s ->
        match s with
        | Ast.Loop l ->
          let lb = Ast.eval env l.lb and ub = Ast.eval env l.ub in
          let v = ref lb in
          while Zint.compare !v ub <= 0 do
            let vv = !v in
            let env' n = if n = l.var then vv else env n in
            run env' l.body;
            v := Zint.add !v l.step
          done
        | Ast.Guard (conds, body) ->
          if List.for_all (fun c -> not (Zint.is_negative (Ast.eval env c)))
               conds
          then run env body
        | Ast.Copy { dst; src } ->
          let ev =
            {
              dst_arr = dst.Ast.array;
              dst_idx =
                Array.to_list
                  (Array.map (fun e -> Zint.to_int_exn (Ast.eval env e))
                     dst.Ast.indices);
              src_arr = src.Ast.array;
              src_idx =
                Array.to_list
                  (Array.map (fun e -> Zint.to_int_exn (Ast.eval env e))
                     src.Ast.indices);
            }
          in
          events := ev :: !events
        | Ast.Stmt_call _ | Ast.Sync | Ast.Fence | Ast.Comment _ -> ())
      stms
  in
  run (fun n -> failwith ("unbound " ^ n)) stms;
  List.rev !events

let counts_exn u =
  match Count.count_uset u with
  | Count.Exact n -> Zint.to_int_exn n
  | _ -> Alcotest.fail "expected exact count"

(* --- data spaces -------------------------------------------------------- *)

let test_spaces_of_array () =
  let spaces_a = Dataspaces.spaces_of_array fig1 "A" in
  let spaces_b = Dataspaces.spaces_of_array fig1 "B" in
  Alcotest.(check int) "A has 3 references" 3 (List.length spaces_a);
  Alcotest.(check int) "B has 2 references" 2 (List.length spaces_b);
  (* the A[i+j][j+1] space is [20,28] x [11,15] with a diagonal band *)
  let diag =
    List.find
      (fun (d : Dataspaces.dspace) ->
        d.Dataspaces.stmt.Prog.name = "S1"
        && d.Dataspaces.access.Prog.kind = Prog.Read)
      spaces_a
  in
  let lo, hi = Poly.var_bounds_int diag.Dataspaces.space 0 in
  Alcotest.(check int) "d0 lb" 20 (Zint.to_int_exn (Option.get lo));
  Alcotest.(check int) "d0 ub" 28 (Zint.to_int_exn (Option.get hi))

let test_partitions () =
  let parts_a = Dataspaces.partition_array fig1 "A" in
  let parts_b = Dataspaces.partition_array fig1 "B" in
  (* the write + A[i][k] overlap; the diagonal read is disjoint *)
  Alcotest.(check int) "A partitions" 2 (List.length parts_a);
  Alcotest.(check int) "B partitions" 2 (List.length parts_b);
  let sizes =
    List.sort compare
      (List.map (fun (p : Dataspaces.partition) ->
         List.length p.Dataspaces.members)
         parts_a)
  in
  Alcotest.(check (list int)) "A partition sizes" [ 1; 2 ] sizes

(* --- Algorithm 1 -------------------------------------------------------- *)

let test_reuse_rank () =
  let s2 = Prog.find_stmt fig1 2 in
  let a_read =
    List.find (fun (a : Prog.access) -> a.Prog.array = "A") s2.Prog.reads
  in
  Alcotest.(check bool) "A[i][k] has non-constant reuse" true
    (Reuse.access_has_nonconstant_reuse s2 a_read);
  let s1 = Prog.find_stmt fig1 1 in
  let diag = List.hd s1.Prog.reads in
  Alcotest.(check bool) "A[i+j][j+1] is rank-full" false
    (Reuse.access_has_nonconstant_reuse s1 diag)

let test_reuse_partitions () =
  let parts = Dataspaces.partition_array fig1 "A" in
  let reports =
    List.map (fun part ->
      (List.length part.Dataspaces.members, Reuse.analyze fig1 part))
      parts
  in
  List.iter (fun (n, (r : Reuse.report)) ->
    if n = 2 then
      Alcotest.(check bool) "overlapping partition beneficial" true
        r.Reuse.beneficial
    else
      (* singleton diagonal read: constant reuse only, no overlap *)
      Alcotest.(check bool) "singleton not beneficial" false
        r.Reuse.beneficial)
    reports

let test_reuse_constant_overlap () =
  (* two reads of the same box through rank-full accesses: A[i][j] and
     A[i][j] in a 2-deep nest overlap 100% -> beneficial via δ *)
  let acc1 =
    Prog.mk_access ~array:"A" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0 ]; [ 0; 1; 0 ] ]
  in
  let acc2 =
    Prog.mk_access ~array:"A" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 1 ]; [ 0; 1; 0 ] ]
  in
  let w =
    Prog.mk_access ~array:"C" ~kind:Prog.Write
      ~rows:[ [ 1; 0; 0 ]; [ 0; 1; 0 ] ]
  in
  let s =
    Build.stmt ~id:1 ~name:"S" ~np:0 ~depth:2
      ~domain:(Build.box_domain ~np:0 [ (0, 19); (0, 19) ])
      ~writes:[ w ] ~reads:[ acc1; acc2 ]
      ~body:(w, Prog.Eadd (Prog.Eref acc1, Prog.Eref acc2))
      ~beta:[ 0; 0; 0 ] ()
  in
  let p =
    { Prog.params = [||];
      arrays =
        [ Emsc_ir.Build.array2 "A" 32 32 ~np:0;
          Emsc_ir.Build.array2 "C" 32 32 ~np:0 ];
      stmts = [ s ] }
  in
  let parts = Dataspaces.partition_array p "A" in
  Alcotest.(check int) "one partition" 1 (List.length parts);
  let r = Reuse.analyze p (List.hd parts) in
  Alcotest.(check bool) "not order-of-magnitude" false r.Reuse.nonconstant;
  (match r.Reuse.overlap_fraction with
   | Some f -> Alcotest.(check bool) "overlap > 0.3" true (f > 0.3)
   | None -> Alcotest.fail "expected overlap fraction");
  Alcotest.(check bool) "beneficial by δ" true r.Reuse.beneficial

let test_reuse_truncated_count_is_unknown () =
  (* regression: when the point count hits [count_limit] mid-partition,
     the partial tally is only a lower bound — criterion (b) must
     report "unknown" rather than compare a truncated sum against δ *)
  let acc1 =
    Prog.mk_access ~array:"A" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 0 ]; [ 0; 1; 0 ] ]
  in
  let acc2 =
    Prog.mk_access ~array:"A" ~kind:Prog.Read
      ~rows:[ [ 1; 0; 1 ]; [ 0; 1; 0 ] ]
  in
  let w =
    Prog.mk_access ~array:"C" ~kind:Prog.Write
      ~rows:[ [ 1; 0; 0 ]; [ 0; 1; 0 ] ]
  in
  let s =
    Build.stmt ~id:1 ~name:"S" ~np:0 ~depth:2
      ~domain:(Build.box_domain ~np:0 [ (0, 19); (0, 19) ])
      ~writes:[ w ] ~reads:[ acc1; acc2 ]
      ~body:(w, Prog.Eadd (Prog.Eref acc1, Prog.Eref acc2))
      ~beta:[ 0; 0; 0 ] ()
  in
  let p =
    { Prog.params = [||];
      arrays =
        [ Emsc_ir.Build.array2 "A" 32 32 ~np:0;
          Emsc_ir.Build.array2 "C" 32 32 ~np:0 ];
      stmts = [ s ] }
  in
  let part = List.hd (Dataspaces.partition_array p "A") in
  (* with an honest limit the ~100% overlap is computable... *)
  let full = Reuse.analyze p part in
  Alcotest.(check bool) "computable overlap is beneficial" true
    full.Reuse.beneficial;
  (* ...with a limit below the ~420-point union the fraction must be
     unknown, and criterion (b) must not fire from the truncation *)
  let truncated = Reuse.analyze ~count_limit:16 p part in
  Alcotest.(check bool) "fraction unknown when truncated" true
    (truncated.Reuse.overlap_fraction = None);
  Alcotest.(check bool) "truncated count is not beneficial" false
    truncated.Reuse.beneficial

let test_overlap_three_way () =
  (* regression: three mutually-overlapping reads A[i], A[i+1], A[i+2]
     over i in [0,5] give spaces [0,5], [1,6], [2,7]: union [0,7] has 8
     elements, Σ|DSᵢ| = 18.  The old pairwise-intersection sum counted
     5 + 4 + 5 = 14 → 14/8 = 1.75, an impossible fraction (> 1.0) that
     over-states reuse; Σ|DSᵢ| − |∪DSᵢ| = 10 clamps to fraction 1.0 *)
  let acc c =
    Prog.mk_access ~array:"A" ~kind:Prog.Read ~rows:[ [ 1; c ] ]
  in
  let w = Prog.mk_access ~array:"C" ~kind:Prog.Write ~rows:[ [ 1; 0 ] ] in
  let s =
    Build.stmt ~id:1 ~name:"S" ~np:0 ~depth:1
      ~domain:(Build.box_domain ~np:0 [ (0, 5) ])
      ~writes:[ w ]
      ~reads:[ acc 0; acc 1; acc 2 ]
      ~body:
        ( w,
          Prog.Eadd
            (Prog.Eref (acc 0), Prog.Eadd (Prog.Eref (acc 1), Prog.Eref (acc 2)))
        )
      ~beta:[ 0; 0 ] ()
  in
  let p =
    { Prog.params = [||];
      arrays = [ Build.array1 "A" 16 ~np:0; Build.array1 "C" 16 ~np:0 ];
      stmts = [ s ] }
  in
  let parts = Dataspaces.partition_array p "A" in
  Alcotest.(check int) "one partition" 1 (List.length parts);
  let r = Reuse.analyze p (List.hd parts) in
  match r.Reuse.overlap_fraction with
  | None -> Alcotest.fail "expected an overlap fraction"
  | Some f ->
    Alcotest.(check bool) "fraction within [0,1]" true (f >= 0.0 && f <= 1.0);
    Alcotest.(check (float 1e-9)) "clamped to 1.0" 1.0 f

(* --- Algorithm 1 boundary cases ----------------------------------------- *)

let empty_partition rank =
  { Dataspaces.array = "A"; rank; members = []; union = Uset.empty rank }

let test_empty_partition () =
  let r = Reuse.analyze { Prog.params = [||]; arrays = []; stmts = [] }
      (empty_partition 1)
  in
  Alcotest.(check bool) "no rank reuse" false r.Reuse.nonconstant;
  Alcotest.(check bool) "no fraction" true (r.Reuse.overlap_fraction = None);
  Alcotest.(check bool) "not beneficial" false r.Reuse.beneficial

let test_zero_volume_union () =
  (* an empty statement domain instantiates to a zero-volume union:
     the fraction is undefined (None), and the partition must not be
     judged beneficial *)
  let acc = Prog.mk_access ~array:"A" ~kind:Prog.Read ~rows:[ [ 1; 0 ] ] in
  let s =
    Build.stmt ~id:1 ~name:"S" ~np:0 ~depth:1
      ~domain:(Build.box_domain ~np:0 [ (5, 4) ]) (* lo > hi: empty *)
      ~reads:[ acc ] ~beta:[ 0; 0 ] ()
  in
  let p =
    { Prog.params = [||];
      arrays = [ Build.array1 "A" 8 ~np:0 ];
      stmts = [ s ] }
  in
  let part =
    { Dataspaces.array = "A"; rank = 1;
      members =
        [ { Dataspaces.stmt = s; access = acc;
            space = Dataspaces.space_of_access p s acc } ];
      union = Uset.empty 1 }
  in
  let r = Reuse.analyze p part in
  Alcotest.(check bool) "zero volume: no fraction" true
    (r.Reuse.overlap_fraction = None);
  Alcotest.(check bool) "zero volume: not beneficial" false r.Reuse.beneficial

let test_fraction_exactly_delta () =
  (* Section 3.1 says copy when the overlap "exceeds" δ: a fraction of
     exactly δ must NOT qualify (the code pins [>], not [>=]).
     S1 reads A[i] over [0,6] (7 elts), S2 reads A[i] over [4,9]
     (6 elts): union [0,9] = 10, overlap = 13 − 10 = 3 → exactly 0.3 *)
  let acc = Prog.mk_access ~array:"A" ~kind:Prog.Read ~rows:[ [ 1; 0 ] ] in
  let s1 =
    Build.stmt ~id:1 ~name:"S1" ~np:0 ~depth:1
      ~domain:(Build.box_domain ~np:0 [ (0, 6) ])
      ~reads:[ acc ] ~beta:[ 0; 0 ] ()
  in
  let s2 =
    Build.stmt ~id:2 ~name:"S2" ~np:0 ~depth:1
      ~domain:(Build.box_domain ~np:0 [ (4, 9) ])
      ~reads:[ acc ] ~beta:[ 1; 0 ] ()
  in
  let p =
    { Prog.params = [||];
      arrays = [ Build.array1 "A" 16 ~np:0 ];
      stmts = [ s1; s2 ] }
  in
  let parts = Dataspaces.partition_array p "A" in
  Alcotest.(check int) "one partition" 1 (List.length parts);
  let part = List.hd parts in
  let r = Reuse.analyze ~delta:0.3 p part in
  (match r.Reuse.overlap_fraction with
   | Some f -> Alcotest.(check (float 1e-9)) "fraction = 0.3" 0.3 f
   | None -> Alcotest.fail "expected an overlap fraction");
  Alcotest.(check bool) "equal to δ is not beneficial" false
    r.Reuse.beneficial;
  (* strictly above a smaller δ it must qualify *)
  let r' = Reuse.analyze ~delta:0.25 p part in
  Alcotest.(check bool) "above δ is beneficial" true r'.Reuse.beneficial

(* --- Figure 1 reproduction ---------------------------------------------- *)

let fig1_plan () =
  Plan.plan_block ~arch:`Cell ~merge_per_array:true fig1

let buffer_named plan name =
  List.find (fun (b : Plan.buffered) -> b.Plan.buffer.Alloc.local_name = name)
    plan.Plan.buffered

let int_of_expr e = Zint.to_int_exn (Ast.eval (fun _ -> failwith "env") e)

let test_fig1_buffers () =
  let plan = fig1_plan () in
  Alcotest.(check int) "two buffers" 2 (List.length plan.Plan.buffered);
  let la = (buffer_named plan "l_A").Plan.buffer in
  let lb = (buffer_named plan "l_B").Plan.buffer in
  Alcotest.(check (list int)) "LA sizes = [19; 10]" [ 19; 10 ]
    (Array.to_list (Array.map int_of_expr (Alloc.size_exprs la)));
  Alcotest.(check (list int)) "LB sizes = [19; 24]" [ 19; 24 ]
    (Array.to_list (Array.map int_of_expr (Alloc.size_exprs lb)));
  Alcotest.(check (list int)) "LA offsets = [10; 11]" [ 10; 11 ]
    (Array.to_list
       (Array.map (fun (b : Alloc.bound) -> int_of_expr b.Alloc.expr)
          la.Alloc.lbs));
  Alcotest.(check (list int)) "LB offsets = [10; 11]" [ 10; 11 ]
    (Array.to_list
       (Array.map (fun (b : Alloc.bound) -> int_of_expr b.Alloc.expr)
          lb.Alloc.lbs));
  Alcotest.(check (list int)) "LA keeps both dims" [ 0; 1 ]
    (Array.to_list la.Alloc.kept)

let test_fig1_move_in_a () =
  let plan = fig1_plan () in
  let ba = buffer_named plan "l_A" in
  let events = run_copies ba.Plan.move_in in
  (* expected: every element of the read union, exactly once *)
  let reads = Dataspaces.reads_union fig1 ba.Plan.buffer.Alloc.partition in
  Alcotest.(check int) "one copy per element" (counts_exn reads)
    (List.length events);
  let distinct = List.sort_uniq compare (List.map (fun e -> e.src_idx) events) in
  Alcotest.(check int) "no duplicate loads" (List.length events)
    (List.length distinct);
  List.iter (fun e ->
    Alcotest.(check string) "src is A" "A" e.src_arr;
    Alcotest.(check string) "dst is l_A" "l_A" e.dst_arr;
    match e.src_idx, e.dst_idx with
    | [ g0; g1 ], [ l0; l1 ] ->
      Alcotest.(check int) "offset d0" (g0 - 10) l0;
      Alcotest.(check int) "offset d1" (g1 - 11) l1;
      Alcotest.(check bool) "src in union" true
        (Uset.contains_point reads (Vec.of_ints [ g0; g1 ]))
    | _ -> Alcotest.fail "rank mismatch")
    events

let test_fig1_move_out_a () =
  let plan = fig1_plan () in
  let ba = buffer_named plan "l_A" in
  let events = run_copies ba.Plan.move_out in
  (* the write space is [10,14] x [11,15]: 25 elements *)
  Alcotest.(check int) "25 stores" 25 (List.length events);
  List.iter (fun e ->
    Alcotest.(check string) "dst is A" "A" e.dst_arr;
    match e.dst_idx with
    | [ g0; g1 ] ->
      Alcotest.(check bool) "row range" true (g0 >= 10 && g0 <= 14);
      Alcotest.(check bool) "col range" true (g1 >= 11 && g1 <= 15)
    | _ -> Alcotest.fail "rank mismatch")
    events

let test_fig1_move_in_b () =
  let plan = fig1_plan () in
  let bb = buffer_named plan "l_B" in
  let events = run_copies bb.Plan.move_in in
  (* read space of B is [20,28] x [11,20]: 90 elements *)
  Alcotest.(check int) "90 loads" 90 (List.length events);
  let events_out = run_copies bb.Plan.move_out in
  (* write space of B is [10,14] x [21,34]: 70 elements *)
  Alcotest.(check int) "70 stores" 70 (List.length events_out)

let test_fig1_local_ref () =
  let plan = fig1_plan () in
  let s2 = Prog.find_stmt fig1 2 in
  let a_read =
    List.find (fun (a : Prog.access) -> a.Prog.array = "A") s2.Prog.reads
  in
  match Plan.local_ref plan s2 a_read with
  | None -> Alcotest.fail "A[i][k] should be buffered"
  | Some r ->
    Alcotest.(check string) "buffer name" "l_A" r.Ast.array;
    (* at i=12, k=15 the local element is (2, 4) *)
    let env n =
      match n with
      | "i" -> Zint.of_int 12
      | "k" -> Zint.of_int 15
      | _ -> failwith n
    in
    Alcotest.(check (list int)) "remapped indices" [ 2; 4 ]
      (Array.to_list
         (Array.map (fun e -> Zint.to_int_exn (Ast.eval env e)) r.Ast.indices))

let test_gpu_mode_skips () =
  (* algorithm-faithful partitioning on the GPU: the singleton diagonal
     read of A has no beneficial reuse and stays in global memory *)
  let plan = Plan.plan_block ~arch:`Gpu fig1 in
  Alcotest.(check int) "three buffers" 3 (List.length plan.Plan.buffered);
  Alcotest.(check int) "one skipped" 1 (List.length plan.Plan.skipped);
  let part, _ = List.hd plan.Plan.skipped in
  Alcotest.(check string) "skipped is A's singleton" "A"
    part.Dataspaces.array

(* --- dependences --------------------------------------------------------- *)

let test_fig1_flow_dep () =
  let deps = Deps.analyze fig1 in
  let flows =
    List.filter (fun (d : Deps.t) -> d.Deps.kind = Deps.Flow) deps
  in
  Alcotest.(check bool) "S1 -> S2 flow dep on A" true
    (List.exists (fun (d : Deps.t) ->
       d.Deps.src.Prog.name = "S1" && d.Deps.dst.Prog.name = "S2"
       && d.Deps.src_access.Prog.array = "A")
       flows);
  (* no B self-flow: writes touch rows [10,14], reads rows [20,28] *)
  Alcotest.(check bool) "no S2 -> S2 flow dep on B" false
    (List.exists (fun (d : Deps.t) ->
       d.Deps.src.Prog.name = "S2" && d.Deps.dst.Prog.name = "S2"
       && d.Deps.src_access.Prog.array = "B")
       flows)

let test_movement_optimizer () =
  (* S: for i in 0..9 { T1: A[i] = i;  T2: C[i] = A[i] } — with the
     producer inside the block nothing of A needs moving in *)
  let w_a =
    Prog.mk_access ~array:"A" ~kind:Prog.Write ~rows:[ [ 1; 0 ] ]
  in
  let r_a = Prog.mk_access ~array:"A" ~kind:Prog.Read ~rows:[ [ 1; 0 ] ] in
  let w_c = Prog.mk_access ~array:"C" ~kind:Prog.Write ~rows:[ [ 1; 0 ] ] in
  let t1 =
    Build.stmt ~id:1 ~name:"T1" ~np:0 ~depth:1
      ~domain:(Build.box_domain ~np:0 [ (0, 9) ])
      ~writes:[ w_a ]
      ~body:(w_a, Prog.Eiter 0)
      ~beta:[ 0; 0 ] ()
  in
  let t2 =
    Build.stmt ~id:2 ~name:"T2" ~np:0 ~depth:1
      ~domain:(Build.box_domain ~np:0 [ (0, 9) ])
      ~writes:[ w_c ] ~reads:[ r_a ]
      ~body:(w_c, Prog.Eref r_a)
      ~beta:[ 0; 1 ] ()
  in
  let p =
    { Prog.params = [||];
      arrays = [ Build.array1 "A" 16 ~np:0; Build.array1 "C" 16 ~np:0 ];
      stmts = [ t1; t2 ] }
  in
  let deps = Deps.analyze p in
  let parts = Dataspaces.partition_array p "A" in
  Alcotest.(check int) "one partition" 1 (List.length parts);
  let buf = Alloc.build p (List.hd parts) in
  let needed = Movement.optimized_move_in_data p deps buf in
  Alcotest.(check bool) "nothing to move in" true (Uset.is_empty needed);
  (* without the producer, everything is needed *)
  let p_only_read = { p with Prog.stmts = [ t2 ] } in
  let parts' = Dataspaces.partition_array p_only_read "A" in
  let buf' = Alloc.build p_only_read (List.hd parts') in
  let needed' =
    Movement.optimized_move_in_data p_only_read (Deps.analyze p_only_read) buf'
  in
  Alcotest.(check int) "all 10 elements needed" 10 (counts_exn needed')

let test_volume_bounds () =
  let parts = Dataspaces.partition_array fig1 "B" in
  let env _ = failwith "no params" in
  let total =
    List.fold_left (fun acc part ->
      match Movement.volume_upper_bound fig1 part ~kind:`Read ~env with
      | Some v -> acc + Zint.to_int_exn v
      | None -> Alcotest.fail "bounded space must be countable")
      0 parts
  in
  (* read space of B is [20,28] x [11,20]: box of 90 *)
  Alcotest.(check int) "Vin(B) = 90" 90 total

let test_volume_unknown_propagates () =
  (* regression: an unbounded group used to contribute zero, silently
     underestimating Vin; the unknown must propagate as None *)
  let r_a = Prog.mk_access ~array:"A" ~kind:Prog.Read ~rows:[ [ 1; 0 ] ] in
  let s =
    Build.stmt ~id:1 ~name:"U" ~np:0 ~depth:1
      ~domain:(Build.domain_rows ~np:0 ~depth:1 [ [ 1; 0 ] ]) (* i >= 0 only *)
      ~reads:[ r_a ]
      ~beta:[ 0; 0 ] ()
  in
  let p =
    { Prog.params = [||];
      arrays = [ Build.array1 "A" 16 ~np:0 ];
      stmts = [ s ] }
  in
  let parts = Dataspaces.partition_array p "A" in
  Alcotest.(check int) "one partition" 1 (List.length parts);
  let env _ = failwith "no params" in
  (match
     Movement.volume_upper_bound p (List.hd parts) ~kind:`Read ~env
   with
   | None -> ()
   | Some v ->
     Alcotest.failf "unbounded group must yield None, got %d"
       (Zint.to_int_exn v))

(* --- validation of the program itself ------------------------------------ *)

let test_fig1_validates () =
  match Prog.validate fig1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "core"
    [
      ( "dataspaces",
        [
          Alcotest.test_case "spaces of array" `Quick test_spaces_of_array;
          Alcotest.test_case "partitions" `Quick test_partitions;
          Alcotest.test_case "program validates" `Quick test_fig1_validates;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "rank criterion" `Quick test_reuse_rank;
          Alcotest.test_case "per-partition" `Quick test_reuse_partitions;
          Alcotest.test_case "constant overlap δ" `Quick
            test_reuse_constant_overlap;
          Alcotest.test_case "three-way overlap not double-counted" `Quick
            test_overlap_three_way;
          Alcotest.test_case "truncated count is unknown" `Quick
            test_reuse_truncated_count_is_unknown;
          Alcotest.test_case "empty partition" `Quick test_empty_partition;
          Alcotest.test_case "zero-volume union" `Quick test_zero_volume_union;
          Alcotest.test_case "fraction exactly δ" `Quick
            test_fraction_exactly_delta;
        ] );
      ( "fig1",
        [
          Alcotest.test_case "buffer extents" `Quick test_fig1_buffers;
          Alcotest.test_case "move-in A" `Quick test_fig1_move_in_a;
          Alcotest.test_case "move-out A" `Quick test_fig1_move_out_a;
          Alcotest.test_case "move in/out B" `Quick test_fig1_move_in_b;
          Alcotest.test_case "access remap" `Quick test_fig1_local_ref;
          Alcotest.test_case "gpu skips non-beneficial" `Quick
            test_gpu_mode_skips;
        ] );
      ( "movement",
        [
          Alcotest.test_case "flow deps found" `Quick test_fig1_flow_dep;
          Alcotest.test_case "optimizer (3.1.4)" `Quick test_movement_optimizer;
          Alcotest.test_case "volume bounds" `Quick test_volume_bounds;
          Alcotest.test_case "unknown volume propagates" `Quick
            test_volume_unknown_propagates;
        ] );
    ]

(* Observability layer: JSON round-trips, span trees, metric records,
   and the plan-explain report on a real kernel. *)

open Emsc_obs
open Emsc_core
open Emsc_machine
open Emsc_kernels

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Json: printing, parsing, round-trips                                *)
(* ------------------------------------------------------------------ *)

let golden = Alcotest.testable (Fmt.of_to_string Json.to_string) Json.equal

let parse_exn s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_json_print () =
  checks "obj"
    {|{"a":1,"b":[true,null,"x\n"],"c":-2.5}|}
    (Json.to_string
       (Json.Obj
          [ ("a", Json.Int 1);
            ("b", Json.List [ Json.Bool true; Json.Null; Json.Str "x\n" ]);
            ("c", Json.Float (-2.5)) ]));
  (* non-finite floats must not produce invalid JSON *)
  checks "nan" "null" (Json.to_string (Json.Float Float.nan));
  checks "inf" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_roundtrip () =
  let samples =
    [ Json.Null; Json.Bool false; Json.Int (-42); Json.Int max_int;
      Json.Float 0.3; Json.Float 1e-9; Json.Float 123456.75;
      Json.Str "plain"; Json.Str "esc \" \\ \n \t \x01";
      Json.List [ Json.Int 1; Json.List []; Json.Obj [] ];
      Json.Obj [ ("k", Json.Str "v"); ("nested", Json.Obj [ ("x", Json.Int 0) ]) ]
    ]
  in
  List.iter (fun j ->
    check golden "compact" j (parse_exn (Json.to_string j));
    check golden "pretty" j (parse_exn (Json.to_string ~pretty:true j)))
    samples

let test_json_parse () =
  check golden "ws" (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ])
    (parse_exn " { \"a\" : [ 1 , 2 ] } ");
  check golden "exp-is-float" (Json.Float 1500.0) (parse_exn "1.5e3");
  check golden "unicode-escape" (Json.Str "A\xc3\xa9") (parse_exn {|"Aé"|});
  List.iter (fun bad ->
    match Json.of_string bad with
    | Ok _ -> Alcotest.failf "expected parse failure on %S" bad
    | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Trace: span nesting, timing, export                                 *)
(* ------------------------------------------------------------------ *)

(* deterministic clock: each reading advances by one second *)
let with_fake_clock f =
  let t = ref 0.0 in
  Trace.set_clock (fun () -> t := !t +. 1.0; !t);
  Trace.reset ();
  Trace.enable ();
  Fun.protect f ~finally:(fun () ->
    Trace.disable ();
    Trace.reset ();
    Trace.use_default_clock ())

let build_tree () =
  Trace.span "outer" (fun () ->
    Trace.count "items" 2.0;
    Trace.span "inner" (fun () -> Trace.count "items" 1.0);
    Trace.span "inner" (fun () -> ()))

let test_span_nesting () =
  with_fake_clock (fun () ->
    build_tree ();
    match Trace.roots () with
    | [ outer ] ->
      checks "outer name" "outer" outer.Trace.name;
      Alcotest.(check int) "children" 2 (List.length outer.Trace.children);
      List.iter (fun (c : Trace.node) ->
        checks "child name" "inner" c.Trace.name;
        checkb "child within parent" true
          (c.Trace.start_s >= outer.Trace.start_s
           && c.Trace.start_s +. c.Trace.dur_s
              <= outer.Trace.start_s +. outer.Trace.dur_s))
        outer.Trace.children;
      (* children in start order, non-overlapping under the fake clock *)
      (match outer.Trace.children with
       | [ a; b ] ->
         checkb "monotonic starts" true
           (a.Trace.start_s +. a.Trace.dur_s <= b.Trace.start_s)
       | _ -> assert false);
      (* counters land on the innermost open span, no roll-up *)
      check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
        "outer counters" [ ("items", 2.0) ] outer.Trace.counters;
      check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
        "inner counters" [ ("items", 1.0) ]
        (List.hd outer.Trace.children).Trace.counters
    | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots))

let test_span_disabled_and_errors () =
  Trace.reset ();
  Trace.disable ();
  check Alcotest.int "disabled passthrough" 7 (Trace.span "x" (fun () -> 7));
  Trace.count "noop" 1.0;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.roots ()));
  with_fake_clock (fun () ->
    (try Trace.span "boom" (fun () -> failwith "bang") with Failure _ -> ());
    match Trace.roots () with
    | [ n ] ->
      checkb "error marked" true (List.mem_assoc "error" n.Trace.args)
    | _ -> Alcotest.fail "raising span must still be recorded")

let test_chrome_json () =
  with_fake_clock (fun () ->
    build_tree ();
    let j = parse_exn (Json.to_string (Trace.chrome_json ())) in
    let events =
      match Json.member "traceEvents" j with
      | Some e -> Json.to_list e
      | None -> Alcotest.fail "no traceEvents"
    in
    Alcotest.(check int) "event count" 3 (List.length events);
    List.iter (fun ev ->
      checkb "complete event" true
        (Json.member "ph" ev = Some (Json.Str "X"));
      List.iter (fun f ->
        checkb (f ^ " present") true (Json.member f ev <> None))
        [ "name"; "ts"; "dur"; "pid"; "tid" ])
      events;
    (* aggregate sees both spans *)
    match Trace.aggregate () with
    | (n1, c1, _) :: _ ->
      let inner = List.find (fun (n, _, _) -> n = "inner") (Trace.aggregate ()) in
      let _, inner_calls, _ = inner in
      Alcotest.(check int) "inner calls" 2 inner_calls;
      ignore n1; ignore c1
    | [] -> Alcotest.fail "empty aggregate")

(* ------------------------------------------------------------------ *)
(* Metric records                                                      *)
(* ------------------------------------------------------------------ *)

let test_counters_json () =
  let c = Exec.fresh () in
  c.Exec.flops <- 10.0;
  c.Exec.g_ld <- 4.0;
  let expected =
    Json.Obj
      [ ("flops", Json.Float 10.0); ("global_loads", Json.Float 4.0);
        ("global_stores", Json.Float 0.0); ("smem_loads", Json.Float 0.0);
        ("smem_stores", Json.Float 0.0); ("syncs", Json.Float 0.0);
        ("fences", Json.Float 0.0) ]
  in
  check golden "counters" expected (Exec.counters_json c);
  check golden "counters round-trip" expected
    (parse_exn (Json.to_string (Exec.counters_json c)))

(* ------------------------------------------------------------------ *)
(* Plan explain on a real kernel                                       *)
(* ------------------------------------------------------------------ *)

let test_explain_matmul () =
  let p = Matmul.program ~n:64 in
  let plan = Plan.plan_block ~arch:`Gpu p in
  let verdicts = Plan.explain plan in
  checkb "has verdicts" true (verdicts <> []);
  List.iter (fun (v : Plan.verdict) ->
    checkb "delta recorded" true (v.Plan.v_delta > 0.0);
    if v.Plan.v_copied then
      checkb "copied has buffer" true (v.Plan.v_buffer <> None))
    verdicts;
  (* the full JSON report round-trips and carries the Algorithm 1
     verdict fields for every partition *)
  let j =
    parse_exn
      (Json.to_string (Plan.explain_json ~capacity_words:4096 plan))
  in
  let parts =
    match Json.member "partitions" j with
    | Some l -> Json.to_list l
    | None -> Alcotest.fail "no partitions"
  in
  Alcotest.(check int) "one partition per verdict" (List.length verdicts)
    (List.length parts);
  List.iter (fun part ->
    let a1 =
      match Json.member "algorithm1" part with
      | Some a -> a
      | None -> Alcotest.fail "no algorithm1 verdict"
    in
    List.iter (fun f ->
      checkb (f ^ " present") true (Json.member f a1 <> None))
      [ "rank_reuse"; "overlap_fraction"; "delta"; "beneficial" ];
    match Json.member "copied" part, Json.member "buffer" part with
    | Some (Json.Bool true), Some (Json.Obj _ as b) ->
      checkb "buffer dims" true (Json.member "dims" b <> None)
    | Some (Json.Bool true), _ -> Alcotest.fail "copied without buffer"
    | _ -> ())
    parts;
  match Json.member "totals" j with
  | Some t ->
    checkb "capacity echoed" true
      (Json.member "capacity_words" t = Some (Json.Int 4096));
    checkb "fits flag" true (Json.member "fits_scratchpad" t <> None)
  | None -> Alcotest.fail "no totals"

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "print" `Quick test_json_print;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse ] );
      ( "trace",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled+errors" `Quick
            test_span_disabled_and_errors;
          Alcotest.test_case "chrome-json" `Quick test_chrome_json ] );
      ( "metrics",
        [ Alcotest.test_case "counters-json" `Quick test_counters_json ] );
      ( "explain",
        [ Alcotest.test_case "matmul" `Quick test_explain_matmul ] ) ]

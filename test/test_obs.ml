(* Observability layer: JSON round-trips, span trees, metric records,
   and the plan-explain report on a real kernel. *)

open Emsc_obs
open Emsc_core
open Emsc_machine
open Emsc_kernels

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Json: printing, parsing, round-trips                                *)
(* ------------------------------------------------------------------ *)

let golden = Alcotest.testable (Fmt.of_to_string Json.to_string) Json.equal

let parse_exn s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_json_print () =
  checks "obj"
    {|{"a":1,"b":[true,null,"x\n"],"c":-2.5}|}
    (Json.to_string
       (Json.Obj
          [ ("a", Json.Int 1);
            ("b", Json.List [ Json.Bool true; Json.Null; Json.Str "x\n" ]);
            ("c", Json.Float (-2.5)) ]));
  (* non-finite floats must not produce invalid JSON *)
  checks "nan" "null" (Json.to_string (Json.Float Float.nan));
  checks "inf" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_roundtrip () =
  let samples =
    [ Json.Null; Json.Bool false; Json.Int (-42); Json.Int max_int;
      Json.Float 0.3; Json.Float 1e-9; Json.Float 123456.75;
      Json.Str "plain"; Json.Str "esc \" \\ \n \t \x01";
      Json.List [ Json.Int 1; Json.List []; Json.Obj [] ];
      Json.Obj [ ("k", Json.Str "v"); ("nested", Json.Obj [ ("x", Json.Int 0) ]) ]
    ]
  in
  List.iter (fun j ->
    check golden "compact" j (parse_exn (Json.to_string j));
    check golden "pretty" j (parse_exn (Json.to_string ~pretty:true j)))
    samples

let test_json_parse () =
  check golden "ws" (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ])
    (parse_exn " { \"a\" : [ 1 , 2 ] } ");
  check golden "exp-is-float" (Json.Float 1500.0) (parse_exn "1.5e3");
  check golden "unicode-escape" (Json.Str "A\xc3\xa9") (parse_exn {|"Aé"|});
  List.iter (fun bad ->
    match Json.of_string bad with
    | Ok _ -> Alcotest.failf "expected parse failure on %S" bad
    | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* seeded random JSON values: escape-heavy strings, Int boundaries,
   awkward floats, nesting — the parser and printer must agree on all
   of them *)
let gen_string rng =
  let pieces =
    [| "a"; "xyz"; "\""; "\\"; "\n"; "\t"; "\r"; "\x01"; "\x1f"; "\xc3\xa9";
       "{"; "["; ","; " "; "e5"; "-" |]
  in
  String.concat ""
    (List.init (Random.State.int rng 8) (fun _ ->
       pieces.(Random.State.int rng (Array.length pieces))))

let rec gen_json rng depth =
  match Random.State.int rng (if depth = 0 then 6 else 8) with
  | 0 -> Json.Null
  | 1 -> Json.Bool (Random.State.bool rng)
  | 2 -> Json.Int (Random.State.int rng 2_000_001 - 1_000_000)
  | 3 ->
    Json.Int
      [| max_int; min_int; 0; -1; 1 lsl 53; (1 lsl 53) + 1 |].(Random.State.int
                                                                 rng 6)
  | 4 ->
    let specials =
      [| 0.3; -0.0; 1e-9; 1.5e15; -1.25e300; 4.5e-300; 123456.75 |]
    in
    if Random.State.bool rng then
      Json.Float specials.(Random.State.int rng (Array.length specials))
    else Json.Float (Random.State.float rng 2e6 -. 1e6)
  | 5 -> Json.Str (gen_string rng)
  | 6 ->
    Json.List
      (List.init (Random.State.int rng 5) (fun _ -> gen_json rng (depth - 1)))
  | _ ->
    Json.Obj
      (List.init (Random.State.int rng 5) (fun i ->
         (Printf.sprintf "k%d%s" i (gen_string rng), gen_json rng (depth - 1))))

let test_json_property () =
  let rng = Random.State.make [| 0xE5C; 42 |] in
  for _ = 1 to 500 do
    let j = gen_json rng 4 in
    let s = Json.to_string j in
    match Json.of_string s with
    | Error e -> Alcotest.failf "reparse %S: %s" s e
    | Ok j' ->
      if not (Json.equal j j') then Alcotest.failf "round-trip %S" s
  done;
  for _ = 1 to 100 do
    let j = gen_json rng 3 in
    match Json.of_string (Json.to_string ~pretty:true j) with
    | Ok j' when Json.equal j j' -> ()
    | _ -> Alcotest.failf "pretty round-trip %s" (Json.to_string j)
  done

let test_json_boundaries () =
  (* non-finite floats degrade to null wherever they appear *)
  checks "nonfinite" "[null,null,null]"
    (Json.to_string
       (Json.List
          [ Json.Float Float.nan; Json.Float Float.infinity;
            Json.Float Float.neg_infinity ]));
  (* deep nesting round-trips *)
  let deep = ref (Json.Int 1) in
  for _ = 1 to 200 do deep := Json.List [ !deep ] done;
  check golden "deep" !deep (parse_exn (Json.to_string !deep));
  (* Int boundaries survive as Int *)
  check golden "max_int" (Json.Int max_int)
    (parse_exn (Json.to_string (Json.Int max_int)));
  check golden "min_int" (Json.Int min_int)
    (parse_exn (Json.to_string (Json.Int min_int)));
  (* a literal with a fraction or exponent is a Float even when it has
     an integral value *)
  check golden "big-float" (Json.Float 1e308) (parse_exn "1e308");
  check golden "tiny-float" (Json.Float 4.5e-300) (parse_exn "4.5e-300");
  check golden "int-valued-float" (Json.Float 3.0) (parse_exn "3.0")

(* ------------------------------------------------------------------ *)
(* Trace: span nesting, timing, export                                 *)
(* ------------------------------------------------------------------ *)

(* deterministic clock: each reading advances by one second *)
let with_fake_clock f =
  let t = ref 0.0 in
  Trace.set_clock (fun () -> t := !t +. 1.0; !t);
  Trace.reset ();
  Trace.enable ();
  Fun.protect f ~finally:(fun () ->
    Trace.disable ();
    Trace.reset ();
    Trace.use_default_clock ())

let build_tree () =
  Trace.span "outer" (fun () ->
    Trace.count "items" 2.0;
    Trace.span "inner" (fun () -> Trace.count "items" 1.0);
    Trace.span "inner" (fun () -> ()))

let test_span_nesting () =
  with_fake_clock (fun () ->
    build_tree ();
    match Trace.roots () with
    | [ outer ] ->
      checks "outer name" "outer" outer.Trace.name;
      Alcotest.(check int) "children" 2 (List.length outer.Trace.children);
      List.iter (fun (c : Trace.node) ->
        checks "child name" "inner" c.Trace.name;
        checkb "child within parent" true
          (c.Trace.start_s >= outer.Trace.start_s
           && c.Trace.start_s +. c.Trace.dur_s
              <= outer.Trace.start_s +. outer.Trace.dur_s))
        outer.Trace.children;
      (* children in start order, non-overlapping under the fake clock *)
      (match outer.Trace.children with
       | [ a; b ] ->
         checkb "monotonic starts" true
           (a.Trace.start_s +. a.Trace.dur_s <= b.Trace.start_s)
       | _ -> assert false);
      (* counters land on the innermost open span, no roll-up *)
      check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
        "outer counters" [ ("items", 2.0) ] outer.Trace.counters;
      check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
        "inner counters" [ ("items", 1.0) ]
        (List.hd outer.Trace.children).Trace.counters
    | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots))

let test_span_disabled_and_errors () =
  Trace.reset ();
  Trace.disable ();
  check Alcotest.int "disabled passthrough" 7 (Trace.span "x" (fun () -> 7));
  Trace.count "noop" 1.0;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.roots ()));
  with_fake_clock (fun () ->
    (try Trace.span "boom" (fun () -> failwith "bang") with Failure _ -> ());
    match Trace.roots () with
    | [ n ] ->
      checkb "error marked" true (List.mem_assoc "error" n.Trace.args)
    | _ -> Alcotest.fail "raising span must still be recorded")

let test_chrome_json () =
  with_fake_clock (fun () ->
    build_tree ();
    let j = parse_exn (Json.to_string (Trace.chrome_json ())) in
    let events =
      match Json.member "traceEvents" j with
      | Some e -> Json.to_list e
      | None -> Alcotest.fail "no traceEvents"
    in
    Alcotest.(check int) "event count" 3 (List.length events);
    List.iter (fun ev ->
      checkb "complete event" true
        (Json.member "ph" ev = Some (Json.Str "X"));
      List.iter (fun f ->
        checkb (f ^ " present") true (Json.member f ev <> None))
        [ "name"; "ts"; "dur"; "pid"; "tid" ])
      events;
    (* aggregate sees both spans *)
    match Trace.aggregate () with
    | [] -> Alcotest.fail "empty aggregate"
    | _ :: _ ->
      let inner =
        List.find (fun (a : Trace.agg) -> a.Trace.agg_name = "inner")
          (Trace.aggregate ())
      in
      Alcotest.(check int) "inner calls" 2 inner.Trace.calls)

let test_aggregate_errors () =
  with_fake_clock (fun () ->
    build_tree ();
    (try
       Trace.span "boom" (fun () ->
         Trace.count "items" 5.0;
         failwith "bang")
     with Failure _ -> ());
    let aggs = Trace.aggregate () in
    let find n = List.find (fun (a : Trace.agg) -> a.Trace.agg_name = n) aggs in
    Alcotest.(check int) "boom calls" 1 (find "boom").Trace.calls;
    Alcotest.(check int) "boom errors" 1 (find "boom").Trace.errors;
    Alcotest.(check int) "inner errors" 0 (find "inner").Trace.errors;
    Alcotest.(check int) "outer errors" 0 (find "outer").Trace.errors;
    (* counter totals ride along per span name *)
    check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
      "boom counters" [ ("items", 5.0) ] (find "boom").Trace.agg_counters;
    check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
      "inner counters" [ ("items", 1.0) ] (find "inner").Trace.agg_counters;
    (* the error span is marked in the JSON aggregate too *)
    let j = parse_exn (Json.to_string (Trace.aggregate_json ())) in
    let rows = Json.to_list j in
    let boom =
      List.find (fun r -> Json.member "name" r = Some (Json.Str "boom")) rows
    in
    checkb "errors field" true (Json.member "errors" boom = Some (Json.Int 1)))

(* ------------------------------------------------------------------ *)
(* Log: ndjson sink flushes after every record                         *)
(* ------------------------------------------------------------------ *)

let test_ndjson_flush () =
  let path = Filename.temp_file "emsc-log" ".ndjson" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink None;
      close_out_noerr oc;
      Sys.remove path)
    (fun () ->
      Log.set_sink (Some (Log.ndjson_sink oc));
      Log.info ~fields:[ ("k", Json.Int 1) ] "first";
      Log.warn "second";
      (* the records must be on disk *without* closing the channel *)
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let l1 = input_line ic in
          let l2 = input_line ic in
          (match input_line ic with
           | _ -> Alcotest.fail "expected exactly two records"
           | exception End_of_file -> ());
          List.iter2 (fun line (level, msg) ->
            let j = parse_exn line in
            checkb "level" true (Json.member "level" j = Some (Json.Str level));
            checkb "msg" true (Json.member "msg" j = Some (Json.Str msg)))
            [ l1; l2 ]
            [ ("info", "first"); ("warn", "second") ]))

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let with_metrics f =
  Metrics.reset ();
  Metrics.set_clock (fun () -> 12.0);
  Metrics.enable ();
  Fun.protect f ~finally:(fun () ->
    Metrics.disable ();
    Metrics.reset ();
    Metrics.use_default_clock ())

let test_metrics_disabled () =
  Metrics.reset ();
  Metrics.disable ();
  Metrics.counter "c" 1.0;
  Metrics.gauge "g" 2.0;
  Metrics.gauge_max "m" 3.0;
  Metrics.observe "h" 4.0;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "metrics-off snapshot is empty" 0
    (List.length snap.Metrics.samples)

let test_metrics_updates () =
  with_metrics (fun () ->
    Metrics.counter "c" 2.0;
    Metrics.counter "c" 3.0;
    Metrics.counter ~labels:[ ("b", "2"); ("a", "1") ] "c" 1.0;
    Metrics.gauge "g" 9.0;
    Metrics.gauge "g" 5.0;
    Metrics.gauge_max "m" 2.0;
    Metrics.gauge_max "m" 7.0;
    Metrics.gauge_max "m" 3.0;
    Metrics.observe "h" 1.0;
    Metrics.observe "h" 1000.0;
    Metrics.observe "h" 0.0;
    let snap = Metrics.snapshot () in
    check (Alcotest.float 0.0) "counter" 5.0 (Metrics.counter_value snap "c");
    (* label order is canonicalized *)
    check (Alcotest.float 0.0) "labeled counter" 1.0
      (Metrics.counter_value ~labels:[ ("a", "1"); ("b", "2") ] snap "c");
    checkb "gauge keeps last" true (Metrics.find snap "g" = Some (Metrics.Gauge 5.0));
    checkb "gauge_max keeps max" true
      (Metrics.find snap "m" = Some (Metrics.Gauge 7.0));
    (match Metrics.find snap "h" with
     | Some (Metrics.Histogram { count; sum; buckets }) ->
       Alcotest.(check int) "hist count" 3 count;
       check (Alcotest.float 0.0) "hist sum" 1001.0 sum;
       (* 0.0 underflows, 1.0 lands in 2^0, 1000.0 in 2^10 *)
       checkb "buckets" true (buckets = [ (min_int, 1); (0, 1); (10, 1) ])
     | _ -> Alcotest.fail "h is not a histogram");
    check (Alcotest.float 0.0) "deterministic clock" 12.0
      snap.Metrics.at_s;
    (* the JSON rendering parses and labels the underflow bucket *)
    let j = parse_exn (Json.to_string (Metrics.snapshot_json snap)) in
    checkb "metrics list" true (Json.member "metrics" j <> None))

let test_metrics_diff () =
  with_metrics (fun () ->
    Metrics.counter "c" 10.0;
    Metrics.gauge "g" 1.0;
    Metrics.observe "h" 4.0;
    let snap0 = Metrics.snapshot () in
    Metrics.counter "c" 2.5;
    Metrics.gauge "g" 8.0;
    Metrics.observe "h" 4.0;
    Metrics.counter "fresh" 1.0;
    let d = Metrics.diff snap0 (Metrics.snapshot ()) in
    check (Alcotest.float 0.0) "counter delta" 2.5 (Metrics.counter_value d "c");
    check (Alcotest.float 0.0) "fresh counter" 1.0
      (Metrics.counter_value d "fresh");
    checkb "gauge takes later value" true
      (Metrics.find d "g" = Some (Metrics.Gauge 8.0));
    match Metrics.find d "h" with
    | Some (Metrics.Histogram { count; sum; buckets }) ->
      Alcotest.(check int) "hist delta count" 1 count;
      check (Alcotest.float 0.0) "hist delta sum" 4.0 sum;
      checkb "hist delta buckets" true (buckets = [ (2, 1) ])
    | _ -> Alcotest.fail "h missing from diff")

(* the registry is shared mutable state behind one mutex: four domains
   hammering the same cells must lose no update — the totals are exact,
   not approximate *)
let test_metrics_parallel () =
  with_metrics (fun () ->
    let domains = 4 and iters = 5000 in
    let workers =
      List.init domains (fun d ->
        Domain.spawn (fun () ->
          for i = 1 to iters do
            Metrics.counter "par.c" 1.0;
            Metrics.gauge_max "par.m" (float_of_int ((d * iters) + i));
            Metrics.observe "par.h" 1.0
          done))
    in
    List.iter Domain.join workers;
    let snap = Metrics.snapshot () in
    check (Alcotest.float 0.0) "exact counter total"
      (float_of_int (domains * iters))
      (Metrics.counter_value snap "par.c");
    checkb "gauge_max saw the global max" true
      (Metrics.find snap "par.m"
       = Some (Metrics.Gauge (float_of_int (domains * iters))));
    match Metrics.find snap "par.h" with
    | Some (Metrics.Histogram { count; sum; _ }) ->
      Alcotest.(check int) "exact histogram count" (domains * iters) count;
      check (Alcotest.float 0.0) "exact histogram sum"
        (float_of_int (domains * iters))
        sum
    | _ -> Alcotest.fail "par.h is not a histogram")

(* spans opened on different domains keep their own stacks (so nesting
   is per-domain) while completed roots and counter totals merge; every
   span must survive the concurrent root attach *)
let test_trace_parallel () =
  Trace.reset ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    (fun () ->
      let domains = 4 and iters = 200 in
      let workers =
        List.init domains (fun _ ->
          Domain.spawn (fun () ->
            for _ = 1 to iters do
              Trace.span "outer" (fun () ->
                Trace.count "items" 1.0;
                Trace.span "inner" (fun () -> ()))
            done))
      in
      List.iter Domain.join workers;
      let roots = Trace.roots () in
      Alcotest.(check int) "every span became a root" (domains * iters)
        (List.length roots);
      List.iter (fun (n : Trace.node) ->
        checks "root name" "outer" n.Trace.name;
        Alcotest.(check int) "nested child stayed on its domain" 1
          (List.length n.Trace.children))
        roots;
      (* roots come back sorted by start time for the Chrome export *)
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          a.Trace.start_s <= b.Trace.start_s && sorted rest
        | _ -> true
      in
      checkb "roots in start order" true (sorted roots);
      let find n =
        List.find (fun (a : Trace.agg) -> a.Trace.agg_name = n)
          (Trace.aggregate ())
      in
      Alcotest.(check int) "outer calls" (domains * iters) (find "outer").Trace.calls;
      Alcotest.(check int) "inner calls" (domains * iters) (find "inner").Trace.calls;
      check (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.float 0.0)))
        "exact counter total"
        [ ("items", float_of_int (domains * iters)) ]
        (find "outer").Trace.agg_counters)

(* ------------------------------------------------------------------ *)
(* Metric records                                                      *)
(* ------------------------------------------------------------------ *)

let test_counters_json () =
  let c = Exec.fresh () in
  c.Exec.flops <- 10.0;
  c.Exec.g_ld <- 4.0;
  let expected =
    Json.Obj
      [ ("flops", Json.Float 10.0); ("global_loads", Json.Float 4.0);
        ("global_stores", Json.Float 0.0); ("smem_loads", Json.Float 0.0);
        ("smem_stores", Json.Float 0.0); ("syncs", Json.Float 0.0);
        ("fences", Json.Float 0.0) ]
  in
  check golden "counters" expected (Exec.counters_json c);
  check golden "counters round-trip" expected
    (parse_exn (Json.to_string (Exec.counters_json c)))

(* ------------------------------------------------------------------ *)
(* Plan explain on a real kernel                                       *)
(* ------------------------------------------------------------------ *)

let test_explain_matmul () =
  let p = Matmul.program ~n:64 in
  let plan = Plan.plan_block ~arch:`Gpu p in
  let verdicts = Plan.explain plan in
  checkb "has verdicts" true (verdicts <> []);
  List.iter (fun (v : Plan.verdict) ->
    checkb "delta recorded" true (v.Plan.v_delta > 0.0);
    if v.Plan.v_copied then
      checkb "copied has buffer" true (v.Plan.v_buffer <> None))
    verdicts;
  (* the full JSON report round-trips and carries the Algorithm 1
     verdict fields for every partition *)
  let j =
    parse_exn
      (Json.to_string (Plan.explain_json ~capacity_words:4096 plan))
  in
  let parts =
    match Json.member "partitions" j with
    | Some l -> Json.to_list l
    | None -> Alcotest.fail "no partitions"
  in
  Alcotest.(check int) "one partition per verdict" (List.length verdicts)
    (List.length parts);
  List.iter (fun part ->
    let a1 =
      match Json.member "algorithm1" part with
      | Some a -> a
      | None -> Alcotest.fail "no algorithm1 verdict"
    in
    List.iter (fun f ->
      checkb (f ^ " present") true (Json.member f a1 <> None))
      [ "rank_reuse"; "overlap_fraction"; "delta"; "beneficial" ];
    match Json.member "copied" part, Json.member "buffer" part with
    | Some (Json.Bool true), Some (Json.Obj _ as b) ->
      checkb "buffer dims" true (Json.member "dims" b <> None)
    | Some (Json.Bool true), _ -> Alcotest.fail "copied without buffer"
    | _ -> ())
    parts;
  match Json.member "totals" j with
  | Some t ->
    checkb "capacity echoed" true
      (Json.member "capacity_words" t = Some (Json.Int 4096));
    checkb "fits flag" true (Json.member "fits_scratchpad" t <> None)
  | None -> Alcotest.fail "no totals"

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "print" `Quick test_json_print;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "property" `Quick test_json_property;
          Alcotest.test_case "boundaries" `Quick test_json_boundaries ] );
      ( "trace",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled+errors" `Quick
            test_span_disabled_and_errors;
          Alcotest.test_case "chrome-json" `Quick test_chrome_json;
          Alcotest.test_case "aggregate-errors" `Quick test_aggregate_errors;
          Alcotest.test_case "parallel-emission" `Quick test_trace_parallel ]
      );
      ( "log",
        [ Alcotest.test_case "ndjson-flush" `Quick test_ndjson_flush ] );
      ( "metrics",
        [ Alcotest.test_case "counters-json" `Quick test_counters_json;
          Alcotest.test_case "disabled-empty" `Quick test_metrics_disabled;
          Alcotest.test_case "updates" `Quick test_metrics_updates;
          Alcotest.test_case "diff" `Quick test_metrics_diff;
          Alcotest.test_case "4-domain hammer" `Quick test_metrics_parallel ] );
      ( "explain",
        [ Alcotest.test_case "matmul" `Quick test_explain_matmul ] ) ]
